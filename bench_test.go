// Benchmarks regenerating the paper's evaluation (§IX), one target per
// table/figure (DESIGN.md per-experiment index). Benchmarks report
// virtual-time protocol metrics as custom units (ops/s of simulated time,
// simulated latency) alongside the usual wall-clock ns/op of driving the
// simulation. cmd/sbft-bench prints the full sweeps; these targets make
// each experiment reproducible through `go test -bench`.
package sbft_test

import (
	"crypto/sha256"
	"fmt"
	"os"
	"testing"
	"time"

	"sbft/internal/bench"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/crypto/threshbls"
	"sbft/internal/crypto/threshrsa"
	"sbft/internal/crypto/threshsig"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
	"sbft/internal/merkle"
	"sbft/internal/sim"
	"sbft/internal/storage"
)

// smallGrid keeps per-iteration simulation cost benchmark-friendly.
func smallGrid() bench.GridConfig {
	g := bench.DefaultGrid()
	g.F = 4
	g.OpsPerClient = 5
	g.Out = discard{}
	return g
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// benchPoint runs one protocol point per iteration and reports simulated
// throughput/latency.
func benchPoint(b *testing.B, v bench.Variant, clients, failures, batch int) {
	g := smallGrid()
	var tput, lat float64
	for i := 0; i < b.N; i++ {
		p, err := bench.RunPoint(g, v, clients, failures, batch)
		if err != nil {
			b.Fatal(err)
		}
		tput += p.Throughput
		lat += p.MeanMs
	}
	b.ReportMetric(tput/float64(b.N), "simulated-op/s")
	b.ReportMetric(lat/float64(b.N), "simulated-ms-latency")
}

// BenchmarkFig2 covers Figure 2 (throughput vs clients): one bench per
// protocol at the saturated load point; `sbft-bench -exp fig2` sweeps the
// full grid.
func BenchmarkFig2(b *testing.B) {
	for _, v := range bench.Variants(4) {
		v := v
		b.Run(v.Name+"/clients=64/batch=64", func(b *testing.B) {
			benchPoint(b, v, 64, 0, 64)
		})
	}
}

// BenchmarkFig2Failures covers the failure panels of Figure 2.
func BenchmarkFig2Failures(b *testing.B) {
	vs := bench.Variants(4)
	for _, v := range []bench.Variant{vs[0], vs[3], vs[4]} {
		v := v
		b.Run(v.Name+"/failures=f", func(b *testing.B) {
			benchPoint(b, v, 64, 4, 64)
		})
	}
}

// BenchmarkFig3 is the latency view of the same sweep (no-batching row).
func BenchmarkFig3(b *testing.B) {
	for _, v := range bench.Variants(4) {
		v := v
		b.Run(v.Name+"/clients=64/nobatch", func(b *testing.B) {
			benchPoint(b, v, 64, 0, 1)
		})
	}
}

// BenchmarkContractContinent reproduces the §IX continent-WAN contract
// comparison (T1 in DESIGN.md).
func BenchmarkContractContinent(b *testing.B) {
	benchContract(b, false)
}

// BenchmarkContractWorld reproduces the world-WAN comparison (T2).
func BenchmarkContractWorld(b *testing.B) {
	benchContract(b, true)
}

func benchContract(b *testing.B, world bool) {
	cfg := bench.DefaultContract(world)
	cfg.F = 4
	cfg.Clients = 8
	cfg.TxPerClient = 5
	cfg.Out = discard{}
	var tput float64
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunContract(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tput += pts[0].Throughput
	}
	b.ReportMetric(tput/float64(b.N), "simulated-sbft-tx/s")
}

// BenchmarkSingleNodeEVM reproduces the no-replication baseline (T3):
// real wall-clock EVM execution with disk persistence.
func BenchmarkSingleNodeEVM(b *testing.B) {
	dir := b.TempDir()
	var tps float64
	for i := 0; i < b.N; i++ {
		sub, err := os.MkdirTemp(dir, "run")
		if err != nil {
			b.Fatal(err)
		}
		v, err := bench.RunSingleNode(2000, 7, sub, discard{})
		if err != nil {
			b.Fatal(err)
		}
		tps += v
	}
	b.ReportMetric(tps/float64(b.N), "tx/s")
}

// BenchmarkAblation is the ingredient ladder (A1).
func BenchmarkAblation(b *testing.B) {
	g := smallGrid()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointWindow measures the §V-F window/checkpoint settings
// (A2): smaller windows checkpoint more often.
func BenchmarkCheckpointWindow(b *testing.B) {
	for _, win := range []uint64{16, 64, 256} {
		win := win
		b.Run(fmt.Sprintf("win=%d", win), func(b *testing.B) {
			g := smallGrid()
			v := bench.Variants(4)[3] // SBFT c=0
			var tput float64
			for i := 0; i < b.N; i++ {
				netCfg := sim.ContinentProfile(g.Seed)
				cl, err := cluster.New(cluster.Options{
					Protocol: cluster.ProtoSBFT, F: g.F,
					App: cluster.AppKV, Clients: 32, NetCfg: &netCfg, Seed: g.Seed,
					Tune: func(c *core.Config) {
						c.Win = win
						c.CheckpointInterval = win / 2
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				res := cl.RunClosedLoop(g.OpsPerClient, bench.KVGen(g.Seed), g.Horizon)
				tput += res.Throughput
			}
			_ = v
			b.ReportMetric(tput/float64(b.N), "simulated-op/s")
		})
	}
}

// BenchmarkViewChange measures recovery from a primary crash (A3).
func BenchmarkViewChange(b *testing.B) {
	g := smallGrid()
	for i := 0; i < b.N; i++ {
		if err := bench.RunViewChange(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C1: crypto micro-benchmarks (§III comparison table) ---

func benchScheme(b *testing.B, scheme threshsig.Scheme, signers []threshsig.Signer) {
	d := sha256.Sum256([]byte("bench"))
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := signers[0].Sign(d[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	share, _ := signers[0].Sign(d[:])
	b.Run("verify-share", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scheme.VerifyShare(d[:], share); err != nil {
				b.Fatal(err)
			}
		}
	})
	shares := make([]threshsig.Share, scheme.Threshold())
	for i := range shares {
		shares[i], _ = signers[i].Sign(d[:])
	}
	b.Run("combine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scheme.Combine(d[:], shares); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, _ := scheme.Combine(d[:], shares)
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scheme.Verify(d[:], sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("signature-size", func(b *testing.B) {
		b.ReportMetric(float64(len(sig.Data)), "bytes")
	})
}

// BenchmarkCryptoThresholdRSA benches Shoup threshold RSA (the 256-byte
// column of §III's comparison).
func BenchmarkCryptoThresholdRSA(b *testing.B) {
	scheme, signers, err := threshrsa.Dealer{ModulusBits: 1024}.Deal(3, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchScheme(b, scheme, signers)
}

// BenchmarkCryptoThresholdBLS benches threshold BLS over the from-scratch
// BN254 pairing (the 33-byte column), running on the fixed-limb
// Montgomery hot path (internal/crypto/bn254).
func BenchmarkCryptoThresholdBLS(b *testing.B) {
	scheme, signers, err := threshbls.Dealer{}.Deal(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchScheme(b, scheme, signers)
}

// BenchmarkMerkleMap measures the authenticated state digest cost per
// block (§IV substrate).
func BenchmarkMerkleMap(b *testing.B) {
	m := merkle.NewMap()
	for i := 0; i < 100_000; i++ {
		m.Set(fmt.Sprintf("key-%06d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(fmt.Sprintf("key-%06d", i%100_000), []byte{byte(i)})
		_ = m.Digest()
	}
}

// BenchmarkKVExecuteBlock measures block execution of the KV service.
func BenchmarkKVExecuteBlock(b *testing.B) {
	s := kvstore.New()
	ops := make([][]byte, 64)
	for i := range ops {
		ops[i] = kvstore.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExecuteBlock(uint64(i+1), ops)
		s.GarbageCollect(uint64(i))
	}
}

// BenchmarkEVMTokenTransfer measures one token transfer through the EVM
// interpreter.
func BenchmarkEVMTokenTransfer(b *testing.B) {
	l := evm.NewLedger()
	deployer := evm.AddressFromBytes([]byte{0xD0})
	l.Mint(deployer, 1_000_000_000)
	if _, err := l.GenesisCreate(deployer, evm.TokenDeploy(), 10_000_000); err != nil {
		b.Fatal(err)
	}
	token := evm.ContractAddress(deployer, 0)
	alice := evm.AddressFromBytes([]byte{0xA1})
	mint := evm.Tx{Kind: evm.TxCall, From: alice, To: token, GasLimit: 1_000_000,
		Data: evm.TokenCalldata(evm.TokenMint, alice, 1_000_000_000)}.Encode()
	l.ExecuteBlock(1, [][]byte{mint})
	tx := evm.Tx{Kind: evm.TxCall, From: alice, To: token, GasLimit: 1_000_000,
		Data: evm.TokenCalldata(evm.TokenTransfer, evm.AddressFromBytes([]byte{0xB2}), 1)}.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ExecuteBlock(uint64(i+2), [][]byte{tx})
		l.GarbageCollect(uint64(i + 1))
	}
}

// BenchmarkStorageAppend measures the WAL substrate.
func BenchmarkStorageAppend(b *testing.B) {
	led, err := storage.Open(b.TempDir(), storage.Options{Sync: false})
	if err != nil {
		b.Fatal(err)
	}
	defer led.Close()
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := led.Append(uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = time.Second
