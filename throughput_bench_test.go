// Saturation benchmarks for the fast path: BenchmarkThroughput measures
// the closed-loop reference point and the open-loop offered-load sweep
// (internal/load) at n=4 and the paper-scale n=9 (f=2, c=1) under the
// scaled crypto cost model, with event-loop-inline verification and with
// the parallel verification pool. The pooled configuration must beat the
// inline peak — that is the regression gate for the CryptoSink offload.
// It emits the BENCH_throughput.json curve points: set SBFT_BENCH_JSON to
// a directory to write them there.
package sbft_test

import (
	"fmt"
	"testing"

	"sbft/internal/bench"
	"sbft/internal/benchjson"
)

var throughputJSON = benchjson.New("throughput", "ops-per-simulated-second")

func BenchmarkThroughput(b *testing.B) {
	for _, fc := range [][2]int{{1, 0}, {2, 1}} {
		f, c := fc[0], fc[1]
		n := 3*f + 2*c + 1
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				peak := map[int]float64{}
				for _, pool := range []int{0, 4} {
					cfg := bench.DefaultLoadCurve(f, c, pool, 7, nil)
					points, err := bench.RunLoadCurve(cfg)
					if err != nil {
						b.Fatal(err)
					}
					peak[pool] = bench.PeakThroughput(points)
					if i == 0 {
						variant := "pool=off"
						if pool > 0 {
							variant = "pool=on"
						}
						for _, p := range points {
							point := fmt.Sprintf("n=%d/closed/%s", n, variant)
							if p.Mode == "open" {
								point = fmt.Sprintf("n=%d/open/rate=%.0f/%s", n, p.Rate, variant)
							}
							if err := throughputJSON.Record(point, p.Throughput); err != nil {
								b.Fatalf("recording %s: %v", point, err)
							}
						}
					}
				}
				if peak[4] <= peak[0] {
					b.Fatalf("n=%d: verification pool did not raise peak throughput (inline %.0f, pooled %.0f op/s)",
						n, peak[0], peak[4])
				}
				if i == 0 {
					b.Logf("n=%d peak: inline %.0f op/s, pooled %.0f op/s (+%.0f%%)",
						n, peak[0], peak[4], 100*(peak[4]-peak[0])/peak[0])
				}
			}
		})
	}
}
