// Recovery-latency benchmarks for the windowed state-transfer subsystem:
// BenchmarkStateTransfer measures (in simulated time) how long a replica
// that missed several checkpoint intervals takes to catch up through
// verified chunked state transfer over a lossy link, comparing the
// pre-windowed baseline (every missing chunk requested at once, loss
// recovered only by the whole-transfer retry) against the windowed,
// flow-controlled fetch with per-chunk retries. Together with
// BenchmarkCheckpointCapture (internal/core) it emits the repo's
// BENCH_*.json trajectory points: set SBFT_BENCH_JSON to a directory to
// write BENCH_state_transfer.json there.
package sbft_test

import (
	"fmt"
	"testing"
	"time"

	"sbft/internal/benchjson"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

var stateTransferJSON = benchjson.New("state_transfer", "simulated-recovery-ms")

// recoveryLatency builds a 4-replica SBFT cluster, crashes replica 4
// through the whole workload (several checkpoint intervals of history),
// then recovers it behind a lossy inbound link and measures the simulated
// time until it executes past the pre-recovery stable frontier.
func recoveryLatency(b *testing.B, valSize, ops int, tune func(*core.Config)) float64 {
	b.Helper()
	netCfg := sim.ContinentProfile(7)
	cl, err := cluster.New(cluster.Options{
		Protocol: cluster.ProtoSBFT, F: 1, C: 0,
		App: cluster.AppKV, Clients: 2, NetCfg: &netCfg, Seed: 7,
		ClientTimeout: time.Second,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
			tune(c)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	gen := func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), val)
	}
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(ops, gen, 10*time.Minute)
	if res.Completed != uint64(2*ops) {
		b.Fatalf("workload completed %d of %d", res.Completed, 2*ops)
	}
	frontier := cl.Replicas[1].LastStable()
	if frontier == 0 {
		b.Fatal("no stable checkpoint built")
	}

	// Recover behind a lossy inbound link: chunk replies get dropped, so
	// loss recovery (per-chunk retry vs whole-transfer restart) dominates.
	cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{Drop: 0.15})
	cl.Net.Recover(4)
	start := cl.Sched.Now()
	// Light follow-up traffic keeps checkpoints announcing so the
	// recovering replica notices its gap.
	more := cl.RunClosedLoop(4, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("post/c%d/k%d", client, i), val)
	}, 10*time.Minute)
	if more.Completed != 8 {
		b.Fatalf("follow-up completed %d of 8", more.Completed)
	}
	for i := 0; cl.Replicas[4].LastExecuted() < frontier && i < 1200; i++ {
		cl.Run(100 * time.Millisecond)
	}
	if cl.Replicas[4].LastExecuted() < frontier {
		b.Fatalf("recovery did not complete: le=%d, frontier=%d (chunks=%d retries=%d)",
			cl.Replicas[4].LastExecuted(), frontier,
			cl.Replicas[4].Metrics.SnapshotChunks, cl.Replicas[4].Metrics.SnapshotChunkRetries)
	}
	return float64(cl.Sched.Now()-start) / float64(time.Millisecond)
}

// deltaRecoveryLatency measures catch-up of a replica that crashes
// AFTER adopting a stable snapshot: while it is down the live replicas
// overwrite dirtyFrac of the key space across several checkpoint
// intervals, and on recovery the victim fetches the new snapshot as a
// delta against the base generation it still holds. retain tunes
// Config.SnapshotRetain — 1 disables the generation chain, forcing a
// full transfer of the same workload (the no-delta baseline). Returns
// the simulated recovery time plus the victim's reuse/restart counters.
func deltaRecoveryLatency(b *testing.B, valSize int, dirtyFrac float64, retain int) (float64, core.Metrics) {
	b.Helper()
	netCfg := sim.ContinentProfile(7)
	cl, err := cluster.New(cluster.Options{
		Protocol: cluster.ProtoSBFT, F: 1, C: 0,
		App: cluster.AppKV, Clients: 2, NetCfg: &netCfg, Seed: 11,
		ClientTimeout: time.Second,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
			c.SnapshotRetain = retain
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	const perClient = 12 // phase-1 key space: 2 clients × 12 keys
	res := cl.RunClosedLoop(perClient, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), val)
	}, 10*time.Minute)
	if res.Completed != 2*perClient {
		b.Fatalf("phase-1 completed %d of %d", res.Completed, 2*perClient)
	}
	base := cl.Replicas[4].SnapshotSeq()
	if base == 0 {
		b.Fatal("victim adopted no snapshot before crash")
	}

	// Down window: 2 clients × 8 = 16 blocks = 4 checkpoint intervals,
	// rewriting only dirtyFrac of the phase-1 keys.
	cl.Net.Crash(4)
	span := int(float64(perClient) * dirtyFrac)
	if span < 1 {
		span = 1
	}
	gone := cl.RunClosedLoop(8, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i%span), val)
	}, 10*time.Minute)
	if gone.Completed != 16 {
		b.Fatalf("down-window completed %d of 16", gone.Completed)
	}
	frontier := cl.Replicas[1].LastStable()

	cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{Drop: 0.15})
	cl.Net.Recover(4)
	start := cl.Sched.Now()
	more := cl.RunClosedLoop(4, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("post/c%d/k%d", client, i), val)
	}, 10*time.Minute)
	if more.Completed != 8 {
		b.Fatalf("follow-up completed %d of 8", more.Completed)
	}
	for i := 0; cl.Replicas[4].LastExecuted() < frontier && i < 1200; i++ {
		cl.Run(100 * time.Millisecond)
	}
	if cl.Replicas[4].LastExecuted() < frontier {
		b.Fatalf("recovery did not complete: le=%d, frontier=%d",
			cl.Replicas[4].LastExecuted(), frontier)
	}
	return float64(cl.Sched.Now()-start) / float64(time.Millisecond), cl.Replicas[4].Metrics
}

// BenchmarkStateTransfer compares recovery latency of the serial
// request-per-chunk baseline (unbounded blast, whole-transfer retry only
// — the pre-windowed behavior, reproduced via config) against the
// windowed fetch, at a small and a large (multi-MiB) application state;
// the delta/* points then compare delta transfer against a base the
// victim already holds (dirty fraction of the key space rewritten while
// it was down) with the full transfer the same workload costs when the
// generation chain is disabled (SnapshotRetain=1).
func BenchmarkStateTransfer(b *testing.B) {
	serial := func(c *core.Config) {
		c.FetchWindow = 1 << 20  // effectively unbounded: all chunks at once
		c.ChunkRetryTimeout = -1 // no per-chunk retry
		c.SnapshotMetaWait = -1  // first-accepted meta
	}
	windowed := func(c *core.Config) {} // defaults: window 32, retries on
	cases := []struct {
		name    string
		valSize int
		ops     int
		tune    func(*core.Config)
	}{
		{"small/serial", 512, 12, serial},
		{"small/windowed", 512, 12, windowed},
		{"large/serial", 32 * 1024, 48, serial},
		{"large/windowed", 32 * 1024, 48, windowed},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total += recoveryLatency(b, tc.valSize, tc.ops, tc.tune)
			}
			ms := total / float64(b.N)
			b.ReportMetric(ms, "simulated-recovery-ms")
			if err := stateTransferJSON.Record(tc.name, ms); err != nil {
				b.Fatal(err)
			}
		})
	}

	deltaCases := []struct {
		name      string
		dirtyFrac float64
		retain    int
	}{
		{"delta/dirty1", 0.01, 8},
		{"delta/dirty10", 0.10, 8},
		{"delta/dirty100", 1.00, 8},
		{"delta/fullbase", 0.01, 1}, // chain disabled: full transfer baseline
	}
	for _, tc := range deltaCases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			var m core.Metrics
			for i := 0; i < b.N; i++ {
				ms, vm := deltaRecoveryLatency(b, 32*1024, tc.dirtyFrac, tc.retain)
				total += ms
				m = vm
			}
			// A transfer against a held base must reuse chunks and never
			// restart; the no-chain baseline must not claim reuse (it is
			// allowed to restart — that is the pre-delta behavior it
			// demonstrates).
			if tc.retain > 1 {
				if m.SnapshotChunksReused == 0 {
					b.Fatalf("delta transfer reused no chunks (fetched=%d)", m.SnapshotChunks)
				}
				if m.SnapshotTransferRestarts != 0 {
					b.Fatalf("delta transfer restarted %d times", m.SnapshotTransferRestarts)
				}
			} else if m.SnapshotChunksReused != 0 {
				b.Fatalf("baseline without a generation chain reused %d chunks", m.SnapshotChunksReused)
			}
			ms := total / float64(b.N)
			b.ReportMetric(ms, "simulated-recovery-ms")
			b.ReportMetric(float64(m.SnapshotChunksReused), "chunks-reused")
			if err := stateTransferJSON.Record(tc.name, ms); err != nil {
				b.Fatal(err)
			}
		})
	}
}
