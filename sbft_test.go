package sbft_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sbft"
	"sbft/internal/crypto/threshrsa"
	"sbft/internal/crypto/threshsig"
)

type sbftShare = threshsig.Share

func TestFacadeClusterEndToEnd(t *testing.T) {
	cl, err := sbft.NewCluster(sbft.ClusterOptions{
		Protocol: sbft.ProtoSBFT, F: 1, C: 0,
		App: sbft.AppKV, Clients: 2, Seed: 5,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	res := cl.RunClosedLoop(5, func(client, i int) []byte {
		return sbft.Put(fmt.Sprintf("k%d-%d", client, i), []byte("v"))
	}, time.Minute)
	if res.Completed != 10 {
		t.Fatalf("completed %d of 10", res.Completed)
	}
	d := cl.Apps[1].Digest()
	for id := 2; id <= cl.N; id++ {
		if !bytes.Equal(cl.Apps[id].Digest(), d) {
			t.Fatalf("replica %d digest differs", id)
		}
	}
}

func TestFacadeConfigAndOps(t *testing.T) {
	cfg := sbft.DefaultConfig(2, 1)
	if cfg.N() != 9 {
		t.Fatalf("N = %d, want 9", cfg.N())
	}
	for _, op := range [][]byte{sbft.Put("k", []byte("v")), sbft.Get("k"), sbft.Delete("k")} {
		if len(op) == 0 {
			t.Fatal("empty encoded op")
		}
	}
	if sbft.ClientBase <= cfg.N() {
		t.Fatal("client id space overlaps replicas")
	}
}

func TestFacadeDealSuiteWithRealRSA(t *testing.T) {
	if testing.Short() {
		t.Skip("safe-prime generation is slow")
	}
	cfg := sbft.DefaultConfig(1, 0)
	suite, keys, err := sbft.DealSuite(cfg, threshrsa.Dealer{ModulusBits: 512})
	if err != nil {
		t.Fatalf("DealSuite: %v", err)
	}
	if len(keys) != cfg.N() {
		t.Fatalf("keys = %d", len(keys))
	}
	// End-to-end sign/combine/verify through the facade types.
	d := []byte("facade digest 0123456789abcdef01")
	sh1, err := keys[0].Pi.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := keys[1].Pi.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := suite.Pi.Combine(d, []sbftShare{sh1, sh2})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := suite.Pi.Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestFacadeWANProfiles(t *testing.T) {
	c := sbft.ContinentProfile(1)
	w := sbft.WorldProfile(1)
	if c.Regions >= w.Regions {
		t.Fatal("world profile should span more regions than continent")
	}
	netCfg := sbft.WorldProfile(2)
	cl, err := sbft.NewCluster(sbft.ClusterOptions{
		Protocol: sbft.ProtoSBFT, F: 1, C: 0,
		App: sbft.AppKV, Clients: 1, Seed: 2, NetCfg: &netCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunClosedLoop(3, func(int, int) []byte { return sbft.Put("k", []byte("v")) }, time.Minute)
	if res.Completed != 3 {
		t.Fatalf("completed %d of 3 on world WAN", res.Completed)
	}
}
