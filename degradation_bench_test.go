// Graceful-degradation benchmarks for the adaptive role-targeting
// attacker: BenchmarkDegradation measures closed-loop throughput (in
// simulated time) healthy and under each adaptive attack — collectors
// crashed every rotation, the fast path straggled into the §V-E linear
// fallback, the primary partitioned from its collectors — at n=4 and the
// paper-scale n=9 (f=2, c=1) under the scaled crypto cost model. It
// emits the BENCH_degradation.json trajectory points: set SBFT_BENCH_JSON
// to a directory to write them there.
package sbft_test

import (
	"fmt"
	"testing"

	"sbft/internal/benchjson"
	"sbft/internal/harness"
)

var degradationJSON = benchjson.New("degradation", "ops-per-simulated-second")

func BenchmarkDegradation(b *testing.B) {
	for _, fc := range [][2]int{{1, 0}, {2, 1}} {
		f, c := fc[0], fc[1]
		n := 3*f + 2*c + 1
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := harness.MeasureDegradation(f, c, 7, 10)
				if err != nil {
					b.Fatal(err)
				}
				for j := range rep.Points {
					p := &rep.Points[j]
					if !p.SafetyOK {
						b.Fatalf("n=%d %s: safety violated", n, p.Name)
					}
					if !p.LivenessOK() {
						b.Fatalf("n=%d %s: liveness lost (%d of %d ops)", n, p.Name, p.Completed, p.Expected)
					}
					if p.Name != "healthy" && p.Metrics.FastPathDowngrades == 0 {
						b.Fatalf("n=%d %s: attack never engaged the fallback", n, p.Name)
					}
					if i == 0 {
						point := fmt.Sprintf("n=%d/%s", n, p.Name)
						if err := degradationJSON.Record(point, p.Throughput); err != nil {
							b.Fatalf("recording %s: %v", point, err)
						}
					}
				}
				if i == 0 {
					b.Logf("%s", rep)
				}
			}
		})
	}
}
