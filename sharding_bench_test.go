// Sharding benchmarks: BenchmarkSharding measures aggregate disjoint-key
// throughput at k=1/2/4 groups (matched per-group n) and the 10%
// cross-shard mix at k=2. The regression gate is the linear-scaling
// claim: two shards must deliver at least 1.7× the single-group
// aggregate on disjoint keys — routing or partition-check overhead
// eating into that headroom fails the build. The cross-shard mix is
// reported, never gated: the 2PC tax is the price of atomicity.
// It emits the BENCH_sharding.json points: set SBFT_BENCH_JSON to a
// directory to write them there.
package sbft_test

import (
	"fmt"
	"testing"

	"sbft/internal/bench"
	"sbft/internal/benchjson"
)

var shardingJSON = benchjson.New("sharding", "ops-per-simulated-second")

func BenchmarkSharding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agg := map[int]float64{}
		for _, k := range []int{1, 2, 4} {
			pt, err := bench.RunShardingDisjoint(bench.DefaultSharding(k, 7))
			if err != nil {
				b.Fatal(err)
			}
			agg[k] = pt.Aggregate
			if i == 0 {
				point := fmt.Sprintf("disjoint/k=%d", k)
				if err := shardingJSON.Record(point, pt.Aggregate); err != nil {
					b.Fatalf("recording %s: %v", point, err)
				}
				b.Logf("disjoint k=%d: %.0f op/s aggregate (per group %v)", k, pt.Aggregate, pt.PerGroup)
			}
		}
		if agg[2] < 1.7*agg[1] {
			b.Fatalf("sharding does not scale: k=2 aggregate %.0f op/s < 1.7× k=1 %.0f op/s",
				agg[2], agg[1])
		}

		cross, err := bench.RunShardingCross(bench.DefaultSharding(2, 7))
		if err != nil {
			b.Fatal(err)
		}
		if cross.Pending > 0 {
			b.Fatalf("cross-shard mix left %d transactions undecided under an honest coordinator", cross.Pending)
		}
		if i == 0 {
			if err := shardingJSON.Record("cross10/k=2", cross.Throughput); err != nil {
				b.Fatalf("recording cross10: %v", err)
			}
			b.Logf("cross 10%% k=2: %.0f op/s (%d singles, %d committed, %d aborted)",
				cross.Throughput, cross.SingleOps, cross.Committed, cross.Aborted)
		}
	}
}
