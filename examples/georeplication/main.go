// Geo-replication example: the paper's world-scale deployment (§IX) in
// miniature. Replicas spread over 15 world regions (20–150ms one-way
// latency); the run demonstrates ingredient 4 — with c redundant servers
// the fast path survives c stragglers, and with more than c it degrades
// per-slot to the linear-PBFT path without a view change.
package main

import (
	"fmt"
	"log"
	"time"

	"sbft"
)

func run(stragglers int) {
	netCfg := sbft.WorldProfile(11)
	cl, err := sbft.NewCluster(sbft.ClusterOptions{
		Protocol: sbft.ProtoSBFT,
		F:        2,
		C:        1, // n = 3f + 2c + 1 = 9
		App:      sbft.AppKV,
		Clients:  6,
		NetCfg:   &netCfg,
		Seed:     11,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	slowed := cl.SetStragglers(stragglers, 400*time.Millisecond)

	res := cl.RunClosedLoop(15, func(client, i int) []byte {
		return sbft.Put(fmt.Sprintf("geo/%d/%d", client, i), []byte("v"))
	}, 5*time.Minute)

	m := cl.Metrics()
	total := m.FastCommits + m.SlowCommits
	fastPct := 0.0
	if total > 0 {
		fastPct = 100 * float64(m.FastCommits) / float64(total)
	}
	fmt.Printf("stragglers=%d %v\n", stragglers, slowed)
	fmt.Printf("  completed %d ops, %.1f ops/s, mean latency %v\n",
		res.Completed, res.Throughput, res.MeanLatency.Round(time.Millisecond))
	fmt.Printf("  fast-path commits: %.0f%%  view changes: %d\n", fastPct, m.ViewChanges)
}

func main() {
	fmt.Println("SBFT on a world-scale WAN (15 regions, f=2, c=1, n=9)")
	fmt.Println()
	fmt.Println("c=1 tolerates one straggler on the fast path; two stragglers")
	fmt.Println("push commits to the linear-PBFT path — seamlessly, no view change:")
	fmt.Println()
	for _, k := range []int{0, 1, 2} {
		run(k)
	}
}
