// Quickstart: spin up a simulated SBFT deployment (n = 3f + 2c + 1 = 4
// replicas for f=1, c=0) over a modeled continent-scale WAN, run a batch
// of authenticated key-value operations through the full protocol — fast
// path, execution collectors, single-message client acknowledgement — and
// print the outcome.
package main

import (
	"fmt"
	"log"
	"time"

	"sbft"
)

func main() {
	cl, err := sbft.NewCluster(sbft.ClusterOptions{
		Protocol: sbft.ProtoSBFT,
		F:        1,
		C:        0,
		App:      sbft.AppKV,
		Clients:  4,
		Seed:     42,
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}

	const opsPerClient = 25
	res := cl.RunClosedLoop(opsPerClient, func(client, i int) []byte {
		return sbft.Put(fmt.Sprintf("client-%d/key-%d", client, i), []byte(fmt.Sprintf("value-%d", i)))
	}, time.Minute)

	fmt.Printf("SBFT quickstart (f=1, c=0, n=%d replicas, %d clients)\n", cl.N, len(cl.Clients))
	fmt.Printf("  completed:        %d/%d operations\n", res.Completed, opsPerClient*len(cl.Clients))
	fmt.Printf("  throughput:       %.1f ops/s (virtual time)\n", res.Throughput)
	fmt.Printf("  latency:          mean %v, p50 %v, p95 %v\n",
		res.MeanLatency.Round(time.Millisecond),
		res.P50Latency.Round(time.Millisecond),
		res.P95Latency.Round(time.Millisecond))
	fmt.Printf("  single-msg acks:  %d/%d (ingredient 3: one signed message per reply)\n",
		res.FastAcks, res.Completed)

	m := cl.Metrics()
	fmt.Printf("  fast-path commits: %d, slow-path: %d (ingredient 2)\n", m.FastCommits/uint64(cl.N), m.SlowCommits/uint64(cl.N))

	// Every replica converged on the same authenticated state.
	d := cl.Apps[1].Digest()
	for id := 2; id <= cl.N; id++ {
		if string(cl.Apps[id].Digest()) != string(d) {
			log.Fatalf("replica %d diverged!", id)
		}
	}
	fmt.Printf("  state digest:     %x (identical on all %d replicas)\n", d[:8], cl.N)
}
