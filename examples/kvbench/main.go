// KV bench example: compare the paper's five protocol variants (§IX
// evaluation ladder) head-to-head on the key-value micro-benchmark at one
// load point, printing a compact comparison table. For the full Figure 2/3
// sweep use cmd/sbft-bench.
package main

import (
	"fmt"
	"log"
	"time"

	"sbft"
	"sbft/internal/cluster"
)

func main() {
	variants := []struct {
		name  string
		proto cluster.Protocol
		c     int
	}{
		{"PBFT (baseline)", sbft.ProtoPBFT, 0},
		{"Linear-PBFT (ingredient 1)", sbft.ProtoLinearPBFT, 0},
		{"+ fast path (ingredient 2)", sbft.ProtoLinearFast, 0},
		{"SBFT c=0 (ingredient 3)", sbft.ProtoSBFT, 0},
		{"SBFT c=2 (ingredient 4)", sbft.ProtoSBFT, 2},
	}

	fmt.Println("Key-value micro-benchmark, f=4, 64 clients, batch=16")
	fmt.Printf("%-30s %12s %12s %10s\n", "variant", "tput (op/s)", "mean lat", "fast acks")
	for _, v := range variants {
		cl, err := sbft.NewCluster(sbft.ClusterOptions{
			Protocol: v.proto,
			F:        4,
			C:        v.c,
			App:      sbft.AppKV,
			Clients:  64,
			Batch:    16,
			Seed:     3,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		res := cl.RunClosedLoop(15, func(client, i int) []byte {
			return sbft.Put(fmt.Sprintf("k/%d/%d", client, i), []byte("v"))
		}, 5*time.Minute)
		fmt.Printf("%-30s %12.1f %12v %9.0f%%\n",
			v.name, res.Throughput, res.MeanLatency.Round(time.Millisecond),
			100*float64(res.FastAcks)/float64(max(res.Completed, 1)))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
