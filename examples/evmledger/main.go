// EVM ledger example: the paper's blockchain scenario (§IV, §VIII). A
// simulated SBFT deployment replicates a smart-contract ledger: genesis
// deploys a hand-assembled EVM token contract, then clients submit mint
// and transfer transactions that every replica executes through the EVM
// interpreter over the authenticated key-value state. Clients accept each
// receipt from a single replica by verifying the f+1 threshold signature
// over the post-state digest plus a Merkle execution proof.
package main

import (
	"fmt"
	"log"
	"time"

	"sbft"
	"sbft/internal/evm"
)

func main() {
	deployer := evm.AddressFromBytes([]byte{0xD0})
	token := evm.ContractAddress(deployer, 0)
	holder := func(i int) evm.Address {
		return evm.AddressFromBytes([]byte{0xAA, byte(i)})
	}

	cl, err := sbft.NewCluster(sbft.ClusterOptions{
		Protocol: sbft.ProtoSBFT,
		F:        1,
		C:        1, // one redundant server keeps the fast path alive (ingredient 4)
		App:      sbft.AppEVM,
		Clients:  4,
		Seed:     7,
		GenesisEVM: func(app *sbft.EVMApp) {
			app.Ledger.Mint(deployer, 1_000_000_000)
			if _, err := app.Ledger.GenesisCreate(deployer, evm.TokenDeploy(), 10_000_000); err != nil {
				log.Fatalf("genesis deploy: %v", err)
			}
		},
	})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}

	// Each client mints to its own holder account, then transfers to its
	// neighbor: method word ‖ address word ‖ amount word calldata.
	const txPerClient = 10
	gen := func(client, i int) []byte {
		from := holder(client)
		if i%2 == 0 {
			return evm.Tx{
				Kind: evm.TxCall, From: from, To: token, GasLimit: 1_000_000,
				Data: evm.TokenCalldata(evm.TokenMint, from, 100),
			}.Encode()
		}
		return evm.Tx{
			Kind: evm.TxCall, From: from, To: token, GasLimit: 1_000_000,
			Data: evm.TokenCalldata(evm.TokenTransfer, holder((client+1)%4), 40),
		}.Encode()
	}

	res := cl.RunClosedLoop(txPerClient, gen, 2*time.Minute)
	fmt.Printf("EVM ledger over SBFT (f=1, c=1, n=%d)\n", cl.N)
	fmt.Printf("  transactions:    %d/%d committed and executed\n", res.Completed, txPerClient*4)
	fmt.Printf("  throughput:      %.1f tx/s, mean latency %v\n",
		res.Throughput, res.MeanLatency.Round(time.Millisecond))
	fmt.Printf("  single-msg acks: %d/%d\n", res.FastAcks, res.Completed)

	// Inspect final token balances straight from a replica's ledger.
	app := cl.Apps[1].(*sbft.EVMApp)
	fmt.Println("  final token balances (storage slot = holder address):")
	for i := 0; i < 4; i++ {
		var key evm.Word
		a := holder(i)
		copy(key[32-evm.AddressSize:], a[:])
		bal := app.Ledger.Storage(token, key).Big()
		fmt.Printf("    holder %d: %v\n", i, bal)
	}
	d := cl.Apps[1].Digest()
	fmt.Printf("  ledger digest: %x (threshold-signed per block)\n", d[:8])
}
