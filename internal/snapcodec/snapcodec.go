// Package snapcodec is the canonical binary codec for application
// checkpoint snapshots (and other byte streams that must be identical
// across replicas).
//
// The replication layer Merkle-commits snapshot bytes chunk by chunk
// inside the threshold-signed checkpoint digest (§V-F), so every honest
// replica must produce IDENTICAL bytes for identical state — across
// processes, not just within one. encoding/gob cannot promise that: its
// wire format embeds type ids allocated from a process-global counter,
// so two replicas whose processes gob-encoded other types in a different
// order (the primary's transport traffic vs a backup's, say) emit
// different bytes for the very same value. This surfaced in live TCP
// deployments as the primary's checkpoint root permanently disagreeing
// with the backup quorum's — invisible in the simulator, where all
// replicas share one process and one gob registry.
//
// The format here is fixed big-endian framing with no type metadata:
//
//	magic "sbftsnap1"
//	lastSeq  u64
//	dlen u64, digest bytes
//	count u64
//	count × ( klen u64, key bytes, vlen u64, value bytes )
package snapcodec

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// magic versions the canonical snapshot framing.
const magic = "sbftsnap1"

// maxLen bounds any single length field; a sanity guard against
// allocation bombs from malformed input (never certified input — the
// replication layer verifies chunks against the signed root first).
const maxLen = 1 << 31

// Entry is one key-value pair of the canonical snapshot encoding.
type Entry struct {
	Key string
	Val []byte
}

// State is an application's replayable checkpoint state in canonical
// form: the last executed sequence, the application digest at that
// sequence, and the key-SORTED state entries.
type State struct {
	LastSeq uint64
	Digest  []byte
	Entries []Entry
}

// FromMap builds a State with canonically sorted entries.
func FromMap(lastSeq uint64, digest []byte, m map[string][]byte) State {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]Entry, len(keys))
	for i, k := range keys {
		entries[i] = Entry{Key: k, Val: m[k]}
	}
	return State{LastSeq: lastSeq, Digest: digest, Entries: entries}
}

// Encode serializes the state canonically: identical State values yield
// identical bytes in every process.
func Encode(st State) []byte {
	n := len(magic) + 8 + 8 + len(st.Digest) + 8
	for _, e := range st.Entries {
		n += 16 + len(e.Key) + len(e.Val)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint64(buf, st.LastSeq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(st.Digest)))
	buf = append(buf, st.Digest...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(st.Entries)))
	for _, e := range st.Entries {
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(e.Val)))
		buf = append(buf, e.Val...)
	}
	return buf
}

// Decode parses a canonical snapshot. Zero-length digests and values
// decode to nil.
func Decode(data []byte) (State, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return State{}, fmt.Errorf("snapcodec: bad magic")
	}
	data = data[len(magic):]
	readU64 := func() (uint64, error) {
		if len(data) < 8 {
			return 0, fmt.Errorf("snapcodec: truncated")
		}
		v := binary.BigEndian.Uint64(data)
		data = data[8:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		if n > maxLen || uint64(len(data)) < n {
			return nil, fmt.Errorf("snapcodec: bad length %d", n)
		}
		if n == 0 {
			return nil, nil
		}
		out := append([]byte(nil), data[:n]...)
		data = data[n:]
		return out, nil
	}
	var st State
	var err error
	if st.LastSeq, err = readU64(); err != nil {
		return State{}, err
	}
	if st.Digest, err = readBytes(); err != nil {
		return State{}, err
	}
	count, err := readU64()
	if err != nil {
		return State{}, err
	}
	// Each entry consumes at least 16 bytes of input (two length fields),
	// so the remaining data bounds the plausible count — checked BEFORE
	// the slice allocation, or a corrupt count field could demand
	// gigabytes for a few trailing bytes.
	if count > maxLen/16 || count > uint64(len(data))/16 {
		return State{}, fmt.Errorf("snapcodec: %d entries in %d bytes", count, len(data))
	}
	st.Entries = make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		k, err := readBytes()
		if err != nil {
			return State{}, err
		}
		v, err := readBytes()
		if err != nil {
			return State{}, err
		}
		st.Entries = append(st.Entries, Entry{Key: string(k), Val: v})
	}
	if len(data) != 0 {
		return State{}, fmt.Errorf("snapcodec: %d trailing bytes", len(data))
	}
	return st, nil
}

// ToMap flattens decoded entries back into a map.
func (st State) ToMap() map[string][]byte {
	m := make(map[string][]byte, len(st.Entries))
	for _, e := range st.Entries {
		m[e.Key] = e.Val
	}
	return m
}
