package snapcodec

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	st := FromMap(42, []byte{1, 2, 3}, map[string][]byte{
		"b":     []byte("vb"),
		"a":     []byte("va"),
		"empty": nil,
	})
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 42 || !bytes.Equal(got.Digest, []byte{1, 2, 3}) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != 3 || got.Entries[0].Key != "a" || got.Entries[1].Key != "b" {
		t.Fatalf("entries not canonical: %+v", got.Entries)
	}
	m := got.ToMap()
	if !bytes.Equal(m["b"], []byte("vb")) || m["empty"] != nil {
		t.Fatalf("values mismatch: %v", m)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("nope"),
		[]byte(magic),                           // truncated after magic
		append(Encode(State{LastSeq: 1}), 0xFF), // trailing byte
	} {
		if _, err := Decode(data); err == nil {
			t.Fatalf("garbage accepted: %q", data)
		}
	}
}

// TestEncodingIndependentOfGobHistory pins the reason this package
// exists: gob wire bytes embed type ids from a PROCESS-GLOBAL counter,
// so encoding some unrelated type first changes later gob output — which
// broke checkpoint-root agreement between live replicas whose processes
// had different gob histories (the primary encodes different transport
// message types than a backup). The canonical codec must not care.
func TestEncodingIndependentOfGobHistory(t *testing.T) {
	st := FromMap(7, []byte{9}, map[string][]byte{"k": []byte("v")})
	before := Encode(st)

	// Pollute the process-global gob registry mid-test.
	type pollutant struct{ A, B, C string }
	var sink bytes.Buffer
	if err := gob.NewEncoder(&sink).Encode(pollutant{"x", "y", "z"}); err != nil {
		t.Fatal(err)
	}

	if after := Encode(st); !bytes.Equal(before, after) {
		t.Fatal("canonical encoding changed after unrelated gob activity")
	}
}
