package snapcodec

import (
	"bytes"
	"fmt"
	"testing"
)

// concat assembles a chunk list the way state transfer does before
// handing the blob to Application.Restore.
func concat(chunks [][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c)
	}
	return buf.Bytes()
}

func TestTrackerEncodeDecodeRoundTrip(t *testing.T) {
	tr := NewTracker(8)
	want := map[string][]byte{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := []byte(fmt.Sprintf("val-%d", i*i))
		tr.Set(k, v)
		want[k] = v
	}
	tr.Set("key-007", []byte("overwritten"))
	want["key-007"] = []byte("overwritten")
	tr.Delete("key-013")
	delete(want, "key-013")

	digest := []byte{0xAA, 0xBB}
	chunks, reenc := tr.EncodeChunks(42, digest)
	if len(chunks) != 1+8 {
		t.Fatalf("chunk count = %d, want 9", len(chunks))
	}
	if reenc != 8 {
		t.Fatalf("first capture re-encoded %d buckets, want all 8", reenc)
	}
	st, split, err := DecodeBucketed(concat(chunks))
	if err != nil {
		t.Fatalf("DecodeBucketed: %v", err)
	}
	if st.LastSeq != 42 || !bytes.Equal(st.Digest, digest) {
		t.Fatalf("prelude mismatch: seq=%d digest=%x", st.LastSeq, st.Digest)
	}
	got := st.ToMap()
	if len(got) != len(want) {
		t.Fatalf("entry count = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
	if len(split) != len(chunks) {
		t.Fatalf("re-split chunk count = %d, want %d", len(split), len(chunks))
	}
	for i := range chunks {
		if !bytes.Equal(split[i], chunks[i]) {
			t.Fatalf("re-split chunk %d differs from encoded chunk", i)
		}
	}
}

// sameSlice reports whether two byte slices share identity (same backing
// pointer and length) — the clean-chunk contract the checkpoint layer's
// leaf-hash cache relies on.
func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func TestTrackerIncrementalReencode(t *testing.T) {
	tr := NewTracker(16)
	for i := 0; i < 64; i++ {
		tr.Set(fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	first, _ := tr.EncodeChunks(1, nil)

	// No writes: nothing re-encoded, every chunk slice-identical.
	second, reenc := tr.EncodeChunks(1, nil)
	if reenc != 0 {
		t.Fatalf("clean capture re-encoded %d buckets, want 0", reenc)
	}
	for b := 1; b < len(first); b++ {
		if !sameSlice(first[b], second[b]) {
			t.Fatalf("clean bucket chunk %d lost slice identity", b)
		}
	}

	// One write: exactly that key's bucket re-encodes; all others keep
	// their identical slices.
	tr.Set("k05", []byte("new"))
	dirty := BucketOf("k05", 16)
	third, reenc := tr.EncodeChunks(2, nil)
	if reenc != 1 {
		t.Fatalf("single-write capture re-encoded %d buckets, want 1", reenc)
	}
	for b := 1; b < len(second); b++ {
		if b == 1+dirty {
			if sameSlice(second[b], third[b]) {
				t.Fatalf("dirty bucket %d kept its stale slice", b)
			}
			continue
		}
		if !sameSlice(second[b], third[b]) {
			t.Fatalf("clean bucket chunk %d lost slice identity", b)
		}
	}

	// A delete dirties its bucket the same way.
	tr.Delete("k05")
	_, reenc = tr.EncodeChunks(3, nil)
	if reenc != 1 {
		t.Fatalf("delete capture re-encoded %d buckets, want 1", reenc)
	}
}

func TestTrackerRestoreSeedsEncodingCache(t *testing.T) {
	src := NewTracker(4)
	for i := 0; i < 20; i++ {
		src.Set(fmt.Sprintf("key-%d", i), []byte{byte(i), byte(i)})
	}
	chunks, _ := src.EncodeChunks(9, []byte{1})
	st, split, err := DecodeBucketed(concat(chunks))
	if err != nil {
		t.Fatalf("DecodeBucketed: %v", err)
	}

	dst := NewTracker(DefaultBuckets) // bucket count adopted from blob
	dst.Restore(st, len(split)-1, split)
	if dst.Buckets() != 4 {
		t.Fatalf("restored bucket count = %d, want 4", dst.Buckets())
	}
	reChunks, reenc := dst.EncodeChunks(9, []byte{1})
	if reenc != 0 {
		t.Fatalf("first post-restore capture re-encoded %d buckets, want 0 (cache seeded)", reenc)
	}
	for b := 1; b < len(reChunks); b++ {
		if !sameSlice(reChunks[b], split[b]) {
			t.Fatalf("post-restore chunk %d not aliased to restored blob", b)
		}
	}
	if !bytes.Equal(concat(reChunks), concat(chunks)) {
		t.Fatalf("post-restore encoding differs from source")
	}
}

func TestDecodeBucketedRejectsMalformed(t *testing.T) {
	tr := NewTracker(2)
	tr.Set("a", []byte("b"))
	chunks, _ := tr.EncodeChunks(1, []byte{7})
	valid := concat(chunks)

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("notbucketed-----rest")},
		{"truncated prelude", valid[:10]},
		{"truncated bucket", valid[:len(valid)-1]},
		{"zero buckets", func() []byte {
			d := append([]byte(nil), valid...)
			// bucket count u32 sits after magic+seq+dlen+digest
			off := len(bucketMagic) + 8 + 8 + 1
			d[off], d[off+1], d[off+2], d[off+3] = 0, 0, 0, 0
			return d[:off+4]
		}()},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodeBucketed(tt.data); err == nil {
				t.Fatalf("DecodeBucketed accepted malformed input")
			}
		})
	}
}
