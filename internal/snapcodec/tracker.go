// Bucketed canonical snapshots: the incremental variant of the flat
// framing in snapcodec.go. Keys are distributed over a fixed number of
// hash buckets; each bucket encodes independently (same fixed big-endian
// framing, keys sorted within the bucket), and a Tracker mirrors the
// application state so that only buckets touched since the previous
// capture are re-encoded. Capture cost becomes O(writes-since-last-
// checkpoint + buckets), not O(state) — the checkpoint layer hands the
// per-bucket chunks straight to the Merkle commitment, so clean buckets
// also keep their cached leaf hashes.
//
// Canonicality: the bucket of a key is a pure function of the key bytes
// (FNV-1a 64), the bucket count is part of the encoding, and bucket
// contents are key-sorted — identical state yields identical chunks in
// every process, exactly like the flat format. The bucket count is
// adopted from the blob on restore, so a fetched snapshot re-buckets the
// restoring replica identically to the serving one.
//
// Format (concatenation of the chunk list):
//
//	chunk 0 (prelude):  magic "sbftbkt1", lastSeq u64, dlen u64, digest,
//	                    buckets u32
//	chunk 1+b:          count u64, count × ( klen u64, key bytes,
//	                    vlen u64, value bytes )   — keys sorted
package snapcodec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// bucketMagic versions the bucketed canonical snapshot framing.
const bucketMagic = "sbftbkt1"

// DefaultBuckets is the bucket count applications use unless tuned: all
// replicas of a deployment must agree on it (it shapes the certified
// chunk layout). Coarse on purpose — tiny test states stay cheap to
// transfer; large-state deployments and benchmarks raise it so the dirty
// fraction resolves finely.
const DefaultBuckets = 64

// MaxBuckets bounds the bucket count a blob may declare; a guard against
// allocation bombs from malformed (never certified) input.
const MaxBuckets = 1 << 20

// BucketOf maps a key to its bucket among n. Pure function of the key
// bytes: every replica agrees.
func BucketOf(key string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// IsBucketed reports whether data carries the bucketed framing.
func IsBucketed(data []byte) bool {
	return len(data) >= len(bucketMagic) && string(data[:len(bucketMagic)]) == bucketMagic
}

// Tracker maintains the bucketed encoding of one application's state
// incrementally: the application reports every mutation (Set/Delete),
// and EncodeChunks re-encodes only the buckets touched since the last
// call, returning clean buckets as the identical cached byte slices.
// Returned slices are never mutated afterwards, so snapshot generations
// retained by the checkpoint layer can alias them safely.
type Tracker struct {
	buckets int
	content []map[string][]byte // live mirror, one map per bucket
	enc     [][]byte            // cached encoding per bucket (nil = stale)
}

// NewTracker returns a tracker over the given bucket count (DefaultBuckets
// if n <= 0). All buckets start stale: the first capture encodes
// everything.
func NewTracker(n int) *Tracker {
	if n <= 0 {
		n = DefaultBuckets
	}
	t := &Tracker{
		buckets: n,
		content: make([]map[string][]byte, n),
		enc:     make([][]byte, n),
	}
	for i := range t.content {
		t.content[i] = make(map[string][]byte)
	}
	return t
}

// Buckets reports the bucket count.
func (t *Tracker) Buckets() int { return t.buckets }

// Set records a key write. The value slice is referenced, not copied —
// callers must not mutate it afterwards (the same contract the
// authenticated state map imposes).
func (t *Tracker) Set(key string, val []byte) {
	b := BucketOf(key, t.buckets)
	t.content[b][key] = val
	t.enc[b] = nil
}

// Delete records a key deletion.
func (t *Tracker) Delete(key string) {
	b := BucketOf(key, t.buckets)
	delete(t.content[b], key)
	t.enc[b] = nil
}

// encodeBucket builds the canonical encoding of bucket b.
func (t *Tracker) encodeBucket(b int) []byte {
	m := t.content[b]
	keys := make([]string, 0, len(m))
	n := 8
	for k := range m {
		keys = append(keys, k)
		n += 16 + len(k) + len(m[k])
	}
	sort.Strings(keys)
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(m[k])))
		buf = append(buf, m[k]...)
	}
	return buf
}

// EncodeChunks returns the full chunk list of the bucketed snapshot for
// the given (lastSeq, digest) — the prelude followed by one chunk per
// bucket — re-encoding only buckets mutated since the previous call, and
// reports how many buckets were re-encoded. Clean buckets come back as
// the identical slices of the previous call, which is what lets the
// checkpoint layer reuse their leaf hashes.
func (t *Tracker) EncodeChunks(lastSeq uint64, digest []byte) ([][]byte, int) {
	prelude := make([]byte, 0, len(bucketMagic)+8+8+len(digest)+4)
	prelude = append(prelude, bucketMagic...)
	prelude = binary.BigEndian.AppendUint64(prelude, lastSeq)
	prelude = binary.BigEndian.AppendUint64(prelude, uint64(len(digest)))
	prelude = append(prelude, digest...)
	prelude = binary.BigEndian.AppendUint32(prelude, uint32(t.buckets))

	chunks := make([][]byte, 1+t.buckets)
	chunks[0] = prelude
	reencoded := 0
	for b := 0; b < t.buckets; b++ {
		if t.enc[b] == nil {
			t.enc[b] = t.encodeBucket(b)
			reencoded++
		}
		chunks[1+b] = t.enc[b]
	}
	return chunks, reencoded
}

// Restore rebuilds the tracker from a decoded bucketed snapshot: the
// mirror adopts the blob's bucket count and entries, and the cached
// encodings are seeded from the blob's own chunks — so the first capture
// after a state transfer is already incremental instead of a full
// re-encode.
func (t *Tracker) Restore(st State, buckets int, chunks [][]byte) {
	t.buckets = buckets
	t.content = make([]map[string][]byte, buckets)
	for i := range t.content {
		t.content[i] = make(map[string][]byte)
	}
	for _, e := range st.Entries {
		t.content[BucketOf(e.Key, buckets)][e.Key] = e.Val
	}
	t.enc = make([][]byte, buckets)
	for b := 0; b < buckets && 1+b < len(chunks); b++ {
		t.enc[b] = chunks[1+b]
	}
}

// BucketLookup searches one bucket chunk (the canonical per-bucket
// framing: count u64, then count × (klen u64, key, vlen u64, value)) for
// a key. It returns the value and whether the key is present, and errors
// only on malformed framing — so a VERIFIED chunk authenticates both the
// presence and the absence of the key. The certified read path uses this
// client-side: the chunk's Merkle leaf binds these exact bytes, so a
// replica cannot hide or invent an entry without breaking the proof.
func BucketLookup(chunk []byte, key string) ([]byte, bool, error) {
	rest := chunk
	readU64 := func() (uint64, error) {
		if len(rest) < 8 {
			return 0, fmt.Errorf("snapcodec: truncated bucket chunk")
		}
		v := binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		return v, nil
	}
	count, err := readU64()
	if err != nil {
		return nil, false, err
	}
	if count > maxLen/16 || count > uint64(len(rest))/16 {
		return nil, false, fmt.Errorf("snapcodec: %d entries in %d bytes", count, len(rest))
	}
	var val []byte
	found := false
	for i := uint64(0); i < count; i++ {
		klen, err := readU64()
		if err != nil {
			return nil, false, err
		}
		if klen > maxLen || uint64(len(rest)) < klen {
			return nil, false, fmt.Errorf("snapcodec: bad key length %d", klen)
		}
		k := string(rest[:klen])
		rest = rest[klen:]
		vlen, err := readU64()
		if err != nil {
			return nil, false, err
		}
		if vlen > maxLen || uint64(len(rest)) < vlen {
			return nil, false, fmt.Errorf("snapcodec: bad value length %d", vlen)
		}
		if k == key {
			found = true
			if vlen > 0 {
				val = append([]byte(nil), rest[:vlen]...)
			}
		}
		rest = rest[vlen:]
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("snapcodec: %d trailing bucket bytes", len(rest))
	}
	return val, found, nil
}

// DecodeBucketed parses an assembled bucketed snapshot, returning the
// state and the re-split chunk list (prelude + one slice per bucket,
// aliasing data) for seeding a Tracker.
func DecodeBucketed(data []byte) (State, [][]byte, error) {
	if !IsBucketed(data) {
		return State{}, nil, fmt.Errorf("snapcodec: bad bucket magic")
	}
	rest := data[len(bucketMagic):]
	readU64 := func() (uint64, error) {
		if len(rest) < 8 {
			return 0, fmt.Errorf("snapcodec: truncated")
		}
		v := binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		return v, nil
	}
	var st State
	var err error
	if st.LastSeq, err = readU64(); err != nil {
		return State{}, nil, err
	}
	dlen, err := readU64()
	if err != nil {
		return State{}, nil, err
	}
	if dlen > maxLen || uint64(len(rest)) < dlen {
		return State{}, nil, fmt.Errorf("snapcodec: bad digest length %d", dlen)
	}
	if dlen > 0 {
		st.Digest = append([]byte(nil), rest[:dlen]...)
		rest = rest[dlen:]
	}
	if len(rest) < 4 {
		return State{}, nil, fmt.Errorf("snapcodec: truncated bucket count")
	}
	buckets := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if buckets <= 0 || buckets > MaxBuckets {
		return State{}, nil, fmt.Errorf("snapcodec: bad bucket count %d", buckets)
	}
	chunks := make([][]byte, 1+buckets)
	chunks[0] = data[:len(data)-len(rest)]
	for b := 0; b < buckets; b++ {
		start := rest
		count, err := readU64()
		if err != nil {
			return State{}, nil, err
		}
		if count > maxLen/16 || count > uint64(len(rest))/16 {
			return State{}, nil, fmt.Errorf("snapcodec: %d entries in %d bytes", count, len(rest))
		}
		for i := uint64(0); i < count; i++ {
			klen, err := readU64()
			if err != nil {
				return State{}, nil, err
			}
			if klen > maxLen || uint64(len(rest)) < klen {
				return State{}, nil, fmt.Errorf("snapcodec: bad key length %d", klen)
			}
			key := string(rest[:klen])
			rest = rest[klen:]
			vlen, err := readU64()
			if err != nil {
				return State{}, nil, err
			}
			if vlen > maxLen || uint64(len(rest)) < vlen {
				return State{}, nil, fmt.Errorf("snapcodec: bad value length %d", vlen)
			}
			var val []byte
			if vlen > 0 {
				val = append([]byte(nil), rest[:vlen]...)
				rest = rest[vlen:]
			}
			st.Entries = append(st.Entries, Entry{Key: key, Val: val})
		}
		chunks[1+b] = start[:len(start)-len(rest)]
	}
	if len(rest) != 0 {
		return State{}, nil, fmt.Errorf("snapcodec: %d trailing bytes", len(rest))
	}
	return st, chunks, nil
}
