package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"sbft/internal/snapcodec"
)

// The incremental capture path (SnapshotChunks) and the flat path
// (Snapshot) must describe the same state: the checkpoint layer picks
// whichever is available, and π roots certify only the chunked form, so
// divergence between them would split checkpoint agreement between
// replicas on different paths.

func concatChunks(chunks [][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c)
	}
	return buf.Bytes()
}

func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// bucketOffset is the byte offset of chunk i inside the concatenation of
// chunks (for checking that restored captures alias the blob in place).
func bucketOffset(_ []byte, chunks [][]byte, i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += len(chunks[j])
	}
	return off
}

func populate(t *testing.T, s *Store, blocks int) {
	t.Helper()
	for seq := uint64(1); seq <= uint64(blocks); seq++ {
		s.ExecuteBlock(seq, [][]byte{
			Put(fmt.Sprintf("key-%03d", seq), []byte(fmt.Sprintf("val-%d", seq))),
			Put(fmt.Sprintf("key-%03d", seq*7%100), []byte("rewritten")),
		})
	}
}

func TestSnapshotChunksMatchFlatSnapshot(t *testing.T) {
	s := NewWithBuckets(8)
	populate(t, s, 30)
	s.ExecuteBlock(31, [][]byte{Delete("key-003")})

	chunks, ok, err := s.SnapshotChunks()
	if err != nil || !ok {
		t.Fatalf("SnapshotChunks: ok=%v err=%v", ok, err)
	}
	bucketed, _, err := snapcodec.DecodeBucketed(concatChunks(chunks))
	if err != nil {
		t.Fatalf("DecodeBucketed: %v", err)
	}
	flatBlob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	flat, err := snapcodec.Decode(flatBlob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if bucketed.LastSeq != flat.LastSeq || !bytes.Equal(bucketed.Digest, flat.Digest) {
		t.Fatalf("metadata diverged: bucketed (%d,%x) flat (%d,%x)",
			bucketed.LastSeq, bucketed.Digest, flat.LastSeq, flat.Digest)
	}
	bm, fm := bucketed.ToMap(), flat.ToMap()
	if len(bm) != len(fm) {
		t.Fatalf("entry count diverged: bucketed %d, flat %d", len(bm), len(fm))
	}
	for k, v := range fm {
		if !bytes.Equal(bm[k], v) {
			t.Fatalf("key %q diverged between capture paths", k)
		}
	}
}

func TestCleanChunksKeepSliceIdentity(t *testing.T) {
	s := NewWithBuckets(16)
	populate(t, s, 40)

	first, _, _ := s.SnapshotChunks()
	second, _, _ := s.SnapshotChunks()
	for i := 1; i < len(first); i++ {
		if !sameSlice(first[i], second[i]) {
			t.Fatalf("idle capture changed chunk %d's slice identity", i)
		}
	}

	// One Put dirties exactly the written key's bucket (plus the prelude,
	// which re-encodes every capture because it carries lastSeq/digest).
	key := "freshly-written"
	s.ExecuteBlock(41, [][]byte{Put(key, []byte("x"))})
	dirty := 1 + snapcodec.BucketOf(key, 16)
	third, _, _ := s.SnapshotChunks()
	for i := 1; i < len(third); i++ {
		if i == dirty {
			if sameSlice(second[i], third[i]) {
				t.Fatalf("written bucket %d kept its stale slice", i)
			}
			continue
		}
		if !sameSlice(second[i], third[i]) {
			t.Fatalf("untouched bucket %d lost slice identity after a single Put", i)
		}
	}
}

func TestRestoreSeedsIncrementalCapture(t *testing.T) {
	src := NewWithBuckets(8)
	populate(t, src, 25)
	chunks, _, _ := src.SnapshotChunks()
	blob := concatChunks(chunks)

	dst := New() // DefaultBuckets; must adopt the blob's count
	if err := dst.Restore(blob); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.LastExecuted() != src.LastExecuted() || !bytes.Equal(dst.Digest(), src.Digest()) {
		t.Fatalf("restored store diverged: seq %d/%d", dst.LastExecuted(), src.LastExecuted())
	}
	reChunks, ok, err := dst.SnapshotChunks()
	if err != nil || !ok {
		t.Fatalf("SnapshotChunks after restore: ok=%v err=%v", ok, err)
	}
	if len(reChunks) != len(chunks) {
		t.Fatalf("post-restore chunk count %d, want %d (bucket count not adopted)", len(reChunks), len(chunks))
	}
	if !bytes.Equal(concatChunks(reChunks), blob) {
		t.Fatalf("post-restore capture differs from the restored snapshot")
	}
	// The tracker's encoding cache is seeded from the blob: the first
	// post-restore capture aliases the restored snapshot's own bytes
	// instead of re-encoding the whole state.
	for i := 1; i < len(reChunks); i++ {
		if len(reChunks[i]) > 0 && &reChunks[i][0] != &blob[bucketOffset(blob, chunks, i)] {
			t.Fatalf("post-restore chunk %d re-encoded instead of aliasing the restored blob", i)
		}
	}

	// A restored store keeps tracking: a write after restore dirties only
	// its bucket and the re-captured state matches a flat decode.
	dst.ExecuteBlock(dst.LastExecuted()+1, [][]byte{Put("post-restore", []byte("y"))})
	after, _, _ := dst.SnapshotChunks()
	st, _, err := snapcodec.DecodeBucketed(concatChunks(after))
	if err != nil {
		t.Fatalf("DecodeBucketed after post-restore write: %v", err)
	}
	if got := st.ToMap()["post-restore"]; !bytes.Equal(got, []byte("y")) {
		t.Fatalf("post-restore write missing from capture: %q", got)
	}
}

func TestLegacyRestoreRebuildsTracker(t *testing.T) {
	src := New()
	populate(t, src, 10)
	flat, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dst := New()
	if err := dst.Restore(flat); err != nil {
		t.Fatalf("Restore(flat): %v", err)
	}
	chunks, ok, err := dst.SnapshotChunks()
	if err != nil || !ok {
		t.Fatalf("SnapshotChunks: ok=%v err=%v", ok, err)
	}
	srcChunks, _, _ := src.SnapshotChunks()
	if !bytes.Equal(concatChunks(chunks), concatChunks(srcChunks)) {
		t.Fatalf("tracker rebuilt from flat snapshot diverged from source capture")
	}
}
