package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"sbft/internal/snapcodec"
)

// Cross-shard two-phase commit op envelope (ROADMAP item 5).
//
// A sharded deployment partitions the keyspace across k independent SBFT
// groups; a cross-shard transaction is driven by an UNTRUSTED coordinator
// through three ordered operations:
//
//	TxPrepare(txid, participants, writes)  → "PREPARED" | "CONFLICT:…"
//	TxCommit(txid, certs[other shards])    → "COMMITTED" | "ERR:…"
//	TxAbort(txid, refuser, cert)           → "ABORTED"   | "ERR:…"
//
// Prepare locks the written keys and stages the writes without applying
// them. Commit applies the staged writes ONLY after verifying, for every
// OTHER participant shard, a π-certified execute certificate proving that
// shard answered its prepare with "PREPARED" (or had already committed).
// Abort requires a certificate proving some participant REFUSED — so a
// lying coordinator can neither commit a transaction a shard refused nor
// abort one every shard accepted: the two evidence classes cannot both
// exist for one txid.
//
// Refusals are STICKY: a prepare that cannot lock (conflict, bad write,
// wrong shard) permanently aborts the txid on this shard before the
// refusal result is emitted. Without stickiness a coordinator could farm
// a CONFLICT certificate, retry the prepare until it succeeded, and hold
// both abort and commit evidence for the same transaction.
//
// All 2PC state (prepared records, per-key locks, decision markers)
// lives IN the authenticated state map under a reserved "\x00tx/" key
// prefix, written through the snapshot tracker like any user key: state
// digests, checkpoints, state transfer and restarts cover the protocol
// state with no extra machinery, and replicas agree on it byte for byte.
const (
	// OpTxPrepare locks and stages a transaction's writes on one shard.
	// The Op.Key field carries the transaction id.
	OpTxPrepare OpKind = iota + 5
	// OpTxCommit applies a staged transaction after verifying the other
	// participants' prepare certificates.
	OpTxCommit
	// OpTxAbort discards a staged transaction on refusal evidence.
	OpTxAbort
)

// Transaction result values. PREPARED/COMMITTED results are commit
// evidence; ABORTED/CONFLICT results are abort evidence; ERR results are
// evidence of nothing (deterministic rejections of invalid requests).
const (
	TxPrepared  = "PREPARED"
	TxCommitted = "COMMITTED"
	TxAborted   = "ABORTED"
)

// reserved key layout of the 2PC state.
const (
	txRecPrefix  = "\x00tx/p/" // prepared record: txid → prepare payload
	txLockPrefix = "\x00tx/l/" // write lock: user key → txid
	txDonePrefix = "\x00tx/d/" // decision marker: txid → "c" | "a"
)

func txRecKey(txid string) string  { return txRecPrefix + txid }
func txLockKey(key string) string  { return txLockPrefix + key }
func txDoneKey(txid string) string { return txDonePrefix + txid }

// reservedKey reports whether a key is in the store's internal namespace
// (user operations on it are refused deterministically).
func reservedKey(key string) bool { return len(key) > 0 && key[0] == 0 }

// CertVerifier checks an opaque execute certificate allegedly from
// another shard's SBFT group. wantPrepared selects the evidence class:
// true demands proof the shard answered txid's prepare with
// PREPARED/COMMITTED (commit evidence); false demands proof it answered
// with a refusal — CONFLICT or ABORTED (abort evidence). The sharded
// deployment layer supplies an implementation wired to every group's π
// public key (internal/shard); it must be deterministic, since it runs
// inside execution on every replica of the verifying shard.
type CertVerifier func(shard int, txid string, wantPrepared bool, cert []byte) error

// RouteKey maps a key to its owning shard among k groups, with the same
// FNV-1a discipline as the snapshot bucketing (snapcodec.BucketOf): a
// pure function of the key bytes every replica and client agrees on.
func RouteKey(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return snapcodec.BucketOf(key, shards)
}

// EnableSharding makes the store shard `shard` of a k-group deployment:
// user operations on keys routing elsewhere are refused
// deterministically, and verify becomes the commit rule's certificate
// check for the other shards' prepare/refusal evidence. All replicas of
// the group must be configured identically before sequence 1.
func (s *Store) EnableSharding(shard, shards int, verify CertVerifier) {
	s.shardID = shard
	s.shards = shards
	s.certVerify = verify
}

// Shard reports the store's shard id and total shard count (0,0 when
// sharding is not enabled).
func (s *Store) Shard() (int, int) { return s.shardID, s.shards }

// TxStats implements core.TwoPhaser: cumulative prepares staged, commits
// applied and aborts applied since process start.
func (s *Store) TxStats() (prepares, commits, aborts uint64) {
	return s.txPrepares, s.txCommits, s.txAborts
}

// ownsKey reports whether this store's shard owns key.
func (s *Store) ownsKey(key string) bool {
	return s.shards <= 1 || RouteKey(key, s.shards) == s.shardID
}

// userKeyError validates a user operation's key: reserved-namespace and
// foreign-shard keys are refused, and writes to locked keys are parked
// until the lock holder commits or aborts. Returns nil when the
// operation may proceed.
func (s *Store) userKeyError(key string, write bool) []byte {
	if reservedKey(key) {
		return []byte("ERR:reserved-key")
	}
	if !s.ownsKey(key) {
		return []byte("ERR:wrong-shard")
	}
	if write {
		if _, locked := s.state.Get(txLockKey(key)); locked {
			return []byte("ERR:locked")
		}
	}
	return nil
}

// setTx writes a reserved 2PC state entry through both the state map and
// the snapshot tracker (the same funnel user writes take).
func (s *Store) setTx(key string, val []byte) {
	s.state.Set(key, val)
	s.tracker.Set(key, val)
}

// delTx removes a reserved 2PC state entry.
func (s *Store) delTx(key string) {
	s.state.Delete(key)
	s.tracker.Delete(key)
}

// TxPrepare encodes a prepare op: txid, the full (deduplicated, sorted)
// participant shard list, and this shard's staged writes (encoded Put or
// Delete ops).
func TxPrepare(txid string, participants []int, writes ...[]byte) []byte {
	parts := dedupShards(participants)
	var payload []byte
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(parts)))
	for _, p := range parts {
		payload = binary.BigEndian.AppendUint32(payload, uint32(p))
	}
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(writes)))
	for _, w := range writes {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(w)))
		payload = append(payload, w...)
	}
	return Op{Kind: OpTxPrepare, Key: txid, Value: payload}.Encode()
}

// TxCommit encodes a commit op carrying, for each OTHER participant
// shard, its prepare certificate (encoding is canonical: sorted by
// shard, so retried commits stay byte-identical).
func TxCommit(txid string, certs map[int][]byte) []byte {
	shards := make([]int, 0, len(certs))
	for sh := range certs {
		shards = append(shards, sh)
	}
	sort.Ints(shards)
	var payload []byte
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(shards)))
	for _, sh := range shards {
		payload = binary.BigEndian.AppendUint32(payload, uint32(sh))
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(certs[sh])))
		payload = append(payload, certs[sh]...)
	}
	return Op{Kind: OpTxCommit, Key: txid, Value: payload}.Encode()
}

// TxAbort encodes an abort op carrying one refusal certificate from the
// shard that refused the transaction.
func TxAbort(txid string, refuser int, cert []byte) []byte {
	var payload []byte
	payload = binary.BigEndian.AppendUint32(payload, uint32(refuser))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(cert)))
	payload = append(payload, cert...)
	return Op{Kind: OpTxAbort, Key: txid, Value: payload}.Encode()
}

// dedupShards sorts and deduplicates a participant list (a transaction
// naming the same shard twice is a single participation).
func dedupShards(shards []int) []int {
	out := append([]int(nil), shards...)
	sort.Ints(out)
	w := 0
	for i, sh := range out {
		if i == 0 || sh != out[w-1] {
			out[w] = sh
			w++
		}
	}
	return out[:w]
}

// DecodeTxPrepare parses a prepare op's participant list and staged
// writes.
func DecodeTxPrepare(op Op) (participants []int, writes [][]byte, err error) {
	if op.Kind != OpTxPrepare {
		return nil, nil, fmt.Errorf("%w: kind %d is not a prepare", ErrBadOp, op.Kind)
	}
	return decodePreparePayload(op.Value)
}

func decodePreparePayload(payload []byte) (parts []int, writes [][]byte, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("%w: short prepare", ErrBadOp)
	}
	np := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	if uint64(len(payload)) < uint64(np)*4 {
		return nil, nil, fmt.Errorf("%w: truncated participants", ErrBadOp)
	}
	parts = make([]int, np)
	for i := range parts {
		parts[i] = int(binary.BigEndian.Uint32(payload[:4]))
		payload = payload[4:]
	}
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("%w: short prepare writes", ErrBadOp)
	}
	nw := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	writes = make([][]byte, 0, nw)
	for i := uint32(0); i < nw; i++ {
		if len(payload) < 4 {
			return nil, nil, fmt.Errorf("%w: truncated prepare writes", ErrBadOp)
		}
		l := binary.BigEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint32(len(payload)) < l {
			return nil, nil, fmt.Errorf("%w: truncated prepare write", ErrBadOp)
		}
		writes = append(writes, payload[:l])
		payload = payload[l:]
	}
	if len(payload) != 0 {
		return nil, nil, fmt.Errorf("%w: trailing prepare bytes", ErrBadOp)
	}
	return parts, writes, nil
}

func decodeCommitPayload(payload []byte) (map[int][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: short commit", ErrBadOp)
	}
	n := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	certs := make(map[int][]byte, n)
	for i := uint32(0); i < n; i++ {
		if len(payload) < 8 {
			return nil, fmt.Errorf("%w: truncated commit certs", ErrBadOp)
		}
		sh := int(binary.BigEndian.Uint32(payload[:4]))
		l := binary.BigEndian.Uint32(payload[4:8])
		payload = payload[8:]
		if uint32(len(payload)) < l {
			return nil, fmt.Errorf("%w: truncated commit cert", ErrBadOp)
		}
		certs[sh] = payload[:l]
		payload = payload[l:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: trailing commit bytes", ErrBadOp)
	}
	return certs, nil
}

func decodeAbortPayload(payload []byte) (refuser int, cert []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: short abort", ErrBadOp)
	}
	refuser = int(binary.BigEndian.Uint32(payload[:4]))
	l := binary.BigEndian.Uint32(payload[4:8])
	payload = payload[8:]
	if uint32(len(payload)) != l {
		return 0, nil, fmt.Errorf("%w: truncated abort cert", ErrBadOp)
	}
	return refuser, payload, nil
}

// refuse permanently aborts txid on this shard and returns the refusal
// result. Stickiness is the soundness core of the evidence scheme: once
// any replica set of this shard has issued a CONFLICT certificate for
// txid, no later prepare may succeed — otherwise commit evidence and
// abort evidence for the same transaction could both exist.
func (s *Store) refuse(txid, reason string) []byte {
	s.setTx(txDoneKey(txid), []byte("a"))
	return []byte("CONFLICT:" + reason)
}

// applyTxPrepare executes the prepare phase on this shard.
func (s *Store) applyTxPrepare(op Op) []byte {
	txid := op.Key
	if txid == "" {
		return []byte("ERR:empty-txid")
	}
	if done, ok := s.state.Get(txDoneKey(txid)); ok {
		if string(done) == "c" {
			return []byte(TxCommitted)
		}
		return []byte(TxAborted)
	}
	if rec, ok := s.state.Get(txRecKey(txid)); ok {
		// Idempotent re-prepare: coordinators (original or recovery)
		// resubmit prepares to refetch lost certificates. A DIFFERENT
		// payload under the same txid is neither acceptance nor refusal —
		// answering CONFLICT while the original prepare holds locks would
		// mint abort evidence against a prepared transaction.
		if bytes.Equal(rec, op.Value) {
			return []byte(TxPrepared)
		}
		return []byte("ERR:tx-mismatch")
	}
	parts, writes, err := decodePreparePayload(op.Value)
	if err != nil {
		return s.refuse(txid, "malformed")
	}
	parts = dedupShards(parts)
	if len(parts) == 0 {
		return s.refuse(txid, "no-participants")
	}
	if s.shards > 0 {
		member := false
		for _, p := range parts {
			if p == s.shardID {
				member = true
			}
			if p < 0 || p >= s.shards {
				return s.refuse(txid, "bad-participant")
			}
		}
		if !member {
			return s.refuse(txid, "not-participant")
		}
	}
	for _, w := range writes {
		wo, err := DecodeOp(w)
		if err != nil || (wo.Kind != OpPut && wo.Kind != OpDelete) {
			return s.refuse(txid, "bad-write")
		}
		if reservedKey(wo.Key) {
			return s.refuse(txid, "reserved-key")
		}
		if !s.ownsKey(wo.Key) {
			return s.refuse(txid, "wrong-shard")
		}
		if holder, locked := s.state.Get(txLockKey(wo.Key)); locked && string(holder) != txid {
			return s.refuse(txid, "locked")
		}
	}
	// All checks passed: stage the record and take the locks.
	s.setTx(txRecKey(txid), append([]byte(nil), op.Value...))
	for _, w := range writes {
		wo, _ := DecodeOp(w)
		s.setTx(txLockKey(wo.Key), []byte(txid))
	}
	s.txPrepares++
	return []byte(TxPrepared)
}

// applyTxCommit executes the commit phase: the certificate-verifying
// commit rule. The staged writes apply ONLY if every other participant's
// certificate proves that shard prepared (or already committed) txid.
func (s *Store) applyTxCommit(op Op) []byte {
	txid := op.Key
	if txid == "" {
		return []byte("ERR:empty-txid")
	}
	if done, ok := s.state.Get(txDoneKey(txid)); ok {
		if string(done) == "c" {
			return []byte(TxCommitted) // idempotent retry
		}
		return []byte("ERR:aborted")
	}
	rec, ok := s.state.Get(txRecKey(txid))
	if !ok {
		return []byte("ERR:not-prepared")
	}
	certs, err := decodeCommitPayload(op.Value)
	if err != nil {
		return []byte("ERR:malformed")
	}
	parts, writes, err := decodePreparePayload(rec)
	if err != nil {
		return []byte("ERR:corrupt-record")
	}
	for _, p := range dedupShards(parts) {
		if p == s.shardID {
			continue // our own prepare is the local record itself
		}
		cert, ok := certs[p]
		if !ok {
			return []byte("ERR:missing-cert")
		}
		if s.certVerify == nil {
			return []byte("ERR:no-verifier")
		}
		if err := s.certVerify(p, txid, true, cert); err != nil {
			return []byte("ERR:bad-cert")
		}
	}
	// Commit: release locks, apply staged writes, record the decision.
	for _, w := range writes {
		wo, _ := DecodeOp(w)
		s.delTx(txLockKey(wo.Key))
		switch wo.Kind {
		case OpPut:
			s.state.Set(wo.Key, wo.Value)
			s.tracker.Set(wo.Key, wo.Value)
		case OpDelete:
			s.state.Delete(wo.Key)
			s.tracker.Delete(wo.Key)
		}
	}
	s.delTx(txRecKey(txid))
	s.setTx(txDoneKey(txid), []byte("c"))
	s.txCommits++
	return []byte(TxCommitted)
}

// applyTxAbort discards a transaction on refusal evidence: a certificate
// proving some participant answered txid's prepare with a refusal. An
// invalid certificate is rejected deterministically — this is exactly
// what stops an equivocating coordinator from aborting on one shard a
// transaction it commits on another.
func (s *Store) applyTxAbort(op Op) []byte {
	txid := op.Key
	if txid == "" {
		return []byte("ERR:empty-txid")
	}
	if done, ok := s.state.Get(txDoneKey(txid)); ok {
		if string(done) == "a" {
			return []byte(TxAborted) // idempotent retry
		}
		return []byte("ERR:committed")
	}
	refuser, cert, err := decodeAbortPayload(op.Value)
	if err != nil {
		return []byte("ERR:malformed")
	}
	if s.certVerify == nil {
		return []byte("ERR:no-verifier")
	}
	if err := s.certVerify(refuser, txid, false, cert); err != nil {
		return []byte("ERR:bad-cert")
	}
	if rec, ok := s.state.Get(txRecKey(txid)); ok {
		if _, writes, err := decodePreparePayload(rec); err == nil {
			for _, w := range writes {
				if wo, err := DecodeOp(w); err == nil {
					s.delTx(txLockKey(wo.Key))
				}
			}
		}
		s.delTx(txRecKey(txid))
	}
	s.setTx(txDoneKey(txid), []byte("a"))
	s.txAborts++
	return []byte(TxAborted)
}

// PreparedVal reports whether an execute result value is commit
// evidence: the shard prepared (or already committed) the transaction.
func PreparedVal(val []byte) bool {
	v := string(val)
	return v == TxPrepared || v == TxCommitted
}

// RefusalVal reports whether an execute result value is abort evidence:
// the shard refused or permanently aborted the transaction.
func RefusalVal(val []byte) bool {
	v := string(val)
	return v == TxAborted || strings.HasPrefix(v, "CONFLICT:")
}

// TxState reports this shard's local decision for txid: "committed",
// "aborted", "prepared" (staged, undecided) or "none".
func (s *Store) TxState(txid string) string {
	if done, ok := s.state.Get(txDoneKey(txid)); ok {
		if string(done) == "c" {
			return "committed"
		}
		return "aborted"
	}
	if _, ok := s.state.Get(txRecKey(txid)); ok {
		return "prepared"
	}
	return "none"
}

// LockedKeys returns the user keys currently under a prepared-write
// lock, sorted — the harness auditor's lock-leak probe.
func (s *Store) LockedKeys() []string {
	var keys []string
	for k := range s.state.Snapshot() {
		if strings.HasPrefix(k, txLockPrefix) {
			keys = append(keys, strings.TrimPrefix(k, txLockPrefix))
		}
	}
	sort.Strings(keys)
	return keys
}

// PendingTxs returns txids staged on this shard but not yet decided,
// sorted.
func (s *Store) PendingTxs() []string {
	var ids []string
	for k := range s.state.Snapshot() {
		if strings.HasPrefix(k, txRecPrefix) {
			ids = append(ids, strings.TrimPrefix(k, txRecPrefix))
		}
	}
	sort.Strings(ids)
	return ids
}
