package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestBundleExecutesSubOps(t *testing.T) {
	s := New()
	b := Bundle(
		Put("a", []byte("1")),
		Put("b", []byte("2")),
		Delete("a"),
	)
	res := s.ExecuteBlock(1, [][]byte{b})
	if string(res[0]) != "OK:3" {
		t.Fatalf("bundle result = %q, want OK:3", res[0])
	}
	if _, ok := s.Value("a"); ok {
		t.Fatal("deleted key a still present")
	}
	if v, ok := s.Value("b"); !ok || string(v) != "2" {
		t.Fatalf("Value(b) = %q, %v", v, ok)
	}
}

func TestBundleOpsRoundTrip(t *testing.T) {
	ops := [][]byte{Put("x", []byte("1")), Get("y"), Delete("z")}
	enc := Bundle(ops...)
	op, err := DecodeOp(enc)
	if err != nil {
		t.Fatalf("DecodeOp: %v", err)
	}
	if op.Kind != OpBundle {
		t.Fatalf("kind = %d, want OpBundle", op.Kind)
	}
	got, err := BundleOps(op.Value)
	if err != nil {
		t.Fatalf("BundleOps: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d sub-ops, want 3", len(got))
	}
	for i := range ops {
		if !bytes.Equal(got[i], ops[i]) {
			t.Fatalf("sub-op %d mismatch", i)
		}
	}
}

func TestBundleOpsRejectsMalformed(t *testing.T) {
	tests := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short count", []byte{0, 0}},
		{"truncated op header", []byte{0, 0, 0, 1, 0, 0}},
		{"truncated op body", []byte{0, 0, 0, 1, 0, 0, 0, 9, 1}},
		{"trailing bytes", append(Bundle(Put("a", nil))[9:], 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := BundleOps(tt.payload); err == nil {
				t.Fatal("accepted malformed bundle payload")
			}
		})
	}
}

func TestBundleSkipsNestedAndMalformed(t *testing.T) {
	s := New()
	inner := Bundle(Put("nested", []byte("x")))
	b := Bundle(
		Put("ok", []byte("1")),
		inner,              // nested bundle: skipped
		[]byte{0xDE, 0xAD}, // malformed: skipped
		Put("ok2", []byte("2")),
	)
	res := s.ExecuteBlock(1, [][]byte{b})
	if string(res[0]) != "OK:2" {
		t.Fatalf("result = %q, want OK:2 (nested+malformed skipped)", res[0])
	}
	if _, ok := s.Value("nested"); ok {
		t.Fatal("nested bundle executed")
	}
}

func TestBundleDeterministicAcrossReplicas(t *testing.T) {
	mk := func() []byte {
		var ops [][]byte
		for i := 0; i < 64; i++ {
			ops = append(ops, Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}))
		}
		return Bundle(ops...)
	}
	a, b := New(), New()
	ra := a.ExecuteBlock(1, [][]byte{mk()})
	rb := b.ExecuteBlock(1, [][]byte{mk()})
	if !bytes.Equal(ra[0], rb[0]) || !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("bundle execution diverged")
	}
}

func TestBundleSize(t *testing.T) {
	if got := BundleSize(Put("k", nil)); got != 1 {
		t.Fatalf("BundleSize(single) = %d, want 1", got)
	}
	b := Bundle(Put("a", nil), Put("b", nil), Put("c", nil))
	if got := BundleSize(b); got != 3 {
		t.Fatalf("BundleSize(3) = %d", got)
	}
	if got := BundleSize([]byte{0xFF}); got != 1 {
		t.Fatalf("BundleSize(garbage) = %d, want 1", got)
	}
}

func TestBundleProofVerifies(t *testing.T) {
	s := New()
	b := Bundle(Put("p", []byte("q")))
	res := s.ExecuteBlock(1, [][]byte{b})
	p, err := s.ProveOperation(1, 0)
	if err != nil {
		t.Fatalf("ProveOperation: %v", err)
	}
	if err := Verify(s.Digest(), b, res[0], 1, 0, p); err != nil {
		t.Fatalf("Verify bundle proof: %v", err)
	}
	if !strings.HasPrefix(string(res[0]), "OK:") {
		t.Fatalf("result %q", res[0])
	}
}
