package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestOpCodecRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		op   Op
	}{
		{"put", Op{Kind: OpPut, Key: "alpha", Value: []byte("beta")}},
		{"get", Op{Kind: OpGet, Key: "alpha"}},
		{"delete", Op{Kind: OpDelete, Key: "alpha"}},
		{"empty key", Op{Kind: OpPut, Key: "", Value: []byte("x")}},
		{"empty value", Op{Kind: OpPut, Key: "k", Value: nil}},
		{"binary key", Op{Kind: OpPut, Key: "a\x00b", Value: []byte{0, 1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := DecodeOp(tt.op.Encode())
			if err != nil {
				t.Fatalf("DecodeOp: %v", err)
			}
			if got.Kind != tt.op.Kind || got.Key != tt.op.Key || !bytes.Equal(got.Value, tt.op.Value) {
				t.Fatalf("round trip mismatch: got %+v, want %+v", got, tt.op)
			}
		})
	}
}

func TestDecodeOpRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"bad kind", append([]byte{99}, Put("k", nil)[1:]...)},
		{"truncated key", Put("key", []byte("value"))[:7]},
		{"truncated value", Put("key", []byte("value"))[:14]},
		{"trailing garbage", append(Put("k", []byte("v")), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeOp(tt.data); !errors.Is(err, ErrBadOp) {
				t.Fatalf("err=%v, want ErrBadOp", err)
			}
		})
	}
}

func TestExecuteBlockSemantics(t *testing.T) {
	s := New()
	results := s.ExecuteBlock(1, [][]byte{
		Put("a", []byte("1")),
		Get("a"),
		Get("missing"),
		Delete("a"),
		Get("a"),
	})
	if string(results[0]) != "OK" {
		t.Errorf("put result = %q, want OK", results[0])
	}
	if string(results[1]) != "1" {
		t.Errorf("get result = %q, want 1", results[1])
	}
	if results[2] != nil {
		t.Errorf("get missing = %q, want nil", results[2])
	}
	if string(results[3]) != "OK" {
		t.Errorf("delete result = %q, want OK", results[3])
	}
	if results[4] != nil {
		t.Errorf("get after delete = %q, want nil", results[4])
	}
	if s.LastExecuted() != 1 {
		t.Errorf("LastExecuted = %d, want 1", s.LastExecuted())
	}
}

func TestExecuteBlockMalformedOpIsDeterministicError(t *testing.T) {
	a, b := New(), New()
	ops := [][]byte{Put("k", []byte("v")), {0xde, 0xad}, Get("k")}
	ra := a.ExecuteBlock(1, ops)
	rb := b.ExecuteBlock(1, ops)
	if string(ra[1]) != "ERR:malformed" {
		t.Fatalf("malformed op result = %q", ra[1])
	}
	for i := range ra {
		if !bytes.Equal(ra[i], rb[i]) {
			t.Fatalf("replicas diverged at op %d", i)
		}
	}
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("digests diverged on malformed input")
	}
}

func TestDigestDeterminism(t *testing.T) {
	a, b := New(), New()
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("fresh stores have different digests")
	}
	for seq := uint64(1); seq <= 5; seq++ {
		ops := [][]byte{Put(fmt.Sprintf("k%d", seq), []byte{byte(seq)})}
		a.ExecuteBlock(seq, ops)
		b.ExecuteBlock(seq, ops)
		if !bytes.Equal(a.Digest(), b.Digest()) {
			t.Fatalf("digests diverged at seq %d", seq)
		}
	}
	c := New()
	c.ExecuteBlock(1, [][]byte{Put("different", []byte("x"))})
	if bytes.Equal(a.Digest(), c.Digest()) {
		t.Fatal("different histories share a digest")
	}
}

func TestDigestChangesEachBlock(t *testing.T) {
	s := New()
	seen := map[string]bool{string(s.Digest()): true}
	for seq := uint64(1); seq <= 10; seq++ {
		s.ExecuteBlock(seq, [][]byte{Put("same-key", []byte("same-value"))})
		d := string(s.Digest())
		if seen[d] {
			t.Fatalf("digest repeated at seq %d; digest must commit to seq", seq)
		}
		seen[d] = true
	}
}

func TestProveAndVerifyOperation(t *testing.T) {
	s := New()
	ops := [][]byte{
		Put("x", []byte("10")),
		Put("y", []byte("20")),
		Get("x"),
	}
	results := s.ExecuteBlock(7, ops)
	d := s.Digest()

	for l := range ops {
		p, err := s.ProveOperation(7, l)
		if err != nil {
			t.Fatalf("ProveOperation(7, %d): %v", l, err)
		}
		if err := Verify(d, ops[l], results[l], 7, l, p); err != nil {
			t.Fatalf("Verify(l=%d): %v", l, err)
		}
	}
}

func TestVerifyRejectsForgeries(t *testing.T) {
	s := New()
	ops := [][]byte{Put("x", []byte("10")), Put("y", []byte("20"))}
	results := s.ExecuteBlock(3, ops)
	d := s.Digest()
	p, err := s.ProveOperation(3, 0)
	if err != nil {
		t.Fatalf("ProveOperation: %v", err)
	}

	cases := []struct {
		name string
		f    func() error
	}{
		{"wrong value", func() error { return Verify(d, ops[0], []byte("FORGED"), 3, 0, p) }},
		{"wrong op", func() error { return Verify(d, Put("z", []byte("99")), results[0], 3, 0, p) }},
		{"wrong seq", func() error { return Verify(d, ops[0], results[0], 4, 0, p) }},
		{"wrong position", func() error { return Verify(d, ops[0], results[0], 3, 1, p) }},
		{"wrong digest", func() error {
			bad := append([]byte(nil), d...)
			bad[0] ^= 0xff
			return Verify(bad, ops[0], results[0], 3, 0, p)
		}},
		{"proof for other op", func() error {
			p1, err := s.ProveOperation(3, 1)
			if err != nil {
				return err
			}
			return Verify(d, ops[0], results[0], 3, 0, p1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f(); !errors.Is(err, ErrBadProof) {
				t.Fatalf("err=%v, want ErrBadProof", err)
			}
		})
	}
}

func TestVerifyStaleDigestRejected(t *testing.T) {
	s := New()
	ops := [][]byte{Put("k", []byte("v1"))}
	res := s.ExecuteBlock(1, ops)
	p, _ := s.ProveOperation(1, 0)
	dOld := s.Digest()

	s.ExecuteBlock(2, [][]byte{Put("k", []byte("v2"))})
	dNew := s.Digest()

	// The old proof verifies against the digest of its own block but not
	// against a later state digest.
	if err := Verify(dOld, ops[0], res[0], 1, 0, p); err != nil {
		t.Fatalf("proof rejected under its own digest: %v", err)
	}
	if err := Verify(dNew, ops[0], res[0], 1, 0, p); !errors.Is(err, ErrBadProof) {
		t.Fatalf("stale proof accepted under newer digest: err=%v", err)
	}
}

func TestProveOperationErrors(t *testing.T) {
	s := New()
	s.ExecuteBlock(1, [][]byte{Put("a", nil)})
	if _, err := s.ProveOperation(9, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("unknown block: err=%v, want ErrUnknownBlock", err)
	}
	if _, err := s.ProveOperation(1, 5); err == nil {
		t.Fatal("out-of-range op index accepted")
	}
	if _, err := s.ProveOperation(1, -1); err == nil {
		t.Fatal("negative op index accepted")
	}
}

func TestGarbageCollect(t *testing.T) {
	s := New()
	for seq := uint64(1); seq <= 10; seq++ {
		s.ExecuteBlock(seq, [][]byte{Put("k", []byte{byte(seq)})})
	}
	s.GarbageCollect(8)
	if _, err := s.ProveOperation(5, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("GC'd block still provable: err=%v", err)
	}
	if _, err := s.ProveOperation(9, 0); err != nil {
		t.Fatalf("retained block not provable: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	for seq := uint64(1); seq <= 4; seq++ {
		s.ExecuteBlock(seq, [][]byte{Put(fmt.Sprintf("k%d", seq), []byte("v"))})
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	r := New()
	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(r.Digest(), s.Digest()) {
		t.Fatal("restored digest differs")
	}
	if r.LastExecuted() != 4 {
		t.Fatalf("restored LastExecuted = %d, want 4", r.LastExecuted())
	}
	if v, ok := r.Value("k3"); !ok || string(v) != "v" {
		t.Fatalf("restored Value(k3) = %q, %v", v, ok)
	}

	// Restored replica continues identically to the original.
	next := [][]byte{Put("k5", []byte("v"))}
	s.ExecuteBlock(5, next)
	r.ExecuteBlock(5, next)
	if !bytes.Equal(r.Digest(), s.Digest()) {
		t.Fatal("digests diverged after restore")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestProveKey(t *testing.T) {
	s := New()
	s.ExecuteBlock(1, [][]byte{Put("alpha", []byte("42"))})
	kp, root, err := s.ProveKey("alpha")
	if err != nil {
		t.Fatalf("ProveKey: %v", err)
	}
	if string(kp.Value) != "42" {
		t.Fatalf("proved value = %q, want 42", kp.Value)
	}
	_ = root
	if _, _, err := s.ProveKey("missing"); err == nil {
		t.Fatal("ProveKey of missing key succeeded")
	}
}

func TestQuickExecutionProofSoundness(t *testing.T) {
	// Property: for random blocks, every op's proof verifies and a proof
	// never verifies for a different result value.
	f := func(keys []string, pick uint8) bool {
		if len(keys) == 0 {
			return true
		}
		s := New()
		ops := make([][]byte, 0, len(keys))
		for i, k := range keys {
			ops = append(ops, Put(k, []byte{byte(i)}))
		}
		res := s.ExecuteBlock(1, ops)
		d := s.Digest()
		l := int(pick) % len(ops)
		p, err := s.ProveOperation(1, l)
		if err != nil {
			return false
		}
		if Verify(d, ops[l], res[l], 1, l, p) != nil {
			return false
		}
		return Verify(d, ops[l], []byte("bogus-result-value"), 1, l, p) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCanonical pins the determinism contract the replication
// layer's chunked checkpoint commitment relies on: two stores reaching the
// same state along different operation orders must serialize to identical
// snapshot bytes.
func TestSnapshotCanonical(t *testing.T) {
	// Two replicas executing the same blocks, with enough keys that map
	// iteration order would almost surely differ between processes.
	a, b := New(), New()
	for seq := uint64(1); seq <= 8; seq++ {
		var ops [][]byte
		for i := 0; i < 32; i++ {
			ops = append(ops, Put(fmt.Sprintf("k%d-%d", seq, i), []byte{byte(seq), byte(i)}))
		}
		a.ExecuteBlock(seq, ops)
		b.ExecuteBlock(seq, ops)
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("replicas with identical state serialized different snapshot bytes")
	}
	// Repeated snapshots of the same store must also be stable.
	for i := 0; i < 3; i++ {
		again, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa, again) {
			t.Fatalf("snapshot %d of the same store differs", i)
		}
	}
}
