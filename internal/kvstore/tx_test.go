package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// shardKey finds a key with the given prefix routing to shard among k.
func shardKey(t *testing.T, prefix string, shard, shards int) string {
	t.Helper()
	for salt := 0; salt < 10000; salt++ {
		k := fmt.Sprintf("%s-%d", prefix, salt)
		if RouteKey(k, shards) == shard {
			return k
		}
	}
	t.Fatalf("no key with prefix %q routes to shard %d/%d", prefix, shard, shards)
	return ""
}

// exec1 executes a single op at the store's next sequence and returns its
// result.
func exec1(s *Store, op []byte) []byte {
	return s.ExecuteBlock(s.LastExecuted()+1, [][]byte{op})[0]
}

func TestTxSingleShardLifecycle(t *testing.T) {
	s := New()
	s.EnableSharding(0, 1, nil)
	exec1(s, Put("a", []byte("old")))

	res := exec1(s, TxPrepare("t1", []int{0}, Put("a", []byte("new")), Delete("b")))
	if string(res) != TxPrepared {
		t.Fatalf("prepare: got %q", res)
	}
	if got := s.TxState("t1"); got != "prepared" {
		t.Fatalf("TxState = %q, want prepared", got)
	}
	// Staged writes are invisible; the key is locked for writers only.
	if v, _ := s.Value("a"); string(v) != "old" {
		t.Fatalf("staged write leaked: a=%q", v)
	}
	if res := exec1(s, Put("a", []byte("x"))); string(res) != "ERR:locked" {
		t.Fatalf("put on locked key: got %q", res)
	}
	if res := exec1(s, Get("a")); string(res) != "old" {
		t.Fatalf("get on locked key: got %q", res)
	}
	if got := s.LockedKeys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("LockedKeys = %v", got)
	}

	// Single-participant commit needs no foreign certificates.
	if res := exec1(s, TxCommit("t1", nil)); string(res) != TxCommitted {
		t.Fatalf("commit: got %q", res)
	}
	if v, _ := s.Value("a"); string(v) != "new" {
		t.Fatalf("committed write missing: a=%q", v)
	}
	if got := s.LockedKeys(); len(got) != 0 {
		t.Fatalf("locks leaked past commit: %v", got)
	}
	if got := s.TxState("t1"); got != "committed" {
		t.Fatalf("TxState = %q, want committed", got)
	}
	// Idempotent retries.
	if res := exec1(s, TxCommit("t1", nil)); string(res) != TxCommitted {
		t.Fatalf("commit retry: got %q", res)
	}
	if res := exec1(s, TxPrepare("t1", []int{0}, Put("a", nil))); string(res) != TxCommitted {
		t.Fatalf("prepare after commit: got %q", res)
	}
	p, c, a := s.TxStats()
	if p != 1 || c != 1 || a != 0 {
		t.Fatalf("TxStats = %d,%d,%d", p, c, a)
	}
}

func TestTxConflictRefusalIsSticky(t *testing.T) {
	s := New()
	s.EnableSharding(0, 1, nil)
	if res := exec1(s, TxPrepare("t1", []int{0}, Put("k", []byte("1")))); string(res) != TxPrepared {
		t.Fatalf("prepare t1: got %q", res)
	}
	// t2 wants the same key: refused, and the refusal is permanent.
	if res := exec1(s, TxPrepare("t2", []int{0}, Put("k", []byte("2")))); string(res) != "CONFLICT:locked" {
		t.Fatalf("prepare t2: got %q", res)
	}
	if got := s.TxState("t2"); got != "aborted" {
		t.Fatalf("TxState(t2) = %q, want aborted (sticky refusal)", got)
	}
	// Even after t1 commits and the lock clears, t2 may never prepare:
	// a CONFLICT certificate for t2 may already be circulating.
	if res := exec1(s, TxCommit("t1", nil)); string(res) != TxCommitted {
		t.Fatalf("commit t1: got %q", res)
	}
	if res := exec1(s, TxPrepare("t2", []int{0}, Put("k", []byte("2")))); string(res) != TxAborted {
		t.Fatalf("re-prepare t2 after refusal: got %q, want %q", res, TxAborted)
	}
	if res := exec1(s, TxCommit("t2", nil)); string(res) != "ERR:aborted" {
		t.Fatalf("commit t2 after refusal: got %q", res)
	}
}

func TestTxIdempotentAndMismatchedReprepare(t *testing.T) {
	s := New()
	s.EnableSharding(0, 1, nil)
	op := TxPrepare("t1", []int{0}, Put("k", []byte("v")))
	if res := exec1(s, op); string(res) != TxPrepared {
		t.Fatalf("prepare: got %q", res)
	}
	// Identical re-prepare (certificate refetch) succeeds.
	if res := exec1(s, op); string(res) != TxPrepared {
		t.Fatalf("re-prepare: got %q", res)
	}
	// A different payload under the same txid is neither accepted nor
	// refused — refusing would mint abort evidence against a prepared tx.
	res := exec1(s, TxPrepare("t1", []int{0}, Put("k", []byte("other"))))
	if string(res) != "ERR:tx-mismatch" {
		t.Fatalf("mismatched re-prepare: got %q", res)
	}
	if got := s.TxState("t1"); got != "prepared" {
		t.Fatalf("TxState = %q, want prepared", got)
	}
}

func TestTxCommitRequiresForeignCerts(t *testing.T) {
	calls := 0
	var failCert bool
	verify := func(shard int, txid string, wantPrepared bool, cert []byte) error {
		calls++
		if shard != 1 || txid != "t1" || !wantPrepared {
			return fmt.Errorf("unexpected query: shard=%d txid=%q want=%v", shard, txid, wantPrepared)
		}
		if failCert {
			return fmt.Errorf("bad signature")
		}
		return nil
	}
	s := New()
	s.EnableSharding(0, 2, verify)
	key := shardKey(t, "k", 0, 2)

	if res := exec1(s, TxPrepare("t1", []int{0, 1}, Put(key, []byte("v")))); string(res) != TxPrepared {
		t.Fatalf("prepare: got %q", res)
	}
	// Missing certificate: no commit.
	if res := exec1(s, TxCommit("t1", nil)); string(res) != "ERR:missing-cert" {
		t.Fatalf("commit without cert: got %q", res)
	}
	// Invalid certificate: no commit, tx stays prepared.
	failCert = true
	if res := exec1(s, TxCommit("t1", map[int][]byte{1: []byte("forged")})); string(res) != "ERR:bad-cert" {
		t.Fatalf("commit with bad cert: got %q", res)
	}
	if got := s.TxState("t1"); got != "prepared" {
		t.Fatalf("TxState = %q, want prepared", got)
	}
	// Valid certificate: committed.
	failCert = false
	if res := exec1(s, TxCommit("t1", map[int][]byte{1: []byte("cert")})); string(res) != TxCommitted {
		t.Fatalf("commit: got %q", res)
	}
	if v, _ := s.Value(key); string(v) != "v" {
		t.Fatalf("committed write missing: %q", v)
	}
	if calls == 0 {
		t.Fatal("verifier never consulted")
	}
}

func TestTxAbortRequiresRefusalCert(t *testing.T) {
	var ok bool
	verify := func(shard int, txid string, wantPrepared bool, cert []byte) error {
		if wantPrepared {
			return fmt.Errorf("commit evidence requested during abort")
		}
		if !ok {
			return fmt.Errorf("not a refusal")
		}
		return nil
	}
	s := New()
	s.EnableSharding(0, 2, verify)
	key := shardKey(t, "k", 0, 2)
	if res := exec1(s, TxPrepare("t1", []int{0, 1}, Put(key, []byte("v")))); string(res) != TxPrepared {
		t.Fatalf("prepare: got %q", res)
	}
	// An equivocating coordinator's bogus "refusal" is rejected.
	if res := exec1(s, TxAbort("t1", 1, []byte("forged"))); string(res) != "ERR:bad-cert" {
		t.Fatalf("abort with bad cert: got %q", res)
	}
	if got := s.TxState("t1"); got != "prepared" {
		t.Fatalf("TxState = %q, want prepared", got)
	}
	ok = true
	if res := exec1(s, TxAbort("t1", 1, []byte("refusal"))); string(res) != TxAborted {
		t.Fatalf("abort: got %q", res)
	}
	if got := s.LockedKeys(); len(got) != 0 {
		t.Fatalf("locks leaked past abort: %v", got)
	}
	if v, found := s.Value(key); found {
		t.Fatalf("aborted write applied: %q", v)
	}
	// Abort is idempotent; commit after abort is refused.
	if res := exec1(s, TxAbort("t1", 1, []byte("refusal"))); string(res) != TxAborted {
		t.Fatalf("abort retry: got %q", res)
	}
	if res := exec1(s, TxCommit("t1", map[int][]byte{1: []byte("c")})); string(res) != "ERR:aborted" {
		t.Fatalf("commit after abort: got %q", res)
	}
}

func TestTxPrepareRefusals(t *testing.T) {
	s := New()
	s.EnableSharding(0, 2, nil)
	local := shardKey(t, "l", 0, 2)
	foreign := shardKey(t, "f", 1, 2)

	cases := []struct {
		name string
		op   []byte
		want string
	}{
		{"foreign write", TxPrepare("f1", []int{0, 1}, Put(foreign, []byte("v"))), "CONFLICT:wrong-shard"},
		{"reserved write", TxPrepare("f2", []int{0, 1}, Put("\x00tx/d/x", []byte("c"))), "CONFLICT:reserved-key"},
		{"not a participant", TxPrepare("f3", []int{1}, Put(local, []byte("v"))), "CONFLICT:not-participant"},
		{"participant out of range", TxPrepare("f4", []int{0, 7}, Put(local, []byte("v"))), "CONFLICT:bad-participant"},
		{"no participants", TxPrepare("f5", nil, Put(local, []byte("v"))), "CONFLICT:no-participants"},
		{"get as write", TxPrepare("f6", []int{0, 1}, Get(local)), "CONFLICT:bad-write"},
	}
	for _, tc := range cases {
		if res := exec1(s, tc.op); string(res) != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, res, tc.want)
		}
	}
	// Every refusal is sticky.
	for _, id := range []string{"f1", "f2", "f3", "f4", "f5", "f6"} {
		if got := s.TxState(id); got != "aborted" {
			t.Errorf("TxState(%s) = %q, want aborted", id, got)
		}
	}
	// Duplicate participant naming collapses to one participation.
	if res := exec1(s, TxPrepare("d1", []int{0, 0, 1, 1}, Put(local, []byte("v")))); string(res) != TxPrepared {
		t.Fatalf("dup participants: got %q", res)
	}
}

func TestTxPlainOpPartitionChecks(t *testing.T) {
	s := New()
	s.EnableSharding(1, 2, nil)
	mine := shardKey(t, "m", 1, 2)
	other := shardKey(t, "o", 0, 2)

	if res := exec1(s, Put(mine, []byte("v"))); string(res) != "OK" {
		t.Fatalf("owned put: got %q", res)
	}
	if res := exec1(s, Put(other, []byte("v"))); string(res) != "ERR:wrong-shard" {
		t.Fatalf("foreign put: got %q", res)
	}
	if res := exec1(s, Delete(other)); string(res) != "ERR:wrong-shard" {
		t.Fatalf("foreign delete: got %q", res)
	}
	if res := exec1(s, Get(other)); string(res) != "ERR:wrong-shard" {
		t.Fatalf("foreign get: got %q", res)
	}
	if res := exec1(s, Put("\x00tx/l/x", []byte("v"))); string(res) != "ERR:reserved-key" {
		t.Fatalf("reserved put: got %q", res)
	}
	if res := exec1(s, Get("\x00tx/l/x")); string(res) != "ERR:reserved-key" {
		t.Fatalf("reserved get: got %q", res)
	}
}

// TestTxStateSurvivesSnapshot pins the design point that 2PC state lives
// in the authenticated map: a snapshot taken mid-transaction carries the
// prepared record, the locks and decision markers, so state transfer and
// restart resume the protocol exactly.
func TestTxStateSurvivesSnapshot(t *testing.T) {
	a := New()
	a.EnableSharding(0, 1, nil)
	exec1(a, TxPrepare("t1", []int{0}, Put("k", []byte("v"))))
	exec1(a, TxPrepare("t2", []int{0}, Put("k", []byte("w")))) // refused → sticky abort

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	b.EnableSharding(0, 1, nil)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := b.TxState("t1"); got != "prepared" {
		t.Fatalf("restored TxState(t1) = %q, want prepared", got)
	}
	if got := b.TxState("t2"); got != "aborted" {
		t.Fatalf("restored TxState(t2) = %q, want aborted", got)
	}
	if got := b.LockedKeys(); len(got) != 1 || got[0] != "k" {
		t.Fatalf("restored LockedKeys = %v", got)
	}
	if got := b.PendingTxs(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("restored PendingTxs = %v", got)
	}
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("digest diverged across snapshot/restore")
	}
	// The restored store continues the protocol.
	if res := exec1(b, TxCommit("t1", nil)); string(res) != TxCommitted {
		t.Fatalf("commit on restored store: got %q", res)
	}
}

func TestTxDigestDeterminism(t *testing.T) {
	run := func() *Store {
		s := New()
		s.EnableSharding(0, 1, nil)
		exec1(s, Put("a", []byte("1")))
		exec1(s, TxPrepare("t1", []int{0}, Put("b", []byte("2"))))
		exec1(s, TxCommit("t1", nil))
		exec1(s, TxPrepare("t2", []int{0}, Put("b", []byte("3"))))
		return s
	}
	a, b := run(), run()
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("2PC execution not deterministic: digests differ")
	}
}

func TestTxOpsRejectedInsideBundles(t *testing.T) {
	s := New()
	s.EnableSharding(0, 1, nil)
	res := exec1(s, Bundle(Put("a", []byte("1")), TxPrepare("t1", []int{0}, Put("b", nil))))
	if string(res) != "OK:1" {
		t.Fatalf("bundle with tx op: got %q, want OK:1 (tx skipped)", res)
	}
	if got := s.TxState("t1"); got != "none" {
		t.Fatalf("tx op inside bundle executed: TxState = %q", got)
	}
}

func TestRouteKeyEdges(t *testing.T) {
	if got := RouteKey("anything", 1); got != 0 {
		t.Fatalf("k=1 route = %d", got)
	}
	if got := RouteKey("anything", 0); got != 0 {
		t.Fatalf("k=0 route = %d", got)
	}
	for _, k := range []string{"", "a", "key/with/slashes", "\x00odd"} {
		for _, shards := range []int{2, 3, 4, 7} {
			r := RouteKey(k, shards)
			if r < 0 || r >= shards {
				t.Fatalf("RouteKey(%q,%d) = %d out of range", k, shards, r)
			}
			if r2 := RouteKey(k, shards); r2 != r {
				t.Fatalf("RouteKey(%q,%d) unstable: %d then %d", k, shards, r, r2)
			}
		}
	}
}
