// Package kvstore implements SBFT's authenticated key-value store (§IV):
// a deterministic replicated service whose state digest commits to both the
// key-value contents and the per-block execution results, so that a client
// can accept an execute-ack from a single replica by checking one Merkle
// proof against an f+1 threshold-signed digest.
//
// The service interface follows the paper:
//
//	d  = digest(D)                    → Store.Digest
//	P  = proof(o, l, s, D, val)       → Store.ProveOperation
//	verify(d, o, val, s, l, P)        → Verify (package function, client side)
//
// Operations are Put, Get and Delete encoded with a compact length-prefixed
// binary codec. Executing a block yields one result value per operation and
// advances the state digest; digests are deterministic across replicas.
package kvstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sbft/internal/merkle"
	"sbft/internal/snapcodec"
)

// OpKind enumerates the operation types.
type OpKind uint8

// Operation kinds. Values are part of the wire format.
const (
	OpPut OpKind = iota + 1
	OpGet
	OpDelete
	// OpBundle packs several operations into one client request: the
	// paper's batching mode, where "each request contains 64 operations"
	// (§IX). The bundle executes atomically in order and yields a single
	// summary result, so the client still gets one acknowledgement.
	OpBundle
)

// Errors returned by decoding and proving.
var (
	ErrBadOp        = errors.New("kvstore: malformed operation")
	ErrUnknownBlock = errors.New("kvstore: block not retained (garbage collected or not executed)")
	ErrBadProof     = errors.New("kvstore: invalid execution proof")
)

// Op is a decoded key-value operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// Encode serializes the operation.
func (o Op) Encode() []byte {
	buf := make([]byte, 0, 1+4+len(o.Key)+4+len(o.Value))
	buf = append(buf, byte(o.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(o.Key)))
	buf = append(buf, o.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(o.Value)))
	buf = append(buf, o.Value...)
	return buf
}

// DecodeOp parses an encoded operation.
func DecodeOp(data []byte) (Op, error) {
	if len(data) < 9 {
		return Op{}, fmt.Errorf("%w: %d bytes", ErrBadOp, len(data))
	}
	kind := OpKind(data[0])
	if kind < OpPut || kind > OpTxAbort {
		return Op{}, fmt.Errorf("%w: kind %d", ErrBadOp, kind)
	}
	data = data[1:]
	klen := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if uint32(len(data)) < klen+4 {
		return Op{}, fmt.Errorf("%w: truncated key", ErrBadOp)
	}
	key := string(data[:klen])
	data = data[klen:]
	vlen := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if uint32(len(data)) != vlen {
		return Op{}, fmt.Errorf("%w: value length %d, have %d", ErrBadOp, vlen, len(data))
	}
	return Op{Kind: kind, Key: key, Value: append([]byte(nil), data...)}, nil
}

// Put returns an encoded put operation.
func Put(key string, value []byte) []byte { return Op{Kind: OpPut, Key: key, Value: value}.Encode() }

// Get returns an encoded get operation.
func Get(key string) []byte { return Op{Kind: OpGet, Key: key}.Encode() }

// GetUnique returns a get operation carrying a salt in the (ignored)
// value field. Execution and ReadKey treat it exactly like Get; the salt
// only makes the encoded payload globally unique, so certified reads
// that fall back to the ordered path stay distinguishable under the
// harness auditor's no-re-execution invariant.
func GetUnique(key string, salt uint64) []byte {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], salt)
	return Op{Kind: OpGet, Key: key, Value: v[:]}.Encode()
}

// Delete returns an encoded delete operation.
func Delete(key string) []byte { return Op{Kind: OpDelete, Key: key}.Encode() }

// Bundle packs encoded operations into a single bundle operation. Nested
// bundles are rejected at execution time (deterministically) to bound
// recursion.
func Bundle(ops ...[]byte) []byte {
	var payload []byte
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(ops)))
	for _, op := range ops {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(op)))
		payload = append(payload, op...)
	}
	return Op{Kind: OpBundle, Value: payload}.Encode()
}

// BundleOps splits a bundle payload into its encoded sub-operations.
func BundleOps(payload []byte) ([][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: short bundle", ErrBadOp)
	}
	count := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	ops := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: truncated bundle", ErrBadOp)
		}
		l := binary.BigEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint32(len(payload)) < l {
			return nil, fmt.Errorf("%w: truncated bundle op", ErrBadOp)
		}
		ops = append(ops, payload[:l])
		payload = payload[l:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: trailing bundle bytes", ErrBadOp)
	}
	return ops, nil
}

// BundleSize reports how many operations an encoded op contains: 1 for
// plain operations, the sub-operation count for bundles. Used by the
// measurement harness to count operations, not requests (§IX batching).
func BundleSize(encoded []byte) int {
	op, err := DecodeOp(encoded)
	if err != nil || op.Kind != OpBundle {
		return 1
	}
	ops, err := BundleOps(op.Value)
	if err != nil {
		return 1
	}
	return len(ops)
}

// execRecord retains the execution tree of one block for proof generation.
type execRecord struct {
	tree    *merkle.Tree
	kvRoot  merkle.Digest
	ops     [][]byte
	results [][]byte
}

// Store is the replica-side authenticated key-value store. It is not safe
// for concurrent use; the replica event loop owns it.
type Store struct {
	state    *merkle.Map
	tracker  *snapcodec.Tracker
	lastSeq  uint64
	digest   []byte
	executed map[uint64]*execRecord

	// Sharding and cross-shard 2PC (tx.go). shards==0 means sharding is
	// not enabled: every key is local and no partition check applies.
	shardID    int
	shards     int
	certVerify CertVerifier

	// Cumulative 2PC counters, surfaced through TxStats (core.TwoPhaser).
	txPrepares uint64
	txCommits  uint64
	txAborts   uint64
}

// New returns an empty store at sequence 0.
func New() *Store {
	return NewWithBuckets(snapcodec.DefaultBuckets)
}

// NewWithBuckets returns an empty store whose incremental snapshot uses
// the given bucket count. All replicas of a deployment must agree on it:
// the bucket layout is part of the certified chunk commitment. Large-state
// deployments raise it so the dirty fraction of a checkpoint interval
// resolves into proportionally few re-encoded chunks.
func NewWithBuckets(buckets int) *Store {
	s := &Store{
		state:    merkle.NewMap(),
		tracker:  snapcodec.NewTracker(buckets),
		executed: make(map[uint64]*execRecord),
	}
	s.digest = stateDigest(0, s.state.Digest(), merkle.NewTree(nil).Root())
	return s
}

// stateDigest commits to the sequence number, the KV map root and the
// execution tree root of the block that produced this state (paper §IV:
// d = digest(D_s)).
func stateDigest(seq uint64, kvRoot, execRoot merkle.Digest) []byte {
	h := sha256.New()
	h.Write([]byte("sbft:kv-state"))
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], seq)
	h.Write(sb[:])
	h.Write(kvRoot[:])
	h.Write(execRoot[:])
	return h.Sum(nil)
}

func execLeaf(l int, op, val []byte) []byte {
	buf := make([]byte, 0, 8+len(op)+len(val)+8)
	buf = binary.BigEndian.AppendUint32(buf, uint32(l))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(op)))
	buf = append(buf, op...)
	buf = append(buf, val...)
	return buf
}

// apply executes a single decoded operation against the map.
func (s *Store) apply(op Op) []byte {
	switch op.Kind {
	case OpPut:
		if e := s.userKeyError(op.Key, true); e != nil {
			return e
		}
		s.state.Set(op.Key, op.Value)
		s.tracker.Set(op.Key, op.Value)
		return []byte("OK")
	case OpGet:
		if e := s.userKeyError(op.Key, false); e != nil {
			return e
		}
		v, ok := s.state.Get(op.Key)
		if !ok {
			return nil
		}
		return v
	case OpDelete:
		if e := s.userKeyError(op.Key, true); e != nil {
			return e
		}
		s.state.Delete(op.Key)
		s.tracker.Delete(op.Key)
		return []byte("OK")
	case OpBundle:
		subs, err := BundleOps(op.Value)
		if err != nil {
			return []byte("ERR:bad-bundle")
		}
		applied := 0
		for _, raw := range subs {
			sub, err := DecodeOp(raw)
			if err != nil || sub.Kind == OpBundle || sub.Kind >= OpTxPrepare {
				continue // skip malformed/nested/tx deterministically
			}
			s.apply(sub)
			applied++
		}
		return []byte(fmt.Sprintf("OK:%d", applied))
	case OpTxPrepare:
		return s.applyTxPrepare(op)
	case OpTxCommit:
		return s.applyTxCommit(op)
	case OpTxAbort:
		return s.applyTxAbort(op)
	default:
		return []byte("ERR")
	}
}

// ExecuteBlock applies the operations of block seq in order and returns one
// result per operation. Blocks must execute in sequence order; this is the
// paper's "execute trigger" precondition (§V-D). Malformed operations
// execute as errors (deterministically) rather than aborting the block.
func (s *Store) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	results := make([][]byte, len(ops))
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			results[i] = []byte("ERR:malformed")
			continue
		}
		results[i] = s.apply(op)
	}
	kvRoot := s.state.Digest()
	leaves := make([][]byte, len(ops))
	for i := range ops {
		leaves[i] = execLeaf(i, ops[i], results[i])
	}
	tree := merkle.NewTree(leaves)
	s.executed[seq] = &execRecord{tree: tree, kvRoot: kvRoot, ops: ops, results: results}
	s.lastSeq = seq
	s.digest = stateDigest(seq, kvRoot, tree.Root())
	return results
}

// Digest returns digest(D) after the last executed block.
func (s *Store) Digest() []byte { return append([]byte(nil), s.digest...) }

// LastExecuted reports the sequence number of the last executed block.
func (s *Store) LastExecuted() uint64 { return s.lastSeq }

// Proof is the paper's P = proof(o, l, s, D, val): it authenticates that
// operation Op was executed at position L of block Seq, produced Val, and
// that the resulting state digest is reconstructible from KVRoot and the
// execution-tree path.
type Proof struct {
	Seq    uint64
	L      int
	Op     []byte
	Val    []byte
	KVRoot merkle.Digest
	Path   merkle.Proof
}

// ProveOperation builds the proof for operation l of block seq.
func (s *Store) ProveOperation(seq uint64, l int) (Proof, error) {
	rec, ok := s.executed[seq]
	if !ok {
		return Proof{}, fmt.Errorf("%w: seq %d", ErrUnknownBlock, seq)
	}
	if l < 0 || l >= len(rec.ops) {
		return Proof{}, fmt.Errorf("kvstore: operation index %d out of range [0,%d)", l, len(rec.ops))
	}
	path, err := rec.tree.Prove(l)
	if err != nil {
		return Proof{}, err
	}
	return Proof{
		Seq:    seq,
		L:      l,
		Op:     rec.ops[l],
		Val:    rec.results[l],
		KVRoot: rec.kvRoot,
		Path:   path,
	}, nil
}

// Results returns the retained results of an executed block.
func (s *Store) Results(seq uint64) ([][]byte, bool) {
	rec, ok := s.executed[seq]
	if !ok {
		return nil, false
	}
	return rec.results, true
}

// Verify is the client-side verify(d, o, val, s, l, P) from §IV: it checks
// that P proves operation o executed at position l in block s with result
// val, and that the digest reconstructed from P equals d. d is trusted by
// the caller (it carries the π threshold signature).
func Verify(digest []byte, op, val []byte, seq uint64, l int, p Proof) error {
	if p.Seq != seq || p.L != l {
		return fmt.Errorf("%w: proof binds (seq=%d,l=%d), want (%d,%d)", ErrBadProof, p.Seq, p.L, seq, l)
	}
	if !bytes.Equal(p.Op, op) || !bytes.Equal(p.Val, val) {
		return fmt.Errorf("%w: proof operation/result mismatch", ErrBadProof)
	}
	leaf := merkle.LeafHash(execLeaf(l, op, val))
	// Recompute the exec root from the path, then the state digest.
	root := leaf
	for _, st := range p.Path.Steps {
		if st.Right {
			root = merkle.InteriorHash(root, st.Hash)
		} else {
			root = merkle.InteriorHash(st.Hash, root)
		}
	}
	if !bytes.Equal(stateDigest(seq, p.KVRoot, root), digest) {
		return fmt.Errorf("%w: digest mismatch", ErrBadProof)
	}
	// Path index must match l to prevent position spoofing.
	if p.Path.Index != l {
		return fmt.Errorf("%w: path index %d, want %d", ErrBadProof, p.Path.Index, l)
	}
	return nil
}

// GarbageCollect drops retained execution records with seq < keepFrom,
// mirroring the checkpoint-driven GC of §V-F.
func (s *Store) GarbageCollect(keepFrom uint64) {
	for seq := range s.executed {
		if seq < keepFrom {
			delete(s.executed, seq)
		}
	}
}

// Snapshot serializes the full store state for state transfer (§VIII)
// through the canonical snapcodec framing: replicas with identical state
// produce identical bytes IN EVERY PROCESS (gob could not promise that —
// its wire format embeds process-global type ids, which broke checkpoint
// root agreement between live replicas with different gob histories).
// Execution records are not part of the snapshot; a restored replica can
// prove only blocks it executes after restoration, which matches
// PBFT-style state transfer semantics.
func (s *Store) Snapshot() ([]byte, error) {
	return snapcodec.Encode(snapcodec.FromMap(s.lastSeq, s.digest, s.state.Snapshot())), nil
}

// SnapshotChunks is the incremental capture path: the bucketed canonical
// snapshot as a chunk list, re-encoding only buckets written since the
// previous capture (clean chunks are the identical byte slices of the
// previous call, so the checkpoint layer reuses their leaf hashes). The
// replication layer prefers this over Snapshot when available.
func (s *Store) SnapshotChunks() ([][]byte, bool, error) {
	chunks, _ := s.tracker.EncodeChunks(s.lastSeq, s.digest)
	return chunks, true, nil
}

// Restore replaces the store contents from a snapshot (either framing;
// state transfer hands over whatever the serving replica captured). A
// bucketed snapshot also seeds the tracker's encoding cache, so the first
// capture after a transfer is already incremental.
func (s *Store) Restore(data []byte) error {
	if snapcodec.IsBucketed(data) {
		snap, chunks, err := snapcodec.DecodeBucketed(data)
		if err != nil {
			return fmt.Errorf("kvstore: decoding snapshot: %w", err)
		}
		s.state.Restore(snap.ToMap())
		s.tracker.Restore(snap, len(chunks)-1, chunks)
		s.lastSeq = snap.LastSeq
		s.digest = snap.Digest
		s.executed = make(map[uint64]*execRecord)
		return nil
	}
	snap, err := snapcodec.Decode(data)
	if err != nil {
		return fmt.Errorf("kvstore: decoding snapshot: %w", err)
	}
	s.state.Restore(snap.ToMap())
	s.tracker = snapcodec.NewTracker(s.tracker.Buckets())
	for _, e := range snap.Entries {
		s.tracker.Set(e.Key, e.Val)
	}
	s.lastSeq = snap.LastSeq
	s.digest = snap.Digest
	s.executed = make(map[uint64]*execRecord)
	return nil
}

// ReadKey maps an encoded operation to the state key a certified read
// serves (core.KeyReader): defined only for the side-effect-free OpGet.
// Both replicas (routing the read to its snapshot bucket) and clients
// (checking the routing and extracting the value from the verified
// chunk) use the same mapping.
func ReadKey(op []byte) (string, error) {
	o, err := DecodeOp(op)
	if err != nil {
		return "", err
	}
	if o.Kind != OpGet {
		return "", fmt.Errorf("kvstore: op kind %d is not a certified read", o.Kind)
	}
	return o.Key, nil
}

// ReadKey implements core.KeyReader for direct Store embedding.
func (s *Store) ReadKey(op []byte) (string, error) { return ReadKey(op) }

// Value reads a key directly (local queries; not authenticated).
func (s *Store) Value(key string) ([]byte, bool) { return s.state.Get(key) }

// ProveKey returns a Merkle proof of a key's current value together with
// the current KV root, for read-only queries (§IV get-proofs).
func (s *Store) ProveKey(key string) (merkle.KeyProof, merkle.Digest, error) {
	kp, err := s.state.ProveKey(key)
	if err != nil {
		return merkle.KeyProof{}, merkle.Digest{}, err
	}
	return kp, s.state.Digest(), nil
}
