// Package pbft implements the paper's baseline: a scale-optimized PBFT
// (Castro & Liskov, OSDI '99) with the classic quadratic all-to-all
// prepare and commit phases and f+1 direct client replies. SBFT's
// evaluation (§IX) measures each of its four ingredients against this
// baseline; the cluster harness runs both engines under identical network
// models and workloads.
//
// The implementation reuses the core package's Request/Reply messages and
// Env abstraction so clients and harnesses are shared. n = 3f + 1.
package pbft

import (
	"fmt"
	"sort"
	"time"

	"sbft/internal/core"
)

// Config parameterizes a PBFT deployment of n = 3f + 1 replicas.
type Config struct {
	F                  int
	Win                uint64
	Batch              int
	BatchTimeout       time.Duration
	ViewChangeTimeout  time.Duration
	CheckpointInterval uint64
	// GapRepairTimeout is how long a replica waits on an execution gap
	// before asking peers to retransmit the missing decision (the §II
	// re-transmit layer; what lets a restarted-from-storage replica catch
	// up). Zero disables repair.
	GapRepairTimeout time.Duration
}

// DefaultConfig mirrors the SBFT defaults for a fair comparison.
func DefaultConfig(f int) Config {
	return Config{
		F:                 f,
		Win:               256,
		Batch:             64,
		BatchTimeout:      20 * time.Millisecond,
		ViewChangeTimeout: 2 * time.Second,
		GapRepairTimeout:  250 * time.Millisecond,
	}
}

// Validate checks invariants.
func (c Config) Validate() error {
	if c.F < 1 {
		return fmt.Errorf("pbft: F must be ≥ 1, got %d", c.F)
	}
	if c.Win < 4 {
		return fmt.Errorf("pbft: Win must be ≥ 4")
	}
	if c.Batch < 1 {
		return fmt.Errorf("pbft: Batch must be ≥ 1")
	}
	return nil
}

// N is 3f + 1.
func (c Config) N() int { return 3*c.F + 1 }

// Quorum is 2f + 1.
func (c Config) Quorum() int { return 2*c.F + 1 }

// Primary is the round-robin primary of a view.
func (c Config) Primary(view uint64) int { return int(view%uint64(c.N())) + 1 }

func (c Config) checkpointEvery() uint64 {
	if c.CheckpointInterval > 0 {
		return c.CheckpointInterval
	}
	return c.Win / 2
}

// PrePrepareMsg is PBFT's ⟨PRE-PREPARE, v, n, m⟩.
type PrePrepareMsg struct {
	Seq  uint64
	View uint64
	Reqs []core.Request
}

// WireSize implements core.Message.
func (m PrePrepareMsg) WireSize() int {
	n := 24
	for _, r := range m.Reqs {
		n += 24 + len(r.Op)
	}
	return n + 64 // per-message public-key signature (§IX: signed messages)
}

// PrepareMsg is ⟨PREPARE, v, n, d, i⟩, broadcast all-to-all.
type PrepareMsg struct {
	Seq     uint64
	View    uint64
	Hash    core.Digest
	Replica int
}

// WireSize implements core.Message.
func (m PrepareMsg) WireSize() int { return 24 + 32 + 64 }

// CommitMsg is ⟨COMMIT, v, n, d, i⟩, broadcast all-to-all.
type CommitMsg struct {
	Seq     uint64
	View    uint64
	Hash    core.Digest
	Replica int
}

// WireSize implements core.Message.
func (m CommitMsg) WireSize() int { return 24 + 32 + 64 }

// CheckpointMsg is ⟨CHECKPOINT, n, d, i⟩.
type CheckpointMsg struct {
	Seq     uint64
	Digest  []byte
	Replica int
}

// WireSize implements core.Message.
func (m CheckpointMsg) WireSize() int { return 24 + len(m.Digest) + 64 }

// PreparedProof summarizes a prepared certificate in a view change
// (sender authenticity comes from the channel; the deployment model signs
// messages, §IX).
type PreparedProof struct {
	Seq  uint64
	View uint64
	Hash core.Digest
	Reqs []core.Request
}

// ViewChangeMsg is ⟨VIEW-CHANGE, v+1, n, C, P, i⟩ (C omitted: stable
// checkpoints are re-proven via CheckpointMsg gossip).
type ViewChangeMsg struct {
	NewView    uint64
	LastStable uint64
	Prepared   []PreparedProof
	Replica    int
}

// WireSize implements core.Message.
func (m ViewChangeMsg) WireSize() int {
	n := 24 + 64
	for _, p := range m.Prepared {
		n += 48
		for _, r := range p.Reqs {
			n += 24 + len(r.Op)
		}
	}
	return n
}

// NewViewMsg is ⟨NEW-VIEW, v+1, V, O⟩.
type NewViewMsg struct {
	View        uint64
	ViewChanges []ViewChangeMsg
	PrePrepares []PrePrepareMsg
}

// WireSize implements core.Message.
func (m NewViewMsg) WireSize() int {
	n := 24 + 64
	for _, vc := range m.ViewChanges {
		n += vc.WireSize()
	}
	for _, pp := range m.PrePrepares {
		n += pp.WireSize()
	}
	return n
}

// FetchCommitMsg asks peers to retransmit the decision at a sequence
// number (the §II re-transmit layer, needed once restart-from-storage can
// rejoin a replica whose log trails the cluster).
type FetchCommitMsg struct {
	Replica int
	Seq     uint64
}

// WireSize implements core.Message.
func (m FetchCommitMsg) WireSize() int { return 24 }

// CommitInfoMsg retransmits a committed decision block. PBFT's baseline
// certificates are per-sender channel-authenticated rather than
// self-contained, so a catching-up replica adopts a block only once f+1
// distinct peers retransmit an identical one (at least one is honest).
type CommitInfoMsg struct {
	Seq     uint64
	Replica int
	Reqs    []core.Request
}

// WireSize implements core.Message.
func (m CommitInfoMsg) WireSize() int {
	n := 24 + 64
	for _, r := range m.Reqs {
		n += 24 + len(r.Op)
	}
	return n
}

type slot struct {
	seq      uint64
	view     uint64
	hasPP    bool
	reqs     []core.Request
	hash     core.Digest
	prepares map[int]bool
	commits  map[int]bool
	prepared bool
	// preparedView/Reqs retain the highest prepared certificate across
	// views for the view-change P set.
	preparedView uint64
	preparedReqs []core.Request
	preparedHash core.Digest
	hasPrepared  bool
	committed    bool
	executed     bool
	sentPrepare  bool
	sentCommit   bool
	// pendingPrepares/pendingCommits buffer messages that raced ahead of
	// this replica's pre-prepare or view entry; replayed by
	// acceptPrePrepare. Without this, an exact quorum (all alive replicas)
	// livelocks on view-entry races at scale.
	pendingPrepares []PrepareMsg
	pendingCommits  []CommitMsg
}

// Metrics mirrors core.Metrics for the shared harness.
type Metrics struct {
	Commits     uint64
	Executions  uint64
	ViewChanges uint64
	Checkpoints uint64
	GapRepairs  uint64
}

// Replica is a PBFT replica event machine; drive it exactly like
// core.Replica.
type Replica struct {
	id    int
	cfg   Config
	app   core.Application
	env   core.Env
	store core.BlockStore // nil disables persistence

	view         uint64
	inViewChange bool
	lastStable   uint64
	lastExecuted uint64
	slots        map[uint64]*slot

	pending    []core.Request
	seen       map[int]uint64
	nextSeq    uint64
	batchTimer func()

	replyCache map[int]replyEntry
	watch      map[int]uint64

	ckpts map[uint64]map[int]string

	vcMsgs        map[uint64]map[int]*ViewChangeMsg
	vcBackoff     uint64
	progressTimer func()
	vcTimer       func()

	// ppBuffer holds pre-prepares that arrived from a future view's
	// primary before this replica installed that view (the new primary's
	// first proposals race its NEW-VIEW broadcast on jittery links);
	// replayed on view installation.
	ppBuffer map[uint64][]PrePrepareMsg

	// Gap repair (catch-up after restart-from-storage): votes collects
	// per-sequence retransmitted blocks keyed by block identity; a block
	// is adopted at f+1 matching retransmissions.
	gapTimer    func()
	behindHint  bool // saw traffic suggesting the cluster is ahead of us
	fruitless   int
	lastFetchAt uint64
	fetchVotes  map[uint64]map[string]map[int]bool
	fetchReqs   map[uint64]map[string][]core.Request

	Metrics Metrics
}

type replyEntry struct {
	timestamp uint64
	seq       uint64
	l         int
	val       []byte
}

// NewReplica constructs a PBFT replica. store persists committed blocks
// for restart-from-storage (nil disables persistence).
func NewReplica(id int, cfg Config, app core.Application, env core.Env, store core.BlockStore) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 1 || id > cfg.N() {
		return nil, fmt.Errorf("pbft: replica id %d out of range [1,%d]", id, cfg.N())
	}
	return &Replica{
		id:         id,
		cfg:        cfg,
		app:        app,
		env:        env,
		store:      store,
		slots:      make(map[uint64]*slot),
		seen:       make(map[int]uint64),
		nextSeq:    1,
		replyCache: make(map[int]replyEntry),
		watch:      make(map[int]uint64),
		ckpts:      make(map[uint64]map[int]string),
		vcMsgs:     make(map[uint64]map[int]*ViewChangeMsg),
		ppBuffer:   make(map[uint64][]PrePrepareMsg),
		fetchVotes: make(map[uint64]map[string]map[int]bool),
		fetchReqs:  make(map[uint64]map[string][]core.Request),
	}, nil
}

// ID reports the replica id.
func (r *Replica) ID() int { return r.id }

// View reports the current view.
func (r *Replica) View() uint64 { return r.view }

// LastExecuted reports the execution frontier.
func (r *Replica) LastExecuted() uint64 { return r.lastExecuted }

func (r *Replica) isPrimary() bool { return r.cfg.Primary(r.view) == r.id }

func (r *Replica) getSlot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{seq: seq, prepares: make(map[int]bool), commits: make(map[int]bool)}
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) broadcast(msg core.Message) {
	for i := 1; i <= r.cfg.N(); i++ {
		if i != r.id {
			r.env.Send(i, msg)
		}
	}
}

// Deliver dispatches an incoming message.
func (r *Replica) Deliver(from int, msg any) {
	switch m := msg.(type) {
	case core.RequestMsg:
		r.onRequest(from, m)
	case PrePrepareMsg:
		r.onPrePrepare(from, m)
	case PrepareMsg:
		r.onPrepare(from, m)
	case CommitMsg:
		r.onCommit(from, m)
	case CheckpointMsg:
		r.onCheckpoint(from, m)
	case FetchCommitMsg:
		r.onFetchCommit(from, m)
	case CommitInfoMsg:
		r.onCommitInfo(from, m)
	case ViewChangeMsg:
		r.onViewChange(from, m)
	case NewViewMsg:
		r.onNewView(from, m)
	}
}

func (r *Replica) onRequest(from int, m core.RequestMsg) {
	req := m.Req
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		if ent.timestamp == req.Timestamp {
			r.env.Send(req.Client, core.ReplyMsg{
				Seq: ent.seq, L: ent.l, Replica: r.id, View: r.view,
				Client: req.Client, Timestamp: ent.timestamp, Val: ent.val,
			})
		}
		return
	}
	if ts := r.watch[req.Client]; ts < req.Timestamp {
		r.watch[req.Client] = req.Timestamp
	}
	if !r.isPrimary() {
		if core.IsClient(from) {
			r.env.Send(r.cfg.Primary(r.view), m)
		}
		r.notePending(req)
		r.armProgressTimer()
		return
	}
	r.notePending(req)
	r.armProgressTimer()
	r.proposeIfReady(false)
}

func (r *Replica) notePending(req core.Request) {
	if ts, ok := r.seen[req.Client]; ok && ts >= req.Timestamp {
		return
	}
	r.seen[req.Client] = req.Timestamp
	r.pending = append(r.pending, req)
	r.armBatchTimer()
}

// armBatchTimer ensures pending-but-unproposed requests cannot starve.
func (r *Replica) armBatchTimer() {
	if !r.isPrimary() || len(r.pending) == 0 || r.batchTimer != nil || r.cfg.BatchTimeout <= 0 {
		return
	}
	r.batchTimer = r.env.After(r.cfg.BatchTimeout, func() {
		r.batchTimer = nil
		r.proposeIfReady(true)
	})
}

func (r *Replica) outstanding() uint64 {
	var n uint64
	for seq := r.lastStable + 1; seq < r.nextSeq; seq++ {
		if s, ok := r.slots[seq]; !ok || !s.committed {
			n++
		}
	}
	return n
}

func (r *Replica) proposeIfReady(timerFired bool) {
	if !r.isPrimary() || r.inViewChange {
		return
	}
	defer r.armBatchTimer()
	for {
		if len(r.pending) == 0 {
			return
		}
		if !timerFired && len(r.pending) < r.cfg.Batch {
			return
		}
		if r.outstanding() >= r.cfg.Win/2 || r.nextSeq > r.lastStable+r.cfg.Win {
			return
		}
		batch := r.cfg.Batch
		if len(r.pending) < batch {
			batch = len(r.pending)
		}
		reqs := make([]core.Request, batch)
		copy(reqs, r.pending[:batch])
		r.pending = r.pending[batch:]
		seq := r.nextSeq
		r.nextSeq++
		pp := PrePrepareMsg{Seq: seq, View: r.view, Reqs: reqs}
		r.broadcast(pp)
		r.acceptPrePrepare(pp)
		timerFired = false
	}
}

func (r *Replica) onPrePrepare(from int, m PrePrepareMsg) {
	if m.View != r.view || r.inViewChange {
		// A future view's primary may propose before our NEW-VIEW arrives
		// (its first pre-prepares race the install on jittery links):
		// buffer and replay at installation instead of dropping. Bounded
		// to one primary rotation of future views and one entry per
		// sequence, so neither a Byzantine future-primary nor a
		// duplicating link can exhaust the buffer.
		if m.View >= r.view && m.View <= r.view+uint64(r.cfg.N()) &&
			from == r.cfg.Primary(m.View) {
			r.bufferPP(m)
		} else if m.View > r.view+uint64(r.cfg.N()) {
			// More than a primary rotation ahead: this replica (likely
			// restarted from storage) missed whole views and cannot learn
			// them from NEW-VIEW replays. Catch up on committed blocks
			// through gap repair; a future genuine view change resyncs
			// the view number.
			r.noteBehind()
		}
		return
	}
	if from != r.cfg.Primary(r.view) {
		return
	}
	if m.Seq <= r.lastStable || m.Seq <= r.lastExecuted || m.Seq > r.lastStable+r.cfg.Win {
		if m.Seq > r.lastStable+r.cfg.Win && m.Seq > r.lastExecuted+r.cfg.Win {
			r.noteBehind()
		}
		return
	}
	s := r.getSlot(m.Seq)
	if s.hasPP && s.view == m.View {
		return
	}
	r.acceptPrePrepare(m)
}

// bufferPP stores a racing pre-prepare for replay at view installation,
// capped at Win entries per view with one entry per sequence (duplicated
// deliveries must not evict distinct sequences).
func (r *Replica) bufferPP(m PrePrepareMsg) {
	buf := r.ppBuffer[m.View]
	for _, b := range buf {
		if b.Seq == m.Seq {
			return
		}
	}
	if uint64(len(buf)) < r.cfg.Win {
		r.ppBuffer[m.View] = append(buf, m)
	}
}

func (r *Replica) acceptPrePrepare(m PrePrepareMsg) {
	s := r.getSlot(m.Seq)
	s.hasPP = true
	s.view = m.View
	s.reqs = m.Reqs
	s.hash = core.BlockHash(m.Seq, m.View, m.Reqs)
	for _, req := range m.Reqs {
		if ts := r.seen[req.Client]; ts < req.Timestamp {
			r.seen[req.Client] = req.Timestamp
		}
	}
	if s.committed {
		return
	}
	r.armProgressTimer()
	if !s.sentPrepare {
		s.sentPrepare = true
		msg := PrepareMsg{Seq: m.Seq, View: m.View, Hash: s.hash, Replica: r.id}
		r.broadcast(msg)
		r.onPrepare(r.id, msg)
	}
	// Replay messages that raced ahead of this pre-prepare or view entry.
	if len(s.pendingPrepares) > 0 {
		buf := s.pendingPrepares
		s.pendingPrepares = nil
		for _, pm := range buf {
			r.onPrepare(pm.Replica, pm)
		}
	}
	if len(s.pendingCommits) > 0 {
		buf := s.pendingCommits
		s.pendingCommits = nil
		for _, cm := range buf {
			r.onCommit(cm.Replica, cm)
		}
	}
}

func (r *Replica) onPrepare(_ int, m PrepareMsg) {
	if m.View < r.view {
		return
	}
	s := r.getSlot(m.Seq)
	if m.View > r.view || r.inViewChange || !s.hasPP || s.view != m.View {
		if len(s.pendingPrepares) < 2*r.cfg.N() {
			s.pendingPrepares = append(s.pendingPrepares, m)
		}
		return
	}
	if s.hash != m.Hash {
		return
	}
	s.prepares[m.Replica] = true
	// Prepared: pre-prepare + 2f prepares from distinct replicas
	// (counting our own share of the broadcast).
	if !s.prepared && len(s.prepares) >= r.cfg.Quorum() {
		s.prepared = true
		s.hasPrepared = true
		s.preparedView = m.View
		s.preparedReqs = s.reqs
		s.preparedHash = s.hash
		if !s.sentCommit {
			s.sentCommit = true
			msg := CommitMsg{Seq: m.Seq, View: m.View, Hash: s.hash, Replica: r.id}
			r.broadcast(msg)
			r.onCommit(r.id, msg)
		}
	}
}

func (r *Replica) onCommit(_ int, m CommitMsg) {
	if m.View < r.view {
		return
	}
	s := r.getSlot(m.Seq)
	if m.View > r.view || r.inViewChange || !s.hasPP || s.view != m.View {
		if len(s.pendingCommits) < 2*r.cfg.N() {
			s.pendingCommits = append(s.pendingCommits, m)
		}
		return
	}
	if s.hash != m.Hash {
		return
	}
	s.commits[m.Replica] = true
	if !s.committed && s.prepared && len(s.commits) >= r.cfg.Quorum() {
		r.commit(s, s.reqs)
	}
}

func (r *Replica) commit(s *slot, reqs []core.Request) {
	if s.committed {
		return
	}
	s.committed = true
	s.reqs = reqs
	r.Metrics.Commits++
	r.executeReady()
	r.armProgressTimer()
	r.armGapTimer()
}

func (r *Replica) executeReady() {
	advanced := false
	defer func() {
		if advanced {
			r.resetProgressTimer()
		}
	}()
	for {
		next := r.lastExecuted + 1
		s, ok := r.slots[next]
		if !ok || !s.committed || s.executed {
			return
		}
		advanced = true
		delete(r.fetchVotes, next)
		delete(r.fetchReqs, next)
		// Exactly-once: skip requests whose client already saw an equal or
		// newer execution (re-proposed across a view change or retried).
		exec := s.reqs[:0:0]
		for _, req := range s.reqs {
			if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
				continue
			}
			dup := false
			for _, e := range exec {
				if e.Client == req.Client && e.Timestamp >= req.Timestamp {
					dup = true
					break
				}
			}
			if !dup {
				exec = append(exec, req)
			}
		}
		ops := make([][]byte, len(exec))
		for i, req := range exec {
			ops[i] = req.Op
		}
		results := r.app.ExecuteBlock(next, ops)
		s.executed = true
		r.lastExecuted = next
		r.Metrics.Executions++
		if r.store != nil {
			if err := r.store.Append(next, core.EncodeBlockPayload(exec, results)); err != nil {
				// Persistence is best-effort in-simulation; the replica
				// keeps serving from memory (matching core.Replica).
				_ = err
			}
		}
		for i, req := range exec {
			r.replyCache[req.Client] = replyEntry{timestamp: req.Timestamp, seq: next, l: i, val: results[i]}
			if ts, ok := r.watch[req.Client]; ok && ts <= req.Timestamp {
				delete(r.watch, req.Client)
			}
			// Every replica replies; the client waits for f+1 (§V-A of
			// the SBFT paper describes this as the classic behavior).
			r.env.Send(req.Client, core.ReplyMsg{
				Seq: next, L: i, Replica: r.id, View: r.view,
				Client: req.Client, Timestamp: req.Timestamp, Val: results[i],
			})
		}
		if len(r.pending) > 0 {
			kept := r.pending[:0]
			for _, req := range r.pending {
				if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
					continue
				}
				kept = append(kept, req)
			}
			r.pending = kept
		}
		if next%r.cfg.checkpointEvery() == 0 {
			msg := CheckpointMsg{Seq: next, Digest: r.app.Digest(), Replica: r.id}
			r.broadcast(msg)
			r.onCheckpoint(r.id, msg)
		}
	}
}

func (r *Replica) onCheckpoint(_ int, m CheckpointMsg) {
	if m.Seq <= r.lastStable {
		return
	}
	if r.ckpts[m.Seq] == nil {
		r.ckpts[m.Seq] = make(map[int]string)
	}
	r.ckpts[m.Seq][m.Replica] = string(m.Digest)
	// Stable when 2f+1 matching digests are known.
	count := make(map[string]int)
	for _, d := range r.ckpts[m.Seq] {
		count[d]++
	}
	for _, c := range count {
		if c >= r.cfg.Quorum() {
			r.Metrics.Checkpoints++
			r.lastStable = m.Seq
			if r.lastExecuted >= m.Seq {
				r.app.GarbageCollect(m.Seq)
			}
			// Drop slot state below the stable point — but never ahead of
			// local execution, or committed-but-unexecuted blocks on a
			// lagging replica would be lost before it catches up.
			gcTo := m.Seq
			if r.lastExecuted < gcTo {
				gcTo = r.lastExecuted
			}
			for seq := range r.slots {
				if seq <= gcTo {
					delete(r.slots, seq)
				}
			}
			for seq := range r.ckpts {
				if seq <= m.Seq {
					delete(r.ckpts, seq)
				}
			}
			if r.lastStable > r.lastExecuted {
				r.armGapTimer()
			}
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Gap repair / restart catch-up (§II re-transmit layer).

// noteBehind records evidence that the cluster has moved past this
// replica (pre-prepares from views or sequences far ahead) and arms the
// repair timer. A replica restarted from storage rejoins here: committed
// blocks are fetched from peers even while its view number trails.
func (r *Replica) noteBehind() {
	r.behindHint = true
	r.armGapTimer()
}

// hasGap reports whether execution is stalled behind committed progress.
func (r *Replica) hasGap() bool {
	next := r.lastExecuted + 1
	if s, ok := r.slots[next]; ok && s.committed {
		return false // executeReady will handle it
	}
	for seq, s := range r.slots {
		if seq > next && s.committed {
			return true
		}
	}
	return r.behindHint || r.lastStable > r.lastExecuted
}

// armGapTimer schedules a repair round if none is pending. Rounds that
// repeatedly adopt nothing drop the behind hint so an idle replica
// quiesces; genuine gaps (committed slots above the frontier) keep the
// timer armed, and fresh future-view traffic re-hints.
func (r *Replica) armGapTimer() {
	if r.gapTimer != nil || r.cfg.GapRepairTimeout <= 0 || !r.hasGap() {
		return
	}
	r.gapTimer = r.env.After(r.cfg.GapRepairTimeout, func() {
		r.gapTimer = nil
		if !r.hasGap() {
			r.fruitless = 0
			return
		}
		if r.lastExecuted == r.lastFetchAt {
			r.fruitless++
		} else {
			r.fruitless = 0
		}
		r.lastFetchAt = r.lastExecuted
		if r.fruitless >= 4 {
			r.behindHint = false
			r.fruitless = 0
			if !r.hasGap() {
				return
			}
		}
		r.broadcast(FetchCommitMsg{Replica: r.id, Seq: r.lastExecuted + 1})
		r.armGapTimer()
	})
}

// onFetchCommit serves a small batch of committed blocks starting at the
// requested sequence.
func (r *Replica) onFetchCommit(from int, m FetchCommitMsg) {
	if from != m.Replica || m.Replica == r.id {
		return
	}
	for seq, sent := m.Seq, 0; sent < 8; seq, sent = seq+1, sent+1 {
		s, ok := r.slots[seq]
		if !ok || !s.committed {
			return
		}
		r.env.Send(m.Replica, CommitInfoMsg{Seq: seq, Replica: r.id, Reqs: s.reqs})
	}
}

// blockIdent is a view-independent identity for a retransmitted block.
func blockIdent(seq uint64, reqs []core.Request) string {
	h := core.BlockHash(seq, 0, reqs)
	return string(h[:])
}

// onCommitInfo adopts a retransmitted block once f+1 distinct peers sent
// an identical one (at least one of them is honest; PBFT's baseline
// certificates are channel-authenticated, not self-contained).
func (r *Replica) onCommitInfo(from int, m CommitInfoMsg) {
	if from != m.Replica || m.Seq <= r.lastExecuted {
		return
	}
	if m.Seq > r.lastExecuted+r.cfg.Win {
		return // bound the vote table against far-future spam
	}
	if s, ok := r.slots[m.Seq]; ok && s.committed {
		return
	}
	key := blockIdent(m.Seq, m.Reqs)
	if r.fetchVotes[m.Seq] == nil {
		r.fetchVotes[m.Seq] = make(map[string]map[int]bool)
		r.fetchReqs[m.Seq] = make(map[string][]core.Request)
	}
	if r.fetchVotes[m.Seq][key] == nil {
		r.fetchVotes[m.Seq][key] = make(map[int]bool)
		r.fetchReqs[m.Seq][key] = m.Reqs
	}
	r.fetchVotes[m.Seq][key][m.Replica] = true
	if len(r.fetchVotes[m.Seq][key]) <= r.cfg.F {
		return
	}
	reqs := r.fetchReqs[m.Seq][key]
	delete(r.fetchVotes, m.Seq)
	delete(r.fetchReqs, m.Seq)
	s := r.getSlot(m.Seq)
	s.hasPP = true
	s.reqs = reqs
	s.hash = core.BlockHash(m.Seq, 0, reqs) // identity only; never signed
	r.Metrics.GapRepairs++
	r.commit(s, reqs)
}

// ---------------------------------------------------------------------------
// View change (crash-fault grade; see package comment).

func (r *Replica) vcTimeout() time.Duration {
	shift := r.vcBackoff
	if shift > 6 {
		shift = 6
	}
	return r.cfg.ViewChangeTimeout << shift
}

func (r *Replica) hasOutstandingWork() bool {
	if len(r.watch) > 0 {
		return true
	}
	for _, s := range r.slots {
		if s.hasPP && !s.committed {
			return true
		}
	}
	return false
}

// armProgressTimer arms the liveness timer if it is not already running.
// It deliberately does NOT reset a pending timer: a client retrying every
// RequestTimeout would otherwise postpone the view change forever.
func (r *Replica) armProgressTimer() {
	if r.progressTimer != nil || r.inViewChange || !r.hasOutstandingWork() {
		return
	}
	r.progressTimer = r.env.After(r.vcTimeout(), func() {
		r.progressTimer = nil
		if !r.inViewChange && r.hasOutstandingWork() {
			r.startViewChange(r.view + 1)
		}
	})
}

// resetProgressTimer restarts the liveness timer after real progress.
func (r *Replica) resetProgressTimer() {
	if r.progressTimer != nil {
		r.progressTimer()
		r.progressTimer = nil
	}
	r.armProgressTimer()
}

func (r *Replica) startViewChange(target uint64) {
	if target <= r.view && r.inViewChange {
		return
	}
	if target <= r.view {
		target = r.view + 1
	}
	r.inViewChange = true
	r.view = target
	r.Metrics.ViewChanges++
	if r.batchTimer != nil {
		r.batchTimer()
		r.batchTimer = nil
	}
	vc := ViewChangeMsg{NewView: target, LastStable: r.lastStable, Replica: r.id}
	seqs := make([]uint64, 0, len(r.slots))
	for seq := range r.slots {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		s := r.slots[seq]
		if s.hasPrepared || s.committed {
			view := s.preparedView
			reqs := s.preparedReqs
			hash := s.preparedHash
			if s.committed {
				view, reqs, hash = s.view, s.reqs, s.hash
			}
			vc.Prepared = append(vc.Prepared, PreparedProof{Seq: seq, View: view, Hash: hash, Reqs: reqs})
		}
	}
	r.broadcast(vc)
	r.onViewChange(r.id, vc)
	r.vcBackoff++
	if r.vcTimer != nil {
		r.vcTimer()
	}
	r.vcTimer = r.env.After(r.vcTimeout(), func() {
		r.vcTimer = nil
		if r.inViewChange {
			r.startViewChange(r.view + 1)
		}
	})
}

func (r *Replica) onViewChange(from int, m ViewChangeMsg) {
	if from != m.Replica {
		return
	}
	if m.NewView <= r.view && !(m.NewView == r.view && r.inViewChange) {
		return
	}
	if r.vcMsgs[m.NewView] == nil {
		r.vcMsgs[m.NewView] = make(map[int]*ViewChangeMsg)
	}
	r.vcMsgs[m.NewView][m.Replica] = &m

	// f+1 join rule.
	distinct := make(map[int]bool)
	minAbove := uint64(0)
	for tv, senders := range r.vcMsgs {
		if tv <= r.view {
			continue
		}
		for id := range senders {
			distinct[id] = true
		}
		if minAbove == 0 || tv < minAbove {
			minAbove = tv
		}
	}
	if len(distinct) > r.cfg.F && minAbove > r.view {
		r.startViewChange(minAbove)
	}

	if r.cfg.Primary(m.NewView) != r.id {
		return
	}
	msgs := r.vcMsgs[m.NewView]
	if len(msgs) < r.cfg.Quorum() {
		return
	}
	if m.NewView < r.view || (m.NewView == r.view && !r.inViewChange) {
		return
	}
	ids := make([]int, 0, len(msgs))
	for id := range msgs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ids = ids[:r.cfg.Quorum()]
	nv := NewViewMsg{View: m.NewView}
	maxStable := uint64(0)
	for _, id := range ids {
		nv.ViewChanges = append(nv.ViewChanges, *msgs[id])
		if msgs[id].LastStable > maxStable {
			maxStable = msgs[id].LastStable
		}
	}
	// O set: for each slot above the stable point, re-propose the
	// highest-view prepared value, else a null block.
	best := make(map[uint64]PreparedProof)
	maxSeq := maxStable
	for _, vc := range nv.ViewChanges {
		for _, p := range vc.Prepared {
			if p.Seq <= maxStable {
				continue
			}
			if cur, ok := best[p.Seq]; !ok || p.View > cur.View {
				best[p.Seq] = p
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
	}
	for seq := maxStable + 1; seq <= maxSeq; seq++ {
		reqs := []core.Request{}
		if p, ok := best[seq]; ok {
			reqs = p.Reqs
		}
		nv.PrePrepares = append(nv.PrePrepares, PrePrepareMsg{Seq: seq, View: m.NewView, Reqs: reqs})
	}
	r.broadcast(nv)
	r.onNewView(r.id, nv)
}

func (r *Replica) onNewView(from int, m NewViewMsg) {
	if from != r.cfg.Primary(m.View) {
		return
	}
	if m.View < r.view || (m.View == r.view && !r.inViewChange) {
		return
	}
	if len(m.ViewChanges) < r.cfg.Quorum() {
		return
	}
	r.view = m.View
	r.inViewChange = false
	r.vcBackoff = 0
	if r.vcTimer != nil {
		r.vcTimer()
		r.vcTimer = nil
	}
	for tv := range r.vcMsgs {
		if tv <= m.View {
			delete(r.vcMsgs, tv)
		}
	}
	maxSeq := r.lastStable
	for _, s := range r.slots {
		if s.committed {
			continue
		}
		// Requests stuck in an uncommitted slot would be lost if the new
		// view does not re-propose that slot (the proposer's pending queue
		// already dropped them and the client-retry path is deduplicated
		// by `seen`): requeue them so some primary proposes them again.
		// Exactly-once execution makes a redundant re-proposal harmless.
		for _, req := range s.reqs {
			r.requeue(req)
		}
		s.sentPrepare = false
		s.sentCommit = false
		s.prepared = false
		s.hasPP = false
		s.prepares = make(map[int]bool)
		s.commits = make(map[int]bool)
	}
	inFlight := make(map[int]uint64) // client → highest ts re-proposed
	for _, pp := range m.PrePrepares {
		if pp.Seq <= r.lastStable {
			continue
		}
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		for _, req := range pp.Reqs {
			if ts := inFlight[req.Client]; ts < req.Timestamp {
				inFlight[req.Client] = req.Timestamp
			}
		}
		if s, ok := r.slots[pp.Seq]; ok && s.committed {
			continue
		}
		r.acceptPrePrepare(pp)
	}
	// Requests the new view already re-proposed must not also be proposed
	// from the retained pending queue (they would execute twice).
	if len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, req := range r.pending {
			if ts, ok := inFlight[req.Client]; ok && ts >= req.Timestamp {
				continue
			}
			if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
				continue
			}
			kept = append(kept, req)
		}
		r.pending = kept
	}
	if r.isPrimary() {
		r.nextSeq = maxSeq + 1
		r.proposeIfReady(true)
	}
	// Replay pre-prepares that raced ahead of this view installation.
	if buf := r.ppBuffer[m.View]; len(buf) > 0 {
		delete(r.ppBuffer, m.View)
		for _, pp := range buf {
			r.onPrePrepare(r.cfg.Primary(m.View), pp)
		}
	}
	for v := range r.ppBuffer {
		if v <= m.View {
			delete(r.ppBuffer, v)
		}
	}
	r.resetProgressTimer()
}

// requeue re-adds a request to the pending queue unless it has already
// executed or is already queued, bypassing the `seen` dedup (which tracks
// proposed-but-possibly-lost requests).
func (r *Replica) requeue(req core.Request) {
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		return
	}
	for _, p := range r.pending {
		if p.Client == req.Client && p.Timestamp >= req.Timestamp {
			return
		}
	}
	r.pending = append(r.pending, req)
	if ts := r.seen[req.Client]; ts < req.Timestamp {
		r.seen[req.Client] = req.Timestamp
	}
}
