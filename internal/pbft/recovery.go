package pbft

import (
	"bytes"
	"fmt"

	"sbft/internal/core"
)

// NewRecoveredReplica rebuilds a PBFT replica from its durable block log
// (the baseline's counterpart of core.NewRecoveredReplica): every stored
// block is replayed through the application (which must be at genesis),
// the recomputed results are verified against the stored ones, and the
// reply cache and execution frontier are primed. The replica then rejoins
// at its durable frontier; blocks committed by the rest of the cluster
// while it was down arrive through gap repair (f+1 matching
// retransmissions, see onCommitInfo).
func NewRecoveredReplica(id int, cfg Config, app core.Application, env core.Env, store core.RecoverableStore) (*Replica, error) {
	r, err := NewReplica(id, cfg, app, env, store)
	if err != nil {
		return nil, err
	}
	frontier := store.NextSeq() - 1
	for seq := uint64(1); seq <= frontier; seq++ {
		payload, err := store.Get(seq)
		if err != nil {
			return nil, fmt.Errorf("pbft: recovering block %d: %w", seq, err)
		}
		rec, err := core.DecodeBlockPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("pbft: recovering block %d: %w", seq, err)
		}
		ops := make([][]byte, len(rec.Reqs))
		for i, req := range rec.Reqs {
			ops[i] = req.Op
		}
		results := app.ExecuteBlock(seq, ops)
		if len(results) != len(rec.Results) {
			return nil, fmt.Errorf("pbft: block %d replay produced %d results, stored %d", seq, len(results), len(rec.Results))
		}
		for i := range results {
			if !bytes.Equal(results[i], rec.Results[i]) {
				return nil, fmt.Errorf("pbft: block %d result %d diverged on replay (corrupt store or non-deterministic app)", seq, i)
			}
		}
		for i, req := range rec.Reqs {
			r.replyCache[req.Client] = replyEntry{timestamp: req.Timestamp, seq: seq, l: i, val: results[i]}
			if ts := r.seen[req.Client]; ts < req.Timestamp {
				r.seen[req.Client] = req.Timestamp
			}
		}
		r.lastExecuted = seq
		r.Metrics.Executions++
	}
	// Resume proposing above the durable frontier if this replica comes
	// back as a primary. lastStable stays 0: stability is a quorum
	// property re-learned from checkpoint gossip.
	if r.nextSeq <= frontier {
		r.nextSeq = frontier + 1
	}
	return r, nil
}
