package pbft

import (
	"testing"
	"time"

	"sbft/internal/core"
)

func TestConfig(t *testing.T) {
	cfg := DefaultConfig(2)
	if cfg.N() != 7 {
		t.Errorf("N = %d, want 7", cfg.N())
	}
	if cfg.Quorum() != 5 {
		t.Errorf("Quorum = %d, want 5", cfg.Quorum())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.F = 0
	if err := bad.Validate(); err == nil {
		t.Error("F=0 accepted")
	}
	bad = cfg
	bad.Win = 1
	if err := bad.Validate(); err == nil {
		t.Error("Win=1 accepted")
	}
	bad = cfg
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Error("Batch=0 accepted")
	}
}

func TestPrimaryRotation(t *testing.T) {
	cfg := DefaultConfig(1)
	seen := map[int]bool{}
	for v := uint64(0); v < 4; v++ {
		seen[cfg.Primary(v)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d of 4", len(seen))
	}
}

func TestNewReplicaValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	if _, err := NewReplica(0, cfg, nil, nil, nil); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := NewReplica(5, cfg, nil, nil, nil); err == nil {
		t.Error("id beyond n accepted")
	}
	bad := cfg
	bad.F = 0
	if _, err := NewReplica(1, bad, nil, nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMessageWireSizes(t *testing.T) {
	msgs := []core.Message{
		PrePrepareMsg{Reqs: []core.Request{{Op: make([]byte, 10)}}},
		PrepareMsg{},
		CommitMsg{},
		CheckpointMsg{Digest: make([]byte, 32)},
		ViewChangeMsg{Prepared: []PreparedProof{{}}},
		NewViewMsg{ViewChanges: []ViewChangeMsg{{}}, PrePrepares: []PrePrepareMsg{{}}},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%T WireSize = %d", m, m.WireSize())
		}
	}
	// All-to-all phases carry per-message signatures: the quadratic cost
	// ingredient 1 removes.
	if (PrepareMsg{}).WireSize() < 64 {
		t.Error("prepare should include a signature-sized payload")
	}
}

func TestCheckpointEvery(t *testing.T) {
	cfg := DefaultConfig(1)
	if got := cfg.checkpointEvery(); got != cfg.Win/2 {
		t.Fatalf("default checkpoint interval = %d, want win/2", got)
	}
	cfg.CheckpointInterval = 10
	if got := cfg.checkpointEvery(); got != 10 {
		t.Fatalf("explicit interval = %d", got)
	}
}

// fakeEnv drives a single replica deterministically for unit tests.
type fakeEnv struct {
	id     int
	now    time.Duration
	sent   []sentMsg
	timers []*fakeTimer
}

type sentMsg struct {
	to  int
	msg core.Message
}

type fakeTimer struct {
	at        time.Duration
	fn        func()
	cancelled bool
}

func (e *fakeEnv) Send(to int, msg core.Message) { e.sent = append(e.sent, sentMsg{to, msg}) }
func (e *fakeEnv) Now() time.Duration            { return e.now }
func (e *fakeEnv) After(d time.Duration, fn func()) func() {
	t := &fakeTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return func() { t.cancelled = true }
}

// advance fires due timers in order.
func (e *fakeEnv) advance(d time.Duration) {
	e.now += d
	for _, t := range e.timers {
		if !t.cancelled && t.fn != nil && t.at <= e.now {
			fn := t.fn
			t.fn = nil
			fn()
		}
	}
}

type countingApp struct {
	blocks int
	ops    int
}

func (a *countingApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	a.blocks++
	a.ops += len(ops)
	out := make([][]byte, len(ops))
	for i := range out {
		out[i] = []byte("ok")
	}
	return out
}
func (a *countingApp) Digest() []byte                             { return []byte("digest") }
func (a *countingApp) ProveOperation(uint64, int) ([]byte, error) { return []byte("p"), nil }
func (a *countingApp) Snapshot() ([]byte, error)                  { return []byte("s"), nil }
func (a *countingApp) Restore([]byte) error                       { return nil }
func (a *countingApp) GarbageCollect(uint64)                      {}

// drive delivers a message to a replica as if from `from`.
func deliver(r *Replica, from int, msg any) { r.Deliver(from, msg) }

func TestSingleReplicaProtocolFlow(t *testing.T) {
	// Drive replica 2 (a backup) of a 4-replica PBFT cluster through one
	// block: pre-prepare → prepares → commits → execution + reply.
	cfg := DefaultConfig(1)
	cfg.BatchTimeout = 0
	env := &fakeEnv{id: 2}
	app := &countingApp{}
	r, err := NewReplica(2, cfg, app, env, nil)
	if err != nil {
		t.Fatal(err)
	}

	client := core.ClientBase
	req := core.Request{Client: client, Timestamp: 1, Op: []byte("x")}
	pp := PrePrepareMsg{Seq: 1, View: 0, Reqs: []core.Request{req}}
	deliver(r, 1, pp)

	// The backup must have broadcast a prepare.
	var prepares int
	for _, m := range env.sent {
		if p, ok := m.msg.(PrepareMsg); ok {
			if p.Seq != 1 || p.Hash != core.BlockHash(1, 0, pp.Reqs) {
				t.Fatalf("bad prepare %+v", p)
			}
			prepares++
		}
	}
	if prepares != cfg.N()-1 {
		t.Fatalf("sent %d prepares, want %d", prepares, cfg.N()-1)
	}

	// Prepares from replicas 1 and 3 (plus own) reach the 2f+1 quorum →
	// commit broadcast.
	h := core.BlockHash(1, 0, pp.Reqs)
	deliver(r, 1, PrepareMsg{Seq: 1, View: 0, Hash: h, Replica: 1})
	deliver(r, 3, PrepareMsg{Seq: 1, View: 0, Hash: h, Replica: 3})
	var commits int
	for _, m := range env.sent {
		if _, ok := m.msg.(CommitMsg); ok {
			commits++
		}
	}
	if commits != cfg.N()-1 {
		t.Fatalf("sent %d commits, want %d", commits, cfg.N()-1)
	}

	// Commits from 1 and 3 (plus own) → committed, executed, replied.
	deliver(r, 1, CommitMsg{Seq: 1, View: 0, Hash: h, Replica: 1})
	deliver(r, 3, CommitMsg{Seq: 1, View: 0, Hash: h, Replica: 3})
	if app.blocks != 1 || app.ops != 1 {
		t.Fatalf("executed blocks=%d ops=%d", app.blocks, app.ops)
	}
	var replied bool
	for _, m := range env.sent {
		if rep, ok := m.msg.(core.ReplyMsg); ok && m.to == client {
			if rep.Timestamp != 1 || string(rep.Val) != "ok" {
				t.Fatalf("bad reply %+v", rep)
			}
			replied = true
		}
	}
	if !replied {
		t.Fatal("no reply sent to the client")
	}
	if r.LastExecuted() != 1 {
		t.Fatalf("LastExecuted = %d", r.LastExecuted())
	}
}

func TestReplicaIgnoresWrongViewAndPrimary(t *testing.T) {
	cfg := DefaultConfig(1)
	env := &fakeEnv{id: 2}
	r, _ := NewReplica(2, cfg, &countingApp{}, env, nil)

	req := []core.Request{{Client: core.ClientBase, Timestamp: 1, Op: []byte("x")}}
	// Wrong view.
	deliver(r, 2, PrePrepareMsg{Seq: 1, View: 5, Reqs: req})
	// Wrong sender (replica 3 is not the view-0 primary).
	deliver(r, 3, PrePrepareMsg{Seq: 1, View: 0, Reqs: req})
	for _, m := range env.sent {
		if _, ok := m.msg.(PrepareMsg); ok {
			t.Fatal("replica prepared an invalid pre-prepare")
		}
	}
}

func TestReplyFromCacheOnRetry(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.BatchTimeout = 0
	env := &fakeEnv{id: 2}
	r, _ := NewReplica(2, cfg, &countingApp{}, env, nil)

	client := core.ClientBase
	req := core.Request{Client: client, Timestamp: 1, Op: []byte("x")}
	h := core.BlockHash(1, 0, []core.Request{req})
	deliver(r, 1, PrePrepareMsg{Seq: 1, View: 0, Reqs: []core.Request{req}})
	deliver(r, 1, PrepareMsg{Seq: 1, View: 0, Hash: h, Replica: 1})
	deliver(r, 3, PrepareMsg{Seq: 1, View: 0, Hash: h, Replica: 3})
	deliver(r, 1, CommitMsg{Seq: 1, View: 0, Hash: h, Replica: 1})
	deliver(r, 3, CommitMsg{Seq: 1, View: 0, Hash: h, Replica: 3})

	before := len(env.sent)
	// Retried request: answered straight from the reply cache.
	deliver(r, client, core.RequestMsg{Req: req})
	var cached bool
	for _, m := range env.sent[before:] {
		if rep, ok := m.msg.(core.ReplyMsg); ok && rep.Timestamp == 1 {
			cached = true
		}
	}
	if !cached {
		t.Fatal("no cached reply for a retried request")
	}
}

func TestProgressTimerTriggersViewChange(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ViewChangeTimeout = 100 * time.Millisecond
	env := &fakeEnv{id: 2}
	r, _ := NewReplica(2, cfg, &countingApp{}, env, nil)

	deliver(r, core.ClientBase, core.RequestMsg{Req: core.Request{
		Client: core.ClientBase, Timestamp: 1, Op: []byte("x")}})
	env.advance(200 * time.Millisecond)
	var vc bool
	for _, m := range env.sent {
		if v, ok := m.msg.(ViewChangeMsg); ok && v.NewView == 1 {
			vc = true
		}
	}
	if !vc {
		t.Fatal("no view change after progress timeout")
	}
	if r.View() != 1 {
		t.Fatalf("view = %d, want 1", r.View())
	}
}
