package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// tcpCluster is a compact in-process deployment over loopback TCP used by
// the chaos-flavored integration tests.
type tcpCluster struct {
	shells      []*Shell
	replicas    []*core.Replica
	client      *core.Client
	clientShell *Shell
}

// newTCPCluster boots n Shell-hosted replicas plus one client. When
// clientInPeers is false the replicas' address books omit the client —
// the cmd-level deployment shape, where replies can only flow because
// the hello handshake announces the client's listen address.
func newTCPCluster(t *testing.T, clientInPeers bool) *tcpCluster {
	t.Helper()
	cfg := core.DefaultConfig(1, 0)
	cfg.BatchTimeout = 5 * time.Millisecond
	n := cfg.N()
	suite, keys, err := core.InsecureSuite(cfg, "tcp-chaos")
	if err != nil {
		t.Fatal(err)
	}

	tc := &tcpCluster{shells: make([]*Shell, n+1), replicas: make([]*core.Replica, n+1)}
	replicaPeers := make(map[int]string)
	for id := 1; id <= n; id++ {
		sh, err := NewShell(id, "127.0.0.1:0", replicaPeers)
		if err != nil {
			t.Fatal(err)
		}
		tc.shells[id] = sh
		replicaPeers[id] = sh.Addr()
		t.Cleanup(func() { sh.Close() })
	}

	clientID := core.ClientBase
	clientPeers := make(map[int]string, n)
	for id, addr := range replicaPeers {
		clientPeers[id] = addr
	}
	clientShell, err := NewShell(clientID, "127.0.0.1:0", clientPeers)
	if err != nil {
		t.Fatal(err)
	}
	tc.clientShell = clientShell
	t.Cleanup(func() { clientShell.Close() })
	if clientInPeers {
		replicaPeers[clientID] = clientShell.Addr()
	}

	for id := 1; id <= n; id++ {
		rep, err := core.NewReplica(id, cfg, suite, keys[id-1], apps.NewKVApp(), tc.shells[id], nil)
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas[id] = rep
		tc.shells[id].Start(rep)
	}
	client, err := core.NewClient(clientID, cfg, suite, clientShell, apps.VerifyKV)
	if err != nil {
		t.Fatal(err)
	}
	client.RequestTimeout = 2 * time.Second
	tc.client = client
	return tc
}

// runOps drives ops sequential client operations to completion.
func (tc *tcpCluster) runOps(t *testing.T, ops int, timeout time.Duration) {
	t.Helper()
	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	tc.client.SetOnResult(func(res core.Result) {
		mu.Lock()
		count++
		k := count
		mu.Unlock()
		if k < ops {
			if err := tc.client.Submit(kvstore.Put(fmt.Sprintf("k%d", k), []byte("v"))); err != nil {
				t.Errorf("Submit: %v", err)
			}
		} else {
			close(done)
		}
	})
	tc.clientShell.Start(tc.client)
	tc.clientShell.Do(func() {
		if err := tc.client.Submit(kvstore.Put("k0", []byte("v"))); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out committing the batch over TCP")
	}
}

// TestClientDialBackWithoutPeersEntry pins the cmd-level deployment fix:
// replicas whose peers files do not list the client must still be able to
// reply, via the listen address announced in the hello handshake. Before
// the fix this shape committed its first block and then hung forever —
// every reply was dropped as "unknown peer".
func TestClientDialBackWithoutPeersEntry(t *testing.T) {
	tc := newTCPCluster(t, false)
	tc.runOps(t, 8, 60*time.Second)
}

// TestTCPClusterSurvivesShellFaults runs a small fault scenario over real
// TCP: one replica's outbound codec drops 30% of messages and delays the
// rest by up to 15ms for a window, then heals. The protocol's retry,
// re-transmit and collector layers must still commit every operation.
func TestTCPClusterSurvivesShellFaults(t *testing.T) {
	tc := newTCPCluster(t, true)
	tc.shells[2].SetFaults(ShellFaults{Drop: 0.3, MaxDelay: 15 * time.Millisecond, Seed: 7})
	healer := time.AfterFunc(3*time.Second, func() {
		tc.shells[2].SetFaults(ShellFaults{})
	})
	defer healer.Stop()
	tc.runOps(t, 10, 90*time.Second)
}
