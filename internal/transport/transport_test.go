package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// launchTCPCluster starts n replicas and one client over loopback TCP.
func launchTCPCluster(t *testing.T, cfg core.Config) ([]*Shell, *Shell, *core.Client) {
	t.Helper()
	n := cfg.N()
	suite, keys, err := core.InsecureSuite(cfg, "tcp-test")
	if err != nil {
		t.Fatal(err)
	}

	shells := make([]*Shell, n+1)
	peers := make(map[int]string)
	for id := 1; id <= n; id++ {
		sh, err := NewShell(id, "127.0.0.1:0", peers)
		if err != nil {
			t.Fatal(err)
		}
		shells[id] = sh
		peers[id] = sh.Addr()
		t.Cleanup(func() { sh.Close() })
	}
	clientID := core.ClientBase
	clientShell, err := NewShell(clientID, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	peers[clientID] = clientShell.Addr()
	t.Cleanup(func() { clientShell.Close() })

	for id := 1; id <= n; id++ {
		rep, err := core.NewReplica(id, cfg, suite, keys[id-1], apps.NewKVApp(), shells[id], nil)
		if err != nil {
			t.Fatal(err)
		}
		shells[id].Start(rep)
	}
	client, err := core.NewClient(clientID, cfg, suite, clientShell, apps.VerifyKV)
	if err != nil {
		t.Fatal(err)
	}
	client.RequestTimeout = 2 * time.Second
	clientShell.Start(client)
	return shells, clientShell, client
}

func TestTCPClusterCommitsOperations(t *testing.T) {
	cfg := core.DefaultConfig(1, 0)
	cfg.BatchTimeout = 5 * time.Millisecond
	_, clientShell, client := launchTCPCluster(t, cfg)

	const ops = 5
	var mu sync.Mutex
	results := make([][]byte, 0, ops)
	done := make(chan struct{})

	submitLocked := func(i int) {
		// Runs on the client's event loop (from onResult or via Do).
		op := kvstore.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
		if err := client.Submit(op); err != nil {
			t.Errorf("Submit: %v", err)
		}
	}
	client.SetOnResult(func(res core.Result) {
		mu.Lock()
		results = append(results, res.Val)
		n := len(results)
		mu.Unlock()
		if n < ops {
			submitLocked(n)
		} else {
			close(done)
		}
	})
	clientShell.Do(func() { submitLocked(0) })

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for operations over TCP")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) != ops {
		t.Fatalf("completed %d of %d", len(results), ops)
	}
	for _, v := range results {
		if string(v) != "OK" {
			t.Fatalf("unexpected result %q", v)
		}
	}
}

func TestShellAfterCancel(t *testing.T) {
	sh, err := NewShell(core.ClientBase, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.Start(nopNode{})
	fired := make(chan struct{}, 1)
	cancel := sh.After(20*time.Millisecond, func() { fired <- struct{}{} })
	cancel()
	cancel() // idempotent
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	// A non-cancelled timer fires on the event loop.
	sh.After(10*time.Millisecond, func() { fired <- struct{}{} })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
}

type nopNode struct{}

func (nopNode) Deliver(int, any) {}

func TestShellSendToUnknownPeerIsSilent(t *testing.T) {
	sh, err := NewShell(core.ClientBase, "127.0.0.1:0", map[int]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.Start(nopNode{})
	sh.Send(42, core.RequestMsg{}) // must not panic
}

// recordingNode captures delivered messages for assertions.
type recordingNode struct {
	mu   sync.Mutex
	got  []any
	wake chan struct{}
}

func newRecordingNode() *recordingNode { return &recordingNode{wake: make(chan struct{}, 16)} }

func (r *recordingNode) Deliver(_ int, msg any) {
	r.mu.Lock()
	r.got = append(r.got, msg)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// TestAnnounceAllEstablishesDialBackRoutes: after a client announces
// itself, a replica that has the client in neither its peers file nor its
// learned table can reach it immediately — no protocol message from the
// client needed first. This is the eager version of the dial-back fix that
// previously cost the first reply a full retry timeout.
func TestAnnounceAllEstablishesDialBackRoutes(t *testing.T) {
	replicaShell, err := NewShell(1, "127.0.0.1:0", map[int]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer replicaShell.Close()
	replicaShell.Start(nopNode{})

	clientID := core.ClientBase
	clientShell, err := NewShell(clientID, "127.0.0.1:0", map[int]string{1: replicaShell.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer clientShell.Close()
	sink := newRecordingNode()
	clientShell.Start(sink)

	clientShell.AnnounceAll()

	// The replica should now know the client's dial-back address. Allow a
	// short window for the hello frame to be read.
	deadline := time.Now().Add(5 * time.Second)
	for {
		replicaShell.Send(clientID, core.ReplyMsg{Client: clientID, Timestamp: 1, Val: []byte("hi")})
		select {
		case <-sink.wake:
		case <-time.After(50 * time.Millisecond):
		}
		sink.mu.Lock()
		n := len(sink.got)
		sink.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replica could not reach the announced client")
		}
	}
}
