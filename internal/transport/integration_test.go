package transport

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/cryptopool"
	"sbft/internal/kvstore"
	"sbft/internal/storage"
)

// TestTCPClusterEndToEndConvergence boots the cmd/sbft-node wiring path
// in-process: four Shell-hosted replicas with durable block stores plus a
// client, all over real loopback TCP. It commits a batch of KV operations
// end-to-end and asserts every replica converges to the same execution
// frontier, state digest, and durable log.
func TestTCPClusterEndToEndConvergence(t *testing.T) {
	cfg := core.DefaultConfig(1, 0)
	cfg.BatchTimeout = 5 * time.Millisecond
	n := cfg.N()
	suite, keys, err := core.InsecureSuite(cfg, "tcp-integration")
	if err != nil {
		t.Fatal(err)
	}

	dataDir := t.TempDir()
	shells := make([]*Shell, n+1)
	replicas := make([]*core.Replica, n+1)
	kvApps := make([]*apps.KVApp, n+1)
	ledgers := make([]*storage.Ledger, n+1)
	peers := make(map[int]string)
	for id := 1; id <= n; id++ {
		sh, err := NewShell(id, "127.0.0.1:0", peers)
		if err != nil {
			t.Fatal(err)
		}
		shells[id] = sh
		peers[id] = sh.Addr()
		t.Cleanup(func() { sh.Close() })
	}
	clientID := core.ClientBase
	clientShell, err := NewShell(clientID, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	peers[clientID] = clientShell.Addr()
	t.Cleanup(func() { clientShell.Close() })

	// The sbft-node main wiring: KV app + storage.Ledger block store.
	for id := 1; id <= n; id++ {
		led, err := storage.Open(filepath.Join(dataDir, fmt.Sprintf("r%d", id)), storage.Options{Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		ledgers[id] = led
		t.Cleanup(func() { led.Close() })
		app := apps.NewKVApp()
		kvApps[id] = app
		rep, err := core.NewReplica(id, cfg, suite, keys[id-1], app, shells[id], led)
		if err != nil {
			t.Fatal(err)
		}
		// The sbft-node -crypto-workers path: real worker goroutines
		// verifying shares off the shell's event loop, completions routed
		// back through Shell.Do.
		pool := cryptopool.New(suite, 2, shells[id].Do)
		t.Cleanup(pool.Close)
		rep.SetCryptoSink(pool)
		replicas[id] = rep
		shells[id].Start(rep)
	}
	client, err := core.NewClient(clientID, cfg, suite, clientShell, apps.VerifyKV)
	if err != nil {
		t.Fatal(err)
	}
	client.RequestTimeout = 2 * time.Second
	clientShell.Start(client)

	// Drive a batch of KV puts, then reads verifying them.
	const ops = 12
	opAt := func(i int) []byte {
		if i < ops/2 {
			return kvstore.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
		}
		return kvstore.Get(fmt.Sprintf("key%d", i-ops/2))
	}
	var mu sync.Mutex
	var results []core.Result
	done := make(chan struct{})
	client.SetOnResult(func(res core.Result) {
		mu.Lock()
		results = append(results, res)
		k := len(results)
		mu.Unlock()
		if k < ops {
			if err := client.Submit(opAt(k)); err != nil {
				t.Errorf("Submit: %v", err)
			}
		} else {
			close(done)
		}
	})
	clientShell.Do(func() {
		if err := client.Submit(opAt(0)); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("timed out committing the batch over TCP")
	}

	mu.Lock()
	var maxSeq uint64
	for i, res := range results {
		if i >= ops/2 && !bytes.Equal(res.Val, []byte(fmt.Sprintf("val%d", i-ops/2))) {
			t.Errorf("get %d returned %q", i-ops/2, res.Val)
		}
		if res.Seq > maxSeq {
			maxSeq = res.Seq
		}
	}
	mu.Unlock()

	// Wait for every replica to reach the client's last committed block
	// (replicas execute asynchronously after the client's quorum ack).
	deadline := time.Now().Add(30 * time.Second)
	for id := 1; id <= n; id++ {
		for {
			var le uint64
			shells[id].Do(func() { le = replicas[id].LastExecuted() })
			if le >= maxSeq {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at %d < %d", id, le, maxSeq)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Convergence: identical frontiers ⇒ identical state digests and
	// identical durable logs.
	type state struct {
		le     uint64
		digest []byte
	}
	states := make([]state, n+1)
	for id := 1; id <= n; id++ {
		id := id
		shells[id].Do(func() {
			states[id] = state{le: replicas[id].LastExecuted(), digest: kvApps[id].Digest()}
		})
	}
	for id := 2; id <= n; id++ {
		if states[id].le == states[1].le && !bytes.Equal(states[id].digest, states[1].digest) {
			t.Fatalf("replica %d digest differs from replica 1 at frontier %d", id, states[id].le)
		}
	}
	// Durable logs must agree block-for-block over the common prefix.
	minLE := states[1].le
	for id := 2; id <= n; id++ {
		if states[id].le < minLE {
			minLE = states[id].le
		}
	}
	if minLE == 0 {
		t.Fatal("no common durable prefix")
	}
	for seq := uint64(1); seq <= minLE; seq++ {
		first, err := ledgers[1].Get(seq)
		if err != nil {
			t.Fatalf("replica 1 block %d: %v", seq, err)
		}
		for id := 2; id <= n; id++ {
			b, err := ledgers[id].Get(seq)
			if err != nil {
				t.Fatalf("replica %d block %d: %v", id, seq, err)
			}
			if !bytes.Equal(first, b) {
				t.Fatalf("durable logs diverge at block %d (replica 1 vs %d)", seq, id)
			}
		}
	}
}
