// Package transport runs SBFT nodes over real TCP connections: the
// deployment path of the paper's evaluation (authenticated point-to-point
// channels, §V-B; production deployments wrap the listener in TLS 1.2 —
// the handshake here authenticates by announced node id, which matches the
// simulation trust model and keeps the module dependency-free).
//
// Messages are gob-encoded with a length-free stream codec. Each Shell
// owns one protocol node (replica or client), serializes all Deliver and
// timer callbacks through a single event loop, and implements core.Env
// over wall-clock time.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"sbft/internal/core"
	"sbft/internal/pbft"
)

func init() {
	// Register every concrete message for gob transport.
	gob.Register(core.RequestMsg{})
	gob.Register(core.PrePrepareMsg{})
	gob.Register(core.SignShareMsg{})
	gob.Register(core.FullCommitProofMsg{})
	gob.Register(core.PrepareMsg{})
	gob.Register(core.CommitMsg{})
	gob.Register(core.FullCommitProofSlowMsg{})
	gob.Register(core.SignStateMsg{})
	gob.Register(core.FullExecuteProofMsg{})
	gob.Register(core.ExecuteAckMsg{})
	gob.Register(core.ReplyMsg{})
	gob.Register(core.BusyMsg{})
	gob.Register(core.CheckpointShareMsg{})
	gob.Register(core.CheckpointCertMsg{})
	gob.Register(core.FetchCommitMsg{})
	gob.Register(core.CommitInfoMsg{})
	gob.Register(core.FetchStateMsg{})
	gob.Register(core.SnapshotMetaMsg{})
	gob.Register(core.FetchSnapshotChunkMsg{})
	gob.Register(core.SnapshotChunkMsg{})
	gob.Register(core.ReadMsg{})
	gob.Register(core.ReadReplyMsg{})
	gob.Register(core.ViewChangeMsg{})
	gob.Register(core.NewViewMsg{})
	gob.Register(pbft.PrePrepareMsg{})
	gob.Register(pbft.PrepareMsg{})
	gob.Register(pbft.CommitMsg{})
	gob.Register(pbft.CheckpointMsg{})
	gob.Register(pbft.FetchCommitMsg{})
	gob.Register(pbft.CommitInfoMsg{})
	gob.Register(pbft.ViewChangeMsg{})
	gob.Register(pbft.NewViewMsg{})
}

// envelope frames a message with its sender.
type envelope struct {
	From int
	Msg  any
}

// hello is the first frame on every outbound connection. Addr announces
// the sender's listen address so the receiver can dial back even when the
// sender is absent from its static peers file — without this, a client
// (never listed in the replicas' peers files) commits blocks it can never
// hear about: requests flow in over its inbound connections while every
// reply is dropped as "unknown peer". The cmd-level 4×sbft-node +
// sbft-client deployment hung exactly this way after its first block.
type hello struct {
	From int
	Addr string
}

// Node is a protocol event machine (core.Replica, core.Client,
// pbft.Replica).
type Node interface {
	Deliver(from int, msg any)
}

// Shell hosts one node over TCP. All node callbacks run on the shell's
// event loop goroutine, preserving the sans-io single-threaded contract.
type Shell struct {
	id    int
	peers map[int]string // node id → address (static book; not mutated)

	mu      sync.Mutex
	learned map[int]string // addresses announced by inbound hellos
	faults  *shellFaults
	conns   map[int]*gob.Encoder
	rawConn map[int]net.Conn
	inbound map[net.Conn]struct{}

	events chan func()
	done   chan struct{}
	wg     sync.WaitGroup
	ln     net.Listener
	node   Node
	closed bool
}

// NewShell creates a shell for node id listening on listenAddr, with a
// static peer address book.
func NewShell(id int, listenAddr string, peers map[int]string) (*Shell, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	s := &Shell{
		id:      id,
		peers:   peers,
		learned: make(map[int]string),
		conns:   make(map[int]*gob.Encoder),
		rawConn: make(map[int]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		events:  make(chan func(), 4096),
		done:    make(chan struct{}),
		ln:      ln,
	}
	return s, nil
}

// Addr reports the bound listen address.
func (s *Shell) Addr() string { return s.ln.Addr().String() }

// Start attaches the node and begins serving. The node must have been
// constructed with this shell as its Env.
func (s *Shell) Start(node Node) {
	s.node = node
	s.wg.Add(2)
	go s.acceptLoop()
	go s.eventLoop()
}

func (s *Shell) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.inbound[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Shell) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.inbound, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	from := h.From
	if h.Addr != "" {
		// Learn a dial-back route for peers absent from the static book
		// (clients announce themselves this way).
		s.mu.Lock()
		if _, known := s.peers[from]; !known {
			s.learned[from] = h.Addr
		}
		s.mu.Unlock()
	}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection broken; peer will redial.
				_ = err
			}
			return
		}
		if env.From != from {
			return // channel authenticity: sender id is fixed per conn
		}
		msg := env.Msg
		select {
		case s.events <- func() { s.node.Deliver(from, msg) }:
		case <-s.done:
			return
		}
	}
}

func (s *Shell) eventLoop() {
	defer s.wg.Done()
	for {
		select {
		case fn := <-s.events:
			fn()
		case <-s.done:
			return
		}
	}
}

// AnnounceAll eagerly dials every peer in the static book and sends the
// hello frame. Replicas learn the caller's dial-back address immediately,
// instead of on the first protocol message that happens to reach them —
// without this, a client's first reply arrives only after replicas learn
// its route from a forwarded request, which can cost a full retry timeout
// (clients are never listed in the replicas' peers files). Dial failures
// are ignored: the peer will be dialed again on the first real send.
func (s *Shell) AnnounceAll() {
	s.mu.Lock()
	ids := make([]int, 0, len(s.peers))
	for id := range s.peers {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, _ = s.dial(id)
		}(id)
	}
	wg.Wait()
}

// dial returns (creating if needed) the encoder for a peer.
func (s *Shell) dial(to int) (*gob.Encoder, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if enc, ok := s.conns[to]; ok {
		return enc, nil
	}
	addr, ok := s.peers[to]
	if !ok {
		addr, ok = s.learned[to]
	}
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", to)
	}
	conn, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d (%s): %w", to, addr, err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{From: s.id, Addr: s.Addr()}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake with %d: %w", to, err)
	}
	s.conns[to] = enc
	s.rawConn[to] = conn
	return enc, nil
}

func (s *Shell) dropConn(to int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.rawConn[to]; ok {
		c.Close()
	}
	delete(s.conns, to)
	delete(s.rawConn, to)
}

var _ core.Env = (*Shell)(nil)

// ShellFaults configures seeded outbound fault injection on a Shell —
// the transport-level counterpart of the simulator's link faults, letting
// the real-TCP integration test run chaos scenarios. Faults apply before
// the codec: a dropped message never reaches the encoder, a delayed one
// is re-enqueued through the event loop (which also reorders it relative
// to later sends).
type ShellFaults struct {
	// Drop is the probability an outbound message is silently dropped.
	Drop float64
	// MaxDelay, when positive, delays each outbound message by a uniform
	// random duration in [0, MaxDelay).
	MaxDelay time.Duration
	// Seed drives the fault randomness.
	Seed int64
}

type shellFaults struct {
	cfg ShellFaults
	rng *rand.Rand
}

// SetFaults installs outbound fault injection; a zero value clears it.
func (s *Shell) SetFaults(f ShellFaults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Drop <= 0 && f.MaxDelay <= 0 {
		s.faults = nil
		return
	}
	s.faults = &shellFaults{cfg: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// faultDecision draws the fate of one outbound message.
func (s *Shell) faultDecision() (drop bool, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.faults
	if f == nil {
		return false, 0
	}
	if f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop {
		return true, 0
	}
	if f.cfg.MaxDelay > 0 {
		return false, time.Duration(f.rng.Int63n(int64(f.cfg.MaxDelay)))
	}
	return false, 0
}

// Send implements core.Env. Failures are dropped silently (the protocol's
// re-transmit and view-change layers handle loss, §II).
func (s *Shell) Send(to int, msg core.Message) {
	drop, delay := s.faultDecision()
	if drop {
		return
	}
	if delay > 0 {
		s.After(delay, func() { s.sendNow(to, msg) })
		return
	}
	s.sendNow(to, msg)
}

// sendNow pushes one message through the codec.
func (s *Shell) sendNow(to int, msg core.Message) {
	enc, err := s.dial(to)
	if err != nil {
		return
	}
	if err := enc.Encode(envelope{From: s.id, Msg: msg}); err != nil {
		s.dropConn(to)
	}
}

// Now implements core.Env over wall-clock time (monotonic since process
// start is unnecessary; only differences are used).
func (s *Shell) Now() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// After implements core.Env: the callback runs on the event loop.
func (s *Shell) After(d time.Duration, fn func()) func() {
	var once sync.Once
	cancelled := make(chan struct{})
	t := time.AfterFunc(d, func() {
		select {
		case <-cancelled:
			return
		case <-s.done:
			return
		case s.events <- func() {
			select {
			case <-cancelled:
			default:
				fn()
			}
		}:
		}
	})
	return func() {
		once.Do(func() {
			close(cancelled)
			t.Stop()
		})
	}
}

// Do runs fn on the event loop and waits for it (external access to node
// state).
func (s *Shell) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case s.events <- func() { fn(); close(doneCh) }:
		<-doneCh
	case <-s.done:
	}
}

// Close shuts the shell down.
func (s *Shell) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, c := range s.rawConn {
		c.Close()
	}
	for c := range s.inbound {
		c.Close()
	}
	s.mu.Unlock()
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
