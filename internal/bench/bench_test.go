package bench

import (
	"bytes"
	"io"
	"testing"
	"time"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
)

func TestKVGenDeterministic(t *testing.T) {
	g1, g2 := KVGen(7), KVGen(7)
	for c := 0; c < 3; c++ {
		for i := 0; i < 5; i++ {
			if !bytes.Equal(g1(c, i), g2(c, i)) {
				t.Fatalf("KVGen nondeterministic at (%d,%d)", c, i)
			}
		}
	}
	if bytes.Equal(KVGen(7)(0, 0), KVGen(8)(0, 0)) {
		t.Fatal("different seeds produced the same op")
	}
	op, err := kvstore.DecodeOp(g1(0, 0))
	if err != nil || op.Kind != kvstore.OpPut {
		t.Fatalf("generated op = %+v, %v", op, err)
	}
}

func TestKVBundleGen(t *testing.T) {
	g := KVBundleGen(1, 64)
	enc := g(0, 0)
	if got := kvstore.BundleSize(enc); got != 64 {
		t.Fatalf("bundle size = %d, want 64", got)
	}
	// size 1 degenerates to a plain op.
	if got := kvstore.BundleSize(KVBundleGen(1, 1)(0, 0)); got != 1 {
		t.Fatalf("size-1 bundle = %d ops", got)
	}
	// Bundles execute.
	s := kvstore.New()
	res := s.ExecuteBlock(1, [][]byte{enc})
	if string(res[0]) != "OK:64" {
		t.Fatalf("bundle execution = %q", res[0])
	}
}

func TestContractWorkloadGenesisAndMix(t *testing.T) {
	wl := NewContractWorkload(3, 8)
	app := apps.NewEVMApp()
	wl.Genesis()(app)
	if len(app.Ledger.Code(wl.Token)) == 0 {
		t.Fatal("token contract not deployed at genesis")
	}
	if len(app.Ledger.Code(wl.Churn)) == 0 {
		t.Fatal("churn contract not deployed at genesis")
	}

	// All generated transactions must decode and execute to receipts.
	gen := wl.Gen()
	kinds := map[evm.TxKind]int{}
	const sample = 3000
	for i := 0; i < sample; i++ {
		raw := gen(i%8, i)
		tx, err := evm.DecodeTx(raw)
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		kinds[tx.Kind]++
	}
	if kinds[evm.TxCall] == 0 || kinds[evm.TxCreate] == 0 {
		t.Fatalf("mix lacks a kind: %v", kinds)
	}
	if kinds[evm.TxCreate] > sample/20 {
		t.Fatalf("creations = %d of %d; should be ~1%%", kinds[evm.TxCreate], sample)
	}

	// Genesis is identical across replicas (digests must match).
	app2 := apps.NewEVMApp()
	wl.Genesis()(app2)
	if !bytes.Equal(app.Digest(), app2.Digest()) {
		t.Fatal("genesis not deterministic across replicas")
	}
}

func TestVariantsLadder(t *testing.T) {
	vs := Variants(64)
	if len(vs) != 5 {
		t.Fatalf("variants = %d, want 5", len(vs))
	}
	if vs[0].Protocol != cluster.ProtoPBFT || vs[4].C != 8 {
		t.Fatalf("ladder malformed: %+v", vs)
	}
	if Variants(4)[4].C != 1 {
		t.Fatal("c should floor at 1 for small f")
	}
}

func TestFailuresOf(t *testing.T) {
	if failuresOf(64, 0) != 0 || failuresOf(64, 8) != 8 || failuresOf(64, 1) != 64 {
		t.Fatal("failure fraction mapping wrong")
	}
	if failuresOf(4, 8) != 1 {
		t.Fatal("fraction should floor at 1 failure")
	}
}

func TestRunPointSmoke(t *testing.T) {
	g := DefaultGrid()
	g.F = 1
	g.OpsPerClient = 3
	g.Horizon = 2 * time.Minute
	g.Out = io.Discard
	p, err := RunPoint(g, Variants(1)[3], 2, 0, 4)
	if err != nil {
		t.Fatalf("RunPoint: %v", err)
	}
	if p.Completed != 6 {
		t.Fatalf("completed %d of 6", p.Completed)
	}
	if p.Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestRunSingleNodeSmoke(t *testing.T) {
	tps, err := RunSingleNode(200, 1, t.TempDir(), io.Discard)
	if err != nil {
		t.Fatalf("RunSingleNode: %v", err)
	}
	if tps <= 0 {
		t.Fatal("no throughput")
	}
}
