// Package bench is the measurement harness for the paper's evaluation
// (§IX): workload generators, the experiment grid behind Figures 2 and 3,
// the smart-contract benchmarks (continent and world WAN), the single-node
// baseline, and the ingredient ablation. Each experiment prints the same
// rows/series the paper reports; DESIGN.md holds the per-experiment index.
package bench

import (
	"fmt"
	"math/rand"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
)

// KVGen returns the key-value micro-benchmark generator: each operation is
// a put of a random value to a random key (§IX "Measurements").
func KVGen(seed int64) cluster.OpGen {
	return func(client, i int) []byte {
		// Deterministic per (client, i): replays are identical.
		rng := rand.New(rand.NewSource(seed ^ int64(client)<<20 ^ int64(i)))
		key := fmt.Sprintf("key-%06d", rng.Intn(100_000))
		val := make([]byte, 16)
		rng.Read(val)
		return kvstore.Put(key, val)
	}
}

// KVBundleGen returns the batching-mode generator: each client request
// bundles `size` put operations (§IX: "In the batching mode each request
// contains 64 operations").
func KVBundleGen(seed int64, size int) cluster.OpGen {
	single := KVGen(seed)
	if size <= 1 {
		return single
	}
	return func(client, i int) []byte {
		ops := make([][]byte, size)
		for j := 0; j < size; j++ {
			ops[j] = single(client, i*size+j)
		}
		return kvstore.Bundle(ops...)
	}
}

// ContractWorkload generates the synthetic substitute for the paper's
// 500,000 real Ethereum transactions (DESIGN.md substitution): ~1% of
// transactions create contracts (the paper saw ≈5000 creations in 500k)
// and the rest split between token transfers and storage-churn calls.
type ContractWorkload struct {
	Deployer evm.Address
	Token    evm.Address
	Churn    evm.Address
	Senders  int
	Seed     int64
}

// NewContractWorkload fixes the genesis layout.
func NewContractWorkload(seed int64, senders int) *ContractWorkload {
	deployer := evm.AddressFromBytes([]byte{0xD0})
	return &ContractWorkload{
		Deployer: deployer,
		Token:    evm.ContractAddress(deployer, 0),
		Churn:    evm.ContractAddress(deployer, 1),
		Senders:  senders,
		Seed:     seed,
	}
}

// Genesis returns the deterministic genesis applied to every replica:
// deploy the token and churn contracts and fund the senders.
func (w *ContractWorkload) Genesis() func(app *apps.EVMApp) {
	return func(app *apps.EVMApp) {
		app.Ledger.Mint(w.Deployer, 1_000_000_000)
		if _, err := app.Ledger.GenesisCreate(w.Deployer, evm.TokenDeploy(), 10_000_000); err != nil {
			panic(fmt.Sprintf("bench: genesis token deploy: %v", err))
		}
		if _, err := app.Ledger.GenesisCreate(w.Deployer, evm.ChurnDeploy(), 10_000_000); err != nil {
			panic(fmt.Sprintf("bench: genesis churn deploy: %v", err))
		}
		for i := 0; i < w.Senders; i++ {
			app.Ledger.Mint(w.sender(i), 1_000_000)
		}
	}
}

func (w *ContractWorkload) sender(i int) evm.Address {
	return evm.AddressFromBytes([]byte{0xA0, byte(i >> 8), byte(i)})
}

// Gen returns the per-client transaction generator.
func (w *ContractWorkload) Gen() cluster.OpGen {
	return func(client, i int) []byte {
		rng := rand.New(rand.NewSource(w.Seed ^ int64(client)<<20 ^ int64(i)))
		from := w.sender(client % w.Senders)
		roll := rng.Intn(100)
		switch {
		case roll < 1:
			// Contract creation (~1%, mirrors ≈5000 of 500k).
			return evm.Tx{
				Kind: evm.TxCreate, From: from,
				GasLimit: 2_000_000, Data: evm.ChurnDeploy(),
			}.Encode()
		case roll < 61:
			// Token mint/transfer traffic.
			to := w.sender(rng.Intn(w.Senders))
			method := uint64(evm.TokenMint)
			return evm.Tx{
				Kind: evm.TxCall, From: from, To: w.Token,
				GasLimit: 1_000_000,
				Data:     evm.TokenCalldata(method, to, uint64(1+rng.Intn(100))),
			}.Encode()
		default:
			// Storage-churn call: 4–12 writes.
			return evm.Tx{
				Kind: evm.TxCall, From: from, To: w.Churn,
				GasLimit: 2_000_000,
				Data:     evm.ChurnCalldata(uint64(4 + rng.Intn(9))),
			}.Encode()
		}
	}
}
