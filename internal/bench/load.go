package bench

import (
	"fmt"
	"io"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/load"
	"sbft/internal/sim"
)

// LoadConfig parameterizes the open- vs closed-loop throughput curve for
// one (f, c) deployment. The closed loop (every client waits for its
// reply) measures unsaturated latency; the open loop (Poisson arrivals
// at a configured offered rate, multiplexed over Slots simulated
// clients) finds the saturation knee — the measurement the paper's
// throughput claims rest on, impossible to produce closed-loop because
// a waiting client self-limits offered load.
type LoadConfig struct {
	F, C int
	// Slots is the multiplexing client pool for the open loop (and the
	// closed-loop client count).
	Slots int
	// Rates are the open-loop offered loads (requests/s) to sweep.
	Rates []float64
	// OpsPerClient sizes the closed-loop reference run.
	OpsPerClient int
	// CryptoPool arms the parallel verification pool on every replica
	// (0 = inline event-loop verification, the baseline).
	CryptoPool int
	// CryptoScale multiplies signature costs (see CostModel.ScaledCrypto).
	CryptoScale int
	Seed        int64
	Warmup      time.Duration
	Window      time.Duration
	Drain       time.Duration
	Out         io.Writer
}

// LoadPoint is one measured cell of the curve.
type LoadPoint struct {
	Mode         string  // "closed" or "open"
	Rate         float64 // offered req/s (open loop only)
	Throughput   float64 // completed ops per simulated second
	MeanMs       float64
	P95Ms        float64
	Dropped      uint64 // open loop: arrivals shed at the generator
	Rejects      uint64 // §V-C admission rejects across replicas
	Backpressure uint64 // BusyMsg backoffs absorbed by clients
}

// newLoadCluster builds one deterministic deployment for a curve cell.
func (cfg LoadConfig) newCluster() (*cluster.Cluster, error) {
	netCfg := sim.ContinentProfile(cfg.Seed)
	costs := cluster.DefaultCosts()
	if cfg.CryptoScale > 1 {
		costs = costs.ScaledCrypto(cfg.CryptoScale)
	}
	return cluster.New(cluster.Options{
		Protocol:      cluster.ProtoSBFT,
		F:             cfg.F,
		C:             cfg.C,
		App:           cluster.AppKV,
		Clients:       cfg.Slots,
		NetCfg:        &netCfg,
		Seed:          cfg.Seed,
		Costs:         &costs,
		CryptoPool:    cfg.CryptoPool,
		ClientTimeout: 10 * time.Second,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 100 * time.Millisecond
			c.ViewChangeTimeout = 30 * time.Second
		},
	})
}

// RunLoadCurve measures the closed-loop reference point and the open-loop
// sweep. Each cell runs on a fresh cluster with the same seed, so cells
// differ only in offered load.
func RunLoadCurve(cfg LoadConfig) ([]LoadPoint, error) {
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 500 * time.Millisecond
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * time.Second
	}
	var points []LoadPoint

	// Closed-loop reference.
	cl, err := cfg.newCluster()
	if err != nil {
		return nil, err
	}
	res := cl.RunClosedLoop(cfg.OpsPerClient, KVGen(cfg.Seed), 10*time.Minute)
	points = append(points, LoadPoint{
		Mode:       "closed",
		Throughput: res.Throughput,
		MeanMs:     ms(res.MeanLatency),
		P95Ms:      ms(res.P95Latency),
	})
	cl.Close()

	// Open-loop sweep.
	for _, rate := range cfg.Rates {
		cl, err := cfg.newCluster()
		if err != nil {
			return nil, err
		}
		olRes := load.Run(cl, load.Config{
			Rate:   rate,
			Warmup: cfg.Warmup,
			Window: cfg.Window,
			Drain:  cfg.Drain,
			Seed:   cfg.Seed,
		})
		var rejects uint64
		for _, r := range cl.Replicas {
			if r != nil {
				rejects += r.Metrics.AdmissionRejects
			}
		}
		points = append(points, LoadPoint{
			Mode:         "open",
			Rate:         rate,
			Throughput:   olRes.Throughput,
			MeanMs:       ms(olRes.MeanLatency),
			P95Ms:        ms(olRes.P95Latency),
			Dropped:      olRes.Dropped,
			Rejects:      rejects,
			Backpressure: olRes.Backpressure,
		})
		cl.Close()
	}

	if cfg.Out != nil {
		n := 3*cfg.F + 2*cfg.C + 1
		fmt.Fprintf(cfg.Out, "\n== Throughput curve: n=%d (f=%d c=%d) pool=%d slots=%d ==\n",
			n, cfg.F, cfg.C, cfg.CryptoPool, cfg.Slots)
		fmt.Fprintf(cfg.Out, "%-8s %10s %12s %9s %8s %8s %8s %10s\n",
			"mode", "rate(r/s)", "tput(op/s)", "mean(ms)", "p95(ms)", "dropped", "rejects", "backpress")
		for _, p := range points {
			rate := "-"
			if p.Mode == "open" {
				rate = fmt.Sprintf("%.0f", p.Rate)
			}
			fmt.Fprintf(cfg.Out, "%-8s %10s %12.1f %9.1f %8.1f %8d %8d %10d\n",
				p.Mode, rate, p.Throughput, p.MeanMs, p.P95Ms, p.Dropped, p.Rejects, p.Backpressure)
		}
	}
	return points, nil
}

// PeakThroughput reports the best open-loop cell of a curve.
func PeakThroughput(points []LoadPoint) float64 {
	best := 0.0
	for _, p := range points {
		if p.Mode == "open" && p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// DefaultLoadCurve is the scaled curve behind `sbft-bench -exp load` and
// BenchmarkThroughput: n=4 or n=9 under 3× crypto cost, a thousand
// multiplexed client slots, offered loads bracketing the saturation knee
// of both the inline and pooled configurations.
func DefaultLoadCurve(f, c int, pool int, seed int64, out io.Writer) LoadConfig {
	return LoadConfig{
		F: f, C: c,
		Slots:        1000,
		Rates:        []float64{250, 500, 1000, 2000, 4000, 8000},
		OpsPerClient: 2,
		CryptoPool:   pool,
		CryptoScale:  3,
		Seed:         seed,
		Out:          out,
	}
}
