package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/sim"
	"sbft/internal/storage"
)

// Variant is one of the paper's five protocol configurations (§IX).
type Variant struct {
	Name     string
	Protocol cluster.Protocol
	C        int // only for SBFT
}

// Variants returns the evaluation ladder for a given f. The paper uses
// c=8 with f=64; the redundant variant scales as max(1, f/8) per the
// paper's "c ≤ f/8 is a good heuristic".
func Variants(f int) []Variant {
	cRed := f / 8
	if cRed < 1 {
		cRed = 1
	}
	return []Variant{
		{Name: "PBFT", Protocol: cluster.ProtoPBFT},
		{Name: "Linear-PBFT", Protocol: cluster.ProtoLinearPBFT},
		{Name: "Linear-PBFT+Fast", Protocol: cluster.ProtoLinearFast},
		{Name: "SBFT(c=0)", Protocol: cluster.ProtoSBFT, C: 0},
		{Name: fmt.Sprintf("SBFT(c=%d)", cRed), Protocol: cluster.ProtoSBFT, C: cRed},
	}
}

// Point is one measured configuration.
type Point struct {
	Experiment    string
	Protocol      string
	Clients       int
	Failures      int
	Batch         int
	Throughput    float64
	MeanMs        float64
	P50Ms         float64
	P95Ms         float64
	FastAckPct    float64
	FastCommitPct float64
	Completed     uint64
	Retries       uint64
	Msgs          uint64
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// GridConfig scales the Figure 2/3 sweep. The paper runs f=64 with 1000
// ops per client; the defaults scale to f=8 so the full grid runs in
// seconds — pass Full for paper-scale parameters (slow).
type GridConfig struct {
	F            int
	OpsPerClient int
	ClientCounts []int
	FailureFracs []int // crashed replicas expressed as f/frac; 0 = none
	Batches      []int
	Seed         int64
	Horizon      time.Duration
	Out          io.Writer
	// CryptoScale multiplies signature costs so CPU saturation appears at
	// the scaled-down n (paper n / simulated n); see CostModel.ScaledCrypto.
	CryptoScale int
}

// DefaultGrid is the scaled grid: f=16 (n=49; the paper's f=64, n=193 is
// reachable with -full at much higher CPU cost). Signature costs are
// multiplied by paper-n/simulated-n ≈ 4 so replicas saturate at the same
// offered load as the paper's deployment; the protocol-relative shape is
// preserved because both engines pay identical crypto prices.
func DefaultGrid() GridConfig {
	return GridConfig{
		F:            16,
		OpsPerClient: 10,
		ClientCounts: []int{4, 64, 256},
		FailureFracs: []int{0, 8, 1}, // none, f/8, f failures
		Batches:      []int{64, 1},
		Seed:         1,
		Horizon:      10 * time.Minute,
		Out:          os.Stdout,
		CryptoScale:  4,
	}
}

// PaperGrid is the full-scale grid (f=64, n=193/209) with unscaled crypto.
// Running it takes hours of CPU; use cmd/sbft-bench -full.
func PaperGrid() GridConfig {
	g := DefaultGrid()
	g.F = 64
	g.OpsPerClient = 50
	g.CryptoScale = 1
	return g
}

// failuresOf translates a failure fraction to a crash count.
func failuresOf(f, frac int) int {
	switch frac {
	case 0:
		return 0
	case 1:
		return f
	default:
		k := f / frac
		if k < 1 {
			k = 1
		}
		return k
	}
}

// RunPoint measures one (variant, clients, failures, batch) cell.
func RunPoint(g GridConfig, v Variant, clients, failures, batch int) (Point, error) {
	netCfg := sim.ContinentProfile(g.Seed)
	costs := cluster.DefaultCosts()
	if g.CryptoScale > 1 {
		costs = costs.ScaledCrypto(g.CryptoScale)
	}
	cl, err := cluster.New(cluster.Options{
		Protocol: v.Protocol,
		F:        g.F,
		C:        v.C,
		App:      cluster.AppKV,
		Clients:  clients,
		NetCfg:   &netCfg,
		Seed:     g.Seed,
		Batch:    16, // requests per decision block (adaptive cap)
		Costs:    &costs,
		// Long client timeout: retries under saturation would inflate
		// load; the paper's measurement clients wait for their reply.
		ClientTimeout: 60 * time.Second,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 100 * time.Millisecond
			c.ViewChangeTimeout = 10 * time.Second
		},
	})
	if err != nil {
		return Point{}, err
	}
	if failures > 0 {
		cl.CrashReplicas(failures)
	}
	// `batch` is the paper's per-request batching mode: each client
	// request bundles that many operations (§IX), so throughput counts
	// operations = requests × batch.
	res := cl.RunClosedLoop(g.OpsPerClient, KVBundleGen(g.Seed, batch), g.Horizon)
	m := cl.Metrics()
	p := Point{
		Protocol:   v.Name,
		Clients:    clients,
		Failures:   failures,
		Batch:      batch,
		Throughput: res.Throughput * float64(batch),
		MeanMs:     ms(res.MeanLatency),
		P50Ms:      ms(res.P50Latency),
		P95Ms:      ms(res.P95Latency),
		Completed:  res.Completed,
		Retries:    res.Retries,
		Msgs:       res.MsgsSent,
	}
	if res.Completed > 0 {
		p.FastAckPct = 100 * float64(res.FastAcks) / float64(res.Completed)
	}
	if total := m.FastCommits + m.SlowCommits; total > 0 {
		p.FastCommitPct = 100 * float64(m.FastCommits) / float64(total)
	}
	return p, nil
}

func header(w io.Writer) {
	fmt.Fprintf(w, "%-18s %8s %9s %6s %10s %9s %8s %8s %8s %8s\n",
		"protocol", "clients", "failures", "batch", "tput(op/s)", "mean(ms)", "p50(ms)", "p95(ms)", "fastack%", "fastcmt%")
}

func row(w io.Writer, p Point) {
	fmt.Fprintf(w, "%-18s %8d %9d %6d %10.1f %9.1f %8.1f %8.1f %8.1f %8.1f\n",
		p.Protocol, p.Clients, p.Failures, p.Batch, p.Throughput, p.MeanMs, p.P50Ms, p.P95Ms, p.FastAckPct, p.FastCommitPct)
}

// RunFig2 reproduces Figure 2 (throughput vs number of clients, 6 panels:
// batch ∈ {64, 1} × failures ∈ {0, f/8, f}) and, since Figure 3 re-plots
// the same sweep as latency vs throughput, emits both views.
func RunFig2(g GridConfig) ([]Point, error) {
	var out []Point
	w := g.Out
	for _, batch := range g.Batches {
		for _, frac := range g.FailureFracs {
			failures := failuresOf(g.F, frac)
			fmt.Fprintf(w, "\n== Fig 2/3 panel: batch=%d failures=%d (f=%d) ==\n", batch, failures, g.F)
			header(w)
			for _, v := range Variants(g.F) {
				for _, clients := range g.ClientCounts {
					p, err := RunPoint(g, v, clients, failures, batch)
					if err != nil {
						return nil, fmt.Errorf("bench: point %s/%d: %w", v.Name, clients, err)
					}
					p.Experiment = "fig2"
					row(w, p)
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}

// ContractConfig parameterizes the smart-contract benchmark (§IX).
type ContractConfig struct {
	F           int
	World       bool // world-scale WAN vs continent-scale
	Clients     int
	TxPerClient int
	Seed        int64
	Horizon     time.Duration
	Out         io.Writer
}

// DefaultContract returns the scaled contract benchmark.
func DefaultContract(world bool) ContractConfig {
	return ContractConfig{
		F:           16,
		World:       world,
		Clients:     48,
		TxPerClient: 15,
		Seed:        7,
		Horizon:     20 * time.Minute,
		Out:         os.Stdout,
	}
}

// RunContract reproduces the §IX smart-contract comparison: SBFT (all
// ingredients, c = f/8) vs scale-optimized PBFT executing the synthetic
// Ethereum workload with on-replica EVM execution. The paper reports:
// continent 378 tps / 254 ms (SBFT) vs 204 tps / 538 ms (PBFT);
// world 172 tps / 622 ms vs 98 tps / 934 ms.
func RunContract(cfg ContractConfig) ([]Point, error) {
	scale := "continent"
	if cfg.World {
		scale = "world"
	}
	fmt.Fprintf(cfg.Out, "\n== Smart-contract benchmark (%s WAN, f=%d) ==\n", scale, cfg.F)
	header(cfg.Out)

	wl := NewContractWorkload(cfg.Seed, 64)
	cRed := cfg.F / 8
	if cRed < 1 {
		cRed = 1
	}
	variants := []Variant{
		{Name: fmt.Sprintf("SBFT(c=%d)", cRed), Protocol: cluster.ProtoSBFT, C: cRed},
		{Name: "PBFT", Protocol: cluster.ProtoPBFT},
	}
	var out []Point
	for _, v := range variants {
		var netCfg sim.Config
		if cfg.World {
			netCfg = sim.WorldProfile(cfg.Seed)
		} else {
			netCfg = sim.ContinentProfile(cfg.Seed)
		}
		costs := cluster.DefaultCosts().ScaledCrypto(4) // see GridConfig.CryptoScale
		cl, err := cluster.New(cluster.Options{
			Protocol:      v.Protocol,
			F:             cfg.F,
			C:             v.C,
			App:           cluster.AppEVM,
			Clients:       cfg.Clients,
			NetCfg:        &netCfg,
			Seed:          cfg.Seed,
			Batch:         50, // ≈50 tx per 12KB chunk (§IX)
			Costs:         &costs,
			ClientTimeout: 60 * time.Second,
			GenesisEVM:    wl.Genesis(),
		})
		if err != nil {
			return nil, err
		}
		res := cl.RunClosedLoop(cfg.TxPerClient, wl.Gen(), cfg.Horizon)
		p := Point{
			Experiment: "contract-" + scale,
			Protocol:   v.Name,
			Clients:    cfg.Clients,
			Batch:      50,
			Throughput: res.Throughput,
			MeanMs:     ms(res.MeanLatency),
			P50Ms:      ms(res.P50Latency),
			P95Ms:      ms(res.P95Latency),
			Completed:  res.Completed,
		}
		if res.Completed > 0 {
			p.FastAckPct = 100 * float64(res.FastAcks) / float64(res.Completed)
		}
		m := cl.Metrics()
		if total := m.FastCommits + m.SlowCommits; total > 0 {
			p.FastCommitPct = 100 * float64(m.FastCommits) / float64(total)
		}
		row(cfg.Out, p)
		out = append(out, p)
	}
	return out, nil
}

// RunSingleNode reproduces the §IX no-replication baseline: execute the
// synthetic contract workload on one EVM ledger, persisting each block to
// disk, and report transactions/second of wall-clock time (the paper
// measures ≈840 tps on its hardware).
func RunSingleNode(txs int, seed int64, dir string, out io.Writer) (float64, error) {
	wl := NewContractWorkload(seed, 64)
	app := apps.NewEVMApp()
	wl.Genesis()(app)
	led, err := storage.Open(filepath.Join(dir, "single-node"), storage.Options{Sync: false})
	if err != nil {
		return 0, err
	}
	defer led.Close()

	gen := wl.Gen()
	const blockSize = 50
	start := time.Now()
	seq := uint64(0)
	for done := 0; done < txs; {
		n := blockSize
		if txs-done < n {
			n = txs - done
		}
		ops := make([][]byte, n)
		for i := 0; i < n; i++ {
			ops[i] = gen(i%8, done+i)
		}
		seq++
		app.ExecuteBlock(seq, ops)
		if err := led.Append(seq, app.Digest()); err != nil {
			return 0, err
		}
		app.GarbageCollect(seq) // single node keeps no proof windows
		done += n
	}
	el := time.Since(start)
	tps := float64(txs) / el.Seconds()
	fmt.Fprintf(out, "\n== Single-node baseline ==\n%d txs in %v → %.0f tps (paper: ≈840 on its testbed)\n", txs, el.Round(time.Millisecond), tps)
	return tps, nil
}

// RunAblation reproduces the ingredient ladder at a fixed load (A1 in
// DESIGN.md): each row adds one ingredient, as §IX walks through.
func RunAblation(g GridConfig) ([]Point, error) {
	fmt.Fprintf(g.Out, "\n== Ablation: ingredient ladder at 128 clients, batch=64, no failures ==\n")
	header(g.Out)
	var out []Point
	for _, v := range Variants(g.F) {
		p, err := RunPoint(g, v, 128, 0, 64)
		if err != nil {
			return nil, err
		}
		p.Experiment = "ablation"
		row(g.Out, p)
		out = append(out, p)
	}
	return out, nil
}

// RunViewChange measures recovery from a primary crash (A3): virtual time
// from crash to the first post-crash completion, plus total view changes.
func RunViewChange(g GridConfig) error {
	fmt.Fprintf(g.Out, "\n== View change recovery (primary crash at t=2s) ==\n")
	for _, v := range Variants(g.F) {
		netCfg := sim.ContinentProfile(g.Seed)
		cl, err := cluster.New(cluster.Options{
			Protocol: v.Protocol, F: g.F, C: v.C,
			App: cluster.AppKV, Clients: 16, NetCfg: &netCfg, Seed: g.Seed,
			Tune: func(c *core.Config) {
				c.ViewChangeTimeout = 500 * time.Millisecond
			},
			TunePBFT:      nil,
			ClientTimeout: time.Second,
		})
		if err != nil {
			return err
		}
		cl.Sched.Schedule(2*time.Second, func() { cl.Net.Crash(1) })
		res := cl.RunClosedLoop(40, KVGen(g.Seed), g.Horizon)
		vcs := cl.Metrics().ViewChanges
		if v.Protocol == cluster.ProtoPBFT {
			vcs = cl.PBFTMetrics().ViewChanges
		}
		fmt.Fprintf(g.Out, "%-18s completed=%d/%d duration=%v viewchanges=%d retries=%d\n",
			v.Name, res.Completed, 16*40, res.Duration.Round(time.Millisecond), vcs, res.Retries)
	}
	return nil
}

// RunSeamlessSwitch demonstrates the dual-mode property (§I ingredient 2):
// with c stragglers the fast path persists; with c+1 stragglers SBFT
// degrades per-slot to the linear-PBFT path without any view change.
func RunSeamlessSwitch(g GridConfig, out io.Writer) error {
	fmt.Fprintf(out, "\n== Seamless fast↔slow switching (SBFT c=1, f=%d) ==\n", g.F)
	for _, stragglers := range []int{0, 1, 2} {
		netCfg := sim.ContinentProfile(g.Seed)
		cl, err := cluster.New(cluster.Options{
			Protocol: cluster.ProtoSBFT, F: g.F, C: 1,
			App: cluster.AppKV, Clients: 16, NetCfg: &netCfg, Seed: g.Seed,
			Tune: func(c *core.Config) {
				c.FastPathTimeout = 80 * time.Millisecond
			},
		})
		if err != nil {
			return err
		}
		cl.SetStragglers(stragglers, 500*time.Millisecond)
		res := cl.RunClosedLoop(g.OpsPerClient, KVGen(g.Seed), g.Horizon)
		m := cl.Metrics()
		total := m.FastCommits + m.SlowCommits
		fastPct := 0.0
		if total > 0 {
			fastPct = 100 * float64(m.FastCommits) / float64(total)
		}
		fmt.Fprintf(out, "stragglers=%d: tput=%.1f op/s mean=%.0fms fast-commits=%.0f%% viewchanges=%d\n",
			stragglers, res.Throughput, ms(res.MeanLatency), fastPct, m.ViewChanges)
	}
	return nil
}
