package bench

import (
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/shard"
)

// Sharding experiments (ROADMAP item 5): aggregate throughput of a
// k-group deployment under disjoint-key load (the linear-scaling claim:
// independent groups order independently) and under a cross-shard mix
// (the 2PC tax: coordinator round-trips and certificate verification).

// ShardingConfig sizes one sharded measurement.
type ShardingConfig struct {
	Shards int
	F      int // per-group f (n = 3f+1 each, c = 0)
	// Lanes is the client count per group.
	Lanes int
	// OpsPerLane is the closed-loop depth per client (disjoint) or the
	// operation count per lane driver (cross).
	OpsPerLane int
	// CrossFrac is the fraction of cross-shard transactions in the mixed
	// workload (ignored by the disjoint run).
	CrossFrac float64
	Seed      int64
	Horizon   time.Duration
}

// DefaultSharding returns the CI-sized sharded measurement.
func DefaultSharding(k int, seed int64) ShardingConfig {
	return ShardingConfig{
		Shards:     k,
		F:          1,
		Lanes:      4,
		OpsPerLane: 25,
		CrossFrac:  0.10,
		Seed:       seed,
		Horizon:    2 * time.Minute,
	}
}

// ShardingPoint is one measured sharded configuration.
type ShardingPoint struct {
	Shards int
	// Aggregate is the summed steady-state throughput across groups in
	// operations per simulated second.
	Aggregate float64
	PerGroup  []float64
}

// disjointKey finds a key owned by group g (same salt search a routing
// client performs).
func disjointKey(g, k int, lane, i int, seed int64) string {
	for salt := 0; ; salt++ {
		key := fmt.Sprintf("bench/%d/%d/%d.%d", seed, lane, i, salt)
		if shard.Route(key, k) == g {
			return key
		}
	}
}

// RunShardingDisjoint measures aggregate throughput of a k-shard
// deployment under PURELY disjoint-key load: every client writes only
// keys its own group owns, so no cross-shard coordination happens and
// the groups run as independent ordering pipelines. Aggregate throughput
// is the sum of per-group steady-state rates — in a real deployment the
// groups run concurrently on disjoint hardware.
func RunShardingDisjoint(cfg ShardingConfig) (*ShardingPoint, error) {
	sc, err := shard.New(shard.Options{
		Shards:        cfg.Shards,
		F:             cfg.F,
		Lanes:         cfg.Lanes,
		Seed:          cfg.Seed,
		ClientTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()

	pt := &ShardingPoint{Shards: cfg.Shards}
	for g, cl := range sc.Topo.Groups {
		g := g
		gen := func(lane, i int) []byte {
			key := disjointKey(g, cfg.Shards, lane, i, cfg.Seed)
			return kvstore.Put(key, []byte("v"))
		}
		res := cl.RunClosedLoop(cfg.OpsPerLane, cluster.OpGen(gen), cfg.Horizon)
		want := uint64(cfg.Lanes * cfg.OpsPerLane)
		if res.Completed != want {
			return nil, fmt.Errorf("bench: group %d completed %d/%d ops", g, res.Completed, want)
		}
		// Partition honesty check: the load must have LANDED, not been
		// refused by the ownership check (a refused Put still "completes"
		// with an error value).
		probe := disjointKey(g, cfg.Shards, 0, 0, cfg.Seed)
		if _, ok := sc.FrontierStore(g).Value(probe); !ok {
			return nil, fmt.Errorf("bench: group %d refused its own partition (key %q missing)", g, probe)
		}
		pt.PerGroup = append(pt.PerGroup, res.Throughput)
		pt.Aggregate += res.Throughput
	}
	return pt, nil
}

// CrossResult summarizes a mixed single/cross-shard run.
type CrossResult struct {
	Shards    int
	SingleOps int
	Committed int
	Aborted   int
	Pending   int
	Elapsed   time.Duration
	// Throughput counts logical operations (a transaction is one) per
	// simulated second of the SHARED lockstep clock.
	Throughput float64
}

// RunShardingCross measures a k-shard deployment under a mixed workload:
// each lane drives OpsPerLane logical operations, a CrossFrac fraction of
// which are two-shard transactions through an honest proof-carrying
// coordinator, the rest single-shard puts. Reported, not gated — the 2PC
// tax (two consensus rounds plus certificate ferrying per transaction)
// is the price of atomicity, and this run quantifies it.
func RunShardingCross(cfg ShardingConfig) (*CrossResult, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("bench: cross-shard mix needs ≥ 2 shards")
	}
	sc, err := shard.New(shard.Options{
		Shards:        cfg.Shards,
		F:             cfg.F,
		Lanes:         cfg.Lanes,
		Seed:          cfg.Seed,
		ClientTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()

	out := &CrossResult{Shards: cfg.Shards}
	type driver struct {
		lane int
		rng  *rand.Rand
		i    int
		done bool
	}
	drivers := make([]*driver, cfg.Lanes)
	var step func(d *driver)
	step = func(d *driver) {
		if d.i >= cfg.OpsPerLane {
			d.done = true
			return
		}
		i := d.i
		d.i++
		if d.rng.Float64() < cfg.CrossFrac {
			// Two-shard transaction between a random pair.
			a := d.rng.Intn(cfg.Shards)
			b := (a + 1 + d.rng.Intn(cfg.Shards-1)) % cfg.Shards
			txid := fmt.Sprintf("xtx/%d/%d/%d", cfg.Seed, d.lane, i)
			tx := shard.Tx{ID: txid, Writes: [][]byte{
				kvstore.Put(disjointKey(a, cfg.Shards, d.lane, 1000+i, cfg.Seed), []byte(txid)),
				kvstore.Put(disjointKey(b, cfg.Shards, d.lane, 2000+i, cfg.Seed), []byte(txid)),
			}}
			co := &shard.Coordinator{SC: sc, Lane: d.lane, Mode: shard.CoordHonest}
			if err := co.Start(tx, func(o shard.TxOutcome) {
				switch {
				case o.Committed:
					out.Committed++
				case o.Aborted:
					out.Aborted++
				default:
					out.Pending++
				}
				step(d)
			}); err != nil {
				d.done = true
			}
			return
		}
		g := d.rng.Intn(cfg.Shards)
		op := kvstore.Put(disjointKey(g, cfg.Shards, d.lane, i, cfg.Seed), []byte("v"))
		if err := sc.Submit(g, d.lane, op, func(core.Result) {
			out.SingleOps++
			step(d)
		}); err != nil {
			d.done = true
		}
	}
	start := sc.Topo.Now()
	for lane := 0; lane < cfg.Lanes; lane++ {
		drivers[lane] = &driver{lane: lane, rng: rand.New(rand.NewSource(cfg.Seed*131 + int64(lane)))}
		step(drivers[lane])
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 2 * time.Minute
	}
	allDone := func() bool {
		for _, d := range drivers {
			if !d.done {
				return false
			}
		}
		return true
	}
	if !sc.Topo.RunUntil(allDone, horizon) {
		return nil, fmt.Errorf("bench: cross-shard mix did not drain within %v", horizon)
	}
	out.Elapsed = sc.Topo.Now() - start
	total := out.SingleOps + out.Committed + out.Aborted
	if out.Elapsed > 0 {
		out.Throughput = float64(total) / out.Elapsed.Seconds()
	}
	return out, nil
}
