package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/pbft"
	"sbft/internal/sim"
)

// This file is the Byzantine scenario generator: where DefaultGen injects
// benign faults one replica at a time, ByzantineGen composes OVERLAPPING
// benign and Byzantine fault windows while provably respecting the
// deployment's fault budget. SBFT's n = 3f + 2c + 1 sizing (§IV) tolerates
// f Byzantine replicas and c additional crashed/slow ones. Byzantine-ness
// is a property of a replica over the WHOLE execution — the safety
// argument quantifies over executions, so a replica that equivocated once
// consumes an f slot forever even after it resumes honest behavior —
// while benign impairment is transient. The generator therefore
// maintains:
//
//	|{replicas ever Byzantine}| ≤ f            (sticky, whole run)
//	|byzantine(t) ∪ impaired(t)| ≤ f + c      (at every instant t)
//
// counted over distinct replicas (a replica that is simultaneously
// Byzantine and crashed consumes one budget slot). ValidateBudget replays
// a schedule and checks both invariants; ByzantineGen panics if its own
// output ever violates them, and the chaos tests sweep the validator over
// hundreds of seeds.

// ValidateBudget replays a fault schedule over n replicas and returns an
// error if more than f DISTINCT replicas are ever made Byzantine across
// the whole schedule (the sticky f budget), or if, at any instant, more
// than f+c distinct replicas are faulty at all (Byzantine, crashed,
// partitioned into a minority group, straggling, or behind a lossy
// link). Global link faults (both endpoints wildcarded) impair no one:
// they model the network, not a replica.
//
// A FaultByzCollude* step admits its whole member set (Node plus Peers)
// as ONE adversary, atomically: every member is marked Byzantine at the
// same instant, so a set larger than f is rejected at the step that
// installs it, and repeated collusion steps over the same set add
// nothing (the marks are idempotent). This is deliberately stricter than
// treating members as coincidentally-overlapping independents: the set
// either fits the sticky f budget as a unit or the schedule is invalid.
//
// The adaptive FaultAttack* kinds name no replicas up front — the
// attacker chases the role map at run time — so they consume ANONYMOUS
// at-once slots equal to the most replicas the attacker may impair
// simultaneously: f+c for the collector-crash attack, c+1 for the
// fast-path straggle, 1 for the primary-link partition (only the
// primary's outbound endpoint turns lossy). FaultAttackStop releases the
// slots. The count is an over-approximation when attacker targets
// coincide with separately-scheduled faults (the attacker spares
// already-impaired replicas at run time, the validator cannot know
// which), which errs on the sound side: a schedule the validator accepts
// never exceeds the budget.
func ValidateBudget(s cluster.Schedule, n, f, c int) error {
	steps := make([]cluster.Fault, len(s))
	copy(steps, s)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })

	type state struct {
		byz, crashed, straggling, lossy bool
		group                           int
	}
	nodes := make(map[int]*state)
	everByz := make(map[int]bool)
	attackSlots := 0
	get := func(id int) *state {
		st, ok := nodes[id]
		if !ok {
			st = &state{}
			nodes[id] = st
		}
		return st
	}

	check := func(at time.Duration) error {
		// Partition-impaired: members of every non-zero group except the
		// most populous one (the majority side keeps quorum candidates).
		groups := make(map[int]int)
		for _, st := range nodes {
			if st.group != 0 {
				groups[st.group]++
			}
		}
		major, majorSize := 0, 0
		for g, size := range groups {
			if size > majorSize || (size == majorSize && g < major) {
				major, majorSize = g, size
			}
		}
		faulty := attackSlots
		for _, st := range nodes {
			if st.byz || st.crashed || st.straggling || st.lossy ||
				(st.group != 0 && st.group != major) {
				faulty++
			}
		}
		if len(everByz) > f {
			return fmt.Errorf("budget violated at %v: %d distinct replicas ever Byzantine, budget f=%d", at, len(everByz), f)
		}
		if faulty > f+c {
			return fmt.Errorf("budget violated at %v: %d faulty replicas, budget f+c=%d", at, faulty, f+c)
		}
		return nil
	}

	for i, st := range steps {
		switch st.Kind {
		case cluster.FaultCrash:
			get(st.Node).crashed = true
		case cluster.FaultRecover, cluster.FaultRestart:
			get(st.Node).crashed = false
		case cluster.FaultPartition:
			get(st.Node).group = st.Group
		case cluster.FaultHeal:
			for _, s := range nodes {
				s.group = 0
			}
		case cluster.FaultStraggle:
			get(st.Node).straggling = st.Extra > 0
		case cluster.FaultLink:
			switch {
			case st.From != 0:
				get(st.From).lossy = true
			case st.To != 0:
				get(st.To).lossy = true
			}
		case cluster.FaultLinkClear:
			for _, s := range nodes {
				s.lossy = false
			}
		case cluster.FaultByzEquivocate, cluster.FaultByzStaleView,
			cluster.FaultByzConflictCkpt, cluster.FaultByzSilent,
			cluster.FaultByzSnapshot, cluster.FaultByzStaleMeta,
			cluster.FaultByzForgedProof:
			get(st.Node).byz = true
			everByz[st.Node] = true
		case cluster.FaultByzRestore:
			get(st.Node).byz = false
		case cluster.FaultByzColludeEquivocate, cluster.FaultByzColludeCkpt,
			cluster.FaultByzColludeSnapshot:
			// The whole member set is one adversary, admitted atomically.
			get(st.Node).byz = true
			everByz[st.Node] = true
			for _, p := range st.Peers {
				get(p).byz = true
				everByz[p] = true
			}
		case cluster.FaultAttackCollectors:
			attackSlots = f + c
		case cluster.FaultAttackFastPath:
			attackSlots = c + 1
		case cluster.FaultAttackPartition:
			attackSlots = 1
		case cluster.FaultAttackStop:
			attackSlots = 0
		}
		// Steps sharing a timestamp apply atomically (a partition pattern
		// is several same-instant steps): check once per instant.
		if i+1 < len(steps) && steps[i+1].At == st.At {
			continue
		}
		if err := check(st.At); err != nil {
			return err
		}
	}
	_ = n
	return nil
}

// window is one planned fault span during generation.
type window struct {
	start, end time.Duration
	node       int
	byz        bool
}

// byzWindowKinds are the corrupter-based behaviors ByzantineGen draws.
var byzWindowKinds = [...]cluster.FaultKind{
	cluster.FaultByzEquivocate,
	cluster.FaultByzSilent,
	cluster.FaultByzConflictCkpt,
	cluster.FaultByzStaleView,
	cluster.FaultByzSnapshot,
	cluster.FaultByzStaleMeta,
}

// ByzantineGen generates a survivable schedule mixing Byzantine windows
// (equivocating primary, silent-but-alive replica, conflicting-checkpoint
// sender, stale-view spammer, snapshot-chunk tamperer) with the benign
// fault classes of DefaultGen, allowing windows to OVERLAP whenever the f/c budget admits
// two concurrent faulty replicas (or the windows share one target). The
// protocol variant cycles with the seed; every 16th seed runs the
// paper-scale configuration f=2, c=1 (n = 9) under the scaled crypto cost
// model. Every generated schedule is checked against ValidateBudget.
func ByzantineGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x6c62272e07bb0142 + 0x2545f4914f6cdd1d))
	proto := chaosVariants[int(uint64(seed)%uint64(len(chaosVariants)))]

	f, c := 1, 0
	paperScale := seed%16 == 15
	opts := cluster.Options{
		Protocol:      proto,
		Clients:       2,
		Seed:          seed,
		ClientTimeout: time.Second,
		Persist:       true,
		CryptoPool:    1, // async verification under every Byzantine seed
		Tune: func(cc *core.Config) {
			cc.ViewChangeTimeout = time.Second
		},
		TunePBFT: func(pc *pbft.Config) {
			pc.ViewChangeTimeout = time.Second
		},
	}
	switch {
	case paperScale:
		// seed ≡ 15 (mod 16) ⇒ seed ≡ 3 (mod 4) ⇒ ProtoSBFT: the §IX
		// failure-experiment scale with redundant collectors.
		f, c = 2, 1 // n = 9
		cm := cluster.DefaultCosts().ScaledCrypto(3)
		opts.Costs = &cm
		opts.Clients = 3
	case proto == cluster.ProtoSBFT && rng.Float64() < 0.5:
		c = 1 // n = 6
	}
	opts.F, opts.C = f, c
	n := 3*f + 1
	if proto != cluster.ProtoPBFT {
		n = 3*f + 2*c + 1
	}
	budget := f
	if proto == cluster.ProtoSBFT {
		budget = f + c
	}

	var (
		sched    cluster.Schedule
		windows  []window
		byzNodes []int // sticky f budget: the only replicas ever Byzantine
	)
	inByzNodes := func(id int) bool {
		for _, b := range byzNodes {
			if b == id {
				return true
			}
		}
		return false
	}
	// overlappers returns the planned windows still active at time t.
	overlappers := func(t time.Duration) []window {
		var out []window
		for _, w := range windows {
			if w.end > t {
				out = append(out, w)
			}
		}
		return out
	}
	// fits reports whether adding (node, byz) over span [start,end) keeps
	// the budget: distinct Byzantine ≤ f, distinct faulty ≤ f+c.
	fits := func(start time.Duration, node int, byz bool) bool {
		distinct := map[int]bool{node: true}
		byzSet := map[int]bool{}
		if byz {
			byzSet[node] = true
		}
		for _, w := range overlappers(start) {
			distinct[w.node] = true
			if w.byz {
				byzSet[w.node] = true
			}
		}
		return len(byzSet) <= f && len(distinct) <= budget
	}

	start := 200*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
	count := 2 + rng.Intn(3)
	for w := 0; w < count; w++ {
		dur := 300*time.Millisecond + time.Duration(rng.Int63n(int64(900*time.Millisecond)))
		byz := rng.Float64() < 0.55
		node := 1 + rng.Intn(n)
		if byz {
			// Byzantine windows only ever hit the sticky byzNodes set (at
			// most f distinct replicas per run; the first is the view-0
			// primary, the interesting adversary position).
			if len(byzNodes) == 0 {
				byzNodes = append(byzNodes, 1)
			} else if len(byzNodes) < f && !inByzNodes(node) && rng.Float64() < 0.5 {
				byzNodes = append(byzNodes, node)
			}
			node = byzNodes[rng.Intn(len(byzNodes))]
		}
		if !fits(start, node, byz) {
			// Retarget onto an already-faulty replica if that fits (a
			// replica can be Byzantine and crashed at once for one budget
			// slot), else serialize after every active window.
			retargeted := false
			for _, ow := range overlappers(start) {
				if byz && !inByzNodes(ow.node) {
					continue
				}
				if fits(start, ow.node, byz) {
					node, retargeted = ow.node, true
					break
				}
			}
			if !retargeted {
				for _, ow := range overlappers(start) {
					if ow.end > start {
						start = ow.end
					}
				}
				start += 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
			}
		}
		end := start + dur

		if byz {
			kind := byzWindowKinds[rng.Intn(len(byzWindowKinds))]
			sched = append(sched,
				cluster.Fault{At: start, Kind: kind, Node: node},
				cluster.Fault{At: end, Kind: cluster.FaultByzRestore, Node: node})
		} else {
			switch kind := rng.Intn(6); kind {
			case 0, 1:
				sched = append(sched, cluster.Fault{At: start, Kind: cluster.FaultCrash, Node: node})
				if kind == 0 {
					sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultRestart, Node: node})
				} else {
					sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultRecover, Node: node})
				}
			case 2:
				// Isolate one replica; everyone else stays a majority.
				for id := 1; id <= n; id++ {
					g := 2
					if id == node {
						g = 1
					}
					sched = append(sched, cluster.Fault{At: start, Kind: cluster.FaultPartition, Node: id, Group: g})
				}
				sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultHeal})
			case 3:
				extra := 100*time.Millisecond + time.Duration(rng.Int63n(int64(900*time.Millisecond)))
				sched = append(sched,
					cluster.Fault{At: start, Kind: cluster.FaultStraggle, Node: node, Extra: extra},
					cluster.Fault{At: end, Kind: cluster.FaultStraggle, Node: node, Extra: 0})
			case 4:
				lf := sim.LinkFault{Drop: 0.3 + 0.6*rng.Float64()}
				sched = append(sched,
					cluster.Fault{At: start, Kind: cluster.FaultLink, From: node, To: 0, Link: lf},
					cluster.Fault{At: end, Kind: cluster.FaultLinkClear})
			default:
				// Global duplicate+reorder: a network-wide idempotence
				// stressor that impairs no replica budget-wise.
				lf := sim.LinkFault{
					Duplicate:     0.3 + 0.4*rng.Float64(),
					ReorderJitter: 5*time.Millisecond + time.Duration(rng.Int63n(int64(25*time.Millisecond))),
				}
				sched = append(sched,
					cluster.Fault{At: start, Kind: cluster.FaultLink, From: 0, To: 0, Link: lf},
					cluster.Fault{At: end, Kind: cluster.FaultLinkClear})
			}
		}
		windows = append(windows, window{start: start, end: end, node: node, byz: byz})

		// Next window: half the time overlap the current one, else start
		// after it heals.
		if rng.Float64() < 0.5 {
			start += time.Duration(rng.Int63n(int64(dur)))
		} else {
			start = end + 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
		}
	}

	if err := ValidateBudget(sched, n, f, c); err != nil {
		// The generator's own invariant: a violating schedule is a bug,
		// not a scenario.
		panic(fmt.Sprintf("harness: ByzantineGen(%d) violated its budget: %v\nschedule:\n%v\nwindows: %+v", seed, err, sched, windows))
	}

	name := fmt.Sprintf("byzchaos-%s", proto)
	if paperScale {
		name += "-paperscale"
	}
	s := Scenario{
		Name:               name,
		Opts:               opts,
		Schedule:           sched,
		OpsPerClient:       5,
		Horizon:            30 * time.Minute, // virtual time; generous on purpose
		Settle:             30 * time.Second,
		ExpectAllCommitted: true,
	}
	// Every fifth seed faces the Byzantine windows with the EVM ledger as
	// the replicated application.
	if seed%5 == 2 {
		s = evmize(s)
	}
	return s
}
