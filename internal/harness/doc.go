// Package harness is the deterministic chaos harness: it runs scripted
// or seeded-random fault scenarios against simulated SBFT/PBFT
// deployments and audits every outcome for safety.
//
// # Scenarios
//
// A Scenario is a cluster configuration (any protocol variant, the KV or
// EVM application), a timed fault Schedule (crash, restart-from-storage,
// partition, straggler, link-fault and Byzantine windows), and a
// closed-loop workload. Run builds the cluster with recording
// applications, applies the schedule, drives the workload, lets the
// system settle, and audits.
//
// # Generators
//
// Generators are deterministic seed → Scenario functions, so a failing
// seed is a complete reproduction recipe:
//
//   - DefaultGen: benign fault windows, one impaired replica at a time,
//     everything heals; safety AND liveness asserted. Cycles the four
//     protocol variants with the seed; every 5th seed runs the EVM
//     ledger instead of the KV store.
//   - ByzantineGen: OVERLAPPING benign + Byzantine windows (equivocating
//     primary, silent replica, conflicting-checkpoint sender, stale-view
//     spammer, snapshot-chunk tamperer) under the proven f/c budget —
//     at most f DISTINCT replicas ever Byzantine (sticky), at most f+c
//     distinct replicas faulty at any instant (ValidateBudget replays
//     and checks every schedule). Every 16th seed runs the paper-scale
//     f=2, c=1 (n=9) configuration.
//   - EVMGen / EVMByzantineGen: the same generators with the EVM token
//     ledger on every seed (the CI slice behind `sbft-chaos -gen evm`).
//   - RecoveryGen: large-state recovery — multi-MiB replicated state, a
//     victim crashed across several checkpoint intervals (catch-up MUST
//     run through windowed chunked state transfer), drop/reorder links
//     while the transfer runs, and chunk-tampering or stale-meta
//     Byzantine snapshot servers; a per-scenario Check asserts the
//     victim caught up and blame landed only on faulty servers (the CI
//     slice behind `sbft-chaos -gen recovery`).
//
// # Safety auditor
//
// After every scenario AuditCluster cross-checks, over honest replicas
// only (Byzantine ones are expected to diverge and excluded): identical
// committed blocks per sequence; identical app state roots at equal
// execution frontiers; identical execution-state digests (app root ‖
// last-reply table) at equal frontiers — the certified-dedup invariant
// behind chunked state transfer; no client ack for work no replica
// performed; no operation executed at two sequences of one replica; and
// every scheduled fault step applied.
//
// RunChaos sweeps a seed range and reports the minimal failing seed;
// cmd/sbft-chaos is the CLI.
package harness
