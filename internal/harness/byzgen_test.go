package harness

import (
	"sort"
	"strings"
	"testing"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/pbft"
)

// TestByzantineGenRespectsBudget sweeps the generator across many seeds
// and re-validates every schedule against the f/c budget invariant (the
// generator also self-checks and panics, so this doubles as a no-panic
// sweep). It additionally asserts the generator actually uses its
// Byzantine and overlap freedoms in aggregate.
func TestByzantineGenRespectsBudget(t *testing.T) {
	byzSchedules, overlapping := 0, 0
	for seed := int64(1); seed <= 500; seed++ {
		s := ByzantineGen(seed)
		n := 3*s.Opts.F + 1
		if s.Opts.Protocol != cluster.ProtoPBFT {
			n = 3*s.Opts.F + 2*s.Opts.C + 1
		}
		if err := ValidateBudget(s.Schedule, n, s.Opts.F, s.Opts.C); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hasByz := false
		for _, f := range s.Schedule {
			if f.Kind.Byzantine() && f.Kind != cluster.FaultByzRestore {
				hasByz = true
			}
		}
		if hasByz {
			byzSchedules++
		}
		if scheduleHasOverlap(s.Schedule) {
			overlapping++
		}
	}
	if byzSchedules < 200 {
		t.Errorf("only %d of 500 schedules contained a Byzantine window", byzSchedules)
	}
	if overlapping < 50 {
		t.Errorf("only %d of 500 schedules overlapped fault windows", overlapping)
	}
}

// scheduleHasOverlap detects two concurrently active fault windows
// (possibly on one replica: a node can be, say, Byzantine and straggling
// at once within one budget slot). Steps are time-sorted first — the
// generator appends them window by window, not chronologically.
func scheduleHasOverlap(s cluster.Schedule) bool {
	steps := make([]cluster.Fault, len(s))
	copy(steps, s)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	active, link := 0, 0
	for _, f := range steps {
		switch f.Kind {
		case cluster.FaultCrash, cluster.FaultByzEquivocate, cluster.FaultByzStaleView,
			cluster.FaultByzConflictCkpt, cluster.FaultByzSilent:
			active++
		case cluster.FaultStraggle:
			if f.Extra > 0 {
				active++
			} else {
				active--
			}
		case cluster.FaultRecover, cluster.FaultRestart, cluster.FaultByzRestore:
			active--
		case cluster.FaultLink:
			if f.From != 0 || f.To != 0 {
				link++ // per-node lossy window (global faults impair no one)
			}
		case cluster.FaultLinkClear:
			link = 0
		}
		if active+link >= 2 {
			return true
		}
	}
	return false
}

// TestByzantineGenCoversVariantsAndPaperScale pins protocol cycling and
// the every-16th-seed paper-scale configuration.
func TestByzantineGenCoversVariantsAndPaperScale(t *testing.T) {
	seen := make(map[cluster.Protocol]bool)
	for seed := int64(1); seed <= 8; seed++ {
		seen[ByzantineGen(seed).Opts.Protocol] = true
	}
	for _, p := range chaosVariants {
		if !seen[p] {
			t.Errorf("generator never produced %s", p)
		}
	}
	s := ByzantineGen(15)
	if s.Opts.F != 2 || s.Opts.C != 1 || s.Opts.Protocol != cluster.ProtoSBFT {
		t.Fatalf("seed 15 = %s f=%d c=%d, want paper-scale SBFT f=2 c=1", s.Opts.Protocol, s.Opts.F, s.Opts.C)
	}
	if s.Opts.Costs == nil {
		t.Error("paper-scale scenario not under the scaled cost model")
	}
	if !strings.Contains(s.Name, "paperscale") {
		t.Errorf("paper-scale scenario name %q lacks the marker", s.Name)
	}
}

// TestValidateBudgetRejectsOverBudget pins the validator itself.
func TestValidateBudgetRejectsOverBudget(t *testing.T) {
	over := cluster.Schedule{
		{At: 0, Kind: cluster.FaultByzSilent, Node: 1},
		{At: time.Millisecond, Kind: cluster.FaultCrash, Node: 2},
	}
	if err := ValidateBudget(over, 4, 1, 0); err == nil {
		t.Fatal("two concurrent faulty replicas accepted under f=1 c=0")
	}
	twoByz := cluster.Schedule{
		{At: 0, Kind: cluster.FaultByzSilent, Node: 1},
		{At: time.Millisecond, Kind: cluster.FaultByzEquivocate, Node: 2},
	}
	if err := ValidateBudget(twoByz, 6, 1, 1); err == nil {
		t.Fatal("two concurrent Byzantine replicas accepted under f=1")
	}
	sameNode := cluster.Schedule{
		{At: 0, Kind: cluster.FaultByzSilent, Node: 1},
		{At: time.Millisecond, Kind: cluster.FaultCrash, Node: 1},
	}
	if err := ValidateBudget(sameNode, 4, 1, 0); err != nil {
		t.Fatalf("Byzantine+crashed on one replica should fit one budget slot: %v", err)
	}
	healed := cluster.Schedule{
		{At: 0, Kind: cluster.FaultByzSilent, Node: 1},
		{At: time.Millisecond, Kind: cluster.FaultByzRestore, Node: 1},
		{At: 2 * time.Millisecond, Kind: cluster.FaultCrash, Node: 2},
	}
	if err := ValidateBudget(healed, 4, 1, 0); err != nil {
		t.Fatalf("sequential windows rejected: %v", err)
	}
	// The f budget is sticky: a second Byzantine replica is over budget
	// even after the first was restored (Byzantine-ness quantifies over
	// the whole execution, not an instant).
	sticky := cluster.Schedule{
		{At: 0, Kind: cluster.FaultByzSilent, Node: 1},
		{At: time.Millisecond, Kind: cluster.FaultByzRestore, Node: 1},
		{At: 2 * time.Millisecond, Kind: cluster.FaultByzEquivocate, Node: 2},
	}
	if err := ValidateBudget(sticky, 4, 1, 0); err == nil {
		t.Fatal("two sequentially Byzantine replicas accepted under sticky f=1")
	}
}

// TestByzantineChaosSweep is the acceptance gate for the Byzantine
// subsystem: ≥ 100 seeded scenarios mixing overlapping benign and
// Byzantine fault windows across all four protocol variants (including
// the f=2 paper-scale configuration every 16th seed), zero honest-replica
// safety divergences and zero liveness failures.
func TestByzantineChaosSweep(t *testing.T) {
	const runs = 120
	cr := RunChaos(SeedRange(1, runs), ByzantineGen)
	if cr.Runs != runs {
		t.Fatalf("ran %d scenarios, want %d", cr.Runs, runs)
	}
	if !cr.OK() {
		for seed, err := range cr.Errors {
			t.Errorf("seed %d errored: %v", seed, err)
		}
		for _, rep := range cr.Failures {
			t.Errorf("%s", rep.Summary())
			for _, f := range rep.Faults {
				t.Logf("  fault: %s", f)
			}
		}
		t.Fatalf("%s", cr.Summary())
	}
}

// TestByzantineCanaryOverBudgetDetected is the auditor canary: raise the
// Byzantine count ABOVE the f budget (f+1 = 2 colluding replicas on the
// PBFT baseline, whose votes are forgeable channel-authenticated hashes)
// and the resulting honest-replica divergence MUST be reported. If this
// test fails, the green Byzantine sweep above proves nothing.
func TestByzantineCanaryOverBudgetDetected(t *testing.T) {
	rep, err := Run(Scenario{
		Name: "byz-canary-over-budget",
		Opts: cluster.Options{
			Protocol: cluster.ProtoPBFT, F: 1,
			Clients: 2, Seed: 99,
			ClientTimeout: time.Second,
			TunePBFT: func(pc *pbft.Config) {
				pc.Batch = 1
				pc.ViewChangeTimeout = time.Second
			},
		},
		Arm: func(cl *cluster.Cluster) {
			if err := cl.InstallColludingEquivocators(1, 2); err != nil {
				t.Fatalf("arming colluders: %v", err)
			}
		},
		OpsPerClient: 5,
		Horizon:      5 * time.Minute,
		Settle:       10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Audit.OK() {
		t.Fatal("auditor missed the divergence caused by f+1 colluding Byzantine replicas")
	}
	foundDivergence := false
	for _, d := range rep.Audit.Divergences {
		if strings.Contains(d, "divergence") {
			foundDivergence = true
		}
	}
	if !foundDivergence {
		t.Fatalf("no log/state divergence among honest replicas reported; got: %v", rep.Audit.Divergences)
	}
	if rep.Audit.ByzantineExcluded != 2 {
		t.Errorf("ByzantineExcluded = %d, want 2", rep.Audit.ByzantineExcluded)
	}
}
