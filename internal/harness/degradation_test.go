package harness

import (
	"testing"

	"sbft/internal/cluster"
)

// TestDegradationBoundsUnderAdaptiveAttacks is the quantified-degradation
// acceptance gate: under every adaptive role-targeting attack, at both
// n=4 and the paper-scale n=9 (f=2, c=1, scaled crypto), the protocol
// must stay SAFE and LIVE while degrading by a bounded factor — and the
// fallback counters must prove each attack actually engaged, so a "pass"
// can never come from an attack that silently failed to bite. The sim is
// deterministic, so the bounds are stable; they carry ~2× headroom over
// the measured slowdowns (worst observed: 33× for the collector-crash
// attack at n=4).
func TestDegradationBoundsUnderAdaptiveAttacks(t *testing.T) {
	maxSlowdown := map[string]float64{
		cluster.FaultAttackCollectors.String(): 64,
		cluster.FaultAttackFastPath.String():   16,
		cluster.FaultAttackPartition.String():  24,
	}
	for _, fc := range [][2]int{{1, 0}, {2, 1}} {
		rep, err := MeasureDegradation(fc[0], fc[1], 7, 10)
		if err != nil {
			t.Fatalf("f=%d c=%d: %v", fc[0], fc[1], err)
		}
		t.Logf("%s", rep)
		healthy := rep.Point("healthy")
		if healthy == nil || !healthy.LivenessOK() || !healthy.SafetyOK {
			t.Fatalf("n=%d: unhealthy baseline: %+v", rep.N, healthy)
		}
		if healthy.Metrics.FastCommits == 0 {
			t.Errorf("n=%d healthy: no fast-path commits", rep.N)
		}
		for _, kind := range degradationAttacks {
			name := kind.String()
			p := rep.Point(name)
			if p == nil {
				t.Fatalf("n=%d: no point for %s", rep.N, name)
			}
			if !p.SafetyOK {
				t.Errorf("n=%d %s: SAFETY violated", rep.N, name)
			}
			if !p.LivenessOK() {
				t.Errorf("n=%d %s: liveness lost: %d of %d ops", rep.N, name, p.Completed, p.Expected)
			}
			// Engagement: the attack must observably hit the fast path.
			if p.Metrics.SlowCommits == 0 {
				t.Errorf("n=%d %s: no slow-path commits — attack never engaged", rep.N, name)
			}
			if p.Metrics.FastPathDowngrades == 0 || p.Metrics.CollectorTimeouts == 0 {
				t.Errorf("n=%d %s: downgrades=%d timeouts=%d — fallback not proven",
					rep.N, name, p.Metrics.FastPathDowngrades, p.Metrics.CollectorTimeouts)
			}
			sd := rep.Slowdown(name)
			if sd <= 1 {
				t.Errorf("n=%d %s: slowdown %.2f ≤ 1 — a role-targeting attack that costs nothing is a measurement bug", rep.N, name, sd)
			}
			if sd > maxSlowdown[name] {
				t.Errorf("n=%d %s: slowdown %.2f exceeds the %.0f× graceful-degradation bound", rep.N, name, sd, maxSlowdown[name])
			}
		}
		// The forced-linear attack specifically must also trip the
		// execution-ack fallback machinery at least once.
		if p := rep.Point(cluster.FaultAttackCollectors.String()); p.Metrics.ExecFallbacks == 0 {
			t.Errorf("n=%d: collector attack produced no exec-fallback replies", rep.N)
		}
	}
}
