package harness

import (
	"fmt"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/evm"
)

// This file adds the EVM smart-contract ledger to the chaos generators:
// the same seeded fault schedules DefaultGen and ByzantineGen produce for
// the key-value app also run against the paper's second workload (§IX), a
// token contract on the EVM ledger. The genesis is deterministic across
// replicas, and the workload payloads are globally unique so the safety
// auditor's re-execution check stays sound.

// evmDeployer funds and deploys the token contract at genesis.
var evmDeployer = evm.AddressFromBytes([]byte{0xD0})

// EVMTokenAddress is the deterministic address of the genesis token
// contract every chaos scenario uses.
var EVMTokenAddress = evm.ContractAddress(evmDeployer, 0)

// evmSenderCount bounds the pre-funded sender accounts (chaos scenarios
// run at most a handful of clients).
const evmSenderCount = 16

// evmSender is the funded account a chaos client signs from.
func evmSender(client int) evm.Address {
	return evm.AddressFromBytes([]byte{0xA0, byte(client % evmSenderCount)})
}

// EVMGenesis seeds every replica's ledger identically before the protocol
// starts: balances for the deployer and the chaos senders, and the token
// contract at EVMTokenAddress. It panics on failure — genesis is
// deterministic code, so a failure is a bug, not a scenario.
func EVMGenesis(app *apps.EVMApp) {
	app.Ledger.Mint(evmDeployer, 1_000_000_000)
	addr, err := app.Ledger.GenesisCreate(evmDeployer, evm.TokenDeploy(), 10_000_000)
	if err != nil {
		panic(fmt.Sprintf("harness: EVM genesis deploy: %v", err))
	}
	if addr != EVMTokenAddress {
		panic(fmt.Sprintf("harness: EVM genesis address %v, want %v", addr, EVMTokenAddress))
	}
	for i := 0; i < evmSenderCount; i++ {
		app.Ledger.Mint(evmSender(i), 1_000_000)
	}
}

// UniqueEVMGen produces the i-th operation of a chaos client: a token
// mint whose (recipient, amount) pair is unique per (client, i), so no
// two operations in a run share payload bytes (the auditor's no-
// re-execution invariant keys on payload hashes).
func UniqueEVMGen(client, i int) []byte {
	recipient := evm.AddressFromBytes([]byte{0xB0, byte(client), byte(i >> 8), byte(i)})
	return evm.Tx{
		Kind:     evm.TxCall,
		From:     evmSender(client),
		To:       EVMTokenAddress,
		GasLimit: 1_000_000,
		Data:     evm.TokenCalldata(evm.TokenMint, recipient, uint64(client)*1000+uint64(i)+1),
	}.Encode()
}

// evmize switches a generated scenario's application to the EVM ledger
// (PBFT and all SBFT variants support it; the schedule is untouched).
// Idempotent: the standard generators self-evmize some seeds, and the
// dedicated EVM generators wrap them.
func evmize(s Scenario) Scenario {
	if s.Opts.App == cluster.AppEVM {
		return s
	}
	s.Name += "-evm"
	s.Opts.App = cluster.AppEVM
	s.Opts.GenesisEVM = EVMGenesis
	s.Gen = UniqueEVMGen
	return s
}

// EVMGen is DefaultGen against the EVM ledger for every seed — the
// dedicated generator behind the CI slice (`sbft-chaos -gen evm`).
func EVMGen(seed int64) Scenario {
	return evmize(DefaultGen(seed))
}

// EVMByzantineGen is ByzantineGen against the EVM ledger for every seed.
func EVMByzantineGen(seed int64) Scenario {
	return evmize(ByzantineGen(seed))
}
