package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

// This file is the large-state recovery generator: scenarios that make
// verified state transfer the dominant cost — a multi-MiB replicated
// state, a victim replica crashed across several checkpoint intervals
// (its catch-up MUST go through chunked state transfer; the slots are
// garbage-collected below the stable point), lossy and reordering links
// while the transfer runs, and on most seeds a Byzantine snapshot server
// (chunk tamperer or stale-meta racer). The per-scenario Check asserts
// what the generic audit cannot: the victim actually caught up through
// state transfer, and blame landed only on faulty servers.

// recoveryValSize is the value size of the large-state workload: with
// ~100 operations the application snapshot alone spans several hundred
// 8 KiB chunks (multi-MiB state).
const recoveryValSize = 32 * 1024

// RecoveryValue builds the deterministic large value for operation i of
// a client (exported for the benchmark that reuses the workload shape).
func RecoveryValue(client, i int) []byte {
	return bytes.Repeat([]byte{byte(client), byte(i), 0x5a}, recoveryValSize/3)
}

// RecoveryGen generates one large-state recovery scenario per seed. The
// victim replica (4) crashes twice: the first episode seeds the durable
// history (and teaches a stale-meta adversary an old certified meta),
// the second forces a deep catch-up over impaired links. Variants cycle
// with the seed: honest servers, a FaultByzSnapshot chunk-and-delta
// tamperer, a FaultByzStaleMeta racer serving old-but-valid metas, or a
// multi-interval stall — the victim's inbound fully drops mid-transfer
// while the cluster advances ≥2 stable checkpoints, and the Check pins
// that the superseded transfer completed with ZERO restarts (the carried
// ROADMAP item 3 bug).
func RecoveryGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x51_7c_c1_b7_27_22_0a_95 + 0x1234_5678))
	const (
		victim    = 4
		byzServer = 2
	)
	opts := cluster.Options{
		Protocol:      cluster.ProtoSBFT,
		F:             1,
		Clients:       2,
		Seed:          seed,
		ClientTimeout: time.Second,
		Persist:       true,
		CryptoPool:    1, // restarts must re-install the pool sink
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = time.Second
			c.SnapshotRetain = 8 // deep chain: mid-transfer bases stay servable
		},
	}

	variant := ((seed % 4) + 4) % 4 // Euclidean: negative seeds must not panic the index below
	var sched cluster.Schedule
	switch variant {
	case 1:
		sched = append(sched, cluster.Fault{At: 50 * time.Millisecond, Kind: cluster.FaultByzSnapshot, Node: byzServer})
	case 2:
		sched = append(sched, cluster.Fault{At: 50 * time.Millisecond, Kind: cluster.FaultByzStaleMeta, Node: byzServer})
	}

	// Episode 1: the victim misses the opening stretch of history and
	// catches up once — seeding its durable log and, for the stale-meta
	// variant, teaching the adversary an early certified meta.
	ep1 := 250*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
	sched = append(sched,
		cluster.Fault{At: ep1, Kind: cluster.FaultCrash, Node: victim},
		cluster.Fault{At: ep1 + 1500*time.Millisecond, Kind: cluster.FaultRecover, Node: victim})

	// Episode 2: a deeper outage, healed into an impaired network — the
	// transfer itself runs under drops and reordering, exactly where the
	// per-chunk retry and per-server steering earn their keep.
	ep2 := ep1 + 3*time.Second + time.Duration(rng.Int63n(int64(time.Second)))
	rec2 := ep2 + 1500*time.Millisecond
	sched = append(sched,
		cluster.Fault{At: ep2, Kind: cluster.FaultCrash, Node: victim},
		cluster.Fault{At: rec2, Kind: cluster.FaultRecover, Node: victim},
		// Inbound loss at the recovering victim: chunk replies vanish.
		cluster.Fault{At: rec2, Kind: cluster.FaultLink, From: 0, To: victim,
			Link: sim.LinkFault{Drop: 0.1 + 0.2*rng.Float64()}},
		// Network-wide duplication and reordering stress idempotence of
		// the windowed accounting.
		cluster.Fault{At: rec2, Kind: cluster.FaultLink, From: 0, To: 0,
			Link: sim.LinkFault{
				Duplicate:     0.2 + 0.3*rng.Float64(),
				ReorderJitter: 5*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond))),
			}},
		cluster.Fault{At: rec2 + 6*time.Second, Kind: cluster.FaultLinkClear})

	if variant == 3 {
		// Multi-interval stall: shortly into the transfer the victim's
		// inbound drops EVERYTHING for a stretch during which the live
		// replicas keep committing — the stable frontier crosses ≥2
		// checkpoint intervals while the fetch hangs mid-flight. The
		// FaultLinkClear above lifts the stall together with the ambient
		// impairment; the superseded transfer must finish by retargeting
		// through deltas, never by restarting.
		stall := rec2 + 300*time.Millisecond
		sched = append(sched,
			cluster.Fault{At: stall, Kind: cluster.FaultLink, From: 0, To: victim,
				Link: sim.LinkFault{Drop: 1}},
			cluster.Fault{At: stall + 2*time.Second, Kind: cluster.FaultLink, From: 0, To: victim,
				Link: sim.LinkFault{Drop: 0.1}})
	}

	name := fmt.Sprintf("recovery-%s", [...]string{"honest", "tamper", "stalemeta", "multiinterval"}[variant])
	return Scenario{
		Name:     name,
		Opts:     opts,
		Schedule: sched,
		Gen: func(client, i int) []byte {
			return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), RecoveryValue(client, i))
		},
		OpsPerClient:       48,
		Horizon:            30 * time.Minute, // virtual time; generous on purpose
		Settle:             2 * time.Minute,  // the transfer must finish before the audit
		ExpectAllCommitted: true,
		Check: func(cl *cluster.Cluster) string {
			lag := cl.Replicas[victim]
			var honestStable uint64
			for id := 1; id <= cl.N; id++ {
				if id == victim || cl.IsByzantine(id) {
					continue
				}
				if ls := cl.Replicas[id].LastStable(); ls > honestStable {
					honestStable = ls
				}
			}
			if lag.LastExecuted() < honestStable {
				return fmt.Sprintf("recovery incomplete: victim le=%d behind honest stable=%d (fetches=%d chunks=%d retries=%d)",
					lag.LastExecuted(), honestStable, lag.Metrics.StateFetches,
					lag.Metrics.SnapshotChunks, lag.Metrics.SnapshotChunkRetries)
			}
			if lag.Metrics.StateFetches == 0 {
				return "no state transfer exercised despite the deep gap"
			}
			if lag.Metrics.SnapshotChunks == 0 {
				return "no snapshot chunks fetched"
			}
			for id, n := range lag.SnapshotBlameCounts() {
				if n > 0 && !cl.IsByzantine(id) {
					return fmt.Sprintf("honest server %d blamed %d times", id, n)
				}
			}
			if variant == 3 {
				if lag.Metrics.SnapshotTransferRestarts != 0 {
					return fmt.Sprintf("transfer restarted %d times across the multi-interval stall",
						lag.Metrics.SnapshotTransferRestarts)
				}
				if lag.Metrics.SnapshotDeltaTransfers == 0 {
					return "no delta supersession recorded: the stalled transfer never spanned an interval boundary"
				}
			}
			return ""
		},
	}
}
