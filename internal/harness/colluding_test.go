package harness

import (
	"strings"
	"testing"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
)

// TestValidateBudgetColludingSets pins the budget arithmetic for the
// collusion and adaptive-attack kinds: a colluding set is one adversary
// admitted atomically, attack kinds hold anonymous at-once slots.
func TestValidateBudgetColludingSets(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name    string
		sched   cluster.Schedule
		n, f, c int
		ok      bool
	}{
		{
			name: "set of f members fits",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "set of f+1 members rejected at the installing step",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3, 5}},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
		{
			name: "repeated collusion over the same set is idempotent",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultByzColludeCkpt, Node: 1, Peers: []int{3}},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "second set sharing no members breaks the sticky f budget",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultByzRestore, Node: 1},
				{At: ms, Kind: cluster.FaultByzRestore, Node: 3},
				{At: 2 * ms, Kind: cluster.FaultByzColludeEquivocate, Node: 5, Peers: []int{7}},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
		{
			name: "benign crash of a bystander fits beside the set",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "two bystander crashes beside the set exceed f+c",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
				{At: 2 * ms, Kind: cluster.FaultCrash, Node: 7},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
		{
			name: "crash overlapping a member consumes no extra slot",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultCrash, Node: 3},
				{At: 2 * ms, Kind: cluster.FaultCrash, Node: 5},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "collector attack holds the full f+c budget alone",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackCollectors},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "collector attack plus any crash is over budget",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackCollectors},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
		{
			name: "fast-path attack (c+1 slots) leaves room for one crash",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackFastPath},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "fast-path attack plus two crashes is over budget",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackFastPath},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
				{At: 2 * ms, Kind: cluster.FaultCrash, Node: 7},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
		{
			name: "attack slots release on stop",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackCollectors},
				{At: ms, Kind: cluster.FaultAttackStop},
				{At: 2 * ms, Kind: cluster.FaultCrash, Node: 5},
				{At: 3 * ms, Kind: cluster.FaultCrash, Node: 7},
				{At: 4 * ms, Kind: cluster.FaultCrash, Node: 8},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "partition attack holds one slot",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultAttackPartition},
				{At: ms, Kind: cluster.FaultCrash, Node: 5},
				{At: 2 * ms, Kind: cluster.FaultCrash, Node: 7},
			},
			n: 9, f: 2, c: 1, ok: true,
		},
		{
			name: "attack concurrent with an armed colluding set is over budget",
			sched: cluster.Schedule{
				{At: 0, Kind: cluster.FaultByzColludeEquivocate, Node: 1, Peers: []int{3}},
				{At: ms, Kind: cluster.FaultAttackFastPath},
			},
			n: 9, f: 2, c: 1, ok: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateBudget(tc.sched, tc.n, tc.f, tc.c)
			if tc.ok && err != nil {
				t.Fatalf("schedule rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("over-budget schedule accepted")
			}
		})
	}
}

// TestColludingGenShape pins the generator's fixed frame: paper scale,
// scaled crypto, a two-member set including the view-0 primary, and a
// schedule its own validator accepts.
func TestColludingGenShape(t *testing.T) {
	kindsSeen := map[string]bool{}
	for seed := int64(1); seed <= 9; seed++ {
		s := ColludingGen(seed)
		if s.Opts.F != 2 || s.Opts.C != 1 || s.Opts.Protocol != cluster.ProtoSBFT {
			t.Fatalf("seed %d: %s f=%d c=%d, want paper-scale SBFT f=2 c=1", seed, s.Opts.Protocol, s.Opts.F, s.Opts.C)
		}
		if s.Opts.Costs == nil {
			t.Errorf("seed %d: not under the scaled cost model", seed)
		}
		kindsSeen[s.Name] = true
		var sawCollude, sawRestore, sawAttack, sawStop bool
		for _, fl := range s.Schedule {
			switch fl.Kind {
			case cluster.FaultByzColludeEquivocate, cluster.FaultByzColludeCkpt, cluster.FaultByzColludeSnapshot:
				sawCollude = true
				if fl.Node != 1 {
					t.Errorf("seed %d: member[0] = %d, want the view-0 primary", seed, fl.Node)
				}
				if len(fl.Peers) != 1 || fl.Peers[0] < 2 || fl.Peers[0] > 9 {
					t.Errorf("seed %d: peers %v, want one replica in [2,9]", seed, fl.Peers)
				}
			case cluster.FaultByzRestore:
				sawRestore = true
			case cluster.FaultAttackCollectors, cluster.FaultAttackFastPath, cluster.FaultAttackPartition:
				sawAttack = true
			case cluster.FaultAttackStop:
				sawStop = true
			}
		}
		if !sawCollude || !sawRestore || !sawAttack || !sawStop {
			t.Fatalf("seed %d: schedule misses a phase (collude=%v restore=%v attack=%v stop=%v)",
				seed, sawCollude, sawRestore, sawAttack, sawStop)
		}
	}
	// Nine consecutive seeds cover all 3 collusion kinds × 3 attack kinds.
	if len(kindsSeen) != 9 {
		t.Errorf("9 seeds produced %d distinct kind pairings, want 9: %v", len(kindsSeen), kindsSeen)
	}
}

// TestColludingChaosSweep is the acceptance gate for the collusion
// subsystem: ≥ 200 paper-scale seeds arming an at-budget colluding pair
// (always including the view-0 primary) followed by an adaptive
// role-targeting attack window — zero safety divergences, zero liveness
// failures.
func TestColludingChaosSweep(t *testing.T) {
	const runs = 200
	cr := RunChaos(SeedRange(1, runs), ColludingGen)
	if cr.Runs != runs {
		t.Fatalf("ran %d scenarios, want %d", cr.Runs, runs)
	}
	if !cr.OK() {
		for seed, err := range cr.Errors {
			t.Errorf("seed %d errored: %v", seed, err)
		}
		for _, rep := range cr.Failures {
			t.Errorf("%s", rep.Summary())
			for _, f := range rep.Faults {
				t.Logf("  fault: %s", f)
			}
		}
		t.Fatalf("%s", cr.Summary())
	}
}

// TestColludingCanaryOverBudgetDetected is the auditor canary for the
// key-share colluder: at m = f+1 members the threshold arithmetic flips —
// an even honest split hands BOTH equivocation variants a jointly-signed
// slow quorum and honest replicas commit conflicting blocks. The audit
// MUST report the divergence; if this test fails, the green colluding
// sweep proves nothing.
func TestColludingCanaryOverBudgetDetected(t *testing.T) {
	rep, err := Run(Scenario{
		Name: "collude-canary-over-budget",
		Opts: cluster.Options{
			Protocol: cluster.ProtoSBFT, F: 1, C: 0,
			Clients: 2, Seed: 99,
			ClientTimeout: time.Second,
			Tune: func(cc *core.Config) {
				cc.Batch = 1
				cc.FastPathTimeout = 50 * time.Millisecond
				cc.ViewChangeTimeout = time.Second
			},
		},
		Arm: func(cl *cluster.Cluster) {
			// n=4, QuorumSlow=3: members {1,2} own two shares per variant
			// and need ONE honest share each — honest replicas 3 and 4
			// split evenly, certifying both sides.
			if err := cl.InstallColluders(cluster.FaultByzColludeEquivocate, []int{1, 2}); err != nil {
				t.Fatalf("arming colluders: %v", err)
			}
		},
		OpsPerClient: 5,
		Horizon:      5 * time.Minute,
		Settle:       10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Audit.OK() {
		t.Fatal("auditor missed the divergence caused by f+1 colluding key-share members")
	}
	foundDivergence := false
	for _, d := range rep.Audit.Divergences {
		if strings.Contains(d, "divergence") {
			foundDivergence = true
		}
	}
	if !foundDivergence {
		t.Fatalf("no log/state divergence among honest replicas reported; got: %v", rep.Audit.Divergences)
	}
	if rep.Audit.ByzantineExcluded != 2 {
		t.Errorf("ByzantineExcluded = %d, want 2", rep.Audit.ByzantineExcluded)
	}
}
