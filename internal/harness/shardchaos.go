package harness

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/shard"
)

// Sharded chaos: randomized multi-group runs mixing single-shard
// operations with cross-shard transactions under faulty coordinators
// (crash, equivocation, dropped certificates) and in-group replica
// crashes, followed by a recovery sweep and a cross-shard atomicity
// audit. The per-group safety audit (identical execution across honest
// replicas) still applies — a sharded deployment is k ordinary SBFT
// groups underneath.

// ShardScenario describes one sharded chaos run.
type ShardScenario struct {
	Name string
	// Opts configures the sharded deployment (the harness overlays
	// WrapApp with its execution recorders).
	Opts shard.Options
	// TxsPerLane is how many cross-shard transactions each lane drives;
	// single-shard puts interleave between them.
	TxsPerLane int
	// Modes assigns coordinator behavior per transaction index (cycled).
	// Empty means all honest.
	Modes []shard.CoordMode
	// Contend, when set, makes each lane's transaction 1 write one SHARED
	// contested key, forcing lock conflicts and real aborts.
	Contend bool
	// GroupFaults, when set, crashes one backup per group mid-run and
	// heals it (inside the per-group f = 1 budget).
	GroupFaults bool
	// Budget bounds the whole drive phase in shared virtual time.
	Budget time.Duration
	// Settle runs the deployment beyond the workload and recovery sweep.
	Settle time.Duration
}

// txRecord tracks one driven transaction for the audit.
type txRecord struct {
	tx   shard.Tx
	mode shard.CoordMode
	keys map[int][]string // shard → written keys
	// contested marks transactions writing the shared contended key: a
	// LATER committed transaction may overwrite it, so the audit cannot
	// demand the value still matches this transaction.
	contested bool
	outcome   shard.TxOutcome
	settled   bool
}

// ShardReport is the outcome of one sharded chaos run.
type ShardReport struct {
	Scenario  string
	Seed      int64
	Shards    int
	Txs       int
	Committed int
	Aborted   int
	Recovered int
	SingleOps int
	// Violations lists cross-shard atomicity failures.
	Violations []string
	// GroupAudits holds the per-group replica-agreement audits.
	GroupAudits []*Audit
	Metrics     core.Metrics
}

// Failed reports whether the run violated cross-shard atomicity or any
// group's internal safety audit.
func (r *ShardReport) Failed() bool {
	if len(r.Violations) > 0 {
		return true
	}
	for _, a := range r.GroupAudits {
		if a != nil && !a.OK() {
			return true
		}
	}
	return false
}

// Summary renders a one-line outcome.
func (r *ShardReport) Summary() string {
	status := "ok"
	if r.Failed() {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s seed=%d %s: k=%d, %d txs (%d committed, %d aborted, %d recovered), %d single ops",
		r.Scenario, r.Seed, status, r.Shards, r.Txs, r.Committed, r.Aborted, r.Recovered, r.SingleOps)
	for _, v := range r.Violations {
		s += "; " + v
	}
	for g, a := range r.GroupAudits {
		if a != nil {
			for _, d := range a.Divergences {
				s += fmt.Sprintf("; group %d: %s", g, d)
			}
		}
	}
	return s
}

// shardKeyOn deterministically finds a key with the given prefix routing
// to shard g.
func shardKeyOn(prefix string, g, k int) string {
	for salt := 0; ; salt++ {
		key := fmt.Sprintf("%s.%d", prefix, salt)
		if shard.Route(key, k) == g {
			return key
		}
	}
}

// laneDriver walks one lane through its job list.
type laneDriver struct {
	jobs []func(next func())
	idx  int
	done bool
}

func (d *laneDriver) next() {
	if d.idx >= len(d.jobs) {
		d.done = true
		return
	}
	job := d.jobs[d.idx]
	d.idx++
	job(d.next)
}

// RunShardScenario executes one sharded chaos run end to end: build the
// deployment with recording applications, apply in-group faults, drive
// every lane's mix of single-shard puts and cross-shard transactions,
// recover every transaction left undecided, settle, and audit.
func RunShardScenario(s ShardScenario) (*ShardReport, error) {
	k := s.Opts.Shards
	recorders := make([]map[int]*Recorder, k)
	for g := range recorders {
		recorders[g] = make(map[int]*Recorder)
	}
	opts := s.Opts
	userWrap := opts.WrapApp
	opts.WrapApp = func(g, id int, app core.Application) core.Application {
		if userWrap != nil {
			app = userWrap(g, id, app)
		}
		rec := NewRecorder(app)
		recorders[g][id] = rec
		return rec
	}
	sc, err := shard.New(opts)
	if err != nil {
		return nil, fmt.Errorf("harness: building sharded cluster: %w", err)
	}
	defer sc.Close()

	report := &ShardReport{Scenario: s.Name, Seed: s.Opts.Seed, Shards: k}

	// In-group faults: crash the highest-id backup of every group, heal
	// it mid-run (each group tolerates f = 1).
	if s.GroupFaults {
		for _, cl := range sc.Topo.Groups {
			n := cl.N
			cl.Apply(cluster.Schedule{
				{At: 200 * time.Millisecond, Kind: cluster.FaultCrash, Node: n},
				{At: 1500 * time.Millisecond, Kind: cluster.FaultRecover, Node: n},
			})
		}
	}

	// Per-group ack logs for the per-group safety audits.
	acks := make([][]Ack, k)
	record := func(g int, res core.Result, clientID int) {
		acks[g] = append(acks[g], Ack{
			Client:    clientID,
			Timestamp: res.Timestamp,
			Seq:       res.Seq,
			Op:        res.Op,
			Val:       res.Val,
		})
	}

	var txs []*txRecord
	var pendingRecovery []*txRecord
	drivers := make([]*laneDriver, s.Opts.Lanes)
	for lane := 0; lane < s.Opts.Lanes; lane++ {
		lane := lane
		d := &laneDriver{}
		for i := 0; i < s.TxsPerLane; i++ {
			i := i
			// Interleave a single-shard put before each transaction.
			g := (lane + i) % k
			putKey := shardKeyOn(fmt.Sprintf("solo/%d/%d/%d", s.Opts.Seed, lane, i), g, k)
			putOp := kvstore.Put(putKey, []byte(fmt.Sprintf("s%d.%d", lane, i)))
			d.jobs = append(d.jobs, func(next func()) {
				if err := sc.Submit(g, lane, putOp, func(res core.Result) {
					record(g, res, sc.Topo.Groups[g].Clients[lane].ID())
					report.SingleOps++
					next()
				}); err != nil {
					next()
				}
			})

			// Cross-shard transaction: one write per shard (unique keys),
			// optionally contending on a shared key for transaction 1.
			txid := fmt.Sprintf("tx/%d/%d/%d", s.Opts.Seed, lane, i)
			rec := &txRecord{keys: make(map[int][]string)}
			var writes [][]byte
			for g := 0; g < k; g++ {
				key := shardKeyOn(fmt.Sprintf("txk/%d/%d/%d/%d", s.Opts.Seed, lane, i, g), g, k)
				if s.Contend && i == 1 {
					// Same contested key for every lane: real lock conflicts.
					key = shardKeyOn(fmt.Sprintf("contend/%d", s.Opts.Seed), g, k)
					rec.contested = true
				}
				rec.keys[g] = append(rec.keys[g], key)
				writes = append(writes, kvstore.Put(key, []byte(txid)))
			}
			rec.tx = shard.Tx{ID: txid, Writes: writes}
			if len(s.Modes) > 0 {
				rec.mode = s.Modes[i%len(s.Modes)]
			}
			txs = append(txs, rec)
			d.jobs = append(d.jobs, func(next func()) {
				co := &shard.Coordinator{SC: sc, Lane: lane, Mode: rec.mode}
				if err := co.Start(rec.tx, func(out shard.TxOutcome) {
					rec.outcome = out
					rec.settled = !out.Pending
					if out.Pending {
						pendingRecovery = append(pendingRecovery, rec)
					}
					next()
				}); err != nil {
					rec.outcome = shard.TxOutcome{Pending: true}
					pendingRecovery = append(pendingRecovery, rec)
					next()
				}
			})
		}
		drivers[lane] = d
	}

	// Kick every lane and advance the lockstep clock until all drain.
	for _, d := range drivers {
		d.next()
	}
	budget := s.Budget
	if budget <= 0 {
		budget = 5 * time.Minute
	}
	allDone := func() bool {
		for _, d := range drivers {
			if !d.done {
				return false
			}
		}
		return true
	}
	if !sc.Topo.RunUntil(allDone, budget) {
		report.Violations = append(report.Violations, "drive phase did not drain within budget")
	}

	// Recovery sweep: any party can finish an abandoned transaction.
	for _, rec := range pendingRecovery {
		co := &shard.Coordinator{SC: sc, Lane: 0, Mode: shard.CoordHonest}
		out, err := co.Recover(rec.tx)
		if err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("recovery of %s failed: %v", rec.tx.ID, err))
			continue
		}
		rec.outcome = out
		rec.settled = true
		report.Recovered++
	}

	settle := s.Settle
	if settle <= 0 {
		settle = 30 * time.Second
	}
	sc.Topo.Run(settle)

	report.Txs = len(txs)
	report.Violations = append(report.Violations, AuditShards(sc, txs)...)
	for _, rec := range txs {
		if rec.outcome.Committed {
			report.Committed++
		}
		if rec.outcome.Aborted {
			report.Aborted++
		}
	}
	// Prepares are idempotent by design — refetch and recovery resubmit
	// byte-identical prepare ops, so the per-group re-execution audit must
	// exempt exactly those hashes (and nothing else: commit/abort ops
	// embed fresh certificates, so they never repeat byte-for-byte).
	repeatable := make(map[[32]byte]bool)
	for _, rec := range txs {
		split, err := shard.SplitWrites(rec.tx.Writes, k)
		if err != nil {
			continue
		}
		parts := shard.Participants(split)
		for _, p := range parts {
			repeatable[sha256.Sum256(kvstore.TxPrepare(rec.tx.ID, parts, split[p]...))] = true
		}
	}
	for g, cl := range sc.Topo.Groups {
		report.GroupAudits = append(report.GroupAudits, AuditCluster(cl, recorders[g], acks[g], repeatable))
	}
	report.Metrics = sc.Metrics()
	return report, nil
}

// AuditShards checks cross-shard atomicity over the driven transactions:
//
//  1. AGREEMENT — no transaction is committed on one participant and
//     aborted on another (the equivocation target).
//  2. NO LIMBO — after the recovery sweep, no participant still holds
//     the transaction prepared.
//  3. ALL-OR-NOTHING EFFECTS — a committed transaction's writes are
//     visible on their owning shards; an aborted transaction's writes
//     (unique values) never surface.
//  4. NO LOCK LEAKS — no shard's frontier store holds any prepared-write
//     lock once everything settled.
func AuditShards(sc *shard.Cluster, txs []*txRecord) []string {
	var violations []string
	k := sc.Opts.Shards
	for _, rec := range txs {
		committed, aborted, prepared := 0, 0, 0
		for g := 0; g < k; g++ {
			if len(rec.keys[g]) == 0 {
				continue
			}
			switch sc.FrontierStore(g).TxState(rec.tx.ID) {
			case "committed":
				committed++
			case "aborted":
				aborted++
			case "prepared":
				prepared++
			}
		}
		if committed > 0 && aborted > 0 {
			violations = append(violations,
				fmt.Sprintf("atomicity: %s committed on %d shard(s) and aborted on %d", rec.tx.ID, committed, aborted))
		}
		if prepared > 0 {
			violations = append(violations,
				fmt.Sprintf("limbo: %s still prepared on %d shard(s) after recovery", rec.tx.ID, prepared))
		}
		for g, keys := range rec.keys {
			st := sc.FrontierStore(g)
			for _, key := range keys {
				v, found := st.Value(key)
				written := found && string(v) == rec.tx.ID
				if committed > 0 && aborted == 0 && !written && !rec.contested {
					violations = append(violations,
						fmt.Sprintf("effects: committed %s missing write %q on shard %d", rec.tx.ID, key, g))
				}
				if aborted > 0 && committed == 0 && written {
					violations = append(violations,
						fmt.Sprintf("effects: aborted %s applied write %q on shard %d", rec.tx.ID, key, g))
				}
			}
		}
	}
	for g := 0; g < k; g++ {
		if locks := sc.FrontierStore(g).LockedKeys(); len(locks) > 0 {
			violations = append(violations,
				fmt.Sprintf("locks: shard %d leaked %d lock(s): %v", g, len(locks), locks))
		}
	}
	return violations
}

// ShardGen generates a deterministic sharded chaos scenario from a seed:
// k cycles between 2 and 3, coordinator modes mix honest with crash,
// equivocation and dropped certificates, odd seeds contend on a shared
// key, and half the seeds crash-and-heal one backup per group.
func ShardGen(seed int64) ShardScenario {
	rng := rand.New(rand.NewSource(seed*0x9e3779b9 + 0x51d5))
	k := 2
	if seed%4 == 3 {
		k = 3
	}
	modePool := []shard.CoordMode{
		shard.CoordHonest,
		shard.CoordCrash,
		shard.CoordEquivocate,
		shard.CoordDropCert,
	}
	modes := make([]shard.CoordMode, 3)
	for i := range modes {
		modes[i] = modePool[rng.Intn(len(modePool))]
	}
	return ShardScenario{
		Name: fmt.Sprintf("shard-chaos-k%d", k),
		Opts: shard.Options{
			Shards:        k,
			F:             1,
			Lanes:         2,
			Seed:          seed,
			ClientTimeout: time.Second,
		},
		TxsPerLane:  3,
		Modes:       modes,
		Contend:     seed%2 == 1,
		GroupFaults: rng.Float64() < 0.5,
	}
}

// RunShardChaos sweeps ShardGen-style scenarios across seeds.
func RunShardChaos(seeds []int64, gen func(seed int64) ShardScenario, observe ...func(seed int64, rep *ShardReport, err error)) *ChaosReport {
	cr := &ChaosReport{Errors: make(map[int64]error)}
	for _, seed := range seeds {
		cr.Runs++
		rep, err := RunShardScenario(gen(seed))
		for _, ob := range observe {
			ob(seed, rep, err)
		}
		if err != nil {
			cr.Errors[seed] = err
			cr.note(seed, nil)
			continue
		}
		if rep.Failed() {
			cr.note(seed, nil)
		}
	}
	return cr
}
