package harness

import (
	"bytes"
	"fmt"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/sim"
)

// This file quantifies graceful degradation (ROADMAP item 4): the paper's
// §V-E dual-mode argument is that losing the fast path costs throughput,
// never correctness or liveness. MeasureDegradation runs the SAME seeded
// workload healthy and under each adaptive role-targeting attack, and
// reports per-condition throughput, latency and the fallback counters
// that prove the attack actually engaged — so tests and benchmarks can
// assert "the forced linear fallback costs ≤ X×, never loses liveness"
// instead of merely "nothing diverged".

// DegradationPoint is one measured condition: the healthy baseline or one
// adaptive attack held for the whole run.
type DegradationPoint struct {
	// Name is "healthy" or the attack kind's string form.
	Name string
	// Completed / Expected count client operations; liveness holds iff
	// they are equal.
	Completed, Expected uint64
	Throughput          float64 // ops per second of virtual time
	MeanLatency         time.Duration
	P95Latency          time.Duration
	// Metrics aggregates the cluster's replica counters; under a fast-path
	// attack FastPathDowngrades and CollectorTimeouts prove engagement.
	Metrics core.Metrics
	// SafetyOK reports whether all live replicas at equal execution
	// frontiers held identical app digests after the run.
	SafetyOK bool
}

// LivenessOK reports whether every expected client operation completed.
func (p *DegradationPoint) LivenessOK() bool { return p.Completed == p.Expected }

// DegradationReport holds the healthy baseline and the attack conditions
// of one MeasureDegradation sweep.
type DegradationReport struct {
	N      int
	Points []DegradationPoint
}

// Point returns the named condition, or nil.
func (r *DegradationReport) Point(name string) *DegradationPoint {
	for i := range r.Points {
		if r.Points[i].Name == name {
			return &r.Points[i]
		}
	}
	return nil
}

// Slowdown returns healthy throughput divided by the named condition's
// throughput (1.0 = no degradation; 0 if either is unmeasurable).
func (r *DegradationReport) Slowdown(name string) float64 {
	h, p := r.Point("healthy"), r.Point(name)
	if h == nil || p == nil || h.Throughput == 0 || p.Throughput == 0 {
		return 0
	}
	return h.Throughput / p.Throughput
}

// healthyCondition is the sentinel for the no-attack baseline run.
const healthyCondition = cluster.FaultKind(-1)

// degradationAttacks are the measured conditions beyond the baseline.
var degradationAttacks = [...]cluster.FaultKind{
	cluster.FaultAttackCollectors,
	cluster.FaultAttackFastPath,
	cluster.FaultAttackPartition,
}

// MeasureDegradation runs the seeded closed-loop workload once healthy
// and once under each adaptive attack on a fresh f/c-sized cluster.
// Paper-scale shapes (n ≥ 9) run under the scaled crypto cost model, as
// in the §IX experiments. The attack retargets at a cadence the recovery
// timeouts can absorb (see ColludingGen) and stays armed for the whole
// run; every condition reuses the same seed so the only variable is the
// adversary.
func MeasureDegradation(f, c int, seed int64, opsPerClient int) (*DegradationReport, error) {
	n := 3*f + 2*c + 1
	rep := &DegradationReport{N: n}
	conditions := make([]cluster.FaultKind, 0, 1+len(degradationAttacks))
	conditions = append(conditions, healthyCondition)
	conditions = append(conditions, degradationAttacks[:]...)
	for _, kind := range conditions {
		p, err := measureOne(f, c, seed, opsPerClient, kind)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *p)
	}
	return rep, nil
}

func measureOne(f, c int, seed int64, opsPerClient int, kind cluster.FaultKind) (*DegradationPoint, error) {
	opts := cluster.Options{
		Protocol: cluster.ProtoSBFT,
		F:        f, C: c,
		Clients:       2,
		Seed:          seed,
		ClientTimeout: 2 * time.Second,
		Tune: func(cc *core.Config) {
			cc.FastPathTimeout = 50 * time.Millisecond
			cc.ExecFallbackTimeout = 200 * time.Millisecond
			cc.ViewChangeTimeout = time.Second
		},
	}
	if 3*f+2*c+1 >= 9 {
		cm := cluster.DefaultCosts().ScaledCrypto(3)
		opts.Costs = &cm
	}
	cl, err := cluster.New(opts)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	name := "healthy"
	if kind != healthyCondition {
		name = kind.String()
		if err := cl.StartAdaptiveAttack(kind, 750*time.Millisecond); err != nil {
			return nil, err
		}
	}
	res := cl.RunClosedLoop(opsPerClient, UniqueKVGen, 30*time.Minute)
	p := &DegradationPoint{
		Name:        name,
		Completed:   res.Completed,
		Expected:    uint64(opsPerClient * opts.Clients),
		Throughput:  res.Throughput,
		MeanLatency: res.MeanLatency,
		P95Latency:  res.P95Latency,
		Metrics:     cl.Metrics(),
		SafetyOK:    degradationSafety(cl),
	}
	return p, nil
}

// degradationSafety is the test-independent form of the digest agreement
// check: every live replica that executed to the same frontier must hold
// the same app digest.
func degradationSafety(cl *cluster.Cluster) bool {
	byFrontier := make(map[uint64][]byte)
	for id := 1; id <= cl.N; id++ {
		if cl.Net.Crashed(sim.NodeID(id)) || cl.IsByzantine(id) {
			continue
		}
		le := cl.Replicas[id].LastExecuted()
		d := cl.Apps[id].Digest()
		if prev, ok := byFrontier[le]; ok && !bytes.Equal(prev, d) {
			return false
		}
		byFrontier[le] = d
	}
	return true
}

// String renders the report as a compact table for logs.
func (r *DegradationReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "degradation n=%d:", r.N)
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(&b, " [%s %d/%d %.1fops/s p95=%v]", p.Name, p.Completed, p.Expected, p.Throughput, p.P95Latency)
	}
	return b.String()
}
