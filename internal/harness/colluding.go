package harness

import (
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
)

// This file is the collusion-and-degradation scenario generator (ROADMAP
// item 4): every seed runs the paper-scale configuration f=2, c=1 (n = 9)
// under the scaled crypto cost model and arms the two adversary classes
// the independent-corrupter generator cannot express:
//
//   - a colluding key-share set of exactly f replicas — always including
//     replica 1, the view-0 primary, the strongest dealing position —
//     jointly signing partial quorums, checkpoint shares or snapshot
//     metas for one fault window;
//   - an adaptive role-targeting attack window AFTER the colluders are
//     restored (the collusion set holds f sticky slots; the attacker's
//     anonymous at-once slots need the full f+c budget to themselves).
//
// Both windows close before the settle phase so the audit measures a
// cluster that was attacked, not one still under attack. The generator
// validates its own schedule with ValidateBudget and panics on a
// violation: a schedule over budget is a generator bug, not a scenario.

// colludeKinds cycles the collusion flavor with the seed.
var colludeKinds = [...]cluster.FaultKind{
	cluster.FaultByzColludeEquivocate,
	cluster.FaultByzColludeCkpt,
	cluster.FaultByzColludeSnapshot,
}

// attackKinds cycles the adaptive attack flavor with the seed.
var attackKinds = [...]cluster.FaultKind{
	cluster.FaultAttackCollectors,
	cluster.FaultAttackFastPath,
	cluster.FaultAttackPartition,
}

// ColludingGen generates one paper-scale colluding-adversary scenario per
// seed. The colluding member set is {1, x} with x drawn per seed: exactly
// the f = 2 sticky budget, counted as one adversary by ValidateBudget.
func ColludingGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x5851f42d4c957f2d + 0x165667b19e3779f9))

	f, c := 2, 1 // n = 9, the §IX failure-experiment scale
	n := 3*f + 2*c + 1
	cm := cluster.DefaultCosts().ScaledCrypto(3)
	opts := cluster.Options{
		Protocol: cluster.ProtoSBFT,
		F:        f, C: c,
		Clients:       3,
		Seed:          seed,
		ClientTimeout: 2 * time.Second,
		Costs:         &cm,
		CryptoPool:    1, // forged-share blame goes through the sink's fallback
		Tune: func(cc *core.Config) {
			// A short fast timer keeps the 8× fast-path straggle well under
			// the view-change timeout: the attack forces the linear
			// fallback, not a view-change storm.
			cc.FastPathTimeout = 50 * time.Millisecond
			cc.ViewChangeTimeout = time.Second
		},
	}

	colludeKind := colludeKinds[int(uint64(seed)%uint64(len(colludeKinds)))]
	attackKind := attackKinds[int(uint64(seed/3)%uint64(len(attackKinds)))]
	members := []int{1, 2 + rng.Intn(n-1)} // {1, x}, x ∈ [2, n]

	colludeStart := 200*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
	colludeEnd := colludeStart + 500*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
	attackStart := colludeEnd + 200*time.Millisecond
	attackEnd := attackStart + 500*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))

	sched := cluster.Schedule{
		{At: colludeStart, Kind: colludeKind, Node: members[0], Peers: members[1:]},
	}
	for _, m := range members {
		sched = append(sched, cluster.Fault{At: colludeEnd, Kind: cluster.FaultByzRestore, Node: m})
	}
	// The adaptive attacker retargets at a cadence the recovery timeouts
	// can absorb: faster churn than gap repair and view changes can heal
	// is an outage, not degradation.
	sched = append(sched,
		cluster.Fault{At: attackStart, Kind: attackKind, Extra: 750 * time.Millisecond},
		cluster.Fault{At: attackEnd, Kind: cluster.FaultAttackStop},
	)

	if err := ValidateBudget(sched, n, f, c); err != nil {
		panic(fmt.Sprintf("harness: ColludingGen(%d) violated its budget: %v\nschedule:\n%v", seed, err, sched))
	}

	return Scenario{
		Name:               fmt.Sprintf("colluding-%s-%s", colludeKind, attackKind),
		Opts:               opts,
		Schedule:           sched,
		OpsPerClient:       4,
		Horizon:            30 * time.Minute, // virtual time; generous on purpose
		Settle:             30 * time.Second,
		ExpectAllCommitted: true,
	}
}
