package harness

import (
	"testing"

	"sbft/internal/cluster"
)

// TestChaosSweep is the acceptance gate: ≥ 200 seeded random fault
// schedules across all four protocol variants, zero safety divergences
// and zero liveness failures. It runs in -short mode too — each scenario
// is a small simulated deployment, so the sweep stays cheap.
func TestChaosSweep(t *testing.T) {
	const runs = 200
	cr := RunChaos(SeedRange(1, runs), DefaultGen)
	if cr.Runs != runs {
		t.Fatalf("ran %d scenarios, want %d", cr.Runs, runs)
	}
	if !cr.OK() {
		for seed, err := range cr.Errors {
			t.Errorf("seed %d errored: %v", seed, err)
		}
		for _, rep := range cr.Failures {
			t.Errorf("%s", rep.Summary())
			for _, f := range rep.Faults {
				t.Logf("  fault: %s", f)
			}
		}
		t.Fatalf("%s", cr.Summary())
	}
}

// TestChaosCoversAllVariants pins the generator's protocol cycling.
func TestChaosCoversAllVariants(t *testing.T) {
	seen := make(map[cluster.Protocol]bool)
	for seed := int64(1); seed <= 8; seed++ {
		seen[DefaultGen(seed).Opts.Protocol] = true
	}
	for _, p := range chaosVariants {
		if !seen[p] {
			t.Errorf("generator never produced %s", p)
		}
	}
}

// TestChaosReportsMinimalFailingSeed pins the minimal-seed bookkeeping
// with a generator that fails deterministically on certain seeds.
func TestChaosReportsMinimalFailingSeed(t *testing.T) {
	gen := func(seed int64) Scenario {
		s := DefaultGen(seed)
		if seed%3 == 0 {
			// Sabotage: demand completion but crash a replica forever and
			// give the workload no time at all.
			s.Schedule = cluster.Schedule{{At: 0, Kind: cluster.FaultCrash, Node: 1}}
			s.Horizon = 1
			s.OpsPerClient = 1
		}
		return s
	}
	cr := RunChaos([]int64{5, 6, 9, 10}, gen)
	if !cr.HasFailure {
		t.Fatal("sabotaged seeds did not fail")
	}
	if cr.MinFailingSeed != 6 {
		t.Fatalf("MinFailingSeed = %d, want 6", cr.MinFailingSeed)
	}
}
