package harness

import (
	"bytes"
	"strings"
	"testing"

	"sbft/internal/cluster"
)

// TestEVMChaosSlice is the EVM coverage gate: 50 seeded random fault
// schedules with the token ledger as the replicated application, audited
// for safety and liveness like the KV sweeps.
func TestEVMChaosSlice(t *testing.T) {
	const runs = 50
	cr := RunChaos(SeedRange(1, runs), EVMGen)
	if cr.Runs != runs {
		t.Fatalf("ran %d scenarios, want %d", cr.Runs, runs)
	}
	if !cr.OK() {
		for seed, err := range cr.Errors {
			t.Errorf("seed %d errored: %v", seed, err)
		}
		for _, rep := range cr.Failures {
			t.Errorf("%s", rep.Summary())
			for _, f := range rep.Faults {
				t.Logf("  fault: %s", f)
			}
		}
		t.Fatalf("%s", cr.Summary())
	}
}

// TestEVMByzantineScenario smokes one Byzantine schedule over the EVM
// ledger end to end (the full Byzantine sweep already includes EVM seeds;
// this pins the dedicated generator).
func TestEVMByzantineScenario(t *testing.T) {
	rep, err := Run(EVMByzantineGen(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("EVM Byzantine scenario failed: %s", rep.Summary())
	}
}

// TestGeneratorsIncludeEVMSeeds pins that the standard generators
// themselves cycle the EVM app in (every fifth seed), for both the benign
// and the Byzantine generator.
func TestGeneratorsIncludeEVMSeeds(t *testing.T) {
	for _, gen := range []struct {
		name string
		fn   ScenarioGen
	}{{"DefaultGen", DefaultGen}, {"ByzantineGen", ByzantineGen}} {
		sawEVM, sawKV := false, false
		for seed := int64(1); seed <= 10; seed++ {
			s := gen.fn(seed)
			if s.Opts.App == cluster.AppEVM {
				sawEVM = true
				if s.Opts.GenesisEVM == nil || s.Gen == nil {
					t.Errorf("%s(%d): EVM scenario missing genesis or op generator", gen.name, seed)
				}
				if !strings.HasSuffix(s.Name, "-evm") {
					t.Errorf("%s(%d): EVM scenario not labeled: %q", gen.name, seed, s.Name)
				}
			} else {
				sawKV = true
			}
		}
		if !sawEVM || !sawKV {
			t.Errorf("%s: app coverage evm=%v kv=%v over 10 seeds", gen.name, sawEVM, sawKV)
		}
	}
}

// TestUniqueEVMGenPayloadsAreUnique: the auditor's re-execution check
// keys on payload hashes, so the workload must never repeat bytes.
func TestUniqueEVMGenPayloadsAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for client := 0; client < 4; client++ {
		for i := 0; i < 50; i++ {
			op := UniqueEVMGen(client, i)
			if seen[string(op)] {
				t.Fatalf("duplicate payload for client %d op %d", client, i)
			}
			seen[string(op)] = true
		}
	}
	if bytes.Equal(UniqueEVMGen(0, 1), UniqueEVMGen(1, 0)) {
		t.Fatal("cross-client payload collision")
	}
}

// TestEVMizeIdempotent: dedicated EVM generators wrap generators that
// self-evmize some seeds; names must not stack "-evm" suffixes.
func TestEVMizeIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		if name := EVMGen(seed).Name; strings.Contains(name, "-evm-evm") {
			t.Fatalf("EVMGen(%d) double-evmized: %q", seed, name)
		}
	}
}
