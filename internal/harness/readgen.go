package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// ReadGen generates read-path chaos scenarios: an open-loop Poisson mix
// of certified single-replica reads and unique-key writes multiplexed
// over a client pool, against an SBFT cluster checkpointing frequently
// enough that the certified frontier chases the workload. Seeds rotate
// the adversary:
//
//   - benign: a crash/restart window while reads are in flight;
//   - forged: one replica runs FaultByzForgedProof for the whole run,
//     rewriting every ReadOK reply it sends into a forgery — tampered
//     chunk, corrupted proof, inflated sequence, or stale replay;
//   - laggard: one replica is partitioned away from the other replicas
//     (clients still reach it), so its certified frontier freezes and
//     reads aimed at it must come back ReadBehind and fail over.
//
// Every read is checked: clients only read keys they themselves wrote,
// so a verified read must find the exact written value (read-your-
// writes); forged proofs must be rejected CLIENT-SIDE — the sweep pins
// that property by requiring ReadProofFailures > 0 on forged seeds
// while the read audit and value checks stay clean (a forgery that
// survived to the ledger would fail those, post-hoc, which is exactly
// what must never be the only line of defense).
func ReadGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x51afd6ed5a5c3f + 0x6b79a3f1d0c2e5))

	f := 1
	n := 3*f + 1
	ckpt := uint64(4 + rng.Intn(5))
	opts := cluster.Options{
		Protocol:      cluster.ProtoSBFT,
		F:             f,
		Clients:       8 + rng.Intn(9), // 8..16 multiplexed slots
		Seed:          seed,
		ClientTimeout: time.Second,
		Persist:       true,
		CryptoPool:    1,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
			c.CheckpointInterval = ckpt
			c.Batch = 4
		},
	}

	variant := int(uint64(seed) % 3)
	node := 1 + rng.Intn(n)
	var sched cluster.Schedule
	name := "reads"
	switch variant {
	case 0:
		name += "-crash"
		at := 400*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond)))
		dur := 200*time.Millisecond + time.Duration(rng.Int63n(int64(400*time.Millisecond)))
		sched = append(sched,
			cluster.Fault{At: at, Kind: cluster.FaultCrash, Node: node},
			cluster.Fault{At: at + dur, Kind: cluster.FaultRestart, Node: node})
	case 1:
		name += "-forged"
		// Whole-run forger: installed before the first checkpoint, never
		// restored, so every certified read aimed at it meets a forgery.
		sched = append(sched,
			cluster.Fault{At: 50 * time.Millisecond, Kind: cluster.FaultByzForgedProof, Node: node})
	default:
		name += "-laggard"
		// Replica-only partition: clients stay connected to every group,
		// so reads keep reaching the frozen replica.
		at := 400*time.Millisecond + time.Duration(rng.Int63n(int64(400*time.Millisecond)))
		dur := 500*time.Millisecond + time.Duration(rng.Int63n(int64(600*time.Millisecond)))
		for id := 1; id <= n; id++ {
			g := 2
			if id == node {
				g = 1
			}
			sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultPartition, Node: id, Group: g})
		}
		sched = append(sched, cluster.Fault{At: at + dur, Kind: cluster.FaultHeal})
	}

	mix := readMix{
		seed:     seed*0x9e3779b97f4a7c + 0x2545f4914f6cdd1d,
		rate:     150 + float64(rng.Intn(250)), // 150..400 req/s
		readFrac: 0.5 + 0.2*rng.Float64(),
		warmup:   200 * time.Millisecond,
		window:   2 * time.Second,
		drain:    4 * time.Second,
	}
	var reads []ReadAck
	var mismatches []string

	return Scenario{
		Name:     name,
		Opts:     opts,
		Schedule: sched,
		Workload: func(cl *cluster.Cluster) (cluster.WorkloadResult, uint64, uint64) {
			return runReadMix(cl, mix, &reads, &mismatches)
		},
		Horizon:            30 * time.Second,
		Settle:             2 * time.Second,
		ExpectAllCommitted: true,
		Check: func(cl *cluster.Cluster) string {
			if divs := AuditReads(cl, reads); len(divs) > 0 {
				return strings.Join(divs, "; ")
			}
			if len(mismatches) > 0 {
				return strings.Join(mismatches, "; ")
			}
			if len(reads) == 0 {
				return "no reads completed"
			}
			m := cl.Metrics()
			if m.ReadsServed == 0 {
				return "no certified reads served (frontier never reached the workload)"
			}
			if variant == 1 {
				var rejected uint64
				for _, c := range cl.Clients {
					rejected += c.ReadProofFailures
				}
				if rejected == 0 {
					return "forged-proof replica ran all run yet no client rejected a reply"
				}
			}
			return ""
		},
	}
}

// readMix parameterizes one open-loop read/write run.
type readMix struct {
	seed     int64
	rate     float64 // Poisson arrivals per second of virtual time
	readFrac float64 // fraction of arrivals issued as certified reads
	warmup   time.Duration
	window   time.Duration // measurement interval
	drain    time.Duration
}

// runReadMix drives the cluster with an open-loop mixed workload. Each
// arrival claims an idle client slot and issues either a unique-key
// write or a certified read of a key THAT SLOT already wrote — own-key
// reads make the strongest check available: the client's freshness
// floor covers the write, so a verified read must find the exact value
// (a cross-client read may legitimately see a certified snapshot
// predating another client's write). Reads use salted Get payloads so
// ordered fallbacks stay unique under the auditor's no-re-execution
// invariant. After the drain the driver keeps running until every
// submitted operation completed (or a hard cap), so the returned
// liveness ledger is settled.
func runReadMix(cl *cluster.Cluster, mix readMix, ledger *[]ReadAck, mismatches *[]string) (cluster.WorkloadResult, uint64, uint64) {
	rng := rand.New(rand.NewSource(mix.seed))
	sched := cl.Sched

	start := sched.Now()
	measureFrom := start + mix.warmup
	measureTo := measureFrom + mix.window
	deadline := measureTo + mix.drain

	var (
		submitted, completed uint64
		measuredDone         uint64
		latencies            []time.Duration
		fastAcks, retries    uint64
	)
	free := make([]int, len(cl.Clients))
	for i := range free {
		free[i] = i
	}
	counts := make([]int, len(cl.Clients))
	measured := make([]bool, len(cl.Clients))
	pendingWrite := make([]string, len(cl.Clients))
	writtenKeys := make([][]string, len(cl.Clients))
	writtenVals := make([]map[string][]byte, len(cl.Clients))
	pendingVal := make([][]byte, len(cl.Clients))

	for ci, c := range cl.Clients {
		ci, c := ci, c
		c.ReadTimeout = 150 * time.Millisecond // fast rotation: 4 failovers + fallback fit the drain
		writtenVals[ci] = make(map[string][]byte)
		c.SetOnResult(func(r core.Result) {
			completed++
			if measured[ci] {
				measuredDone++
				latencies = append(latencies, r.Latency)
				if r.FastAck {
					fastAcks++
				}
				if r.Retried {
					retries++
				}
			}
			if k := pendingWrite[ci]; k != "" {
				writtenKeys[ci] = append(writtenKeys[ci], k)
				writtenVals[ci][k] = pendingVal[ci]
				pendingWrite[ci] = ""
			}
			if cl.OnResult != nil {
				cl.OnResult(c.ID(), r)
			}
			free = append(free, ci)
		})
		c.SetOnReadResult(func(rr core.ReadResult) {
			completed++
			if measured[ci] {
				measuredDone++
				latencies = append(latencies, rr.Latency)
			}
			*ledger = append(*ledger, ReadAck{Client: c.ID(), ReadResult: rr})
			// Read-your-writes: the slot read its own completed write.
			want, wrote := writtenVals[ci][rr.Key]
			switch {
			case !wrote:
				*mismatches = append(*mismatches,
					fmt.Sprintf("client %d read unplanned key %q", c.ID(), rr.Key))
			case !rr.Found:
				*mismatches = append(*mismatches,
					fmt.Sprintf("read-your-writes violation: client %d wrote %q, read found nothing (seq %d, ordered=%v)",
						c.ID(), rr.Key, rr.Seq, rr.Ordered))
			case string(rr.Val) != string(want):
				*mismatches = append(*mismatches,
					fmt.Sprintf("read value mismatch: client %d key %q wrote %q, read %q (seq %d, ordered=%v)",
						c.ID(), rr.Key, want, rr.Val, rr.Seq, rr.Ordered))
			}
			free = append(free, ci)
		})
	}

	salt := uint64(0)
	var arrive func()
	scheduleNext := func() {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / mix.rate)
		if sched.Now()+gap >= measureTo {
			return // arrivals stop at the window's end
		}
		sched.Schedule(gap, arrive)
	}
	arrive = func() {
		if len(free) > 0 {
			ci := free[len(free)-1]
			free = free[:len(free)-1]
			measured[ci] = sched.Now() >= measureFrom
			c := cl.Clients[ci]
			var err error
			if rng.Float64() < mix.readFrac && len(writtenKeys[ci]) > 0 {
				key := writtenKeys[ci][rng.Intn(len(writtenKeys[ci]))]
				salt++
				err = c.SubmitRead(kvstore.GetUnique(key, salt))
			} else {
				k := fmt.Sprintf("rg/c%d/k%d", c.ID(), counts[ci])
				v := []byte(fmt.Sprintf("v%d.%d", c.ID(), counts[ci]))
				counts[ci]++
				pendingWrite[ci], pendingVal[ci] = k, v
				err = c.Submit(kvstore.Put(k, v))
			}
			if err != nil {
				pendingWrite[ci] = ""
				free = append(free, ci)
			} else {
				submitted++
			}
		}
		scheduleNext()
	}
	if mix.rate > 0 && len(cl.Clients) > 0 {
		scheduleNext()
	}

	for sched.Now() < deadline {
		if sched.Run(deadline, 50_000) == 0 {
			break
		}
	}
	// Settle the ledger: in-flight stragglers (a read mid-rotation when the
	// drain ended) get a bounded grace period before counts are frozen.
	hardEnd := deadline + 10*time.Second
	for sched.Now() < hardEnd && completed < submitted {
		if sched.Run(hardEnd, 50_000) == 0 {
			break
		}
	}

	res := cluster.WorkloadResult{
		Completed:  completed,
		Duration:   mix.window,
		Throughput: float64(measuredDone) / mix.window.Seconds(),
		FastAcks:   fastAcks,
		Retries:    retries,
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / time.Duration(len(latencies))
		res.P50Latency = latencies[len(latencies)/2]
		p95 := int(float64(len(latencies))*0.95+0.5) - 1
		if p95 < 0 {
			p95 = 0
		}
		if p95 >= len(latencies) {
			p95 = len(latencies) - 1
		}
		res.P95Latency = latencies[p95]
	}
	return res, completed, submitted
}
