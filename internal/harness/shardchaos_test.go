package harness

import (
	"testing"

	"sbft/internal/shard"
)

// TestShardChaosSweep is the cross-shard acceptance gate: 24 seeded
// sharded scenarios mixing honest, crashing, equivocating and
// certificate-dropping coordinators across two- and three-shard
// topologies (with in-group backup crashes on half the seeds), each
// audited for cross-shard atomicity AND per-group replica agreement.
// CI re-runs the same sweep through `sbft-chaos -gen sharded`.
func TestShardChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded chaos sweep skipped in -short mode")
	}
	cr := RunShardChaos(SeedRange(1, 24), ShardGen, func(seed int64, rep *ShardReport, err error) {
		if err != nil {
			t.Errorf("seed %d errored: %v", seed, err)
			return
		}
		t.Logf("%s", rep.Summary())
		if rep.Txs == 0 {
			t.Errorf("seed %d drove no transactions", seed)
		}
	})
	if !cr.OK() {
		t.Fatalf("sharded chaos slice failed: %s", cr.Summary())
	}
}

// TestShardGenDeterministic pins reproducibility: a seed is a complete
// recipe for its scenario.
func TestShardGenDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a, b := ShardGen(seed), ShardGen(seed)
		if a.Name != b.Name || a.Opts.Shards != b.Opts.Shards ||
			a.Contend != b.Contend || a.GroupFaults != b.GroupFaults ||
			len(a.Modes) != len(b.Modes) {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, a, b)
		}
		for i := range a.Modes {
			if a.Modes[i] != b.Modes[i] {
				t.Fatalf("seed %d mode %d differs", seed, i)
			}
		}
	}
}

// TestShardGenCoversFaultyCoordinators pins that the generator exercises
// Byzantine coordinators and the three-shard topology within a CI-sized
// seed window.
func TestShardGenCoversFaultyCoordinators(t *testing.T) {
	modes := make(map[shard.CoordMode]bool)
	shards := make(map[int]bool)
	for seed := int64(1); seed <= 24; seed++ {
		s := ShardGen(seed)
		shards[s.Opts.Shards] = true
		for _, m := range s.Modes {
			modes[m] = true
		}
	}
	for _, m := range []shard.CoordMode{shard.CoordHonest, shard.CoordCrash, shard.CoordEquivocate, shard.CoordDropCert} {
		if !modes[m] {
			t.Fatalf("24-seed window never generated coordinator mode %d", m)
		}
	}
	if !shards[2] || !shards[3] {
		t.Fatalf("24-seed window missed a topology: got %v", shards)
	}
}
