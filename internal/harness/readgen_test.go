package harness

import (
	"strings"
	"testing"
)

// TestReadGenSlice runs a small slice of the reads chaos sweep in-tree
// (one seed per adversary variant); the CI gate runs the ≥40-seed sweep
// through sbft-chaos -gen reads.
func TestReadGenSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("read chaos slice is minutes of virtual time")
	}
	variants := make(map[string]bool)
	for seed := int64(0); seed < 3; seed++ {
		s := ReadGen(seed)
		variants[s.Name] = true
		rep, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d (%s): %s", seed, s.Name, rep.Summary())
		}
		if rep.Completed == 0 {
			t.Errorf("seed %d (%s): no ops completed", seed, s.Name)
		}
	}
	for _, want := range []string{"reads-crash", "reads-forged", "reads-laggard"} {
		if !variants[want] {
			t.Errorf("sweep slice missing variant %s (got %v)", want, variants)
		}
	}
}

// TestReadGenDeterministic pins the reproduction property: a failing
// seed must be a complete recipe.
func TestReadGenDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("read chaos slice is minutes of virtual time")
	}
	a, err := Run(ReadGen(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ReadGen(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Result != b.Result {
		t.Fatalf("read scenario not reproducible:\n a=%+v\n b=%+v", a.Result, b.Result)
	}
}

// TestReadGenForgedCaughtClientSide pins the headline adversarial
// property on a forged-proof seed: the Byzantine replica's rewritten
// replies are rejected during VerifyReadReply (ReadProofFailures > 0 is
// asserted by the scenario's own Check), the read audit and the
// read-your-writes value checks stay clean, and certified reads still
// complete — the forger costs failovers, never correctness.
func TestReadGenForgedCaughtClientSide(t *testing.T) {
	if testing.Short() {
		t.Skip("read chaos slice is minutes of virtual time")
	}
	s := ReadGen(1) // seed%3==1: forged variant
	if !strings.Contains(s.Name, "forged") {
		t.Fatalf("seed 1 is %s, want a forged-proof scenario", s.Name)
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("forged seed failed: %s", rep.Summary())
	}
}
