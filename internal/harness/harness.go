package harness

import (
	"fmt"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/load"
)

// Scenario describes one harness run.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Opts configures the simulated deployment. The harness overlays
	// WrapApp to install its execution recorders (composing with any
	// caller-supplied wrapper).
	Opts cluster.Options
	// Schedule is the timed fault script applied during the run.
	Schedule cluster.Schedule
	// Arm, when set, runs against the freshly built cluster before the
	// schedule applies — the hook for adversarial wiring a flat Schedule
	// cannot express (e.g. colluding corrupters for the over-budget
	// auditor canary).
	Arm func(cl *cluster.Cluster)
	// OpsPerClient sizes the closed-loop workload.
	OpsPerClient int
	// Workload, when set, replaces both built-in drivers with a custom
	// one (e.g. the mixed certified-read/write generator in readgen.go).
	// It drives the cluster itself and returns the workload summary plus
	// the completed/expected operation counts for the liveness ledger;
	// OpenLoop and OpsPerClient are ignored.
	Workload func(cl *cluster.Cluster) (cluster.WorkloadResult, uint64, uint64)
	// OpenLoop, when set, replaces the closed-loop workload with an
	// open-loop Poisson arrival process (see internal/load): requests
	// keep arriving at OpenLoop.Rate regardless of completions, so the
	// run exercises saturation, admission-control rejects and client
	// backoff under the fault schedule. Gen still supplies operations;
	// OpsPerClient is ignored.
	OpenLoop *load.Config
	// Gen produces the i-th operation of a client. Nil uses a unique-key
	// KV workload (required by the auditor's re-execution check: operation
	// payloads must be unique).
	Gen cluster.OpGen
	// Horizon bounds the workload phase in virtual time.
	Horizon time.Duration
	// Settle runs the simulation beyond the workload so retransmissions,
	// state transfers and checkpoints quiesce before the audit.
	Settle time.Duration
	// ExpectAllCommitted asserts liveness: every client operation must
	// complete within Horizon. Set it only for schedules that heal all
	// faults (safety is audited regardless).
	ExpectAllCommitted bool
	// Check, when set, runs against the settled cluster before the audit
	// and returns a failure description ("" = pass) — the hook for
	// scenario-specific assertions a generic audit cannot express (e.g.
	// "the recovering replica caught up and blamed only faulty servers").
	Check func(cl *cluster.Cluster) string
}

// UniqueKVGen is the default workload: globally unique keys so the
// auditor can detect re-execution.
func UniqueKVGen(client, i int) []byte {
	return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), []byte(fmt.Sprintf("v%d", i)))
}

// Report is the outcome of one scenario.
type Report struct {
	Scenario string
	Seed     int64
	// Completed / Expected count client operations.
	Completed uint64
	Expected  uint64
	// LivenessFailure is set when ExpectAllCommitted was requested and
	// operations were left incomplete.
	LivenessFailure string
	// CheckFailure is set when the scenario's Check hook failed.
	CheckFailure string
	// Audit is the cross-replica safety audit.
	Audit *Audit
	// Result is the workload summary.
	Result cluster.WorkloadResult
	// Faults echoes the applied schedule for reproduction.
	Faults cluster.Schedule
}

// Failed reports whether the scenario violated safety, (when asserted)
// liveness, or its scenario-specific Check.
func (r *Report) Failed() bool {
	return r.LivenessFailure != "" || r.CheckFailure != "" || (r.Audit != nil && !r.Audit.OK())
}

// Summary renders a one-line outcome.
func (r *Report) Summary() string {
	status := "ok"
	if r.Failed() {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s seed=%d %s: %d/%d ops, %d replicas, %d seqs audited",
		r.Scenario, r.Seed, status, r.Completed, r.Expected,
		r.Audit.ReplicasAudited, r.Audit.SeqsAudited)
	if r.Audit.ByzantineExcluded > 0 {
		s += fmt.Sprintf(" (%d byzantine excluded)", r.Audit.ByzantineExcluded)
	}
	if r.LivenessFailure != "" {
		s += "; " + r.LivenessFailure
	}
	if r.CheckFailure != "" {
		s += "; " + r.CheckFailure
	}
	for _, d := range r.Audit.Divergences {
		s += "; " + d
	}
	return s
}

// Run executes one scenario end to end: build the cluster with recording
// applications, apply the fault schedule, drive the workload, settle, and
// audit.
func Run(s Scenario) (*Report, error) {
	recorders := make(map[int]*Recorder)
	opts := s.Opts
	userWrap := opts.WrapApp
	opts.WrapApp = func(id int, app core.Application) core.Application {
		if userWrap != nil {
			app = userWrap(id, app)
		}
		rec := NewRecorder(app)
		recorders[id] = rec
		return rec
	}
	cl, err := cluster.New(opts)
	if err != nil {
		return nil, fmt.Errorf("harness: building cluster: %w", err)
	}
	defer cl.Close()

	var acks []Ack
	cl.OnResult = func(clientID int, res core.Result) {
		acks = append(acks, Ack{
			Client:    clientID,
			Timestamp: res.Timestamp,
			Seq:       res.Seq,
			Op:        res.Op,
			Val:       res.Val,
		})
	}

	if s.Arm != nil {
		s.Arm(cl)
	}
	cl.Apply(s.Schedule)

	gen := s.Gen
	if gen == nil {
		gen = UniqueKVGen
	}
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = 10 * time.Minute
	}
	var res cluster.WorkloadResult
	var completed, expected uint64
	if s.Workload != nil {
		res, completed, expected = s.Workload(cl)
	} else if s.OpenLoop != nil {
		olCfg := *s.OpenLoop
		if olCfg.Gen == nil {
			olCfg.Gen = gen
		}
		ol := load.Run(cl, olCfg)
		res = ol.Workload(olCfg.Window)
		// Open loop: liveness covers what was actually admitted into a
		// client slot, not the unbounded arrival process. Completions are
		// counted from the ack log AFTER the settle phase, so in-flight
		// operations finishing late still satisfy the ledger.
		expected = ol.Submitted
	} else {
		res = cl.RunClosedLoop(s.OpsPerClient, gen, horizon)
		completed, expected = res.Completed, uint64(opts.Clients*s.OpsPerClient)
	}
	if s.Settle > 0 {
		cl.Run(s.Settle)
	}
	if s.Workload == nil && s.OpenLoop != nil {
		completed = uint64(len(acks))
	}

	report := &Report{
		Scenario:  s.Name,
		Seed:      opts.Seed,
		Completed: completed,
		Expected:  expected,
		Audit:     AuditCluster(cl, recorders, acks),
		Result:    res,
		Faults:    s.Schedule,
	}
	if s.ExpectAllCommitted && report.Completed < report.Expected {
		report.LivenessFailure = fmt.Sprintf("liveness: %d of %d ops completed (live replicas: %d)",
			report.Completed, report.Expected, liveReplicaCount(cl))
	}
	if s.Check != nil {
		report.CheckFailure = s.Check(cl)
	}
	return report, nil
}
