package harness

import (
	"testing"
)

// TestRecoverySlice sweeps the large-state recovery generator across all
// three variants (honest, chunk tamperer, stale-meta racer) twice each:
// a multi-MiB state recovered over lossy, reordering links, with the
// scenario Check asserting the transfer actually ran, completed, and
// blamed only faulty servers. Offline sweeps run more seeds via
// `sbft-chaos -gen recovery`.
func TestRecoverySlice(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state recovery sweep skipped in -short mode")
	}
	cr := RunChaos(SeedRange(1, 6), RecoveryGen, func(seed int64, rep *Report, err error) {
		switch {
		case err != nil:
			t.Errorf("seed %d: %v", seed, err)
		case rep.Failed():
			t.Errorf("seed %d: %s", seed, rep.Summary())
		default:
			t.Logf("seed %d: %s", seed, rep.Summary())
		}
	})
	if !cr.OK() {
		t.Fatalf("recovery sweep failed: %s (reproduce: sbft-chaos -gen recovery -start %d -seeds 1 -v)",
			cr.Summary(), cr.MinFailingSeed)
	}
}

// TestRecoveryGenDeterministic pins the reproduction contract: the same
// seed yields the same schedule.
func TestRecoveryGenDeterministic(t *testing.T) {
	a, b := RecoveryGen(7), RecoveryGen(7)
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i].String() != b.Schedule[i].String() {
			t.Fatalf("schedule step %d differs: %s vs %s", i, a.Schedule[i], b.Schedule[i])
		}
	}
	if a.Name != b.Name {
		t.Fatalf("names differ: %s vs %s", a.Name, b.Name)
	}
}
