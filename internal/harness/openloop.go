package harness

import (
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/load"
	"sbft/internal/sim"
)

// OpenLoopGen generates open-loop chaos scenarios: Poisson arrivals
// multiplexed over a client pool against an SBFT cluster with the
// verification pool armed, under a benign fault window. A third of the
// seeds tighten MaxPending so the run saturates the §V-C admission gate
// and drives BusyMsg backoff concurrently with the fault — the
// interleaving a closed loop can never produce (its offered load
// collapses the moment latency spikes). Safety is audited as always;
// liveness covers every admitted request.
func OpenLoopGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x6a09e667f3bcc9 + 0x3c6ef372fe94f82a))

	f := 1
	opts := cluster.Options{
		Protocol:      cluster.ProtoSBFT,
		F:             f,
		Clients:       8 + rng.Intn(9), // 8..16 multiplexed slots
		Seed:          seed,
		ClientTimeout: time.Second,
		Persist:       true,
		CryptoPool:    1,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
	}
	n := 3*f + 1
	congested := seed%3 == 0
	if congested {
		tight := 4 + rng.Intn(8) // far below 4×Batch×window
		tune := opts.Tune
		opts.Tune = func(c *core.Config) {
			tune(c)
			c.MaxPending = tight
			c.Batch = 4
		}
	}

	// One benign fault window inside the measurement phase, healed well
	// before the drain ends.
	var sched cluster.Schedule
	at := 300*time.Millisecond + time.Duration(rng.Int63n(int64(400*time.Millisecond)))
	dur := 200*time.Millisecond + time.Duration(rng.Int63n(int64(500*time.Millisecond)))
	node := 1 + rng.Intn(n)
	switch rng.Intn(3) {
	case 0:
		sched = append(sched,
			cluster.Fault{At: at, Kind: cluster.FaultCrash, Node: node},
			cluster.Fault{At: at + dur, Kind: cluster.FaultRestart, Node: node})
	case 1:
		sched = append(sched,
			cluster.Fault{At: at, Kind: cluster.FaultStraggle, Node: node, Extra: 30 * time.Millisecond},
			cluster.Fault{At: at + dur, Kind: cluster.FaultStraggle, Node: node})
	default:
		sched = append(sched,
			cluster.Fault{At: at, Kind: cluster.FaultLink, From: node, Link: sim.LinkFault{Drop: 0.3}},
			cluster.Fault{At: at + dur, Kind: cluster.FaultLinkClear})
	}

	rate := 150 + float64(rng.Intn(350)) // 150..500 req/s
	name := fmt.Sprintf("openloop-%.0frps", rate)
	if congested {
		name += "-congested"
	}
	return Scenario{
		Name:     name,
		Opts:     opts,
		Schedule: sched,
		OpenLoop: &load.Config{
			Rate:   rate,
			Warmup: 200 * time.Millisecond,
			Window: 2 * time.Second,
			Drain:  2 * time.Second,
			Seed:   seed,
		},
		Horizon: 30 * time.Second,
		Settle:  2 * time.Second,
		// Every admitted request must complete: the faults heal and the
		// drain+settle phases give retries room. Shed arrivals (Dropped)
		// and admission rejects are not liveness failures — that is the
		// backpressure design working.
		ExpectAllCommitted: true,
	}
}
