package harness

import (
	"testing"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
)

// TestScriptedCrashFRestartMidBatch is the ISSUE's scripted acceptance
// scenario: crash f replicas mid-batch, restart them from their durable
// stores, and still reach commit on everything.
func TestScriptedCrashFRestartMidBatch(t *testing.T) {
	const f = 2 // n = 7
	rep, err := Run(Scenario{
		Name: "crash-f-restart-mid-batch",
		Opts: cluster.Options{
			Protocol: cluster.ProtoSBFT, F: f, C: 0,
			Clients: 3, Seed: 100, Persist: true,
			ClientTimeout: time.Second,
			Tune: func(c *core.Config) {
				c.Batch = 4
				c.ViewChangeTimeout = time.Second
			},
		},
		Schedule: cluster.Schedule{
			// Mid-batch: the workload starts immediately; at 300ms the
			// cluster is deep in flight. Crash f=2 backups together …
			{At: 300 * time.Millisecond, Kind: cluster.FaultCrash, Node: 6},
			{At: 300 * time.Millisecond, Kind: cluster.FaultCrash, Node: 7},
			// … and bring them back from storage while traffic continues.
			{At: 1200 * time.Millisecond, Kind: cluster.FaultRestart, Node: 6},
			{At: 1500 * time.Millisecond, Kind: cluster.FaultRestart, Node: 7},
		},
		OpsPerClient:       15,
		Horizon:            10 * time.Minute,
		Settle:             time.Minute,
		ExpectAllCommitted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("scenario failed: %s", rep.Summary())
	}
	if rep.Completed != rep.Expected {
		t.Fatalf("completed %d of %d", rep.Completed, rep.Expected)
	}
}

// TestScriptedPrimaryPartitionWindow scripts the paper's §VII experiment
// shape: partition the view-0 primary at t=1s, heal at t=3s; the cluster
// must view-change around it and finish the workload.
func TestScriptedPrimaryPartitionWindow(t *testing.T) {
	opts := cluster.Options{
		Protocol: cluster.ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 101,
		ClientTimeout: time.Second,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
	}
	sched := cluster.Schedule{
		{At: time.Second, Kind: cluster.FaultPartition, Node: 1, Group: 1},
		{At: time.Second, Kind: cluster.FaultPartition, Node: 2, Group: 2},
		{At: time.Second, Kind: cluster.FaultPartition, Node: 3, Group: 2},
		{At: time.Second, Kind: cluster.FaultPartition, Node: 4, Group: 2},
		{At: 3 * time.Second, Kind: cluster.FaultHeal},
	}
	rep, err := Run(Scenario{
		Name: "primary-partition-window", Opts: opts, Schedule: sched,
		OpsPerClient: 15, Horizon: 10 * time.Minute, Settle: 30 * time.Second,
		ExpectAllCommitted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("scenario failed: %s", rep.Summary())
	}
}

// TestScenarioDeterminism: one seed, two runs, identical outcomes.
func TestScenarioDeterminism(t *testing.T) {
	run := func() string {
		rep, err := Run(DefaultGen(7))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic scenario:\n%s\n%s", a, b)
	}
}

// TestAuditorDetectsLogDivergence feeds the auditor a forged divergent
// execution record: the audit must fail (auditor self-test — a checker
// that cannot fail verifies nothing).
func TestAuditorDetectsLogDivergence(t *testing.T) {
	recorders := make(map[int]*Recorder)
	opts := cluster.Options{
		Protocol: cluster.ProtoSBFT, F: 1, C: 0, Clients: 2, Seed: 55,
		WrapApp: func(id int, app core.Application) core.Application {
			rec := NewRecorder(app)
			recorders[id] = rec
			return rec
		},
	}
	cl, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := cl.RunClosedLoop(5, UniqueKVGen, time.Minute)
	if res.Completed != 10 {
		t.Fatalf("completed %d of 10", res.Completed)
	}
	if a := AuditCluster(cl, recorders, nil); !a.OK() {
		t.Fatalf("clean run audited dirty: %v", a.Divergences)
	}

	// Forge: replica 2 "executed" something else at seq 1.
	rec := recorders[2].Records[1]
	rec.OpHashes = append([][32]byte{}, rec.OpHashes...)
	rec.OpHashes[0][0] ^= 0xff
	recorders[2].Records[1] = rec
	if a := AuditCluster(cl, recorders, nil); a.OK() {
		t.Fatal("auditor missed a forged log divergence")
	}

	// A fabricated ack no replica executed must also be caught.
	recorders[2].Records[1] = recorders[1].Records[1] // repair
	bogus := []Ack{{Client: core.ClientBase, Timestamp: 99, Seq: 1, Op: []byte("never-executed")}}
	if a := AuditCluster(cl, recorders, bogus); a.OK() {
		t.Fatal("auditor missed a lost ack")
	}
}
