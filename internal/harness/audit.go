package harness

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/sim"
)

// Ack is one completed client operation as the client observed it.
type Ack struct {
	Client    int
	Timestamp uint64
	Seq       uint64
	Op        []byte
	Val       []byte
}

// Audit is the outcome of the cross-replica safety audit. Divergences are
// safety violations: honest replicas disagreeing on what was committed or
// executed, or a client holding an ack for work no replica performed.
// Byzantine replicas are expected to diverge arbitrarily and are excluded
// from every honest-replica invariant.
type Audit struct {
	Divergences []string
	// ReplicasAudited and SeqsAudited size the evidence base.
	ReplicasAudited int
	SeqsAudited     int
	// ByzantineExcluded counts replicas exempted from honest invariants.
	ByzantineExcluded int
}

// OK reports whether the audit found no divergence.
func (a *Audit) OK() bool { return len(a.Divergences) == 0 }

func (a *Audit) addf(format string, args ...any) {
	a.Divergences = append(a.Divergences, fmt.Sprintf(format, args...))
}

// AuditCluster cross-checks a finished scenario:
//
//  1. Committed-log agreement: any two replicas that executed the same
//     sequence executed identical operations with identical results.
//  2. State-root agreement: replicas at the same execution frontier have
//     identical application digests.
//  3. No lost acks: every operation a client completed appears in the
//     executed log of every replica that executed its sequence locally,
//     and in at least one replica overall.
//  4. Per-replica no re-execution: the same operation does not appear at
//     two different sequences of one replica's log (callers must use
//     workloads with unique operation payloads). Ops whose hash appears
//     in a `repeatable` set are exempt — cross-shard prepares are
//     IDEMPOTENT by design (certificate refetch and coordinator recovery
//     resubmit byte-identical prepares under fresh client timestamps).
//  5. Scheduled fault steps all applied (cl.FaultErrors empty).
//
// Crashed replicas are still audited — a crashed node's retained state
// must not contradict the survivors' — but Byzantine replicas (replaced
// nodes and corrupter-equipped ones, per cl.IsByzantine) are expected to
// diverge and are skipped.
func AuditCluster(cl *cluster.Cluster, recorders map[int]*Recorder, acks []Ack, repeatable ...map[[32]byte]bool) *Audit {
	a := &Audit{}

	for _, err := range cl.FaultErrors {
		a.addf("fault step failed: %v", err)
	}

	// Execution frontiers per live honest replica.
	frontier := make(map[int]uint64)
	for id := 1; id <= cl.N; id++ {
		if cl.IsByzantine(id) {
			a.ByzantineExcluded++
			continue
		}
		if cl.Replicas != nil && cl.Replicas[id] != nil {
			frontier[id] = cl.Replicas[id].LastExecuted()
		} else if cl.PBFTReplicas != nil && cl.PBFTReplicas[id] != nil {
			frontier[id] = cl.PBFTReplicas[id].LastExecuted()
		}
	}
	a.ReplicasAudited = len(frontier)

	// (1) Committed-log agreement across all recorded sequences.
	type firstSeen struct {
		replica int
		digest  [32]byte
	}
	bySeq := make(map[uint64]firstSeen)
	ids := make([]int, 0, len(recorders))
	for id := range recorders {
		if _, honest := frontier[id]; honest {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		for seq, rec := range recorders[id].Records {
			d := rec.opsDigest()
			if prev, ok := bySeq[seq]; ok {
				if prev.digest != d {
					a.addf("log divergence at seq %d: replica %d and replica %d executed different blocks", seq, prev.replica, id)
				}
			} else {
				bySeq[seq] = firstSeen{replica: id, digest: d}
			}
		}
	}
	a.SeqsAudited = len(bySeq)

	// (2) State-root agreement at equal frontiers.
	type root struct {
		replica int
		digest  []byte
	}
	byFrontier := make(map[uint64]root)
	for _, id := range ids {
		le := frontier[id]
		d := cl.Apps[id].Digest()
		if prev, ok := byFrontier[le]; ok {
			if !bytes.Equal(prev.digest, d) {
				a.addf("state divergence at frontier %d: replica %d and replica %d digests differ", le, prev.replica, id)
			}
		} else {
			byFrontier[le] = root{replica: id, digest: d}
		}
	}

	// (2b) Execution-state agreement at equal frontiers (SBFT engine):
	// the digest additionally covers the last-reply table, so a replica
	// whose dedup state was perturbed — e.g. restored from a tampered
	// snapshot — diverges here even when application state agrees. This is
	// the post-recovery invariant behind the π-certified checkpoint
	// digest: dedup state must match what the quorum certified.
	if cl.Replicas != nil {
		execByFrontier := make(map[uint64]root)
		for _, id := range ids {
			if cl.Replicas[id] == nil {
				continue
			}
			le := frontier[id]
			d := cl.Replicas[id].ExecutionStateDigest()
			if prev, ok := execByFrontier[le]; ok {
				if !bytes.Equal(prev.digest, d) {
					a.addf("execution-state divergence at frontier %d: replica %d and replica %d disagree on the last-reply table", le, prev.replica, id)
				}
			} else {
				execByFrontier[le] = root{replica: id, digest: d}
			}
		}
	}

	// (3) No lost acks.
	for _, ack := range acks {
		opHash := sha256.Sum256(ack.Op)
		holders := 0
		for _, id := range ids {
			rec, ok := recorders[id].Records[ack.Seq]
			if !ok {
				continue // not executed locally (state transfer or behind)
			}
			holders++
			found := false
			for _, h := range rec.OpHashes {
				if h == opHash {
					found = true
					break
				}
			}
			if !found {
				a.addf("lost ack: client %d op ts=%d acked at seq %d, but replica %d's block %d lacks it",
					ack.Client, ack.Timestamp, ack.Seq, id, ack.Seq)
			}
		}
		if holders == 0 {
			a.addf("lost ack: client %d op ts=%d acked at seq %d, but no replica executed that block locally",
				ack.Client, ack.Timestamp, ack.Seq)
		}
	}

	// (4) No re-execution of one operation at two sequences of a replica.
	allowed := func(h [32]byte) bool {
		for _, set := range repeatable {
			if set[h] {
				return true
			}
		}
		return false
	}
	for _, id := range ids {
		seen := make(map[[32]byte]uint64)
		seqs := make([]uint64, 0, len(recorders[id].Records))
		for seq := range recorders[id].Records {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			for _, h := range recorders[id].Records[seq].OpHashes {
				if prev, dup := seen[h]; dup && !allowed(h) {
					a.addf("replica %d re-executed an operation: seq %d and seq %d", id, prev, seq)
				} else {
					seen[h] = seq
				}
			}
		}
	}

	return a
}

// ReadAck is one completed certified read as a client observed it.
type ReadAck struct {
	Client int
	core.ReadResult
}

// AuditReads cross-checks a certified-read ledger against the settled
// cluster. Client-side verification is the primary defense (a forged
// reply must die in VerifyReadReply); this audit is the backstop that
// would catch a verification bug:
//
//  1. No read beyond the certified frontier: a verified read's sequence
//     can never exceed the highest execution frontier any honest replica
//     reached — certifying seq s requires at least one honest π share,
//     and that signer executed to s.
//  2. Monotonic reads per client: the client raises its freshness floor
//     on every completion, so later verified reads may never observe an
//     older certified sequence.
//
// Ordered fallbacks went through consensus and are covered by the main
// audit's ack checks.
func AuditReads(cl *cluster.Cluster, reads []ReadAck) []string {
	var divs []string
	if cl.Replicas == nil {
		for _, r := range reads {
			if !r.Ordered {
				divs = append(divs, fmt.Sprintf("client %d holds a certified read but the cluster runs no SBFT replicas", r.Client))
			}
		}
		return divs
	}
	var frontier uint64
	for id := 1; id <= cl.N; id++ {
		if cl.IsByzantine(id) || cl.Replicas[id] == nil {
			continue
		}
		if le := cl.Replicas[id].LastExecuted(); le > frontier {
			frontier = le
		}
	}
	lastSeq := make(map[int]uint64)
	for _, r := range reads {
		if r.Ordered {
			continue
		}
		if r.Seq > frontier {
			divs = append(divs, fmt.Sprintf("read beyond certified frontier: client %d read %q at seq %d, honest frontier %d",
				r.Client, r.Key, r.Seq, frontier))
		}
		if prev := lastSeq[r.Client]; r.Seq < prev {
			divs = append(divs, fmt.Sprintf("non-monotonic reads: client %d observed seq %d after seq %d",
				r.Client, r.Seq, prev))
		}
		lastSeq[r.Client] = r.Seq
	}
	return divs
}

// liveReplicaCount reports how many honest replicas are not crashed.
func liveReplicaCount(cl *cluster.Cluster) int {
	n := 0
	for id := 1; id <= cl.N; id++ {
		if !cl.Net.Crashed(sim.NodeID(id)) && !cl.IsByzantine(id) {
			n++
		}
	}
	return n
}
