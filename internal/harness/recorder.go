package harness

import (
	"crypto/sha256"
	"fmt"

	"sbft/internal/core"
)

// ExecRecord is one replica's view of one executed decision block: hashes
// of the operations and of the results, in execution order. The auditor
// compares these across replicas — two honest replicas that both executed
// sequence s must have executed identical operations with identical
// results (§VI safety applied at the application layer).
type ExecRecord struct {
	Seq       uint64
	OpHashes  [][32]byte
	ResHashes [][32]byte
}

// opsDigest folds the record into one comparable digest.
func (r ExecRecord) opsDigest() [32]byte {
	h := sha256.New()
	for i := range r.OpHashes {
		h.Write(r.OpHashes[i][:])
		h.Write(r.ResHashes[i][:])
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// Recorder wraps a replica's application and records every executed block.
// Blocks applied through Restore (state transfer) are NOT recorded — the
// auditor treats those sequences as unobserved for that replica.
type Recorder struct {
	inner   core.Application
	Records map[uint64]ExecRecord
}

// NewRecorder wraps an application.
func NewRecorder(app core.Application) *Recorder {
	return &Recorder{inner: app, Records: make(map[uint64]ExecRecord)}
}

var _ core.Application = (*Recorder)(nil)

// ExecuteBlock implements core.Application, recording the block.
func (r *Recorder) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	results := r.inner.ExecuteBlock(seq, ops)
	rec := ExecRecord{
		Seq:       seq,
		OpHashes:  make([][32]byte, len(ops)),
		ResHashes: make([][32]byte, len(results)),
	}
	for i, op := range ops {
		rec.OpHashes[i] = sha256.Sum256(op)
	}
	for i, res := range results {
		rec.ResHashes[i] = sha256.Sum256(res)
	}
	r.Records[seq] = rec
	return results
}

// Digest implements core.Application.
func (r *Recorder) Digest() []byte { return r.inner.Digest() }

// ProveOperation implements core.Application.
func (r *Recorder) ProveOperation(seq uint64, l int) ([]byte, error) {
	return r.inner.ProveOperation(seq, l)
}

// Snapshot implements core.Application.
func (r *Recorder) Snapshot() ([]byte, error) { return r.inner.Snapshot() }

// SnapshotChunks implements core.ChunkedSnapshotter by delegation. The
// wrapper must forward this statically: if it swallowed the interface,
// wrapped replicas would fall back to full captures with a DIFFERENT
// chunk layout than unwrapped ones and checkpoint roots would diverge.
// The ok=false return keeps delegation safe over apps without the
// incremental path.
func (r *Recorder) SnapshotChunks() ([][]byte, bool, error) {
	if ca, ok := r.inner.(core.ChunkedSnapshotter); ok {
		return ca.SnapshotChunks()
	}
	return nil, false, nil
}

// ReadKey implements core.KeyReader by delegation, like SnapshotChunks:
// if the wrapper swallowed the interface, wrapped replicas would answer
// every certified read ReadUnavailable.
func (r *Recorder) ReadKey(op []byte) (string, error) {
	if kr, ok := r.inner.(core.KeyReader); ok {
		return kr.ReadKey(op)
	}
	return "", fmt.Errorf("harness: application has no read-key mapping")
}

// TxStats implements core.TwoPhaser by delegation, like SnapshotChunks:
// without static forwarding, wrapped replicas would stop reporting the
// 2PC metrics the sharded tests assert on.
func (r *Recorder) TxStats() (prepares, commits, aborts uint64) {
	if tp, ok := r.inner.(core.TwoPhaser); ok {
		return tp.TxStats()
	}
	return 0, 0, 0
}

// Restore implements core.Application. The restored span was not executed
// locally, so no records are added for it.
func (r *Recorder) Restore(data []byte) error { return r.inner.Restore(data) }

// GarbageCollect implements core.Application. Records are deliberately
// retained: the auditor needs the full executed history.
func (r *Recorder) GarbageCollect(keepFrom uint64) { r.inner.GarbageCollect(keepFrom) }
