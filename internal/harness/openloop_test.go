package harness

import (
	"strings"
	"testing"
)

func TestOpenLoopGenSweep(t *testing.T) {
	congested := 0
	for seed := int64(1); seed <= 6; seed++ {
		s := OpenLoopGen(seed)
		if s.OpenLoop == nil {
			t.Fatalf("seed %d: not an open-loop scenario", seed)
		}
		if strings.Contains(s.Name, "congested") {
			congested++
		}
		rep, err := Run(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %s", seed, rep.Summary())
		}
		if rep.Completed == 0 {
			t.Errorf("seed %d: no ops completed", seed)
		}
	}
	if congested == 0 {
		t.Error("no congested (tight MaxPending) seeds in the sweep")
	}
}

func TestOpenLoopGenDeterministic(t *testing.T) {
	a, err := Run(OpenLoopGen(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(OpenLoopGen(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Result != b.Result {
		t.Fatalf("open-loop scenario not reproducible:\n a=%+v\n b=%+v", a.Result, b.Result)
	}
}
