package harness

import (
	"fmt"
	"math/rand"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/sim"
)

// ScenarioGen produces a scenario from a seed. Generators must be
// deterministic: the same seed yields the same scenario, so a failing
// seed is a complete reproduction recipe.
type ScenarioGen func(seed int64) Scenario

// chaosVariants is the protocol ladder the chaos runner cycles through
// (the paper's four SBFT-engine-relevant configurations plus the PBFT
// baseline collapsed into its Protocol enum).
var chaosVariants = [...]cluster.Protocol{
	cluster.ProtoPBFT,
	cluster.ProtoLinearPBFT,
	cluster.ProtoLinearFast,
	cluster.ProtoSBFT,
}

// DefaultGen generates a random-but-survivable fault schedule: fault
// windows are sequential (never more than one impaired replica at a time,
// respecting the f = 1 budget) and everything heals before the workload
// horizon, so both safety and liveness are asserted. The protocol variant
// cycles with the seed across PBFT, Linear-PBFT, Linear-PBFT+Fast and
// SBFT.
func DefaultGen(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*0x9e3779b9 + 0x7f4a7c15))
	proto := chaosVariants[int(uint64(seed)%uint64(len(chaosVariants)))]

	opts := cluster.Options{
		Protocol:      proto,
		F:             1,
		Clients:       2,
		Seed:          seed,
		ClientTimeout: time.Second,
		Persist:       true, // every engine restarts from storage now
		// One modeled crypto worker: the CryptoSink staging/epoch machinery
		// runs under every chaos seed while the sweep stays deterministic.
		CryptoPool: 1,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
	}
	if proto == cluster.ProtoSBFT && rng.Float64() < 0.25 {
		opts.C = 1 // n = 6: exercise the redundant-server quorums
	}
	n := 3*opts.F + 1
	if proto != cluster.ProtoPBFT {
		n = 3*opts.F + 2*opts.C + 1
	}

	var sched cluster.Schedule
	at := 200*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
	windows := 1 + rng.Intn(3)
	for w := 0; w < windows; w++ {
		dur := 300*time.Millisecond + time.Duration(rng.Int63n(int64(900*time.Millisecond)))
		node := 1 + rng.Intn(n)
		end := at + dur
		switch kind := rng.Intn(6); kind {
		case 0, 1:
			// Crash window; half the time (when persistence is on) the
			// replica comes back by replaying its durable log instead of
			// with its in-memory state.
			sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultCrash, Node: node})
			if opts.Persist && kind == 0 {
				sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultRestart, Node: node})
			} else {
				sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultRecover, Node: node})
			}
		case 2:
			// Isolate one replica from every other replica (both sides
			// must hold non-zero groups; clients stay connected to all).
			for id := 1; id <= n; id++ {
				g := 2
				if id == node {
					g = 1
				}
				sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultPartition, Node: id, Group: g})
			}
			sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultHeal})
		case 3:
			extra := 100*time.Millisecond + time.Duration(rng.Int63n(int64(900*time.Millisecond)))
			sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultStraggle, Node: node, Extra: extra})
			sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultStraggle, Node: node, Extra: 0})
		case 4:
			// Lossy outbound link from one replica.
			f := sim.LinkFault{Drop: 0.3 + 0.6*rng.Float64()}
			sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultLink, From: node, To: 0, Link: f})
			sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultLinkClear})
		default:
			// Duplicate + reorder everywhere: a pure idempotence stressor.
			f := sim.LinkFault{
				Duplicate:     0.3 + 0.4*rng.Float64(),
				ReorderJitter: 5*time.Millisecond + time.Duration(rng.Int63n(int64(25*time.Millisecond))),
			}
			sched = append(sched, cluster.Fault{At: at, Kind: cluster.FaultLink, From: 0, To: 0, Link: f})
			sched = append(sched, cluster.Fault{At: end, Kind: cluster.FaultLinkClear})
		}
		at = end + 100*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
	}

	s := Scenario{
		Name:               fmt.Sprintf("chaos-%s", proto),
		Opts:               opts,
		Schedule:           sched,
		OpsPerClient:       5,
		Horizon:            30 * time.Minute, // virtual time; generous on purpose
		Settle:             30 * time.Second,
		ExpectAllCommitted: true,
	}
	// Every fifth seed runs the same schedule against the EVM ledger
	// instead of the KV store (the paper's second workload, §IX).
	if seed%5 == 2 {
		s = evmize(s)
	}
	return s
}

// SeedRange returns n consecutive seeds from start.
func SeedRange(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

// ChaosReport aggregates a chaos sweep.
type ChaosReport struct {
	Runs     int
	Failures []*Report
	// Errors are scenarios that could not run at all (cluster build
	// failures) keyed by seed.
	Errors map[int64]error
	// MinFailingSeed is the smallest seed that failed; valid only when
	// HasFailure.
	MinFailingSeed int64
	HasFailure     bool
}

// Note records a failing seed.
func (cr *ChaosReport) note(seed int64, rep *Report) {
	if rep != nil {
		cr.Failures = append(cr.Failures, rep)
	}
	if !cr.HasFailure || seed < cr.MinFailingSeed {
		cr.MinFailingSeed = seed
	}
	cr.HasFailure = true
}

// OK reports a clean sweep.
func (cr *ChaosReport) OK() bool { return !cr.HasFailure && len(cr.Errors) == 0 }

// Summary renders the sweep outcome.
func (cr *ChaosReport) Summary() string {
	if cr.OK() {
		return fmt.Sprintf("chaos: %d scenarios, no divergence", cr.Runs)
	}
	return fmt.Sprintf("chaos: %d scenarios, %d failures, %d errors; minimal failing seed %d",
		cr.Runs, len(cr.Failures), len(cr.Errors), cr.MinFailingSeed)
}

// RunChaos executes gen(seed) for every seed and audits each run. Every
// scenario runs in a fresh simulated cluster; a failing seed reproduces
// by itself via Run(gen(seed)). An optional observer streams each
// outcome as it lands (rep is nil when err is set).
func RunChaos(seeds []int64, gen ScenarioGen, observe ...func(seed int64, rep *Report, err error)) *ChaosReport {
	cr := &ChaosReport{Errors: make(map[int64]error)}
	for _, seed := range seeds {
		cr.Runs++
		rep, err := Run(gen(seed))
		for _, ob := range observe {
			ob(seed, rep, err)
		}
		if err != nil {
			cr.Errors[seed] = err
			cr.note(seed, nil)
			continue
		}
		if rep.Failed() {
			cr.note(seed, rep)
		}
	}
	return cr
}
