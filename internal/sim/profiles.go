package sim

import (
	"math/rand"
	"time"
)

// WAN profiles matching the paper's two deployments (§IX): a continent
// scale WAN (5 regions, two availability zones each — we model the 10
// zones as regions with small intra-pair latencies) and a world scale WAN
// (15 regions across all continents). Latencies are one-way propagation
// delays generated deterministically from a seed so experiments reproduce.

// ContinentRegions is the number of zones in the continent-scale profile.
const ContinentRegions = 10

// WorldRegions is the number of regions in the world-scale profile.
const WorldRegions = 15

// ContinentProfile returns a Config modeling the paper's continent-scale
// WAN: 5 regions × 2 availability zones. Zones 2k and 2k+1 form a region
// (≈1ms apart); distinct regions are 10–40ms apart.
func ContinentProfile(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	lat := make([][]time.Duration, ContinentRegions)
	for i := range lat {
		lat[i] = make([]time.Duration, ContinentRegions)
	}
	// Symmetric region-pair distances.
	regionDist := make([][]time.Duration, 5)
	for i := range regionDist {
		regionDist[i] = make([]time.Duration, 5)
		for j := 0; j < i; j++ {
			d := 10*time.Millisecond + time.Duration(rng.Int63n(int64(30*time.Millisecond)))
			regionDist[i][j] = d
		}
	}
	for i := 0; i < ContinentRegions; i++ {
		for j := 0; j < ContinentRegions; j++ {
			ri, rj := i/2, j/2
			switch {
			case i == j:
				lat[i][j] = 200 * time.Microsecond
			case ri == rj:
				lat[i][j] = time.Millisecond
			case ri > rj:
				lat[i][j] = regionDist[ri][rj]
			default:
				lat[i][j] = regionDist[rj][ri]
			}
		}
	}
	return Config{
		Seed:         seed,
		Regions:      ContinentRegions,
		BaseLatency:  lat,
		Jitter:       2 * time.Millisecond,
		BandwidthBps: 10e9 / 8, // 10 Gbit links as in the paper
	}
}

// WorldProfile returns a Config modeling the paper's world-scale WAN: 15
// regions over all continents, one-way delays 20–150ms.
func WorldProfile(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	lat := make([][]time.Duration, WorldRegions)
	for i := range lat {
		lat[i] = make([]time.Duration, WorldRegions)
	}
	for i := 0; i < WorldRegions; i++ {
		for j := 0; j < i; j++ {
			d := 20*time.Millisecond + time.Duration(rng.Int63n(int64(130*time.Millisecond)))
			lat[i][j] = d
			lat[j][i] = d
		}
		lat[i][i] = 200 * time.Microsecond
	}
	return Config{
		Seed:         seed,
		Regions:      WorldRegions,
		BaseLatency:  lat,
		Jitter:       5 * time.Millisecond,
		BandwidthBps: 10e9 / 8,
	}
}

// UniformProfile returns a single-region config with a fixed one-way
// delay, useful for unit tests where latency must be exactly predictable.
func UniformProfile(delay time.Duration) Config {
	return Config{
		Regions:     1,
		BaseLatency: [][]time.Duration{{delay}},
	}
}
