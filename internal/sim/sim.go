package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// NodeID identifies a simulated node (replica or client).
type NodeID int

// Handler receives delivered messages.
type Handler interface {
	// Deliver is invoked when a message arrives. Implementations run on
	// the simulator's single logical thread; no locking is needed.
	Deliver(from NodeID, msg any)
}

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreaker for equal timestamps → determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic virtual-time event loop.
type Scheduler struct {
	pq   eventHeap
	now  time.Duration
	seq  uint64
	rng  *rand.Rand
	nrun uint64
}

// NewScheduler returns a scheduler seeded for reproducibility.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now reports current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Events reports how many events have run.
func (s *Scheduler) Events() uint64 { return s.nrun }

// Schedule runs fn after delay d of virtual time. It returns a cancel
// function; cancelling after the event fired is a no-op.
func (s *Scheduler) Schedule(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	e := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pq, e)
	return func() { e.fn = nil }
}

// Step runs the next event. It reports false when no events remain.
func (s *Scheduler) Step() bool {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*event)
		if e.fn == nil {
			continue // cancelled
		}
		s.now = e.at
		s.nrun++
		e.fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty, virtual time passes
// `until`, or maxEvents fire (0 = no event cap). It returns the number of
// events processed.
func (s *Scheduler) Run(until time.Duration, maxEvents uint64) uint64 {
	var n uint64
	for s.pq.Len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		// Peek: do not cross the time horizon.
		next := s.pq[0]
		if next.fn == nil {
			heap.Pop(&s.pq)
			continue
		}
		if until > 0 && next.at > until {
			s.now = until
			break
		}
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Config describes the network model.
type Config struct {
	// Seed drives all randomness (latency jitter, drops).
	Seed int64
	// Regions is the number of regions; nodes are assigned on Register.
	Regions int
	// BaseLatency[i][j] is the one-way propagation delay between regions
	// i and j. Must be Regions×Regions.
	BaseLatency [][]time.Duration
	// Jitter is the maximum uniform extra delay added per message.
	Jitter time.Duration
	// BandwidthBps is per-link bandwidth in bytes/second; 0 disables
	// serialization delay.
	BandwidthBps float64
	// DropRate is the probability a message is silently dropped.
	DropRate float64
	// SendCost models per-message CPU time at the sender (serialization,
	// signing): a node's sends are serialized on its CPU, so an n-wide
	// broadcast occupies the sender for n×SendCost. Nil = free.
	SendCost func(msg any, size int) time.Duration
	// RecvCost models per-message CPU time at the receiver (signature
	// verification, handling). A node processes arrivals serially; this
	// is what makes quadratic protocols saturate replicas at scale — the
	// effect behind the paper's Figure 2 (see DESIGN.md). Nil = free.
	RecvCost func(msg any, size int) time.Duration
}

// AnyNode is a wildcard endpoint for link-fault rules: a rule keyed with
// AnyNode on one side applies to every node on that side.
const AnyNode NodeID = -1

// LinkFault describes adversarial behavior injected on a directed link
// (the chaos harness's per-link drop/duplicate/reorder windows).
type LinkFault struct {
	// Drop is the probability a message on the link is silently dropped.
	Drop float64
	// Duplicate is the probability a message is delivered twice; the
	// copy takes an independent jittered delay, so duplicates also
	// arrive reordered relative to the original.
	Duplicate float64
	// ReorderJitter adds a uniform random extra delay in [0,ReorderJitter)
	// per message, scrambling delivery order on the link.
	ReorderJitter time.Duration
	// ExtraDelay is a fixed additional delay (link degradation).
	ExtraDelay time.Duration
}

// zero reports whether the fault injects nothing.
func (f LinkFault) zero() bool {
	return f.Drop == 0 && f.Duplicate == 0 && f.ReorderJitter == 0 && f.ExtraDelay == 0
}

// Injection is one delivery produced by a Corrupter in place of an
// intercepted send. To may differ from the original recipient (redirect),
// Msg may differ from the original payload (mutation, equivocation), and
// Delay postpones the delivery relative to normal send timing (replay of
// stale messages).
type Injection struct {
	To    NodeID
	Msg   any
	Size  int
	Delay time.Duration
}

// Corrupter models a Byzantine node at the boundary between the process
// and the wire: the protocol engine stays honest, but every outbound
// message passes through the corrupter, which decides what actually goes
// on the network. Returning nil suppresses the message (silent-but-alive
// replica), a single unchanged entry passes it through, several entries
// replay or multicast it, and per-recipient payload differences
// equivocate. Corrupt runs on the simulator's single logical thread, at
// the virtual time of the send.
type Corrupter interface {
	Corrupt(to NodeID, msg any, size int) []Injection
}

// CorruptFunc adapts a function to the Corrupter interface.
type CorruptFunc func(to NodeID, msg any, size int) []Injection

// Corrupt implements Corrupter.
func (f CorruptFunc) Corrupt(to NodeID, msg any, size int) []Injection {
	return f(to, msg, size)
}

// PassThrough is the identity injection list for an intercepted send:
// deliver the original message to the original recipient unchanged.
func PassThrough(to NodeID, msg any, size int) []Injection {
	return []Injection{{To: to, Msg: msg, Size: size}}
}

// Network delivers messages between registered nodes over the modeled WAN.
type Network struct {
	sched    *Scheduler
	cfg      Config
	handlers map[NodeID]Handler
	regionOf map[NodeID]int
	crashed  map[NodeID]bool
	straggle map[NodeID]time.Duration
	partOf   map[NodeID]int           // partition group; groups can't talk
	busy     map[NodeID]time.Duration // CPU-busy horizon per node
	faults   map[[2]NodeID]LinkFault  // directed link → injected fault
	corrupt  map[NodeID]Corrupter     // Byzantine outbound interception
	observe  map[NodeID]Observer      // compromised-process inbound taps

	// Stats.
	MsgsSent      uint64
	MsgsDropped   uint64
	MsgsDuped     uint64
	BytesSent     uint64
	MsgsCorrupted uint64 // sends intercepted by a Corrupter
}

// NewNetwork builds a network over a scheduler.
func NewNetwork(sched *Scheduler, cfg Config) (*Network, error) {
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("sim: Regions must be positive")
	}
	if len(cfg.BaseLatency) != cfg.Regions {
		return nil, fmt.Errorf("sim: BaseLatency is %d rows, want %d", len(cfg.BaseLatency), cfg.Regions)
	}
	for i, row := range cfg.BaseLatency {
		if len(row) != cfg.Regions {
			return nil, fmt.Errorf("sim: BaseLatency row %d has %d cols, want %d", i, len(row), cfg.Regions)
		}
	}
	return &Network{
		sched:    sched,
		cfg:      cfg,
		handlers: make(map[NodeID]Handler),
		regionOf: make(map[NodeID]int),
		crashed:  make(map[NodeID]bool),
		straggle: make(map[NodeID]time.Duration),
		partOf:   make(map[NodeID]int),
		busy:     make(map[NodeID]time.Duration),
		faults:   make(map[[2]NodeID]LinkFault),
		corrupt:  make(map[NodeID]Corrupter),
		observe:  make(map[NodeID]Observer),
	}, nil
}

// Register attaches a handler for a node placed in a region.
func (n *Network) Register(id NodeID, region int, h Handler) error {
	if region < 0 || region >= n.cfg.Regions {
		return fmt.Errorf("sim: region %d out of range [0,%d)", region, n.cfg.Regions)
	}
	if _, dup := n.handlers[id]; dup {
		return fmt.Errorf("sim: node %d already registered", id)
	}
	n.handlers[id] = h
	n.regionOf[id] = region
	return nil
}

// Reattach replaces the handler of an already-registered node, keeping its
// region. It is the restart hook: a replica rebuilt from storage takes over
// its predecessor's network identity. Messages already in flight to the
// node deliver to the new handler.
func (n *Network) Reattach(id NodeID, h Handler) error {
	if _, ok := n.handlers[id]; !ok {
		return fmt.Errorf("sim: node %d not registered", id)
	}
	n.handlers[id] = h
	return nil
}

// Crash marks a node as crashed: it neither sends nor receives.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Recover clears the crash flag.
func (n *Network) Recover(id NodeID) { delete(n.crashed, id) }

// Crashed reports whether a node is crashed.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// SetStraggler adds a fixed extra delay to every message to or from id,
// modeling the paper's slow replicas (ingredient 4 evaluation).
func (n *Network) SetStraggler(id NodeID, extra time.Duration) {
	if extra <= 0 {
		delete(n.straggle, id)
		return
	}
	n.straggle[id] = extra
}

// SetPartition places a node into a partition group; messages between
// different non-zero groups are dropped. Group 0 talks to everyone.
func (n *Network) SetPartition(id NodeID, group int) {
	if group == 0 {
		delete(n.partOf, id)
		return
	}
	n.partOf[id] = group
}

// HealPartitions returns every node to partition group 0.
func (n *Network) HealPartitions() {
	n.partOf = make(map[NodeID]int)
}

// SetLinkFault installs a fault rule on the directed link from → to.
// Either endpoint may be AnyNode as a wildcard. A zero fault clears the
// rule. The most specific rule wins: (from,to) before (from,Any) before
// (Any,to).
func (n *Network) SetLinkFault(from, to NodeID, f LinkFault) {
	key := [2]NodeID{from, to}
	if f.zero() {
		delete(n.faults, key)
		return
	}
	n.faults[key] = f
}

// ClearLinkFaults removes every link-fault rule.
func (n *Network) ClearLinkFaults() {
	n.faults = make(map[[2]NodeID]LinkFault)
}

// linkFaultFor resolves the active fault rule for a directed link.
func (n *Network) linkFaultFor(from, to NodeID) (LinkFault, bool) {
	if len(n.faults) == 0 {
		return LinkFault{}, false
	}
	for _, key := range [...][2]NodeID{{from, to}, {from, AnyNode}, {AnyNode, to}, {AnyNode, AnyNode}} {
		if f, ok := n.faults[key]; ok {
			return f, true
		}
	}
	return LinkFault{}, false
}

// Latency returns the modeled one-way delay for a message of `size` bytes
// from one node to another, excluding jitter.
func (n *Network) Latency(from, to NodeID, size int) time.Duration {
	d := n.cfg.BaseLatency[n.regionOf[from]][n.regionOf[to]]
	if n.cfg.BandwidthBps > 0 {
		d += time.Duration(float64(size) / n.cfg.BandwidthBps * float64(time.Second))
	}
	d += n.straggle[from] + n.straggle[to]
	return d
}

// SetCorrupter installs a Byzantine outbound interceptor on a node; every
// subsequent Send from that node is replaced by whatever the corrupter
// returns. A nil corrupter clears the interception (the node's outbound
// traffic is honest again; its internal state was never touched).
func (n *Network) SetCorrupter(id NodeID, c Corrupter) {
	if c == nil {
		delete(n.corrupt, id)
		return
	}
	n.corrupt[id] = c
}

// Corrupted reports whether a node currently has a corrupter installed.
func (n *Network) Corrupted(id NodeID) bool { return n.corrupt[id] != nil }

// Observer is a read-only inbound wiretap on a node: it sees every message
// the node receives, at arrival time, before the node's handler runs.
// Corrupters model a compromised process at its outbound boundary; the
// observer is the inbound half of the same compromise — a colluding
// adversary that extracts what the victim process learns (e.g. threshold
// signature shares addressed to a corrupted collector). Observers must not
// mutate the message.
type Observer func(from NodeID, msg any)

// SetObserver installs (or, with nil, clears) the inbound wiretap on a
// node. Observation runs at delivery time even while the message is still
// queued behind the receiver's CPU — the wire is tapped, not the handler.
func (n *Network) SetObserver(id NodeID, o Observer) {
	if o == nil {
		delete(n.observe, id)
		return
	}
	n.observe[id] = o
}

// Inject sends a fabricated message from → to through the physical network
// model, bypassing any corrupter on the sender. It is the adversary's raw
// transmit path: a colluder coordinator uses it to emit jointly-forged
// artifacts (combined threshold signatures) as one of its members. The
// injection is still subject to crash, partition, link-fault, CPU-cost and
// latency modeling, so forged traffic competes with honest traffic on
// equal footing.
func (n *Network) Inject(from, to NodeID, msg any, size int) {
	n.sendRaw(from, to, msg, size, 0)
}

// Send schedules delivery of msg from → to. size is the wire size estimate
// used for bandwidth modeling and statistics. If the sender has a
// Corrupter installed, the corrupter's injections are sent instead (each
// subject to the same crash/partition/link-fault model; injections do not
// re-enter the corrupter).
func (n *Network) Send(from, to NodeID, msg any, size int) {
	if c := n.corrupt[from]; c != nil && !n.crashed[from] {
		n.MsgsCorrupted++
		for _, inj := range c.Corrupt(to, msg, size) {
			n.sendRaw(from, inj.To, inj.Msg, inj.Size, inj.Delay)
		}
		return
	}
	n.sendRaw(from, to, msg, size, 0)
}

// sendRaw is the physical send path: the network model applied to one
// delivery, bypassing any corrupter on the sender.
func (n *Network) sendRaw(from, to NodeID, msg any, size int, extra time.Duration) {
	if n.crashed[from] || n.crashed[to] {
		n.MsgsDropped++
		return
	}
	if gf, gt := n.partOf[from], n.partOf[to]; gf != 0 && gt != 0 && gf != gt {
		n.MsgsDropped++
		return
	}
	if n.cfg.DropRate > 0 && n.sched.rng.Float64() < n.cfg.DropRate {
		n.MsgsDropped++
		return
	}
	fault, faulty := n.linkFaultFor(from, to)
	if faulty && fault.Drop > 0 && n.sched.rng.Float64() < fault.Drop {
		n.MsgsDropped++
		return
	}
	n.MsgsSent++
	n.BytesSent += uint64(size)

	// Sender CPU: sends serialize on the sender, so a broadcast's k-th
	// message departs after k send costs.
	now := n.sched.Now()
	departure := now
	if n.cfg.SendCost != nil {
		if n.busy[from] > departure {
			departure = n.busy[from]
		}
		departure += n.cfg.SendCost(msg, size)
		n.busy[from] = departure
	}

	base := departure - now + n.Latency(from, to, size) + extra
	if faulty {
		base += fault.ExtraDelay
	}
	n.scheduleDelivery(from, to, msg, size, n.perturb(base, fault, faulty))
	if faulty && fault.Duplicate > 0 && n.sched.rng.Float64() < fault.Duplicate {
		// The copy takes an independent jittered delay: duplicated AND
		// possibly reordered relative to the original.
		n.MsgsDuped++
		n.scheduleDelivery(from, to, msg, size, n.perturb(base, fault, faulty))
	}
}

// perturb adds the configured network jitter plus any link reorder jitter
// to a base delay.
func (n *Network) perturb(d time.Duration, fault LinkFault, faulty bool) time.Duration {
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.sched.rng.Int63n(int64(n.cfg.Jitter)))
	}
	if faulty && fault.ReorderJitter > 0 {
		d += time.Duration(n.sched.rng.Int63n(int64(fault.ReorderJitter)))
	}
	return d
}

// scheduleDelivery schedules one delivery attempt after delay d, applying
// receiver crash state and CPU cost at delivery time.
func (n *Network) scheduleDelivery(from, to NodeID, msg any, size int, d time.Duration) {
	n.sched.Schedule(d, func() {
		if n.crashed[to] {
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			return
		}
		if o := n.observe[to]; o != nil {
			o(from, msg)
		}
		if n.cfg.RecvCost == nil {
			h.Deliver(from, msg)
			return
		}
		// Receiver CPU: arrivals queue behind the node's busy horizon.
		start := n.sched.Now()
		if n.busy[to] > start {
			start = n.busy[to]
		}
		fin := start + n.cfg.RecvCost(msg, size)
		n.busy[to] = fin
		n.sched.Schedule(fin-n.sched.Now(), func() {
			if n.crashed[to] {
				return
			}
			h.Deliver(from, msg)
		})
	})
}

// Scheduler exposes the underlying scheduler (for timers).
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Region reports the region of a node.
func (n *Network) Region(id NodeID) int { return n.regionOf[id] }
