// Package sim is a deterministic discrete-event network simulator
// standing in for the paper's geo-replicated WAN deployments (§IX; the
// substitution is documented in DESIGN.md). Protocol nodes are sans-io
// event machines; the simulator owns virtual time and, reproducibly from
// a seed, delivers messages with region-to-region latency, jitter,
// bandwidth-proportional serialization delay and per-message CPU service
// time, fires timers, and injects faults.
//
// # Fault surface
//
//   - Crash/Recover and Reattach (replace a node's handler mid-run, the
//     restart-from-storage hook).
//   - Partitions (group-based) and per-node stragglers.
//   - LinkFault rules per directed link, wildcard-able: probabilistic
//     drop, duplication, and reorder jitter (§II network model).
//   - Corrupter: per-node OUTBOUND message interception at the
//     process/wire boundary — the Byzantine adversary hook. The engine
//     object stays honest; its traffic can be equivocated, mutated,
//     replayed, redirected or suppressed, deterministically.
//   - Adversary: a timed script driver (Do, CorrupterWindow) for
//     arming/clearing all of the above at virtual times.
//
// Figures 2 and 3 of the paper depend on message counts, quorum waiting
// and latency distributions, which this model reproduces; absolute
// throughput also depends on crypto CPU cost, which callers model as
// service time via Config.SendCost/RecvCost (see cluster.CostModel).
//
// Determinism contract: one logical thread runs every Deliver and timer
// callback; all randomness flows from Config.Seed. The same seed and
// schedule replay bit-for-bit, which is what makes a failing chaos seed
// a complete reproduction recipe.
package sim
