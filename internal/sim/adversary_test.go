package sim

import (
	"testing"
	"time"
)

// countHandler records deliveries with their arrival times.
type countHandler struct {
	got []time.Duration
}

func (h *countHandler) Deliver(from NodeID, msg any) {
	// The scheduler time is read by the test after running; arrival times
	// are appended by the wrapper below.
}

type timeHandler struct {
	sched *Scheduler
	got   *[]time.Duration
}

func (h timeHandler) Deliver(from NodeID, msg any) {
	*h.got = append(*h.got, h.sched.Now())
}

func newTestNet(t *testing.T, seed int64) (*Scheduler, *Network) {
	t.Helper()
	sched := NewScheduler(seed)
	net, err := NewNetwork(sched, UniformProfile(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return sched, net
}

func TestLinkFaultDropAll(t *testing.T) {
	sched, net := newTestNet(t, 1)
	var got []time.Duration
	net.Register(1, 0, timeHandler{sched, &got})
	net.Register(2, 0, timeHandler{sched, &got})
	net.SetLinkFault(1, 2, LinkFault{Drop: 1})
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i, 10)
	}
	net.Send(2, 1, "back", 10) // reverse direction unaffected
	sched.Run(0, 0)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want only the reverse-direction one", len(got))
	}
	if net.MsgsDropped != 10 {
		t.Fatalf("MsgsDropped = %d, want 10", net.MsgsDropped)
	}
}

func TestLinkFaultDuplicate(t *testing.T) {
	sched, net := newTestNet(t, 2)
	var got []time.Duration
	net.Register(1, 0, timeHandler{sched, &got})
	net.Register(2, 0, timeHandler{sched, &got})
	net.SetLinkFault(1, 2, LinkFault{Duplicate: 1, ReorderJitter: time.Millisecond})
	for i := 0; i < 5; i++ {
		net.Send(1, 2, i, 10)
	}
	sched.Run(0, 0)
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10 (every one duplicated)", len(got))
	}
	if net.MsgsDuped != 5 {
		t.Fatalf("MsgsDuped = %d, want 5", net.MsgsDuped)
	}
}

func TestLinkFaultWildcard(t *testing.T) {
	sched, net := newTestNet(t, 3)
	var got []time.Duration
	for id := NodeID(1); id <= 3; id++ {
		net.Register(id, 0, timeHandler{sched, &got})
	}
	// Isolate node 1's outbound entirely via the wildcard.
	net.SetLinkFault(1, AnyNode, LinkFault{Drop: 1})
	net.Send(1, 2, "a", 1)
	net.Send(1, 3, "b", 1)
	net.Send(2, 1, "c", 1)
	sched.Run(0, 0)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1 (only 2→1)", len(got))
	}
	// A specific rule overrides the wildcard.
	net.SetLinkFault(1, 2, LinkFault{ExtraDelay: time.Microsecond})
	got = got[:0]
	net.Send(1, 2, "d", 1)
	sched.Run(0, 0)
	if len(got) != 1 {
		t.Fatalf("specific rule did not override wildcard drop")
	}
	// Clearing restores normal delivery.
	net.ClearLinkFaults()
	got = got[:0]
	net.Send(1, 3, "e", 1)
	sched.Run(0, 0)
	if len(got) != 1 {
		t.Fatalf("link fault survived ClearLinkFaults")
	}
	// The all-links wildcard (AnyNode → AnyNode) applies to every link.
	net.SetLinkFault(AnyNode, AnyNode, LinkFault{Duplicate: 1})
	got = got[:0]
	net.Send(2, 3, "f", 1)
	net.Send(3, 1, "g", 1)
	sched.Run(0, 0)
	if len(got) != 4 {
		t.Fatalf("all-links duplicate delivered %d, want 4", len(got))
	}
}

func TestAdversaryTimedWindows(t *testing.T) {
	sched, net := newTestNet(t, 4)
	var got []time.Duration
	net.Register(1, 0, timeHandler{sched, &got})
	net.Register(2, 0, timeHandler{sched, &got})
	adv := NewAdversary(net)
	// Crash node 2 in [10ms, 20ms); sender probes every 5ms.
	adv.CrashAt(10*time.Millisecond, 2)
	adv.RecoverAt(20*time.Millisecond, 2)
	for i := 0; i < 6; i++ {
		d := time.Duration(i) * 5 * time.Millisecond
		sched.Schedule(d, func() { net.Send(1, 2, "tick", 1) })
	}
	sched.Run(0, 0)
	// Sends at 0,5 delivered; at 10,15 crashed; at 20,25 delivered.
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4 (crash window suppressed 2)", len(got))
	}
	for _, at := range got {
		if at >= 10*time.Millisecond && at < 20*time.Millisecond {
			t.Fatalf("delivery inside crash window at %v", at)
		}
	}
}

func TestAdversaryPartitionWindow(t *testing.T) {
	sched, net := newTestNet(t, 5)
	var got []time.Duration
	net.Register(1, 0, timeHandler{sched, &got})
	net.Register(2, 0, timeHandler{sched, &got})
	adv := NewAdversary(net)
	adv.PartitionWindow(5*time.Millisecond, 15*time.Millisecond, map[NodeID]int{1: 1, 2: 2})
	for i := 0; i < 4; i++ {
		d := time.Duration(i) * 6 * time.Millisecond
		sched.Schedule(d, func() { net.Send(1, 2, "tick", 1) })
	}
	sched.Run(0, 0)
	// Sends at 0 and 18ms pass; 6ms and 12ms are inside the partition.
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
}
