package sim

import (
	"testing"
	"time"
)

type recorder struct {
	got []delivery
}

type delivery struct {
	from NodeID
	msg  any
	at   time.Duration
}

func (r *recorder) Deliver(from NodeID, msg any) {
	r.got = append(r.got, delivery{from: from, msg: msg})
}

func newUniformNet(t *testing.T, delay time.Duration, nodes int) (*Network, []*recorder) {
	t.Helper()
	sched := NewScheduler(1)
	net, err := NewNetwork(sched, UniformProfile(delay))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{}
		if err := net.Register(NodeID(i), 0, recs[i]); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	return net, recs
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run(0, 0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(0, 0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	cancel := s.Schedule(time.Millisecond, func() { fired = true })
	cancel()
	s.Run(0, 0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancel after fire is a no-op.
	c2 := s.Schedule(time.Millisecond, func() {})
	s.Run(0, 0)
	c2()
}

func TestSchedulerTimeHorizon(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	s.Schedule(10*time.Millisecond, func() { ran++ })
	s.Schedule(100*time.Millisecond, func() { ran++ })
	n := s.Run(50*time.Millisecond, 0)
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if s.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v, want horizon 50ms", s.Now())
	}
	// Remaining event still runs afterwards.
	s.Run(0, 0)
	if ran != 2 {
		t.Fatal("event beyond horizon lost")
	}
}

func TestSchedulerMaxEvents(t *testing.T) {
	s := NewScheduler(1)
	var self func()
	n := 0
	self = func() {
		n++
		s.Schedule(time.Millisecond, self)
	}
	s.Schedule(0, self)
	s.Run(0, 100)
	if n != 100 {
		t.Fatalf("ran %d events, want capped 100", n)
	}
}

func TestNetworkDelivery(t *testing.T) {
	net, recs := newUniformNet(t, 10*time.Millisecond, 2)
	net.Send(0, 1, "hello", 100)
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(recs[1].got))
	}
	if recs[1].got[0].msg != "hello" || recs[1].got[0].from != 0 {
		t.Fatalf("delivery = %+v", recs[1].got[0])
	}
	if net.Scheduler().Now() != 10*time.Millisecond {
		t.Fatalf("delivery time = %v, want 10ms", net.Scheduler().Now())
	}
}

func TestNetworkCrash(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 3)
	net.Crash(1)
	net.Send(0, 1, "to-crashed", 10)
	net.Send(1, 2, "from-crashed", 10)
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 0 || len(recs[2].got) != 0 {
		t.Fatal("crashed node participated in delivery")
	}
	if net.MsgsDropped != 2 {
		t.Fatalf("MsgsDropped = %d, want 2", net.MsgsDropped)
	}
	net.Recover(1)
	net.Send(0, 1, "after-recover", 10)
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 1 {
		t.Fatal("recovered node did not receive")
	}
}

func TestNetworkCrashMidFlight(t *testing.T) {
	net, recs := newUniformNet(t, 10*time.Millisecond, 2)
	net.Send(0, 1, "in-flight", 10)
	// Crash the receiver before delivery time.
	net.Scheduler().Schedule(5*time.Millisecond, func() { net.Crash(1) })
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 0 {
		t.Fatal("message delivered to node crashed mid-flight")
	}
}

func TestNetworkStraggler(t *testing.T) {
	net, recs := newUniformNet(t, 10*time.Millisecond, 2)
	net.SetStraggler(1, 50*time.Millisecond)
	net.Send(0, 1, "slow", 10)
	net.Scheduler().Run(0, 0)
	if got := recs[1].got; len(got) != 1 {
		t.Fatal("straggler lost message")
	}
	if net.Scheduler().Now() != 60*time.Millisecond {
		t.Fatalf("straggler delivery at %v, want 60ms", net.Scheduler().Now())
	}
	net.SetStraggler(1, 0) // clear
	net.Send(0, 1, "fast", 10)
	start := net.Scheduler().Now()
	net.Scheduler().Run(0, 0)
	if net.Scheduler().Now()-start != 10*time.Millisecond {
		t.Fatal("straggler penalty not cleared")
	}
}

func TestNetworkPartition(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 3)
	net.SetPartition(0, 1)
	net.SetPartition(1, 2)
	// 0 and 1 are in different groups: blocked. 2 is group 0: talks to all.
	net.Send(0, 1, "blocked", 10)
	net.Send(0, 2, "ok", 10)
	net.Send(2, 1, "ok", 10)
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 1 {
		t.Fatalf("node1 deliveries = %d, want 1 (from node2 only)", len(recs[1].got))
	}
	if len(recs[2].got) != 1 {
		t.Fatalf("node2 deliveries = %d, want 1", len(recs[2].got))
	}
	net.SetPartition(0, 0)
	net.Send(0, 1, "healed", 10)
	net.Scheduler().Run(0, 0)
	if len(recs[1].got) != 2 {
		t.Fatal("healed partition still blocks")
	}
}

func TestNetworkBandwidth(t *testing.T) {
	sched := NewScheduler(1)
	cfg := UniformProfile(0)
	cfg.BandwidthBps = 1000 // 1000 B/s
	net, err := NewNetwork(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &recorder{}
	net.Register(0, 0, &recorder{})
	net.Register(1, 0, r)
	net.Send(0, 1, "big", 500) // 500 B at 1000 B/s = 500ms
	sched.Run(0, 0)
	if sched.Now() != 500*time.Millisecond {
		t.Fatalf("serialization delay: delivered at %v, want 500ms", sched.Now())
	}
}

func TestNetworkDrops(t *testing.T) {
	sched := NewScheduler(42)
	cfg := UniformProfile(time.Millisecond)
	cfg.DropRate = 0.5
	net, err := NewNetwork(sched, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &recorder{}
	net.Register(0, 0, &recorder{})
	net.Register(1, 0, r)
	const total = 1000
	for i := 0; i < total; i++ {
		net.Send(0, 1, i, 10)
	}
	sched.Run(0, 0)
	got := len(r.got)
	if got < 350 || got > 650 {
		t.Fatalf("with 50%% drop, delivered %d of %d", got, total)
	}
	if net.MsgsDropped+net.MsgsSent != total {
		t.Fatalf("drop accounting: %d + %d != %d", net.MsgsDropped, net.MsgsSent, total)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (uint64, time.Duration) {
		sched := NewScheduler(7)
		cfg := ContinentProfile(7)
		cfg.DropRate = 0.1
		net, err := NewNetwork(sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := &recorder{}
		for i := 0; i < 10; i++ {
			h := Handler(&recorder{})
			if i == 9 {
				h = r
			}
			net.Register(NodeID(i), i%ContinentRegions, h)
		}
		for i := 0; i < 200; i++ {
			net.Send(NodeID(i%9), 9, i, 64+i)
		}
		sched.Run(0, 0)
		return uint64(len(r.got)), sched.Now()
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("simulation not deterministic: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}

func TestRegisterValidation(t *testing.T) {
	sched := NewScheduler(1)
	net, _ := NewNetwork(sched, UniformProfile(0))
	if err := net.Register(0, 5, &recorder{}); err == nil {
		t.Fatal("out-of-range region accepted")
	}
	if err := net.Register(0, 0, &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Register(0, 0, &recorder{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	sched := NewScheduler(1)
	if _, err := NewNetwork(sched, Config{Regions: 0}); err == nil {
		t.Fatal("zero regions accepted")
	}
	if _, err := NewNetwork(sched, Config{Regions: 2, BaseLatency: [][]time.Duration{{0}}}); err == nil {
		t.Fatal("wrong matrix shape accepted")
	}
	if _, err := NewNetwork(sched, Config{Regions: 1, BaseLatency: [][]time.Duration{{0, 0}}}); err == nil {
		t.Fatal("wrong row length accepted")
	}
}

func TestProfiles(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     Config
		regions int
	}{
		{"continent", ContinentProfile(3), ContinentRegions},
		{"world", WorldProfile(3), WorldRegions},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.Regions != tc.regions {
				t.Fatalf("Regions = %d", tc.cfg.Regions)
			}
			for i := 0; i < tc.regions; i++ {
				for j := 0; j < tc.regions; j++ {
					d := tc.cfg.BaseLatency[i][j]
					if d <= 0 {
						t.Fatalf("latency[%d][%d] = %v", i, j, d)
					}
					if d != tc.cfg.BaseLatency[j][i] {
						t.Fatalf("latency asymmetric at (%d,%d)", i, j)
					}
				}
			}
			// Determinism.
			var again Config
			if tc.name == "continent" {
				again = ContinentProfile(3)
			} else {
				again = WorldProfile(3)
			}
			for i := range tc.cfg.BaseLatency {
				for j := range tc.cfg.BaseLatency[i] {
					if tc.cfg.BaseLatency[i][j] != again.BaseLatency[i][j] {
						t.Fatal("profile not deterministic")
					}
				}
			}
		})
	}
}

func TestWorldSlowerThanContinent(t *testing.T) {
	c, w := ContinentProfile(1), WorldProfile(1)
	avg := func(cfg Config) time.Duration {
		var sum time.Duration
		var n int
		for i := range cfg.BaseLatency {
			for j := range cfg.BaseLatency[i] {
				if i != j {
					sum += cfg.BaseLatency[i][j]
					n++
				}
			}
		}
		return sum / time.Duration(n)
	}
	if avg(w) <= avg(c) {
		t.Fatalf("world avg %v not slower than continent avg %v", avg(w), avg(c))
	}
}
