package sim

import (
	"testing"
	"time"
)

// TestCorrupterSuppresses models a silent-but-alive node: every outbound
// send is swallowed, while inbound delivery still works.
func TestCorrupterSuppresses(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 3)
	net.SetCorrupter(0, CorruptFunc(func(NodeID, any, int) []Injection { return nil }))

	net.Send(0, 1, "gone", 10)
	net.Send(2, 0, "heard", 10)
	net.Scheduler().Run(0, 0)

	if len(recs[1].got) != 0 {
		t.Fatalf("suppressed send delivered: %v", recs[1].got)
	}
	if len(recs[0].got) != 1 || recs[0].got[0].msg != "heard" {
		t.Fatalf("inbound delivery to corrupted node broken: %v", recs[0].got)
	}
	if net.MsgsCorrupted != 1 {
		t.Fatalf("MsgsCorrupted = %d, want 1", net.MsgsCorrupted)
	}
}

// TestCorrupterEquivocates rewrites the payload per recipient: node 1
// sees the original, node 2 a conflicting variant.
func TestCorrupterEquivocates(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 3)
	net.SetCorrupter(0, CorruptFunc(func(to NodeID, msg any, size int) []Injection {
		if to == 2 {
			return []Injection{{To: to, Msg: "evil", Size: size}}
		}
		return PassThrough(to, msg, size)
	}))

	net.Send(0, 1, "honest", 10)
	net.Send(0, 2, "honest", 10)
	net.Scheduler().Run(0, 0)

	if len(recs[1].got) != 1 || recs[1].got[0].msg != "honest" {
		t.Fatalf("node 1 got %v, want honest", recs[1].got)
	}
	if len(recs[2].got) != 1 || recs[2].got[0].msg != "evil" {
		t.Fatalf("node 2 got %v, want evil", recs[2].got)
	}
}

// TestCorrupterReplaysAndRedirects one send into several deliveries,
// including a delayed replay and a redirect to a third node.
func TestCorrupterReplaysAndRedirects(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 3)
	net.SetCorrupter(0, CorruptFunc(func(to NodeID, msg any, size int) []Injection {
		return []Injection{
			{To: to, Msg: msg, Size: size},
			{To: to, Msg: msg, Size: size, Delay: 5 * time.Millisecond},
			{To: 2, Msg: "leak", Size: size},
		}
	}))

	net.Send(0, 1, "m", 10)
	net.Scheduler().Run(0, 0)

	if len(recs[1].got) != 2 {
		t.Fatalf("node 1 got %d deliveries, want original + replay", len(recs[1].got))
	}
	if len(recs[2].got) != 1 || recs[2].got[0].msg != "leak" {
		t.Fatalf("redirect missing: %v", recs[2].got)
	}
}

// TestCorrupterClearedRestoresHonestTraffic and respects crash state: a
// crashed corrupted node sends nothing at all.
func TestCorrupterClearedRestoresHonestTraffic(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 2)
	net.SetCorrupter(0, CorruptFunc(func(NodeID, any, int) []Injection { return nil }))
	if !net.Corrupted(0) {
		t.Fatal("Corrupted(0) = false after install")
	}

	net.Crash(0)
	net.Send(0, 1, "while-crashed", 10)
	net.Recover(0)
	net.SetCorrupter(0, nil)
	if net.Corrupted(0) {
		t.Fatal("Corrupted(0) = true after clear")
	}
	net.Send(0, 1, "honest-again", 10)
	net.Scheduler().Run(0, 0)

	if len(recs[1].got) != 1 || recs[1].got[0].msg != "honest-again" {
		t.Fatalf("got %v, want exactly honest-again", recs[1].got)
	}
}

// TestAdversaryCorrupterWindow schedules install/clear at virtual times.
func TestAdversaryCorrupterWindow(t *testing.T) {
	net, recs := newUniformNet(t, time.Millisecond, 2)
	adv := NewAdversary(net)
	adv.CorrupterWindow(10*time.Millisecond, 20*time.Millisecond, 0,
		CorruptFunc(func(NodeID, any, int) []Injection { return nil }))

	sched := net.Scheduler()
	sched.Schedule(5*time.Millisecond, func() { net.Send(0, 1, "before", 1) })
	sched.Schedule(15*time.Millisecond, func() { net.Send(0, 1, "during", 1) })
	sched.Schedule(25*time.Millisecond, func() { net.Send(0, 1, "after", 1) })
	sched.Run(0, 0)

	if len(recs[1].got) != 2 {
		t.Fatalf("got %d deliveries, want 2 (window send suppressed): %v", len(recs[1].got), recs[1].got)
	}
	if recs[1].got[0].msg != "before" || recs[1].got[1].msg != "after" {
		t.Fatalf("wrong survivors: %v", recs[1].got)
	}
}
