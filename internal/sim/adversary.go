// Timed adversary: a scripted fault injector on top of the seeded
// Scheduler. Where Network's Crash/SetPartition/SetLinkFault mutate the
// fault state immediately, the Adversary schedules those mutations at
// virtual times, so a test can declare "partition the primary at t=2s,
// heal at t=5s" up front and replay it deterministically from the seed.
package sim

import "time"

// Adversary schedules fault transitions against a network. All methods
// take absolute virtual times (not delays), so schedules read like the
// fault timelines in the paper's experiments (§IX).
type Adversary struct {
	net *Network
}

// NewAdversary returns an adversary over a network.
func NewAdversary(net *Network) *Adversary {
	return &Adversary{net: net}
}

// at schedules fn at absolute virtual time t (immediately if t has passed).
func (a *Adversary) at(t time.Duration, fn func()) {
	d := t - a.net.sched.Now()
	if d < 0 {
		d = 0
	}
	a.net.sched.Schedule(d, fn)
}

// CrashAt crashes a node at time t.
func (a *Adversary) CrashAt(t time.Duration, id NodeID) {
	a.at(t, func() { a.net.Crash(id) })
}

// RecoverAt clears a node's crash flag at time t.
func (a *Adversary) RecoverAt(t time.Duration, id NodeID) {
	a.at(t, func() { a.net.Recover(id) })
}

// PartitionWindow places nodes into partition groups at `from` and heals
// all partitions at `until` (0 = never heal).
func (a *Adversary) PartitionWindow(from, until time.Duration, groups map[NodeID]int) {
	a.at(from, func() {
		for id, g := range groups {
			a.net.SetPartition(id, g)
		}
	})
	if until > 0 {
		a.at(until, a.net.HealPartitions)
	}
}

// StragglerWindow slows a node by extra between from and until (0 = keep).
func (a *Adversary) StragglerWindow(from, until time.Duration, id NodeID, extra time.Duration) {
	a.at(from, func() { a.net.SetStraggler(id, extra) })
	if until > 0 {
		a.at(until, func() { a.net.SetStraggler(id, 0) })
	}
}

// LinkFaultWindow applies a drop/duplicate/reorder fault on the directed
// link fromNode → toNode (either may be AnyNode) between from and until
// (0 = keep).
func (a *Adversary) LinkFaultWindow(from, until time.Duration, fromNode, toNode NodeID, f LinkFault) {
	a.at(from, func() { a.net.SetLinkFault(fromNode, toNode, f) })
	if until > 0 {
		a.at(until, func() { a.net.SetLinkFault(fromNode, toNode, LinkFault{}) })
	}
}

// CorrupterWindow installs a Byzantine outbound interceptor on a node at
// `from` and clears it at `until` (0 = keep). While installed, every send
// of the node is rewritten by c (equivocation, mutation, replay,
// suppression); the node's internal state stays honest throughout.
func (a *Adversary) CorrupterWindow(from, until time.Duration, id NodeID, c Corrupter) {
	a.at(from, func() { a.net.SetCorrupter(id, c) })
	if until > 0 {
		a.at(until, func() { a.net.SetCorrupter(id, nil) })
	}
}

// Do schedules an arbitrary fault action at time t (escape hatch for
// transitions the helpers don't cover, e.g. replica restart).
func (a *Adversary) Do(t time.Duration, fn func()) {
	a.at(t, fn)
}
