package load

import (
	"testing"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
)

func buildCluster(t *testing.T, clients int, tune func(*core.Config)) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Options{
		Protocol:   cluster.ProtoSBFT,
		F:          1,
		Clients:    clients,
		Seed:       11,
		CryptoPool: 2,
		Tune:       tune,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestOpenLoopDeterministic(t *testing.T) {
	run := func() Result {
		cl := buildCluster(t, 16, nil)
		return Run(cl, Config{
			Rate:   400,
			Warmup: 200 * time.Millisecond,
			Window: 2 * time.Second,
			Drain:  time.Second,
			Seed:   5,
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("open-loop run not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if a.Completed == 0 || a.Offered == 0 {
		t.Fatalf("no progress: %+v", a)
	}
	if a.Completed > a.Offered {
		t.Fatalf("completed %d > offered %d", a.Completed, a.Offered)
	}
}

func TestOpenLoopShedsWhenPoolExhausted(t *testing.T) {
	// 2 client slots cannot carry 2000 req/s at WAN latencies: the free
	// list runs dry and arrivals shed instead of queueing unboundedly —
	// the open-loop generator must keep its own boundary finite.
	cl := buildCluster(t, 2, nil)
	res := Run(cl, Config{
		Rate:   2000,
		Warmup: 100 * time.Millisecond,
		Window: time.Second,
		Drain:  time.Second,
		Seed:   3,
	})
	if res.Dropped == 0 {
		t.Fatalf("no drops under 1000x overload: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("no completions under overload: %+v", res)
	}
}

func TestOpenLoopTriggersAdmissionControl(t *testing.T) {
	// A tiny pending cap under heavy open-loop load must produce BusyMsg
	// rejects at the primary and client backoffs — the §V-C admission
	// path exercised end-to-end rather than by unit injection.
	cl := buildCluster(t, 32, func(c *core.Config) {
		c.MaxPending = 2
		c.Batch = 2
	})
	res := Run(cl, Config{
		Rate:   800,
		Warmup: 100 * time.Millisecond,
		Window: 2 * time.Second,
		Drain:  2 * time.Second,
		Seed:   9,
	})
	var rejects uint64
	for _, r := range cl.Replicas {
		if r != nil {
			rejects += r.Metrics.AdmissionRejects
		}
	}
	if rejects == 0 {
		t.Fatalf("no admission rejects with MaxPending=2: %+v", res)
	}
	if res.Backpressure == 0 {
		t.Fatalf("clients saw no backpressure: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("no completions despite backpressure: %+v", res)
	}
}
