// Package load drives a simulated cluster with OPEN-loop request
// arrivals: a Poisson process of independent requests multiplexed over a
// pool of simulated clients, the standard methodology for measuring a
// server's saturation point. The closed loop (cluster.RunClosedLoop)
// can never overload the system — each client waits for its reply, so
// offered load self-limits to clients/latency. An open-loop generator
// keeps arriving at the configured rate regardless of completions, which
// is what exposes the event-loop verification bottleneck, exercises the
// §V-C admission-control rejects, and produces the paper-style
// throughput-vs-offered-load curves.
package load

import (
	"math/rand"
	"sort"
	"time"

	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the mean arrival rate in requests per second of virtual
	// time (Poisson: exponential inter-arrival gaps).
	Rate float64
	// Warmup precedes measurement: arrivals flow, nothing is recorded.
	Warmup time.Duration
	// Window is the measurement interval. Offered/Completed/latency
	// statistics cover arrivals inside it.
	Window time.Duration
	// Drain runs after arrivals stop so in-flight measured requests can
	// complete (their latencies still count).
	Drain time.Duration
	// Seed drives the arrival process (independent of the cluster seed).
	Seed int64
	// Gen produces the i-th operation of a client slot; nil uses a
	// globally unique KV-put workload (audit-safe).
	Gen cluster.OpGen
}

// Result summarizes one open-loop run.
type Result struct {
	// Offered counts arrivals inside the measurement window.
	Offered uint64
	// Submitted counts arrivals (any phase) handed to an idle client.
	Submitted uint64
	// Dropped counts window arrivals that found every client slot busy —
	// the generator's own saturation signal: once the system falls
	// behind, the finite multiplexing pool fills and arrivals shed.
	Dropped uint64
	// Completed counts window arrivals that finished (including during
	// the drain phase); CompletedAll counts completions from every
	// phase — the liveness ledger against Submitted.
	Completed    uint64
	CompletedAll uint64
	// Backpressure counts §V-C BusyMsg backoffs the clients absorbed.
	Backpressure uint64
	// FastAcks and Retries classify the completed operations.
	FastAcks uint64
	Retries  uint64
	// Throughput is Completed per second of measurement window.
	Throughput  float64
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
}

// Workload converts to the closed-loop result shape used by harness
// reports.
func (r Result) Workload(window time.Duration) cluster.WorkloadResult {
	return cluster.WorkloadResult{
		Completed:   r.Completed,
		Duration:    window,
		Throughput:  r.Throughput,
		MeanLatency: r.MeanLatency,
		P50Latency:  r.P50Latency,
		P95Latency:  r.P95Latency,
		FastAcks:    r.FastAcks,
		Retries:     r.Retries,
	}
}

// Book is the open-loop slot/shed/latency ledger: a free list of client
// slots, arrival accounting (offered / dropped / submitted) and
// completion accounting (completed / fast-ack / latency percentiles).
// It is shared by the simulated driver (Run, single-threaded on the
// virtual scheduler) and the real-TCP open-loop client (sbft-client
// -openloop), where completions arrive from shell goroutines — callers
// in that regime must serialize access with their own mutex; the Book
// itself stays lock-free so the simulator pays nothing.
type Book struct {
	slots     int
	free      []int
	counts    []int
	measured  []bool
	res       Result
	latencies []time.Duration
}

// NewBook returns a ledger over the given number of client slots, all
// idle.
func NewBook(slots int) *Book {
	b := &Book{
		slots:    slots,
		free:     make([]int, slots),
		counts:   make([]int, slots),
		measured: make([]bool, slots),
	}
	for i := range b.free {
		b.free[i] = i
	}
	return b
}

// Arrive records one arrival: it claims an idle slot (returning it and
// the slot's next op index) or sheds the arrival. Only inWindow arrivals
// count toward Offered/Dropped and the latency statistics — warmup and
// drain traffic flows unmeasured.
func (b *Book) Arrive(inWindow bool) (slot, opIndex int, ok bool) {
	if inWindow {
		b.res.Offered++
	}
	if len(b.free) == 0 {
		if inWindow {
			b.res.Dropped++
		}
		return 0, 0, false
	}
	slot = b.free[len(b.free)-1]
	b.free = b.free[:len(b.free)-1]
	b.measured[slot] = inWindow
	opIndex = b.counts[slot]
	b.counts[slot]++
	return slot, opIndex, true
}

// Submitted counts a claimed arrival successfully handed to its client.
func (b *Book) Submitted() { b.res.Submitted++ }

// Requeue returns a claimed slot whose submission failed.
func (b *Book) Requeue(slot int) { b.free = append(b.free, slot) }

// Complete frees the slot and records the completion (latency and
// classification count only if the slot's arrival was measured).
func (b *Book) Complete(slot int, latency time.Duration, fastAck, retried bool) {
	b.res.CompletedAll++
	if b.measured[slot] {
		b.res.Completed++
		b.latencies = append(b.latencies, latency)
		if fastAck {
			b.res.FastAcks++
		}
		if retried {
			b.res.Retries++
		}
	}
	b.free = append(b.free, slot)
}

// InFlight reports how many slots are currently claimed — the TCP
// driver's drain loop waits for this to reach zero.
func (b *Book) InFlight() int { return b.slots - len(b.free) }

// Finalize computes throughput over the measurement window and the
// latency percentiles, returning the finished ledger.
func (b *Book) Finalize(window time.Duration) Result {
	res := b.res
	if window > 0 {
		res.Throughput = float64(res.Completed) / window.Seconds()
	}
	if len(b.latencies) > 0 {
		sort.Slice(b.latencies, func(i, j int) bool { return b.latencies[i] < b.latencies[j] })
		var sum time.Duration
		for _, l := range b.latencies {
			sum += l
		}
		res.MeanLatency = sum / time.Duration(len(b.latencies))
		res.P50Latency = b.latencies[len(b.latencies)/2]
		res.P95Latency = b.latencies[pct(len(b.latencies), 0.95)]
		res.P99Latency = b.latencies[pct(len(b.latencies), 0.99)]
	}
	return res
}

// uniqueGen is the default audit-safe workload: every operation payload
// is globally unique (client slot × per-slot counter).
func uniqueGen(client, i int) []byte {
	return kvstore.Put(
		"ol/c"+itoa(client)+"/k"+itoa(i),
		[]byte("v"+itoa(i)))
}

// itoa avoids fmt in the arrival hot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Run drives the cluster open-loop. The cluster's clients are a free
// list: an arrival claims an idle client and submits through it; with no
// idle client the arrival is dropped (counted). cl.OnResult keeps firing
// for every completion, so the harness safety audit works unchanged.
// Everything runs in virtual time on the cluster's deterministic
// scheduler — same seed, same run.
func Run(cl *cluster.Cluster, cfg Config) Result {
	gen := cfg.Gen
	if gen == nil {
		gen = uniqueGen
	}
	rng := rand.New(rand.NewSource(cfg.Seed*0x9e3779b97f4a7c + 0x2545f4914f6cdd1d))
	sched := cl.Sched

	start := sched.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Window
	deadline := measureTo + cfg.Drain

	var busyBase uint64
	book := NewBook(len(cl.Clients))
	for ci, c := range cl.Clients {
		ci, c := ci, c
		busyBase += c.Backpressure
		c.SetOnResult(func(r core.Result) {
			book.Complete(ci, r.Latency, r.FastAck, r.Retried)
			if cl.OnResult != nil {
				cl.OnResult(c.ID(), r)
			}
		})
	}

	// The Poisson arrival chain: each arrival schedules the next.
	var arrive func()
	scheduleNext := func() {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.Rate)
		if sched.Now()+gap >= measureTo {
			return // arrivals stop at the window's end
		}
		sched.Schedule(gap, arrive)
	}
	arrive = func() {
		inWindow := sched.Now() >= measureFrom
		if ci, i, ok := book.Arrive(inWindow); ok {
			if err := cl.Clients[ci].Submit(gen(ci, i)); err != nil {
				book.Requeue(ci)
			} else {
				book.Submitted()
			}
		}
		scheduleNext()
	}
	if cfg.Rate > 0 && len(cl.Clients) > 0 {
		scheduleNext()
	}

	for sched.Now() < deadline {
		if sched.Run(deadline, 50_000) == 0 {
			break
		}
	}

	res := book.Finalize(cfg.Window)
	for _, c := range cl.Clients {
		res.Backpressure += c.Backpressure
	}
	res.Backpressure -= busyBase
	return res
}

// pct maps a percentile to the last index at or below it.
func pct(n int, p float64) int {
	i := int(float64(n)*p+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
