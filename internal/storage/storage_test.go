package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opts Options) (*Ledger, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

func TestAppendGetRoundTrip(t *testing.T) {
	l, _ := openTemp(t, Options{})
	payloads := [][]byte{[]byte("block one"), []byte(""), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := l.Append(uint64(i+1), p); err != nil {
			t.Fatalf("Append(%d): %v", i+1, err)
		}
	}
	for i, want := range payloads {
		got, err := l.Get(uint64(i + 1))
		if err != nil {
			t.Fatalf("Get(%d): %v", i+1, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) = %d bytes, want %d", i+1, len(got), len(want))
		}
	}
	if l.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", l.NextSeq())
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	l, _ := openTemp(t, Options{})
	if err := l.Append(2, []byte("x")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("Append(2) first: err=%v, want ErrOutOfOrder", err)
	}
	if err := l.Append(1, []byte("x")); err != nil {
		t.Fatalf("Append(1): %v", err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("Append(1) twice: err=%v, want ErrOutOfOrder", err)
	}
}

func TestGetMissing(t *testing.T) {
	l, _ := openTemp(t, Options{})
	if _, err := l.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.NextSeq() != 6 {
		t.Fatalf("recovered NextSeq = %d, want 6", l2.NextSeq())
	}
	got, err := l2.Get(3)
	if err != nil || string(got) != "payload-3" {
		t.Fatalf("Get(3) = %q, %v", got, err)
	}
	if err := l2.Append(6, []byte("resumed")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(seq, []byte("good")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: chop bytes off the tail.
	path := filepath.Join(dir, "blocks.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l2.Close()
	if l2.NextSeq() != 3 {
		t.Fatalf("NextSeq after torn tail = %d, want 3 (block 3 lost)", l2.NextSeq())
	}
	if _, err := l2.Get(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn block still readable: err=%v", err)
	}
	// Log accepts the lost sequence again.
	if err := l2.Append(3, []byte("rewritten")); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
}

func TestRecoveryDetectsCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(1, []byte("aaaaaaaa"))
	l.Append(2, []byte("bbbbbbbb"))
	l.Close()

	// Flip a byte inside record 2's payload (header 16 + payload 8 + crc 4,
	// record 2 payload begins at 28+16).
	path := filepath.Join(dir, "blocks.log")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 46); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.NextSeq() != 2 {
		t.Fatalf("NextSeq = %d, want 2 (corrupt record dropped)", l2.NextSeq())
	}
	if got, err := l2.Get(1); err != nil || string(got) != "aaaaaaaa" {
		t.Fatalf("Get(1) = %q, %v", got, err)
	}
}

func TestClosedLedgerRejectsOps(t *testing.T) {
	l, _ := openTemp(t, Options{})
	l.Append(1, []byte("x"))
	l.Close()
	if err := l.Append(2, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: err=%v, want ErrClosed", err)
	}
	if _, err := l.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: err=%v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSnapshots(t *testing.T) {
	l, _ := openTemp(t, Options{})
	if err := l.SaveSnapshot(10, []byte("state@10")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := l.SaveSnapshot(20, []byte("state@20")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	got, err := l.LoadSnapshot(10)
	if err != nil || string(got) != "state@10" {
		t.Fatalf("LoadSnapshot(10) = %q, %v", got, err)
	}
	latest, err := l.LatestSnapshot()
	if err != nil || latest != 20 {
		t.Fatalf("LatestSnapshot = %d, %v, want 20", latest, err)
	}

	if err := l.PruneSnapshots(15); err != nil {
		t.Fatalf("PruneSnapshots: %v", err)
	}
	if _, err := l.LoadSnapshot(10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pruned snapshot still loads: err=%v", err)
	}
	if _, err := l.LoadSnapshot(20); err != nil {
		t.Fatalf("retained snapshot lost: %v", err)
	}
}

func TestLatestSnapshotEmpty(t *testing.T) {
	l, _ := openTemp(t, Options{})
	latest, err := l.LatestSnapshot()
	if err != nil || latest != 0 {
		t.Fatalf("LatestSnapshot on empty dir = %d, %v, want 0", latest, err)
	}
}

func TestLoadMissingSnapshot(t *testing.T) {
	l, _ := openTemp(t, Options{})
	if _, err := l.LoadSnapshot(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
}

func TestSyncModeAppend(t *testing.T) {
	l, _ := openTemp(t, Options{Sync: true})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(seq, []byte("durable")); err != nil {
			t.Fatalf("Append with sync: %v", err)
		}
	}
}
