// Package storage is the persistence substrate standing in for RocksDB in
// the paper's deployment (§VIII–IX): replicas persist committed decision
// blocks to disk before acknowledging execution, and checkpoint snapshots
// for state transfer.
//
// Ledger is an append-only block log with per-record CRC32C checksums and
// optional fsync-per-append durability, plus side-stored snapshot files.
// The format is deliberately simple and self-describing:
//
//	record := magic(4) seq(8) payloadLen(4) payload crc32c(4)
//
// Torn tails (from a crash mid-append) are detected on open and truncated,
// the standard WAL recovery contract.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const recordMagic = 0x53424654 // "SBFT"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by Ledger operations.
var (
	ErrCorruptRecord = errors.New("storage: corrupt record")
	ErrOutOfOrder    = errors.New("storage: append out of order")
	ErrNotFound      = errors.New("storage: block not found")
	ErrClosed        = errors.New("storage: ledger closed")
)

// Options configures a Ledger.
type Options struct {
	// Sync forces an fsync after every append, matching the paper's
	// "persists transactions to disk" durability point. Benchmarks that
	// model disk latency in the simulator disable it.
	Sync bool
}

// Ledger is a durable append-only block log. It is safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	opts    Options
	nextSeq uint64
	index   map[uint64]span // seq → file span of payload
	closed  bool
}

type span struct {
	off int64
	len int
}

// Open creates or recovers a ledger in dir. Existing records are scanned,
// validated, and a torn tail is truncated away.
func Open(dir string, opts Options) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating dir: %w", err)
	}
	path := filepath.Join(dir, "blocks.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log: %w", err)
	}
	l := &Ledger{dir: dir, f: f, opts: opts, nextSeq: 1, index: make(map[uint64]span)}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover scans the log, building the index and truncating a torn tail.
func (l *Ledger) recover() error {
	var off int64
	var hdr [16]byte
	for {
		n, err := l.f.ReadAt(hdr[:], off)
		if err == io.EOF && n == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("storage: reading header: %w", err)
		}
		if n < len(hdr) {
			// Torn header.
			return l.truncate(off)
		}
		if binary.BigEndian.Uint32(hdr[0:4]) != recordMagic {
			return l.truncate(off)
		}
		seq := binary.BigEndian.Uint64(hdr[4:12])
		plen := binary.BigEndian.Uint32(hdr[12:16])
		body := make([]byte, int(plen)+4)
		n, err = l.f.ReadAt(body, off+16)
		if n < len(body) {
			return l.truncate(off)
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("storage: reading payload: %w", err)
		}
		payload := body[:plen]
		want := binary.BigEndian.Uint32(body[plen:])
		if crc32.Checksum(payload, castagnoli) != want {
			return l.truncate(off)
		}
		if seq != l.nextSeq {
			return fmt.Errorf("%w: seq %d at offset %d, want %d", ErrCorruptRecord, seq, off, l.nextSeq)
		}
		l.index[seq] = span{off: off + 16, len: int(plen)}
		l.nextSeq = seq + 1
		off += 16 + int64(plen) + 4
	}
	return nil
}

func (l *Ledger) truncate(off int64) error {
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	_, err := l.f.Seek(off, io.SeekStart)
	return err
}

// Append durably appends the block with the next sequence number. Blocks
// must be appended in order starting from 1; this matches SBFT's execute
// trigger, which persists blocks consecutively.
func (l *Ledger) Append(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq != l.nextSeq {
		return fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, seq, l.nextSeq)
	}
	end, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("storage: seeking: %w", err)
	}
	buf := make([]byte, 0, 16+len(payload)+4)
	buf = binary.BigEndian.AppendUint32(buf, recordMagic)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("storage: writing record: %w", err)
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
	}
	l.index[seq] = span{off: end + 16, len: len(payload)}
	l.nextSeq = seq + 1
	return nil
}

// Get reads the payload of block seq.
func (l *Ledger) Get(seq uint64) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	sp, ok := l.index[seq]
	if !ok {
		return nil, fmt.Errorf("%w: seq %d", ErrNotFound, seq)
	}
	out := make([]byte, sp.len)
	if _, err := l.f.ReadAt(out, sp.off); err != nil {
		return nil, fmt.Errorf("storage: reading block %d: %w", seq, err)
	}
	return out, nil
}

// NextSeq reports the sequence number the next Append must carry.
func (l *Ledger) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Close releases the underlying file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// SaveSnapshot persists a checkpoint snapshot for sequence seq. Snapshots
// are written atomically (write temp + rename).
func (l *Ledger) SaveSnapshot(seq uint64, data []byte) error {
	tmp := filepath.Join(l.dir, fmt.Sprintf(".snap-%d.tmp", seq))
	final := filepath.Join(l.dir, fmt.Sprintf("snap-%d.bin", seq))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	if l.opts.Sync {
		f, err := os.Open(tmp)
		if err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: renaming snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads the snapshot for seq.
func (l *Ledger) LoadSnapshot(seq uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, fmt.Sprintf("snap-%d.bin", seq)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: snapshot %d", ErrNotFound, seq)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading snapshot: %w", err)
	}
	return data, nil
}

// LatestSnapshot reports the highest snapshot sequence available, or 0.
func (l *Ledger) LatestSnapshot() (uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, fmt.Errorf("storage: listing snapshots: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		s, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".bin"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	if len(seqs) == 0 {
		return 0, nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs[len(seqs)-1], nil
}

// PruneSnapshots removes snapshots older than keepFrom.
func (l *Ledger) PruneSnapshots(keepFrom uint64) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("storage: listing snapshots: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		s, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".bin"), 10, 64)
		if err != nil || s >= keepFrom {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return fmt.Errorf("storage: pruning snapshot %d: %w", s, err)
		}
	}
	return nil
}
