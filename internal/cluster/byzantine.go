package cluster

import (
	"fmt"
	"math/rand"

	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
	"sbft/internal/merkle"
	"sbft/internal/pbft"
	"sbft/internal/sim"
)

// This file implements the Byzantine side of the fault-schedule API: the
// FaultByz* kinds install sim.Corrupter implementations aware of the wire
// message types of both engines. The corrupted replica's protocol engine
// stays honest — only its outbound traffic lies — which models a
// compromised process whose network boundary an adversary controls, keeps
// every run deterministic, and means FaultByzRestore cleanly returns the
// node to honest behavior.

// InstallByzantine installs (or, for FaultByzRestore, removes) a
// corrupter of the given Byzantine kind on a replica's outbound boundary
// and marks the replica Byzantine for the safety audit.
func (cl *Cluster) InstallByzantine(node int, kind FaultKind) error {
	if node < 1 || node > cl.N {
		return fmt.Errorf("cluster: replica id %d out of range [1,%d]", node, cl.N)
	}
	if kind == FaultByzRestore {
		cl.Net.SetCorrupter(sim.NodeID(node), nil)
		cl.Net.SetObserver(sim.NodeID(node), nil)
		return nil
	}
	if _, replaced := cl.Opts.Byzantine[node]; replaced {
		return fmt.Errorf("cluster: replica %d is already a replaced Byzantine node", node)
	}
	rng := rand.New(rand.NewSource(cl.Opts.Seed*0x5deece66d + int64(node)*0x9e3779b9))
	var c sim.Corrupter
	switch kind {
	case FaultByzEquivocate:
		c = &equivocator{node: node}
	case FaultByzStaleView:
		c = &staleViewSpammer{node: node, pbft: cl.Opts.Protocol == ProtoPBFT, rng: rng}
	case FaultByzConflictCkpt:
		var keys core.ReplicaKeys
		if cl.Opts.Protocol != ProtoPBFT {
			keys = cl.keys[node-1]
		}
		c = &conflictCkpt{node: node, keys: keys, rng: rng}
	case FaultByzSilent:
		c = silencer{}
	case FaultByzSnapshot:
		c = snapshotTamperer{}
	case FaultByzStaleMeta:
		c = &staleMetaServer{}
	case FaultByzForgedProof:
		c = &forgedProofServer{rng: rng}
	default:
		return fmt.Errorf("cluster: %v is not a Byzantine fault kind", kind)
	}
	cl.MarkByzantine(node)
	cl.Net.SetCorrupter(sim.NodeID(node), c)
	return nil
}

// wireSize sizes an injected message for the bandwidth model.
func wireSize(msg any, fallback int) int {
	if m, ok := msg.(core.Message); ok {
		return m.WireSize()
	}
	return fallback
}

// equivocateReqs builds a conflicting-but-authentic variant of a request
// block. Clients sign their operations (§V-A), so a Byzantine primary
// cannot fabricate payloads — the chaos sweep caught an earlier version
// of this corrupter doing exactly that and "breaking" safety with a power
// the paper's adversary does not have. What a Byzantine primary CAN do is
// batch authentic requests differently per recipient: here, reverse the
// order (different block hash, same requests), or propose an empty block
// when the batch is too small to reorder.
func equivocateReqs(reqs []core.Request) []core.Request {
	if len(reqs) <= 1 {
		return []core.Request{}
	}
	out := make([]core.Request, len(reqs))
	for i, r := range reqs {
		out[len(reqs)-1-i] = r
	}
	return out
}

// equivocator rewrites outbound pre-prepares per recipient: even-id
// recipients see the honest block, odd-id recipients a conflicting one.
// All other traffic passes through (the node behaves honestly as a
// backup, which is what makes an equivocating primary hard to detect).
type equivocator struct {
	node int
}

// Corrupt implements sim.Corrupter.
func (e *equivocator) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	switch m := msg.(type) {
	case core.PrePrepareMsg:
		if int(to)%2 == 1 {
			em := core.PrePrepareMsg{Seq: m.Seq, View: m.View, Reqs: equivocateReqs(m.Reqs)}
			return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
		}
	case pbft.PrePrepareMsg:
		if int(to)%2 == 1 {
			em := pbft.PrePrepareMsg{Seq: m.Seq, View: m.View, Reqs: equivocateReqs(m.Reqs)}
			return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
		}
	}
	return sim.PassThrough(to, msg, size)
}

// outboundView extracts the view a protocol message speaks for, tracking
// the spammer's guess of the current view without touching engine state.
func outboundView(msg any) (uint64, bool) {
	switch m := msg.(type) {
	case core.PrePrepareMsg:
		return m.View, true
	case core.SignShareMsg:
		return m.View, true
	case core.PrepareMsg:
		return m.View, true
	case core.CommitMsg:
		return m.View, true
	case core.ViewChangeMsg:
		return m.NewView, true
	case pbft.PrePrepareMsg:
		return m.View, true
	case pbft.PrepareMsg:
		return m.View, true
	case pbft.CommitMsg:
		return m.View, true
	case pbft.ViewChangeMsg:
		return m.NewView, true
	}
	return 0, false
}

// staleViewSpammer passes its honest traffic through and, with some
// probability per send, additionally injects a view-change message for a
// stale or near-future view carrying junk certificate evidence. Honest
// replicas must ignore the stale ones and reject the junk evidence during
// safe-value computation (§V-G); at most the spam wastes CPU and burns
// one view-change quorum slot.
type staleViewSpammer struct {
	node int
	pbft bool
	rng  *rand.Rand
	view uint64 // highest view seen in own outbound traffic
}

// Corrupt implements sim.Corrupter.
func (s *staleViewSpammer) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	if v, ok := outboundView(msg); ok && v > s.view {
		s.view = v
	}
	out := sim.PassThrough(to, msg, size)
	if s.rng.Float64() >= 0.3 {
		return out
	}
	// Mostly stale targets (≤ current view), occasionally one view ahead.
	target := s.view
	if s.rng.Float64() < 0.25 {
		target = s.view + 1
	} else if target > 0 {
		target -= uint64(s.rng.Intn(int(target + 1)))
	}
	junk := make([]byte, 16)
	s.rng.Read(junk)
	junkReqs := []core.Request{{Client: core.ClientBase, Timestamp: 1, Op: append([]byte("byz-spam-"), junk[:4]...)}}
	var spam any
	if s.pbft {
		spam = pbft.ViewChangeMsg{
			NewView: target, Replica: s.node, LastStable: 0,
			Prepared: []pbft.PreparedProof{{Seq: 1 + uint64(s.rng.Intn(8)), View: target, Reqs: junkReqs}},
		}
	} else {
		spam = core.ViewChangeMsg{
			NewView: target, Replica: s.node, LastStable: 0,
			Slots: []core.SlotInfo{{
				Seq:        1 + uint64(s.rng.Intn(8)),
				HasPrepare: true, PrepareView: target,
				PrepareTau:  threshsig.Signature{Data: junk},
				PrepareReqs: junkReqs,
			}},
		}
	}
	return append(out, sim.Injection{To: to, Msg: spam, Size: wireSize(spam, 128)})
}

// conflictCkpt rewrites outbound checkpoint and execution-state digests
// to per-recipient garbage. For the SBFT engine the garbage digests are
// re-signed with the node's own π key share, so they pass share
// verification and only the f+1 digest quorum protects honest replicas
// (exactly the attack surface of a Byzantine snapshot/checkpoint server).
type conflictCkpt struct {
	node int
	keys core.ReplicaKeys
	rng  *rand.Rand
}

// garbage derives a per-recipient conflicting digest.
func (c *conflictCkpt) garbage(seq uint64, to sim.NodeID) []byte {
	d := make([]byte, 32)
	c.rng.Read(d)
	d[0] = byte(to) // recipients provably disagree
	d[1] = byte(seq)
	return d
}

// Corrupt implements sim.Corrupter.
func (c *conflictCkpt) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	switch m := msg.(type) {
	case core.CheckpointShareMsg:
		evil := c.garbage(m.Seq, to)
		share, err := c.keys.Pi.Sign(core.CheckpointSigDigest(m.Seq, evil))
		if err != nil {
			return nil
		}
		em := core.CheckpointShareMsg{Seq: m.Seq, Replica: m.Replica, Digest: evil, PiSig: share}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	case core.SignStateMsg:
		evil := c.garbage(m.Seq, to)
		share, err := c.keys.Pi.Sign(core.StateSigDigest(m.Seq, evil))
		if err != nil {
			return nil
		}
		em := core.SignStateMsg{Seq: m.Seq, Replica: m.Replica, Digest: evil, PiSig: share}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	case pbft.CheckpointMsg:
		em := pbft.CheckpointMsg{Seq: m.Seq, Digest: c.garbage(m.Seq, to), Replica: m.Replica}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	return sim.PassThrough(to, msg, size)
}

// silencer suppresses every outbound message: a silent-but-alive replica
// (it still receives, executes, and advances its local state).
type silencer struct{}

// Corrupt implements sim.Corrupter.
func (silencer) Corrupt(sim.NodeID, any, int) []sim.Injection { return nil }

// TamperSnapshotChunk is the byte-level tampering a Byzantine snapshot
// server applies to state-transfer chunks: deterministic bit flips across
// the chunk (hitting serialized application state and, in the tail chunks,
// the last-reply table — the dedup state the old uncertified envelope let
// an adversary perturb silently). Exported so the pre-fix exploit test can
// apply the identical corruption to the legacy envelope encoding.
func TamperSnapshotChunk(data []byte) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < len(out); i += 64 {
		out[i] ^= 0x80
	}
	if n := len(out); n > 0 {
		out[n-1] ^= 0x01
	}
	return out
}

// snapshotTamperer rewrites outbound snapshot chunks, and lies on the
// ADVISORY delta fields of meta answers: when its replica advertises a
// delta set it drops half the indexes, so a fetcher that trusts the list
// prefills chunks whose content actually changed. The certified parts
// (threshold-signed root + header) are passed through untouched — a
// Byzantine server cannot forge the π certificate anyway, and an honest-
// looking meta followed by tampered chunks or a lying delta list is
// exactly the attack the whole-root re-derivation exists to catch. All
// non-snapshot traffic passes through: the replica participates honestly
// in consensus while lying only on the state-transfer path.
type snapshotTamperer struct{}

// Corrupt implements sim.Corrupter.
func (snapshotTamperer) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	if m, ok := msg.(core.SnapshotChunkMsg); ok {
		em := core.SnapshotChunkMsg{Seq: m.Seq, Index: m.Index, Data: TamperSnapshotChunk(m.Data), Proof: m.Proof}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	if m, ok := msg.(core.SnapshotMetaMsg); ok && len(m.DeltaChunks) > 1 {
		em := m
		em.DeltaChunks = append([]int(nil), m.DeltaChunks[:len(m.DeltaChunks)/2]...)
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	return sim.PassThrough(to, msg, size)
}

// staleMetaServer caches the OLDEST snapshot meta its replica ever served
// and replays it in place of every later meta answer. The cached meta is
// authentic — π-certified by the honest quorum at the time — just stale:
// the exact adversary of the first-accepted-meta race. All other traffic,
// snapshot chunks included, passes through untouched (the stale
// snapshot's chunks are eventually garbage-collected by the honest
// engine, at which point chunk requests for it are answered with a fresh
// meta re-offer — which this corrupter again rewrites to the stale one,
// so the fetcher can only learn the real frontier from OTHER servers).
type staleMetaServer struct {
	meta *core.SnapshotMetaMsg
}

// Corrupt implements sim.Corrupter.
func (s *staleMetaServer) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	if m, ok := msg.(core.SnapshotMetaMsg); ok {
		if s.meta == nil || m.Seq < s.meta.Seq {
			mm := m
			s.meta = &mm
		}
		em := *s.meta
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	return sim.PassThrough(to, msg, size)
}

// forgedProofServer attacks the certified read path: every outbound
// ReadOK reply is rewritten into one of four forgery variants before it
// leaves the node — flipped chunk bytes under the honest proof, a
// corrupted proof step, an inflated certified sequence (stale-read
// laundering: honest payload relabeled as fresher than it is), or a
// replay of a cached older valid reply re-addressed to the current
// nonce. Refusals and all non-read traffic pass through: the replica
// stays honest in consensus and lies only to readers. Every variant
// must be rejected CLIENT-SIDE by VerifyReadReply — a forged reply that
// a client accepts is a safety violation the read auditor flags, not a
// liveness blip the failover path absorbs.
type forgedProofServer struct {
	rng    *rand.Rand
	cached *core.ReadReplyMsg // oldest ReadOK reply seen, for replays
}

// Corrupt implements sim.Corrupter.
func (f *forgedProofServer) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	m, ok := msg.(core.ReadReplyMsg)
	if !ok || m.Status != core.ReadOK {
		return sim.PassThrough(to, msg, size)
	}
	if f.cached == nil || m.Seq < f.cached.Seq {
		mm := m
		f.cached = &mm
	}
	em := m
	em.Chunk = append([]byte(nil), m.Chunk...)
	em.ChunkProof.Steps = append([]merkle.ProofStep(nil), m.ChunkProof.Steps...)
	switch f.rng.Intn(4) {
	case 0: // tamper the value bytes under the honest proof
		em.Chunk = TamperSnapshotChunk(em.Chunk)
	case 1: // corrupt one inclusion-proof step
		if len(em.ChunkProof.Steps) > 0 {
			i := f.rng.Intn(len(em.ChunkProof.Steps))
			em.ChunkProof.Steps[i].Hash[0] ^= 0x40
		} else {
			em.ChunkProof.Index++
		}
	case 2: // inflate the certified sequence past the real frontier
		em.Seq += uint64(1 + f.rng.Intn(64))
	case 3: // replay the oldest cached valid reply under the live nonce
		em = *f.cached
		em.Client, em.Nonce = m.Client, m.Nonce
	}
	return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
}

// ---------------------------------------------------------------------------
// Over-budget collusion (auditor canary).

// collusion is the shared state of a colluding pair: which block hash the
// equivocating primary fed each recipient for each sequence.
type collusion struct {
	variants map[uint64]map[sim.NodeID]core.Digest
}

// InstallColludingEquivocators arms f+1 colluding Byzantine replicas on a
// PBFT cluster: `primary` sends per-recipient conflicting pre-prepares
// (and votes for every variant it dealt), and `accomplice` rewrites its
// own prepare/commit hashes to match whatever each recipient was dealt.
// With both inside one quorum this exceeds the f budget and makes honest
// replicas commit conflicting blocks — the divergence the safety auditor
// must detect (the canary proving the auditor is not vacuous). PBFT only:
// the baseline's votes are channel-authenticated hashes a Byzantine
// replica can fabricate freely, whereas the SBFT engine's threshold
// signatures cannot be forged by the corrupter.
func (cl *Cluster) InstallColludingEquivocators(primary, accomplice int) error {
	if cl.Opts.Protocol != ProtoPBFT {
		return fmt.Errorf("cluster: colluding equivocators require the PBFT baseline")
	}
	for _, id := range []int{primary, accomplice} {
		if id < 1 || id > cl.N {
			return fmt.Errorf("cluster: replica id %d out of range [1,%d]", id, cl.N)
		}
		cl.MarkByzantine(id)
	}
	shared := &collusion{variants: make(map[uint64]map[sim.NodeID]core.Digest)}
	cl.Net.SetCorrupter(sim.NodeID(primary),
		&colludingPrimary{node: primary, accomplice: accomplice, shared: shared})
	cl.Net.SetCorrupter(sim.NodeID(accomplice), &colludingVoter{shared: shared})
	return nil
}

// colludingPrimary splits honest recipients into halves fed conflicting
// pre-prepares, records the per-recipient hash for the accomplice, and
// injects its own matching prepare and commit votes for each variant.
type colludingPrimary struct {
	node       int
	accomplice int
	shared     *collusion
}

// Corrupt implements sim.Corrupter.
func (p *colludingPrimary) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	m, ok := msg.(pbft.PrePrepareMsg)
	if !ok {
		return sim.PassThrough(to, msg, size)
	}
	reqs := m.Reqs
	if int(to) != p.accomplice && int(to)%2 == 0 {
		reqs = equivocateReqs(m.Reqs)
	}
	pp := pbft.PrePrepareMsg{Seq: m.Seq, View: m.View, Reqs: reqs}
	h := core.BlockHash(m.Seq, m.View, reqs)
	if p.shared.variants[m.Seq] == nil {
		p.shared.variants[m.Seq] = make(map[sim.NodeID]core.Digest)
	}
	p.shared.variants[m.Seq][to] = h
	prep := pbft.PrepareMsg{Seq: m.Seq, View: m.View, Hash: h, Replica: p.node}
	com := pbft.CommitMsg{Seq: m.Seq, View: m.View, Hash: h, Replica: p.node}
	return []sim.Injection{
		{To: to, Msg: pp, Size: pp.WireSize()},
		{To: to, Msg: prep, Size: prep.WireSize()},
		{To: to, Msg: com, Size: com.WireSize()},
	}
}

// colludingVoter rewrites the accomplice's own prepare/commit hashes to
// match whichever variant the primary dealt each recipient.
type colludingVoter struct {
	shared *collusion
}

// Corrupt implements sim.Corrupter.
func (v *colludingVoter) Corrupt(to sim.NodeID, msg any, size int) []sim.Injection {
	switch m := msg.(type) {
	case pbft.PrepareMsg:
		if h, ok := v.shared.variants[m.Seq][to]; ok {
			em := pbft.PrepareMsg{Seq: m.Seq, View: m.View, Hash: h, Replica: m.Replica}
			return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
		}
	case pbft.CommitMsg:
		if h, ok := v.shared.variants[m.Seq][to]; ok {
			em := pbft.CommitMsg{Seq: m.Seq, View: m.View, Hash: h, Replica: m.Replica}
			return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
		}
	}
	return sim.PassThrough(to, msg, size)
}
