package cluster

import (
	"testing"
	"time"

	"sbft/internal/apps"
	"sbft/internal/evm"
)

// evmGenesis deploys the token contract and funds the deployer on every
// replica identically (the paper's ledger starts from a common state).
func evmGenesis(t *testing.T) (func(app *apps.EVMApp), evm.Address) {
	t.Helper()
	deployer := evm.AddressFromBytes([]byte{0xD0})
	token := evm.ContractAddress(deployer, 0)
	genesis := func(app *apps.EVMApp) {
		app.Ledger.Mint(deployer, 1_000_000_000)
		addr, err := app.Ledger.GenesisCreate(deployer, evm.TokenDeploy(), 10_000_000)
		if err != nil {
			t.Fatalf("genesis deploy: %v", err)
		}
		if addr != token {
			t.Fatalf("genesis address %v, want %v", addr, token)
		}
		// Seed balances for the first 64 senders.
		for i := 0; i < 64; i++ {
			app.Ledger.Mint(senderAddr(i), 1_000_000)
		}
	}
	return genesis, token
}

func senderAddr(i int) evm.Address {
	return evm.AddressFromBytes([]byte{0xA0, byte(i >> 8), byte(i)})
}

func transferTx(token evm.Address, from, to int, amount uint64) []byte {
	return evm.Tx{
		Kind: evm.TxCall, From: senderAddr(from), To: token,
		GasLimit: 1_000_000,
		Data:     evm.TokenCalldata(evm.TokenMint, senderAddr(to), amount),
	}.Encode()
}

func TestEVMLedgerOverSBFT(t *testing.T) {
	genesis, token := evmGenesis(t)
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		App: AppEVM, Clients: 4, Seed: 40,
		GenesisEVM: genesis,
	})
	gen := func(client, i int) []byte {
		return transferTx(token, client, (client+1)%4, 1)
	}
	res := cl.RunClosedLoop(10, gen, 2*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 EVM txs", res.Completed)
	}
	if res.FastAcks == 0 {
		t.Error("no single-message acks for EVM transactions")
	}
	digestsAgree(t, cl)

	// All replicas applied 40 mints of 1 to rotating receivers: check a
	// balance in contract storage on every replica.
	var total uint64
	for i := 0; i < 4; i++ {
		app := cl.Apps[1].(*apps.EVMApp)
		var key evm.Word
		a := senderAddr(i)
		copy(key[32-evm.AddressSize:], a[:])
		total += app.Ledger.Storage(token, key).Big().Uint64()
	}
	if total != 40 {
		t.Fatalf("sum of minted balances = %d, want 40", total)
	}
}

func TestEVMLedgerOverPBFT(t *testing.T) {
	genesis, token := evmGenesis(t)
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		App: AppEVM, Clients: 2, Seed: 41,
		GenesisEVM: genesis,
	})
	gen := func(client, i int) []byte {
		return transferTx(token, client, (client+1)%2, 2)
	}
	res := cl.RunClosedLoop(10, gen, 2*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 EVM txs over PBFT", res.Completed)
	}
	digestsAgree(t, cl)
}
