package cluster

import (
	"bytes"
	"encoding/gob"
	"testing"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
	"sbft/internal/kvstore"
)

// legacyEnvelope reproduces the pre-fix state-transfer wire format: the
// application snapshot plus the last-reply table, shipped together while
// the π checkpoint certificate covered ONLY the application digest. The
// reply table rode along uncertified — the exact gap this PR closes.
type legacyEnvelope struct {
	App     []byte
	Replies map[int]core.ClientReply
}

// TestLegacyEnvelopeExploitableByByzantineSnapshotServer demonstrates the
// pre-fix vulnerability: a Byzantine snapshot server that semantically
// tampers with the last-reply table passes every check the old receiver
// performed (π certificate over the app digest, app restore, restored-
// digest comparison) — so a recovering replica would silently adopt
// poisoned dedup state, suppressing or duplicating client executions. The
// same tampering against the NEW certified chunked encoding fails Merkle
// leaf verification, which is what lets the receiver blame the server.
func TestLegacyEnvelopeExploitableByByzantineSnapshotServer(t *testing.T) {
	const seq = 4
	cfg := core.DefaultConfig(1, 0)
	suite, keys, err := core.InsecureSuite(cfg, "legacy-exploit")
	if err != nil {
		t.Fatal(err)
	}

	// The honest snapshot server's state at checkpoint `seq`: some app
	// state and a last-reply table recording that the client's request
	// ts=3 already executed.
	server := apps.NewKVApp()
	for s := uint64(1); s <= seq; s++ {
		server.ExecuteBlock(s, [][]byte{kvstore.Put("k", []byte{byte(s)})})
	}
	appSnap, err := server.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	appDigest := server.Digest()
	honestReplies := map[int]core.ClientReply{
		core.ClientBase: {Timestamp: 3, Seq: seq, L: 0, Val: []byte("ok")},
	}

	// The old certification boundary: π threshold-signs the APP digest
	// only (f+1 shares suffice).
	var shares []threshsig.Share
	for i := 0; i < cfg.QuorumExec(); i++ {
		sh, err := keys[i].Pi.Sign(core.StateSigDigest(seq, appDigest))
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	pi, err := suite.Pi.Combine(core.StateSigDigest(seq, appDigest), shares)
	if err != nil {
		t.Fatal(err)
	}

	// The Byzantine server tampers semantically: it inflates the client's
	// last-executed timestamp. A victim merging this table would wrongly
	// dedup (suppress) the client's next requests up to ts=1000; lowering
	// or dropping the entry would instead cause duplicate execution.
	tampered := legacyEnvelope{App: appSnap, Replies: map[int]core.ClientReply{
		core.ClientBase: {Timestamp: 1000, Seq: seq, L: 0, Val: []byte("ok")},
	}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tampered); err != nil {
		t.Fatal(err)
	}

	// Replay the OLD receiver's acceptance checks against the tampered
	// envelope. Every single one passes: the pre-fix path is exploitable.
	var env legacyEnvelope
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&env); err != nil {
		t.Fatalf("old check 1 (decode) rejected: %v", err)
	}
	if err := suite.Pi.Verify(core.StateSigDigest(seq, appDigest), pi); err != nil {
		t.Fatalf("old check 2 (π over app digest) rejected: %v", err)
	}
	victim := apps.NewKVApp()
	if err := victim.Restore(env.App); err != nil {
		t.Fatalf("old check 3 (restore) rejected: %v", err)
	}
	if !bytes.Equal(victim.Digest(), appDigest) {
		t.Fatal("old check 4 (restored digest) rejected")
	}
	if env.Replies[core.ClientBase].Timestamp != 1000 {
		t.Fatal("tampering lost in transit")
	}
	// At this point the old receiver merged env.Replies into its reply
	// cache: dedup state poisoned, no check failed, nobody blamed.

	// The same adversary against the NEW path: the reply table is
	// committed chunk-by-chunk inside the certified root, so serving a
	// table with the inflated timestamp means serving chunk bytes that no
	// longer match the threshold-signed root — caught by leaf
	// verification, attributable to the server.
	encodeTable := func(replies map[int]core.ClientReply) []byte {
		var tb bytes.Buffer
		if err := gob.NewEncoder(&tb).Encode(replies); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes()
	}
	honest := core.NewCertifiedSnapshot(seq, appDigest, appSnap, encodeTable(honestReplies))
	tamperedTable := encodeTable(tampered.Replies)
	// The adversary must serve its tampered table bytes under the honest
	// certified root (it cannot forge a new π certificate). Every chunk
	// layout it could choose fails verification.
	evil := core.NewCertifiedSnapshot(seq, appDigest, appSnap, tamperedTable)
	if bytes.Equal(evil.Root(), honest.Root()) {
		t.Fatal("tampered table produced the same certified root")
	}
	idx := len(honest.Chunks) // the last chunk holds the table tail
	proof, err := evil.ProveChunk(len(evil.Chunks))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySnapshotChunk(honest.Root(), honest.Header, idx,
		evil.Chunks[len(evil.Chunks)-1], proof); err == nil {
		t.Fatal("new path accepted a tampered reply-table chunk")
	}

	// And the byte-level corrupter used by FaultByzSnapshot is likewise
	// caught on every chunk it touches.
	for i := 1; i <= len(honest.Chunks); i++ {
		p, err := honest.ProveChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifySnapshotChunk(honest.Root(), honest.Header, i,
			TamperSnapshotChunk(honest.Chunks[i-1]), p); err == nil {
			t.Fatalf("new path accepted corrupter-tampered chunk %d", i)
		}
	}
}
