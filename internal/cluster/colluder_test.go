package cluster

import (
	"testing"
	"time"

	"sbft/internal/core"
)

// These tests pin the colluding key-share adversary at and below the
// paper's fault budget (§IV): with m ≤ f members pooling their σ/τ/π
// shares the threshold arithmetic must hold — the second equivocation
// variant falls exactly one τ share short of QuorumSlow, colluding π
// shares stay one short of the f+1 checkpoint quorum — and the honest
// majority must keep committing. The m = f+1 over-budget flip is the
// harness canary (TestColludingCanaryOverBudgetDetected), not a cluster
// test: safety is EXPECTED to break there.

func colludeTune(c *core.Config) {
	c.FastPathTimeout = 50 * time.Millisecond
	c.ViewChangeTimeout = 800 * time.Millisecond
}

func TestColludingPrimaryAtBudgetStaysSafeAndLive(t *testing.T) {
	// n=4, f=1: the lone colluder IS the view-0 primary, dealing split
	// pre-prepares and jointly-signed partial quorums. Variant 0 gets the
	// QuorumSlow-1 = 2 honest shares it needs; variant 1 is left one
	// short every slot.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 40,
		Tune:          colludeTune,
		ClientTimeout: time.Second,
	})
	if err := cl.InstallColluders(FaultByzColludeEquivocate, []int{1}); err != nil {
		t.Fatalf("InstallColluders: %v", err)
	}
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under colluding primary (retries=%d)", res.Completed, res.Retries)
	}
	if !cl.IsByzantine(1) {
		t.Error("colluding member not marked Byzantine for the audit")
	}
	digestsAgree(t, cl)
}

func TestColludingPairAtBudgetStaysSafeAndLive(t *testing.T) {
	// f=2 (n=7), members {1,2} — the full budget, including the view-0
	// primary. QuorumSlow = 5; the pair owns 2 shares per variant and must
	// source 3 honest ones, leaving variant 1 with at most 2+2 = 4 < 5.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 2, C: 0,
		Clients: 2, Seed: 41,
		Tune:          colludeTune,
		ClientTimeout: time.Second,
	})
	if err := cl.InstallColluders(FaultByzColludeEquivocate, []int{1, 2}); err != nil {
		t.Fatalf("InstallColluders: %v", err)
	}
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under colluding pair (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}

func TestColludingCheckpointSharesStayBelowPiQuorum(t *testing.T) {
	// FaultByzColludeCkpt: the member answers every checkpoint round with
	// an agreed fake digest plus its peers' matching π shares. At m = f = 1
	// the recipient sees one consistent lying share — one short of the f+1
	// π quorum — so no fake checkpoint can certify, while honest
	// checkpoints (f+1 honest replicas remain) still advance the stable
	// point.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 42,
		Tune: func(c *core.Config) {
			colludeTune(c)
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
		},
		ClientTimeout: time.Second,
	})
	if err := cl.InstallColluders(FaultByzColludeCkpt, []int{3}); err != nil {
		t.Fatalf("InstallColluders: %v", err)
	}
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 under colluding checkpoints", res.Completed)
	}
	for id := 1; id <= cl.N; id++ {
		if cl.IsByzantine(id) {
			continue
		}
		if ls := cl.Replicas[id].LastStable(); ls == 0 {
			t.Errorf("honest replica %d never advanced its stable point", id)
		}
	}
	digestsAgree(t, cl)
}

func TestColluderRestoreDisarmsEveryMember(t *testing.T) {
	// FaultByzRestore per member must fully disarm the coordinator —
	// corrupter and observer removed, the cluster back to committing —
	// while the Byzantine mark stays sticky: the audit must never hold a
	// once-colluding replica to honest-replica invariants.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 43,
		Tune:          colludeTune,
		ClientTimeout: time.Second,
	})
	if err := cl.InstallColluders(FaultByzColludeEquivocate, []int{1}); err != nil {
		t.Fatalf("InstallColluders: %v", err)
	}
	cl.Apply(Schedule{{At: 500 * time.Millisecond, Kind: FaultByzRestore, Node: 1}})
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 after restore (retries=%d)", res.Completed, res.Retries)
	}
	if !cl.IsByzantine(1) {
		t.Error("Byzantine mark must stay sticky after FaultByzRestore")
	}
	m := cl.Metrics()
	if m.FastCommits == 0 {
		t.Error("no fast-path commits after the colluder was disarmed")
	}
	digestsAgree(t, cl)
}

func TestInstallColludersRejectsBadSets(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 1, Seed: 44,
	})
	if err := cl.InstallColluders(FaultByzColludeEquivocate, nil); err == nil {
		t.Error("empty member set accepted")
	}
	if err := cl.InstallColluders(FaultByzColludeEquivocate, []int{0}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if err := cl.InstallColluders(FaultByzColludeEquivocate, []int{5}); err == nil {
		t.Error("member beyond n accepted")
	}
	pb := newKV(t, Options{Protocol: ProtoPBFT, F: 1, Clients: 1, Seed: 44})
	if err := pb.InstallColluders(FaultByzColludeEquivocate, []int{1}); err == nil {
		t.Error("PBFT cluster accepted an SBFT collusion kind")
	}
}
