package cluster

import (
	"bytes"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/pbft"
)

func TestRestartReplicaFromStorage(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 40, Persist: true,
		Tune: func(c *core.Config) {
			c.Win = 16
			c.Batch = 1
			c.CheckpointInterval = 8
		},
	})
	defer cl.Close()

	res := cl.RunClosedLoop(10, kvGen, 2*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20", res.Completed)
	}
	preFrontier := cl.Replicas[4].LastExecuted()
	preDigest := cl.Apps[4].Digest()
	if preFrontier == 0 {
		t.Fatal("replica 4 executed nothing before the restart")
	}

	// Crash replica 4, then rebuild it from its durable log.
	cl.Net.Crash(4)
	oldRep := cl.Replicas[4]
	if err := cl.RestartReplica(4); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	if cl.Replicas[4] == oldRep {
		t.Fatal("restart did not build a fresh replica")
	}
	// The replay must land exactly on the pre-crash durable state.
	if got := cl.Replicas[4].LastExecuted(); got != preFrontier {
		t.Fatalf("recovered frontier %d, want %d", got, preFrontier)
	}
	if !bytes.Equal(cl.Apps[4].Digest(), preDigest) {
		t.Fatal("recovered app digest differs from pre-crash digest")
	}

	// The restarted replica keeps participating in new commits.
	more := cl.RunClosedLoop(10, kvGen, 2*time.Minute)
	if more.Completed != 20 {
		t.Fatalf("completed %d of 20 after restart", more.Completed)
	}
	cl.Run(30 * time.Second)
	if got := cl.Replicas[4].LastExecuted(); got <= preFrontier {
		t.Fatalf("restarted replica stuck at %d (pre-crash %d)", got, preFrontier)
	}
	if len(cl.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", cl.FaultErrors)
	}
	digestsAgree(t, cl)
}

func TestScheduleAppliesFaults(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 41, Persist: true,
		Tune: func(c *core.Config) {
			c.Batch = 1
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: time.Second,
	})
	defer cl.Close()

	// Crash replica 3 at 200ms, restart it from storage at 900ms.
	cl.Apply(Schedule{
		{At: 200 * time.Millisecond, Kind: FaultCrash, Node: 3},
		{At: 900 * time.Millisecond, Kind: FaultRestart, Node: 3},
	})
	res := cl.RunClosedLoop(15, kvGen, 5*time.Minute)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30 across the crash/restart window", res.Completed)
	}
	cl.Run(30 * time.Second)
	if len(cl.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", cl.FaultErrors)
	}
	if cl.Replicas[3].LastExecuted() == 0 {
		t.Fatal("restarted replica never executed")
	}
	digestsAgree(t, cl)
}

func TestRestartRequiresPersistence(t *testing.T) {
	cl := newKV(t, Options{Protocol: ProtoSBFT, F: 1, C: 0, Clients: 1, Seed: 42})
	if err := cl.RestartReplica(2); err == nil {
		t.Fatal("restart without Persist accepted")
	}
}

func TestPBFTRestartReplicaFromStorage(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 2, Seed: 43, Persist: true,
		TunePBFT: func(c *pbft.Config) {
			c.Batch = 1
		},
		ClientTimeout: time.Second,
	})
	defer cl.Close()

	res := cl.RunClosedLoop(10, kvGen, 2*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20", res.Completed)
	}
	preFrontier := cl.PBFTReplicas[4].LastExecuted()
	preDigest := cl.Apps[4].Digest()
	if preFrontier == 0 {
		t.Fatal("replica 4 executed nothing before the restart")
	}

	// Crash replica 4, let the cluster move on without it, then rebuild it
	// from its durable log.
	cl.Net.Crash(4)
	mid := cl.RunClosedLoop(5, kvGen, 2*time.Minute)
	if mid.Completed != 10 {
		t.Fatalf("completed %d of 10 while replica 4 was down", mid.Completed)
	}
	oldRep := cl.PBFTReplicas[4]
	if err := cl.RestartReplica(4); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	if cl.PBFTReplicas[4] == oldRep {
		t.Fatal("restart did not build a fresh replica")
	}
	// The replay must land exactly on the pre-crash durable state.
	if got := cl.PBFTReplicas[4].LastExecuted(); got != preFrontier {
		t.Fatalf("recovered frontier %d, want %d", got, preFrontier)
	}
	if !bytes.Equal(cl.Apps[4].Digest(), preDigest) {
		t.Fatal("recovered app digest differs from pre-crash digest")
	}

	// The restarted replica catches up on the blocks it missed (f+1
	// matching retransmissions) and keeps participating.
	more := cl.RunClosedLoop(10, kvGen, 2*time.Minute)
	if more.Completed != 20 {
		t.Fatalf("completed %d of 20 after restart", more.Completed)
	}
	cl.Run(30 * time.Second)
	if got, want := cl.PBFTReplicas[4].LastExecuted(), cl.PBFTReplicas[1].LastExecuted(); got < want {
		t.Fatalf("restarted replica stuck at %d, cluster at %d", got, want)
	}
	if len(cl.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", cl.FaultErrors)
	}
	digestsAgree(t, cl)
}

func TestPBFTScheduledRestart(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 2, Seed: 44, Persist: true,
		TunePBFT: func(c *pbft.Config) {
			c.Batch = 1
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: time.Second,
	})
	defer cl.Close()

	cl.Apply(Schedule{
		{At: 200 * time.Millisecond, Kind: FaultCrash, Node: 3},
		{At: 900 * time.Millisecond, Kind: FaultRestart, Node: 3},
	})
	res := cl.RunClosedLoop(15, kvGen, 5*time.Minute)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30 across the crash/restart window", res.Completed)
	}
	cl.Run(30 * time.Second)
	if len(cl.FaultErrors) != 0 {
		t.Fatalf("fault errors: %v", cl.FaultErrors)
	}
	if cl.PBFTReplicas[3].LastExecuted() == 0 {
		t.Fatal("restarted replica never executed")
	}
	digestsAgree(t, cl)
}
