// Package cluster wires SBFT and PBFT replicas, clients and applications
// into the discrete-event simulator, reproducing the paper's deployments
// (§IX): a full protocol stack per replica over a modeled WAN, with a
// per-message CPU cost model, scripted fault schedules, Byzantine
// corrupters, durable storage, and closed-loop measurement clients.
//
// # Protocol variants
//
// The five configurations of the paper's evaluation map to:
//
//	PBFT            → internal/pbft (quadratic baseline)
//	Linear-PBFT     → SBFT engine, fast path off, exec collectors off, c=0
//	Linear+Fast     → SBFT engine, fast path on, exec collectors off, c=0
//	SBFT (c=0)      → all ingredients, c=0
//	SBFT (c=8)      → all ingredients, c=8
//
// # Fault schedules
//
// A Schedule is a list of timestamped Fault steps applied against the
// running simulation (faults.go): crash/recover, restart-from-storage
// (RestartReplica → core.NewRecoveredReplica), partitions, stragglers,
// per-link drop/duplicate/reorder rules — plus the Byzantine kinds
// (byzantine.go), each of which installs a wire-aware sim.Corrupter on a
// replica's outbound boundary and marks it Byzantine for the safety
// audit: FaultByzEquivocate (equivocating primary), FaultByzSilent,
// FaultByzConflictCkpt (signed-conflicting checkpoint digests),
// FaultByzStaleView (junk view-change spam), FaultByzSnapshot (tampered
// state-transfer chunks), FaultByzRestore.
//
// # Persistence
//
// Options.Persist gives every replica a storage.Ledger: committed blocks
// append durably, stable certified snapshots persist alongside, and
// RestartReplica rebuilds a replica from disk mid-run.
//
// The cost model (costs.go) charges per-message CPU mirroring the real
// crypto structure (share verify on arrival, interpolation-only combine
// at collectors); see DESIGN.md substitution #3.
package cluster
