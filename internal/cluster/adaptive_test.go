package cluster

import (
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/sim"
)

// These tests pin the adaptive role-targeting attacker: impairments that
// chase the deterministic role map (§V) instead of fixed replicas. The
// protocol must degrade — measurably, via the new Metrics counters — but
// never lose liveness while the attacker respects the f+c at-once budget.

func TestAdaptiveCollectorAttackDegradesGracefully(t *testing.T) {
	// n=6 (f=1, c=1): the attacker crashes the current slot's collectors
	// every period, alternating between C-collectors (commit path) and
	// E-collectors (execution-ack path). Redundant collectors plus the
	// ExecFallbackTimeout reply path must keep every client op completing.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 1,
		Clients: 2, Seed: 50,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 50 * time.Millisecond
			c.ExecFallbackTimeout = 200 * time.Millisecond
			c.ViewChangeTimeout = 800 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	if err := cl.StartAdaptiveAttack(FaultAttackCollectors, time.Second); err != nil {
		t.Fatalf("StartAdaptiveAttack: %v", err)
	}
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under collector attack (retries=%d)", res.Completed, res.Retries)
	}
	m := cl.Metrics()
	if m.ExecFallbacks == 0 {
		t.Error("no exec-fallback replies despite E-collector crashes")
	}
	digestsAgree(t, cl)
}

func TestAdaptiveFastPathAttackForcesLinearFallback(t *testing.T) {
	// n=6: straggling c+1 non-collector replicas by 8× the fast timeout
	// kills the σ quorum (tolerates only c missing) while the τ quorum
	// (tolerates f+c) survives — every block must ride the §V-E linear
	// fallback, observably.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 1,
		Clients: 2, Seed: 51,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 50 * time.Millisecond
			c.ViewChangeTimeout = 2 * time.Second
		},
		ClientTimeout: 2 * time.Second,
	})
	if err := cl.StartAdaptiveAttack(FaultAttackFastPath, 0); err != nil {
		t.Fatalf("StartAdaptiveAttack: %v", err)
	}
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under fast-path attack (retries=%d)", res.Completed, res.Retries)
	}
	m := cl.Metrics()
	if m.SlowCommits == 0 {
		t.Error("no slow-path commits despite a dead σ quorum")
	}
	if m.CollectorTimeouts == 0 {
		t.Error("no collector fast-timer expirations recorded")
	}
	if m.FastPathDowngrades == 0 {
		t.Error("no fast→linear downgrades recorded")
	}
	digestsAgree(t, cl)
}

func TestAdaptivePartitionAttackSurvives(t *testing.T) {
	// Severing the primary's outbound links to its C-collectors each
	// rotation: pre-prepares stall into the staggered-collector fallback
	// and view-change machinery, but f+c lossy links must not cost
	// liveness.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 52,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 50 * time.Millisecond
			c.ViewChangeTimeout = 500 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	if err := cl.StartAdaptiveAttack(FaultAttackPartition, 0); err != nil {
		t.Fatalf("StartAdaptiveAttack: %v", err)
	}
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under partition attack (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}

func TestAdaptiveAttackStopHealsEverything(t *testing.T) {
	// Stopping the attacker must release every impairment it holds: no
	// replica left crashed or straggling, fast path restored.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 1,
		Clients: 2, Seed: 53,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 50 * time.Millisecond
			c.ViewChangeTimeout = 800 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	if err := cl.StartAdaptiveAttack(FaultAttackCollectors, time.Second); err != nil {
		t.Fatalf("StartAdaptiveAttack: %v", err)
	}
	cl.Apply(Schedule{{At: 2 * time.Second, Kind: FaultAttackStop}})
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 across attack+heal (retries=%d)", res.Completed, res.Retries)
	}
	for id := 1; id <= cl.N; id++ {
		if cl.Net.Crashed(sim.NodeID(id)) {
			t.Errorf("replica %d left crashed after StopAdaptiveAttack", id)
		}
	}
	if cl.attacker != nil {
		t.Error("attacker still installed after FaultAttackStop")
	}
	digestsAgree(t, cl)
}

func TestStartAdaptiveAttackRejectsBadKinds(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 1, Seed: 54,
	})
	if err := cl.StartAdaptiveAttack(FaultCrash, 0); err == nil {
		t.Error("non-attack kind accepted")
	}
	pb := newKV(t, Options{Protocol: ProtoPBFT, F: 1, Clients: 1, Seed: 54})
	if err := pb.StartAdaptiveAttack(FaultAttackCollectors, time.Second); err == nil {
		t.Error("PBFT cluster accepted a role-map attack")
	}
}
