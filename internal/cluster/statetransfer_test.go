package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

func TestRecoveredReplicaCatchesUpViaStateTransfer(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 30,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
		},
	})
	// Take replica 4 down early; the rest (exactly a slow quorum of 3)
	// keep committing. With c=0 the fast quorum needs all 4, so the run
	// proceeds on the slow path.
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(30, kvGen, 5*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60 with one crashed replica", res.Completed)
	}

	frontier := cl.Replicas[1].LastExecuted()
	if frontier < 30 {
		t.Fatalf("frontier only %d; want deep history for the catch-up", frontier)
	}

	// Recover replica 4 and drive more traffic so it observes the gap.
	cl.Net.Recover(4)
	more := cl.RunClosedLoop(20, kvGen, 5*time.Minute)
	if more.Completed != 40 {
		t.Fatalf("completed %d of 40 after recovery", more.Completed)
	}
	// Let retransmissions and fetches settle.
	cl.Run(time.Minute)

	r4 := cl.Replicas[4]
	if r4.LastExecuted() == 0 {
		t.Fatal("recovered replica never executed anything (state transfer failed)")
	}
	m := cl.Metrics()
	if m.StateFetches == 0 {
		t.Error("no state fetches recorded despite a deep gap")
	}
	// The recovered replica must be consistent with the others at its
	// frontier: compare digests by re-deriving from another replica's
	// history is not possible here, so check it reached at least the
	// stable point and agrees where frontiers match.
	if r4.LastExecuted() < r4.LastStable() {
		t.Errorf("recovered replica executed %d below its stable point %d", r4.LastExecuted(), r4.LastStable())
	}
	for id := 1; id <= cl.N; id++ {
		if cl.Replicas[id].LastExecuted() == r4.LastExecuted() && id != 4 {
			if !bytes.Equal(cl.Apps[id].Digest(), cl.Apps[4].Digest()) {
				t.Fatalf("recovered replica digest differs from replica %d at same frontier", id)
			}
		}
	}
	digestsAgree(t, cl)
}

// TestMultiIntervalTransferCompletesWithoutRestart pins the carried
// ROADMAP item 3 bug: a state transfer that spans multiple checkpoint
// intervals — the serving snapshot is superseded while the fetch is in
// flight, and a full-drop stall window lets the cluster advance ≥2 more
// stable checkpoints mid-transfer — must retarget via delta supersession
// and complete WITHOUT ever discarding fetched chunks. Before the
// generation chain, every supersession restarted the transfer from
// scratch; under sustained load a laggard could chase checkpoints
// forever.
func TestMultiIntervalTransferCompletesWithoutRestart(t *testing.T) {
	bigVal := bytes.Repeat([]byte{0x77, 0x5a, 0x33}, 32*1024/3)
	bigGen := func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), bigVal)
	}
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 33,
		ClientTimeout: time.Second,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
			c.SnapshotRetain = 8 // deep chain: every mid-transfer base stays servable
		},
	})
	// Deep history while the victim is down: its catch-up must go through
	// chunked state transfer (the slots are GC'd below the stable point).
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(24, bigGen, 10*time.Minute)
	if res.Completed != 48 {
		t.Fatalf("completed %d of 48 with the victim down", res.Completed)
	}
	frontier0 := cl.Replicas[1].LastStable()
	if frontier0 == 0 {
		t.Fatal("no stable checkpoint before recovery")
	}

	// Recover behind a lossy inbound link, then stall the transfer
	// completely for a stretch during which the live replicas keep
	// committing — the stable frontier crosses ≥2 checkpoint intervals
	// while the victim's fetch hangs mid-flight.
	cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{Drop: 0.15})
	cl.Net.Recover(4)
	cl.Sched.Schedule(300*time.Millisecond, func() {
		cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{Drop: 1})
	})
	cl.Sched.Schedule(2300*time.Millisecond, func() {
		cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{Drop: 0.15})
	})
	more := cl.RunClosedLoop(16, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("mid/c%d/k%d", client, i), bigVal)
	}, 10*time.Minute)
	if more.Completed != 32 {
		t.Fatalf("completed %d of 32 through the stall window", more.Completed)
	}
	cl.Net.SetLinkFault(sim.AnyNode, 4, sim.LinkFault{})
	// Fresh traffic after the stall keeps checkpoints announcing until
	// the victim converges.
	post := cl.RunClosedLoop(4, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("post/c%d/k%d", client, i), bigVal)
	}, 10*time.Minute)
	if post.Completed != 8 {
		t.Fatalf("completed %d of 8 after the stall", post.Completed)
	}
	cl.Run(2 * time.Minute)

	frontier1 := cl.Replicas[1].LastStable()
	if frontier1 < frontier0+8 {
		t.Fatalf("stable frontier advanced only %d→%d; need ≥2 checkpoint intervals mid-transfer",
			frontier0, frontier1)
	}
	m := cl.Replicas[4].Metrics
	if cl.Replicas[4].LastExecuted() < frontier1 {
		t.Fatalf("victim did not catch up: le=%d, stable=%d (fetches=%d chunks=%d restarts=%d)",
			cl.Replicas[4].LastExecuted(), frontier1, m.StateFetches,
			m.SnapshotChunks, m.SnapshotTransferRestarts)
	}
	if m.StateFetches == 0 || m.SnapshotChunks == 0 {
		t.Fatalf("catch-up bypassed state transfer (fetches=%d chunks=%d)", m.StateFetches, m.SnapshotChunks)
	}
	// The heart of the fix: the transfer was superseded mid-flight (the
	// target moved across intervals) yet NEVER restarted — progress was
	// carried forward through delta retargeting.
	if m.SnapshotTransferRestarts != 0 {
		t.Fatalf("transfer restarted %d times across the multi-interval window", m.SnapshotTransferRestarts)
	}
	if m.SnapshotDeltaTransfers == 0 {
		t.Fatal("no delta supersession recorded: the transfer never spanned an interval boundary")
	}
	digestsAgree(t, cl)
}

func TestLaggardCatchesUpDuringViewChange(t *testing.T) {
	// A replica partitioned through a view change must still converge
	// afterwards via the new-view stable point and state transfer.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 2, C: 0, // n = 7
		Clients: 3, Seed: 31,
		Tune: func(c *core.Config) {
			c.Win = 16
			c.Batch = 1
			c.CheckpointInterval = 8
			c.ViewChangeTimeout = 500 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	cl.Net.Crash(7)
	cl.Sched.Schedule(2*time.Second, func() { cl.Net.Crash(1) }) // primary dies too (f=2)
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
	cl.Net.Recover(7)
	more := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if more.Completed != 30 {
		t.Fatalf("completed %d of 30 after recovery", more.Completed)
	}
	cl.Run(time.Minute)
	if cl.Replicas[7].LastExecuted() == 0 {
		t.Fatal("partitioned replica never caught up")
	}
	digestsAgree(t, cl)
}

func TestDropRateResilience(t *testing.T) {
	netCfg := sim.UniformProfile(5 * time.Millisecond)
	netCfg.DropRate = 0.02
	netCfg.Seed = 32
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 32, NetCfg: &netCfg,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: 500 * time.Millisecond,
	})
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 with 2%% message loss (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}
