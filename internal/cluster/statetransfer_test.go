package cluster

import (
	"bytes"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/sim"
)

func TestRecoveredReplicaCatchesUpViaStateTransfer(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 30,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
		},
	})
	// Take replica 4 down early; the rest (exactly a slow quorum of 3)
	// keep committing. With c=0 the fast quorum needs all 4, so the run
	// proceeds on the slow path.
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(30, kvGen, 5*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60 with one crashed replica", res.Completed)
	}

	frontier := cl.Replicas[1].LastExecuted()
	if frontier < 30 {
		t.Fatalf("frontier only %d; want deep history for the catch-up", frontier)
	}

	// Recover replica 4 and drive more traffic so it observes the gap.
	cl.Net.Recover(4)
	more := cl.RunClosedLoop(20, kvGen, 5*time.Minute)
	if more.Completed != 40 {
		t.Fatalf("completed %d of 40 after recovery", more.Completed)
	}
	// Let retransmissions and fetches settle.
	cl.Run(time.Minute)

	r4 := cl.Replicas[4]
	if r4.LastExecuted() == 0 {
		t.Fatal("recovered replica never executed anything (state transfer failed)")
	}
	m := cl.Metrics()
	if m.StateFetches == 0 {
		t.Error("no state fetches recorded despite a deep gap")
	}
	// The recovered replica must be consistent with the others at its
	// frontier: compare digests by re-deriving from another replica's
	// history is not possible here, so check it reached at least the
	// stable point and agrees where frontiers match.
	if r4.LastExecuted() < r4.LastStable() {
		t.Errorf("recovered replica executed %d below its stable point %d", r4.LastExecuted(), r4.LastStable())
	}
	for id := 1; id <= cl.N; id++ {
		if cl.Replicas[id].LastExecuted() == r4.LastExecuted() && id != 4 {
			if !bytes.Equal(cl.Apps[id].Digest(), cl.Apps[4].Digest()) {
				t.Fatalf("recovered replica digest differs from replica %d at same frontier", id)
			}
		}
	}
	digestsAgree(t, cl)
}

func TestLaggardCatchesUpDuringViewChange(t *testing.T) {
	// A replica partitioned through a view change must still converge
	// afterwards via the new-view stable point and state transfer.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 2, C: 0, // n = 7
		Clients: 3, Seed: 31,
		Tune: func(c *core.Config) {
			c.Win = 16
			c.Batch = 1
			c.CheckpointInterval = 8
			c.ViewChangeTimeout = 500 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	cl.Net.Crash(7)
	cl.Sched.Schedule(2*time.Second, func() { cl.Net.Crash(1) }) // primary dies too (f=2)
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
	cl.Net.Recover(7)
	more := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if more.Completed != 30 {
		t.Fatalf("completed %d of 30 after recovery", more.Completed)
	}
	cl.Run(time.Minute)
	if cl.Replicas[7].LastExecuted() == 0 {
		t.Fatal("partitioned replica never caught up")
	}
	digestsAgree(t, cl)
}

func TestDropRateResilience(t *testing.T) {
	netCfg := sim.UniformProfile(5 * time.Millisecond)
	netCfg.DropRate = 0.02
	netCfg.Seed = 32
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 32, NetCfg: &netCfg,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: 500 * time.Millisecond,
	})
	res := cl.RunClosedLoop(20, kvGen, 10*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 with 2%% message loss (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}
