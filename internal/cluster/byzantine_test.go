package cluster

import (
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/sim"
)

// equivocatingPrimary is a Byzantine view-0 primary: it sends conflicting
// pre-prepares for the same sequence number to different halves of the
// cluster (the footnote-3 test scenario: "Primaries sending partial,
// equivocating and/or stale information").
type equivocatingPrimary struct {
	env  core.Env
	cfg  core.Config
	id   int
	seq  uint64
	seen map[string]bool
}

func (b *equivocatingPrimary) Deliver(from int, msg any) {
	m, ok := msg.(core.RequestMsg)
	if !ok {
		return // ignore all protocol duties: never helps commit
	}
	key := string(rune(m.Req.Client)) + "/" + string(rune(int(m.Req.Timestamp)))
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.seq++
	reqA := []core.Request{m.Req}
	evil := m.Req
	evil.Op = append([]byte("EVIL:"), m.Req.Op...)
	reqB := []core.Request{evil}
	ppA := core.PrePrepareMsg{Seq: b.seq, View: 0, Reqs: reqA}
	ppB := core.PrePrepareMsg{Seq: b.seq, View: 0, Reqs: reqB}
	for i := 2; i <= b.cfg.N(); i++ {
		if i%2 == 0 {
			b.env.Send(i, ppA)
		} else {
			b.env.Send(i, ppB)
		}
	}
}

// silentPrimary accepts requests and does nothing: a crash-like Byzantine
// primary that still looks alive at the transport level.
type silentPrimary struct{}

func (silentPrimary) Deliver(int, any) {}

// staleNewViewPrimary ignores requests until a view change reaches it and
// then does nothing with the view-change messages either (a primary
// sending no new-view), forcing escalation past its view.
type staleNewViewPrimary struct{}

func (staleNewViewPrimary) Deliver(int, any) {}

func byzOpts(seed int64, mk func(env core.Env, honest *core.Replica) Node) Options {
	return Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: seed,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = 400 * time.Millisecond
			c.FastPathTimeout = 100 * time.Millisecond
		},
		ClientTimeout: time.Second,
		Byzantine:     map[int]func(core.Env, *core.Replica) Node{1: mk},
	}
}

func TestEquivocatingPrimaryTriggersViewChangeSafely(t *testing.T) {
	var opts Options
	opts = byzOpts(20, func(env core.Env, honest *core.Replica) Node {
		return &equivocatingPrimary{env: env, cfg: honest4Cfg(), id: 1, seen: map[string]bool{}}
	})
	cl := newKV(t, opts)
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under equivocating primary", res.Completed)
	}
	m := cl.Metrics()
	if m.ViewChanges == 0 {
		t.Error("no view change despite equivocating primary")
	}
	digestsAgree(t, cl)
	// Safety: no honest replica may have executed an EVIL operation.
	for id := 2; id <= cl.N; id++ {
		app := cl.Apps[id]
		_ = app
	}
}

func honest4Cfg() core.Config { return core.DefaultConfig(1, 0) }

func TestSilentPrimaryRecovers(t *testing.T) {
	opts := byzOpts(21, func(core.Env, *core.Replica) Node { return silentPrimary{} })
	cl := newKV(t, opts)
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under silent primary", res.Completed)
	}
	m := cl.Metrics()
	if m.ViewChanges == 0 {
		t.Error("no view change despite silent primary")
	}
	digestsAgree(t, cl)
}

func TestBackToBackFaultyPrimaries(t *testing.T) {
	// Primary of view 0 (replica 1) silent AND primary of view 1
	// (replica 2) crashed: two faults, so run with f=2 (n=7). The
	// exponential back-off must escalate through two view changes (§VII).
	opts := byzOpts(22, func(core.Env, *core.Replica) Node { return silentPrimary{} })
	opts.F = 2
	cl := newKV(t, opts)
	cl.Net.Crash(sim.NodeID(2))
	res := cl.RunClosedLoop(10, kvGen, 10*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 with two faulty primaries", res.Completed)
	}
	// Survivors must be past view 1.
	for id := 3; id <= cl.N; id++ {
		if v := cl.Replicas[id].View(); v < 2 {
			t.Errorf("replica %d in view %d, want ≥ 2", id, v)
		}
	}
	digestsAgree(t, cl)
}

// ---------------------------------------------------------------------------
// Scheduled (corrupter-based) Byzantine faults: the engine object stays
// honest, the node's outbound wire traffic lies.

func TestScheduledEquivocatingPrimaryWindow(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 24,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = 500 * time.Millisecond
			c.FastPathTimeout = 100 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	cl.Apply(Schedule{
		{At: 0, Kind: FaultByzEquivocate, Node: 1},
		{At: 4 * time.Second, Kind: FaultByzRestore, Node: 1},
	})
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under scheduled equivocating primary", res.Completed)
	}
	if !cl.IsByzantine(1) {
		t.Error("equivocating replica not marked Byzantine")
	}
	if cl.Net.MsgsCorrupted == 0 {
		t.Error("corrupter never intercepted a send")
	}
	m := cl.Metrics()
	if m.ViewChanges == 0 {
		t.Error("no view change despite equivocating primary")
	}
	// The corrupter never touched the engine's state, so even the marked
	// replica must agree with the honest ones at equal frontiers.
	digestsAgree(t, cl)
}

func TestScheduledSilentReplicaWindow(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 25,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = 500 * time.Millisecond
			c.FastPathTimeout = 100 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	cl.Apply(Schedule{
		{At: 0, Kind: FaultByzSilent, Node: 3},
		{At: 3 * time.Second, Kind: FaultByzRestore, Node: 3},
	})
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 with a silent-but-alive replica", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestScheduledConflictingCheckpointsTolerated(t *testing.T) {
	// Small checkpoint interval so the window actually crosses checkpoint
	// sequences; the Byzantine digests are correctly signed, so only the
	// per-digest f+1 quorum keeps them inert.
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 26,
		Tune: func(c *core.Config) {
			c.Win = 16
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: time.Second,
	})
	cl.Apply(Schedule{{At: 0, Kind: FaultByzConflictCkpt, Node: 2}})
	res := cl.RunClosedLoop(20, kvGen, 5*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 under conflicting checkpoint digests", res.Completed)
	}
	cl.Run(30 * time.Second)
	// Honest replicas must still stabilize checkpoints.
	for id := 1; id <= cl.N; id++ {
		if id == 2 {
			continue
		}
		if ls := cl.Replicas[id].LastStable(); ls == 0 {
			t.Errorf("replica %d never stabilized a checkpoint", id)
		}
	}
	digestsAgree(t, cl)
}

func TestScheduledStaleViewSpamTolerated(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 27,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = time.Second
		},
		ClientTimeout: time.Second,
	})
	cl.Apply(Schedule{{At: 0, Kind: FaultByzStaleView, Node: 4}})
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under stale view-change spam", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestScheduledByzantinePBFTVariants(t *testing.T) {
	// The corrupters must speak the baseline's wire types too.
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 2, Seed: 28,
		ClientTimeout: time.Second,
	})
	cl.Apply(Schedule{
		{At: 0, Kind: FaultByzEquivocate, Node: 1},
		{At: 4 * time.Second, Kind: FaultByzRestore, Node: 1},
		{At: 5 * time.Second, Kind: FaultByzStaleView, Node: 3},
	})
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 under PBFT Byzantine schedule", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestViewChangeUnderLoadPreservesCommits(t *testing.T) {
	// Crash the primary mid-stream with a large in-flight window; blocks
	// committed before the crash must survive into the new view with the
	// same digests (dual-mode view change correctness under load).
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 2, C: 1, // n = 9
		Clients: 8, Seed: 23,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = 500 * time.Millisecond
			c.Batch = 4
		},
		ClientTimeout: time.Second,
	})
	cl.Sched.Schedule(1500*time.Millisecond, func() {
		cl.Net.Crash(1)
	})
	res := cl.RunClosedLoop(25, kvGen, 10*time.Minute)
	if res.Completed != 200 {
		t.Fatalf("completed %d of 200 across a mid-load view change (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}
