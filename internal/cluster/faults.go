package cluster

import (
	"fmt"
	"time"

	"sbft/internal/core"
	"sbft/internal/pbft"
	"sbft/internal/sim"
)

// This file is the cluster-level fault-schedule API of the chaos harness:
// a Schedule of timestamped Fault steps is applied against the simulated
// deployment before (or during) Run/RunClosedLoop, reproducing the paper's
// fault experiments as scripts — "partition the primary at t=2s, heal at
// t=5s" — plus the crash-restart-from-storage path the paper's RocksDB
// persistence implies (§IX).

// FaultKind enumerates scripted fault actions.
type FaultKind int

// Fault actions.
const (
	// FaultCrash crashes replica Node (messages to/from it are dropped;
	// its in-memory state is retained, modeling a paused process).
	FaultCrash FaultKind = iota
	// FaultRecover un-crashes replica Node with its in-memory state.
	FaultRecover
	// FaultRestart rebuilds replica Node from its durable block store and
	// rejoins it (requires Options.Persist): the crash-recover model of
	// the paper's persistent deployment. Implies recovery from a crash.
	FaultRestart
	// FaultPartition moves replica Node into partition Group (non-zero
	// groups cannot talk to each other; group 0 talks to everyone).
	FaultPartition
	// FaultHeal returns every node to partition group 0.
	FaultHeal
	// FaultStraggle delays all messages to/from Node by Extra (0 clears).
	FaultStraggle
	// FaultLink installs a drop/duplicate/reorder rule on the directed
	// link From → To (0 endpoints mean "any node").
	FaultLink
	// FaultLinkClear removes every link rule.
	FaultLinkClear

	// Byzantine fault kinds: each installs a wire-aware sim.Corrupter on
	// replica Node's outbound boundary (the process is compromised, not
	// the engine object — its internal state stays honest, its messages
	// lie) and marks the replica Byzantine for the safety audit.

	// FaultByzEquivocate makes Node an equivocating primary: pre-prepares
	// are rewritten per recipient so different halves of the cluster see
	// conflicting blocks for the same sequence number (footnote-3 of the
	// paper: "primaries sending partial, equivocating and/or stale
	// information"). Non-primary traffic passes through.
	FaultByzEquivocate
	// FaultByzStaleView makes Node a stale-view spammer: alongside its
	// honest traffic it injects view-change messages for stale and
	// near-future views carrying junk certificate evidence.
	FaultByzStaleView
	// FaultByzConflictCkpt makes Node send per-recipient conflicting
	// checkpoint and execution-state digests, correctly signed with its
	// own key shares (signed garbage is within a Byzantine replica's
	// power; only the quorum intersection protects honest replicas).
	FaultByzConflictCkpt
	// FaultByzSilent suppresses all of Node's outbound messages while it
	// keeps receiving: a crash-like replica that still looks alive at the
	// transport level.
	FaultByzSilent
	// FaultByzSnapshot makes Node a Byzantine snapshot server: outbound
	// state-transfer chunks are tampered with (flipped bytes — perturbing
	// the serialized reply table and application state a recovering
	// replica would restore). Because every chunk is Merkle-verified
	// against the π-certified checkpoint root, honest receivers must
	// detect the tampering, blame this server, and finish recovery from
	// the remaining honest servers.
	FaultByzSnapshot
	// FaultByzStaleMeta makes Node a stale-snapshot-meta server: it
	// remembers the OLDEST certified snapshot meta it ever served and
	// keeps answering FetchState with it — the π certificate stays valid,
	// only the sequence is stale. Against a fetcher that adopts the first
	// meta at/above its target, this races the honest servers and can win
	// the initial choice, pinning recovery to a checkpoint whose chunks
	// the cluster may already have garbage-collected; the
	// highest-certified-seq meta selection makes it lose to any honest
	// answer collected in the same window.
	FaultByzStaleMeta
	// FaultByzForgedProof makes Node a forged-proof read server: outbound
	// certified-read replies (core.ReadReplyMsg) are tampered per reply,
	// rotating between flipped chunk bytes, corrupted Merkle proof steps,
	// an inflated certified sequence (breaking the π binding) and
	// replaying a cached stale-but-valid reply below the client's floor.
	// Clients must reject every variant through local verification — the
	// chaos check asserts the catches land client-side, never post-hoc.
	FaultByzForgedProof
	// FaultByzRestore removes Node's corrupter. The engine was never
	// corrupted internally, so the replica resumes honest participation;
	// the audit keeps treating it as Byzantine (sticky mark).
	FaultByzRestore

	// Colluding key-share adversaries: Node plus Peers form ONE coordinated
	// adversary whose members pool their σ/τ/π threshold key material (a
	// real attacker compromising several replicas learns all their shares).
	// Installing any collude kind marks every member Byzantine, and the
	// f budget counts the whole set — collusion does not buy extra slots.

	// FaultByzColludeEquivocate is the joint partial-quorum signer: a
	// member primary deals per-recipient conflicting blocks, every member
	// re-signs its σ/τ shares to match whatever each recipient was dealt,
	// and the coordinator pools observed honest shares with all members'
	// forged shares to combine prepare/commit certificates for whichever
	// variant reaches the slow quorum. With ≤f members both variants are
	// mathematically one honest share short of double-certification; with
	// f+1 members the coordinator forges certified divergence (the
	// over-budget auditor canary).
	FaultByzColludeEquivocate
	// FaultByzColludeCkpt makes the members emit certified-looking
	// CONFLICTING checkpoint and execution-state shares: all members sign
	// the same garbage digest per sequence (mutually consistent, unlike
	// the independent FaultByzConflictCkpt), and each member additionally
	// injects its peers' matching shares — so honest replicas see the
	// whole colluding set backing one fake state, exactly one share short
	// of the f+1 π quorum.
	FaultByzColludeCkpt
	// FaultByzColludeSnapshot coordinates stale snapshot metadata: every
	// member serves the OLDEST certified meta ANY member ever saw, so a
	// recovering replica polling several servers receives f mutually
	// consistent lying answers racing the honest ones.
	FaultByzColludeSnapshot

	// Adaptive role-targeting attacks: instead of corrupting a fixed
	// replica, the attacker reads the deterministic role map (primary,
	// C-collectors, E-collectors per rotation — public knowledge) and
	// retargets benign impairments every period. Node is unused; Extra
	// optionally overrides the retarget period. These consume at-once
	// budget slots but never mark anyone Byzantine.

	// FaultAttackCollectors crashes exactly the c+1 collectors of the next
	// slot each period, alternating between C-collectors (commit path) and
	// E-collectors (execution path, forcing the ExecFallbackTimeout reply
	// fallback), releasing previous targets as the roles rotate.
	FaultAttackCollectors
	// FaultAttackFastPath delays c+1 non-collector replicas just beyond
	// the adaptive fast-timer cap, starving the σ quorum while the τ
	// quorum stays reachable: every block is forced through the §V-E
	// linear fallback without ever stopping commits.
	FaultAttackFastPath
	// FaultAttackPartition drops the directed links from the primary to
	// its current C-collectors, severing share collection while all other
	// traffic flows.
	FaultAttackPartition
	// FaultAttackStop halts the adaptive attacker and heals everything it
	// impaired.
	FaultAttackStop
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRecover:
		return "recover"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultStraggle:
		return "straggle"
	case FaultLink:
		return "link"
	case FaultLinkClear:
		return "link-clear"
	case FaultByzEquivocate:
		return "byz-equivocate"
	case FaultByzStaleView:
		return "byz-stale-view"
	case FaultByzConflictCkpt:
		return "byz-conflict-ckpt"
	case FaultByzSilent:
		return "byz-silent"
	case FaultByzSnapshot:
		return "byz-snapshot"
	case FaultByzStaleMeta:
		return "byz-stale-meta"
	case FaultByzForgedProof:
		return "byz-forged-proof"
	case FaultByzRestore:
		return "byz-restore"
	case FaultByzColludeEquivocate:
		return "byz-collude-equivocate"
	case FaultByzColludeCkpt:
		return "byz-collude-ckpt"
	case FaultByzColludeSnapshot:
		return "byz-collude-snapshot"
	case FaultAttackCollectors:
		return "attack-collectors"
	case FaultAttackFastPath:
		return "attack-fastpath"
	case FaultAttackPartition:
		return "attack-partition"
	case FaultAttackStop:
		return "attack-stop"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Byzantine reports whether the kind installs or removes a corrupter.
func (k FaultKind) Byzantine() bool {
	switch k {
	case FaultByzEquivocate, FaultByzStaleView, FaultByzConflictCkpt,
		FaultByzSilent, FaultByzSnapshot, FaultByzStaleMeta, FaultByzForgedProof,
		FaultByzRestore,
		FaultByzColludeEquivocate, FaultByzColludeCkpt, FaultByzColludeSnapshot:
		return true
	}
	return false
}

// Fault is one timestamped step of a fault schedule.
type Fault struct {
	// At is the absolute virtual time the fault applies.
	At   time.Duration
	Kind FaultKind
	// Node is the target replica for Crash/Recover/Restart/Partition/
	// Straggle.
	Node int
	// Group is the partition group for FaultPartition.
	Group int
	// Extra is the straggler delay for FaultStraggle.
	Extra time.Duration
	// From and To are the directed link endpoints for FaultLink; 0 is a
	// wildcard matching any node.
	From, To int
	// Link is the injected link behavior for FaultLink.
	Link sim.LinkFault
	// Peers lists the accomplice replicas for the FaultByzCollude* kinds:
	// Node and Peers together form one colluding adversary set.
	Peers []int
}

// String renders the step for chaos reports.
func (f Fault) String() string {
	switch f.Kind {
	case FaultPartition:
		return fmt.Sprintf("%v %s r%d→g%d", f.At, f.Kind, f.Node, f.Group)
	case FaultStraggle:
		return fmt.Sprintf("%v %s r%d +%v", f.At, f.Kind, f.Node, f.Extra)
	case FaultLink:
		return fmt.Sprintf("%v %s %d→%d drop=%.2f dup=%.2f reorder=%v",
			f.At, f.Kind, f.From, f.To, f.Link.Drop, f.Link.Duplicate, f.Link.ReorderJitter)
	case FaultHeal, FaultLinkClear, FaultAttackStop:
		return fmt.Sprintf("%v %s", f.At, f.Kind)
	case FaultByzColludeEquivocate, FaultByzColludeCkpt, FaultByzColludeSnapshot:
		return fmt.Sprintf("%v %s r%d+%v", f.At, f.Kind, f.Node, f.Peers)
	case FaultAttackCollectors, FaultAttackFastPath, FaultAttackPartition:
		return fmt.Sprintf("%v %s period=%v", f.At, f.Kind, f.Extra)
	default:
		return fmt.Sprintf("%v %s r%d", f.At, f.Kind, f.Node)
	}
}

// Schedule is a scripted fault timeline.
type Schedule []Fault

// linkEnd maps a schedule endpoint (0 = wildcard) to a sim node.
func linkEnd(id int) sim.NodeID {
	if id == 0 {
		return sim.AnyNode
	}
	return sim.NodeID(id)
}

// Apply schedules every fault step against the cluster's simulator. Steps
// fire at their absolute virtual times during subsequent Run or
// RunClosedLoop calls. Errors from steps (e.g. a failed restart) collect
// in cl.FaultErrors.
func (cl *Cluster) Apply(s Schedule) {
	adv := sim.NewAdversary(cl.Net)
	for _, f := range s {
		f := f
		adv.Do(f.At, func() { cl.applyFault(f) })
	}
}

// applyFault executes one fault step immediately.
func (cl *Cluster) applyFault(f Fault) {
	switch f.Kind {
	case FaultCrash:
		cl.Net.Crash(sim.NodeID(f.Node))
	case FaultRecover:
		cl.Net.Recover(sim.NodeID(f.Node))
	case FaultRestart:
		if err := cl.RestartReplica(f.Node); err != nil {
			cl.FaultErrors = append(cl.FaultErrors, fmt.Errorf("restart r%d at %v: %w", f.Node, f.At, err))
		}
	case FaultPartition:
		cl.Net.SetPartition(sim.NodeID(f.Node), f.Group)
	case FaultHeal:
		cl.Net.HealPartitions()
	case FaultStraggle:
		cl.Net.SetStraggler(sim.NodeID(f.Node), f.Extra)
	case FaultLink:
		cl.Net.SetLinkFault(linkEnd(f.From), linkEnd(f.To), f.Link)
	case FaultLinkClear:
		cl.Net.ClearLinkFaults()
	case FaultByzEquivocate, FaultByzStaleView, FaultByzConflictCkpt,
		FaultByzSilent, FaultByzSnapshot, FaultByzStaleMeta, FaultByzForgedProof,
		FaultByzRestore:
		if err := cl.InstallByzantine(f.Node, f.Kind); err != nil {
			cl.FaultErrors = append(cl.FaultErrors, fmt.Errorf("%s r%d at %v: %w", f.Kind, f.Node, f.At, err))
		}
	case FaultByzColludeEquivocate, FaultByzColludeCkpt, FaultByzColludeSnapshot:
		if err := cl.InstallColluders(f.Kind, append([]int{f.Node}, f.Peers...)); err != nil {
			cl.FaultErrors = append(cl.FaultErrors, fmt.Errorf("%s r%d+%v at %v: %w", f.Kind, f.Node, f.Peers, f.At, err))
		}
	case FaultAttackCollectors, FaultAttackFastPath, FaultAttackPartition:
		if err := cl.StartAdaptiveAttack(f.Kind, f.Extra); err != nil {
			cl.FaultErrors = append(cl.FaultErrors, fmt.Errorf("%s at %v: %w", f.Kind, f.At, err))
		}
	case FaultAttackStop:
		cl.StopAdaptiveAttack()
	default:
		cl.FaultErrors = append(cl.FaultErrors, fmt.Errorf("unknown fault kind %d at %v", f.Kind, f.At))
	}
}

// RestartReplica rebuilds replica id from its durable block store — the
// process-crash-and-restart path: the old in-memory replica is discarded,
// a fresh application replays the persisted block log, and the rebuilt
// replica takes over the node's network identity and rejoins (catching up
// via gap repair or state transfer). Requires Options.Persist; covers
// both the SBFT variants and the PBFT baseline.
func (cl *Cluster) RestartReplica(id int) error {
	if !cl.Opts.Persist {
		return fmt.Errorf("cluster: restart requires Options.Persist")
	}
	if id < 1 || id > cl.N {
		return fmt.Errorf("cluster: replica id %d out of range [1,%d]", id, cl.N)
	}
	if _, byz := cl.Opts.Byzantine[id]; byz {
		return fmt.Errorf("cluster: replica %d is Byzantine; restart models honest crash-recovery", id)
	}
	// Drop the process: kill the old env so the abandoned replica's timer
	// callbacks and sends are suppressed, exactly as a process death would.
	cl.Net.Crash(sim.NodeID(id))
	if old := cl.envs[id]; old != nil {
		old.dead = true
	}
	if old := cl.Stores[id]; old != nil {
		if err := old.Close(); err != nil {
			return fmt.Errorf("cluster: closing store of replica %d: %w", id, err)
		}
	}
	led, err := cl.openStore(id)
	if err != nil {
		return err
	}
	app, err := cl.newApp(id)
	if err != nil {
		return err
	}
	e := &env{id: id, net: cl.Net, sched: cl.Sched}
	var node Node
	if cl.Opts.Protocol == ProtoPBFT {
		rep, err := pbft.NewRecoveredReplica(id, cl.PBFTCfg, app, e, led)
		if err != nil {
			return fmt.Errorf("cluster: recovering replica %d: %w", id, err)
		}
		cl.PBFTReplicas[id] = rep
		node = rep
	} else {
		rep, err := core.NewRecoveredReplica(id, cl.Cfg, cl.Suite, cl.keys[id-1], app, e, led)
		if err != nil {
			return fmt.Errorf("cluster: recovering replica %d: %w", id, err)
		}
		cl.installSink(rep, e, led)
		cl.installCryptoPool(rep, e)
		cl.Replicas[id] = rep
		node = rep
	}
	cl.envs[id] = e
	cl.Apps[id] = app
	if err := cl.Net.Reattach(sim.NodeID(id), handler{node}); err != nil {
		return err
	}
	cl.Net.Recover(sim.NodeID(id))
	return nil
}
