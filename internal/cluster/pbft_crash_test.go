package cluster

import (
	"testing"
	"time"
)

func TestPBFTSurvivesCrashedBackups(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 2, Seed: 60,
	})
	cl.CrashReplicas(1) // quorum 3 of the 3 remaining
	res := cl.RunClosedLoop(10, kvGen, 5*time.Minute)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 with one crashed backup (retries=%d)", res.Completed, res.Retries)
	}
	digestsAgree(t, cl)
}
