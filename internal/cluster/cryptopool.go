package cluster

import (
	"time"

	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
)

// poolSink is the simulated cluster's core.CryptoSink: a modeled pool of
// crypto workers advancing in VIRTUAL time. Each worker has a busy
// horizon; a job runs on the earliest-free worker, paying the cost-model
// price for its share batch, and its continuation fires on the
// deterministic event loop when that worker finishes. There are no real
// threads — determinism is exactly the point: the seeded chaos sweeps
// must reproduce bit-for-bit with the pool enabled, while the model
// still captures what a real pool buys (verification overlaps the event
// loop, and per-slot batches ride the cheap RLC path).
//
// The sink is scheduled through the replica's env, so a restart (dead
// env) suppresses in-flight completions the same way it suppresses the
// dead process's timers.
type poolSink struct {
	env   *env
	suite core.CryptoSuite
	costs CostModel // zero-valued under FreeCPU: the pool is then free too
	// horizon[i] is the virtual time worker i becomes free.
	horizon []time.Duration
}

// newPoolSink builds a pool of `workers` modeled crypto workers.
func newPoolSink(e *env, suite core.CryptoSuite, costs CostModel, workers int) *poolSink {
	if workers < 1 {
		workers = 1
	}
	return &poolSink{env: e, suite: suite, costs: costs, horizon: make([]time.Duration, workers)}
}

// schedule books cost on the earliest-free worker and runs fn on the
// event loop when that worker finishes.
func (p *poolSink) schedule(cost time.Duration, fn func()) {
	now := p.env.sched.Now()
	w := 0
	for i := 1; i < len(p.horizon); i++ {
		if p.horizon[i] < p.horizon[w] {
			w = i
		}
	}
	start := p.horizon[w]
	if start < now {
		start = now
	}
	end := start + cost
	p.horizon[w] = end
	p.env.After(end-now, fn)
}

// VerifyShares implements core.CryptoSink.
func (p *poolSink) VerifyShares(jobs []core.VerifyJob, done func(ok [][]threshsig.Share)) {
	var cost time.Duration
	for _, j := range jobs {
		cost += p.costs.ShareVerifyCost(len(j.Shares))
	}
	p.schedule(cost, func() {
		ok := make([][]threshsig.Share, len(jobs))
		for i, j := range jobs {
			ok[i] = core.VerifyJobShares(p.suite, j)
		}
		done(ok)
	})
}

// Combine implements core.CryptoSink.
func (p *poolSink) Combine(kind core.ShareKind, digest []byte, shares []threshsig.Share, done func(threshsig.Signature, error)) {
	p.schedule(p.costs.CombineVerified, func() {
		sig, err := core.SchemeFor(p.suite, kind).CombineVerified(digest, shares)
		done(sig, err)
	})
}

// installCryptoPool arms the modeled verification pool on an SBFT
// replica when Options.CryptoPool asks for one.
func (cl *Cluster) installCryptoPool(rep *core.Replica, e *env) {
	if cl.Opts.CryptoPool <= 0 {
		return
	}
	rep.SetCryptoSink(newPoolSink(e, cl.Suite, cl.costs, cl.Opts.CryptoPool))
}
