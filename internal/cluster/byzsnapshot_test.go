package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// bigKVGen writes 1KiB values so a checkpoint snapshot spans many chunks —
// forcing a recovering replica to spread chunk requests across every
// server, Byzantine ones included.
func bigKVGen(client, i int) []byte {
	return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), bytes.Repeat([]byte{byte(i)}, 1024))
}

// TestByzantineSnapshotServerBlamedAndRecoveryCompletes is the acceptance
// scenario for certified state transfer: a replica falls a whole
// checkpoint interval behind, and one of the snapshot servers it fetches
// from tampers with chunks (including the serialized last-reply table).
// The recovering replica must detect every tampered chunk against the
// π-certified root, blame the tampering server, and complete recovery
// from the remaining honest servers with dedup state exactly matching the
// certified digest.
func TestByzantineSnapshotServerBlamedAndRecoveryCompletes(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 77,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
		},
	})
	defer cl.Close()

	// Replica 4 misses a deep stretch of history; the remaining slow
	// quorum of 3 keeps committing past several checkpoints (slot state
	// below the stable point is garbage-collected, so catch-up must go
	// through state transfer, not gap repair).
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(30, bigKVGen, 5*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60 with one crashed replica", res.Completed)
	}

	// One of the three live servers starts tampering with snapshot chunks.
	if err := cl.InstallByzantine(2, FaultByzSnapshot); err != nil {
		t.Fatal(err)
	}

	cl.Net.Recover(4)
	more := cl.RunClosedLoop(10, bigKVGen, 5*time.Minute)
	if more.Completed != 20 {
		t.Fatalf("completed %d of 20 after recovery", more.Completed)
	}
	cl.Run(time.Minute)

	r4 := cl.Replicas[4]
	if r4.LastExecuted() == 0 {
		t.Fatal("recovering replica never executed anything (state transfer failed)")
	}
	if r4.Metrics.StateFetches == 0 {
		t.Error("no state fetch despite a deep gap")
	}
	if r4.Metrics.SnapshotChunks == 0 {
		t.Error("no snapshot chunks fetched; scenario did not exercise chunked transfer")
	}
	// Detection and blame: the tampering server was caught by chunk
	// verification, and only that server was blamed.
	blames := r4.SnapshotBlameCounts()
	if blames[2] == 0 {
		t.Fatalf("Byzantine snapshot server 2 was not blamed (blames: %v, chunks: %d)",
			blames, r4.Metrics.SnapshotChunks)
	}
	for id, n := range blames {
		if id != 2 && n > 0 {
			t.Errorf("honest server %d was blamed %d times", id, n)
		}
	}
	// Recovery completed from the honest servers: application state agrees
	// and — the certified part — the dedup/last-reply state matches an
	// honest replica at the same frontier.
	digestsAgree(t, cl)
	for id := 1; id <= cl.N; id++ {
		if id == 4 || cl.IsByzantine(id) {
			continue
		}
		if cl.Replicas[id].LastExecuted() == r4.LastExecuted() {
			if !bytes.Equal(cl.Replicas[id].ExecutionStateDigest(), r4.ExecutionStateDigest()) {
				t.Fatalf("replica %d and recovered replica 4 disagree on execution state (reply table) at frontier %d",
					id, r4.LastExecuted())
			}
		}
	}
}

// TestSnapshotTamperFaultKindMarksByzantine pins the fault-kind plumbing:
// FaultByzSnapshot installs a corrupter, marks the node Byzantine for the
// safety audit, and reports itself as a Byzantine kind.
func TestSnapshotTamperFaultKindMarksByzantine(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0, Clients: 1, Seed: 78,
	})
	defer cl.Close()
	if err := cl.InstallByzantine(3, FaultByzSnapshot); err != nil {
		t.Fatal(err)
	}
	if !cl.IsByzantine(3) {
		t.Fatal("FaultByzSnapshot did not mark the replica Byzantine")
	}
	if !FaultByzSnapshot.Byzantine() {
		t.Fatal("FaultByzSnapshot.Byzantine() = false")
	}
	if s := FaultByzSnapshot.String(); !strings.Contains(s, "snapshot") {
		t.Fatalf("FaultByzSnapshot.String() = %q", s)
	}
}

// TestStaleMetaByzantineServerLosesRace is the cluster-level stale-meta
// regression scenario: a recovering replica fetches snapshot metadata
// from all servers, one of which is a FaultByzStaleMeta adversary
// replaying an old-but-valid certified meta. With first-accepted-meta
// selection the adversary could pin recovery to a garbage-collected
// checkpoint; with highest-certified-seq selection recovery must complete
// at the honest frontier, with no honest server blamed.
func TestStaleMetaByzantineServerLosesRace(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 81,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
			c.ViewChangeTimeout = 2 * time.Second
		},
	})
	defer cl.Close()

	// The adversary serves metas from the start, so the meta it caches is
	// from an early checkpoint — stale by the time replica 4 recovers.
	if err := cl.InstallByzantine(2, FaultByzStaleMeta); err != nil {
		t.Fatal(err)
	}
	cl.Net.Crash(4)
	res := cl.RunClosedLoop(30, bigKVGen, 5*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60 with one crashed replica", res.Completed)
	}

	cl.Net.Recover(4)
	more := cl.RunClosedLoop(10, bigKVGen, 5*time.Minute)
	if more.Completed != 20 {
		t.Fatalf("completed %d of 20 after recovery", more.Completed)
	}
	cl.Run(time.Minute)

	r4 := cl.Replicas[4]
	if r4.Metrics.StateFetches == 0 {
		t.Error("no state fetch despite a deep gap")
	}
	// Recovery must land at (or beyond) the honest stable frontier, not
	// at the adversary's stale checkpoint.
	honestStable := uint64(0)
	for id := 1; id <= cl.N; id++ {
		if id != 4 && !cl.IsByzantine(id) && cl.Replicas[id].LastStable() > honestStable {
			honestStable = cl.Replicas[id].LastStable()
		}
	}
	if r4.LastExecuted() < honestStable {
		t.Fatalf("recovery pinned behind the honest frontier: le=%d, honest stable=%d",
			r4.LastExecuted(), honestStable)
	}
	// The stale meta is authentic, so nobody gets blamed for tampering —
	// and in particular no HONEST server may be blamed.
	for id, n := range r4.SnapshotBlameCounts() {
		if !cl.IsByzantine(id) && n > 0 {
			t.Errorf("honest server %d was blamed %d times", id, n)
		}
	}
	digestsAgree(t, cl)
}

// TestAsyncSnapshotPersistenceArmsDurable pins the async sink wiring: a
// persisted cluster replica (async sink by default) arms its durable
// serving point only via the sink completion, and the durable point
// converges to the served snapshot once the modeled disk delay passes.
func TestAsyncSnapshotPersistenceArmsDurable(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 82, Persist: true,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
		},
	})
	defer cl.Close()

	res := cl.RunClosedLoop(15, kvGen, 2*time.Minute)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	cl.Run(30 * time.Second) // sink completions land (2ms modeled delay)
	for id := 1; id <= cl.N; id++ {
		r := cl.Replicas[id]
		if r.SnapshotSeq() == 0 {
			t.Fatalf("replica %d never adopted a snapshot", id)
		}
		if r.DurableSnapshotSeq() != r.SnapshotSeq() {
			t.Fatalf("replica %d durable snapshot %d lags served %d after settle",
				id, r.DurableSnapshotSeq(), r.SnapshotSeq())
		}
		if r.Metrics.SnapshotPersists == 0 {
			t.Fatalf("replica %d recorded no async persists", id)
		}
	}
}

// TestRestartedReplicaServesDurableSnapshot pins the storage leg of
// certified state transfer: a replica that persisted a stable certified
// snapshot re-arms serving from disk after restart-from-storage — it can
// answer FetchState with a verifiable snapshot before reaching its next
// checkpoint.
func TestRestartedReplicaServesDurableSnapshot(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 79, Persist: true,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
		},
	})
	defer cl.Close()

	res := cl.RunClosedLoop(15, kvGen, 2*time.Minute)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	cl.Run(30 * time.Second) // let checkpoints stabilize and persist
	preSnap := cl.Replicas[3].SnapshotSeq()
	if preSnap == 0 {
		t.Fatal("replica 3 never adopted a servable snapshot")
	}

	cl.Net.Crash(3)
	if err := cl.RestartReplica(3); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	if got := cl.Replicas[3].SnapshotSeq(); got != preSnap {
		t.Fatalf("restarted replica serves snapshot %d, want %d (durable re-arm failed)", got, preSnap)
	}
}
