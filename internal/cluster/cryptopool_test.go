package cluster

import (
	"fmt"
	"testing"
	"time"

	"sbft/internal/core"
)

// shareMsgs lists the share-carrying messages whose verification the
// pool takes over.
func shareMsgs() []any {
	return []any{
		core.SignShareMsg{},
		core.CommitMsg{},
		core.SignStateMsg{},
		core.CheckpointShareMsg{},
	}
}

func poolWorkload(t *testing.T, pool int, seed int64) WorkloadResult {
	t.Helper()
	cl, err := New(Options{
		Protocol:   ProtoSBFT,
		F:          1,
		Clients:    8,
		Seed:       seed,
		CryptoPool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen := func(client, i int) []byte {
		return []byte(fmt.Sprintf("SET k%d-%d v", client, i))
	}
	res := cl.RunClosedLoop(30, gen, 60*time.Second)
	if res.Completed != 8*30 {
		t.Fatalf("pool=%d completed %d/240 ops", pool, res.Completed)
	}
	return res
}

func TestCryptoPoolCommitsAndIsDeterministic(t *testing.T) {
	a := poolWorkload(t, 2, 42)
	b := poolWorkload(t, 2, 42)
	// The modeled pool runs entirely in virtual time: identical seeds must
	// reproduce the run bit-for-bit, or the chaos sweeps lose their
	// replay-from-seed property.
	if a != b {
		t.Fatalf("pool run not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}

func TestCryptoPoolSingleWorkerStaysLive(t *testing.T) {
	// CryptoPool=1 is the configuration the chaos generators run with:
	// every verification serializes through one modeled worker, which
	// maximizes queueing and batch aggregation. It must still complete a
	// full closed-loop workload.
	poolWorkload(t, 1, 7)
}

func TestCryptoPoolOffloadCosts(t *testing.T) {
	// With offload on, the event loop no longer pays share verification
	// on receipt; the pool prices batches through ShareVerifyCost.
	cm := DefaultCosts()
	base := cm
	cm.offload = true
	cm.workers = 4

	for _, msg := range shareMsgs() {
		if got := cm.RecvCost(msg, 100); got != cm.Base {
			t.Fatalf("offloaded RecvCost(%T) = %v, want handling floor %v", msg, got, cm.Base)
		}
		if got := base.RecvCost(msg, 100); got <= base.Base {
			t.Fatalf("inline RecvCost(%T) = %v, want > %v", msg, got, base.Base)
		}
	}
	if one, batch := cm.ShareVerifyCost(1), cm.ShareVerifyCost(8); batch >= 8*one {
		t.Fatalf("batch of 8 costs %v, not cheaper than 8 singles (%v)", batch, 8*one)
	}
	if cm.ShareVerifyCost(0) != 0 {
		t.Fatal("empty batch should be free")
	}
}
