package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

// readTestCluster builds an SBFT KV cluster checkpointing every 4
// sequences with single-request blocks, so the certified frontier tracks
// the write stream closely.
func readTestCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	return newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 1, Seed: seed,
		Tune: func(c *core.Config) {
			c.CheckpointInterval = 4
			c.Batch = 1
		},
	})
}

// runUntil advances the simulation until cond holds or the horizon
// passes.
func runUntil(cl *Cluster, horizon time.Duration, cond func() bool) {
	deadline := cl.Sched.Now() + horizon
	for !cond() && cl.Sched.Now() < deadline {
		if cl.Sched.Run(deadline, 10_000) == 0 {
			break
		}
	}
}

// write submits one put and blocks (in virtual time) until it completes.
func writeKV(t *testing.T, cl *Cluster, key, val string) {
	t.Helper()
	c := cl.Clients[0]
	done := false
	c.SetOnResult(func(core.Result) { done = true })
	if err := c.Submit(kvstore.Put(key, []byte(val))); err != nil {
		t.Fatalf("submit %s: %v", key, err)
	}
	runUntil(cl, 30*time.Second, func() bool { return done })
	if !done {
		t.Fatalf("write %s did not complete", key)
	}
}

// TestCertifiedReadLaggardFailover is the deterministic read-your-writes
// scenario: the client's writes advance the certified frontier past S,
// replica 4 is partitioned away (clients still reach it) so its frontier
// freezes below S, and a certified read AIMED at the laggard must come
// back ReadBehind, fail over, and complete as a verified single-replica
// read of the written value — never a stale one, never the ordered path.
func TestCertifiedReadLaggardFailover(t *testing.T) {
	cl := readTestCluster(t, 7)
	defer cl.Close()
	c := cl.Clients[0]

	// Phase 1: baseline writes every replica certifies (past the first
	// checkpoint at seq 4).
	for i := 0; i < 6; i++ {
		writeKV(t, cl, fmt.Sprintf("pre/k%d", i), fmt.Sprintf("pre-value-%d", i))
	}
	runUntil(cl, 20*time.Second, func() bool {
		return cl.Replicas[4].LastStable() > 0
	})
	laggardFrontier := cl.Replicas[4].LastStable()
	if laggardFrontier == 0 {
		t.Fatal("replica 4 never stabilized a checkpoint")
	}

	// Phase 2: freeze replica 4 (replica-only partition; clients reach
	// every group) and write past its frontier until some connected
	// replica certifies a checkpoint at or above the client's floor.
	for id := 1; id <= cl.N; id++ {
		g := 2
		if id == 4 {
			g = 1
		}
		cl.Net.SetPartition(sim.NodeID(id), g)
	}
	for i := 0; i < 40; i++ {
		writeKV(t, cl, fmt.Sprintf("post/k%d", i), fmt.Sprintf("post-value-%d", i))
		reach := false
		runUntil(cl, 10*time.Second, func() bool {
			reach = cl.Replicas[1].LastStable() >= c.SeqFloor()
			return reach
		})
		if reach {
			break
		}
	}
	floor := c.SeqFloor()
	if cl.Replicas[1].LastStable() < floor {
		t.Fatalf("connected replicas never certified the floor: stable=%d floor=%d",
			cl.Replicas[1].LastStable(), floor)
	}
	if got := cl.Replicas[4].LastStable(); got >= floor {
		t.Fatalf("laggard kept up (stable=%d, floor=%d); partition ineffective", got, floor)
	}

	// Phase 3: read a pre-partition key, aimed straight at the laggard.
	var res *core.ReadResult
	c.SetOnReadResult(func(r core.ReadResult) { res = &r })
	if err := c.SubmitReadAt(kvstore.Get("pre/k0"), 4); err != nil {
		t.Fatalf("SubmitReadAt: %v", err)
	}
	runUntil(cl, 30*time.Second, func() bool { return res != nil })
	if res == nil {
		t.Fatal("read never completed")
	}
	if res.Ordered {
		t.Fatalf("read fell back to the ordering path (failovers=%d)", res.Failovers)
	}
	if res.Failovers < 1 {
		t.Fatalf("read completed without failing over from the laggard (replica=%d)", res.Replica)
	}
	if res.Replica == 4 {
		t.Fatal("stale laggard served the read")
	}
	if !res.Found || !bytes.Equal(res.Val, []byte("pre-value-0")) {
		t.Fatalf("read-your-writes violation: found=%v val=%q", res.Found, res.Val)
	}
	if res.Seq < floor {
		t.Fatalf("verified read at seq %d below the client floor %d", res.Seq, floor)
	}
	m := cl.Metrics()
	if m.ReadsBehind == 0 {
		t.Error("laggard never refused ReadBehind")
	}
	if m.ReadsServed == 0 {
		t.Error("no certified read served")
	}
	if m.ReadBatches == 0 {
		t.Error("read batch counter never advanced")
	}
	if c.ReadsCompleted != 1 {
		t.Errorf("client completed %d certified reads, want 1", c.ReadsCompleted)
	}
	if m.Executions == 0 {
		t.Error("no executions counted despite committed writes")
	}
	// Checkpoints here capture through the incremental path (the KV app
	// is a ChunkedSnapshotter), so written buckets must register dirty.
	if cl.Replicas[1].Metrics.CheckpointDirtyChunks == 0 {
		t.Error("incremental checkpoint captures counted no dirty chunks")
	}
}

// TestCertifiedReadBeforeFirstCheckpoint pins the bootstrap path: with no
// π-certified snapshot anywhere, every replica refuses ReadUnavailable
// and the client must complete the read through the ordering path.
func TestCertifiedReadBeforeFirstCheckpoint(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 1, Seed: 11,
		Tune: func(c *core.Config) {
			c.CheckpointInterval = 1 << 20 // never checkpoint
			c.Batch = 1
		},
	})
	defer cl.Close()
	c := cl.Clients[0]
	writeKV(t, cl, "boot/k0", "boot-value")

	var res *core.ReadResult
	c.SetOnReadResult(func(r core.ReadResult) { res = &r })
	if err := c.SubmitRead(kvstore.Get("boot/k0")); err != nil {
		t.Fatalf("SubmitRead: %v", err)
	}
	runUntil(cl, 60*time.Second, func() bool { return res != nil })
	if res == nil {
		t.Fatal("read never completed")
	}
	if !res.Ordered {
		t.Fatalf("read claims a certified path with no certified snapshot (seq=%d replica=%d)",
			res.Seq, res.Replica)
	}
	if !res.Found || !bytes.Equal(res.Val, []byte("boot-value")) {
		t.Fatalf("ordered fallback read found=%v val=%q", res.Found, res.Val)
	}
	if cl.Metrics().ReadsUnavailable == 0 {
		t.Error("no replica counted a ReadUnavailable refusal")
	}
	if c.ReadFallbacks != 1 {
		t.Errorf("client counted %d ordered fallbacks, want 1", c.ReadFallbacks)
	}
}
