package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

func kvGen(client, i int) []byte {
	return kvstore.Put(fmt.Sprintf("c%d/k%d", client, i), []byte(fmt.Sprintf("v%d", i)))
}

func newKV(t *testing.T, opts Options) *Cluster {
	t.Helper()
	cl, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return cl
}

// digestsAgree checks that all live replicas that executed to the same
// frontier share the state digest (the paper's safety property §VI applied
// to the app layer).
func digestsAgree(t *testing.T, cl *Cluster) {
	t.Helper()
	byFrontier := make(map[uint64][]byte)
	for id := 1; id <= cl.N; id++ {
		if cl.Net.Crashed(sim.NodeID(id)) {
			continue
		}
		var le uint64
		if cl.Replicas != nil && cl.Replicas[id] != nil {
			le = cl.Replicas[id].LastExecuted()
		} else if cl.PBFTReplicas != nil && cl.PBFTReplicas[id] != nil {
			le = cl.PBFTReplicas[id].LastExecuted()
		}
		d := cl.Apps[id].Digest()
		if prev, ok := byFrontier[le]; ok && !bytes.Equal(prev, d) {
			t.Fatalf("replica %d digest differs at frontier %d", id, le)
		}
		byFrontier[le] = d
	}
}

func TestSBFTSmallClusterCommits(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 4, Seed: 1,
	})
	res := cl.RunClosedLoop(10, kvGen, 60*time.Second)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 ops (retries=%d)", res.Completed, res.Retries)
	}
	if res.FastAcks == 0 {
		t.Error("no operations confirmed through the single-ack fast path")
	}
	m := cl.Metrics()
	if m.FastCommits == 0 {
		t.Error("no fast-path commits in a failure-free run")
	}
	if m.ViewChanges != 0 {
		t.Errorf("unexpected view changes: %d", m.ViewChanges)
	}
	digestsAgree(t, cl)
}

func TestSBFTWithRedundancy(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 1, // n = 6
		Clients: 4, Seed: 2,
	})
	res := cl.RunClosedLoop(10, kvGen, 60*time.Second)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestSBFTFastPathSurvivesCStragglers(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 1, // fast quorum 3f+c+1 = 5 of 6
		Clients: 2, Seed: 3,
	})
	cl.SetStragglers(1, 2*time.Second)
	res := cl.RunClosedLoop(10, kvGen, 120*time.Second)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20", res.Completed)
	}
	m := cl.Metrics()
	if m.FastCommits == 0 {
		t.Error("fast path abandoned despite c-tolerable straggler")
	}
	digestsAgree(t, cl)
}

func TestSBFTFallsBackToSlowPathOnCrashes(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0, // n=4, fast quorum 4
		Clients: 2, Seed: 4,
		Tune: func(c *core.Config) {
			c.FastPathTimeout = 50 * time.Millisecond
		},
	})
	cl.CrashReplicas(1) // one crash kills the fast path (needs all 4)
	res := cl.RunClosedLoop(10, kvGen, 120*time.Second)
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20 (retries=%d)", res.Completed, res.Retries)
	}
	m := cl.Metrics()
	if m.SlowCommits == 0 {
		t.Error("no slow-path commits despite fast quorum being unreachable")
	}
	// The downgrade must be observable, not inferred: collectors waited
	// out their fast timers and engaged the linear path.
	if m.CollectorTimeouts == 0 {
		t.Error("no collector fast-timer expirations recorded")
	}
	if m.FastPathDowngrades == 0 {
		t.Error("no fast→linear downgrades recorded despite slow commits")
	}
	digestsAgree(t, cl)
}

func TestLinearPBFTVariant(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoLinearPBFT, F: 1,
		Clients: 3, Seed: 5,
	})
	res := cl.RunClosedLoop(10, kvGen, 60*time.Second)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	if res.FastAcks != 0 {
		t.Error("exec-collector acks seen with collectors disabled")
	}
	m := cl.Metrics()
	if m.FastCommits != 0 {
		t.Error("fast commits seen with fast path disabled")
	}
	digestsAgree(t, cl)
}

func TestLinearFastVariant(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoLinearFast, F: 1,
		Clients: 3, Seed: 6,
	})
	res := cl.RunClosedLoop(10, kvGen, 60*time.Second)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	m := cl.Metrics()
	if m.FastCommits == 0 {
		t.Error("no fast commits with fast path enabled")
	}
	digestsAgree(t, cl)
}

func TestPBFTBaseline(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 3, Seed: 7,
	})
	res := cl.RunClosedLoop(10, kvGen, 60*time.Second)
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestViewChangeOnPrimaryCrash(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 8,
		Tune: func(c *core.Config) {
			c.ViewChangeTimeout = 500 * time.Millisecond
		},
		ClientTimeout: time.Second,
	})
	// Crash the view-0 primary (replica 1) mid-stream.
	cl.Sched.Schedule(700*time.Millisecond, func() {
		cl.Net.Crash(1)
	})
	res := cl.RunClosedLoop(20, kvGen, 5*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 after primary crash (retries=%d)", res.Completed, res.Retries)
	}
	m := cl.Metrics()
	if m.ViewChanges == 0 {
		t.Error("no view change despite primary crash")
	}
	for id := 2; id <= cl.N; id++ {
		if v := cl.Replicas[id].View(); v == 0 {
			t.Errorf("replica %d still in view 0", id)
		}
	}
	digestsAgree(t, cl)
}

func TestPBFTViewChangeOnPrimaryCrash(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 1,
		Clients: 2, Seed: 9,
		TunePBFT:      nil,
		ClientTimeout: time.Second,
	})
	cl.Sched.Schedule(2*time.Second, func() {
		cl.Net.Crash(1)
	})
	res := cl.RunClosedLoop(20, kvGen, 5*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 after primary crash", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestWorldScaleSmall(t *testing.T) {
	netCfg := sim.WorldProfile(10)
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 2, C: 1, // n = 9
		Clients: 4, Seed: 10, NetCfg: &netCfg,
	})
	res := cl.RunClosedLoop(10, kvGen, 2*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	digestsAgree(t, cl)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() WorkloadResult {
		cl := newKV(t, Options{
			Protocol: ProtoSBFT, F: 1, C: 0,
			Clients: 3, Seed: 11,
		})
		return cl.RunClosedLoop(10, kvGen, 60*time.Second)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Duration != b.Duration || a.MsgsSent != b.MsgsSent {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	cl := newKV(t, Options{
		Protocol: ProtoSBFT, F: 1, C: 0,
		Clients: 2, Seed: 12,
		Tune: func(c *core.Config) {
			c.Win = 8
			c.Batch = 1
			c.CheckpointInterval = 4
		},
	})
	res := cl.RunClosedLoop(30, kvGen, 5*time.Minute)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
	m := cl.Metrics()
	if m.Checkpoints == 0 {
		t.Error("no checkpoints despite small interval")
	}
	for id := 1; id <= cl.N; id++ {
		if ls := cl.Replicas[id].LastStable(); ls == 0 {
			t.Errorf("replica %d never advanced its stable point", id)
		}
	}
	digestsAgree(t, cl)
}
