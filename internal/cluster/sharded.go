package cluster

import (
	"fmt"
	"time"

	"sbft/internal/sim"
)

// Multi-group topology for sharded deployments (ROADMAP item 5): k
// independent SBFT groups, each a full Cluster with its own scheduler,
// network, threshold key set and replicated application, advanced in
// LOCKSTEP over a shared virtual clock. The sharding semantics (key
// routing, cross-shard 2PC wiring, coordinators) live one layer up in
// internal/shard; this file only provides the deterministic k-group
// substrate it drives.
//
// Each group gets a distinct Seed (distinct network randomness AND a
// distinct insecure-suite key set — the suite is seeded from the cluster
// seed, so one shard's certificates never verify under another's keys
// unless the verifier explicitly selects that shard's suite).

// ShardedOptions configures a k-group deployment.
type ShardedOptions struct {
	// Shards is the group count k (≥ 1).
	Shards int
	// Base is the per-group Options template. Base.Seed seeds the whole
	// deployment; group g runs with Seed = Base.Seed*1000 + g + 1.
	Base Options
	// WAN gives every group the world-scale WAN model (the
	// examples/georeplication topology) instead of the default
	// continental profile.
	WAN bool
	// PerGroup, when set, adjusts group g's options after the template
	// and seed are applied (e.g. installing per-group WrapApp hooks).
	PerGroup func(g int, opts *Options)
	// Quantum is the lockstep advance step (0 = 2ms of virtual time).
	// Cross-group messages (a coordinator completing on shard A and
	// submitting to shard B) land in the next quantum at the earliest, so
	// the quantum bounds cross-shard reaction latency, not correctness.
	Quantum time.Duration
}

// Sharded is a running k-group deployment.
type Sharded struct {
	// Groups holds the k independent clusters, indexed by shard id.
	Groups []*Cluster
	// Quantum is the effective lockstep step.
	Quantum time.Duration

	now time.Duration
}

// NewShardedCluster builds k independent groups from a common template.
func NewShardedCluster(opts ShardedOptions) (*Sharded, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", opts.Shards)
	}
	q := opts.Quantum
	if q <= 0 {
		q = 2 * time.Millisecond
	}
	s := &Sharded{Quantum: q}
	for g := 0; g < opts.Shards; g++ {
		o := opts.Base
		o.Seed = opts.Base.Seed*1000 + int64(g) + 1
		if opts.WAN && o.NetCfg == nil {
			cfg := sim.WorldProfile(o.Seed)
			o.NetCfg = &cfg
		}
		if opts.PerGroup != nil {
			opts.PerGroup(g, &o)
		}
		cl, err := New(o)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("cluster: building shard %d: %w", g, err)
		}
		s.Groups = append(s.Groups, cl)
	}
	return s, nil
}

// Now reports the shared virtual clock (the lockstep frontier every
// group's scheduler has reached).
func (s *Sharded) Now() time.Duration { return s.now }

// step advances every group to the common target time. A scheduled no-op
// at exactly the target forces an idle scheduler's clock forward — an
// empty queue would otherwise leave its Now behind the frontier, and the
// next cross-group submit would land in its past.
func (s *Sharded) step(target time.Duration) {
	for _, cl := range s.Groups {
		if d := target - cl.Sched.Now(); d >= 0 {
			cl.Sched.Schedule(d, func() {})
		}
		cl.Sched.Run(target, 0)
	}
	s.now = target
}

// Run advances all groups in lockstep for a span of shared virtual time.
// Callbacks fired inside one group (e.g. a client completion driving a
// cross-shard coordinator) may submit to other groups at any point; the
// single-threaded quantum order keeps the whole deployment deterministic.
func (s *Sharded) Run(span time.Duration) {
	end := s.now + span
	for s.now < end {
		next := s.now + s.Quantum
		if next > end {
			next = end
		}
		s.step(next)
	}
}

// RunUntil advances in lockstep until done() reports true or the budget
// is exhausted, returning whether done was reached.
func (s *Sharded) RunUntil(done func() bool, budget time.Duration) bool {
	end := s.now + budget
	for !done() {
		if s.now >= end {
			return false
		}
		next := s.now + s.Quantum
		if next > end {
			next = end
		}
		s.step(next)
	}
	return true
}

// Close releases every group's resources.
func (s *Sharded) Close() error {
	var first error
	for _, cl := range s.Groups {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
