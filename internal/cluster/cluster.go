package cluster

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
	"sbft/internal/pbft"
	"sbft/internal/sim"
	"sbft/internal/storage"
)

// Protocol selects the replication engine variant.
type Protocol int

// The paper's five protocol configurations (§IX).
const (
	ProtoPBFT Protocol = iota
	ProtoLinearPBFT
	ProtoLinearFast
	ProtoSBFT
)

// String names the protocol like the paper's figures.
func (p Protocol) String() string {
	switch p {
	case ProtoPBFT:
		return "PBFT"
	case ProtoLinearPBFT:
		return "Linear-PBFT"
	case ProtoLinearFast:
		return "Linear-PBFT+Fast"
	case ProtoSBFT:
		return "SBFT"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// AppKind selects the replicated application.
type AppKind int

// Applications used in the evaluation: the key-value micro-benchmark and
// the EVM smart-contract ledger.
const (
	AppKV AppKind = iota
	AppEVM
)

// Options configures a simulated deployment.
type Options struct {
	Protocol Protocol
	F        int
	C        int // SBFT redundant servers; ignored for other protocols
	App      AppKind
	// Clients is the number of closed-loop clients.
	Clients int
	// NetCfg is the WAN model; defaults to ContinentProfile(Seed).
	NetCfg *sim.Config
	// Seed drives all simulation randomness.
	Seed int64
	// Batch overrides the block batch size (0 keeps the default 64).
	Batch int
	// ClientTimeout is the client's §V-A retry timeout (0 = default 4s).
	ClientTimeout time.Duration
	// Costs overrides the per-message CPU model (nil = DefaultCosts).
	Costs *CostModel
	// FreeCPU disables the CPU model entirely (unit tests that need
	// exact latencies).
	FreeCPU bool
	// Tune mutates the SBFT config after defaults are applied.
	Tune func(*core.Config)
	// TunePBFT mutates the PBFT config after defaults are applied.
	TunePBFT func(*pbft.Config)
	// GenesisEVM, when App == AppEVM, runs against every replica's ledger
	// before the protocol starts (e.g. minting balances, deploying the
	// token contract deterministically).
	GenesisEVM func(app *apps.EVMApp)
	// Byzantine replaces replicas by id with adversarial nodes (tests).
	// The factory receives the replica's env and the honest replica it
	// displaces, which it may wrap or ignore.
	Byzantine map[int]func(env core.Env, honest *core.Replica) Node
	// Persist gives every SBFT-variant replica a durable storage.Ledger
	// block store, enabling RestartReplica (restart-from-storage). The
	// data lives under DataDir, or a temporary directory removed by Close.
	Persist bool
	// SyncSnapshots forces the synchronous snapshot-persistence path
	// (encode+write on the replica's event loop, the pre-async behavior,
	// kept measurable as a benchmark baseline). By default a persisted
	// SBFT replica gets an asynchronous core.SnapshotSink: the encode and
	// disk write land after SnapshotPersistDelay of virtual time, off the
	// checkpoint critical path, and a crash can race the durable write —
	// exactly the window the chaos sweeps should exercise.
	SyncSnapshots bool
	// SnapshotPersistDelay is the modeled disk hand-off latency of the
	// async snapshot sink (0 = 2ms of virtual time).
	SnapshotPersistDelay time.Duration
	// CryptoPool, when positive, gives every SBFT-variant replica a
	// modeled pool of that many crypto workers (a deterministic
	// core.CryptoSink advancing in virtual time): share verification and
	// signature combination move off the replica's event loop onto
	// per-worker busy horizons, and the cost model stops charging them
	// on message receipt. 0 keeps the synchronous inline path — the
	// baseline the throughput benchmarks compare against.
	CryptoPool int
	// DataDir is the root directory for persisted replica state; empty
	// with Persist set means a temp dir owned by the cluster.
	DataDir string
	// WrapApp, when set, wraps each replica's application (e.g. with the
	// chaos harness's execution recorder) before the replica is built.
	WrapApp func(id int, app core.Application) core.Application
}

// Node is a protocol event machine attachable to the simulator.
type Node interface {
	Deliver(from int, msg any)
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Opts    Options
	Sched   *sim.Scheduler
	Net     *sim.Network
	N       int
	Suite   core.CryptoSuite
	Cfg     core.Config // valid unless Protocol == ProtoPBFT
	PBFTCfg pbft.Config // valid when Protocol == ProtoPBFT

	Replicas     []*core.Replica // nil entries when PBFT
	PBFTReplicas []*pbft.Replica // nil entries when SBFT variants
	Apps         []core.Application
	Clients      []*core.Client
	// Stores holds each replica's durable block store when Opts.Persist
	// is set (1-based; nil entries for PBFT).
	Stores []*storage.Ledger

	// OnResult, when set, observes every completed client operation during
	// RunClosedLoop (client id, result) — the safety auditor's ack log.
	OnResult func(clientID int, res core.Result)

	// FaultErrors collects failures from scheduled fault steps (e.g. a
	// RestartReplica that could not reopen its store). Scheduled callbacks
	// cannot return errors, so they accumulate here for the caller.
	FaultErrors []error

	dataDir     string
	ownsDataDir bool
	keys        []core.ReplicaKeys
	envs        []*env
	// costs is the effective CPU model (zero-valued under FreeCPU); the
	// crypto-pool sinks price their work from it.
	costs CostModel
	// byzantine marks replicas whose behavior has been adversarial at any
	// point (replaced nodes via Options.Byzantine, or corrupter-equipped
	// nodes via the Byzantine fault kinds). The mark is sticky: the safety
	// audit must not hold Byzantine replicas to honest-replica invariants
	// even after a FaultByzRestore.
	byzantine map[int]bool
	// attacker is the active adaptive role-targeting attacker, if any
	// (StartAdaptiveAttack / StopAdaptiveAttack).
	attacker *roleAttacker
}

// env adapts one node id to core.Env over the simulator. A replica
// restart kills its env: a dead env drops sends and suppresses pending
// timer callbacks, modeling process death (the replaced replica's timers
// must not act under the restarted node's identity).
type env struct {
	id    int
	net   *sim.Network
	sched *sim.Scheduler
	dead  bool
}

var _ core.Env = (*env)(nil)

func (e *env) Send(to int, msg core.Message) {
	if e.dead {
		return
	}
	e.net.Send(sim.NodeID(e.id), sim.NodeID(to), msg, msg.WireSize())
}

func (e *env) Now() time.Duration { return e.sched.Now() }

func (e *env) After(d time.Duration, fn func()) func() {
	return e.sched.Schedule(d, func() {
		if e.dead {
			return
		}
		fn()
	})
}

// ledgerSink is the simulated cluster's core.SnapshotSink: certified
// snapshots are encoded and written to the replica's storage.Ledger after
// a modeled disk delay, scheduled on the deterministic event loop. The
// simulator has no real threads — what matters is that adoption no longer
// waits for persistence, and that a crash or restart can land between
// adoption and the durable write (a dead env suppresses the pending
// write, exactly like a process dying mid-write; the replica then re-serves
// from its previous durable snapshot).
type ledgerSink struct {
	env   *env
	led   *storage.Ledger
	delay time.Duration
}

// PersistSnapshot implements core.SnapshotSink.
func (s *ledgerSink) PersistSnapshot(cs *core.CertifiedSnapshot, keepFrom uint64, done func(error)) {
	s.env.After(s.delay, func() {
		done(core.PersistCertified(s.led, cs, keepFrom))
	})
}

// installSink arms the async snapshot sink on a persisted SBFT replica.
func (cl *Cluster) installSink(rep *core.Replica, e *env, led *storage.Ledger) {
	if !cl.Opts.Persist || cl.Opts.SyncSnapshots || led == nil {
		return
	}
	delay := cl.Opts.SnapshotPersistDelay
	if delay <= 0 {
		delay = 2 * time.Millisecond
	}
	rep.SetSnapshotSink(&ledgerSink{env: e, led: led, delay: delay})
}

// handler adapts Node to sim.Handler.
type handler struct{ n Node }

func (h handler) Deliver(from sim.NodeID, msg any) { h.n.Deliver(int(from), msg) }

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.F < 1 {
		return nil, fmt.Errorf("cluster: F must be ≥ 1")
	}
	if opts.Clients < 0 {
		return nil, fmt.Errorf("cluster: negative client count")
	}
	cl := &Cluster{Opts: opts, byzantine: make(map[int]bool)}
	cl.Sched = sim.NewScheduler(opts.Seed)
	for id := range opts.Byzantine {
		cl.byzantine[id] = true
	}

	netCfg := sim.ContinentProfile(opts.Seed)
	if opts.NetCfg != nil {
		netCfg = *opts.NetCfg
	}

	switch opts.Protocol {
	case ProtoPBFT:
		cl.PBFTCfg = pbft.DefaultConfig(opts.F)
		if opts.Batch > 0 {
			cl.PBFTCfg.Batch = opts.Batch
		}
		if opts.TunePBFT != nil {
			opts.TunePBFT(&cl.PBFTCfg)
		}
		cl.N = cl.PBFTCfg.N()
	default:
		c := 0
		if opts.Protocol == ProtoSBFT {
			c = opts.C
		}
		cfg := core.DefaultConfig(opts.F, c)
		switch opts.Protocol {
		case ProtoLinearPBFT:
			cfg.FastPath = false
			cfg.ExecCollectors = false
		case ProtoLinearFast:
			cfg.FastPath = true
			cfg.ExecCollectors = false
		}
		if opts.Batch > 0 {
			cfg.Batch = opts.Batch
		}
		if opts.Tune != nil {
			opts.Tune(&cfg)
		}
		cl.Cfg = cfg
		cl.N = cfg.N()
	}

	// Install the per-message CPU model now that n is known.
	if !opts.FreeCPU {
		cm := DefaultCosts()
		if opts.Costs != nil {
			cm = *opts.Costs
		}
		cm.n = cl.N
		cm.collectors = opts.C + 2
		cm.offload = opts.CryptoPool > 0 && opts.Protocol != ProtoPBFT
		cm.workers = opts.CryptoPool
		netCfg.SendCost = cm.SendCost
		netCfg.RecvCost = cm.RecvCost
		cl.costs = cm
	}
	var err error
	cl.Net, err = sim.NewNetwork(cl.Sched, netCfg)
	if err != nil {
		return nil, err
	}

	// Durable per-replica block stores (restart-from-storage support).
	// Any later constructor error must release what was opened (stores,
	// cluster-owned temp dir); callers only Close() built clusters.
	built := false
	defer func() {
		if !built {
			cl.Close()
		}
	}()
	if opts.Persist {
		dir := opts.DataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sbft-cluster-")
			if err != nil {
				return nil, fmt.Errorf("cluster: creating data dir: %w", err)
			}
			cl.ownsDataDir = true
		}
		cl.dataDir = dir
		cl.Stores = make([]*storage.Ledger, cl.N+1)
	}

	// The simulation uses the insecure threshold scheme; crypto CPU cost
	// is modeled via the network cost model above (see DESIGN.md).
	if opts.Protocol != ProtoPBFT {
		suite, keys, err := core.InsecureSuite(cl.Cfg, fmt.Sprintf("cluster-%d", opts.Seed))
		if err != nil {
			return nil, err
		}
		cl.Suite = suite
		cl.keys = keys
		cl.Replicas = make([]*core.Replica, cl.N+1) // 1-based
		cl.Apps = make([]core.Application, cl.N+1)
		cl.envs = make([]*env, cl.N+1)
		for id := 1; id <= cl.N; id++ {
			app, err := cl.newApp(id)
			if err != nil {
				return nil, err
			}
			cl.Apps[id] = app
			var store core.BlockStore
			if opts.Persist {
				led, err := cl.openStore(id)
				if err != nil {
					return nil, err
				}
				store = led
			}
			e := &env{id: id, net: cl.Net, sched: cl.Sched}
			cl.envs[id] = e
			rep, err := core.NewReplica(id, cl.Cfg, suite, keys[id-1], app, e, store)
			if err != nil {
				return nil, err
			}
			if opts.Persist {
				cl.installSink(rep, e, cl.Stores[id])
			}
			cl.installCryptoPool(rep, e)
			cl.Replicas[id] = rep
			var node Node = rep
			if mk, ok := opts.Byzantine[id]; ok {
				node = mk(e, rep)
				cl.Replicas[id] = nil // excluded from honest-state checks
			}
			if err := cl.Net.Register(sim.NodeID(id), (id-1)%netCfg.Regions, handler{node}); err != nil {
				return nil, err
			}
		}
	} else {
		// PBFT clients still verify nothing beyond f+1 matching replies,
		// but the shared core.Client needs a suite; deal a minimal one.
		cfgForSuite := core.DefaultConfig(opts.F, 0)
		suite, _, err := core.InsecureSuite(cfgForSuite, fmt.Sprintf("cluster-%d", opts.Seed))
		if err != nil {
			return nil, err
		}
		cl.Suite = suite
		cl.PBFTReplicas = make([]*pbft.Replica, cl.N+1)
		cl.Apps = make([]core.Application, cl.N+1)
		cl.envs = make([]*env, cl.N+1)
		for id := 1; id <= cl.N; id++ {
			app, err := cl.newApp(id)
			if err != nil {
				return nil, err
			}
			cl.Apps[id] = app
			var store core.BlockStore
			if opts.Persist {
				led, err := cl.openStore(id)
				if err != nil {
					return nil, err
				}
				store = led
			}
			e := &env{id: id, net: cl.Net, sched: cl.Sched}
			cl.envs[id] = e
			rep, err := pbft.NewReplica(id, cl.PBFTCfg, app, e, store)
			if err != nil {
				return nil, err
			}
			cl.PBFTReplicas[id] = rep
			if err := cl.Net.Register(sim.NodeID(id), (id-1)%netCfg.Regions, handler{rep}); err != nil {
				return nil, err
			}
		}
	}

	// Clients.
	verifier := core.ProofVerifier(apps.VerifyKV)
	readKey := kvstore.ReadKey
	if opts.App == AppEVM {
		verifier = apps.VerifyEVM
		readKey = evm.ReadKey
	}
	clientCfg := cl.Cfg
	if opts.Protocol == ProtoPBFT {
		// Give clients a view of the PBFT quorum sizes through an
		// equivalent core.Config (F matches; QuorumExec = f+1 is what the
		// reply path uses; Primary round-robin matches).
		clientCfg = core.DefaultConfig(opts.F, 0)
	}
	timeout := opts.ClientTimeout
	if timeout == 0 {
		timeout = 4 * time.Second
	}
	for i := 0; i < opts.Clients; i++ {
		id := core.ClientBase + i
		e := &env{id: id, net: cl.Net, sched: cl.Sched}
		c, err := core.NewClient(id, clientCfg, cl.Suite, e, verifier)
		if err != nil {
			return nil, err
		}
		c.RequestTimeout = timeout
		c.SetReadKey(readKey)
		cl.Clients = append(cl.Clients, c)
		if err := cl.Net.Register(sim.NodeID(id), i%netCfg.Regions, handler{c}); err != nil {
			return nil, err
		}
	}
	built = true
	return cl, nil
}

func (cl *Cluster) newApp(id int) (core.Application, error) {
	var app core.Application
	switch cl.Opts.App {
	case AppKV:
		app = apps.NewKVApp()
	case AppEVM:
		a := apps.NewEVMApp()
		if cl.Opts.GenesisEVM != nil {
			cl.Opts.GenesisEVM(a)
		}
		app = a
	default:
		return nil, fmt.Errorf("cluster: unknown app kind %d", cl.Opts.App)
	}
	if cl.Opts.WrapApp != nil {
		app = cl.Opts.WrapApp(id, app)
	}
	return app, nil
}

// openStore opens (or reopens) replica id's durable block store.
func (cl *Cluster) openStore(id int) (*storage.Ledger, error) {
	led, err := storage.Open(filepath.Join(cl.dataDir, fmt.Sprintf("r%d", id)), storage.Options{})
	if err != nil {
		return nil, fmt.Errorf("cluster: opening store for replica %d: %w", id, err)
	}
	cl.Stores[id] = led
	return led, nil
}

// Close releases durable stores and removes cluster-owned data.
func (cl *Cluster) Close() error {
	var first error
	for _, led := range cl.Stores {
		if led == nil {
			continue
		}
		if err := led.Close(); err != nil && first == nil {
			first = err
		}
	}
	if cl.ownsDataDir && cl.dataDir != "" {
		if err := os.RemoveAll(cl.dataDir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MarkByzantine records a replica as adversarial for the safety audit.
func (cl *Cluster) MarkByzantine(id int) { cl.byzantine[id] = true }

// IsByzantine reports whether a replica has ever behaved adversarially.
func (cl *Cluster) IsByzantine(id int) bool { return cl.byzantine[id] }

// ByzantineCount reports how many replicas carry the Byzantine mark.
func (cl *Cluster) ByzantineCount() int { return len(cl.byzantine) }

// CrashReplicas crashes k replicas, skipping the view-0 primary (the
// paper's failure experiments measure throughput under crashed backups).
func (cl *Cluster) CrashReplicas(k int) []int {
	var crashed []int
	for id := cl.N; id >= 2 && len(crashed) < k; id-- {
		cl.Net.Crash(sim.NodeID(id))
		crashed = append(crashed, id)
	}
	return crashed
}

// SetStragglers makes k non-primary replicas slow by extra.
func (cl *Cluster) SetStragglers(k int, extra time.Duration) []int {
	var slowed []int
	for id := cl.N; id >= 2 && len(slowed) < k; id-- {
		cl.Net.SetStraggler(sim.NodeID(id), extra)
		slowed = append(slowed, id)
	}
	return slowed
}

// Metrics aggregates replica metrics across the cluster.
func (cl *Cluster) Metrics() core.Metrics {
	var m core.Metrics
	for _, r := range cl.Replicas {
		if r == nil {
			continue
		}
		rm := r.Metrics
		m.FastCommits += rm.FastCommits
		m.SlowCommits += rm.SlowCommits
		m.Executions += rm.Executions
		m.ViewChanges += rm.ViewChanges
		m.Checkpoints += rm.Checkpoints
		m.StateFetches += rm.StateFetches
		m.NullBlocks += rm.NullBlocks
		m.CollectorTimeouts += rm.CollectorTimeouts
		m.FastPathDowngrades += rm.FastPathDowngrades
		m.ExecFallbacks += rm.ExecFallbacks
		m.ViewRejoins += rm.ViewRejoins
		m.ReadsServed += rm.ReadsServed
		m.ReadsBehind += rm.ReadsBehind
		m.ReadsUnavailable += rm.ReadsUnavailable
		m.ReadBatches += rm.ReadBatches
		m.TxPrepares += rm.TxPrepares
		m.TxCommits += rm.TxCommits
		m.TxAborts += rm.TxAborts
		m.TxCoordFailovers += rm.TxCoordFailovers
	}
	return m
}

// PBFTMetrics aggregates the baseline engine's metrics.
func (cl *Cluster) PBFTMetrics() pbft.Metrics {
	var m pbft.Metrics
	for _, r := range cl.PBFTReplicas {
		if r == nil {
			continue
		}
		m.Commits += r.Metrics.Commits
		m.Executions += r.Metrics.Executions
		m.ViewChanges += r.Metrics.ViewChanges
		m.Checkpoints += r.Metrics.Checkpoints
	}
	return m
}

// WorkloadResult summarizes a closed-loop run.
type WorkloadResult struct {
	Completed   uint64
	Duration    time.Duration
	Throughput  float64 // operations per second of virtual time
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	FastAcks    uint64
	Retries     uint64
	MsgsSent    uint64
	BytesSent   uint64
	Events      uint64
}

// OpGen produces the i-th operation of a client.
type OpGen func(client, i int) []byte

// RunClosedLoop drives every client through opsPerClient sequential
// operations (the paper's measurement loop: each client sends 1000
// requests, §IX) and runs the simulation until all complete or the horizon
// passes.
func (cl *Cluster) RunClosedLoop(opsPerClient int, gen OpGen, horizon time.Duration) WorkloadResult {
	var (
		latencies   []time.Duration
		completions []time.Duration
		completed   uint64
		fastAcks    uint64
		retries     uint64
	)
	remaining := len(cl.Clients) * opsPerClient
	start := cl.Sched.Now()
	lastDone := start

	for ci, c := range cl.Clients {
		ci, c := ci, c
		count := 0
		c.SetOnResult(func(res core.Result) {
			completed++
			remaining--
			lastDone = cl.Sched.Now()
			completions = append(completions, lastDone)
			latencies = append(latencies, res.Latency)
			if cl.OnResult != nil {
				cl.OnResult(c.ID(), res)
			}
			if res.FastAck {
				fastAcks++
			}
			if res.Retried {
				retries++
			}
			count++
			if count < opsPerClient {
				if err := c.Submit(gen(ci, count)); err != nil {
					remaining -= opsPerClient - count
				}
			}
		})
		// Stagger initial submissions slightly for realism.
		cl.Sched.Schedule(time.Duration(ci)*50*time.Microsecond, func() {
			if err := c.Submit(gen(ci, 0)); err != nil {
				remaining -= opsPerClient
			}
		})
	}

	deadline := start + horizon
	for remaining > 0 && cl.Sched.Now() < deadline {
		if cl.Sched.Run(deadline, 50_000) == 0 {
			break
		}
	}
	// Throughput is measured to the last completion, not to whatever
	// background activity (timers, checkpoints) ran afterwards.
	dur := lastDone - start
	res := WorkloadResult{
		Completed: completed,
		Duration:  dur,
		FastAcks:  fastAcks,
		Retries:   retries,
		MsgsSent:  cl.Net.MsgsSent,
		BytesSent: cl.Net.BytesSent,
		Events:    cl.Sched.Events(),
	}
	if dur > 0 {
		res.Throughput = float64(completed) / dur.Seconds()
	}
	// Steady-state throughput over the 10th–90th percentile completion
	// window: robust against warmup and a retried straggler stretching
	// the tail (the paper measures steady-state rates).
	if len(completions) >= 20 {
		sort.Slice(completions, func(i, j int) bool { return completions[i] < completions[j] })
		lo, hi := completions[len(completions)/10], completions[len(completions)*9/10]
		if hi > lo {
			res.Throughput = 0.8 * float64(len(completions)) / (hi - lo).Seconds()
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / time.Duration(len(latencies))
		res.P50Latency = latencies[len(latencies)/2]
		res.P95Latency = latencies[int(math.Ceil(float64(len(latencies))*0.95))-1]
	}
	return res
}

// Run advances the simulation until the horizon or quiescence.
func (cl *Cluster) Run(horizon time.Duration) {
	cl.Sched.Run(cl.Sched.Now()+horizon, 0)
}
