// Package cluster wires SBFT and PBFT replicas, clients and applications
// into the discrete-event simulator, reproducing the paper's deployments
// (§IX): a full protocol stack per replica over a modeled WAN, with crash
// and straggler injection and closed-loop measurement clients.
//
// The five protocol variants of the evaluation map to:
//
//	PBFT            → internal/pbft (quadratic baseline)
//	Linear-PBFT     → SBFT engine, fast path off, exec collectors off, c=0
//	Linear+Fast     → SBFT engine, fast path on, exec collectors off, c=0
//	SBFT (c=0)      → all ingredients, c=0
//	SBFT (c=8)      → all ingredients, c=8
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/pbft"
	"sbft/internal/sim"
)

// Protocol selects the replication engine variant.
type Protocol int

// The paper's five protocol configurations (§IX).
const (
	ProtoPBFT Protocol = iota
	ProtoLinearPBFT
	ProtoLinearFast
	ProtoSBFT
)

// String names the protocol like the paper's figures.
func (p Protocol) String() string {
	switch p {
	case ProtoPBFT:
		return "PBFT"
	case ProtoLinearPBFT:
		return "Linear-PBFT"
	case ProtoLinearFast:
		return "Linear-PBFT+Fast"
	case ProtoSBFT:
		return "SBFT"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// AppKind selects the replicated application.
type AppKind int

// Applications used in the evaluation: the key-value micro-benchmark and
// the EVM smart-contract ledger.
const (
	AppKV AppKind = iota
	AppEVM
)

// Options configures a simulated deployment.
type Options struct {
	Protocol Protocol
	F        int
	C        int // SBFT redundant servers; ignored for other protocols
	App      AppKind
	// Clients is the number of closed-loop clients.
	Clients int
	// NetCfg is the WAN model; defaults to ContinentProfile(Seed).
	NetCfg *sim.Config
	// Seed drives all simulation randomness.
	Seed int64
	// Batch overrides the block batch size (0 keeps the default 64).
	Batch int
	// ClientTimeout is the client's §V-A retry timeout (0 = default 4s).
	ClientTimeout time.Duration
	// Costs overrides the per-message CPU model (nil = DefaultCosts).
	Costs *CostModel
	// FreeCPU disables the CPU model entirely (unit tests that need
	// exact latencies).
	FreeCPU bool
	// Tune mutates the SBFT config after defaults are applied.
	Tune func(*core.Config)
	// TunePBFT mutates the PBFT config after defaults are applied.
	TunePBFT func(*pbft.Config)
	// GenesisEVM, when App == AppEVM, runs against every replica's ledger
	// before the protocol starts (e.g. minting balances, deploying the
	// token contract deterministically).
	GenesisEVM func(app *apps.EVMApp)
	// Byzantine replaces replicas by id with adversarial nodes (tests).
	// The factory receives the replica's env and the honest replica it
	// displaces, which it may wrap or ignore.
	Byzantine map[int]func(env core.Env, honest *core.Replica) Node
}

// Node is a protocol event machine attachable to the simulator.
type Node interface {
	Deliver(from int, msg any)
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Opts    Options
	Sched   *sim.Scheduler
	Net     *sim.Network
	N       int
	Suite   core.CryptoSuite
	Cfg     core.Config // valid unless Protocol == ProtoPBFT
	PBFTCfg pbft.Config // valid when Protocol == ProtoPBFT

	Replicas     []*core.Replica // nil entries when PBFT
	PBFTReplicas []*pbft.Replica // nil entries when SBFT variants
	Apps         []core.Application
	Clients      []*core.Client
}

// env adapts one node id to core.Env over the simulator.
type env struct {
	id    int
	net   *sim.Network
	sched *sim.Scheduler
}

var _ core.Env = (*env)(nil)

func (e *env) Send(to int, msg core.Message) {
	e.net.Send(sim.NodeID(e.id), sim.NodeID(to), msg, msg.WireSize())
}

func (e *env) Now() time.Duration { return e.sched.Now() }

func (e *env) After(d time.Duration, fn func()) func() {
	return e.sched.Schedule(d, fn)
}

// handler adapts Node to sim.Handler.
type handler struct{ n Node }

func (h handler) Deliver(from sim.NodeID, msg any) { h.n.Deliver(int(from), msg) }

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.F < 1 {
		return nil, fmt.Errorf("cluster: F must be ≥ 1")
	}
	if opts.Clients < 0 {
		return nil, fmt.Errorf("cluster: negative client count")
	}
	cl := &Cluster{Opts: opts}
	cl.Sched = sim.NewScheduler(opts.Seed)

	netCfg := sim.ContinentProfile(opts.Seed)
	if opts.NetCfg != nil {
		netCfg = *opts.NetCfg
	}

	switch opts.Protocol {
	case ProtoPBFT:
		cl.PBFTCfg = pbft.DefaultConfig(opts.F)
		if opts.Batch > 0 {
			cl.PBFTCfg.Batch = opts.Batch
		}
		if opts.TunePBFT != nil {
			opts.TunePBFT(&cl.PBFTCfg)
		}
		cl.N = cl.PBFTCfg.N()
	default:
		c := 0
		if opts.Protocol == ProtoSBFT {
			c = opts.C
		}
		cfg := core.DefaultConfig(opts.F, c)
		switch opts.Protocol {
		case ProtoLinearPBFT:
			cfg.FastPath = false
			cfg.ExecCollectors = false
		case ProtoLinearFast:
			cfg.FastPath = true
			cfg.ExecCollectors = false
		}
		if opts.Batch > 0 {
			cfg.Batch = opts.Batch
		}
		if opts.Tune != nil {
			opts.Tune(&cfg)
		}
		cl.Cfg = cfg
		cl.N = cfg.N()
	}

	// Install the per-message CPU model now that n is known.
	if !opts.FreeCPU {
		cm := DefaultCosts()
		if opts.Costs != nil {
			cm = *opts.Costs
		}
		cm.n = cl.N
		cm.collectors = opts.C + 2
		netCfg.SendCost = cm.SendCost
		netCfg.RecvCost = cm.RecvCost
	}
	var err error
	cl.Net, err = sim.NewNetwork(cl.Sched, netCfg)
	if err != nil {
		return nil, err
	}

	// The simulation uses the insecure threshold scheme; crypto CPU cost
	// is modeled via the network cost model above (see DESIGN.md).
	if opts.Protocol != ProtoPBFT {
		suite, keys, err := core.InsecureSuite(cl.Cfg, fmt.Sprintf("cluster-%d", opts.Seed))
		if err != nil {
			return nil, err
		}
		cl.Suite = suite
		cl.Replicas = make([]*core.Replica, cl.N+1) // 1-based
		cl.Apps = make([]core.Application, cl.N+1)
		for id := 1; id <= cl.N; id++ {
			app, err := cl.newApp()
			if err != nil {
				return nil, err
			}
			cl.Apps[id] = app
			e := &env{id: id, net: cl.Net, sched: cl.Sched}
			rep, err := core.NewReplica(id, cl.Cfg, suite, keys[id-1], app, e, nil)
			if err != nil {
				return nil, err
			}
			cl.Replicas[id] = rep
			var node Node = rep
			if mk, ok := opts.Byzantine[id]; ok {
				node = mk(e, rep)
				cl.Replicas[id] = nil // excluded from honest-state checks
			}
			if err := cl.Net.Register(sim.NodeID(id), (id-1)%netCfg.Regions, handler{node}); err != nil {
				return nil, err
			}
		}
	} else {
		// PBFT clients still verify nothing beyond f+1 matching replies,
		// but the shared core.Client needs a suite; deal a minimal one.
		cfgForSuite := core.DefaultConfig(opts.F, 0)
		suite, _, err := core.InsecureSuite(cfgForSuite, fmt.Sprintf("cluster-%d", opts.Seed))
		if err != nil {
			return nil, err
		}
		cl.Suite = suite
		cl.PBFTReplicas = make([]*pbft.Replica, cl.N+1)
		cl.Apps = make([]core.Application, cl.N+1)
		for id := 1; id <= cl.N; id++ {
			app, err := cl.newApp()
			if err != nil {
				return nil, err
			}
			cl.Apps[id] = app
			e := &env{id: id, net: cl.Net, sched: cl.Sched}
			rep, err := pbft.NewReplica(id, cl.PBFTCfg, app, e)
			if err != nil {
				return nil, err
			}
			cl.PBFTReplicas[id] = rep
			if err := cl.Net.Register(sim.NodeID(id), (id-1)%netCfg.Regions, handler{rep}); err != nil {
				return nil, err
			}
		}
	}

	// Clients.
	verifier := core.ProofVerifier(apps.VerifyKV)
	if opts.App == AppEVM {
		verifier = apps.VerifyEVM
	}
	clientCfg := cl.Cfg
	if opts.Protocol == ProtoPBFT {
		// Give clients a view of the PBFT quorum sizes through an
		// equivalent core.Config (F matches; QuorumExec = f+1 is what the
		// reply path uses; Primary round-robin matches).
		clientCfg = core.DefaultConfig(opts.F, 0)
	}
	timeout := opts.ClientTimeout
	if timeout == 0 {
		timeout = 4 * time.Second
	}
	for i := 0; i < opts.Clients; i++ {
		id := core.ClientBase + i
		e := &env{id: id, net: cl.Net, sched: cl.Sched}
		c, err := core.NewClient(id, clientCfg, cl.Suite, e, verifier)
		if err != nil {
			return nil, err
		}
		c.RequestTimeout = timeout
		cl.Clients = append(cl.Clients, c)
		if err := cl.Net.Register(sim.NodeID(id), i%netCfg.Regions, handler{c}); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

func (cl *Cluster) newApp() (core.Application, error) {
	switch cl.Opts.App {
	case AppKV:
		return apps.NewKVApp(), nil
	case AppEVM:
		a := apps.NewEVMApp()
		if cl.Opts.GenesisEVM != nil {
			cl.Opts.GenesisEVM(a)
		}
		return a, nil
	default:
		return nil, fmt.Errorf("cluster: unknown app kind %d", cl.Opts.App)
	}
}

// CrashReplicas crashes k replicas, skipping the view-0 primary (the
// paper's failure experiments measure throughput under crashed backups).
func (cl *Cluster) CrashReplicas(k int) []int {
	var crashed []int
	for id := cl.N; id >= 2 && len(crashed) < k; id-- {
		cl.Net.Crash(sim.NodeID(id))
		crashed = append(crashed, id)
	}
	return crashed
}

// SetStragglers makes k non-primary replicas slow by extra.
func (cl *Cluster) SetStragglers(k int, extra time.Duration) []int {
	var slowed []int
	for id := cl.N; id >= 2 && len(slowed) < k; id-- {
		cl.Net.SetStraggler(sim.NodeID(id), extra)
		slowed = append(slowed, id)
	}
	return slowed
}

// Metrics aggregates replica metrics across the cluster.
func (cl *Cluster) Metrics() core.Metrics {
	var m core.Metrics
	for _, r := range cl.Replicas {
		if r == nil {
			continue
		}
		rm := r.Metrics
		m.FastCommits += rm.FastCommits
		m.SlowCommits += rm.SlowCommits
		m.Executions += rm.Executions
		m.ViewChanges += rm.ViewChanges
		m.Checkpoints += rm.Checkpoints
		m.StateFetches += rm.StateFetches
		m.NullBlocks += rm.NullBlocks
	}
	return m
}

// PBFTMetrics aggregates the baseline engine's metrics.
func (cl *Cluster) PBFTMetrics() pbft.Metrics {
	var m pbft.Metrics
	for _, r := range cl.PBFTReplicas {
		if r == nil {
			continue
		}
		m.Commits += r.Metrics.Commits
		m.Executions += r.Metrics.Executions
		m.ViewChanges += r.Metrics.ViewChanges
		m.Checkpoints += r.Metrics.Checkpoints
	}
	return m
}

// WorkloadResult summarizes a closed-loop run.
type WorkloadResult struct {
	Completed   uint64
	Duration    time.Duration
	Throughput  float64 // operations per second of virtual time
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	FastAcks    uint64
	Retries     uint64
	MsgsSent    uint64
	BytesSent   uint64
	Events      uint64
}

// OpGen produces the i-th operation of a client.
type OpGen func(client, i int) []byte

// RunClosedLoop drives every client through opsPerClient sequential
// operations (the paper's measurement loop: each client sends 1000
// requests, §IX) and runs the simulation until all complete or the horizon
// passes.
func (cl *Cluster) RunClosedLoop(opsPerClient int, gen OpGen, horizon time.Duration) WorkloadResult {
	var (
		latencies   []time.Duration
		completions []time.Duration
		completed   uint64
		fastAcks    uint64
		retries     uint64
	)
	remaining := len(cl.Clients) * opsPerClient
	start := cl.Sched.Now()
	lastDone := start

	for ci, c := range cl.Clients {
		ci, c := ci, c
		count := 0
		c.SetOnResult(func(res core.Result) {
			completed++
			remaining--
			lastDone = cl.Sched.Now()
			completions = append(completions, lastDone)
			latencies = append(latencies, res.Latency)
			if res.FastAck {
				fastAcks++
			}
			if res.Retried {
				retries++
			}
			count++
			if count < opsPerClient {
				if err := c.Submit(gen(ci, count)); err != nil {
					remaining -= opsPerClient - count
				}
			}
		})
		// Stagger initial submissions slightly for realism.
		cl.Sched.Schedule(time.Duration(ci)*50*time.Microsecond, func() {
			if err := c.Submit(gen(ci, 0)); err != nil {
				remaining -= opsPerClient
			}
		})
	}

	deadline := start + horizon
	for remaining > 0 && cl.Sched.Now() < deadline {
		if cl.Sched.Run(deadline, 50_000) == 0 {
			break
		}
	}
	// Throughput is measured to the last completion, not to whatever
	// background activity (timers, checkpoints) ran afterwards.
	dur := lastDone - start
	res := WorkloadResult{
		Completed: completed,
		Duration:  dur,
		FastAcks:  fastAcks,
		Retries:   retries,
		MsgsSent:  cl.Net.MsgsSent,
		BytesSent: cl.Net.BytesSent,
		Events:    cl.Sched.Events(),
	}
	if dur > 0 {
		res.Throughput = float64(completed) / dur.Seconds()
	}
	// Steady-state throughput over the 10th–90th percentile completion
	// window: robust against warmup and a retried straggler stretching
	// the tail (the paper measures steady-state rates).
	if len(completions) >= 20 {
		sort.Slice(completions, func(i, j int) bool { return completions[i] < completions[j] })
		lo, hi := completions[len(completions)/10], completions[len(completions)*9/10]
		if hi > lo {
			res.Throughput = 0.8 * float64(len(completions)) / (hi - lo).Seconds()
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / time.Duration(len(latencies))
		res.P50Latency = latencies[len(latencies)/2]
		res.P95Latency = latencies[int(math.Ceil(float64(len(latencies))*0.95))-1]
	}
	return res
}

// Run advances the simulation until the horizon or quiescence.
func (cl *Cluster) Run(horizon time.Duration) {
	cl.Sched.Run(cl.Sched.Now()+horizon, 0)
}
