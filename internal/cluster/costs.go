package cluster

import (
	"time"

	"sbft/internal/core"
	"sbft/internal/pbft"
)

// CostModel is the per-message CPU schedule fed to the simulator. The
// paper's throughput differences come from where CPU is spent: quadratic
// message handling and per-client signed replies in PBFT versus collector
// aggregation and single combined signatures in SBFT (§I, §IX). Values
// model 2018-era crypto on the paper's 32-vCPU machines: one signature or
// share verification ≈ 120µs effective (BLS with batch verification), one
// signature ≈ 100µs, one threshold combination ≈ 500µs.
type CostModel struct {
	Base    time.Duration // per-message handling floor
	Send    time.Duration // per-message serialization at the sender
	Sign    time.Duration // producing a signature or share
	Verify  time.Duration // verifying a signature or share
	Combine time.Duration // combining unverified threshold shares (verify + interpolate)
	// CombineVerified is combination of shares already verified on
	// arrival: collectors check each share once in onSignShare and then
	// interpolate with zero pairings (threshsig.Scheme.CombineVerified),
	// so only the Lagrange interpolation in the exponent is charged.
	// Measured ~15× cheaper than Combine on the threshbls benchmarks;
	// modeled conservatively at 10×.
	CombineVerified time.Duration
	PerOp           time.Duration // per-operation work in a block (request auth)

	// Fan-outs used to amortize one-time crypto over a multi-destination
	// send: a broadcast signs/combines once and then sends n copies.
	// Set by cluster.New.
	n          int
	collectors int
	// offload, set by cluster.New when Options.CryptoPool > 0, moves
	// share verification and combination off the event loop: the loop
	// pays only the handling floor for share-carrying messages, and the
	// modeled worker pool (poolSink) pays ShareVerifyCost /
	// CombineVerified on its own busy horizons. workers is the pool
	// width, used to spread request-authentication cost (verified by the
	// pool in a real deployment, but not routed through the sink here).
	offload bool
	workers int
}

// DefaultCosts returns the schedule used by the benchmarks.
func DefaultCosts() CostModel {
	return CostModel{
		Base:            3 * time.Microsecond,
		Send:            2 * time.Microsecond,
		Sign:            100 * time.Microsecond,
		Verify:          120 * time.Microsecond,
		Combine:         500 * time.Microsecond,
		CombineVerified: 50 * time.Microsecond,
		PerOp:           20 * time.Microsecond,
	}
}

// ScaledCrypto multiplies the signature costs by k, leaving the transport
// floor untouched. Benchmarks run at a scaled-down n; multiplying crypto
// cost by (paper n / scaled n) moves the CPU saturation point to the same
// load, preserving the shape of the paper's throughput curves at a
// tractable simulation size (see DESIGN.md).
func (cm CostModel) ScaledCrypto(k int) CostModel {
	cm.Sign *= time.Duration(k)
	cm.Verify *= time.Duration(k)
	cm.Combine *= time.Duration(k)
	cm.CombineVerified *= time.Duration(k)
	return cm
}

// ShareVerifyCost models verifying one staged batch of k shares over a
// single digest on a crypto worker. One share pays the full pairing
// check; a larger batch rides the randomized-linear-combination path —
// one combined pairing check (≈ Verify/4 for the two pairings) plus a
// cheap per-share scalar multiply (≈ Verify/8 each). This is the unit
// the per-slot staging in internal/core aggregates towards: the deeper
// the queue while a worker is busy, the cheaper each share gets.
func (cm CostModel) ShareVerifyCost(k int) time.Duration {
	switch {
	case k <= 0:
		return 0
	case k == 1:
		return cm.Verify
	default:
		return cm.Verify/4 + time.Duration(k)*cm.Verify/8
	}
}

// RecvCost implements sim.Config.RecvCost for both engines' messages.
func (cm CostModel) RecvCost(msg any, size int) time.Duration {
	d := cm.Base
	switch m := msg.(type) {
	// --- SBFT engine ---
	case core.RequestMsg:
		// Signed client request (§IX). With the verification pool this
		// check parallelizes across the workers; the event loop pays the
		// per-worker share of it. This is the cost that dominates the
		// primary under open-loop load, so the pool's width is what moves
		// the saturation point.
		if cm.offload && cm.workers > 1 {
			d += cm.Verify / time.Duration(cm.workers)
		} else {
			d += cm.Verify
		}
	case core.PrePrepareMsg:
		d += cm.Verify + time.Duration(len(m.Reqs))*cm.PerOp
	case core.SignShareMsg:
		// BLS share batch verification (§III): "multiple signature shares
		// ... validated at nearly the same cost of validating only one" —
		// modeled as a 1/8 effective per-share cost. When the pool is on,
		// the event loop only stages the shares (handling floor); the
		// pool pays ShareVerifyCost on its own horizon.
		if !cm.offload {
			d += 2 * cm.Verify / 8
		}
	case core.FullCommitProofMsg:
		d += cm.Verify
	case core.PrepareMsg:
		d += cm.Verify
	case core.CommitMsg:
		if !cm.offload {
			d += cm.Verify / 8 // batch-verified τ shares at the collector
		}
	case core.FullCommitProofSlowMsg:
		d += 2 * cm.Verify
	case core.SignStateMsg:
		if !cm.offload {
			d += cm.Verify / 8 // batch-verified π shares at the E-collector
		}
	case core.FullExecuteProofMsg:
		d += cm.Verify
	case core.ExecuteAckMsg:
		d += cm.Verify + cm.PerOp // π signature + Merkle proof at the client
	case core.ReplyMsg:
		d += cm.Verify // signed reply at the client
	case core.CheckpointShareMsg:
		if !cm.offload {
			d += cm.Verify / 8
		}
	case core.CheckpointCertMsg:
		d += cm.Verify
	case core.ViewChangeMsg:
		d += cm.Verify + time.Duration(len(m.Slots))*cm.Verify
	case core.NewViewMsg:
		d += time.Duration(1+len(m.ViewChanges)) * cm.Verify
	case core.SnapshotMetaMsg:
		d += cm.Verify // π certificate + header proof
	case core.SnapshotChunkMsg:
		d += time.Duration(1+size/4096) * cm.PerOp // leaf hash chain
	case core.ReadMsg:
		// Queueing only; proof generation is charged on the reply send.
	case core.ReadReplyMsg:
		// Client-side acceptance: π certificate check plus the header and
		// chunk proof folds with the bucket decode.
		d += cm.Verify + cm.PerOp

	// --- PBFT baseline (all messages carry a signature, §IX) ---
	case pbft.PrePrepareMsg:
		d += cm.Verify + time.Duration(len(m.Reqs))*cm.PerOp
	case pbft.PrepareMsg:
		d += cm.Verify
	case pbft.CommitMsg:
		d += cm.Verify
	case pbft.CheckpointMsg:
		d += cm.Verify
	case pbft.ViewChangeMsg:
		d += cm.Verify + time.Duration(len(m.Prepared))*cm.Verify
	case pbft.NewViewMsg:
		d += time.Duration(1+len(m.ViewChanges)) * cm.Verify
	}
	return d
}

// amortized spreads a one-time cost over a k-destination send.
func amortized(cost time.Duration, k int) time.Duration {
	if k < 1 {
		k = 1
	}
	return cost / time.Duration(k)
}

// SendCost implements sim.Config.SendCost. One-time signing/combination is
// amortized over the message's fan-out (sign once, send k copies);
// per-destination work (distinct reply signatures, Merkle proofs) is
// charged in full on every send.
func (cm CostModel) SendCost(msg any, size int) time.Duration {
	d := cm.Send
	n, coll := cm.n, cm.collectors
	switch msg.(type) {
	// --- SBFT engine ---
	case core.SignShareMsg:
		d += amortized(2*cm.Sign, coll) // σ_i(h), τ_i(h), sent to c+2 collectors
	case core.CommitMsg:
		d += amortized(cm.Sign, coll) // τ_i(τ(h))
	case core.SignStateMsg:
		d += amortized(cm.Sign, coll) // π_i(d) to the E-collectors
	case core.CheckpointShareMsg:
		d += amortized(cm.Sign, n)
	case core.FullCommitProofMsg, core.PrepareMsg, core.FullCommitProofSlowMsg,
		core.FullExecuteProofMsg, core.CheckpointCertMsg:
		// Collectors verified every share on arrival, so the combine is
		// interpolation-only (CombineVerified in internal/core), once per
		// n-wide broadcast. With the pool on, the combination itself runs
		// on a worker (poolSink.Combine charges it there).
		if !cm.offload {
			d += amortized(cm.CombineVerified, n)
		}
	case core.ExecuteAckMsg:
		d += cm.PerOp // per-client Merkle proof; π(d) was already combined
	case core.ReplyMsg:
		d += cm.Sign // per-client signed reply (ingredient 3's bottleneck)
	case core.ReadReplyMsg:
		// Per-reply Merkle proof assembly against the retained commitment
		// tree; batching shares the proofs, so no signing and no combine —
		// the asymmetry versus ReplyMsg's cm.Sign is exactly why certified
		// reads beat ordered reads (the BENCH_reads gate).
		d += cm.PerOp
	case core.ViewChangeMsg:
		d += amortized(cm.Sign, n)

	// --- PBFT baseline: each broadcast signed once, sent n-wide ---
	case pbft.PrePrepareMsg, pbft.PrepareMsg, pbft.CommitMsg,
		pbft.CheckpointMsg, pbft.ViewChangeMsg:
		d += amortized(cm.Sign, n)
	}
	_ = size
	return d
}
