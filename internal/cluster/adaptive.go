package cluster

import (
	"fmt"
	"time"

	"sbft/internal/sim"
)

// This file implements the adaptive role-targeting attacker: where the
// fault schedules crash FIXED replicas, this adversary reads the
// deterministic role map — primary, C-collectors and E-collectors per
// (seq, view), all public knowledge (§V) — and retargets benign
// impairments every period to hit exactly the replicas currently holding
// a role. It is a performance attack, not a safety attack: no replica is
// corrupted or marked Byzantine, yet the fast path, the execution-ack
// path, or share collection is under permanent targeted fire. The harness
// quantifies how gracefully the protocol degrades (forced §V-E linear
// fallback, ExecFallbackTimeout replies, redundant-collector takeover)
// instead of merely surviving.

// defaultAttackPeriod is the retargeting cadence when Fault.Extra is zero:
// fast enough to track role rotation block by block under the default
// timeouts.
const defaultAttackPeriod = 150 * time.Millisecond

// roleAttacker is the periodic retargeting engine behind the FaultAttack*
// kinds. At most one is active per cluster.
type roleAttacker struct {
	cl      *Cluster
	kind    FaultKind
	period  time.Duration
	stopped bool
	flip    bool // FaultAttackCollectors: alternate C- and E-collectors

	// Current impairments, so retargeting releases exactly what it took.
	crashed    []int
	straggling []int
	links      [][2]sim.NodeID
}

// StartAdaptiveAttack begins an adaptive role-targeting attack, replacing
// any attack already running. period ≤ 0 uses the default cadence.
func (cl *Cluster) StartAdaptiveAttack(kind FaultKind, period time.Duration) error {
	if cl.Opts.Protocol == ProtoPBFT {
		return fmt.Errorf("cluster: %v targets the SBFT engine's role map", kind)
	}
	switch kind {
	case FaultAttackCollectors, FaultAttackFastPath, FaultAttackPartition:
	default:
		return fmt.Errorf("cluster: %v is not an adaptive attack kind", kind)
	}
	cl.StopAdaptiveAttack()
	if period <= 0 {
		period = defaultAttackPeriod
	}
	a := &roleAttacker{cl: cl, kind: kind, period: period}
	cl.attacker = a
	a.tick()
	return nil
}

// StopAdaptiveAttack halts the attacker and heals everything it impaired.
func (cl *Cluster) StopAdaptiveAttack() {
	if cl.attacker == nil {
		return
	}
	cl.attacker.stopped = true
	cl.attacker.release()
	cl.attacker = nil
}

// release heals every impairment this attacker currently holds.
func (a *roleAttacker) release() {
	for _, id := range a.crashed {
		a.cl.Net.Recover(sim.NodeID(id))
	}
	a.crashed = nil
	for _, id := range a.straggling {
		a.cl.Net.SetStraggler(sim.NodeID(id), 0)
	}
	a.straggling = nil
	for _, l := range a.links {
		a.cl.Net.SetLinkFault(l[0], l[1], sim.LinkFault{})
	}
	a.links = nil
}

// observe reads the cluster's protocol frontier the way an omniscient but
// deterministic attacker would: the highest settled view and execution
// frontier across live honest replicas (skipping lone escapees still in a
// view change, whose inflated view is not where the traffic is).
func (a *roleAttacker) observe() (view, frontier uint64) {
	anySettled := false
	for id := 1; id <= a.cl.N; id++ {
		r := a.cl.Replicas[id]
		if r == nil || a.cl.IsByzantine(id) || a.cl.Net.Crashed(sim.NodeID(id)) {
			continue
		}
		if le := r.LastExecuted(); le > frontier {
			frontier = le
		}
		if r.InViewChange() {
			continue
		}
		anySettled = true
		if v := r.View(); v > view {
			view = v
		}
	}
	if !anySettled {
		// Everyone is mid-view-change: target the highest escalation.
		for id := 1; id <= a.cl.N; id++ {
			r := a.cl.Replicas[id]
			if r == nil || a.cl.IsByzantine(id) || a.cl.Net.Crashed(sim.NodeID(id)) {
				continue
			}
			if v := r.View(); v > view {
				view = v
			}
		}
	}
	return view, frontier
}

// tick retargets the attack at the current role map and reschedules
// itself.
func (a *roleAttacker) tick() {
	if a.stopped {
		return
	}
	cfg := a.cl.Cfg
	view, frontier := a.observe()
	primary := cfg.Primary(view)
	target := frontier + 1
	budget := cfg.F + cfg.C // at-once fault budget this attacker must respect

	switch a.kind {
	case FaultAttackCollectors:
		// Crash exactly the collectors of the next slot, alternating
		// between the commit path (C-collectors) and the execution-ack
		// path (E-collectors, forcing the ExecFallbackTimeout replies).
		// The primary is spared: crashing it is a different, blunter
		// attack (and its staggered-collector fallback is the defense
		// under test here).
		roles := cfg.CCollectors(target, view)
		if a.flip && cfg.ExecCollectors {
			roles = cfg.ECollectors(target, view)
		}
		a.flip = !a.flip
		var want []int
		for _, id := range roles {
			if id != primary && len(want) < budget {
				want = append(want, id)
			}
		}
		a.retargetCrash(want)
	case FaultAttackFastPath:
		// Straggle c+1 replicas that are neither primary nor collectors:
		// the σ quorum (tolerates only c missing shares) dies while the τ
		// quorum (tolerates f+c) survives, so every block rides the
		// linear fallback — for this to beat the adaptive fast timer the
		// extra delay must exceed its 6× cap.
		avoid := map[int]bool{primary: true}
		for _, id := range cfg.CCollectors(target, view) {
			avoid[id] = true
		}
		var want []int
		for id := 1; id <= a.cl.N && len(want) < cfg.C+1; id++ {
			if !avoid[id] {
				want = append(want, id)
			}
		}
		a.retargetStraggle(want, 8*cfg.FastPathTimeout)
	case FaultAttackPartition:
		// Sever the primary's links TO its C-collectors (one direction:
		// each dropped outbound link costs one lossy-endpoint budget
		// slot). Shares still reach the collectors; the primary's
		// pre-prepares must arrive via other paths or the slot stalls
		// into the staggered fallback and view-change machinery.
		var want [][2]sim.NodeID
		for _, id := range cfg.CCollectors(target, view) {
			if id != primary && len(want) < budget {
				want = append(want, [2]sim.NodeID{sim.NodeID(primary), sim.NodeID(id)})
			}
		}
		a.retargetLinks(want)
	}
	a.cl.Sched.Schedule(a.period, a.tick)
}

// retargetCrash moves the attacker's crash set to `want`, releasing
// replicas that lost their role and sparing any replica already crashed
// by someone else (the schedule's crashes are not the attacker's to heal).
func (a *roleAttacker) retargetCrash(want []int) {
	wantSet := make(map[int]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	var keep []int
	for _, id := range a.crashed {
		if wantSet[id] {
			keep = append(keep, id)
			continue
		}
		a.cl.Net.Recover(sim.NodeID(id))
	}
	held := make(map[int]bool, len(keep))
	for _, id := range keep {
		held[id] = true
	}
	for _, id := range want {
		if held[id] || a.cl.Net.Crashed(sim.NodeID(id)) || a.cl.IsByzantine(id) {
			continue
		}
		a.cl.Net.Crash(sim.NodeID(id))
		keep = append(keep, id)
	}
	a.crashed = keep
}

// retargetStraggle moves the attacker's straggler set to `want`.
func (a *roleAttacker) retargetStraggle(want []int, extra time.Duration) {
	wantSet := make(map[int]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	var keep []int
	for _, id := range a.straggling {
		if wantSet[id] {
			keep = append(keep, id)
			continue
		}
		a.cl.Net.SetStraggler(sim.NodeID(id), 0)
	}
	held := make(map[int]bool, len(keep))
	for _, id := range keep {
		held[id] = true
	}
	for _, id := range want {
		if held[id] || a.cl.IsByzantine(id) {
			continue
		}
		a.cl.Net.SetStraggler(sim.NodeID(id), extra)
		keep = append(keep, id)
	}
	a.straggling = keep
}

// retargetLinks moves the attacker's dropped-link set to `want`.
func (a *roleAttacker) retargetLinks(want [][2]sim.NodeID) {
	wantSet := make(map[[2]sim.NodeID]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	var keep [][2]sim.NodeID
	for _, l := range a.links {
		if wantSet[l] {
			keep = append(keep, l)
			continue
		}
		a.cl.Net.SetLinkFault(l[0], l[1], sim.LinkFault{})
	}
	held := make(map[[2]sim.NodeID]bool, len(keep))
	for _, l := range keep {
		held[l] = true
	}
	for _, l := range want {
		if held[l] {
			continue
		}
		a.cl.Net.SetLinkFault(l[0], l[1], sim.LinkFault{Drop: 1})
		keep = append(keep, l)
	}
	a.links = keep
}
