package cluster

import (
	"testing"
	"time"
)

// TestPBFTCrashedBackupsAtScale is the regression test for the view-entry
// race: with f crashed backups the prepare quorum needs every alive
// replica, so prepares broadcast by replicas that entered a view ahead of
// their peers must be buffered, not dropped, or re-proposals livelock.
func TestPBFTCrashedBackupsAtScale(t *testing.T) {
	costs := DefaultCosts().ScaledCrypto(4)
	cl := newKV(t, Options{
		Protocol: ProtoPBFT, F: 4,
		Clients: 8, Seed: 61, Costs: &costs,
		ClientTimeout: 60 * time.Second,
	})
	cl.CrashReplicas(4)
	res := cl.RunClosedLoop(5, kvGen, 5*time.Minute)
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40 with f crashed backups", res.Completed)
	}
	digestsAgree(t, cl)
}
