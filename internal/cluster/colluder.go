package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
	"sbft/internal/sim"
)

// This file implements key-share-aware collusion (ROADMAP item 4): a set
// of corrupted replicas modeled as ONE adversary that has extracted every
// member's σ/τ/π threshold key shares. Unlike the independent FaultByz*
// corrupters — each limited to signing garbage with its own share — the
// Colluder coordinator signs with ALL member keys at once, pools the
// honest shares its members receive on the wire, and combines full
// threshold certificates the moment any variant reaches a quorum. This is
// the strongest adversary the paper's model admits (§IV: up to f replicas
// "completely compromised", which includes their key material), so it
// probes the exact boundary the threshold arithmetic defends:
//
//   - a variant needs QuorumSlow = 2f+c+1 τ shares; the colluders own m
//     and must source the rest from honest replicas dealt that variant;
//   - with m ≤ f members, the 3f+2c+1-m honest replicas cannot give BOTH
//     variants 2f+c+1-m shares — the second variant falls exactly ONE
//     share short, every time (threshold crypto's margin is exact);
//   - with m = f+1 members, an even honest split certifies both variants
//     and honest replicas commit conflicting blocks — the over-budget
//     canary the safety auditor must catch.
//
// Mechanically the coordinator needs two sim capabilities the independent
// corrupters do not: an inbound Observer on each member (a compromised
// process leaks what it RECEIVES, i.e. honest shares addressed to member
// collectors) and Inject (emitting jointly-forged certificates as one of
// its members, bypassing that member's own corrupter).

// Colluder coordinates a set of corrupted replicas with pooled threshold
// key material. One Colluder instance is shared by all members' corrupters
// and observers; all its state mutations happen on the simulator's single
// logical thread.
type Colluder struct {
	cl        *Cluster
	kind      FaultKind
	members   []int // ascending
	memberSet map[int]bool
	honest    []int // ascending non-members

	// FaultByzColludeEquivocate: per-sequence dealing and pooling state.
	deals map[uint64]*colludedSeq

	// FaultByzColludeCkpt: one agreed garbage digest per (domain, seq) —
	// mutually consistent across members, conflicting with the honest one.

	// FaultByzColludeSnapshot: the oldest certified snapshot meta ANY
	// member ever served; all members answer with it.
	staleMeta *core.SnapshotMetaMsg
}

// colludedSeq is the collusion state for one equivocated sequence number.
type colludedSeq struct {
	view     uint64
	dealt    map[sim.NodeID]int // recipient → variant index
	variants []*colludedVariant
}

// colludedVariant is one side of the equivocation for a sequence.
type colludedVariant struct {
	hash       core.Digest
	reqs       []core.Request
	recipients []sim.NodeID // ascending; who was dealt this variant
	tauShares  map[int]threshsig.Share
	certs      []*colludedCert
	prepared   bool // prepare certificate injected for this variant
}

// colludedCert is one known prepare certificate for a variant (the
// coordinator's own combine, or an honest collector's observed on the
// wire — the insecure scheme's combined bytes depend on WHICH shares went
// in, so several distinct-but-valid certificates can coexist).
type colludedCert struct {
	tau      threshsig.Signature
	ttShares map[int]threshsig.Share
	slowSent bool
}

// InstallColluders arms a colluding key-share adversary over the given
// member set (Fault.Node plus Fault.Peers). Every member is marked
// Byzantine for the audit; a FaultByzRestore per member disarms it. The
// collusion kinds target the SBFT engine's threshold schemes; the PBFT
// baseline has its own InstallColludingEquivocators canary.
func (cl *Cluster) InstallColluders(kind FaultKind, members []int) error {
	if cl.Opts.Protocol == ProtoPBFT {
		return fmt.Errorf("cluster: %v requires an SBFT-engine protocol", kind)
	}
	if len(members) == 0 {
		return fmt.Errorf("cluster: %v needs at least one member", kind)
	}
	seen := make(map[int]bool)
	var set []int
	for _, id := range members {
		if id < 1 || id > cl.N {
			return fmt.Errorf("cluster: replica id %d out of range [1,%d]", id, cl.N)
		}
		if _, replaced := cl.Opts.Byzantine[id]; replaced {
			return fmt.Errorf("cluster: replica %d is already a replaced Byzantine node", id)
		}
		if !seen[id] {
			seen[id] = true
			set = append(set, id)
		}
	}
	sortInts(set)
	col := &Colluder{
		cl:        cl,
		kind:      kind,
		members:   set,
		memberSet: seen,
		deals:     make(map[uint64]*colludedSeq),
	}
	for id := 1; id <= cl.N; id++ {
		if !seen[id] {
			col.honest = append(col.honest, id)
		}
	}
	for _, id := range set {
		cl.MarkByzantine(id)
		cl.Net.SetCorrupter(sim.NodeID(id), col.corrupter(id))
		if kind == FaultByzColludeEquivocate {
			cl.Net.SetObserver(sim.NodeID(id), col.observe)
		}
	}
	return nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// keysOf returns a member's full key set (the extracted shares).
func (c *Colluder) keysOf(member int) core.ReplicaKeys {
	return c.cl.keys[member-1]
}

// corrupter builds the outbound interceptor for one member.
func (c *Colluder) corrupter(member int) sim.Corrupter {
	return sim.CorruptFunc(func(to sim.NodeID, msg any, size int) []sim.Injection {
		switch c.kind {
		case FaultByzColludeEquivocate:
			return c.corruptEquivocate(member, to, msg, size)
		case FaultByzColludeCkpt:
			return c.corruptCkpt(member, to, msg, size)
		case FaultByzColludeSnapshot:
			return c.corruptSnapshot(to, msg, size)
		}
		return sim.PassThrough(to, msg, size)
	})
}

// ---------------------------------------------------------------------------
// FaultByzColludeEquivocate: jointly-signed partial quorums.

// dealFor creates (or returns) the dealing state for an intercepted
// pre-prepare. Variant 0 is the honest block; variant 1 the conflicting
// reorder. The honest recipients of variant 0 rotate with the sequence
// number so no honest replica is starved forever — per slot the split is
// adversarially tight: variant 0 gets exactly the QuorumSlow-m honest
// shares it needs, variant 1 the remainder (one short at m ≤ f).
func (c *Colluder) dealFor(m core.PrePrepareMsg) *colludedSeq {
	if d, ok := c.deals[m.Seq]; ok {
		return d
	}
	reqsA := m.Reqs
	reqsB := equivocateReqs(m.Reqs)
	hA := core.BlockHash(m.Seq, m.View, reqsA)
	hB := core.BlockHash(m.Seq, m.View, reqsB)
	d := &colludedSeq{
		view:  m.View,
		dealt: make(map[sim.NodeID]int),
		variants: []*colludedVariant{
			{hash: hA, reqs: reqsA, tauShares: make(map[int]threshsig.Share)},
			{hash: hB, reqs: reqsB, tauShares: make(map[int]threshsig.Share)},
		},
	}
	need := c.cl.Cfg.QuorumSlow() - len(c.members)
	if need < 0 {
		need = 0
	}
	rot := int(m.Seq % uint64(len(c.honest)))
	sideA := make(map[int]bool, need)
	for i := 0; i < need && i < len(c.honest); i++ {
		sideA[c.honest[(rot+i)%len(c.honest)]] = true
	}
	for id := 1; id <= c.cl.N; id++ {
		v := 1
		if sideA[id] || c.memberSet[id] {
			v = 0
		}
		d.dealt[sim.NodeID(id)] = v
		d.variants[v].recipients = append(d.variants[v].recipients, sim.NodeID(id))
	}
	// The members' own τ shares for both variants are available to the
	// coordinator immediately: it holds their keys.
	for _, v := range d.variants {
		for _, mem := range c.members {
			if sh, err := c.keysOf(mem).Tau.Sign(v.hash[:]); err == nil {
				v.tauShares[mem] = sh
			}
		}
	}
	c.deals[m.Seq] = d
	return d
}

// corruptEquivocate rewrites a member's outbound protocol traffic so each
// recipient consistently sees its dealt variant, signed with the member's
// real keys.
func (c *Colluder) corruptEquivocate(member int, to sim.NodeID, msg any, size int) []sim.Injection {
	switch m := msg.(type) {
	case core.PrePrepareMsg:
		// Only a member acting as primary proposes; deal and rewrite.
		d := c.dealFor(m)
		if d.view != m.View {
			break
		}
		v := d.variants[d.dealt[to]]
		em := core.PrePrepareMsg{Seq: m.Seq, View: m.View, Reqs: v.reqs}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	case core.SignShareMsg:
		d := c.deals[m.Seq]
		if d == nil || d.view != m.View {
			break
		}
		v := d.variants[d.dealt[to]]
		tau, err := c.keysOf(member).Tau.Sign(v.hash[:])
		if err != nil {
			return nil
		}
		em := core.SignShareMsg{Seq: m.Seq, View: m.View, Replica: member, TauSig: tau}
		if len(m.SigmaSig.Data) > 0 {
			sigma, err := c.keysOf(member).Sigma.Sign(v.hash[:])
			if err != nil {
				return nil
			}
			em.SigmaSig = sigma
		}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	case core.CommitMsg:
		d := c.deals[m.Seq]
		if d == nil || d.view != m.View {
			break
		}
		// Re-sign the commit share over the recipient variant's newest
		// known prepare certificate (if none is known yet, suppress: an
		// honest share over the member engine's own certificate could leak
		// a share usable by neither side consistently).
		v := d.variants[d.dealt[to]]
		if len(v.certs) == 0 {
			return nil
		}
		cert := v.certs[len(v.certs)-1]
		sh, err := c.keysOf(member).Tau.Sign(core.TauTauDigest(cert.tau))
		if err != nil {
			return nil
		}
		em := core.CommitMsg{Seq: m.Seq, View: m.View, Replica: member, TauTau: sh}
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	return sim.PassThrough(to, msg, size)
}

// observe is the inbound wiretap shared by all members: honest shares and
// certificates addressed to member collectors feed the coordinator's
// pools.
func (c *Colluder) observe(from sim.NodeID, msg any) {
	if c.kind != FaultByzColludeEquivocate {
		return
	}
	switch m := msg.(type) {
	case core.SignShareMsg:
		c.poolTau(m)
	case core.PrepareMsg:
		c.poolPrepare(m)
	case core.CommitMsg:
		c.poolTauTau(m)
	}
}

// poolTau records an honest replica's τ share. The sender signed the
// variant IT was dealt, so the share files under that variant.
func (c *Colluder) poolTau(m core.SignShareMsg) {
	d := c.deals[m.Seq]
	if d == nil || d.view != m.View || c.memberSet[m.Replica] {
		return
	}
	v := d.variants[d.dealt[sim.NodeID(m.Replica)]]
	if _, dup := v.tauShares[m.Replica]; dup {
		return
	}
	if c.cl.Suite.Tau.VerifyShare(v.hash[:], m.TauSig) != nil {
		return
	}
	v.tauShares[m.Replica] = m.TauSig
	c.tryPrepare(m.Seq, d, v)
}

// tryPrepare combines and injects a prepare certificate once a variant's
// pool reaches the slow quorum.
func (c *Colluder) tryPrepare(seq uint64, d *colludedSeq, v *colludedVariant) {
	if v.prepared || len(v.tauShares) < c.cl.Cfg.QuorumSlow() {
		return
	}
	sig, err := c.cl.Suite.Tau.Combine(v.hash[:], sharesOf(v.tauShares))
	if err != nil {
		return
	}
	v.prepared = true
	cert := c.addCert(v, sig)
	msg := core.PrepareMsg{Seq: seq, View: d.view, Tau: sig}
	for _, to := range v.recipients {
		c.cl.Net.Inject(sim.NodeID(c.members[0]), to, msg, msg.WireSize())
	}
	c.trySlow(seq, d, v, cert)
}

// addCert registers a prepare certificate for a variant (deduplicated by
// bytes) and pre-signs every member's commit share over it.
func (c *Colluder) addCert(v *colludedVariant, sig threshsig.Signature) *colludedCert {
	for _, cert := range v.certs {
		if string(cert.tau.Data) == string(sig.Data) {
			return cert
		}
	}
	cert := &colludedCert{tau: sig, ttShares: make(map[int]threshsig.Share)}
	d := core.TauTauDigest(sig)
	for _, mem := range c.members {
		if sh, err := c.keysOf(mem).Tau.Sign(d); err == nil {
			cert.ttShares[mem] = sh
		}
	}
	v.certs = append(v.certs, cert)
	return cert
}

// poolPrepare learns prepare certificates combined by honest collectors
// (their byte encoding differs from the coordinator's own combine, so
// honest commit shares may be signed over either).
func (c *Colluder) poolPrepare(m core.PrepareMsg) {
	d := c.deals[m.Seq]
	if d == nil || d.view != m.View {
		return
	}
	for _, v := range d.variants {
		if c.cl.Suite.Tau.Verify(v.hash[:], m.Tau) == nil {
			cert := c.addCert(v, m.Tau)
			c.trySlow(m.Seq, d, v, cert)
			return
		}
	}
}

// poolTauTau records an honest replica's commit share, matching it against
// the known certificates of the sender's dealt variant.
func (c *Colluder) poolTauTau(m core.CommitMsg) {
	d := c.deals[m.Seq]
	if d == nil || d.view != m.View || c.memberSet[m.Replica] {
		return
	}
	v := d.variants[d.dealt[sim.NodeID(m.Replica)]]
	for _, cert := range v.certs {
		if _, dup := cert.ttShares[m.Replica]; dup {
			continue
		}
		if c.cl.Suite.Tau.VerifyShare(core.TauTauDigest(cert.tau), m.TauTau) != nil {
			continue
		}
		cert.ttShares[m.Replica] = m.TauTau
		c.trySlow(m.Seq, d, v, cert)
		return
	}
}

// trySlow combines and injects a full slow commit proof once any
// certificate's commit-share pool reaches the slow quorum.
func (c *Colluder) trySlow(seq uint64, d *colludedSeq, v *colludedVariant, cert *colludedCert) {
	if cert.slowSent || len(cert.ttShares) < c.cl.Cfg.QuorumSlow() {
		return
	}
	outer, err := c.cl.Suite.Tau.Combine(core.TauTauDigest(cert.tau), sharesOf(cert.ttShares))
	if err != nil {
		return
	}
	cert.slowSent = true
	msg := core.FullCommitProofSlowMsg{Seq: seq, View: d.view, Tau: cert.tau, TauTau: outer}
	for _, to := range v.recipients {
		c.cl.Net.Inject(sim.NodeID(c.members[0]), to, msg, msg.WireSize())
	}
}

// sharesOf orders a share pool deterministically by signer.
func sharesOf(m map[int]threshsig.Share) []threshsig.Share {
	out := make([]threshsig.Share, 0, len(m))
	for _, sh := range m {
		out = append(out, sh)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Signer < out[j-1].Signer; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// FaultByzColludeCkpt: certified-looking conflicting checkpoints.

// colludeDigest derives the members' agreed-on fake digest for a domain
// and sequence: every member computes the same bytes, so honest replicas
// see the whole set consistently backing one conflicting state.
func (c *Colluder) colludeDigest(domain string, seq uint64) []byte {
	h := sha256.New()
	h.Write([]byte("sbft:collude:"))
	h.Write([]byte(domain))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(c.cl.Opts.Seed))
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	return h.Sum(nil)
}

// corruptCkpt rewrites a member's checkpoint and execution-state shares to
// the agreed fake digest AND injects its peers' matching shares — the
// recipient sees m consistent, correctly-signed shares for a state that
// never existed, exactly one short of the f+1 π quorum while the set stays
// within budget.
func (c *Colluder) corruptCkpt(member int, to sim.NodeID, msg any, size int) []sim.Injection {
	switch m := msg.(type) {
	case core.CheckpointShareMsg:
		evil := c.colludeDigest("ckpt", m.Seq)
		var out []sim.Injection
		for _, mem := range c.members {
			share, err := c.keysOf(mem).Pi.Sign(core.CheckpointSigDigest(m.Seq, evil))
			if err != nil {
				continue
			}
			em := core.CheckpointShareMsg{Seq: m.Seq, Replica: mem, Digest: evil, PiSig: share}
			out = append(out, sim.Injection{To: to, Msg: em, Size: em.WireSize()})
		}
		return out
	case core.SignStateMsg:
		evil := c.colludeDigest("state", m.Seq)
		var out []sim.Injection
		for _, mem := range c.members {
			share, err := c.keysOf(mem).Pi.Sign(core.StateSigDigest(m.Seq, evil))
			if err != nil {
				continue
			}
			em := core.SignStateMsg{Seq: m.Seq, Replica: mem, Digest: evil, PiSig: share}
			out = append(out, sim.Injection{To: to, Msg: em, Size: em.WireSize()})
		}
		return out
	}
	return sim.PassThrough(to, msg, size)
}

// ---------------------------------------------------------------------------
// FaultByzColludeSnapshot: mutually consistent stale snapshot metas.

// corruptSnapshot serves the coordinated stale meta: the oldest certified
// meta ANY member ever answered with. Unlike the lone staleMetaServer, a
// fetcher polling several members gets the same lying answer from each —
// the mutual consistency that makes collusion dangerous to first-accepted
// meta selection.
func (c *Colluder) corruptSnapshot(to sim.NodeID, msg any, size int) []sim.Injection {
	if m, ok := msg.(core.SnapshotMetaMsg); ok {
		if c.staleMeta == nil || m.Seq < c.staleMeta.Seq {
			mm := m
			c.staleMeta = &mm
		}
		em := *c.staleMeta
		return []sim.Injection{{To: to, Msg: em, Size: em.WireSize()}}
	}
	return sim.PassThrough(to, msg, size)
}
