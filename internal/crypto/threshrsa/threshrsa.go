// Package threshrsa implements Shoup's practical threshold RSA signatures
// (EUROCRYPT 2000), the robust non-interactive threshold scheme the SBFT
// paper cites as the classic alternative to threshold BLS (§III, [67]).
//
// A trusted dealer (matching SBFT's permissioned PKI setup) generates an
// RSA modulus N = pq with p = 2p'+1 and q = 2q'+1 safe primes, and Shamir
// shares the private exponent d over Z_m, m = p'q'. Signature shares are
// x_i = x^{2Δs_i} mod N with Δ = n! and carry a Chaum–Pedersen style proof
// of correctness, making the scheme robust: bad shares are filtered before
// combination. Any k valid shares interpolate (in the exponent, with
// integer Lagrange coefficients scaled by Δ) to w with w^e = x^{4Δ²}; the
// final signature y with y^e = x follows from gcd(4Δ², e) = 1 via the
// extended Euclidean algorithm.
//
// Everything is stdlib (math/big, crypto/rand, crypto/sha256).
package threshrsa

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"sbft/internal/crypto/threshsig"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// DefaultModulusBits is the RSA modulus size used by Dealer when none is
// configured. 2048 bits matches the security level the paper compares BLS
// against; safe-prime generation at this size takes tens of seconds, so
// tests use smaller moduli.
const DefaultModulusBits = 2048

// Dealer generates threshold RSA instances.
type Dealer struct {
	// ModulusBits is the size of N. Zero means DefaultModulusBits.
	ModulusBits int
	// Rand is the entropy source. Nil means crypto/rand.Reader.
	Rand io.Reader
}

var _ threshsig.Dealer = Dealer{}

// Scheme is the public side of a dealt threshold RSA instance.
type Scheme struct {
	k, n  int
	nMod  *big.Int   // RSA modulus N
	e     *big.Int   // public exponent
	v     *big.Int   // verification base, generator of QR_N
	vks   []*big.Int // vks[i-1] = v^{s_i}, per-signer verification keys
	delta *big.Int   // Δ = n!
}

// Signer holds one share s_i of the private exponent.
type Signer struct {
	id     int
	scheme *Scheme
	si     *big.Int
	rand   io.Reader
}

// Deal implements threshsig.Dealer.
func (d Dealer) Deal(k, n int) (threshsig.Scheme, []threshsig.Signer, error) {
	if k < 1 || n < 1 || k > n {
		return nil, nil, fmt.Errorf("threshrsa: invalid threshold k=%d n=%d", k, n)
	}
	bits := d.ModulusBits
	if bits == 0 {
		bits = DefaultModulusBits
	}
	rng := d.Rand
	if rng == nil {
		rng = rand.Reader
	}

	pp, p, err := safePrime(rng, bits/2)
	if err != nil {
		return nil, nil, fmt.Errorf("threshrsa: generating p: %w", err)
	}
	var qp, q *big.Int
	for {
		qp, q, err = safePrime(rng, bits-bits/2)
		if err != nil {
			return nil, nil, fmt.Errorf("threshrsa: generating q: %w", err)
		}
		if p.Cmp(q) != 0 {
			break
		}
	}
	nMod := new(big.Int).Mul(p, q)
	m := new(big.Int).Mul(pp, qp) // order of QR_N

	// Public exponent: a prime larger than n so it cannot divide Δ = n!.
	e := big.NewInt(65537)
	if int64(n) >= e.Int64() {
		return nil, nil, fmt.Errorf("threshrsa: n=%d too large for fixed e", n)
	}
	dExp := new(big.Int).ModInverse(e, m)
	if dExp == nil {
		return nil, nil, fmt.Errorf("threshrsa: e not invertible mod m")
	}

	// Shamir-share d over Z_m with a degree k-1 polynomial.
	coeffs := make([]*big.Int, k)
	coeffs[0] = dExp
	for i := 1; i < k; i++ {
		c, err := rand.Int(rng, m)
		if err != nil {
			return nil, nil, fmt.Errorf("threshrsa: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]*big.Int, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = evalPoly(coeffs, big.NewInt(int64(i)), m)
	}

	// Verification base v: a random square generates QR_N with
	// overwhelming probability (QR_N is cyclic of order p'q').
	u, err := rand.Int(rng, nMod)
	if err != nil {
		return nil, nil, fmt.Errorf("threshrsa: sampling v: %w", err)
	}
	v := new(big.Int).Exp(u, two, nMod)

	sch := &Scheme{
		k:     k,
		n:     n,
		nMod:  nMod,
		e:     e,
		v:     v,
		vks:   make([]*big.Int, n),
		delta: factorial(n),
	}
	for i := 1; i <= n; i++ {
		sch.vks[i-1] = new(big.Int).Exp(v, shares[i-1], nMod)
	}
	signers := make([]threshsig.Signer, n)
	for i := 1; i <= n; i++ {
		signers[i-1] = &Signer{id: i, scheme: sch, si: shares[i-1], rand: rng}
	}
	return sch, signers, nil
}

// safePrime returns (p', p) with p = 2p'+1, both prime, p of the given bit
// length.
func safePrime(rng io.Reader, bits int) (pp, p *big.Int, err error) {
	for {
		pp, err = rand.Prime(rng, bits-1)
		if err != nil {
			return nil, nil, err
		}
		p = new(big.Int).Lsh(pp, 1)
		p.Add(p, one)
		if p.ProbablyPrime(20) {
			return pp, p, nil
		}
	}
}

func evalPoly(coeffs []*big.Int, x, mod *big.Int) *big.Int {
	res := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		res.Mul(res, x)
		res.Add(res, coeffs[i])
		res.Mod(res, mod)
	}
	return res
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// digestToQR maps a digest into QR_N by hashing into Z_N and squaring.
func (s *Scheme) digestToQR(digest []byte) *big.Int {
	// Expand the digest with counters until we cover len(N) bytes, then
	// reduce mod N and square. Deterministic and collision-resistant up
	// to SHA-256 strength.
	need := (s.nMod.BitLen() + 7) / 8
	var buf []byte
	for ctr := uint32(0); len(buf) < need+8; ctr++ {
		h := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(digest)
		buf = h.Sum(buf)
	}
	x := new(big.Int).SetBytes(buf[:need])
	x.Mod(x, s.nMod)
	x.Mul(x, x)
	x.Mod(x, s.nMod)
	return x
}

// ID implements threshsig.Signer.
func (sg *Signer) ID() int { return sg.id }

// Sign implements threshsig.Signer. The share is x^{2Δs_i} together with a
// non-interactive proof of equality of discrete logs binding the share to
// the signer's verification key.
func (sg *Signer) Sign(digest []byte) (threshsig.Share, error) {
	s := sg.scheme
	x := s.digestToQR(digest)

	exp := new(big.Int).Lsh(sg.si, 1) // 2 s_i
	exp.Mul(exp, s.delta)             // 2 Δ s_i
	xi := new(big.Int).Exp(x, exp, s.nMod)

	// Chaum–Pedersen proof for log_v(v_i) = log_{x4Δ}(x_i²) = s_i.
	x4d := new(big.Int).Exp(x, new(big.Int).Lsh(s.delta, 2), s.nMod) // x^{4Δ}
	xi2 := new(big.Int).Exp(xi, two, s.nMod)

	// r is sampled from [0, 2^{L(N)+2*L1} ) to statistically hide s_i.
	bound := new(big.Int).Lsh(one, uint(s.nMod.BitLen())+2*proofHashBits)
	r, err := rand.Int(sg.rand, bound)
	if err != nil {
		return threshsig.Share{}, fmt.Errorf("threshrsa: sampling proof nonce: %w", err)
	}
	vr := new(big.Int).Exp(s.v, r, s.nMod)
	xr := new(big.Int).Exp(x4d, r, s.nMod)
	c := proofChallenge(s.v, x4d, s.vks[sg.id-1], xi2, vr, xr)
	z := new(big.Int).Mul(c, sg.si)
	z.Add(z, r)

	return threshsig.Share{Signer: sg.id, Data: encodeShare(xi, c, z)}, nil
}

// proofHashBits is the challenge length of the share-correctness proof.
const proofHashBits = 256

func proofChallenge(vals ...*big.Int) *big.Int {
	h := sha256.New()
	for _, v := range vals {
		b := v.Bytes()
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		h.Write(lb[:])
		h.Write(b)
	}
	return new(big.Int).SetBytes(h.Sum(nil))
}

var _ threshsig.Scheme = (*Scheme)(nil)

// Threshold implements threshsig.Scheme.
func (s *Scheme) Threshold() int { return s.k }

// N implements threshsig.Scheme.
func (s *Scheme) N() int { return s.n }

// VerifyShare implements threshsig.Scheme. It checks the Chaum–Pedersen
// proof carried in the share.
func (s *Scheme) VerifyShare(digest []byte, share threshsig.Share) error {
	if share.Signer < 1 || share.Signer > s.n {
		return fmt.Errorf("%w: signer %d, n=%d", threshsig.ErrBadSignerID, share.Signer, s.n)
	}
	xi, c, z, err := decodeShare(share.Data)
	if err != nil {
		return fmt.Errorf("%w: %v", threshsig.ErrInvalidShare, err)
	}
	x := s.digestToQR(digest)
	x4d := new(big.Int).Exp(x, new(big.Int).Lsh(s.delta, 2), s.nMod)
	xi2 := new(big.Int).Exp(xi, two, s.nMod)
	vi := s.vks[share.Signer-1]

	// Recompute the commitments: v^z v_i^{-c} and x4d^z x_i^{-2c}.
	vz := new(big.Int).Exp(s.v, z, s.nMod)
	vic := new(big.Int).Exp(vi, c, s.nMod)
	vicInv := new(big.Int).ModInverse(vic, s.nMod)
	if vicInv == nil {
		return fmt.Errorf("%w: degenerate verification key", threshsig.ErrInvalidShare)
	}
	vr := vz.Mul(vz, vicInv)
	vr.Mod(vr, s.nMod)

	xz := new(big.Int).Exp(x4d, z, s.nMod)
	xic := new(big.Int).Exp(xi2, c, s.nMod)
	xicInv := new(big.Int).ModInverse(xic, s.nMod)
	if xicInv == nil {
		return fmt.Errorf("%w: non-invertible share", threshsig.ErrInvalidShare)
	}
	xr := xz.Mul(xz, xicInv)
	xr.Mod(xr, s.nMod)

	if proofChallenge(s.v, x4d, vi, xi2, vr, xr).Cmp(c) != 0 {
		return fmt.Errorf("%w: proof of correctness failed for signer %d", threshsig.ErrInvalidShare, share.Signer)
	}
	return nil
}

// Combine implements threshsig.Scheme.
func (s *Scheme) Combine(digest []byte, shares []threshsig.Share) (threshsig.Signature, error) {
	return s.combine(digest, shares, true)
}

// CombineVerified implements threshsig.Scheme: the caller attests the
// shares' Chaum–Pedersen proofs were already checked, so only the
// interpolation runs (the combined signature is still self-checked, which
// costs one RSA verification rather than k proof verifications).
func (s *Scheme) CombineVerified(digest []byte, shares []threshsig.Share) (threshsig.Signature, error) {
	return s.combine(digest, shares, false)
}

func (s *Scheme) combine(digest []byte, shares []threshsig.Share, verify bool) (threshsig.Signature, error) {
	sorted, err := threshsig.CheckShares(s.k, s.n, shares)
	if err != nil {
		return threshsig.Signature{}, err
	}
	sorted = sorted[:s.k]
	ids := make([]int, s.k)
	xis := make([]*big.Int, s.k)
	for i, sh := range sorted {
		if verify {
			if err := s.VerifyShare(digest, sh); err != nil {
				return threshsig.Signature{}, err
			}
		}
		xi, _, _, err := decodeShare(sh.Data)
		if err != nil {
			return threshsig.Signature{}, fmt.Errorf("%w: %v", threshsig.ErrInvalidShare, err)
		}
		ids[i] = sh.Signer
		xis[i] = xi
	}

	x := s.digestToQR(digest)
	// w = Π x_i^{2 λ_{0,i}} where λ_{0,i} = Δ Π_{j≠i} j/(j-i) is an
	// integer. Then w^e = x^{4Δ²}.
	w := big.NewInt(1)
	for i, id := range ids {
		lam := s.lagrange0(ids, id)
		exp := new(big.Int).Lsh(lam, 1) // 2λ
		t := new(big.Int)
		if exp.Sign() < 0 {
			inv := new(big.Int).ModInverse(xis[i], s.nMod)
			if inv == nil {
				return threshsig.Signature{}, fmt.Errorf("%w: non-invertible share from %d", threshsig.ErrInvalidShare, id)
			}
			t.Exp(inv, new(big.Int).Neg(exp), s.nMod)
		} else {
			t.Exp(xis[i], exp, s.nMod)
		}
		w.Mul(w, t)
		w.Mod(w, s.nMod)
	}

	// gcd(4Δ², e) = 1 since e is an odd prime > n. Find a, b with
	// a·4Δ² + b·e = 1; the signature is y = w^a x^b, y^e = x.
	ePrime := new(big.Int).Mul(s.delta, s.delta)
	ePrime.Lsh(ePrime, 2)
	g, a, b := new(big.Int), new(big.Int), new(big.Int)
	g.GCD(a, b, ePrime, s.e)
	if g.Cmp(one) != 0 {
		return threshsig.Signature{}, fmt.Errorf("threshrsa: gcd(4Δ², e) != 1")
	}
	y := new(big.Int)
	if a.Sign() < 0 {
		winv := new(big.Int).ModInverse(w, s.nMod)
		if winv == nil {
			return threshsig.Signature{}, fmt.Errorf("threshrsa: non-invertible w")
		}
		y.Exp(winv, new(big.Int).Neg(a), s.nMod)
	} else {
		y.Exp(w, a, s.nMod)
	}
	xb := new(big.Int)
	if b.Sign() < 0 {
		xinv := new(big.Int).ModInverse(x, s.nMod)
		if xinv == nil {
			return threshsig.Signature{}, fmt.Errorf("threshrsa: non-invertible x")
		}
		xb.Exp(xinv, new(big.Int).Neg(b), s.nMod)
	} else {
		xb.Exp(x, b, s.nMod)
	}
	y.Mul(y, xb)
	y.Mod(y, s.nMod)

	sig := threshsig.Signature{Data: y.Bytes()}
	if err := s.Verify(digest, sig); err != nil {
		return threshsig.Signature{}, fmt.Errorf("threshrsa: combined signature failed self-check: %w", err)
	}
	return sig, nil
}

// lagrange0 computes λ_{0,i} = Δ · Π_{j∈S, j≠i} j / (j - i), an integer.
func (s *Scheme) lagrange0(set []int, i int) *big.Int {
	num := new(big.Int).Set(s.delta)
	den := big.NewInt(1)
	for _, j := range set {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(j)))
		den.Mul(den, big.NewInt(int64(j-i)))
	}
	return num.Quo(num, den)
}

// Verify implements threshsig.Scheme: y^e == H(digest)² mod N.
func (s *Scheme) Verify(digest []byte, sig threshsig.Signature) error {
	y := new(big.Int).SetBytes(sig.Data)
	if y.Sign() <= 0 || y.Cmp(s.nMod) >= 0 {
		return threshsig.ErrInvalidSignature
	}
	x := s.digestToQR(digest)
	if new(big.Int).Exp(y, s.e, s.nMod).Cmp(x) != 0 {
		return threshsig.ErrInvalidSignature
	}
	return nil
}

// encodeShare serializes (x_i, c, z) with 4-byte length prefixes.
func encodeShare(vals ...*big.Int) []byte {
	var out []byte
	for _, v := range vals {
		b := v.Bytes()
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		out = append(out, lb[:]...)
		out = append(out, b...)
	}
	return out
}

func decodeShare(data []byte) (xi, c, z *big.Int, err error) {
	vals := make([]*big.Int, 0, 3)
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, nil, nil, fmt.Errorf("truncated share")
		}
		l := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, nil, nil, fmt.Errorf("truncated share value")
		}
		vals = append(vals, new(big.Int).SetBytes(data[:l]))
		data = data[l:]
	}
	if len(vals) != 3 {
		return nil, nil, nil, fmt.Errorf("expected 3 values, got %d", len(vals))
	}
	return vals[0], vals[1], vals[2], nil
}
