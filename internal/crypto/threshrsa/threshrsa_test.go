package threshrsa

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"
	"sync"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// testBits keeps safe-prime generation fast in tests while exercising the
// full algebra. Production uses DefaultModulusBits.
const testBits = 512

var (
	dealOnce   sync.Once
	dealScheme threshsig.Scheme
	dealSign   []threshsig.Signer
)

// sharedInstance deals a single (3, 7) instance reused across tests because
// safe-prime generation dominates test time.
func sharedInstance(t *testing.T) (threshsig.Scheme, []threshsig.Signer) {
	t.Helper()
	dealOnce.Do(func() {
		s, sg, err := Dealer{ModulusBits: testBits}.Deal(3, 7)
		if err != nil {
			t.Fatalf("Deal: %v", err)
		}
		dealScheme, dealSign = s, sg
	})
	if dealScheme == nil {
		t.Fatal("shared deal failed earlier")
	}
	return dealScheme, dealSign
}

func digestOf(s string) []byte {
	d := sha256.Sum256([]byte(s))
	return d[:]
}

func TestDealParameters(t *testing.T) {
	scheme, signers := sharedInstance(t)
	if got := scheme.Threshold(); got != 3 {
		t.Errorf("Threshold() = %d, want 3", got)
	}
	if got := scheme.N(); got != 7 {
		t.Errorf("N() = %d, want 7", got)
	}
	if len(signers) != 7 {
		t.Fatalf("len(signers) = %d, want 7", len(signers))
	}
	for i, sg := range signers {
		if sg.ID() != i+1 {
			t.Errorf("signers[%d].ID() = %d, want %d", i, sg.ID(), i+1)
		}
	}
}

func TestDealRejectsBadParams(t *testing.T) {
	if _, _, err := (Dealer{ModulusBits: testBits}).Deal(5, 3); err == nil {
		t.Fatal("Deal(5, 3) succeeded, want error")
	}
	if _, _, err := (Dealer{ModulusBits: testBits}).Deal(0, 3); err == nil {
		t.Fatal("Deal(0, 3) succeeded, want error")
	}
}

func TestSignVerifyCombine(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("threshold rsa")
	var shares []threshsig.Share
	for _, sg := range signers {
		sh, err := sg.Sign(d)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if err := scheme.VerifyShare(d, sh); err != nil {
			t.Fatalf("VerifyShare(%d): %v", sg.ID(), err)
		}
		shares = append(shares, sh)
	}
	sig, err := scheme.Combine(d, shares[:3])
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := scheme.Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestCombineArbitrarySubsetsAgree(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("subsets")
	shares := make([]threshsig.Share, len(signers))
	for i, sg := range signers {
		var err error
		shares[i], err = sg.Sign(d)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
	}
	subsets := [][]int{{0, 1, 2}, {4, 5, 6}, {0, 3, 6}, {1, 2, 5}}
	var first []byte
	for _, sub := range subsets {
		in := []threshsig.Share{shares[sub[0]], shares[sub[1]], shares[sub[2]]}
		sig, err := scheme.Combine(d, in)
		if err != nil {
			t.Fatalf("Combine(%v): %v", sub, err)
		}
		if first == nil {
			first = sig.Data
		} else if !bytes.Equal(first, sig.Data) {
			t.Fatalf("subset %v produced a different signature; RSA threshold signatures are unique", sub)
		}
	}
}

func TestCombineSkipsNothingWithExtraShares(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("extra")
	var shares []threshsig.Share
	for _, sg := range signers {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	sig, err := scheme.Combine(d, shares) // all 7, threshold 3
	if err != nil {
		t.Fatalf("Combine with extras: %v", err)
	}
	if err := scheme.Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRobustnessRejectsCorruptShare(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("robust")
	sh, err := signers[0].Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}

	t.Run("bit flip", func(t *testing.T) {
		bad := threshsig.Share{Signer: 1, Data: append([]byte{}, sh.Data...)}
		bad.Data[10] ^= 0x01
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, threshsig.ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
	t.Run("replayed under wrong id", func(t *testing.T) {
		bad := threshsig.Share{Signer: 2, Data: sh.Data}
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, threshsig.ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
	t.Run("replayed under wrong digest", func(t *testing.T) {
		if err := scheme.VerifyShare(digestOf("other"), sh); !errors.Is(err, threshsig.ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		bad := threshsig.Share{Signer: 1, Data: []byte{1, 2, 3}}
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, threshsig.ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
}

func TestCombineRejectsCorruptShareAmongGood(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("mixed")
	good1, _ := signers[0].Sign(d)
	good2, _ := signers[1].Sign(d)
	bad, _ := signers[2].Sign(d)
	bad.Data = append([]byte{}, bad.Data...)
	bad.Data[5] ^= 0xff
	if _, err := scheme.Combine(d, []threshsig.Share{good1, good2, bad}); !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("Combine with corrupt share: err=%v, want ErrInvalidShare", err)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("forgery")
	var shares []threshsig.Share
	for _, sg := range signers[:3] {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	sig, err := scheme.Combine(d, shares)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}

	t.Run("wrong digest", func(t *testing.T) {
		if err := scheme.Verify(digestOf("not it"), sig); !errors.Is(err, threshsig.ErrInvalidSignature) {
			t.Fatalf("err=%v, want ErrInvalidSignature", err)
		}
	})
	t.Run("tampered signature", func(t *testing.T) {
		bad := threshsig.Signature{Data: append([]byte{}, sig.Data...)}
		bad.Data[0] ^= 0x80
		if err := scheme.Verify(d, bad); !errors.Is(err, threshsig.ErrInvalidSignature) {
			t.Fatalf("err=%v, want ErrInvalidSignature", err)
		}
	})
	t.Run("zero signature", func(t *testing.T) {
		if err := scheme.Verify(d, threshsig.Signature{Data: nil}); !errors.Is(err, threshsig.ErrInvalidSignature) {
			t.Fatalf("err=%v, want ErrInvalidSignature", err)
		}
	})
}

func TestNotEnoughShares(t *testing.T) {
	scheme, signers := sharedInstance(t)
	d := digestOf("short")
	sh1, _ := signers[0].Sign(d)
	sh2, _ := signers[1].Sign(d)
	if _, err := scheme.Combine(d, []threshsig.Share{sh1, sh2}); !errors.Is(err, threshsig.ErrNotEnoughShares) {
		t.Fatalf("err=%v, want ErrNotEnoughShares", err)
	}
}

func TestLagrangeCoefficientsAreIntegers(t *testing.T) {
	s := &Scheme{delta: factorial(7)}
	sets := [][]int{{1, 2, 3}, {2, 4, 7}, {1, 5, 6}, {3, 4, 5}}
	for _, set := range sets {
		// Σ λ_{0,i} f(i) must equal Δ·f(0) for any polynomial; check with
		// f(x) = 17 + 5x + 3x² over the integers.
		f := func(x int64) *big.Int {
			return big.NewInt(17 + 5*x + 3*x*x)
		}
		sum := new(big.Int)
		for _, i := range set {
			term := new(big.Int).Mul(s.lagrange0(set, i), f(int64(i)))
			sum.Add(sum, term)
		}
		want := new(big.Int).Mul(s.delta, f(0))
		if sum.Cmp(want) != 0 {
			t.Fatalf("set %v: Σ λ·f(i) = %v, want Δ·f(0) = %v", set, sum, want)
		}
	}
}

func TestSafePrime(t *testing.T) {
	pp, p, err := safePrime(rand.Reader, 64)
	if err != nil {
		t.Fatalf("safePrime: %v", err)
	}
	if !pp.ProbablyPrime(20) || !p.ProbablyPrime(20) {
		t.Fatal("safePrime returned a composite")
	}
	want := new(big.Int).Lsh(pp, 1)
	want.Add(want, big.NewInt(1))
	if p.Cmp(want) != 0 {
		t.Fatalf("p = %v, want 2p'+1 = %v", p, want)
	}
	if p.BitLen() != 64 {
		t.Fatalf("p.BitLen() = %d, want 64", p.BitLen())
	}
}

func TestShareEncodingRoundTrip(t *testing.T) {
	xi, c, z := big.NewInt(12345), big.NewInt(678), new(big.Int).Lsh(big.NewInt(1), 200)
	enc := encodeShare(xi, c, z)
	gx, gc, gz, err := decodeShare(enc)
	if err != nil {
		t.Fatalf("decodeShare: %v", err)
	}
	if gx.Cmp(xi) != 0 || gc.Cmp(c) != 0 || gz.Cmp(z) != 0 {
		t.Fatal("round trip mismatch")
	}
	if _, _, _, err := decodeShare(enc[:len(enc)-1]); err == nil {
		t.Fatal("decodeShare accepted truncated input")
	}
	if _, _, _, err := decodeShare([]byte{0, 0}); err == nil {
		t.Fatal("decodeShare accepted short input")
	}
}
