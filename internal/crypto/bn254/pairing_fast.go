package bn254

import "math/big"

// Projective optimal-ate Miller loop over the fixed-limb tower. The
// reference implementation in pairing.go works in affine Fq¹² coordinates
// and pays a full extension-field inversion per line evaluation; here the
// G2 accumulator lives in homogeneous projective coordinates over Fq², the
// line is evaluated inline as a sparse Fq¹² element (three Fq²
// coefficients at 1, w, v·w), and multiplying it into f is a dedicated
// sparse multiplication. Lines are computed only up to Fq² scalars, which
// the final exponentiation kills.

// ateU is the BN parameter u with 6u+2 = ateLoopCount.
var ateU, _ = new(big.Int).SetString("4965661367192848881", 10)

// g2Proj is a twist point in homogeneous projective coordinates:
// affine (X/Z, Y/Z).
type g2Proj struct{ x, y, z fp2 }

// lineEval is ℓ(P) = r0 + r1·w + r2·v·w with rᵢ ∈ Fq².
type lineEval struct{ r0, r1, r2 fp2 }

// doubleStep sets T = 2T and evaluates the tangent line at P = (xP, yP):
//
//	ℓ(P) = −2YZ·yP + 3X²·xP·w + (3b′Z² − Y²)·v·w
//
// (scaled by 2YZ²/Z relative to the affine tangent; Fq² scalars vanish
// under the final exponentiation).
func doubleStep(t *g2Proj, l *lineEval, xP, yP *fp) {
	var a, b, c, e, f, g, h, i, j, ee, u fp2
	fp2Mul(&a, &t.x, &t.y)
	fp2Halve(&a, &a) // A = XY/2
	fp2Square(&b, &t.y)
	fp2Square(&c, &t.z)
	fp2Double(&e, &c)
	fp2Add(&e, &e, &c)
	fp2Mul(&e, &e, &fp2TwistB) // E = 3b′Z²
	fp2Double(&f, &e)
	fp2Add(&f, &f, &e) // F = 3E
	fp2Add(&g, &b, &f)
	fp2Halve(&g, &g) // G = (B+F)/2
	fp2Add(&h, &t.y, &t.z)
	fp2Square(&h, &h)
	fp2Add(&u, &b, &c)
	fp2Sub(&h, &h, &u) // H = (Y+Z)² − B − C = 2YZ
	fp2Sub(&i, &e, &b) // I = E − B
	fp2Square(&j, &t.x)
	fp2Square(&ee, &e)

	// T = 2T.
	fp2Sub(&u, &b, &f)
	fp2Mul(&t.x, &a, &u) // X' = A(B − F)
	fp2Square(&t.y, &g)
	fp2Double(&u, &ee)
	fp2Add(&u, &u, &ee)
	fp2Sub(&t.y, &t.y, &u) // Y' = G² − 3E²
	fp2Mul(&t.z, &b, &h)   // Z' = BH

	// Line coefficients.
	fp2MulByFp(&l.r0, &h, yP)
	fp2Neg(&l.r0, &l.r0) // −H·yP
	fp2Double(&u, &j)
	fp2Add(&u, &u, &j)
	fp2MulByFp(&l.r1, &u, xP) // 3X²·xP
	l.r2 = i
}

// addStep sets T = T + Q (Q affine) and evaluates the chord line at P:
//
//	ℓ(P) = −λ·yP + θ·xP·w + (λ·yQ − θ·xQ)·v·w
//
// with θ = Y − yQ·Z, λ = X − xQ·Z. Returns false on the degenerate
// vertical-line case (callers fall back to the reference pairing; it
// cannot occur for r-torsion inputs).
func addStep(t *g2Proj, l *lineEval, q *g2Affine, xP, yP *fp) bool {
	var theta, lambda, c, d, e, f, g, h, u fp2
	fp2Mul(&u, &q.y, &t.z)
	fp2Sub(&theta, &t.y, &u) // θ = Y − yQ·Z
	fp2Mul(&u, &q.x, &t.z)
	fp2Sub(&lambda, &t.x, &u) // λ = X − xQ·Z
	if lambda.isZero() {
		return false
	}
	fp2Square(&c, &theta)
	fp2Square(&d, &lambda)
	fp2Mul(&e, &lambda, &d)
	fp2Mul(&f, &t.z, &c)
	fp2Mul(&g, &t.x, &d)
	fp2Double(&u, &g)
	fp2Add(&h, &e, &f)
	fp2Sub(&h, &h, &u) // H = E + F − 2G

	// Line first (θ, λ still pristine; uses Q, not T).
	fp2MulByFp(&l.r0, &lambda, yP)
	fp2Neg(&l.r0, &l.r0) // −λ·yP
	fp2MulByFp(&l.r1, &theta, xP)
	var t0, t1 fp2
	fp2Mul(&t0, &lambda, &q.y)
	fp2Mul(&t1, &theta, &q.x)
	fp2Sub(&l.r2, &t0, &t1) // λ·yQ − θ·xQ

	// T = T + Q.
	fp2Mul(&u, &t.y, &e)
	fp2Sub(&g, &g, &h)
	fp2Mul(&g, &theta, &g)
	fp2Sub(&t.y, &g, &u) // Y' = θ(G − H) − E·Y
	fp2Mul(&t.x, &lambda, &h)
	fp2Mul(&t.z, &t.z, &e)
	return true
}

// mulByLine multiplies f by the sparse line value
// r0 + (r1 + r2·v)·w, costing 15 fp2 multiplications instead of 18.
func mulByLine(f *fp12, l *lineEval) {
	var a, b, sum fp6
	var d0 fp2
	fp6MulByE2(&a, &f.c0, &l.r0)      // A·L0
	fp6Mul01(&b, &f.c1, &l.r1, &l.r2) // B·L1
	fp2Add(&d0, &l.r0, &l.r1)
	var s fp6
	fp6Add(&s, &f.c0, &f.c1)
	fp6Mul01(&sum, &s, &d0, &l.r2) // (A+B)(L0+L1)
	fp6Sub(&sum, &sum, &a)
	fp6Sub(&sum, &sum, &b) // A·L1 + B·L0
	var vb fp6
	fp6MulByNonresidue(&vb, &b)
	fp6Add(&f.c0, &a, &vb)
	f.c1 = sum
}

// psi applies the twist-Frobenius-untwist endomorphism to an affine twist
// point: ψ(x, y) = (x̄·ξ^((q−1)/3), ȳ·ξ^((q−1)/2)).
func psi(q *g2Affine) g2Affine {
	var r g2Affine
	var t fp2
	fp2Conjugate(&t, &q.x)
	fp2Mul(&r.x, &t, &frobGamma1[2])
	fp2Conjugate(&t, &q.y)
	fp2Mul(&r.y, &t, &frobGamma1[3])
	return r
}

// psi2 applies ψ²: (x·ξ^((q²−1)/3), y·ξ^((q²−1)/2)).
func psi2(q *g2Affine) g2Affine {
	var r g2Affine
	fp2Mul(&r.x, &q.x, &frobGamma2[2])
	fp2Mul(&r.y, &q.y, &frobGamma2[3])
	return r
}

// millerLoopFast computes f_{6u+2,Q}(P) with the two optimal-ate
// correction steps. The bool reports success (false = degenerate line;
// impossible for r-torsion inputs, handled by falling back to the
// reference loop).
func millerLoopFast(q *g2Affine, xP, yP *fp) (fp12, bool) {
	t := g2Proj{x: q.x, y: q.y}
	t.z.setOne()
	var f fp12
	f.setOne()
	var l lineEval
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		fp12Square(&f, &f)
		doubleStep(&t, &l, xP, yP)
		mulByLine(&f, &l)
		if ateLoopCount.Bit(i) == 1 {
			if !addStep(&t, &l, q, xP, yP) {
				return fp12{}, false
			}
			mulByLine(&f, &l)
		}
	}
	q1 := psi(q)
	nq2 := psi2(q)
	fp2Neg(&nq2.y, &nq2.y)
	if !addStep(&t, &l, &q1, xP, yP) {
		return fp12{}, false
	}
	mulByLine(&f, &l)
	if !addStep(&t, &l, &nq2, xP, yP) {
		return fp12{}, false
	}
	mulByLine(&f, &l)
	return f, true
}

// expByU sets z = x^u using cyclotomic squarings (x must lie in the
// cyclotomic subgroup).
func expByU(z, x *fp12) {
	var r fp12
	r.setOne()
	b := *x
	for i := ateU.BitLen() - 1; i >= 0; i-- {
		fp12CyclotomicSquare(&r, &r)
		if ateU.Bit(i) == 1 {
			fp12Mul(&r, &r, &b)
		}
	}
	*z = r
}

// finalExpFast raises a Miller-loop output to (q¹²−1)/r: the easy part
// (q⁶−1)(q²+1) by conjugation, inversion and Frobenius, then the hard part
// (q⁴−q²+1)/r via the u-power decomposition of Devegili et al. (the
// schedule used by golang.org/x/crypto/bn256), with cyclotomic squarings.
// Verified against the reference full-exponent Pow in fast_test.go.
func finalExpFast(f *fp12) fp12 {
	// Easy part: t = f^((q⁶−1)(q²+1)).
	var t, inv, t2 fp12
	fp12Conjugate(&t, f)
	fp12Inv(&inv, f)
	fp12Mul(&t, &t, &inv)
	fp12FrobeniusSquare(&t2, &t)
	fp12Mul(&t, &t2, &t)

	// Hard part.
	var fq, fq2, fq3, fu, fu2, fu3, fu2p, fu3p fp12
	var y0, y1, y2, y3, y4, y5, y6, t0, t1 fp12
	fp12Frobenius(&fq, &t)
	fp12FrobeniusSquare(&fq2, &t)
	fp12FrobeniusCube(&fq3, &t)
	expByU(&fu, &t)
	expByU(&fu2, &fu)
	expByU(&fu3, &fu2)
	fp12Frobenius(&y3, &fu)
	fp12Frobenius(&fu2p, &fu2)
	fp12Frobenius(&fu3p, &fu3)
	fp12FrobeniusSquare(&y2, &fu2)

	fp12Mul(&y0, &fq, &fq2)
	fp12Mul(&y0, &y0, &fq3)
	fp12Conjugate(&y1, &t)
	fp12Conjugate(&y5, &fu2)
	fp12Conjugate(&y3, &y3)
	fp12Mul(&y4, &fu, &fu2p)
	fp12Conjugate(&y4, &y4)
	fp12Mul(&y6, &fu3, &fu3p)
	fp12Conjugate(&y6, &y6)

	fp12CyclotomicSquare(&t0, &y6)
	fp12Mul(&t0, &t0, &y4)
	fp12Mul(&t0, &t0, &y5)
	fp12Mul(&t1, &y3, &y5)
	fp12Mul(&t1, &t1, &t0)
	fp12Mul(&t0, &t0, &y2)
	fp12CyclotomicSquare(&t1, &t1)
	fp12Mul(&t1, &t1, &t0)
	fp12CyclotomicSquare(&t1, &t1)
	fp12Mul(&t0, &t1, &y1)
	fp12Mul(&t1, &t1, &y0)
	fp12CyclotomicSquare(&t0, &t0)
	fp12Mul(&t0, &t0, &t1)
	return t0
}

// millerLoopPoints runs the fast Miller loop for public points. Infinity
// inputs (contribution 1) are reported via skip=true; ok=false means the
// fast loop hit a degenerate line and the caller must fall back to the
// reference pairing.
func millerLoopPoints(p G1Point, q G2Point) (f fp12, skip, ok bool) {
	if p.Inf || q.Inf {
		f.setOne()
		return f, true, true
	}
	xP := fpFromBig(p.X.v)
	yP := fpFromBig(p.Y.v)
	qa := g2AffineFromPoint(q)
	f, ok = millerLoopFast(&qa, &xP, &yP)
	return f, false, ok
}
