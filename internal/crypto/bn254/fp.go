package bn254

// Fixed-limb base-field arithmetic: the production hot path promised by the
// package doc. An fp holds an integer mod Q as 4 little-endian 64-bit limbs
// in Montgomery form (value · 2²⁵⁶ mod Q), so multiplication is a single
// CIOS pass over machine words with no heap allocation. The math/big Fq
// type above remains the semantic reference; fast_test.go cross-checks
// every operation here against it on random inputs.
//
// All Montgomery constants are derived from Q at package init rather than
// transcribed, so they cannot drift from the reference modulus.

import (
	"math/big"
	"math/bits"
)

// fp is a base-field element in Montgomery form. The zero value is 0.
type fp [4]uint64

var (
	// fpQ is the modulus as limbs.
	fpQ = bigToLimbs(Q)
	// qInvNeg is −Q⁻¹ mod 2⁶⁴, the Montgomery reduction factor.
	qInvNeg = func() uint64 {
		b := new(big.Int).Lsh(big.NewInt(1), 64)
		inv := new(big.Int).ModInverse(Q, b)
		inv.Neg(inv).Mod(inv, b)
		return inv.Uint64()
	}()
	// fpMontOne is 1 in Montgomery form (2²⁵⁶ mod Q).
	fpMontOne = fp(bigToLimbs(new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 256), Q)))
	// fpRSquare is 2⁵¹² mod Q, used to convert into Montgomery form.
	fpRSquare = fp(bigToLimbs(new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 512), Q)))
	// fpQMinus2 is the Fermat inversion exponent.
	fpQMinus2 = new(big.Int).Sub(Q, big.NewInt(2))
	// fpSqrtExp is (Q+1)/4; Q ≡ 3 (mod 4), so x^((Q+1)/4) is a square
	// root of any quadratic residue x.
	fpSqrtExp = new(big.Int).Rsh(new(big.Int).Add(Q, big.NewInt(1)), 2)
)

func bigToLimbs(x *big.Int) [4]uint64 {
	var l [4]uint64
	for i, w := range x.Bits() {
		l[i] = uint64(w)
	}
	return l
}

// fpFromBig reduces v mod Q and converts to Montgomery form.
func fpFromBig(v *big.Int) fp {
	m := new(big.Int).Mod(v, Q)
	if m.Sign() < 0 {
		m.Add(m, Q)
	}
	z := fp(bigToLimbs(m))
	montMul(&z, &z, &fpRSquare)
	return z
}

func fpFromUint64(v uint64) fp {
	z := fp{v}
	montMul(&z, &z, &fpRSquare)
	return z
}

// toBig converts out of Montgomery form into a canonical integer < Q.
func (z *fp) toBig() *big.Int {
	c := z.canonical()
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(c[i]))
	}
	return b
}

// canonical returns the non-Montgomery limb representation (< Q).
func (z *fp) canonical() fp {
	one := fp{1}
	var c fp
	montMul(&c, z, &one)
	return c
}

func (z *fp) isZero() bool { return z[0]|z[1]|z[2]|z[3] == 0 }

func (z *fp) equal(x *fp) bool { return *z == *x }

func (z *fp) set(x *fp) { *z = *x }

func (z *fp) setZero() { *z = fp{} }

func (z *fp) setOne() { *z = fpMontOne }

// lessCanonical compares canonical (non-Montgomery) values: z < x.
func (z *fp) lessCanonical(x *fp) bool {
	a, b := z.canonical(), x.canonical()
	for i := 3; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// montMul sets z = x·y·2⁻²⁵⁶ mod Q (CIOS Montgomery multiplication).
func montMul(z, x, y *fp) {
	var t [6]uint64
	for i := 0; i < 4; i++ {
		// Multiply-accumulate: t += x · y[i].
		var c uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x[j], y[i])
			var c1, c2 uint64
			lo, c1 = bits.Add64(lo, t[j], 0)
			lo, c2 = bits.Add64(lo, c, 0)
			t[j] = lo
			c = hi + c1 + c2 // cannot overflow: x[j]·y[i] + t[j] + c < 2¹²⁸
		}
		t[4], c = bits.Add64(t[4], c, 0)
		t[5] = c
		// Reduce: add m·Q so the low word cancels, then shift down a word.
		m := t[0] * qInvNeg
		hi, lo := bits.Mul64(m, fpQ[0])
		_, c1 := bits.Add64(lo, t[0], 0)
		c = hi + c1
		for j := 1; j < 4; j++ {
			hi, lo := bits.Mul64(m, fpQ[j])
			var c1, c2 uint64
			lo, c1 = bits.Add64(lo, t[j], 0)
			lo, c2 = bits.Add64(lo, c, 0)
			t[j-1] = lo
			c = hi + c1 + c2
		}
		t[3], c = bits.Add64(t[4], c, 0)
		t[4] = t[5] + c
	}
	// t < 2Q (and t[4] == 0 since 2Q < 2²⁵⁵): one conditional subtraction.
	var r fp
	var b uint64
	r[0], b = bits.Sub64(t[0], fpQ[0], 0)
	r[1], b = bits.Sub64(t[1], fpQ[1], b)
	r[2], b = bits.Sub64(t[2], fpQ[2], b)
	r[3], b = bits.Sub64(t[3], fpQ[3], b)
	if b == 0 || t[4] != 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3] = t[0], t[1], t[2], t[3]
	}
}

// fpAdd sets z = x + y.
func fpAdd(z, x, y *fp) {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c) // Q < 2²⁵⁴, so no carry out
	fpReduce(z)
}

// fpReduce conditionally subtracts Q once (input < 2Q).
func fpReduce(z *fp) {
	var r fp
	var b uint64
	r[0], b = bits.Sub64(z[0], fpQ[0], 0)
	r[1], b = bits.Sub64(z[1], fpQ[1], b)
	r[2], b = bits.Sub64(z[2], fpQ[2], b)
	r[3], b = bits.Sub64(z[3], fpQ[3], b)
	if b == 0 {
		*z = r
	}
}

// fpSub sets z = x − y.
func fpSub(z, x, y *fp) {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		z[0], c = bits.Add64(z[0], fpQ[0], 0)
		z[1], c = bits.Add64(z[1], fpQ[1], c)
		z[2], c = bits.Add64(z[2], fpQ[2], c)
		z[3], _ = bits.Add64(z[3], fpQ[3], c)
	}
}

// fpNeg sets z = −x.
func fpNeg(z, x *fp) {
	if x.isZero() {
		z.setZero()
		return
	}
	var b uint64
	z[0], b = bits.Sub64(fpQ[0], x[0], 0)
	z[1], b = bits.Sub64(fpQ[1], x[1], b)
	z[2], b = bits.Sub64(fpQ[2], x[2], b)
	z[3], _ = bits.Sub64(fpQ[3], x[3], b)
}

// fpDouble sets z = 2x.
func fpDouble(z, x *fp) { fpAdd(z, x, x) }

// fpHalve sets z = x/2.
func fpHalve(z, x *fp) {
	t := *x
	var carry uint64
	if t[0]&1 != 0 { // odd: add Q (odd) to make it even
		var c uint64
		t[0], c = bits.Add64(t[0], fpQ[0], 0)
		t[1], c = bits.Add64(t[1], fpQ[1], c)
		t[2], c = bits.Add64(t[2], fpQ[2], c)
		t[3], carry = bits.Add64(t[3], fpQ[3], c)
	}
	z[0] = t[0]>>1 | t[1]<<63
	z[1] = t[1]>>1 | t[2]<<63
	z[2] = t[2]>>1 | t[3]<<63
	z[3] = t[3]>>1 | carry<<63
}

// fpSquare sets z = x².
func fpSquare(z, x *fp) { montMul(z, x, x) }

// fpExp sets z = x^e (e ≥ 0, not a secret exponent: variable time).
func fpExp(z, x *fp, e *big.Int) {
	var r fp
	r.setOne()
	b := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		fpSquare(&r, &r)
		if e.Bit(i) == 1 {
			montMul(&r, &r, &b)
		}
	}
	*z = r
}

// fpInv sets z = x⁻¹ via Fermat's little theorem. Panics on zero.
func fpInv(z, x *fp) {
	if x.isZero() {
		panic("bn254: inverse of zero")
	}
	fpExp(z, x, fpQMinus2)
}

// fpSqrt sets z to a square root of x and reports whether one exists.
func fpSqrt(z, x *fp) bool {
	var r, check fp
	fpExp(&r, x, fpSqrtExp)
	fpSquare(&check, &r)
	if !check.equal(x) {
		return false
	}
	*z = r
	return true
}
