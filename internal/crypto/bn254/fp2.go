package bn254

// fp2 is Fq² = Fq[i]/(i²+1) over the fixed-limb base field: c0 + c1·i.
// The quadratic nonresidue used to build Fq⁶ is ξ = 9 + i, matching the
// reference tower (w⁶ = ξ).
type fp2 struct{ c0, c1 fp }

func (z *fp2) setZero() { z.c0.setZero(); z.c1.setZero() }

func (z *fp2) setOne() { z.c0.setOne(); z.c1.setZero() }

func (z *fp2) set(x *fp2) { *z = *x }

func (z *fp2) isZero() bool { return z.c0.isZero() && z.c1.isZero() }

func (z *fp2) equal(x *fp2) bool { return z.c0.equal(&x.c0) && z.c1.equal(&x.c1) }

func fp2Add(z, x, y *fp2) {
	fpAdd(&z.c0, &x.c0, &y.c0)
	fpAdd(&z.c1, &x.c1, &y.c1)
}

func fp2Sub(z, x, y *fp2) {
	fpSub(&z.c0, &x.c0, &y.c0)
	fpSub(&z.c1, &x.c1, &y.c1)
}

func fp2Neg(z, x *fp2) {
	fpNeg(&z.c0, &x.c0)
	fpNeg(&z.c1, &x.c1)
}

func fp2Double(z, x *fp2) {
	fpDouble(&z.c0, &x.c0)
	fpDouble(&z.c1, &x.c1)
}

func fp2Halve(z, x *fp2) {
	fpHalve(&z.c0, &x.c0)
	fpHalve(&z.c1, &x.c1)
}

// fp2Mul sets z = x·y (Karatsuba, 3 base multiplications).
func fp2Mul(z, x, y *fp2) {
	var t0, t1, s0, s1, r0 fp
	montMul(&t0, &x.c0, &y.c0)
	montMul(&t1, &x.c1, &y.c1)
	fpAdd(&s0, &x.c0, &x.c1)
	fpAdd(&s1, &y.c0, &y.c1)
	montMul(&s0, &s0, &s1)
	fpSub(&r0, &t0, &t1) // real part: a0b0 − a1b1
	fpSub(&s0, &s0, &t0)
	fpSub(&z.c1, &s0, &t1) // imag part: (a0+a1)(b0+b1) − a0b0 − a1b1
	z.c0 = r0
}

// fp2Square sets z = x² via (a0+a1)(a0−a1) + 2a0a1·i.
func fp2Square(z, x *fp2) {
	var s, d, m fp
	fpAdd(&s, &x.c0, &x.c1)
	fpSub(&d, &x.c0, &x.c1)
	montMul(&m, &x.c0, &x.c1)
	montMul(&z.c0, &s, &d)
	fpDouble(&z.c1, &m)
}

// fp2MulByFp scales both components by a base-field element.
func fp2MulByFp(z, x *fp2, k *fp) {
	montMul(&z.c0, &x.c0, k)
	montMul(&z.c1, &x.c1, k)
}

// fp2Conjugate sets z = c0 − c1·i, the Fq-Frobenius on Fq².
func fp2Conjugate(z, x *fp2) {
	z.c0 = x.c0
	fpNeg(&z.c1, &x.c1)
}

// fp2MulByNonresidue sets z = ξ·x = (9+i)·x (safe when z aliases x).
func fp2MulByNonresidue(z, x *fp2) {
	// (9a0 − a1) + (9a1 + a0)i
	a0, a1 := x.c0, x.c1
	var n0, n1, t fp
	fpDouble(&t, &a0)
	fpDouble(&t, &t)
	fpDouble(&t, &t)
	fpAdd(&n0, &t, &a0) // 9a0
	fpDouble(&t, &a1)
	fpDouble(&t, &t)
	fpDouble(&t, &t)
	fpAdd(&n1, &t, &a1) // 9a1
	fpSub(&z.c0, &n0, &a1)
	fpAdd(&z.c1, &n1, &a0)
}

// fp2Inv sets z = x⁻¹ = (c0 − c1·i)/(c0² + c1²). Panics on zero.
func fp2Inv(z, x *fp2) {
	var n, t0, t1 fp
	fpSquare(&t0, &x.c0)
	fpSquare(&t1, &x.c1)
	fpAdd(&n, &t0, &t1)
	fpInv(&n, &n)
	montMul(&z.c0, &x.c0, &n)
	montMul(&t0, &x.c1, &n)
	fpNeg(&z.c1, &t0)
}

// fp2FromFQP converts a reference Fq² element; fp2ToFQP is its inverse.
func fp2FromFQP(x FQP) fp2 {
	if len(x.coeffs) != 2 {
		panic("bn254: fp2FromFQP requires an Fq2 element")
	}
	return fp2{c0: fpFromBig(x.coeffs[0].v), c1: fpFromBig(x.coeffs[1].v)}
}

func (z *fp2) toFQP() FQP {
	return NewFq2(Fq{v: z.c0.toBig()}, Fq{v: z.c1.toBig()})
}
