package bn254

// fp6 is Fq⁶ = Fq²[v]/(v³ − ξ) with ξ = 9 + i: b0 + b1·v + b2·v².
// In the reference single-shot tower, v = w².
type fp6 struct{ b0, b1, b2 fp2 }

func (z *fp6) setZero() { z.b0.setZero(); z.b1.setZero(); z.b2.setZero() }

func (z *fp6) setOne() { z.b0.setOne(); z.b1.setZero(); z.b2.setZero() }

func (z *fp6) isZero() bool { return z.b0.isZero() && z.b1.isZero() && z.b2.isZero() }

func (z *fp6) equal(x *fp6) bool {
	return z.b0.equal(&x.b0) && z.b1.equal(&x.b1) && z.b2.equal(&x.b2)
}

func fp6Add(z, x, y *fp6) {
	fp2Add(&z.b0, &x.b0, &y.b0)
	fp2Add(&z.b1, &x.b1, &y.b1)
	fp2Add(&z.b2, &x.b2, &y.b2)
}

func fp6Sub(z, x, y *fp6) {
	fp2Sub(&z.b0, &x.b0, &y.b0)
	fp2Sub(&z.b1, &x.b1, &y.b1)
	fp2Sub(&z.b2, &x.b2, &y.b2)
}

func fp6Neg(z, x *fp6) {
	fp2Neg(&z.b0, &x.b0)
	fp2Neg(&z.b1, &x.b1)
	fp2Neg(&z.b2, &x.b2)
}

func fp6Double(z, x *fp6) {
	fp2Double(&z.b0, &x.b0)
	fp2Double(&z.b1, &x.b1)
	fp2Double(&z.b2, &x.b2)
}

// fp6Mul sets z = x·y (Karatsuba-style, 6 fp2 multiplications).
func fp6Mul(z, x, y *fp6) {
	var t0, t1, t2, u, s, c0, c1, c2 fp2
	fp2Mul(&t0, &x.b0, &y.b0)
	fp2Mul(&t1, &x.b1, &y.b1)
	fp2Mul(&t2, &x.b2, &y.b2)

	// c0 = t0 + ξ((a1+a2)(b1+b2) − t1 − t2)
	fp2Add(&u, &x.b1, &x.b2)
	fp2Add(&s, &y.b1, &y.b2)
	fp2Mul(&u, &u, &s)
	fp2Sub(&u, &u, &t1)
	fp2Sub(&u, &u, &t2)
	fp2MulByNonresidue(&u, &u)
	fp2Add(&c0, &t0, &u)

	// c1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
	fp2Add(&u, &x.b0, &x.b1)
	fp2Add(&s, &y.b0, &y.b1)
	fp2Mul(&u, &u, &s)
	fp2Sub(&u, &u, &t0)
	fp2Sub(&u, &u, &t1)
	fp2MulByNonresidue(&s, &t2)
	fp2Add(&c1, &u, &s)

	// c2 = (a0+a2)(b0+b2) − t0 − t2 + t1
	fp2Add(&u, &x.b0, &x.b2)
	fp2Add(&s, &y.b0, &y.b2)
	fp2Mul(&u, &u, &s)
	fp2Sub(&u, &u, &t0)
	fp2Sub(&u, &u, &t2)
	fp2Add(&c2, &u, &t1)

	z.b0, z.b1, z.b2 = c0, c1, c2
}

func fp6Square(z, x *fp6) { fp6Mul(z, x, x) }

// fp6MulByE2 scales every coefficient by an fp2 element.
func fp6MulByE2(z, x *fp6, k *fp2) {
	fp2Mul(&z.b0, &x.b0, k)
	fp2Mul(&z.b1, &x.b1, k)
	fp2Mul(&z.b2, &x.b2, k)
}

// fp6Mul01 multiplies by the sparse element d0 + d1·v (Miller-loop lines).
func fp6Mul01(z, x *fp6, d0, d1 *fp2) {
	var t0, t1, u, c0, c1, c2 fp2
	fp2Mul(&t0, &x.b0, d0)
	fp2Mul(&t1, &x.b1, d1)
	// c0 = b0d0 + ξ·b2d1
	fp2Mul(&u, &x.b2, d1)
	fp2MulByNonresidue(&u, &u)
	fp2Add(&c0, &t0, &u)
	// c1 = b0d1 + b1d0
	fp2Mul(&u, &x.b0, d1)
	fp2Mul(&c1, &x.b1, d0)
	fp2Add(&c1, &c1, &u)
	// c2 = b1d1 + b2d0
	fp2Mul(&u, &x.b2, d0)
	fp2Add(&c2, &t1, &u)
	z.b0, z.b1, z.b2 = c0, c1, c2
}

// fp6MulByNonresidue sets z = v·x: (b0, b1, b2) → (ξ·b2, b0, b1).
func fp6MulByNonresidue(z, x *fp6) {
	var t fp2
	fp2MulByNonresidue(&t, &x.b2)
	z.b2 = x.b1
	z.b1 = x.b0
	z.b0 = t
}

// fp6Inv sets z = x⁻¹. Panics on zero.
func fp6Inv(z, x *fp6) {
	// c0 = b0² − ξ b1 b2; c1 = ξ b2² − b0 b1; c2 = b1² − b0 b2
	// t = b0 c0 + ξ(b2 c1 + b1 c2); z = (c0, c1, c2)/t
	var c0, c1, c2, t, u fp2
	fp2Square(&c0, &x.b0)
	fp2Mul(&u, &x.b1, &x.b2)
	fp2MulByNonresidue(&u, &u)
	fp2Sub(&c0, &c0, &u)

	fp2Square(&c1, &x.b2)
	fp2MulByNonresidue(&c1, &c1)
	fp2Mul(&u, &x.b0, &x.b1)
	fp2Sub(&c1, &c1, &u)

	fp2Square(&c2, &x.b1)
	fp2Mul(&u, &x.b0, &x.b2)
	fp2Sub(&c2, &c2, &u)

	fp2Mul(&t, &x.b0, &c0)
	fp2Mul(&u, &x.b2, &c1)
	var s fp2
	fp2Mul(&s, &x.b1, &c2)
	fp2Add(&u, &u, &s)
	fp2MulByNonresidue(&u, &u)
	fp2Add(&t, &t, &u)
	fp2Inv(&t, &t)

	fp2Mul(&z.b0, &c0, &t)
	fp2Mul(&z.b1, &c1, &t)
	fp2Mul(&z.b2, &c2, &t)
}
