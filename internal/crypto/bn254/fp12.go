package bn254

import "math/big"

// fp12 is Fq¹² = Fq⁶[w]/(w² − v): c0 + c1·w. Together with fp6 and fp2
// this is the standard 2-3-2 tower over the same algebra as the reference
// single-shot extension Fq[w]/(w¹² − 18w⁶ + 82): w here is the reference
// w, v = w², and i = w⁶ − 9. fp12FromFQP/toFQP translate between the two.
type fp12 struct{ c0, c1 fp6 }

func (z *fp12) setOne() { z.c0.setOne(); z.c1.setZero() }

func (z *fp12) isOne() bool {
	var one fp6
	one.setOne()
	return z.c0.equal(&one) && z.c1.isZero()
}

func (z *fp12) equal(x *fp12) bool { return z.c0.equal(&x.c0) && z.c1.equal(&x.c1) }

// fp12Mul sets z = x·y (Karatsuba, 3 fp6 multiplications).
func fp12Mul(z, x, y *fp12) {
	var t0, t1, u, s fp6
	fp6Mul(&t0, &x.c0, &y.c0)
	fp6Mul(&t1, &x.c1, &y.c1)
	fp6Add(&u, &x.c0, &x.c1)
	fp6Add(&s, &y.c0, &y.c1)
	fp6Mul(&u, &u, &s)
	fp6Sub(&u, &u, &t0)
	fp6Sub(&u, &u, &t1) // c1 = (a0+a1)(b0+b1) − t0 − t1
	fp6MulByNonresidue(&s, &t1)
	fp6Add(&z.c0, &t0, &s) // c0 = t0 + v·t1
	z.c1 = u
}

// fp12Square sets z = x²: c0 = (a0+a1)(a0+v·a1) − t − v·t, c1 = 2t with
// t = a0·a1.
func fp12Square(z, x *fp12) {
	var t, u, s fp6
	fp6Mul(&t, &x.c0, &x.c1)
	fp6Add(&u, &x.c0, &x.c1)
	fp6MulByNonresidue(&s, &x.c1)
	fp6Add(&s, &s, &x.c0)
	fp6Mul(&u, &u, &s)
	fp6Sub(&u, &u, &t)
	fp6MulByNonresidue(&s, &t)
	fp6Sub(&z.c0, &u, &s)
	fp6Double(&z.c1, &t)
}

// fp12Conjugate sets z = c0 − c1·w, which is x^(q⁶).
func fp12Conjugate(z, x *fp12) {
	z.c0 = x.c0
	fp6Neg(&z.c1, &x.c1)
}

// fp12Inv sets z = x⁻¹ = (c0 − c1·w)/(c0² − v·c1²). Panics on zero.
func fp12Inv(z, x *fp12) {
	var t0, t1 fp6
	fp6Square(&t0, &x.c0)
	fp6Square(&t1, &x.c1)
	fp6MulByNonresidue(&t1, &t1)
	fp6Sub(&t0, &t0, &t1)
	fp6Inv(&t0, &t0)
	fp6Mul(&z.c0, &x.c0, &t0)
	fp6Mul(&z.c1, &x.c1, &t0)
	fp6Neg(&z.c1, &z.c1)
}

// fp12Exp sets z = x^e by plain square-and-multiply (variable time).
func fp12Exp(z, x *fp12, e *big.Int) {
	var r fp12
	r.setOne()
	b := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		fp12Square(&r, &r)
		if e.Bit(i) == 1 {
			fp12Mul(&r, &r, &b)
		}
	}
	*z = r
}

// fp12CyclotomicSquare squares an element of the cyclotomic subgroup
// (x^(q⁶+1)(q²+1)... after the easy final-exponentiation part) using the
// Granger–Scott compressed squaring: 6 fp2 squarings instead of a full
// fp12 square. Only valid inside the cyclotomic subgroup (checked against
// fp12Square in fast_test.go).
func fp12CyclotomicSquare(z, x *fp12) {
	var t [9]fp2
	fp2Square(&t[0], &x.c1.b1)
	fp2Square(&t[1], &x.c0.b0)
	fp2Add(&t[6], &x.c1.b1, &x.c0.b0)
	fp2Square(&t[6], &t[6])
	fp2Sub(&t[6], &t[6], &t[0])
	fp2Sub(&t[6], &t[6], &t[1]) // 2 x0 x4
	fp2Square(&t[2], &x.c0.b2)
	fp2Square(&t[3], &x.c1.b0)
	fp2Add(&t[7], &x.c0.b2, &x.c1.b0)
	fp2Square(&t[7], &t[7])
	fp2Sub(&t[7], &t[7], &t[2])
	fp2Sub(&t[7], &t[7], &t[3]) // 2 x2 x3
	fp2Square(&t[4], &x.c1.b2)
	fp2Square(&t[5], &x.c0.b1)
	fp2Add(&t[8], &x.c1.b2, &x.c0.b1)
	fp2Square(&t[8], &t[8])
	fp2Sub(&t[8], &t[8], &t[4])
	fp2Sub(&t[8], &t[8], &t[5])
	fp2MulByNonresidue(&t[8], &t[8]) // 2 x1 x5 ξ

	fp2MulByNonresidue(&t[0], &t[0])
	fp2Add(&t[0], &t[0], &t[1]) // x4²ξ + x0²
	fp2MulByNonresidue(&t[2], &t[2])
	fp2Add(&t[2], &t[2], &t[3]) // x2²ξ + x3²
	fp2MulByNonresidue(&t[4], &t[4])
	fp2Add(&t[4], &t[4], &t[5]) // x5²ξ + x1²

	var u fp2
	fp2Sub(&u, &t[0], &x.c0.b0)
	fp2Double(&u, &u)
	fp2Add(&z.c0.b0, &u, &t[0])
	fp2Sub(&u, &t[2], &x.c0.b1)
	fp2Double(&u, &u)
	fp2Add(&z.c0.b1, &u, &t[2])
	fp2Sub(&u, &t[4], &x.c0.b2)
	fp2Double(&u, &u)
	fp2Add(&z.c0.b2, &u, &t[4])
	fp2Add(&u, &t[8], &x.c1.b0)
	fp2Double(&u, &u)
	fp2Add(&z.c1.b0, &u, &t[8])
	fp2Add(&u, &t[6], &x.c1.b1)
	fp2Double(&u, &u)
	fp2Add(&z.c1.b1, &u, &t[6])
	fp2Add(&u, &t[7], &x.c1.b2)
	fp2Double(&u, &u)
	fp2Add(&z.c1.b2, &u, &t[7])
}

// fp12 component → power-of-w exponent, used by the Frobenius tables and
// the FQP conversion: (c0.b0, c0.b1, c0.b2, c1.b0, c1.b1, c1.b2) sit at
// w⁰, w², w⁴, w¹, w³, w⁵ respectively.
var fp12Exponents = [6]uint{0, 2, 4, 1, 3, 5}

func (z *fp12) components() [6]*fp2 {
	return [6]*fp2{&z.c0.b0, &z.c0.b1, &z.c0.b2, &z.c1.b0, &z.c1.b1, &z.c1.b2}
}

// Frobenius coefficient tables γₙ[e] = ξ^(e(qⁿ−1)/6), derived at init from
// the reference tower arithmetic so they cannot drift from the algebra.
var frobGamma1, frobGamma2, frobGamma3 = func() (g1, g2, g3 [6]fp2) {
	xi := NewFq2(FqFromInt64(9), FqFromInt64(1))
	six := big.NewInt(6)
	for n, out := range []*[6]fp2{&g1, &g2, &g3} {
		qn := new(big.Int).Exp(Q, big.NewInt(int64(n+1)), nil)
		exp := new(big.Int).Sub(qn, big.NewInt(1))
		exp.Div(exp, six)
		base := xi.Pow(exp) // ξ^((qⁿ−1)/6)
		acc := Fq2One()
		for e := 0; e < 6; e++ {
			out[e] = fp2FromFQP(acc)
			acc = acc.Mul(base)
		}
	}
	return
}()

// fp12Frobenius sets z = x^q.
func fp12Frobenius(z, x *fp12) {
	var r fp12
	rc := r.components()
	xc := x.components()
	for k := 0; k < 6; k++ {
		var t fp2
		fp2Conjugate(&t, xc[k])
		fp2Mul(rc[k], &t, &frobGamma1[fp12Exponents[k]])
	}
	*z = r
}

// fp12FrobeniusSquare sets z = x^(q²). No conjugation: Frobenius² is the
// identity on Fq².
func fp12FrobeniusSquare(z, x *fp12) {
	var r fp12
	rc := r.components()
	xc := x.components()
	for k := 0; k < 6; k++ {
		fp2Mul(rc[k], xc[k], &frobGamma2[fp12Exponents[k]])
	}
	*z = r
}

// fp12FrobeniusCube sets z = x^(q³).
func fp12FrobeniusCube(z, x *fp12) {
	var r fp12
	rc := r.components()
	xc := x.components()
	for k := 0; k < 6; k++ {
		var t fp2
		fp2Conjugate(&t, xc[k])
		fp2Mul(rc[k], &t, &frobGamma3[fp12Exponents[k]])
	}
	*z = r
}

// fp12FromFQP converts from the reference single-shot tower: coefficient
// d_k of w^k maps to component (a, b) with b = d_{e+6}, a = d_e + 9·d_{e+6}
// (from i = w⁶ − 9).
func fp12FromFQP(x FQP) fp12 {
	if len(x.coeffs) != 12 {
		panic("bn254: fp12FromFQP requires an Fq12 element")
	}
	var z fp12
	zc := z.components()
	nine := big.NewInt(9)
	for k := 0; k < 6; k++ {
		e := fp12Exponents[k]
		hi := x.coeffs[e+6].v
		a := new(big.Int).Mul(nine, hi)
		a.Add(a, x.coeffs[e].v)
		zc[k].c0 = fpFromBig(a)
		zc[k].c1 = fpFromBig(hi)
	}
	return z
}

// toFQP converts into the reference representation.
func (z *fp12) toFQP() FQP {
	var d [12]Fq
	for i := range d {
		d[i] = FqZero()
	}
	zc := z.components()
	nine := big.NewInt(9)
	for k := 0; k < 6; k++ {
		e := fp12Exponents[k]
		a, b := zc[k].c0.toBig(), zc[k].c1.toBig()
		lo := new(big.Int).Mul(nine, b)
		lo.Sub(a, lo)
		d[e] = NewFq(lo)
		d[e+6] = Fq{v: b}
	}
	return NewFq12(d)
}
