// Package bn254 implements the BN254 (alt_bn128 / BN-P254) pairing-
// friendly elliptic curve from scratch on the standard library: the base
// field Fq, the field extensions Fq² and Fq¹², the groups G1 and G2, and
// the optimal ate pairing. It is the curve the SBFT paper deploys for
// threshold BLS signatures (§III, [21][23]).
//
// The package carries two implementations of the same algebra:
//
//   - The production hot path (fp.go, fp2.go, fp6.go, fp12.go, g1fast.go,
//     g2fast.go, pairing_fast.go): fixed 4×64-bit Montgomery limbs for Fq
//     with no per-operation heap allocation, a dedicated 2-3-2 tower
//     (Fq² = Fq[i]/(i²+1), Fq⁶ = Fq²[v]/(v³−(9+i)), Fq¹² = Fq⁶[w]/(w²−v))
//     with Frobenius coefficient tables, Jacobian-coordinate group law,
//     and a projective Miller loop with inline sparse line evaluation and
//     a cyclotomic-squaring final exponentiation. All public entry points
//     (ScalarMul, HashToG1, Pair, PairingCheck) run on this path.
//
//   - The auditable reference (field.go, curve.go, pairing.go): math/big
//     field elements and generic polynomial quotient rings, where the
//     tower behavior (including the Frobenius action) follows from
//     ordinary polynomial arithmetic rather than hand-derived constants.
//     It is retained as the differential-test oracle: fast_test.go
//     cross-checks every limb, tower, group and pairing operation against
//     it on random inputs, and all Montgomery/Frobenius constants of the
//     fast path are derived from it at package init rather than
//     transcribed.
//
// Every structural property — group laws, subgroup orders, non-degeneracy
// and bilinearity of the pairing — is property-tested against both paths.
// Arithmetic is variable-time (as was the math/big reference); signing
// keys are protocol-internal and the threat model of the replication
// protocol is Byzantine behavior, not co-located timing measurement.
package bn254

import (
	"fmt"
	"math/big"
)

// Curve constants (decimal, from the BN254 specification).
var (
	// Q is the base field modulus.
	Q, _ = new(big.Int).SetString("21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)
	// R is the order of G1 and G2 (the scalar field modulus).
	R, _ = new(big.Int).SetString("21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)
	// ateLoopCount is 6u+2 for the BN parameter u.
	ateLoopCount, _ = new(big.Int).SetString("29793968203157093288", 10)
)

// Fq is an element of the base field (an integer mod Q). Fq values are
// immutable: operations return fresh elements.
type Fq struct{ v *big.Int }

// NewFq reduces an integer into the field.
func NewFq(v *big.Int) Fq {
	x := new(big.Int).Mod(v, Q)
	if x.Sign() < 0 {
		x.Add(x, Q)
	}
	return Fq{v: x}
}

// FqFromInt64 builds a small field element.
func FqFromInt64(v int64) Fq { return NewFq(big.NewInt(v)) }

// FqZero and FqOne are the field identities.
func FqZero() Fq { return Fq{v: new(big.Int)} }

// FqOne returns 1.
func FqOne() Fq { return Fq{v: big.NewInt(1)} }

// Big returns a copy of the underlying integer.
func (a Fq) Big() *big.Int { return new(big.Int).Set(a.v) }

// IsZero reports a == 0.
func (a Fq) IsZero() bool { return a.v.Sign() == 0 }

// Equal reports a == b.
func (a Fq) Equal(b Fq) bool { return a.v.Cmp(b.v) == 0 }

// Add returns a + b.
func (a Fq) Add(b Fq) Fq { return NewFq(new(big.Int).Add(a.v, b.v)) }

// Sub returns a - b.
func (a Fq) Sub(b Fq) Fq { return NewFq(new(big.Int).Sub(a.v, b.v)) }

// Neg returns -a.
func (a Fq) Neg() Fq { return NewFq(new(big.Int).Neg(a.v)) }

// Mul returns a · b.
func (a Fq) Mul(b Fq) Fq { return NewFq(new(big.Int).Mul(a.v, b.v)) }

// Inv returns a⁻¹; it panics on zero (callers guard).
func (a Fq) Inv() Fq {
	if a.IsZero() {
		panic("bn254: inverse of zero")
	}
	return Fq{v: new(big.Int).ModInverse(a.v, Q)}
}

// String renders the element.
func (a Fq) String() string { return a.v.String() }

// FQP is an element of a polynomial quotient ring Fq[x]/(m(x)): the
// generic extension used for both Fq² and Fq¹². coeffs has degree-many
// entries (little-endian); modulus holds the non-leading coefficients of
// the monic modulus polynomial.
type FQP struct {
	coeffs  []Fq
	modulus []Fq // m(x) = x^deg + Σ modulus[i]·x^i
}

// fq2Modulus is x² + 1 (i² = −1).
var fq2Modulus = []Fq{FqFromInt64(1), FqZero()}

// fq12Modulus is x¹² − 18x⁶ + 82, the standard BN254 single-shot tower:
// w⁶ = ξ = 9 + i with i = w⁶ − 9.
var fq12Modulus = []Fq{
	FqFromInt64(82), FqZero(), FqZero(), FqZero(), FqZero(), FqZero(),
	FqFromInt64(-18), FqZero(), FqZero(), FqZero(), FqZero(), FqZero(),
}

// NewFq2 builds an element a + b·i of Fq².
func NewFq2(a, b Fq) FQP {
	return FQP{coeffs: []Fq{a, b}, modulus: fq2Modulus}
}

// NewFq12 builds an element of Fq¹² from 12 coefficients.
func NewFq12(coeffs [12]Fq) FQP {
	c := make([]Fq, 12)
	copy(c, coeffs[:])
	return FQP{coeffs: c, modulus: fq12Modulus}
}

// Fq2Zero and friends construct identities of each extension.
func Fq2Zero() FQP { return zeroFQP(fq2Modulus) }

// Fq2One returns 1 ∈ Fq².
func Fq2One() FQP { return oneFQP(fq2Modulus) }

// Fq12Zero returns 0 ∈ Fq¹².
func Fq12Zero() FQP { return zeroFQP(fq12Modulus) }

// Fq12One returns 1 ∈ Fq¹².
func Fq12One() FQP { return oneFQP(fq12Modulus) }

func zeroFQP(mod []Fq) FQP {
	c := make([]Fq, len(mod))
	for i := range c {
		c[i] = FqZero()
	}
	return FQP{coeffs: c, modulus: mod}
}

func oneFQP(mod []Fq) FQP {
	e := zeroFQP(mod)
	e.coeffs[0] = FqOne()
	return e
}

// Degree reports the extension degree.
func (e FQP) Degree() int { return len(e.coeffs) }

// Coeff returns the i-th coefficient.
func (e FQP) Coeff(i int) Fq { return e.coeffs[i] }

// IsZero reports whether all coefficients vanish.
func (e FQP) IsZero() bool {
	for _, c := range e.coeffs {
		if !c.IsZero() {
			return false
		}
	}
	return true
}

// Equal compares elements of the same extension.
func (e FQP) Equal(o FQP) bool {
	if len(e.coeffs) != len(o.coeffs) {
		return false
	}
	for i := range e.coeffs {
		if !e.coeffs[i].Equal(o.coeffs[i]) {
			return false
		}
	}
	return true
}

func (e FQP) clone() FQP {
	c := make([]Fq, len(e.coeffs))
	copy(c, e.coeffs)
	return FQP{coeffs: c, modulus: e.modulus}
}

// Add returns e + o.
func (e FQP) Add(o FQP) FQP {
	r := e.clone()
	for i := range r.coeffs {
		r.coeffs[i] = r.coeffs[i].Add(o.coeffs[i])
	}
	return r
}

// Sub returns e − o.
func (e FQP) Sub(o FQP) FQP {
	r := e.clone()
	for i := range r.coeffs {
		r.coeffs[i] = r.coeffs[i].Sub(o.coeffs[i])
	}
	return r
}

// Neg returns −e.
func (e FQP) Neg() FQP {
	r := e.clone()
	for i := range r.coeffs {
		r.coeffs[i] = r.coeffs[i].Neg()
	}
	return r
}

// ScalarMul returns k·e for k ∈ Fq.
func (e FQP) ScalarMul(k Fq) FQP {
	r := e.clone()
	for i := range r.coeffs {
		r.coeffs[i] = r.coeffs[i].Mul(k)
	}
	return r
}

// Mul returns e · o reduced by the modulus polynomial.
func (e FQP) Mul(o FQP) FQP {
	deg := len(e.coeffs)
	tmp := make([]Fq, 2*deg-1)
	for i := range tmp {
		tmp[i] = FqZero()
	}
	for i, a := range e.coeffs {
		if a.IsZero() {
			continue
		}
		for j, b := range o.coeffs {
			if b.IsZero() {
				continue
			}
			tmp[i+j] = tmp[i+j].Add(a.Mul(b))
		}
	}
	// Reduce: x^deg ≡ −modulus(x).
	for i := len(tmp) - 1; i >= deg; i-- {
		top := tmp[i]
		if top.IsZero() {
			continue
		}
		tmp[i] = FqZero()
		for j, m := range e.modulus {
			if m.IsZero() {
				continue
			}
			tmp[i-deg+j] = tmp[i-deg+j].Sub(top.Mul(m))
		}
	}
	r := e.clone()
	copy(r.coeffs, tmp[:deg])
	return r
}

// Square returns e².
func (e FQP) Square() FQP { return e.Mul(e) }

// Pow returns e^k for a non-negative integer k.
func (e FQP) Pow(k *big.Int) FQP {
	result := oneFQP(e.modulus)
	base := e.clone()
	for i := k.BitLen() - 1; i >= 0; i-- {
		result = result.Mul(result)
		if k.Bit(i) == 1 {
			result = result.Mul(base)
		}
	}
	return result
}

// Inv returns e⁻¹ via the extended Euclidean algorithm on polynomials
// over Fq. It panics on zero (callers guard).
func (e FQP) Inv() FQP {
	if e.IsZero() {
		panic("bn254: inverse of zero extension element")
	}
	deg := len(e.coeffs)
	// lm·e + (…)·m = low, invariant maintained while reducing.
	lm := make([]Fq, deg+1)
	hm := make([]Fq, deg+1)
	for i := range lm {
		lm[i], hm[i] = FqZero(), FqZero()
	}
	lm[0] = FqOne()
	low := make([]Fq, deg+1)
	high := make([]Fq, deg+1)
	for i := 0; i < deg; i++ {
		low[i] = e.coeffs[i]
		high[i] = e.modulus[i]
	}
	low[deg] = FqZero()
	high[deg] = FqOne()

	for polyDeg(low) > 0 {
		r := polyDivMod(high, low)
		nm := make([]Fq, deg+1)
		nw := make([]Fq, deg+1)
		copy(nm, hm)
		copy(nw, high)
		for i := 0; i <= deg; i++ {
			for j := 0; i+j <= deg; j++ {
				nm[i+j] = nm[i+j].Sub(lm[i].Mul(r[j]))
				nw[i+j] = nw[i+j].Sub(low[i].Mul(r[j]))
			}
		}
		high, hm = low, lm
		low, lm = nw, nm
	}
	invLead := low[0].Inv()
	out := e.clone()
	for i := 0; i < deg; i++ {
		out.coeffs[i] = lm[i].Mul(invLead)
	}
	return out
}

// polyDeg reports the degree of a coefficient slice (−1 for zero).
func polyDeg(p []Fq) int {
	for i := len(p) - 1; i >= 0; i-- {
		if !p[i].IsZero() {
			return i
		}
	}
	return -1
}

// polyDivMod returns ⌊a / b⌋ as polynomials over Fq.
func polyDivMod(a, b []Fq) []Fq {
	tmp := make([]Fq, len(a))
	copy(tmp, a)
	out := make([]Fq, len(a))
	for i := range out {
		out[i] = FqZero()
	}
	degB := polyDeg(b)
	invLead := b[degB].Inv()
	for polyDeg(tmp) >= degB && polyDeg(tmp) >= 0 {
		shift := polyDeg(tmp) - degB
		factor := tmp[polyDeg(tmp)].Mul(invLead)
		out[shift] = out[shift].Add(factor)
		for j := 0; j <= degB; j++ {
			tmp[shift+j] = tmp[shift+j].Sub(factor.Mul(b[j]))
		}
	}
	return out
}

// String renders the coefficients.
func (e FQP) String() string { return fmt.Sprintf("FQP%v", e.coeffs) }

// Fq2ToFq12 embeds an Fq² element a + b·i into Fq¹² using i = w⁶ − 9.
func Fq2ToFq12(x FQP) FQP {
	if len(x.coeffs) != 2 {
		panic("bn254: Fq2ToFq12 requires an Fq2 element")
	}
	var c [12]Fq
	for i := range c {
		c[i] = FqZero()
	}
	// a + b·(w⁶ − 9) = (a − 9b) + b·w⁶.
	c[0] = x.coeffs[0].Sub(FqFromInt64(9).Mul(x.coeffs[1]))
	c[6] = x.coeffs[1]
	return NewFq12(c)
}

// FqToFq12 embeds a base-field element into Fq¹².
func FqToFq12(a Fq) FQP {
	var c [12]Fq
	for i := range c {
		c[i] = FqZero()
	}
	c[0] = a
	return NewFq12(c)
}
