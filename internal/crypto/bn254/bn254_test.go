package bn254

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestFqArithmetic(t *testing.T) {
	a, b := FqFromInt64(7), FqFromInt64(5)
	if !a.Add(b).Equal(FqFromInt64(12)) {
		t.Fatal("add")
	}
	if !a.Sub(b).Equal(FqFromInt64(2)) {
		t.Fatal("sub")
	}
	if !a.Mul(b).Equal(FqFromInt64(35)) {
		t.Fatal("mul")
	}
	if !a.Mul(a.Inv()).Equal(FqOne()) {
		t.Fatal("inv")
	}
	if !b.Neg().Add(b).Equal(FqZero()) {
		t.Fatal("neg")
	}
	// Wraparound at the modulus.
	pm1 := NewFq(new(big.Int).Sub(Q, big.NewInt(1)))
	if !pm1.Add(FqFromInt64(1)).Equal(FqZero()) {
		t.Fatal("modular wrap")
	}
}

func TestQuickFqFieldLaws(t *testing.T) {
	f := func(x, y, z int64) bool {
		a, b, c := FqFromInt64(x), FqFromInt64(y), FqFromInt64(z)
		// Distributivity and associativity.
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFq2Arithmetic(t *testing.T) {
	// i² = −1.
	i := NewFq2(FqZero(), FqOne())
	minusOne := NewFq2(FqFromInt64(-1), FqZero())
	if !i.Mul(i).Equal(minusOne) {
		t.Fatal("i² != -1")
	}
	x := NewFq2(FqFromInt64(3), FqFromInt64(4))
	if !x.Mul(x.Inv()).Equal(Fq2One()) {
		t.Fatal("Fq2 inverse")
	}
	if !x.Sub(x).Equal(Fq2Zero()) {
		t.Fatal("Fq2 sub")
	}
}

func TestFq12Arithmetic(t *testing.T) {
	var c [12]Fq
	for i := range c {
		c[i] = FqFromInt64(int64(i + 1))
	}
	x := NewFq12(c)
	if !x.Mul(x.Inv()).Equal(Fq12One()) {
		t.Fatal("Fq12 inverse")
	}
	if !x.Mul(Fq12One()).Equal(x) {
		t.Fatal("Fq12 multiplicative identity")
	}
	// w⁶ = 9 + i: check via the embedding (i = w⁶ − 9 by construction).
	i2 := NewFq2(FqZero(), FqOne())
	emb := Fq2ToFq12(i2)
	var w6c [12]Fq
	for k := range w6c {
		w6c[k] = FqZero()
	}
	w6c[6] = FqOne()
	w6 := NewFq12(w6c)
	nine := FqToFq12(FqFromInt64(9))
	if !emb.Add(nine).Equal(w6) {
		t.Fatal("tower embedding: i + 9 != w⁶")
	}
	// Embedding is a ring homomorphism on a sample: (9+i)(9+i).
	xi := NewFq2(FqFromInt64(9), FqFromInt64(1))
	lhs := Fq2ToFq12(xi.Mul(xi))
	rhs := Fq2ToFq12(xi).Mul(Fq2ToFq12(xi))
	if !lhs.Equal(rhs) {
		t.Fatal("Fq2→Fq12 embedding not multiplicative")
	}
}

func TestFq12PowMatchesRepeatedMul(t *testing.T) {
	var c [12]Fq
	for i := range c {
		c[i] = FqFromInt64(int64(3*i + 2))
	}
	x := NewFq12(c)
	want := Fq12One()
	for i := 0; i < 13; i++ {
		want = want.Mul(x)
	}
	if !x.Pow(big.NewInt(13)).Equal(want) {
		t.Fatal("Pow(13) != x¹³")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	if !g.IsOnCurve() {
		t.Fatal("generator off curve")
	}
	if !g.Add(g).Equal(g.Double()) {
		t.Fatal("add vs double")
	}
	// 2g + g == g + 2g (commutativity) and (g+g)+g == g+(g+g).
	if !g.Double().Add(g).Equal(g.Add(g.Double())) {
		t.Fatal("commutativity")
	}
	if !g.Add(g.Neg()).Inf {
		t.Fatal("g + (−g) != ∞")
	}
	if !g.Add(G1Infinity()).Equal(g) {
		t.Fatal("identity")
	}
	// Group order: r·g == ∞.
	if !g.ScalarMul(R).Inf {
		t.Fatal("r·g != ∞ — wrong group order")
	}
	if g.ScalarMul(big.NewInt(0)).Inf != true {
		t.Fatal("0·g != ∞")
	}
}

func TestQuickG1ScalarLinearity(t *testing.T) {
	g := G1Generator()
	f := func(a, b uint32) bool {
		ba, bb := big.NewInt(int64(a)), big.NewInt(int64(b))
		lhs := g.ScalarMul(new(big.Int).Add(ba, bb))
		rhs := g.ScalarMul(ba).Add(g.ScalarMul(bb))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	if !g.IsOnCurve() {
		t.Fatal("G2 generator off twist curve")
	}
	if !g.Add(g).Equal(g.Double()) {
		t.Fatal("G2 add vs double")
	}
	if !g.Add(g.Neg()).Inf {
		t.Fatal("G2 g + (−g) != ∞")
	}
	if !g.ScalarMul(R).Inf {
		t.Fatal("r·g2 != ∞ — wrong subgroup order")
	}
	if !g.InSubgroup() {
		t.Fatal("generator fails subgroup check")
	}
}

func TestG1MarshalRoundTrip(t *testing.T) {
	p := G1Generator().ScalarMul(big.NewInt(12345))
	q, ok := UnmarshalG1(p.Marshal())
	if !ok || !q.Equal(p) {
		t.Fatal("G1 marshal round trip")
	}
	if _, ok := UnmarshalG1(make([]byte, 63)); ok {
		t.Fatal("short input accepted")
	}
	bad := p.Marshal()
	bad[63] ^= 1
	if _, ok := UnmarshalG1(bad); ok {
		t.Fatal("off-curve point accepted")
	}
	inf, ok := UnmarshalG1(make([]byte, 64))
	if !ok || !inf.Inf {
		t.Fatal("infinity round trip")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	p := G2Generator().ScalarMul(big.NewInt(777))
	q, ok := UnmarshalG2(p.Marshal())
	if !ok || !q.Equal(p) {
		t.Fatal("G2 marshal round trip")
	}
	bad := p.Marshal()
	bad[127] ^= 1
	if _, ok := UnmarshalG2(bad); ok {
		t.Fatal("corrupted G2 point accepted")
	}
}

func TestHashToG1(t *testing.T) {
	p1 := HashToG1([]byte("message one"))
	p2 := HashToG1([]byte("message two"))
	if !p1.IsOnCurve() || !p2.IsOnCurve() {
		t.Fatal("hashed point off curve")
	}
	if p1.Equal(p2) {
		t.Fatal("distinct messages hash to the same point")
	}
	if !p1.Equal(HashToG1([]byte("message one"))) {
		t.Fatal("hash-to-curve not deterministic")
	}
	if p1.Inf {
		t.Fatal("hashed to infinity")
	}
}

func TestPairingBilinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing is expensive with big.Int arithmetic")
	}
	g1, g2 := G1Generator(), G2Generator()
	e := Pair(g1, g2)
	if e.Equal(Fq12One()) {
		t.Fatal("pairing degenerate: e(g1, g2) == 1")
	}
	// e(a·g1, b·g2) == e(g1, g2)^(ab): the property every BLS signature
	// verification relies on.
	a, b := big.NewInt(17), big.NewInt(29)
	lhs := Pair(g1.ScalarMul(a), g2.ScalarMul(b))
	rhs := e.Pow(new(big.Int).Mul(a, b))
	if !lhs.Equal(rhs) {
		t.Fatal("bilinearity failed: e(17·g1, 29·g2) != e(g1,g2)^493")
	}
	// Order: e(g1, g2)^r == 1.
	if !e.Pow(R).Equal(Fq12One()) {
		t.Fatal("pairing value not in the order-r subgroup")
	}
}

func TestPairingCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing is expensive with big.Int arithmetic")
	}
	g1, g2 := G1Generator(), G2Generator()
	k := big.NewInt(31337)
	// e(k·g1, g2) · e(−(k·g1), g2) == 1.
	p := g1.ScalarMul(k)
	if !PairingCheck([]G1Point{p, p.Neg()}, []G2Point{g2, g2}) {
		t.Fatal("cancelling pairing check failed")
	}
	// e(k·g1, g2) · e(−g1, k·g2) == 1 (the BLS verification form).
	if !PairingCheck([]G1Point{p, g1.Neg()}, []G2Point{g2, g2.ScalarMul(k)}) {
		t.Fatal("BLS-form pairing check failed")
	}
	// A mismatched statement must fail.
	if PairingCheck([]G1Point{p, g1.Neg()}, []G2Point{g2, g2.ScalarMul(big.NewInt(42))}) {
		t.Fatal("false statement passed the pairing check")
	}
	if PairingCheck([]G1Point{p}, nil) {
		t.Fatal("mismatched lengths accepted")
	}
}
