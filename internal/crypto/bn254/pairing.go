package bn254

import "math/big"

// lineFunc evaluates the line through p1 and p2 at t (all in Fq¹²
// coordinates): the Miller-loop building block.
func lineFunc(p1, p2, t g12Point) FQP {
	if !p1.X.Equal(p2.X) {
		// Chord.
		m := p2.Y.Sub(p1.Y).Mul(p2.X.Sub(p1.X).Inv())
		return m.Mul(t.X.Sub(p1.X)).Sub(t.Y.Sub(p1.Y))
	}
	if p1.Y.Equal(p2.Y) {
		// Tangent.
		three := FqToFq12(FqFromInt64(3))
		m := p1.X.Mul(p1.X).Mul(three).Mul(p1.Y.Add(p1.Y).Inv())
		return m.Mul(t.X.Sub(p1.X)).Sub(t.Y.Sub(p1.Y))
	}
	// Vertical line.
	return t.X.Sub(p1.X)
}

// millerLoop computes f_{6u+2, Q}(P) with the two Frobenius correction
// steps of the optimal ate pairing.
func millerLoop(q, p g12Point) FQP {
	if q.Inf || p.Inf {
		return Fq12One()
	}
	f := Fq12One()
	r := q
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		f = f.Mul(f).Mul(lineFunc(r, r, p))
		r = r.double()
		if ateLoopCount.Bit(i) == 1 {
			f = f.Mul(lineFunc(r, q, p))
			r = r.add(q)
		}
	}
	q1 := q.frobenius()
	nq2 := q1.frobenius().neg()
	f = f.Mul(lineFunc(r, q1, p))
	r = r.add(q1)
	f = f.Mul(lineFunc(r, nq2, p))
	return f
}

// finalExponent is (q¹² − 1) / r.
var finalExponent = func() *big.Int {
	q12 := new(big.Int).Exp(Q, big.NewInt(12), nil)
	q12.Sub(q12, big.NewInt(1))
	return q12.Div(q12, R)
}()

// Pair computes the optimal ate pairing e(P, Q) ∈ Fq¹² for P ∈ G1 and
// Q ∈ G2. The result lies in the order-r subgroup of Fq¹²; e is bilinear
// and non-degenerate (property-tested in pairing_test.go). It runs on the
// fixed-limb projective path (pairing_fast.go); pairReference retains the
// auditable affine implementation as the oracle.
func Pair(p G1Point, q G2Point) FQP {
	f, skip, ok := millerLoopPoints(p, q)
	if skip {
		return Fq12One()
	}
	if !ok {
		return pairReference(p, q)
	}
	e := finalExpFast(&f)
	return e.toFQP()
}

// pairReference is the retained math/big pairing, the differential oracle
// for the fast path.
func pairReference(p G1Point, q G2Point) FQP {
	if p.Inf || q.Inf {
		return Fq12One()
	}
	f := millerLoop(q.twist(), p.embed())
	return f.Pow(finalExponent)
}

// PairingCheck reports whether Π e(Pᵢ, Qᵢ) == 1, the form signature
// verification uses: e(H(m), pk) · e(−sig, g₂) == 1. The product of
// Miller loops shares a single final exponentiation.
func PairingCheck(ps []G1Point, qs []G2Point) bool {
	if len(ps) != len(qs) {
		return false
	}
	var acc fp12
	acc.setOne()
	for i := range ps {
		f, skip, ok := millerLoopPoints(ps[i], qs[i])
		if skip {
			continue
		}
		if !ok {
			return pairingCheckReference(ps, qs)
		}
		fp12Mul(&acc, &acc, &f)
	}
	e := finalExpFast(&acc)
	return e.isOne()
}

// pairingCheckReference is the retained math/big product-of-pairings
// check, the differential oracle for the fast path.
func pairingCheckReference(ps []G1Point, qs []G2Point) bool {
	if len(ps) != len(qs) {
		return false
	}
	acc := Fq12One()
	for i := range ps {
		if ps[i].Inf || qs[i].Inf {
			continue
		}
		acc = acc.Mul(millerLoop(qs[i].twist(), ps[i].embed()))
	}
	return acc.Pow(finalExponent).Equal(Fq12One())
}
