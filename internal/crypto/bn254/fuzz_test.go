package bn254

import (
	"bytes"
	"math/big"
	"testing"
)

// Fuzz targets for the deserialization boundary: any accepted input must
// be a valid curve (and for G2, subgroup) point whose re-marshalling
// round-trips, and valid marshalled points must always be accepted.

func FuzzUnmarshalG1(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(G1Generator().Marshal())
	f.Add(G1Generator().ScalarMul(big.NewInt(7)).Marshal())
	f.Add([]byte{1, 2, 3})
	bad := G1Generator().Marshal()
	bad[63] ^= 1
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := UnmarshalG1(data)
		if !ok {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve G1 point")
		}
		out := p.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("G1 round trip mismatch: in=%x out=%x", data, out)
		}
		q, ok2 := UnmarshalG1(out)
		if !ok2 || !q.Equal(p) {
			t.Fatal("re-unmarshal mismatch")
		}
	})
}

func FuzzUnmarshalG2(f *testing.F) {
	f.Add(make([]byte, 128))
	f.Add(G2Generator().Marshal())
	f.Add(G2Generator().ScalarMul(big.NewInt(9)).Marshal())
	f.Add([]byte{4, 5, 6})
	bad := G2Generator().Marshal()
	bad[127] ^= 1
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := UnmarshalG2(data)
		if !ok {
			return
		}
		if !p.IsOnCurve() {
			t.Fatal("accepted off-curve G2 point")
		}
		if !p.InSubgroup() {
			t.Fatal("accepted G2 point outside the r-torsion")
		}
		out := p.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("G2 round trip mismatch: in=%x out=%x", data, out)
		}
	})
}
