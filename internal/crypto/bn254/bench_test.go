package bn254

// Microbenchmarks for the crypto hot path, each paired with its retained
// math/big reference so the speedup is measured in one run:
//
//	go test ./internal/crypto/bn254 -bench . -benchtime 10x
import (
	"math/big"
	"testing"
)

func BenchmarkPair(b *testing.B) {
	g1, g2 := G1Generator(), G2Generator()
	p := g1.ScalarMul(big.NewInt(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, g2)
	}
}

func BenchmarkPairReference(b *testing.B) {
	g1, g2 := G1Generator(), G2Generator()
	p := g1.ScalarMul(big.NewInt(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairReference(p, g2)
	}
}

func BenchmarkPairingCheck(b *testing.B) {
	g1, g2 := G1Generator(), G2Generator()
	k := big.NewInt(31337)
	p := g1.ScalarMul(k)
	qs := []G2Point{g2, g2.ScalarMul(k)}
	ps := []G1Point{p, g1.Neg()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !PairingCheck(ps, qs) {
			b.Fatal("check failed")
		}
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	g := G1Generator()
	k, _ := new(big.Int).SetString("1234567891011121314151617181920212223242526272829303132333435", 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMul(k)
	}
}

func BenchmarkG1ScalarMulReference(b *testing.B) {
	g := G1Generator()
	k, _ := new(big.Int).SetString("1234567891011121314151617181920212223242526272829303132333435", 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.scalarMulReference(k)
	}
}

func BenchmarkG2ScalarMul(b *testing.B) {
	g := G2Generator()
	k, _ := new(big.Int).SetString("1234567891011121314151617181920212223242526272829303132333435", 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMul(k)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	msgs := make([][]byte, 64)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 0xab}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashToG1(msgs[i%len(msgs)])
	}
}

func BenchmarkHashToG1Reference(b *testing.B) {
	msgs := make([][]byte, 64)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 0xab}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashToG1Reference(msgs[i%len(msgs)])
	}
}

func BenchmarkFpMul(b *testing.B) {
	x := fpFromBig(big.NewInt(0).SetBytes([]byte("benchmark fp element a.")))
	y := fpFromBig(big.NewInt(0).SetBytes([]byte("benchmark fp element b.")))
	var z fp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		montMul(&z, &x, &y)
	}
}

func BenchmarkFp12Mul(b *testing.B) {
	r := testRand()
	x := fp12FromFQP(randFq12(r))
	y := fp12FromFQP(randFq12(r))
	var z fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp12Mul(&z, &x, &y)
	}
}
