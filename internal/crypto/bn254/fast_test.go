package bn254

// Differential tests: every fixed-limb operation is cross-checked against
// the retained math/big reference implementation on random inputs. The
// reference is slow (a full pairing costs hundreds of milliseconds), so
// the tests that invoke it directly are capped at a few samples and
// skipped under -short, like the original pairing tests.

import (
	"math/big"
	"math/rand"
	"testing"
)

// testRand returns a deterministic source so failures are reproducible.
func testRand() *rand.Rand { return rand.New(rand.NewSource(0x5bf7)) }

func randBig(r *rand.Rand) *big.Int {
	b := make([]byte, 40) // > 32 bytes: exercises reduction mod Q
	r.Read(b)
	return new(big.Int).SetBytes(b)
}

func randFq(r *rand.Rand) Fq { return NewFq(randBig(r)) }

func randFq2(r *rand.Rand) FQP { return NewFq2(randFq(r), randFq(r)) }

func randFq12(r *rand.Rand) FQP {
	var c [12]Fq
	for i := range c {
		c[i] = randFq(r)
	}
	return NewFq12(c)
}

func TestFpDifferential(t *testing.T) {
	r := testRand()
	for i := 0; i < 200; i++ {
		a, b := randBig(r), randBig(r)
		fa, fb := fpFromBig(a), fpFromBig(b)
		ra, rb := NewFq(a), NewFq(b)

		var z fp
		fpAdd(&z, &fa, &fb)
		if z.toBig().Cmp(ra.Add(rb).Big()) != 0 {
			t.Fatalf("add mismatch: %v + %v", a, b)
		}
		fpSub(&z, &fa, &fb)
		if z.toBig().Cmp(ra.Sub(rb).Big()) != 0 {
			t.Fatalf("sub mismatch: %v - %v", a, b)
		}
		montMul(&z, &fa, &fb)
		if z.toBig().Cmp(ra.Mul(rb).Big()) != 0 {
			t.Fatalf("mul mismatch: %v * %v", a, b)
		}
		fpNeg(&z, &fa)
		if z.toBig().Cmp(ra.Neg().Big()) != 0 {
			t.Fatalf("neg mismatch: %v", a)
		}
		fpHalve(&z, &fa)
		var z2 fp
		fpDouble(&z2, &z)
		if !z2.equal(&fa) {
			t.Fatalf("halve/double mismatch: %v", a)
		}
		if !ra.IsZero() {
			fpInv(&z, &fa)
			if z.toBig().Cmp(ra.Inv().Big()) != 0 {
				t.Fatalf("inv mismatch: %v", a)
			}
		}
		// Sqrt agrees with big.Int ModSqrt on existence, and the root
		// squares back.
		var s fp
		ok := fpSqrt(&s, &fa)
		refRoot := new(big.Int).ModSqrt(ra.Big(), Q)
		if ok != (refRoot != nil) {
			t.Fatalf("sqrt existence mismatch for %v", a)
		}
		if ok {
			fpSquare(&z, &s)
			if !z.equal(&fa) {
				t.Fatalf("sqrt does not square back: %v", a)
			}
		}
	}
	// Round-trip at the field boundary.
	for _, v := range []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(Q, big.NewInt(1))} {
		f := fpFromBig(v)
		if f.toBig().Cmp(v) != 0 {
			t.Fatalf("round trip mismatch for %v", v)
		}
	}
}

func TestFp2Differential(t *testing.T) {
	r := testRand()
	xi := NewFq2(FqFromInt64(9), FqFromInt64(1))
	for i := 0; i < 100; i++ {
		a, b := randFq2(r), randFq2(r)
		fa, fb := fp2FromFQP(a), fp2FromFQP(b)

		var z fp2
		fp2Mul(&z, &fa, &fb)
		if !z.toFQP().Equal(a.Mul(b)) {
			t.Fatal("fp2 mul mismatch")
		}
		fp2Square(&z, &fa)
		if !z.toFQP().Equal(a.Mul(a)) {
			t.Fatal("fp2 square mismatch")
		}
		fp2Add(&z, &fa, &fb)
		if !z.toFQP().Equal(a.Add(b)) {
			t.Fatal("fp2 add mismatch")
		}
		fp2MulByNonresidue(&z, &fa)
		if !z.toFQP().Equal(a.Mul(xi)) {
			t.Fatal("fp2 mul-by-ξ mismatch")
		}
		if !a.IsZero() {
			fp2Inv(&z, &fa)
			if !z.toFQP().Equal(a.Inv()) {
				t.Fatal("fp2 inv mismatch")
			}
		}
		// Aliased nonresidue multiplication.
		z = fa
		fp2MulByNonresidue(&z, &z)
		if !z.toFQP().Equal(a.Mul(xi)) {
			t.Fatal("aliased fp2 mul-by-ξ mismatch")
		}
	}
}

func TestFp12Differential(t *testing.T) {
	r := testRand()
	for i := 0; i < 25; i++ {
		a, b := randFq12(r), randFq12(r)
		fa, fb := fp12FromFQP(a), fp12FromFQP(b)

		if !fa.toFQP().Equal(a) {
			t.Fatal("fp12 conversion round trip mismatch")
		}
		var z fp12
		fp12Mul(&z, &fa, &fb)
		if !z.toFQP().Equal(a.Mul(b)) {
			t.Fatal("fp12 mul mismatch")
		}
		fp12Square(&z, &fa)
		if !z.toFQP().Equal(a.Mul(a)) {
			t.Fatal("fp12 square mismatch")
		}
		if !a.IsZero() {
			fp12Inv(&z, &fa)
			if !z.toFQP().Equal(a.Inv()) {
				t.Fatal("fp12 inv mismatch")
			}
		}
	}
}

func TestFp12FrobeniusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("reference Frobenius exponentiation is expensive")
	}
	r := testRand()
	a := randFq12(r)
	fa := fp12FromFQP(a)
	q2 := new(big.Int).Mul(Q, Q)
	q3 := new(big.Int).Mul(q2, Q)
	var z fp12
	fp12Frobenius(&z, &fa)
	if !z.toFQP().Equal(a.Pow(Q)) {
		t.Fatal("Frobenius mismatch vs Pow(q)")
	}
	fp12FrobeniusSquare(&z, &fa)
	if !z.toFQP().Equal(a.Pow(q2)) {
		t.Fatal("Frobenius² mismatch vs Pow(q²)")
	}
	fp12FrobeniusCube(&z, &fa)
	if !z.toFQP().Equal(a.Pow(q3)) {
		t.Fatal("Frobenius³ mismatch vs Pow(q³)")
	}
}

// easyPart maps an arbitrary nonzero element into the cyclotomic subgroup.
func easyPart(f *fp12) fp12 {
	var t, inv, t2 fp12
	fp12Conjugate(&t, f)
	fp12Inv(&inv, f)
	fp12Mul(&t, &t, &inv)
	fp12FrobeniusSquare(&t2, &t)
	fp12Mul(&t, &t2, &t)
	return t
}

func TestCyclotomicSquareAgrees(t *testing.T) {
	r := testRand()
	for i := 0; i < 10; i++ {
		a := fp12FromFQP(randFq12(r))
		g := easyPart(&a)
		var cs, sq fp12
		fp12CyclotomicSquare(&cs, &g)
		fp12Square(&sq, &g)
		if !cs.equal(&sq) {
			t.Fatal("cyclotomic square disagrees with full square in the cyclotomic subgroup")
		}
	}
}

func TestExpByUAgrees(t *testing.T) {
	r := testRand()
	a := fp12FromFQP(randFq12(r))
	g := easyPart(&a)
	var fast, slow fp12
	expByU(&fast, &g)
	fp12Exp(&slow, &g, ateU)
	if !fast.equal(&slow) {
		t.Fatal("expByU disagrees with generic exponentiation")
	}
}

func TestFinalExpMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference final exponentiation is expensive")
	}
	g1, g2 := G1Generator(), G2Generator()
	p := g1.ScalarMul(big.NewInt(5))
	xP := fpFromBig(p.X.v)
	yP := fpFromBig(p.Y.v)
	qa := g2AffineFromPoint(g2)
	f, ok := millerLoopFast(&qa, &xP, &yP)
	if !ok {
		t.Fatal("miller loop hit degenerate line")
	}
	fast := finalExpFast(&f)
	ref := f.toFQP().Pow(finalExponent)
	if !fast.toFQP().Equal(ref) {
		t.Fatal("fast final exponentiation disagrees with f^((q¹²−1)/r)")
	}
}

func TestScalarMulFastMatchesReference(t *testing.T) {
	r := testRand()
	g1, g2 := G1Generator(), G2Generator()
	scalars := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(R, big.NewInt(1)), new(big.Int).Set(R),
	}
	for i := 0; i < 5; i++ {
		scalars = append(scalars, randBig(r))
	}
	for _, k := range scalars {
		if !g1.scalarMulFast(k).Equal(g1.scalarMulReference(k)) {
			t.Fatalf("G1 scalar mul mismatch for k=%v", k)
		}
		if !g2.scalarMulFast(k).Equal(g2.scalarMulReference(k)) {
			t.Fatalf("G2 scalar mul mismatch for k=%v", k)
		}
	}
	// Non-generator base points.
	p := g1.scalarMulFast(big.NewInt(7))
	q := g2.scalarMulFast(big.NewInt(11))
	k := randBig(r)
	if !p.scalarMulFast(k).Equal(p.scalarMulReference(k)) {
		t.Fatal("G1 scalar mul mismatch on derived base")
	}
	if !q.scalarMulFast(k).Equal(q.scalarMulReference(k)) {
		t.Fatal("G2 scalar mul mismatch on derived base")
	}
	if !G1Infinity().scalarMulFast(k).Inf || !G2Infinity().scalarMulFast(k).Inf {
		t.Fatal("scalar mul of infinity is not infinity")
	}
}

func TestHashToG1MatchesReference(t *testing.T) {
	for _, msg := range []string{"", "a", "sbft digest", "try-and-increment exercises retries"} {
		fast := HashToG1([]byte(msg))
		ref := hashToG1Reference([]byte(msg))
		if !fast.Equal(ref) {
			t.Fatalf("HashToG1 mismatch for %q", msg)
		}
		if !fast.IsOnCurve() {
			t.Fatalf("hashed point off curve for %q", msg)
		}
	}
}

func TestPairFastMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference pairing is expensive")
	}
	g1, g2 := G1Generator(), G2Generator()
	cases := []struct {
		p G1Point
		q G2Point
	}{
		{g1, g2},
		{g1.ScalarMul(big.NewInt(17)), g2.ScalarMul(big.NewInt(29))},
		{G1Infinity(), g2},
		{g1, G2Infinity()},
	}
	for i, c := range cases {
		if !Pair(c.p, c.q).Equal(pairReference(c.p, c.q)) {
			t.Fatalf("case %d: fast pairing disagrees with reference", i)
		}
	}
}

func TestPairFastBilinearity(t *testing.T) {
	g1, g2 := G1Generator(), G2Generator()
	e := Pair(g1, g2)
	if e.Equal(Fq12One()) {
		t.Fatal("fast pairing degenerate")
	}
	a, b := big.NewInt(131), big.NewInt(467)
	lhs := Pair(g1.ScalarMul(a), g2.ScalarMul(b))
	rhs := e.Pow(new(big.Int).Mul(a, b))
	if !lhs.Equal(rhs) {
		t.Fatal("fast pairing not bilinear")
	}
	if !e.Pow(R).Equal(Fq12One()) {
		t.Fatal("fast pairing value not in the order-r subgroup")
	}
	// PairingCheck agreement on true and false statements.
	k := big.NewInt(31337)
	p := g1.ScalarMul(k)
	if !PairingCheck([]G1Point{p, g1.Neg()}, []G2Point{g2, g2.ScalarMul(k)}) {
		t.Fatal("fast PairingCheck rejected a true statement")
	}
	if PairingCheck([]G1Point{p, g1.Neg()}, []G2Point{g2, g2.ScalarMul(big.NewInt(42))}) {
		t.Fatal("fast PairingCheck accepted a false statement")
	}
}
