package bn254

import "math/big"

// Jacobian-coordinate G1 arithmetic over the fixed-limb field: (X, Y, Z)
// represents the affine point (X/Z², Y/Z³); Z = 0 is the identity. The
// affine math/big group law in curve.go is retained as the reference
// oracle (scalarMulReference); fast_test.go cross-checks the two.

// fpThree is the curve coefficient b = 3 of E(Fq): y² = x³ + 3.
var fpThree = fpFromUint64(3)

type g1Jac struct{ x, y, z fp }

func (p *g1Jac) setInfinity() {
	p.x.setOne()
	p.y.setOne()
	p.z.setZero()
}

func (p *g1Jac) isInfinity() bool { return p.z.isZero() }

// g1FromAffine lifts a public affine point (Z = 1).
func g1FromAffine(a G1Point) g1Jac {
	if a.Inf {
		var p g1Jac
		p.setInfinity()
		return p
	}
	var p g1Jac
	p.x = fpFromBig(a.X.v)
	p.y = fpFromBig(a.Y.v)
	p.z.setOne()
	return p
}

// toAffine normalizes back to the public representation (one inversion).
func (p *g1Jac) toAffine() G1Point {
	if p.isInfinity() {
		return G1Infinity()
	}
	var zi, zi2, zi3, x, y fp
	fpInv(&zi, &p.z)
	fpSquare(&zi2, &zi)
	montMul(&zi3, &zi2, &zi)
	montMul(&x, &p.x, &zi2)
	montMul(&y, &p.y, &zi3)
	return G1Point{X: Fq{v: x.toBig()}, Y: Fq{v: y.toBig()}}
}

// double sets p = 2p (dbl-2009-l; a = 0).
func (p *g1Jac) double() {
	if p.isInfinity() {
		return
	}
	var a, b, c, d, e, f, t fp
	fpSquare(&a, &p.x)
	fpSquare(&b, &p.y)
	fpSquare(&c, &b)
	// d = 2((X+B)² − A − C)
	fpAdd(&d, &p.x, &b)
	fpSquare(&d, &d)
	fpSub(&d, &d, &a)
	fpSub(&d, &d, &c)
	fpDouble(&d, &d)
	// e = 3A, f = E²
	fpDouble(&e, &a)
	fpAdd(&e, &e, &a)
	fpSquare(&f, &e)
	// Z3 = 2YZ (before X/Y are overwritten)
	montMul(&t, &p.y, &p.z)
	fpDouble(&p.z, &t)
	// X3 = F − 2D
	fpSub(&p.x, &f, &d)
	fpSub(&p.x, &p.x, &d)
	// Y3 = E(D − X3) − 8C
	fpSub(&t, &d, &p.x)
	montMul(&t, &e, &t)
	fpDouble(&c, &c)
	fpDouble(&c, &c)
	fpDouble(&c, &c)
	fpSub(&p.y, &t, &c)
}

// addAffine sets p += a where a is affine with Montgomery-form coordinates
// (mixed addition, madd-2007-bl).
func (p *g1Jac) addAffine(ax, ay *fp) {
	if p.isInfinity() {
		p.x = *ax
		p.y = *ay
		p.z.setOne()
		return
	}
	var z1z1, u2, s2, h, hh, i, j, rr, v, t fp
	fpSquare(&z1z1, &p.z)
	montMul(&u2, ax, &z1z1)
	montMul(&s2, ay, &p.z)
	montMul(&s2, &s2, &z1z1)
	fpSub(&h, &u2, &p.x)
	fpSub(&rr, &s2, &p.y)
	if h.isZero() {
		if rr.isZero() {
			p.double()
			return
		}
		p.setInfinity()
		return
	}
	fpDouble(&rr, &rr) // r = 2(S2 − Y1)
	fpSquare(&hh, &h)
	fpDouble(&i, &hh)
	fpDouble(&i, &i) // I = 4HH
	montMul(&j, &h, &i)
	montMul(&v, &p.x, &i)
	// Z3 = 2 Z1 H (before overwrite)
	montMul(&t, &p.z, &h)
	fpDouble(&p.z, &t)
	// X3 = r² − J − 2V
	fpSquare(&t, &rr)
	fpSub(&t, &t, &j)
	fpSub(&t, &t, &v)
	fpSub(&t, &t, &v)
	// Y3 = r(V − X3) − 2 Y1 J
	fpSub(&v, &v, &t)
	montMul(&v, &rr, &v)
	montMul(&j, &p.y, &j)
	fpDouble(&j, &j)
	fpSub(&p.y, &v, &j)
	p.x = t
}

// scalarMulFast computes k·p via Jacobian double-and-add; k is taken mod R.
func (p G1Point) scalarMulFast(k *big.Int) G1Point {
	kk := new(big.Int).Mod(k, R)
	if p.Inf || kk.Sign() == 0 {
		return G1Infinity()
	}
	bx := fpFromBig(p.X.v)
	by := fpFromBig(p.Y.v)
	var acc g1Jac
	acc.setInfinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addAffine(&bx, &by)
		}
	}
	return acc.toAffine()
}

// scalarMulReference is the retained math/big double-and-add oracle.
func (p G1Point) scalarMulReference(k *big.Int) G1Point {
	kk := new(big.Int).Mod(k, R)
	acc := G1Infinity()
	base := p
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			acc = acc.Add(base)
		}
		base = base.Double()
	}
	return acc
}

// hashCandidate maps a candidate x coordinate to a curve point if x³+3 is
// a quadratic residue, picking the lexicographically smaller root exactly
// like the reference try-and-increment loop.
func hashCandidate(xBig *big.Int) (G1Point, bool) {
	x := fpFromBig(xBig)
	var rhs, t, y fp
	fpSquare(&t, &x)
	montMul(&rhs, &t, &x)
	fpAdd(&rhs, &rhs, &fpThree)
	if !fpSqrt(&y, &rhs) {
		return G1Point{}, false
	}
	var yn fp
	fpNeg(&yn, &y)
	if yn.lessCanonical(&y) {
		y = yn
	}
	return G1Point{X: Fq{v: x.toBig()}, Y: Fq{v: y.toBig()}}, true
}
