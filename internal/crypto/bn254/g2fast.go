package bn254

import "math/big"

// Jacobian-coordinate G2 arithmetic over fp2, mirroring g1fast.go on the
// sextic twist E'(Fq²). The group law never references the curve constant,
// so the formulas are identical to G1 with fp2 coefficients.

// fp2TwistB is b' = 3/ξ, the twist coefficient (converted from the
// reference constant at init).
var fp2TwistB = fp2FromFQP(twistB)

type g2Jac struct{ x, y, z fp2 }

func (p *g2Jac) setInfinity() {
	p.x.setOne()
	p.y.setOne()
	p.z.setZero()
}

func (p *g2Jac) isInfinity() bool { return p.z.isZero() }

// g2Affine is a twist point in affine fp2 coordinates.
type g2Affine struct {
	x, y fp2
	inf  bool
}

func g2AffineFromPoint(a G2Point) g2Affine {
	if a.Inf {
		return g2Affine{inf: true}
	}
	return g2Affine{x: fp2FromFQP(a.X), y: fp2FromFQP(a.Y)}
}

func (a *g2Affine) toPoint() G2Point {
	if a.inf {
		return G2Infinity()
	}
	return G2Point{X: a.x.toFQP(), Y: a.y.toFQP()}
}

func (p *g2Jac) toAffine() g2Affine {
	if p.isInfinity() {
		return g2Affine{inf: true}
	}
	var zi, zi2, zi3 fp2
	fp2Inv(&zi, &p.z)
	fp2Square(&zi2, &zi)
	fp2Mul(&zi3, &zi2, &zi)
	var a g2Affine
	fp2Mul(&a.x, &p.x, &zi2)
	fp2Mul(&a.y, &p.y, &zi3)
	return a
}

// double sets p = 2p (dbl-2009-l over fp2).
func (p *g2Jac) double() {
	if p.isInfinity() {
		return
	}
	var a, b, c, d, e, f, t fp2
	fp2Square(&a, &p.x)
	fp2Square(&b, &p.y)
	fp2Square(&c, &b)
	fp2Add(&d, &p.x, &b)
	fp2Square(&d, &d)
	fp2Sub(&d, &d, &a)
	fp2Sub(&d, &d, &c)
	fp2Double(&d, &d)
	fp2Double(&e, &a)
	fp2Add(&e, &e, &a)
	fp2Square(&f, &e)
	fp2Mul(&t, &p.y, &p.z)
	fp2Double(&p.z, &t)
	fp2Sub(&p.x, &f, &d)
	fp2Sub(&p.x, &p.x, &d)
	fp2Sub(&t, &d, &p.x)
	fp2Mul(&t, &e, &t)
	fp2Double(&c, &c)
	fp2Double(&c, &c)
	fp2Double(&c, &c)
	fp2Sub(&p.y, &t, &c)
}

// addAffine sets p += a (mixed addition, madd-2007-bl over fp2).
func (p *g2Jac) addAffine(a *g2Affine) {
	if a.inf {
		return
	}
	if p.isInfinity() {
		p.x = a.x
		p.y = a.y
		p.z.setOne()
		return
	}
	var z1z1, u2, s2, h, hh, i, j, rr, v, t fp2
	fp2Square(&z1z1, &p.z)
	fp2Mul(&u2, &a.x, &z1z1)
	fp2Mul(&s2, &a.y, &p.z)
	fp2Mul(&s2, &s2, &z1z1)
	fp2Sub(&h, &u2, &p.x)
	fp2Sub(&rr, &s2, &p.y)
	if h.isZero() {
		if rr.isZero() {
			p.double()
			return
		}
		p.setInfinity()
		return
	}
	fp2Double(&rr, &rr)
	fp2Square(&hh, &h)
	fp2Double(&i, &hh)
	fp2Double(&i, &i)
	fp2Mul(&j, &h, &i)
	fp2Mul(&v, &p.x, &i)
	fp2Mul(&t, &p.z, &h)
	fp2Double(&p.z, &t)
	fp2Square(&t, &rr)
	fp2Sub(&t, &t, &j)
	fp2Sub(&t, &t, &v)
	fp2Sub(&t, &t, &v)
	fp2Sub(&v, &v, &t)
	fp2Mul(&v, &rr, &v)
	fp2Mul(&j, &p.y, &j)
	fp2Double(&j, &j)
	fp2Sub(&p.y, &v, &j)
	p.x = t
}

// scalarMulFast computes k·p via Jacobian double-and-add; k is taken mod R.
func (p G2Point) scalarMulFast(k *big.Int) G2Point {
	kk := new(big.Int).Mod(k, R)
	if p.Inf || kk.Sign() == 0 {
		return G2Infinity()
	}
	base := g2AffineFromPoint(p)
	var acc g2Jac
	acc.setInfinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addAffine(&base)
		}
	}
	a := acc.toAffine()
	return a.toPoint()
}

// scalarMulReference is the retained math/big double-and-add oracle.
func (p G2Point) scalarMulReference(k *big.Int) G2Point {
	kk := new(big.Int).Mod(k, R)
	acc := G2Infinity()
	base := p
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			acc = acc.Add(base)
		}
		base = base.Double()
	}
	return acc
}
