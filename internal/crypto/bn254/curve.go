package bn254

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// G1Point is a point on E(Fq): y² = x³ + 3, affine with an infinity flag.
type G1Point struct {
	X, Y Fq
	Inf  bool
}

// G1Generator returns the standard generator (1, 2).
func G1Generator() G1Point {
	return G1Point{X: FqFromInt64(1), Y: FqFromInt64(2)}
}

// G1Infinity returns the identity.
func G1Infinity() G1Point { return G1Point{Inf: true} }

// IsOnCurve reports y² == x³ + 3 (or infinity).
func (p G1Point) IsOnCurve() bool {
	if p.Inf {
		return true
	}
	y2 := p.Y.Mul(p.Y)
	x3 := p.X.Mul(p.X).Mul(p.X).Add(FqFromInt64(3))
	return y2.Equal(x3)
}

// Equal compares points.
func (p G1Point) Equal(q G1Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Neg returns −p.
func (p G1Point) Neg() G1Point {
	if p.Inf {
		return p
	}
	return G1Point{X: p.X, Y: p.Y.Neg()}
}

// Add returns p + q by the affine chord-tangent law.
func (p G1Point) Add(q G1Point) G1Point {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return p.Double()
		}
		return G1Infinity()
	}
	lam := q.Y.Sub(p.Y).Mul(q.X.Sub(p.X).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(q.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G1Point{X: x3, Y: y3}
}

// Double returns 2p.
func (p G1Point) Double() G1Point {
	if p.Inf || p.Y.IsZero() {
		return G1Infinity()
	}
	lam := p.X.Mul(p.X).Mul(FqFromInt64(3)).Mul(p.Y.Add(p.Y).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(p.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G1Point{X: x3, Y: y3}
}

// ScalarMul returns k·p (k taken mod R). It runs in fixed-limb Jacobian
// coordinates (g1fast.go); scalarMulReference retains the affine math/big
// double-and-add as the oracle.
func (p G1Point) ScalarMul(k *big.Int) G1Point {
	return p.scalarMulFast(k)
}

// Marshal serializes the point (64 bytes, or all-zero for infinity).
func (p G1Point) Marshal() []byte {
	out := make([]byte, 64)
	if p.Inf {
		return out
	}
	p.X.Big().FillBytes(out[:32])
	p.Y.Big().FillBytes(out[32:])
	return out
}

// canonicalFq parses a 32-byte big-endian field element, rejecting
// non-canonical (≥ Q) encodings so every point has exactly one byte
// representation (signatures are compared and deduplicated as bytes).
func canonicalFq(b []byte) (Fq, bool) {
	v := new(big.Int).SetBytes(b)
	if v.Cmp(Q) >= 0 {
		return Fq{}, false
	}
	return Fq{v: v}, true
}

// UnmarshalG1 parses a 64-byte point, checking canonical coordinate
// encoding and curve membership.
func UnmarshalG1(data []byte) (G1Point, bool) {
	if len(data) != 64 {
		return G1Point{}, false
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G1Infinity(), true
	}
	x, okX := canonicalFq(data[:32])
	y, okY := canonicalFq(data[32:])
	if !okX || !okY {
		return G1Point{}, false
	}
	p := G1Point{X: x, Y: y}
	if !p.IsOnCurve() {
		return G1Point{}, false
	}
	return p, true
}

// HashToG1 hashes a message onto G1 by try-and-increment: candidate x
// values derived from the digest until x³+3 is a quadratic residue. The
// method is deterministic and constant-free; BLS signatures only need a
// random-oracle-ish map (§III). The square-root test runs on the
// fixed-limb field (hashCandidate); hashToG1Reference retains the
// math/big loop and produces identical points.
func HashToG1(msg []byte) G1Point {
	for ctr := uint32(0); ; ctr++ {
		// E(Fq) has order R exactly for BN curves (cofactor 1), so any
		// curve point is already in the subgroup.
		if p, ok := hashCandidate(hashCandidateX(msg, ctr)); ok {
			return p
		}
	}
}

// hashCandidateX derives the ctr-th candidate x coordinate for msg.
func hashCandidateX(msg []byte, ctr uint32) *big.Int {
	h := sha256.New()
	h.Write([]byte("bn254:hash-to-g1"))
	var cb [4]byte
	binary.BigEndian.PutUint32(cb[:], ctr)
	h.Write(cb[:])
	h.Write(msg)
	d1 := h.Sum(nil)
	h.Reset()
	h.Write([]byte("bn254:hash-to-g1:2"))
	h.Write(cb[:])
	h.Write(msg)
	d2 := h.Sum(nil)
	return new(big.Int).SetBytes(append(d1, d2...))
}

// hashToG1Reference is the retained math/big try-and-increment loop, the
// differential oracle for HashToG1.
func hashToG1Reference(msg []byte) G1Point {
	for ctr := uint32(0); ; ctr++ {
		x := NewFq(hashCandidateX(msg, ctr))
		rhs := x.Mul(x).Mul(x).Add(FqFromInt64(3))
		y := new(big.Int).ModSqrt(rhs.Big(), Q)
		if y == nil {
			continue
		}
		// Pick the lexicographically smaller root for determinism.
		yf := NewFq(y)
		other := yf.Neg()
		if other.Big().Cmp(yf.Big()) < 0 {
			yf = other
		}
		return G1Point{X: x, Y: yf}
	}
}

// G2Point is a point on the sextic twist E'(Fq²): y² = x³ + 3/ξ.
type G2Point struct {
	X, Y FQP // Fq² elements
	Inf  bool
}

// twistB is 3/ξ with ξ = 9 + i.
var twistB = func() FQP {
	xi := NewFq2(FqFromInt64(9), FqFromInt64(1))
	three := NewFq2(FqFromInt64(3), FqZero())
	return three.Mul(xi.Inv())
}()

// G2Generator returns the standard BN254 G2 generator.
func G2Generator() G2Point {
	x0, _ := new(big.Int).SetString("10857046999023057135944570762232829481370756359578518086990519993285655852781", 10)
	x1, _ := new(big.Int).SetString("11559732032986387107991004021392285783925812861821192530917403151452391805634", 10)
	y0, _ := new(big.Int).SetString("8495653923123431417604973247489272438418190587263600148770280649306958101930", 10)
	y1, _ := new(big.Int).SetString("4082367875863433681332203403145435568316851327593401208105741076214120093531", 10)
	return G2Point{
		X: NewFq2(NewFq(x0), NewFq(x1)),
		Y: NewFq2(NewFq(y0), NewFq(y1)),
	}
}

// G2Infinity returns the identity.
func G2Infinity() G2Point { return G2Point{Inf: true} }

// IsOnCurve reports membership on the twist.
func (p G2Point) IsOnCurve() bool {
	if p.Inf {
		return true
	}
	y2 := p.Y.Mul(p.Y)
	x3 := p.X.Mul(p.X).Mul(p.X).Add(twistB)
	return y2.Equal(x3)
}

// Equal compares points.
func (p G2Point) Equal(q G2Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Neg returns −p.
func (p G2Point) Neg() G2Point {
	if p.Inf {
		return p
	}
	return G2Point{X: p.X, Y: p.Y.Neg()}
}

// Add returns p + q.
func (p G2Point) Add(q G2Point) G2Point {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return p.Double()
		}
		return G2Infinity()
	}
	lam := q.Y.Sub(p.Y).Mul(q.X.Sub(p.X).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(q.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G2Point{X: x3, Y: y3}
}

// Double returns 2p.
func (p G2Point) Double() G2Point {
	if p.Inf || p.Y.IsZero() {
		return G2Infinity()
	}
	three := NewFq2(FqFromInt64(3), FqZero())
	lam := p.X.Mul(p.X).Mul(three).Mul(p.Y.Add(p.Y).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(p.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G2Point{X: x3, Y: y3}
}

// ScalarMul returns k·p (k taken mod R). It runs in fixed-limb Jacobian
// coordinates over Fq² (g2fast.go); scalarMulReference retains the affine
// math/big double-and-add as the oracle.
func (p G2Point) ScalarMul(k *big.Int) G2Point {
	return p.scalarMulFast(k)
}

// InSubgroup reports R·p == ∞ (the twist has composite order; valid
// public keys must lie in the R-torsion).
func (p G2Point) InSubgroup() bool {
	return p.ScalarMul(new(big.Int).Sub(R, big.NewInt(1))).Add(p).Inf
}

// Marshal serializes the point (128 bytes; all-zero = infinity).
func (p G2Point) Marshal() []byte {
	out := make([]byte, 128)
	if p.Inf {
		return out
	}
	p.X.Coeff(0).Big().FillBytes(out[0:32])
	p.X.Coeff(1).Big().FillBytes(out[32:64])
	p.Y.Coeff(0).Big().FillBytes(out[64:96])
	p.Y.Coeff(1).Big().FillBytes(out[96:128])
	return out
}

// UnmarshalG2 parses a 128-byte point, checking canonical coordinate
// encoding, curve and subgroup membership.
func UnmarshalG2(data []byte) (G2Point, bool) {
	if len(data) != 128 {
		return G2Point{}, false
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G2Infinity(), true
	}
	x0, ok0 := canonicalFq(data[0:32])
	x1, ok1 := canonicalFq(data[32:64])
	y0, ok2 := canonicalFq(data[64:96])
	y1, ok3 := canonicalFq(data[96:128])
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return G2Point{}, false
	}
	p := G2Point{X: NewFq2(x0, x1), Y: NewFq2(y0, y1)}
	if !p.IsOnCurve() || !p.InSubgroup() {
		return G2Point{}, false
	}
	return p, true
}

// g12Point is a point with coordinates in Fq¹² (the twisted embedding the
// Miller loop operates on).
type g12Point struct {
	X, Y FQP
	Inf  bool
}

// twist maps a G2 point onto E(Fq¹²): (x, y) ↦ (x̃·w², ỹ·w³) where x̃, ỹ
// re-express the Fq² coordinates over i = w⁶ − 9.
func (p G2Point) twist() g12Point {
	if p.Inf {
		return g12Point{Inf: true}
	}
	x12 := Fq2ToFq12(p.X)
	y12 := Fq2ToFq12(p.Y)
	var w2c, w3c [12]Fq
	for i := range w2c {
		w2c[i], w3c[i] = FqZero(), FqZero()
	}
	w2c[2] = FqOne()
	w3c[3] = FqOne()
	w2 := NewFq12(w2c)
	w3 := NewFq12(w3c)
	return g12Point{X: x12.Mul(w2), Y: y12.Mul(w3)}
}

// embed maps a G1 point into Fq¹² coordinates.
func (p G1Point) embed() g12Point {
	if p.Inf {
		return g12Point{Inf: true}
	}
	return g12Point{X: FqToFq12(p.X), Y: FqToFq12(p.Y)}
}

func (p g12Point) equal(q g12Point) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

func (p g12Point) neg() g12Point {
	if p.Inf {
		return p
	}
	return g12Point{X: p.X, Y: p.Y.Neg()}
}

func (p g12Point) add(q g12Point) g12Point {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	if p.X.Equal(q.X) {
		if p.Y.Equal(q.Y) {
			return p.double()
		}
		return g12Point{Inf: true}
	}
	lam := q.Y.Sub(p.Y).Mul(q.X.Sub(p.X).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(q.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return g12Point{X: x3, Y: y3}
}

func (p g12Point) double() g12Point {
	if p.Inf || p.Y.IsZero() {
		return g12Point{Inf: true}
	}
	three := FqToFq12(FqFromInt64(3))
	lam := p.X.Mul(p.X).Mul(three).Mul(p.Y.Add(p.Y).Inv())
	x3 := lam.Mul(lam).Sub(p.X).Sub(p.X)
	y3 := lam.Mul(p.X.Sub(x3)).Sub(p.Y)
	return g12Point{X: x3, Y: y3}
}

// frobenius applies the q-power Frobenius coordinate-wise (raising Fq¹²
// coordinates to the q-th power), used for the final two ate-pairing
// steps.
func (p g12Point) frobenius() g12Point {
	if p.Inf {
		return p
	}
	return g12Point{X: p.X.Pow(Q), Y: p.Y.Pow(Q)}
}
