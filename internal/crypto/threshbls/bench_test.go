package threshbls

// Microbenchmarks for the threshold-BLS hot path (§III): share signing,
// per-share and batched verification, and the three combination modes.
// Run with:
//
//	go test ./internal/crypto/threshbls -bench . -benchtime 10x

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// benchInstance deals one (3, 4) instance shared across benchmarks.
func benchInstance(b *testing.B) (*Scheme, []threshsig.Signer) {
	b.Helper()
	s, sgs, err := Dealer{}.Deal(3, 4)
	if err != nil {
		b.Fatalf("Deal: %v", err)
	}
	return s.(*Scheme), sgs
}

func benchShares(b *testing.B, sgs []threshsig.Signer, digest []byte, n int) []threshsig.Share {
	b.Helper()
	shares := make([]threshsig.Share, n)
	for i := 0; i < n; i++ {
		sh, err := sgs[i].Sign(digest)
		if err != nil {
			b.Fatalf("Sign: %v", err)
		}
		shares[i] = sh
	}
	return shares
}

func BenchmarkSign(b *testing.B) {
	_, sgs := benchInstance(b)
	d := sha256.Sum256([]byte("bench sign"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sgs[0].Sign(d[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyShare(b *testing.B) {
	sch, sgs := benchInstance(b)
	d := sha256.Sum256([]byte("bench verify"))
	sh, _ := sgs[0].Sign(d[:])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sch.VerifyShare(d[:], sh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchVerifyShares(b *testing.B) {
	sch, sgs := benchInstance(b)
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			d := sha256.Sum256([]byte("bench batch verify"))
			shares := benchShares(b, sgs, d[:], k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sch.BatchVerifyShares(d[:], shares); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCombine(b *testing.B) {
	sch, sgs := benchInstance(b)
	d := sha256.Sum256([]byte("bench combine"))
	shares := benchShares(b, sgs, d[:], 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.Combine(d[:], shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineVerified(b *testing.B) {
	sch, sgs := benchInstance(b)
	d := sha256.Sum256([]byte("bench combine verified"))
	shares := benchShares(b, sgs, d[:], 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.CombineVerified(d[:], shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	sch, sgs := benchInstance(b)
	d := sha256.Sum256([]byte("bench verify combined"))
	shares := benchShares(b, sgs, d[:], 3)
	sig, err := sch.Combine(d[:], shares)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sch.Verify(d[:], sig); err != nil {
			b.Fatal(err)
		}
	}
}
