package threshbls

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"strings"
	"sync"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// Pairing operations cost ~1s each with auditable big.Int arithmetic, so
// the suite shares one small (2, 3) instance and every test is skipped
// under -short.

var (
	dealOnce sync.Once
	scheme   threshsig.Scheme
	signers  []threshsig.Signer
)

func instance(t *testing.T) (threshsig.Scheme, []threshsig.Signer) {
	t.Helper()
	if testing.Short() {
		t.Skip("threshold BLS tests are expensive (real pairings)")
	}
	dealOnce.Do(func() {
		s, sg, err := Dealer{}.Deal(2, 3)
		if err != nil {
			t.Fatalf("Deal: %v", err)
		}
		scheme, signers = s, sg
	})
	if scheme == nil {
		t.Fatal("shared deal failed earlier")
	}
	return scheme, signers
}

func digestOf(s string) []byte {
	d := sha256.Sum256([]byte(s))
	return d[:]
}

func TestDealValidation(t *testing.T) {
	if _, _, err := (Dealer{}).Deal(4, 3); err == nil {
		t.Fatal("Deal(4,3) accepted")
	}
	if _, _, err := (Dealer{}).Deal(0, 3); err == nil {
		t.Fatal("Deal(0,3) accepted")
	}
}

func TestSignVerifyCombine(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("bls threshold")
	sh1, err := sgs[0].Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	sh2, err := sgs[1].Sign(d)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := sch.VerifyShare(d, sh1); err != nil {
		t.Fatalf("VerifyShare: %v", err)
	}
	sig, err := sch.Combine(d, []threshsig.Share{sh1, sh2})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := sch.Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// 33-byte-class signatures: one G1 point (64B uncompressed here; the
	// paper's 33B figure is the compressed form).
	if len(sig.Data) != 64 {
		t.Fatalf("signature size = %d", len(sig.Data))
	}
}

func TestCombineSubsetsAgree(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("unique")
	var shares []threshsig.Share
	for _, sg := range sgs {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	sig12, err := sch.Combine(d, shares[:2])
	if err != nil {
		t.Fatalf("Combine{1,2}: %v", err)
	}
	sig23, err := sch.Combine(d, shares[1:])
	if err != nil {
		t.Fatalf("Combine{2,3}: %v", err)
	}
	if !bytes.Equal(sig12.Data, sig23.Data) {
		t.Fatal("different subsets produced different signatures; BLS threshold signatures are unique")
	}
}

func TestRobustnessRejectsBadShare(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("robust")
	sh, _ := sgs[0].Sign(d)

	bad := threshsig.Share{Signer: 1, Data: append([]byte{}, sh.Data...)}
	bad.Data[5] ^= 0xff
	if err := sch.VerifyShare(d, bad); !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("corrupt share: err=%v", err)
	}
	// Replay under a different signer id must fail (binds to pk_i).
	replay := threshsig.Share{Signer: 2, Data: sh.Data}
	if err := sch.VerifyShare(d, replay); !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("replayed share: err=%v", err)
	}
	if err := sch.VerifyShare(digestOf("other"), sh); !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("wrong-digest share: err=%v", err)
	}
	if err := sch.VerifyShare(d, threshsig.Share{Signer: 9, Data: sh.Data}); !errors.Is(err, threshsig.ErrBadSignerID) {
		t.Fatalf("out-of-range signer: err=%v", err)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("forge")
	sh1, _ := sgs[0].Sign(d)
	sh2, _ := sgs[1].Sign(d)
	sig, err := sch.Combine(d, []threshsig.Share{sh1, sh2})
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := sch.Verify(digestOf("different"), sig); !errors.Is(err, threshsig.ErrInvalidSignature) {
		t.Fatalf("wrong digest: err=%v", err)
	}
	bad := threshsig.Signature{Data: append([]byte{}, sig.Data...)}
	bad.Data[0] ^= 1
	if err := sch.Verify(d, bad); !errors.Is(err, threshsig.ErrInvalidSignature) {
		t.Fatalf("tampered signature: err=%v", err)
	}
}

func TestNotEnoughShares(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("short")
	sh1, _ := sgs[0].Sign(d)
	if _, err := sch.Combine(d, []threshsig.Share{sh1}); !errors.Is(err, threshsig.ErrNotEnoughShares) {
		t.Fatalf("err=%v", err)
	}
}

func TestCombineVerifiedMatchesCombine(t *testing.T) {
	sch, sgs := instance(t)
	d := digestOf("pre-verified shares")
	sh1, _ := sgs[0].Sign(d)
	sh2, _ := sgs[1].Sign(d)
	shares := []threshsig.Share{sh1, sh2}
	for _, sh := range shares {
		if err := sch.VerifyShare(d, sh); err != nil {
			t.Fatalf("VerifyShare: %v", err)
		}
	}
	fast, err := sch.CombineVerified(d, shares)
	if err != nil {
		t.Fatalf("CombineVerified: %v", err)
	}
	slow, err := sch.Combine(d, shares)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !bytes.Equal(fast.Data, slow.Data) {
		t.Fatal("CombineVerified and Combine disagree")
	}
	if err := sch.Verify(d, fast); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Threshold bookkeeping still applies.
	if _, err := sch.CombineVerified(d, shares[:1]); !errors.Is(err, threshsig.ErrNotEnoughShares) {
		t.Fatalf("short CombineVerified: err=%v", err)
	}
	if _, err := sch.CombineVerified(d, []threshsig.Share{sh1, sh1}); !errors.Is(err, threshsig.ErrDuplicateShare) {
		t.Fatalf("duplicate CombineVerified: err=%v", err)
	}
}

func TestBatchVerifyShares(t *testing.T) {
	sch, sgs := instance(t)
	blsScheme := sch.(*Scheme)
	d := digestOf("batch verification")
	var shares []threshsig.Share
	for _, sg := range sgs {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	if err := blsScheme.BatchVerifyShares(d, shares); err != nil {
		t.Fatalf("batch of valid shares rejected: %v", err)
	}
	if err := blsScheme.BatchVerifyShares(d, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := blsScheme.BatchVerifyShares(d, shares[:1]); err != nil {
		t.Fatalf("singleton batch: %v", err)
	}

	// A corrupted share must fail the batch and be attributed to its
	// signer via the per-share fallback.
	bad := threshsig.Share{Signer: 2, Data: append([]byte{}, shares[0].Data...)}
	tampered := []threshsig.Share{shares[0], bad, shares[2]}
	err := blsScheme.BatchVerifyShares(d, tampered)
	if !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("tampered batch: err=%v", err)
	}
	if !strings.Contains(err.Error(), "signer 2") {
		t.Fatalf("bad signer not identified: %v", err)
	}
	// Combine goes through the batch path and must report the same error.
	if _, err := sch.Combine(d, tampered[:2]); !errors.Is(err, threshsig.ErrInvalidShare) {
		t.Fatalf("Combine with bad share: err=%v", err)
	}
	if err := blsScheme.BatchVerifyShares(d, []threshsig.Share{{Signer: 9, Data: shares[0].Data}, shares[0]}); !errors.Is(err, threshsig.ErrBadSignerID) {
		t.Fatalf("out-of-range signer in batch: err=%v", err)
	}
}

func TestAggregateGroupMode(t *testing.T) {
	sch, sgs := instance(t)
	blsScheme := sch.(*Scheme)
	d := digestOf("group mode")
	var shares []threshsig.Share
	for _, sg := range sgs {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	sig, err := blsScheme.Aggregate(d, shares)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if err := sch.Verify(d, sig); err != nil {
		t.Fatalf("Verify aggregated: %v", err)
	}
	if _, err := blsScheme.Aggregate(d, shares[:2]); err == nil {
		t.Fatal("group mode accepted missing shares")
	}
}
