// Package threshbls implements threshold BLS signatures over the
// from-scratch BN254 pairing — the scheme the SBFT paper deploys (§III,
// [22][23]): 33-byte-class signatures in G1, public keys in G2, share
// combination by Lagrange interpolation in the exponent with no extra
// rounds, and robustness via per-share pairing verification against
// per-signer public keys.
//
// A trusted dealer Shamir-shares the secret key over the scalar field
// (matching SBFT's permissioned PKI setup). Signature shares are
// σ_i = s_i·H(m) ∈ G1; any k of them interpolate to σ = s·H(m), verified
// by e(H(m), PK) == e(σ, g₂).
//
// Three collector-path optimizations keep pairings off the hot path
// (§III: "multiple signature shares ... validated at nearly the same cost
// of validating only one"):
//
//   - H(m) is memoized per digest, so the n share verifications and the
//     combination for one slot hash to the curve once.
//   - CombineVerified skips the per-share pairing checks when the caller
//     (the collector) already verified each share on arrival.
//   - Combine and BatchVerifyShares check k unverified shares with a
//     single two-pairing product over a random linear combination,
//     falling back to per-share checks only on failure to identify the
//     bad signer.
//
// The group signature mode the paper mentions (n-of-n, §VIII) falls out
// of the same algebra: Aggregate simply adds shares.
package threshbls

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"

	"sbft/internal/crypto/bn254"
	"sbft/internal/crypto/threshsig"
)

// Dealer generates threshold BLS instances.
type Dealer struct {
	// Rand is the entropy source (nil = crypto/rand.Reader).
	Rand io.Reader
}

var _ threshsig.Dealer = Dealer{}

// hashCacheLimit bounds the per-scheme H(m) memo; entries are evicted
// wholesale when it fills. Slots verify and combine shares over a handful
// of live digests, so the cache is effectively hot for all of them.
const hashCacheLimit = 1024

// Scheme is the public side of a (k, n) threshold BLS instance.
type Scheme struct {
	k, n   int
	pk     bn254.G2Point   // group public key s·g₂
	shares []bn254.G2Point // shares[i-1] = s_i·g₂, per-signer keys

	mu        sync.Mutex
	hashCache map[string]bn254.G1Point
}

// Signer holds one Shamir share of the secret key.
type Signer struct {
	id int
	si *big.Int
}

// Deal implements threshsig.Dealer.
func (d Dealer) Deal(k, n int) (threshsig.Scheme, []threshsig.Signer, error) {
	if k < 1 || n < 1 || k > n {
		return nil, nil, fmt.Errorf("threshbls: invalid threshold k=%d n=%d", k, n)
	}
	rng := d.Rand
	if rng == nil {
		rng = rand.Reader
	}
	// Shamir polynomial over the scalar field.
	coeffs := make([]*big.Int, k)
	for i := range coeffs {
		c, err := rand.Int(rng, bn254.R)
		if err != nil {
			return nil, nil, fmt.Errorf("threshbls: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	g2 := bn254.G2Generator()
	sch := &Scheme{
		k:         k,
		n:         n,
		pk:        g2.ScalarMul(coeffs[0]),
		shares:    make([]bn254.G2Point, n),
		hashCache: make(map[string]bn254.G1Point),
	}
	signers := make([]threshsig.Signer, n)
	for i := 1; i <= n; i++ {
		si := evalPoly(coeffs, big.NewInt(int64(i)))
		sch.shares[i-1] = g2.ScalarMul(si)
		signers[i-1] = &Signer{id: i, si: si}
	}
	return sch, signers, nil
}

func evalPoly(coeffs []*big.Int, x *big.Int) *big.Int {
	res := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		res.Mul(res, x)
		res.Add(res, coeffs[i])
		res.Mod(res, bn254.R)
	}
	return res
}

// ID implements threshsig.Signer.
func (s *Signer) ID() int { return s.id }

// Sign implements threshsig.Signer: σ_i = s_i · H(m).
func (s *Signer) Sign(digest []byte) (threshsig.Share, error) {
	h := bn254.HashToG1(digest)
	sig := h.ScalarMul(s.si)
	return threshsig.Share{Signer: s.id, Data: sig.Marshal()}, nil
}

var _ threshsig.Scheme = (*Scheme)(nil)

// Threshold implements threshsig.Scheme.
func (s *Scheme) Threshold() int { return s.k }

// N implements threshsig.Scheme.
func (s *Scheme) N() int { return s.n }

// PublicKey returns the group public key.
func (s *Scheme) PublicKey() bn254.G2Point { return s.pk }

// hashToG1 memoizes bn254.HashToG1 per digest: every share verification
// and combination over one slot's digest shares the hash-to-curve work.
func (s *Scheme) hashToG1(digest []byte) bn254.G1Point {
	key := string(digest)
	s.mu.Lock()
	if p, ok := s.hashCache[key]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()
	p := bn254.HashToG1(digest)
	s.mu.Lock()
	if len(s.hashCache) >= hashCacheLimit {
		clear(s.hashCache)
	}
	s.hashCache[key] = p
	s.mu.Unlock()
	return p
}

// VerifyShare implements threshsig.Scheme: e(H(m), pk_i) == e(σ_i, g₂),
// checked as e(H(m), pk_i)·e(−σ_i, g₂) == 1.
func (s *Scheme) VerifyShare(digest []byte, share threshsig.Share) error {
	if share.Signer < 1 || share.Signer > s.n {
		return fmt.Errorf("%w: signer %d, n=%d", threshsig.ErrBadSignerID, share.Signer, s.n)
	}
	sig, ok := bn254.UnmarshalG1(share.Data)
	if !ok {
		return fmt.Errorf("%w: not a G1 point", threshsig.ErrInvalidShare)
	}
	h := s.hashToG1(digest)
	if !bn254.PairingCheck(
		[]bn254.G1Point{h, sig.Neg()},
		[]bn254.G2Point{s.shares[share.Signer-1], bn254.G2Generator()},
	) {
		return fmt.Errorf("%w: signer %d", threshsig.ErrInvalidShare, share.Signer)
	}
	return nil
}

// BatchVerifyShares checks every share in one pairing product instead of
// one pairing check per share: with random 128-bit scalars r_i,
//
//	e(H(m), Σ r_i·pk_i) == e(Σ r_i·σ_i, g₂)
//
// holds for honest shares and fails with probability ≥ 1 − 2⁻¹²⁸ if any
// share is invalid. On failure it falls back to per-share verification and
// returns the first offending signer's error.
func (s *Scheme) BatchVerifyShares(digest []byte, shares []threshsig.Share) error {
	for _, sh := range shares {
		if sh.Signer < 1 || sh.Signer > s.n {
			return fmt.Errorf("%w: signer %d, n=%d", threshsig.ErrBadSignerID, sh.Signer, s.n)
		}
	}
	ids, points, err := parsePoints(shares)
	if err != nil {
		return err
	}
	return s.batchVerifyParsed(digest, shares, ids, points)
}

// batchVerifyParsed is BatchVerifyShares over already-parsed points, so
// combination paths unmarshal each share only once. shares is kept for
// the per-share blame fallback.
func (s *Scheme) batchVerifyParsed(digest []byte, shares []threshsig.Share, ids []int, points []bn254.G1Point) error {
	if len(shares) == 0 {
		return nil
	}
	if len(shares) == 1 {
		return s.VerifyShare(digest, shares[0])
	}
	bound := new(big.Int).Lsh(big.NewInt(1), 128)
	sigSum := bn254.G1Infinity()
	pkSum := bn254.G2Infinity()
	for i := range points {
		r, err := rand.Int(rand.Reader, bound)
		if err != nil {
			return fmt.Errorf("threshbls: sampling batch scalar: %w", err)
		}
		sigSum = sigSum.Add(points[i].ScalarMul(r))
		pkSum = pkSum.Add(s.shares[ids[i]-1].ScalarMul(r))
	}
	h := s.hashToG1(digest)
	if bn254.PairingCheck(
		[]bn254.G1Point{h, sigSum.Neg()},
		[]bn254.G2Point{pkSum, bn254.G2Generator()},
	) {
		return nil
	}
	// Identify the bad signer (robustness, §III).
	for _, sh := range shares {
		if err := s.VerifyShare(digest, sh); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w: batch verification failed", threshsig.ErrInvalidShare)
}

// lagrangeAtZero computes λ_i(0) = Π_{j≠i} j/(j−i) over the scalar field.
func lagrangeAtZero(set []int, i int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	for _, j := range set {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(j)))
		num.Mod(num, bn254.R)
		den.Mul(den, big.NewInt(int64(j-i)))
		den.Mod(den, bn254.R)
	}
	den.ModInverse(den, bn254.R)
	num.Mul(num, den)
	return num.Mod(num, bn254.R)
}

// parsePoints unmarshals sorted shares into ids and G1 points.
func parsePoints(shares []threshsig.Share) ([]int, []bn254.G1Point, error) {
	ids := make([]int, len(shares))
	points := make([]bn254.G1Point, len(shares))
	for i, sh := range shares {
		p, ok := bn254.UnmarshalG1(sh.Data)
		if !ok {
			return nil, nil, fmt.Errorf("%w: signer %d: not a G1 point", threshsig.ErrInvalidShare, sh.Signer)
		}
		ids[i] = sh.Signer
		points[i] = p
	}
	return ids, points, nil
}

// interpolate combines shares in the exponent: σ = Σ λ_i(0)·σ_i.
func interpolate(ids []int, points []bn254.G1Point) threshsig.Signature {
	acc := bn254.G1Infinity()
	for i := range points {
		acc = acc.Add(points[i].ScalarMul(lagrangeAtZero(ids, ids[i])))
	}
	return threshsig.Signature{Data: acc.Marshal()}
}

// Combine implements threshsig.Scheme: interpolate k shares in the
// exponent. Shares are batch-verified first (robustness, §III), so the
// combined signature always verifies.
func (s *Scheme) Combine(digest []byte, shares []threshsig.Share) (threshsig.Signature, error) {
	sorted, err := threshsig.CheckShares(s.k, s.n, shares)
	if err != nil {
		return threshsig.Signature{}, err
	}
	sorted = sorted[:s.k]
	ids, points, err := parsePoints(sorted)
	if err != nil {
		return threshsig.Signature{}, err
	}
	if err := s.batchVerifyParsed(digest, sorted, ids, points); err != nil {
		return threshsig.Signature{}, err
	}
	return interpolate(ids, points), nil
}

// CombineVerified implements threshsig.Scheme: like Combine but with no
// share verification at all — zero pairings. The caller attests that every
// share passed VerifyShare for this digest (the collector flow in
// internal/core verifies each share on arrival before counting it).
func (s *Scheme) CombineVerified(digest []byte, shares []threshsig.Share) (threshsig.Signature, error) {
	sorted, err := threshsig.CheckShares(s.k, s.n, shares)
	if err != nil {
		return threshsig.Signature{}, err
	}
	sorted = sorted[:s.k]
	ids, points, err := parsePoints(sorted)
	if err != nil {
		return threshsig.Signature{}, err
	}
	_ = digest // shares are pre-verified against this digest by contract
	return interpolate(ids, points), nil
}

// Verify implements threshsig.Scheme: e(H(m), PK) == e(σ, g₂).
func (s *Scheme) Verify(digest []byte, sig threshsig.Signature) error {
	p, ok := bn254.UnmarshalG1(sig.Data)
	if !ok {
		return threshsig.ErrInvalidSignature
	}
	h := s.hashToG1(digest)
	if !bn254.PairingCheck(
		[]bn254.G1Point{h, p.Neg()},
		[]bn254.G2Point{s.pk, bn254.G2Generator()},
	) {
		return threshsig.ErrInvalidSignature
	}
	return nil
}

// Aggregate adds n-of-n shares without interpolation: the paper's faster
// group-signature mode used on the fast path when no failure is detected
// (§VIII). It requires shares from all n signers.
func (s *Scheme) Aggregate(digest []byte, shares []threshsig.Share) (threshsig.Signature, error) {
	if len(shares) != s.n {
		return threshsig.Signature{}, fmt.Errorf("threshbls: group mode needs all %d shares, have %d", s.n, len(shares))
	}
	// n-of-n aggregation is interpolation over the full set.
	sorted, err := threshsig.CheckShares(s.n, s.n, shares)
	if err != nil {
		return threshsig.Signature{}, err
	}
	ids, points, err := parsePoints(sorted)
	if err != nil {
		return threshsig.Signature{}, err
	}
	if err := s.batchVerifyParsed(digest, sorted, ids, points); err != nil {
		return threshsig.Signature{}, err
	}
	return interpolate(ids, points), nil
}
