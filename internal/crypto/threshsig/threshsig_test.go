package threshsig

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func deal(t *testing.T, k, n int) (Scheme, []Signer) {
	t.Helper()
	scheme, signers, err := InsecureDealer{Seed: []byte("test-seed")}.Deal(k, n)
	if err != nil {
		t.Fatalf("Deal(%d, %d): %v", k, n, err)
	}
	return scheme, signers
}

func digestOf(s string) []byte {
	d := sha256.Sum256([]byte(s))
	return d[:]
}

func TestDealValidation(t *testing.T) {
	tests := []struct {
		name string
		k, n int
		ok   bool
	}{
		{"k equals n", 3, 3, true},
		{"k one", 1, 5, true},
		{"typical", 5, 7, true},
		{"k zero", 0, 3, false},
		{"n zero", 1, 0, false},
		{"k exceeds n", 4, 3, false},
		{"negative k", -1, 3, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := InsecureDealer{}.Deal(tt.k, tt.n)
			if (err == nil) != tt.ok {
				t.Fatalf("Deal(%d, %d) err=%v, want ok=%v", tt.k, tt.n, err, tt.ok)
			}
		})
	}
}

func TestSignVerifyCombine(t *testing.T) {
	scheme, signers := deal(t, 3, 5)
	d := digestOf("hello")
	var shares []Share
	for _, sg := range signers {
		sh, err := sg.Sign(d)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if err := scheme.VerifyShare(d, sh); err != nil {
			t.Fatalf("VerifyShare(signer %d): %v", sg.ID(), err)
		}
		shares = append(shares, sh)
	}
	sig, err := scheme.Combine(d, shares[:3])
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := scheme.Verify(d, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestCombineAnySubsetYieldsSameSignature(t *testing.T) {
	scheme, signers := deal(t, 2, 5)
	d := digestOf("subset")
	shares := make([]Share, len(signers))
	for i, sg := range signers {
		shares[i], _ = sg.Sign(d)
	}
	sig1, err := scheme.Combine(d, []Share{shares[0], shares[1]})
	if err != nil {
		t.Fatalf("Combine{1,2}: %v", err)
	}
	sig2, err := scheme.Combine(d, []Share{shares[3], shares[4]})
	if err != nil {
		t.Fatalf("Combine{4,5}: %v", err)
	}
	if !bytes.Equal(sig1.Data, sig2.Data) {
		t.Fatal("signatures from different share subsets differ; threshold signatures must be unique")
	}
}

func TestCombineRejectsTooFewShares(t *testing.T) {
	scheme, signers := deal(t, 3, 5)
	d := digestOf("few")
	sh0, _ := signers[0].Sign(d)
	sh1, _ := signers[1].Sign(d)
	if _, err := scheme.Combine(d, []Share{sh0, sh1}); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("Combine with 2 of 3 shares: err=%v, want ErrNotEnoughShares", err)
	}
}

func TestCombineRejectsDuplicateSigner(t *testing.T) {
	scheme, signers := deal(t, 3, 5)
	d := digestOf("dup")
	sh0, _ := signers[0].Sign(d)
	sh1, _ := signers[1].Sign(d)
	if _, err := scheme.Combine(d, []Share{sh0, sh1, sh0}); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("Combine with duplicate: err=%v, want ErrDuplicateShare", err)
	}
}

func TestVerifyShareRejectsForgery(t *testing.T) {
	scheme, signers := deal(t, 2, 4)
	d := digestOf("forge")
	sh, _ := signers[0].Sign(d)

	t.Run("tampered data", func(t *testing.T) {
		bad := Share{Signer: sh.Signer, Data: append([]byte{}, sh.Data...)}
		bad.Data[0] ^= 0xff
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
	t.Run("wrong signer id", func(t *testing.T) {
		bad := Share{Signer: 2, Data: sh.Data}
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
	t.Run("out of range signer", func(t *testing.T) {
		bad := Share{Signer: 9, Data: sh.Data}
		if err := scheme.VerifyShare(d, bad); !errors.Is(err, ErrBadSignerID) {
			t.Fatalf("err=%v, want ErrBadSignerID", err)
		}
	})
	t.Run("wrong digest", func(t *testing.T) {
		if err := scheme.VerifyShare(digestOf("other"), sh); !errors.Is(err, ErrInvalidShare) {
			t.Fatalf("err=%v, want ErrInvalidShare", err)
		}
	})
}

func TestVerifyRejectsWrongDigest(t *testing.T) {
	scheme, signers := deal(t, 2, 4)
	d := digestOf("a")
	var shares []Share
	for _, sg := range signers[:2] {
		sh, _ := sg.Sign(d)
		shares = append(shares, sh)
	}
	sig, err := scheme.Combine(d, shares)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if err := scheme.Verify(digestOf("b"), sig); !errors.Is(err, ErrInvalidSignature) {
		t.Fatalf("Verify with wrong digest: err=%v, want ErrInvalidSignature", err)
	}
}

func TestDistinctSeedsProduceDistinctKeys(t *testing.T) {
	s1, sg1, _ := InsecureDealer{Seed: []byte("one")}.Deal(2, 3)
	_, sg2, _ := InsecureDealer{Seed: []byte("two")}.Deal(2, 3)
	d := digestOf("x")
	shA, _ := sg1[0].Sign(d)
	shB, _ := sg2[0].Sign(d)
	if bytes.Equal(shA.Data, shB.Data) {
		t.Fatal("different dealer seeds produced identical shares")
	}
	if err := s1.VerifyShare(d, shB); err == nil {
		t.Fatal("scheme accepted a share from a differently-seeded instance")
	}
}

func TestCheckSharesSorts(t *testing.T) {
	shares := []Share{{Signer: 3}, {Signer: 1}, {Signer: 2}}
	sorted, err := CheckShares(3, 5, shares)
	if err != nil {
		t.Fatalf("CheckShares: %v", err)
	}
	for i, s := range sorted {
		if s.Signer != i+1 {
			t.Fatalf("sorted[%d].Signer = %d, want %d", i, s.Signer, i+1)
		}
	}
}

// Property: for any digest, shares from any k distinct signers combine to a
// signature that verifies; k-1 shares never do.
func TestQuickThresholdProperty(t *testing.T) {
	scheme, signers := deal(t, 4, 9)
	f := func(msg []byte, perm uint32) bool {
		d := sha256.Sum256(msg)
		// Choose 4 distinct signers via the permutation seed.
		idx := map[int]bool{}
		x := perm
		for len(idx) < 4 {
			idx[int(x%9)] = true
			x = x*1664525 + 1013904223
		}
		var shares []Share
		for i := range idx {
			sh, err := signers[i].Sign(d[:])
			if err != nil {
				return false
			}
			shares = append(shares, sh)
		}
		sig, err := scheme.Combine(d[:], shares)
		if err != nil {
			return false
		}
		if scheme.Verify(d[:], sig) != nil {
			return false
		}
		_, err = scheme.Combine(d[:], shares[:3])
		return errors.Is(err, ErrNotEnoughShares)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
