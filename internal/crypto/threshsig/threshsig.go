// Package threshsig defines the threshold-signature abstraction used by the
// SBFT replication protocol (paper §III).
//
// SBFT uses three independent threshold schemes per deployment: σ with
// threshold 3f+c+1, τ with threshold 2f+c+1 and π with threshold f+1. For a
// threshold k out of n signers, any k valid signature shares on the same
// digest combine into a single constant-size signature verifiable with one
// public key. Schemes must be robust: invalid shares from malicious signers
// are detectable before combination.
//
// Two production implementations exist in sibling packages:
//
//   - threshrsa: Shoup's practical threshold RSA (EUROCRYPT '00), fully
//     non-interactive and robust, built on math/big.
//   - threshbls: threshold BLS over a from-scratch BN254 pairing, the
//     scheme the paper deploys (33-byte signatures, batch verification).
//
// The Insecure scheme in this package is a hash-based stand-in for protocol
// tests and simulations where cryptographic strength is irrelevant but
// threshold semantics must hold. It must never be used outside tests and
// simulations.
package threshsig

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Common errors returned by Scheme implementations.
var (
	ErrInvalidShare     = errors.New("threshsig: invalid signature share")
	ErrInvalidSignature = errors.New("threshsig: invalid signature")
	ErrNotEnoughShares  = errors.New("threshsig: not enough shares to combine")
	ErrBadSignerID      = errors.New("threshsig: signer id out of range")
	ErrDuplicateShare   = errors.New("threshsig: duplicate share from same signer")
)

// Share is a signature share produced by one signer over a digest. Signer
// ids are 1-based, matching the replica identifiers in the paper (§V-B).
type Share struct {
	Signer int
	Data   []byte
}

// Signature is a combined threshold signature, verifiable with the scheme's
// single public key.
type Signature struct {
	Data []byte
}

// Signer produces signature shares for a single key-share holder.
type Signer interface {
	// ID reports this signer's 1-based identifier.
	ID() int
	// Sign produces this signer's share over digest.
	Sign(digest []byte) (Share, error)
}

// Scheme is the public side of a (k, n) threshold signature scheme.
type Scheme interface {
	// Threshold reports k, the number of shares needed to combine.
	Threshold() int
	// N reports the total number of signers.
	N() int
	// VerifyShare checks that share is a valid share over digest from the
	// claimed signer. Robustness: a share passing VerifyShare always
	// contributes to a valid combined signature.
	VerifyShare(digest []byte, share Share) error
	// Combine merges at least Threshold() distinct valid shares over the
	// same digest into a single signature, verifying them first
	// (robustness: a bad share is reported, not combined).
	Combine(digest []byte, shares []Share) (Signature, error)
	// CombineVerified merges at least Threshold() distinct shares that the
	// caller has already checked with VerifyShare against this digest,
	// skipping re-verification. This is the collector fast path (§III):
	// shares are verified once on arrival and must not pay a second
	// pairing/proof check at combination time. Passing unverified shares
	// may yield a signature that fails Verify.
	CombineVerified(digest []byte, shares []Share) (Signature, error)
	// Verify checks a combined signature over digest.
	Verify(digest []byte, sig Signature) error
}

// Dealer generates a full (k, n) scheme instance: the public scheme plus
// one Signer per participant. Centralized dealing matches the permissioned
// setting of the paper (PKI setup, §III).
type Dealer interface {
	Deal(k, n int) (Scheme, []Signer, error)
}

// CheckShares performs the generic validation shared by Combine
// implementations: enough shares, no duplicates, ids in range. It returns
// the shares sorted by signer id.
func CheckShares(k, n int, shares []Share) ([]Share, error) {
	if len(shares) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), k)
	}
	sorted := make([]Share, len(shares))
	copy(sorted, shares)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Signer < sorted[j].Signer })
	for i, s := range sorted {
		if s.Signer < 1 || s.Signer > n {
			return nil, fmt.Errorf("%w: signer %d, n=%d", ErrBadSignerID, s.Signer, n)
		}
		if i > 0 && sorted[i-1].Signer == s.Signer {
			return nil, fmt.Errorf("%w: signer %d", ErrDuplicateShare, s.Signer)
		}
	}
	return sorted, nil
}

// InsecureScheme is a deterministic hash-based threshold scheme for tests
// and simulations. A share is HMAC(secret_i, digest); a combined signature
// is the hash of the k lowest-id distinct valid shares' signer set together
// with a MAC under a scheme-wide secret. It has threshold semantics (k
// distinct shares required, duplicate and out-of-range shares rejected) but
// no cryptographic strength against an adversary who reads process memory —
// acceptable in-process, matching the simulation substitution in DESIGN.md.
type InsecureScheme struct {
	k, n   int
	master []byte
}

// InsecureSigner is the per-participant side of InsecureScheme.
type InsecureSigner struct {
	id     int
	secret []byte
}

// InsecureDealer deals InsecureScheme instances keyed by a seed so that
// independent processes in one simulation agree on keys.
type InsecureDealer struct {
	Seed []byte
}

var _ Dealer = InsecureDealer{}

// Deal implements Dealer.
func (d InsecureDealer) Deal(k, n int) (Scheme, []Signer, error) {
	if k < 1 || n < 1 || k > n {
		return nil, nil, fmt.Errorf("threshsig: invalid threshold k=%d n=%d", k, n)
	}
	master := hmacSum(d.Seed, []byte(fmt.Sprintf("master/%d/%d", k, n)))
	scheme := &InsecureScheme{k: k, n: n, master: master}
	signers := make([]Signer, n)
	for i := 1; i <= n; i++ {
		signers[i-1] = &InsecureSigner{id: i, secret: scheme.signerSecret(i)}
	}
	return scheme, signers, nil
}

func (s *InsecureScheme) signerSecret(id int) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	return hmacSum(s.master, buf[:])
}

func hmacSum(key, msg []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return m.Sum(nil)
}

// ID implements Signer.
func (s *InsecureSigner) ID() int { return s.id }

// Sign implements Signer.
func (s *InsecureSigner) Sign(digest []byte) (Share, error) {
	return Share{Signer: s.id, Data: hmacSum(s.secret, digest)}, nil
}

var _ Scheme = (*InsecureScheme)(nil)

// Threshold implements Scheme.
func (s *InsecureScheme) Threshold() int { return s.k }

// N implements Scheme.
func (s *InsecureScheme) N() int { return s.n }

// VerifyShare implements Scheme.
func (s *InsecureScheme) VerifyShare(digest []byte, share Share) error {
	if share.Signer < 1 || share.Signer > s.n {
		return fmt.Errorf("%w: signer %d, n=%d", ErrBadSignerID, share.Signer, s.n)
	}
	want := hmacSum(s.signerSecret(share.Signer), digest)
	if !hmac.Equal(want, share.Data) {
		return fmt.Errorf("%w: signer %d", ErrInvalidShare, share.Signer)
	}
	return nil
}

// Combine implements Scheme.
func (s *InsecureScheme) Combine(digest []byte, shares []Share) (Signature, error) {
	sorted, err := CheckShares(s.k, s.n, shares)
	if err != nil {
		return Signature{}, err
	}
	for _, sh := range sorted {
		if err := s.VerifyShare(digest, sh); err != nil {
			return Signature{}, err
		}
	}
	return Signature{Data: s.combined(digest)}, nil
}

// CombineVerified implements Scheme: share validity is attested by the
// caller, so only the threshold bookkeeping runs.
func (s *InsecureScheme) CombineVerified(digest []byte, shares []Share) (Signature, error) {
	if _, err := CheckShares(s.k, s.n, shares); err != nil {
		return Signature{}, err
	}
	return Signature{Data: s.combined(digest)}, nil
}

// combined derives the canonical combined signature for a digest. It does
// not depend on which k shares were supplied, mirroring the uniqueness of
// BLS threshold signatures (any k shares interpolate to the same value).
func (s *InsecureScheme) combined(digest []byte) []byte {
	return hmacSum(s.master, append([]byte("combined/"), digest...))
}

// Verify implements Scheme.
func (s *InsecureScheme) Verify(digest []byte, sig Signature) error {
	if !hmac.Equal(s.combined(digest), sig.Data) {
		return ErrInvalidSignature
	}
	return nil
}
