package shard

import (
	"fmt"
	"time"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// Options configures a sharded KV deployment.
type Options struct {
	// Shards is the group count k (≥ 1).
	Shards int
	// F and C size every group (n = 3f+2c+1 each).
	F, C int
	// Lanes is the number of clients PER GROUP. A cross-shard coordinator
	// occupies the same lane index on every participant group, so Lanes
	// bounds the number of concurrent coordinators.
	Lanes int
	// Seed drives all randomness (per-group seeds derive from it).
	Seed int64
	// WAN gives each group the world-scale network model.
	WAN bool
	// Quantum is the lockstep step (0 = default).
	Quantum time.Duration
	// Batch overrides the per-group block batch size.
	Batch int
	// ClientTimeout overrides the client retry timeout.
	ClientTimeout time.Duration
	// WrapApp, when set, wraps each replica's application AFTER sharding
	// is enabled on its store (the chaos harness installs its execution
	// recorders here).
	WrapApp func(g, id int, app core.Application) core.Application
}

// Cluster is a running sharded deployment: a lockstep multi-group
// topology whose stores are partitioned, certificate-verifying 2PC
// participants.
type Cluster struct {
	Opts Options
	// Topo is the underlying k-group lockstep substrate.
	Topo *cluster.Sharded
	// Stores indexes every replica's partitioned store as [group][replica
	// id] (replica ids are 1-based; index 0 is nil). Captured before any
	// WrapApp layering, so auditors reach the real store.
	Stores [][]*kvstore.Store
	// Failovers counts completed coordinator recoveries (Recover calls
	// that drove an abandoned transaction to a decision).
	Failovers uint64

	pending [][]func(core.Result) // [group][lane] completion continuation
}

// New builds a sharded deployment of k SBFT groups over the KV app.
func New(opts Options) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", opts.Shards)
	}
	if opts.Lanes < 1 {
		opts.Lanes = 1
	}
	sc := &Cluster{Opts: opts}
	sc.Stores = make([][]*kvstore.Store, opts.Shards)
	verify := sc.certVerify // bound before Topo exists; only called during later execution
	topo, err := cluster.NewShardedCluster(cluster.ShardedOptions{
		Shards:  opts.Shards,
		WAN:     opts.WAN,
		Quantum: opts.Quantum,
		Base: cluster.Options{
			Protocol:      cluster.ProtoSBFT,
			F:             opts.F,
			C:             opts.C,
			App:           cluster.AppKV,
			Clients:       opts.Lanes,
			Seed:          opts.Seed,
			Batch:         opts.Batch,
			ClientTimeout: opts.ClientTimeout,
		},
		PerGroup: func(g int, o *cluster.Options) {
			o.WrapApp = func(id int, app core.Application) core.Application {
				if kv, ok := app.(*apps.KVApp); ok {
					kv.Store.EnableSharding(g, opts.Shards, verify)
					for len(sc.Stores[g]) <= id {
						sc.Stores[g] = append(sc.Stores[g], nil)
					}
					sc.Stores[g][id] = kv.Store
				}
				if opts.WrapApp != nil {
					app = opts.WrapApp(g, id, app)
				}
				return app
			}
		},
	})
	if err != nil {
		return nil, err
	}
	sc.Topo = topo

	// Lane dispatch: each client's completion routes to the continuation
	// registered by the submit that used it. Everything runs on the single
	// lockstep thread, so no locking.
	sc.pending = make([][]func(core.Result), opts.Shards)
	for g, cl := range topo.Groups {
		sc.pending[g] = make([]func(core.Result), len(cl.Clients))
		for lane, c := range cl.Clients {
			g, lane, c := g, lane, c
			c.SetOnResult(func(res core.Result) {
				cont := sc.pending[g][lane]
				sc.pending[g][lane] = nil
				if cont != nil {
					cont(res)
				}
			})
		}
	}
	return sc, nil
}

// certVerify is the hub's kvstore.CertVerifier: the commit rule every
// replica of every group applies to the OTHER groups' certificates. It
// decodes the alleged execute certificate, verifies it under the ISSUING
// group's π public key and proof verifier (each group has distinct
// threshold keys — a certificate from shard 2 cannot pass as shard 1
// evidence), checks it certifies a prepare of exactly this transaction,
// and classifies the certified result value.
func (sc *Cluster) certVerify(shard int, txid string, wantPrepared bool, cert []byte) error {
	if shard < 0 || shard >= len(sc.Topo.Groups) {
		return fmt.Errorf("shard: no such shard %d", shard)
	}
	ec, err := core.DecodeExecuteCert(cert)
	if err != nil {
		return err
	}
	suite := sc.Topo.Groups[shard].Suite
	if err := core.VerifyExecuteCert(suite.Pi, apps.VerifyKV, ec); err != nil {
		return err
	}
	op, err := kvstore.DecodeOp(ec.Op)
	if err != nil {
		return err
	}
	if op.Kind != kvstore.OpTxPrepare {
		return fmt.Errorf("shard: certificate is not over a prepare (kind %d)", op.Kind)
	}
	if op.Key != txid {
		return fmt.Errorf("shard: certificate binds tx %q, want %q", op.Key, txid)
	}
	if wantPrepared && !kvstore.PreparedVal(ec.Val) {
		return fmt.Errorf("shard: certified result %q is not commit evidence", ec.Val)
	}
	if !wantPrepared && !kvstore.RefusalVal(ec.Val) {
		return fmt.Errorf("shard: certified result %q is not a refusal", ec.Val)
	}
	return nil
}

// Submit sends op through group g's lane client and registers the
// completion continuation. The lane must be idle.
func (sc *Cluster) Submit(g, lane int, op []byte, cont func(core.Result)) error {
	if g < 0 || g >= len(sc.Topo.Groups) {
		return fmt.Errorf("shard: no such shard %d", g)
	}
	if lane < 0 || lane >= len(sc.pending[g]) {
		return fmt.Errorf("shard: no such lane %d", lane)
	}
	if sc.pending[g][lane] != nil {
		return fmt.Errorf("shard: lane %d busy on shard %d", lane, g)
	}
	sc.pending[g][lane] = cont
	if err := sc.Topo.Groups[g].Clients[lane].Submit(op); err != nil {
		sc.pending[g][lane] = nil
		return err
	}
	return nil
}

// Do runs a single operation on one shard synchronously (advancing the
// lockstep clock until it completes) and returns its result.
func (sc *Cluster) Do(g, lane int, op []byte, budget time.Duration) (core.Result, error) {
	var out *core.Result
	if err := sc.Submit(g, lane, op, func(res core.Result) { out = &res }); err != nil {
		return core.Result{}, err
	}
	if !sc.Topo.RunUntil(func() bool { return out != nil }, budget) {
		return core.Result{}, fmt.Errorf("shard: op on shard %d did not complete in %v", g, budget)
	}
	return *out, nil
}

// FrontierStore returns a store of group g holding the most advanced
// executed state (replicas may trail after faults; auditors want the
// frontier view).
func (sc *Cluster) FrontierStore(g int) *kvstore.Store {
	var best *kvstore.Store
	for _, st := range sc.Stores[g] {
		if st == nil {
			continue
		}
		if best == nil || st.LastExecuted() > best.LastExecuted() {
			best = st
		}
	}
	return best
}

// Metrics sums replica metrics across every group and overlays the
// deployment-level coordinator failover count.
func (sc *Cluster) Metrics() core.Metrics {
	var m core.Metrics
	for _, cl := range sc.Topo.Groups {
		gm := cl.Metrics()
		m.FastCommits += gm.FastCommits
		m.SlowCommits += gm.SlowCommits
		m.Executions += gm.Executions
		m.ViewChanges += gm.ViewChanges
		m.Checkpoints += gm.Checkpoints
		m.StateFetches += gm.StateFetches
		m.NullBlocks += gm.NullBlocks
		m.CollectorTimeouts += gm.CollectorTimeouts
		m.FastPathDowngrades += gm.FastPathDowngrades
		m.ExecFallbacks += gm.ExecFallbacks
		m.ViewRejoins += gm.ViewRejoins
		m.ReadsServed += gm.ReadsServed
		m.ReadsBehind += gm.ReadsBehind
		m.ReadsUnavailable += gm.ReadsUnavailable
		m.ReadBatches += gm.ReadBatches
		m.TxPrepares += gm.TxPrepares
		m.TxCommits += gm.TxCommits
		m.TxAborts += gm.TxAborts
	}
	m.TxCoordFailovers = sc.Failovers
	return m
}

// Close releases every group's resources.
func (sc *Cluster) Close() error { return sc.Topo.Close() }
