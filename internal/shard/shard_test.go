package shard

import (
	"fmt"
	"testing"
	"time"

	"sbft/internal/kvstore"
)

func newTestCluster(t *testing.T, shards, lanes int, seed int64) *Cluster {
	t.Helper()
	sc, err := New(Options{Shards: shards, F: 1, C: 0, Lanes: lanes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

// keyOn finds a key with the given prefix routing to shard g among k.
func keyOn(t *testing.T, prefix string, g, k int) string {
	t.Helper()
	for salt := 0; salt < 10000; salt++ {
		key := fmt.Sprintf("%s-%d", prefix, salt)
		if Route(key, k) == g {
			return key
		}
	}
	t.Fatalf("no %q key routes to shard %d/%d", prefix, g, k)
	return ""
}

// TestCrossShardCommit drives an honest two-shard transaction end to end
// and asserts the TxPrepares/TxCommits metrics went nonzero (the PR 10
// counter→test map entry for those counters).
func TestCrossShardCommit(t *testing.T) {
	sc := newTestCluster(t, 2, 1, 7)
	k0 := keyOn(t, "a", 0, 2)
	k1 := keyOn(t, "b", 1, 2)

	co := &Coordinator{SC: sc, Lane: 0, Mode: CoordHonest}
	out, err := co.RunTx(Tx{ID: "tx-commit-1", Writes: [][]byte{
		kvstore.Put(k0, []byte("v0")),
		kvstore.Put(k1, []byte("v1")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed {
		t.Fatalf("outcome not committed: %+v", out)
	}
	// Let execution settle on all replicas, then check both shards.
	sc.Topo.Run(2 * time.Second)
	for g, key, want := 0, k0, "v0"; g < 2; g, key, want = g+1, k1, "v1" {
		st := sc.FrontierStore(g)
		if v, _ := st.Value(key); string(v) != want {
			t.Fatalf("shard %d: %q=%q, want %q", g, key, v, want)
		}
		if locks := st.LockedKeys(); len(locks) != 0 {
			t.Fatalf("shard %d: locks leaked: %v", g, locks)
		}
		if got := st.TxState("tx-commit-1"); got != "committed" {
			t.Fatalf("shard %d: TxState=%q", g, got)
		}
	}
	m := sc.Metrics()
	if m.TxPrepares == 0 || m.TxCommits == 0 {
		t.Fatalf("tx metrics flat: prepares=%d commits=%d", m.TxPrepares, m.TxCommits)
	}
}

// TestCrossShardConflictAborts pins the abort path: a transaction that
// loses a lock race aborts EVERYWHERE on the refusing shard's evidence,
// and the TxAborts metric goes nonzero (counter→test map entry).
func TestCrossShardConflictAborts(t *testing.T) {
	sc := newTestCluster(t, 2, 2, 11)
	k0 := keyOn(t, "c", 0, 2)
	k1 := keyOn(t, "d", 1, 2)

	// tx1 prepares on shard 0 and crashes, holding k0's lock.
	crash := &Coordinator{SC: sc, Lane: 0, Mode: CoordCrash}
	tx1 := Tx{ID: "tx-holder", Writes: [][]byte{kvstore.Put(k0, []byte("held"))}}
	out1, err := crash.RunTx(tx1)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Pending {
		t.Fatalf("crash coordinator decided: %+v", out1)
	}

	// tx2 wants k0 too: shard 0 refuses, and the refusal certificate
	// aborts tx2 on shard 1 as well.
	honest := &Coordinator{SC: sc, Lane: 1, Mode: CoordHonest}
	out2, err := honest.RunTx(Tx{ID: "tx-loser", Writes: [][]byte{
		kvstore.Put(k0, []byte("x")),
		kvstore.Put(k1, []byte("y")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Aborted {
		t.Fatalf("conflicting tx not aborted: %+v", out2)
	}
	sc.Topo.Run(2 * time.Second)
	if v, found := sc.FrontierStore(1).Value(k1); found {
		t.Fatalf("aborted write applied on shard 1: %q", v)
	}
	if got := sc.FrontierStore(1).TxState("tx-loser"); got != "aborted" {
		t.Fatalf("shard 1 TxState(tx-loser)=%q", got)
	}
	if m := sc.Metrics(); m.TxAborts == 0 {
		t.Fatal("TxAborts metric flat after abort")
	}

	// Recovery finishes the abandoned holder transaction.
	if out, err := crash.Recover(tx1); err != nil || !out.Committed {
		t.Fatalf("recovery: out=%+v err=%v", out, err)
	}
	sc.Topo.Run(2 * time.Second)
	if v, _ := sc.FrontierStore(0).Value(k0); string(v) != "held" {
		t.Fatalf("recovered commit missing: %q", v)
	}
}

// TestByzantineCoordinatorEquivocation is the PR 10 acceptance-criteria
// test: a Byzantine coordinator sends commit to shard A and a forged
// abort to shard B for the SAME transaction. B's commit rule rejects the
// forged evidence (the "refusal" certificate actually certifies
// PREPARED), B stays prepared rather than diverging, and a recovery
// coordinator converges BOTH shards to committed.
func TestByzantineCoordinatorEquivocation(t *testing.T) {
	sc := newTestCluster(t, 2, 2, 13)
	k0 := keyOn(t, "e", 0, 2)
	k1 := keyOn(t, "f", 1, 2)

	byz := &Coordinator{SC: sc, Lane: 0, Mode: CoordEquivocate}
	tx := Tx{ID: "tx-equiv", Writes: [][]byte{
		kvstore.Put(k0, []byte("p")),
		kvstore.Put(k1, []byte("q")),
	}}
	out, err := byz.RunTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed || out.Aborted {
		t.Fatalf("equivocator reached a clean decision: %+v", out)
	}
	first, second := out.Parts[0], out.Parts[1]
	if out.Vals[first] != kvstore.TxCommitted {
		t.Fatalf("shard %d (real commit): %q", first, out.Vals[first])
	}
	if out.Vals[second] != "ERR:bad-cert" {
		t.Fatalf("shard %d accepted forged refusal: %q", second, out.Vals[second])
	}
	sc.Topo.Run(2 * time.Second)
	if got := sc.FrontierStore(first).TxState("tx-equiv"); got != "committed" {
		t.Fatalf("shard %d TxState=%q", first, got)
	}
	if got := sc.FrontierStore(second).TxState("tx-equiv"); got != "prepared" {
		t.Fatalf("shard %d TxState=%q, want prepared (forged abort rejected)", second, got)
	}

	// Recovery converges both shards to COMMITTED — no all-or-nothing
	// violation survives the attack.
	rec := &Coordinator{SC: sc, Lane: 1, Mode: CoordHonest}
	rout, err := rec.Recover(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !rout.Committed {
		t.Fatalf("recovery did not converge to commit: %+v", rout)
	}
	sc.Topo.Run(2 * time.Second)
	for g, key, want := 0, k0, "p"; g < 2; g, key, want = g+1, k1, "q" {
		st := sc.FrontierStore(g)
		if got := st.TxState("tx-equiv"); got != "committed" {
			t.Fatalf("shard %d TxState=%q after recovery", g, got)
		}
		if v, _ := st.Value(key); string(v) != want {
			t.Fatalf("shard %d: %q=%q, want %q", g, key, v, want)
		}
		if locks := st.LockedKeys(); len(locks) != 0 {
			t.Fatalf("shard %d locks leaked: %v", g, locks)
		}
	}
}

// TestCoordinatorCrashFailover pins the recovery metric: a crashed
// coordinator leaves shards prepared; recovery commits and counts a
// failover (counter→test map entry for TxCoordFailovers).
func TestCoordinatorCrashFailover(t *testing.T) {
	sc := newTestCluster(t, 2, 1, 17)
	k0 := keyOn(t, "g", 0, 2)
	k1 := keyOn(t, "h", 1, 2)
	tx := Tx{ID: "tx-crash", Writes: [][]byte{
		kvstore.Put(k0, []byte("1")),
		kvstore.Put(k1, []byte("2")),
	}}
	co := &Coordinator{SC: sc, Lane: 0, Mode: CoordCrash}
	out, err := co.RunTx(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pending {
		t.Fatalf("crash mode decided: %+v", out)
	}
	sc.Topo.Run(time.Second)
	if got := sc.FrontierStore(0).TxState("tx-crash"); got != "prepared" {
		t.Fatalf("shard 0 TxState=%q, want prepared", got)
	}
	rout, err := co.Recover(tx)
	if err != nil || !rout.Committed {
		t.Fatalf("recovery: out=%+v err=%v", rout, err)
	}
	if m := sc.Metrics(); m.TxCoordFailovers == 0 {
		t.Fatal("TxCoordFailovers metric flat after recovery")
	}
}

// TestDropCertRefetch exercises the idempotent re-prepare refetch: the
// coordinator loses a certificate and must re-earn it before committing.
func TestDropCertRefetch(t *testing.T) {
	sc := newTestCluster(t, 2, 1, 19)
	k0 := keyOn(t, "i", 0, 2)
	k1 := keyOn(t, "j", 1, 2)
	co := &Coordinator{SC: sc, Lane: 0, Mode: CoordDropCert}
	out, err := co.RunTx(Tx{ID: "tx-drop", Writes: [][]byte{
		kvstore.Put(k0, []byte("1")),
		kvstore.Put(k1, []byte("2")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed {
		t.Fatalf("drop-cert tx not committed: %+v", out)
	}
}

// TestSingleShardOpsRespectPartition drives plain operations through the
// sharded deployment: owned keys succeed, foreign keys are refused by
// the replicas themselves.
func TestSingleShardOpsRespectPartition(t *testing.T) {
	sc := newTestCluster(t, 2, 1, 23)
	k0 := keyOn(t, "s", 0, 2)

	res, err := sc.Do(0, 0, kvstore.Put(k0, []byte("v")), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Val) != "OK" {
		t.Fatalf("owned put: %q", res.Val)
	}
	res, err = sc.Do(1, 0, kvstore.Put(k0, []byte("v")), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Val) != "ERR:wrong-shard" {
		t.Fatalf("foreign put: %q", res.Val)
	}
}

// TestRouterEdgeCases covers the routing pathologies: a k→k+1 boundary
// re-routes keys deterministically, a transaction whose writes all land
// on one shard has a single participant (the other shard is empty), and
// naming the same shard through multiple writes collapses to one
// participation.
func TestRouterEdgeCases(t *testing.T) {
	// k→k+1 boundary: routes stay in range and are pure functions.
	moved := 0
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("bnd-%d", i)
		r2, r3 := Route(key, 2), Route(key, 3)
		if r2 < 0 || r2 > 1 || r3 < 0 || r3 > 2 {
			t.Fatalf("route out of range: %q → %d/%d", key, r2, r3)
		}
		if r2 != Route(key, 2) || r3 != Route(key, 3) {
			t.Fatalf("routing unstable for %q", key)
		}
		if r2 != r3 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("k=2→k=3 moved no keys at all (suspicious bucketing)")
	}

	// All writes on one shard: the split leaves the other shard empty
	// and the participant list is a singleton.
	a := keyOn(t, "one", 0, 2)
	b := keyOn(t, "two", 0, 2)
	split, err := SplitWrites([][]byte{kvstore.Put(a, nil), kvstore.Put(b, nil), kvstore.Delete(a)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 1 || len(split[0]) != 3 {
		t.Fatalf("single-shard split: %v", split)
	}
	if parts := Participants(split); len(parts) != 1 || parts[0] != 0 {
		t.Fatalf("participants: %v", parts)
	}

	// Non-write ops are rejected at split time.
	if _, err := SplitWrites([][]byte{kvstore.Get(a)}, 2); err == nil {
		t.Fatal("SplitWrites accepted a read")
	}
	if _, err := SplitWrites([][]byte{{0xff}}, 2); err == nil {
		t.Fatal("SplitWrites accepted garbage")
	}
}

// TestSingleParticipantTx commits a cross-shard-capable transaction that
// happens to touch one shard — the degenerate 2PC with no foreign
// certificates.
func TestSingleParticipantTx(t *testing.T) {
	sc := newTestCluster(t, 2, 1, 29)
	a := keyOn(t, "solo", 1, 2)
	co := &Coordinator{SC: sc, Lane: 0, Mode: CoordHonest}
	out, err := co.RunTx(Tx{ID: "tx-solo", Writes: [][]byte{kvstore.Put(a, []byte("v"))}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed || len(out.Parts) != 1 || out.Parts[0] != 1 {
		t.Fatalf("single-participant outcome: %+v", out)
	}
	sc.Topo.Run(2 * time.Second)
	if v, _ := sc.FrontierStore(1).Value(a); string(v) != "v" {
		t.Fatalf("write missing: %q", v)
	}
}
