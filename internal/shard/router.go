// Package shard implements sharded multi-group SBFT (ROADMAP item 5):
// k independent SBFT groups partition the keyspace by deterministic key
// routing, single-shard operations run entirely inside one group, and
// cross-shard transactions commit atomically through proof-carrying
// two-phase commit — an UNTRUSTED coordinator ferries π-certified
// execute certificates between groups, and each group's replicated
// commit rule verifies the other groups' certificates before applying
// (kvstore/tx.go holds the per-shard state machine; this package holds
// the routing, the certificate hub and the coordinator driving it).
package shard

import (
	"fmt"
	"sort"

	"sbft/internal/kvstore"
)

// Route returns the owning shard of a key among k groups — the same
// FNV-1a bucketing the snapshot codec uses, shared verbatim by clients,
// coordinators and every replica's partition check.
func Route(key string, shards int) int { return kvstore.RouteKey(key, shards) }

// SplitWrites partitions encoded writes (kvstore Put/Delete ops) by
// owning shard. Order within each shard is preserved.
func SplitWrites(writes [][]byte, shards int) (map[int][][]byte, error) {
	out := make(map[int][][]byte)
	for _, w := range writes {
		op, err := kvstore.DecodeOp(w)
		if err != nil {
			return nil, fmt.Errorf("shard: bad write: %w", err)
		}
		if op.Kind != kvstore.OpPut && op.Kind != kvstore.OpDelete {
			return nil, fmt.Errorf("shard: write kind %d is not Put/Delete", op.Kind)
		}
		g := Route(op.Key, shards)
		out[g] = append(out[g], w)
	}
	return out, nil
}

// Participants lists a split's shards in canonical (sorted) order — the
// participant set carried in every prepare.
func Participants(split map[int][][]byte) []int {
	parts := make([]int, 0, len(split))
	for g := range split {
		parts = append(parts, g)
	}
	sort.Ints(parts)
	return parts
}
