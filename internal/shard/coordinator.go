package shard

import (
	"fmt"
	"time"

	"sbft/internal/core"
	"sbft/internal/kvstore"
)

// CoordMode selects the coordinator's behavior. The protocol is designed
// for UNTRUSTED coordinators: the faulty modes exist to prove the shards
// hold atomicity on their own.
type CoordMode int

// Coordinator behaviors.
const (
	// CoordHonest drives prepare → commit/abort to completion.
	CoordHonest CoordMode = iota
	// CoordCrash vanishes after the prepare phase: every shard is left
	// prepared with locks held until a recovery coordinator finishes the
	// transaction.
	CoordCrash
	// CoordEquivocate commits on the lowest participant shard with real
	// certificates, then tries to ABORT on the others using the first
	// shard's PREPARED certificate as fake refusal evidence. The abort
	// must fail certificate verification on every honest shard.
	CoordEquivocate
	// CoordDropCert loses a prepare certificate and must refetch it via
	// an idempotent re-prepare before committing (the §V-A fast path is
	// not guaranteed to yield a certificate on every completion).
	CoordDropCert
)

// Tx is one cross-shard transaction: encoded kvstore Put/Delete writes
// spanning any subset of shards, committed all-or-nothing.
type Tx struct {
	ID     string
	Writes [][]byte
}

// TxOutcome reports what a coordinator run achieved.
type TxOutcome struct {
	TxID  string
	Parts []int
	// Vals is the last response value observed per participant shard.
	Vals map[int]string
	// Committed: every participant answered COMMITTED.
	Committed bool
	// Aborted: every contacted participant answered ABORTED.
	Aborted bool
	// Pending: the coordinator stopped without driving a decision
	// everywhere (crashed, equivocated, or stuck) — recovery territory.
	Pending bool
	// Recovered: this outcome came from a recovery run.
	Recovered bool
}

// Coordinator drives cross-shard transactions over one lane of a
// sharded cluster.
type Coordinator struct {
	SC   *Cluster
	Lane int
	Mode CoordMode
	// Budget bounds each synchronous run's virtual time (0 = 30s).
	Budget time.Duration
}

// maxRefetches bounds certificate refetch attempts per shard.
const maxRefetches = 4

// txRun is one in-flight coordination attempt.
type txRun struct {
	c         *Coordinator
	tx        Tx
	parts     []int
	prepOps   map[int][]byte // canonical prepare op per shard (refetch resubmits these)
	certs     map[int][]byte
	vals      map[int]string
	refetches map[int]int
	waiting   int
	recovered bool
	done      func(TxOutcome)
}

// Start launches the transaction asynchronously; done fires exactly once
// when this coordinator stops (decision reached, crash point, or stuck).
func (c *Coordinator) Start(tx Tx, done func(TxOutcome)) error {
	split, err := SplitWrites(tx.Writes, c.SC.Opts.Shards)
	if err != nil {
		return err
	}
	if len(split) == 0 {
		return fmt.Errorf("shard: transaction %q has no writes", tx.ID)
	}
	r := &txRun{
		c:         c,
		tx:        tx,
		parts:     Participants(split),
		prepOps:   make(map[int][]byte),
		certs:     make(map[int][]byte),
		vals:      make(map[int]string),
		refetches: make(map[int]int),
		done:      done,
	}
	for _, p := range r.parts {
		r.prepOps[p] = kvstore.TxPrepare(tx.ID, r.parts, split[p]...)
	}
	r.waiting = len(r.parts)
	for _, p := range r.parts {
		p := p
		if err := c.SC.Submit(p, c.Lane, r.prepOps[p], func(res core.Result) { r.onPrepare(p, res) }); err != nil {
			return err
		}
	}
	return nil
}

// RunTx drives the transaction synchronously, advancing the lockstep
// clock until the coordinator stops.
func (c *Coordinator) RunTx(tx Tx) (TxOutcome, error) {
	budget := c.Budget
	if budget <= 0 {
		budget = 30 * time.Second
	}
	var out *TxOutcome
	if err := c.Start(tx, func(o TxOutcome) { out = &o }); err != nil {
		return TxOutcome{}, err
	}
	if !c.SC.Topo.RunUntil(func() bool { return out != nil }, budget) {
		return TxOutcome{}, fmt.Errorf("shard: tx %q did not settle in %v", tx.ID, budget)
	}
	return *out, nil
}

// Recover re-drives an abandoned transaction honestly: idempotent
// re-prepares everywhere refetch the evidence, then the evidence class
// decides commit or abort — the same code path an original coordinator
// takes, which is the point: ANY party holding the transaction can
// finish it. A completed recovery counts as a coordinator failover.
func (c *Coordinator) Recover(tx Tx) (TxOutcome, error) {
	rec := &Coordinator{SC: c.SC, Lane: c.Lane, Mode: CoordHonest, Budget: c.Budget}
	budget := rec.Budget
	if budget <= 0 {
		budget = 30 * time.Second
	}
	var out *TxOutcome
	err := rec.startRecovery(tx, func(o TxOutcome) { out = &o })
	if err != nil {
		return TxOutcome{}, err
	}
	if !c.SC.Topo.RunUntil(func() bool { return out != nil }, budget) {
		return TxOutcome{}, fmt.Errorf("shard: recovery of %q did not settle in %v", tx.ID, budget)
	}
	if out.Committed || out.Aborted {
		c.SC.Failovers++
	}
	return *out, nil
}

func (c *Coordinator) startRecovery(tx Tx, done func(TxOutcome)) error {
	return c.Start(tx, func(o TxOutcome) {
		o.Recovered = true
		done(o)
	})
}

// onPrepare collects one shard's prepare response.
func (r *txRun) onPrepare(p int, res core.Result) {
	r.vals[p] = string(res.Val)
	if res.Cert != nil {
		if enc, err := res.Cert.Encode(); err == nil {
			r.certs[p] = enc
		}
	}
	r.waiting--
	if r.waiting == 0 {
		r.classify()
	}
}

// classify routes the collected prepare evidence to phase two.
func (r *txRun) classify() {
	// Any refusal aborts the transaction everywhere.
	for _, p := range r.parts {
		if kvstore.RefusalVal([]byte(r.vals[p])) {
			r.ensureCert(p, func() { r.abortAll(p) })
			return
		}
	}
	// Anything that is neither refusal nor acceptance (ERR responses)
	// means this coordinator cannot assemble evidence: stop, leave
	// recovery to finish the job.
	for _, p := range r.parts {
		if !kvstore.PreparedVal([]byte(r.vals[p])) {
			r.finish(TxOutcome{Pending: true})
			return
		}
	}
	// All prepared: make sure every certificate is in hand, then commit.
	switch r.c.Mode {
	case CoordCrash:
		r.finish(TxOutcome{Pending: true})
	case CoordEquivocate:
		r.ensureAllCerts(r.equivocate)
	case CoordDropCert:
		// Lose the first shard's certificate on purpose; the refetch path
		// must reconstruct it through an idempotent re-prepare.
		delete(r.certs, r.parts[0])
		r.ensureAllCerts(r.commitAll)
	default:
		r.ensureAllCerts(r.commitAll)
	}
}

// ensureCert refetches shard p's certificate (by resubmitting the
// identical prepare under a fresh client timestamp — replicas re-execute
// and the idempotent prepare re-certifies the same answer) until one is
// in hand or attempts run out.
func (r *txRun) ensureCert(p int, then func()) {
	if r.certs[p] != nil {
		then()
		return
	}
	if r.refetches[p] >= maxRefetches {
		r.finish(TxOutcome{Pending: true})
		return
	}
	r.refetches[p]++
	err := r.c.SC.Submit(p, r.c.Lane, r.prepOps[p], func(res core.Result) {
		r.vals[p] = string(res.Val)
		if res.Cert != nil {
			if enc, err := res.Cert.Encode(); err == nil {
				r.certs[p] = enc
			}
		}
		r.ensureCert(p, then)
	})
	if err != nil {
		r.finish(TxOutcome{Pending: true})
	}
}

// ensureAllCerts chains ensureCert across every participant.
func (r *txRun) ensureAllCerts(then func()) {
	missing := -1
	for _, p := range r.parts {
		if r.certs[p] == nil {
			missing = p
			break
		}
	}
	if missing < 0 {
		then()
		return
	}
	r.ensureCert(missing, func() { r.ensureAllCerts(then) })
}

// commitAll sends each participant the OTHER participants' certificates.
func (r *txRun) commitAll() {
	r.waiting = len(r.parts)
	for _, p := range r.parts {
		p := p
		certs := make(map[int][]byte, len(r.parts)-1)
		for _, q := range r.parts {
			if q != p {
				certs[q] = r.certs[q]
			}
		}
		op := kvstore.TxCommit(r.tx.ID, certs)
		if err := r.c.SC.Submit(p, r.c.Lane, op, func(res core.Result) { r.onDecide(p, res) }); err != nil {
			r.finish(TxOutcome{Pending: true})
			return
		}
	}
}

// abortAll spreads shard `refuser`'s refusal certificate everywhere else.
func (r *txRun) abortAll(refuser int) {
	targets := make([]int, 0, len(r.parts))
	for _, p := range r.parts {
		if p != refuser {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		r.finish(TxOutcome{Aborted: true})
		return
	}
	r.waiting = len(targets)
	op := kvstore.TxAbort(r.tx.ID, refuser, r.certs[refuser])
	for _, p := range targets {
		p := p
		if err := r.c.SC.Submit(p, r.c.Lane, op, func(res core.Result) { r.onDecide(p, res) }); err != nil {
			r.finish(TxOutcome{Pending: true})
			return
		}
	}
}

// equivocate is the Byzantine-coordinator attack: a real commit on the
// first shard, a forged abort on the rest.
func (r *txRun) equivocate() {
	first, rest := r.parts[0], r.parts[1:]
	r.waiting = len(r.parts)
	certs := make(map[int][]byte, len(rest))
	for _, q := range rest {
		certs[q] = r.certs[q]
	}
	commit := kvstore.TxCommit(r.tx.ID, certs)
	if err := r.c.SC.Submit(first, r.c.Lane, commit, func(res core.Result) { r.onEquivocateReply(first, res) }); err != nil {
		r.finish(TxOutcome{Pending: true})
		return
	}
	// The "refusal" evidence is first's PREPARED certificate — a real,
	// verifiable certificate of the WRONG evidence class. Honest shards
	// must answer ERR:bad-cert and stay prepared.
	forged := kvstore.TxAbort(r.tx.ID, first, r.certs[first])
	for _, p := range rest {
		p := p
		if err := r.c.SC.Submit(p, r.c.Lane, forged, func(res core.Result) { r.onEquivocateReply(p, res) }); err != nil {
			r.finish(TxOutcome{Pending: true})
			return
		}
	}
}

func (r *txRun) onEquivocateReply(p int, res core.Result) {
	r.vals[p] = string(res.Val)
	r.waiting--
	if r.waiting == 0 {
		// The equivocator never reaches a clean decision: at best it
		// committed one shard and left the rest prepared.
		r.finish(TxOutcome{Pending: true})
	}
}

// onDecide collects phase-two responses.
func (r *txRun) onDecide(p int, res core.Result) {
	r.vals[p] = string(res.Val)
	r.waiting--
	if r.waiting > 0 {
		return
	}
	committed, aborted := true, true
	for _, q := range r.parts {
		if r.vals[q] != kvstore.TxCommitted {
			committed = false
		}
		if r.vals[q] != kvstore.TxAborted && !kvstore.RefusalVal([]byte(r.vals[q])) {
			aborted = false
		}
	}
	r.finish(TxOutcome{Committed: committed, Aborted: aborted, Pending: !committed && !aborted})
}

// finish emits the outcome exactly once.
func (r *txRun) finish(out TxOutcome) {
	if r.done == nil {
		return
	}
	out.TxID = r.tx.ID
	out.Parts = r.parts
	out.Vals = r.vals
	done := r.done
	r.done = nil
	done(out)
}
