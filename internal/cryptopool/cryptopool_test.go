package cryptopool

import (
	"sync"
	"testing"

	"sbft/internal/core"
	"sbft/internal/crypto/threshbls"
	"sbft/internal/crypto/threshsig"
)

// loopback emulates the replica event loop: a mutex stands in for the
// single-threaded shell, and the race detector checks that completions
// never touch shared state concurrently with the "loop".
type loopback struct {
	mu   sync.Mutex
	done chan func()
}

func newLoopback() *loopback { return &loopback{done: make(chan func(), 256)} }

func (l *loopback) do(fn func()) { l.done <- fn }

// drain runs queued completions on the test's "event loop" until n ran.
func (l *loopback) drain(n int) {
	for i := 0; i < n; i++ {
		fn := <-l.done
		l.mu.Lock()
		fn()
		l.mu.Unlock()
	}
}

func testSuite(t *testing.T) (core.CryptoSuite, []core.ReplicaKeys, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig(1, 0)
	suite, keys, err := core.DealSuite(cfg, threshbls.Dealer{})
	if err != nil {
		t.Fatal(err)
	}
	return suite, keys, cfg
}

func TestPoolVerifiesCombinesAndBlames(t *testing.T) {
	suite, keys, cfg := testSuite(t)
	lb := newLoopback()
	p := New(suite, 4, lb.do)
	defer p.Close()

	digest := []byte("pool-digest")
	var shares []threshsig.Share
	for i := 0; i < cfg.QuorumSlow(); i++ {
		sh, err := keys[i].Tau.Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	poisoned := append([]threshsig.Share(nil), shares...)
	poisoned[1] = threshsig.Share{Signer: shares[1].Signer, Data: []byte("junk")}

	var verified [][]threshsig.Share
	p.VerifyShares([]core.VerifyJob{
		{Kind: core.ShareTau, Digest: digest, Shares: shares},
		{Kind: core.ShareTau, Digest: digest, Shares: poisoned},
	}, func(ok [][]threshsig.Share) { verified = ok })
	lb.drain(1)
	if len(verified) != 2 || len(verified[0]) != len(shares) || len(verified[1]) != len(shares)-1 {
		t.Fatalf("verified = %v jobs, want clean %d and blamed %d", len(verified), len(shares), len(shares)-1)
	}

	var sig threshsig.Signature
	var combineErr error
	p.Combine(core.ShareTau, digest, verified[0], func(s threshsig.Signature, err error) {
		sig, combineErr = s, err
	})
	lb.drain(1)
	if combineErr != nil {
		t.Fatal(combineErr)
	}
	if err := suite.Tau.Verify(digest, sig); err != nil {
		t.Fatalf("combined signature does not verify: %v", err)
	}
}

func TestPoolParallelSubmissions(t *testing.T) {
	// Many verify jobs in flight at once across 4 workers — the -race CI
	// run is the point: completions and worker reads must not conflict.
	suite, keys, _ := testSuite(t)
	lb := newLoopback()
	p := New(suite, 4, lb.do)
	defer p.Close()

	const jobs = 32
	digest := []byte("parallel-digest")
	sh, err := keys[0].Tau.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for i := 0; i < jobs; i++ {
		p.VerifyShares([]core.VerifyJob{{Kind: core.ShareTau, Digest: digest, Shares: []threshsig.Share{sh}}},
			func(ok [][]threshsig.Share) {
				if len(ok[0]) == 1 {
					okCount++
				}
			})
	}
	// A burst past the queue depth completes partly inline (the
	// saturation fallback, on this goroutine) and partly via lb.done —
	// drain until every completion has landed.
	for okCount < jobs {
		fn := <-lb.done
		lb.mu.Lock()
		fn()
		lb.mu.Unlock()
	}
}

func TestPoolClosedFallsBackInline(t *testing.T) {
	suite, keys, _ := testSuite(t)
	lb := newLoopback()
	p := New(suite, 2, lb.do)
	p.Close()

	digest := []byte("after-close")
	sh, err := keys[0].Tau.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	// After Close the call must still complete — synchronously, per the
	// sink contract's inline allowance — not deadlock or drop.
	p.VerifyShares([]core.VerifyJob{{Kind: core.ShareTau, Digest: digest, Shares: []threshsig.Share{sh}}},
		func(ok [][]threshsig.Share) { called = len(ok[0]) == 1 })
	if !called {
		t.Fatal("closed pool did not verify inline")
	}
}
