// Package cryptopool provides the deployment-side core.CryptoSink: a
// bounded pool of worker goroutines that verifies threshold-signature
// shares and combines certificates off the replica's event loop. This is
// the real-threads counterpart of the simulated cluster's deterministic
// virtual-time pool — same sink contract, same VerifyJobShares policy
// (RLC batch verification with per-share blame fallback), so behavior
// proven under the seeded chaos sweeps carries over to the TCP
// deployment unchanged.
package cryptopool

import (
	"sync"

	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
)

// Pool is a fixed-width crypto worker pool implementing core.CryptoSink.
// Completions are routed back onto the replica's event loop through the
// do callback (transport.Shell.Do in sbft-node), per the sink contract.
type Pool struct {
	suite core.CryptoSuite
	do    func(func())
	jobs  chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// New starts a pool of `workers` goroutines. do must serialize its
// argument onto the replica's event-loop thread.
func New(suite core.CryptoSuite, workers int, do func(func())) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{suite: suite, do: do, jobs: make(chan func(), 4*workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.loop()
	}
	return p
}

func (p *Pool) loop() {
	defer p.wg.Done()
	for fn := range p.jobs {
		fn()
	}
}

// submit enqueues work without blocking; false means saturated or
// closed.
func (p *Pool) submit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- fn:
		return true
	default:
		return false
	}
}

// VerifyShares implements core.CryptoSink. Unlike a skippable snapshot,
// crypto work is never optional: when the pool is saturated or closed
// the job runs inline on the caller (the event loop), which the sink
// contract explicitly allows — saturation degrades to the synchronous
// baseline instead of dropping quorum progress.
func (p *Pool) VerifyShares(jobs []core.VerifyJob, done func(ok [][]threshsig.Share)) {
	run := func() [][]threshsig.Share {
		ok := make([][]threshsig.Share, len(jobs))
		for i, j := range jobs {
			ok[i] = core.VerifyJobShares(p.suite, j)
		}
		return ok
	}
	if !p.submit(func() {
		ok := run()
		p.do(func() { done(ok) })
	}) {
		done(run())
	}
}

// Combine implements core.CryptoSink, with the same inline fallback.
func (p *Pool) Combine(kind core.ShareKind, digest []byte, shares []threshsig.Share, done func(sig threshsig.Signature, err error)) {
	scheme := core.SchemeFor(p.suite, kind)
	if !p.submit(func() {
		sig, err := scheme.CombineVerified(digest, shares)
		p.do(func() { done(sig, err) })
	}) {
		sig, err := scheme.CombineVerified(digest, shares)
		done(sig, err)
	}
}

// Close drains queued work and stops the workers; further calls fall
// back to inline execution. Close the pool before the shell it routes
// completions through.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
