package core

import (
	"testing"

	"sbft/internal/crypto/threshsig"
)

// Table-driven tests for the §V-G safe-value computation under
// CONFLICTING (equivocated) and forged certificate evidence: a Byzantine
// replica's view-change message may carry certificates whose signatures
// cover a different block than the requests it claims, stolen σ shares,
// or plain garbage. The computation must reject every mismatched-digest
// component individually while still honoring the valid evidence next to
// it — otherwise an equivocating primary's leftovers could resurrect a
// conflicting block across a view change.
func TestSafeValueRejectsEquivocatedEvidence(t *testing.T) {
	f := newVCFixture(t)
	reqsA, reqsB := f.reqs("A"), f.reqs("B")

	cases := []struct {
		name string
		vcs  func(t *testing.T) []ViewChangeMsg
		// wantDecided / wantOp describe the expected slot-1 decision;
		// wantOp "" means a null block.
		wantDecided bool
		wantOp      string
	}{
		{
			// τ(τ(h)) chain valid for block A, but the slot claims the
			// certificate decided block B.
			name: "slow cert over different block than claimed",
			vcs: func(t *testing.T) []ViewChangeMsg {
				inner := f.prepareCert(t, 1, 0, reqsA)
				outer := f.slowCert(t, inner)
				return []ViewChangeMsg{vcMsg(1, SlotInfo{
					Seq: 1, HasCommitProofSlow: true,
					Tau: inner, TauTau: outer, SlowView: 0, SlowReqs: reqsB,
				}), vcMsg(2), vcMsg(3)}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// Valid inner prepare certificate, garbage outer certificate.
			name: "slow cert with forged outer tau-tau",
			vcs: func(t *testing.T) []ViewChangeMsg {
				inner := f.prepareCert(t, 1, 0, reqsA)
				return []ViewChangeMsg{vcMsg(1, SlotInfo{
					Seq: 1, HasCommitProofSlow: true,
					Tau: inner, TauTau: threshsig.Signature{Data: []byte("forged")},
					SlowView: 0, SlowReqs: reqsA,
				}), vcMsg(2), vcMsg(3)}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// σ(h) valid for A, slot claims it decided B.
			name: "fast cert over different block than claimed",
			vcs: func(t *testing.T) []ViewChangeMsg {
				sig := f.fastCert(t, 1, 0, reqsA)
				return []ViewChangeMsg{vcMsg(1, SlotInfo{
					Seq: 1, HasCommitProof: true, Sigma: sig, FastView: 0, FastReqs: reqsB,
				}), vcMsg(2), vcMsg(3)}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// An equivocated prepare: certificate signs block A, slot
			// claims it prepared block B. Must not adopt B (or A — the
			// claim is what is adopted, and it is unproven).
			name: "prepare cert over different block than claimed",
			vcs: func(t *testing.T) []ViewChangeMsg {
				tau := f.prepareCert(t, 1, 0, reqsA)
				return []ViewChangeMsg{vcMsg(1, SlotInfo{
					Seq: 1, HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: reqsB,
				}), vcMsg(2), vcMsg(3)}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// A forged high-view prepare must not outrank a genuine
			// low-view one.
			name: "forged higher-view prepare loses to valid prepare",
			vcs: func(t *testing.T) []ViewChangeMsg {
				tau := f.prepareCert(t, 1, 0, reqsA)
				return []ViewChangeMsg{
					vcMsg(1, SlotInfo{
						Seq: 1, HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: reqsA,
					}),
					vcMsg(2, SlotInfo{
						Seq: 1, HasPrepare: true,
						PrepareTau:  threshsig.Signature{Data: []byte("forged")},
						PrepareView: 7, PrepareReqs: reqsB,
					}),
					vcMsg(3),
				}
			},
			wantDecided: false, wantOp: "A",
		},
		{
			// A stolen σ share: replica 2's message carries replica 1's
			// share. Signer/sender mismatch must void it, so the fast
			// value never reaches f+c+1 = 2 distinct backers.
			name: "stolen sigma share does not count toward fast value",
			vcs: func(t *testing.T) []ViewChangeMsg {
				return []ViewChangeMsg{
					vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
						SigmaShare: f.sigmaShare(t, 1, 1, 0, reqsA), PrePrepareView: 0, PrePrepareReqs: reqsA}),
					vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
						SigmaShare: f.sigmaShare(t, 1, 1, 0, reqsA), PrePrepareView: 0, PrePrepareReqs: reqsA}),
					vcMsg(3),
				}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// σ share signed over block A attached to a claim of block B.
			name: "sigma share over different block than claimed",
			vcs: func(t *testing.T) []ViewChangeMsg {
				return []ViewChangeMsg{
					vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
						SigmaShare: f.sigmaShare(t, 1, 1, 0, reqsA), PrePrepareView: 0, PrePrepareReqs: reqsB}),
					vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
						SigmaShare: f.sigmaShare(t, 2, 1, 0, reqsB), PrePrepareView: 0, PrePrepareReqs: reqsB}),
					vcMsg(3),
				}
			},
			wantDecided: false, wantOp: "",
		},
		{
			// The honest majority's evidence must survive a Byzantine
			// slot full of garbage in the same message set.
			name: "garbage evidence next to a valid slow cert",
			vcs: func(t *testing.T) []ViewChangeMsg {
				inner := f.prepareCert(t, 1, 0, reqsA)
				outer := f.slowCert(t, inner)
				return []ViewChangeMsg{
					vcMsg(1, SlotInfo{
						Seq: 1, HasCommitProofSlow: true,
						Tau: inner, TauTau: outer, SlowView: 0, SlowReqs: reqsA,
					}),
					vcMsg(2, SlotInfo{
						Seq:                1,
						HasCommitProofSlow: true,
						Tau:                threshsig.Signature{Data: []byte("junk")},
						TauTau:             threshsig.Signature{Data: []byte("junk")},
						SlowView:           9, SlowReqs: reqsB,
						HasPrepare:  true,
						PrepareTau:  threshsig.Signature{Data: []byte("junk")},
						PrepareView: 9, PrepareReqs: reqsB,
					}),
					vcMsg(3),
				}
			},
			wantDecided: true, wantOp: "A",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := decide(f, tc.vcs(t)...)
			if len(d) != 1 {
				t.Fatalf("got %d decisions, want 1", len(d))
			}
			if d[0].decided != tc.wantDecided {
				t.Fatalf("decided = %v, want %v (%+v)", d[0].decided, tc.wantDecided, d[0])
			}
			if tc.wantOp == "" {
				if len(d[0].reqs) != 0 {
					t.Fatalf("adopted %q, want null block", d[0].reqs[0].Op)
				}
				return
			}
			if len(d[0].reqs) == 0 || string(d[0].reqs[0].Op) != tc.wantOp {
				t.Fatalf("adopted %+v, want op %q", d[0].reqs, tc.wantOp)
			}
		})
	}
}

// TestValidateViewChangeRejectsForgedStableProof pins the other evidence
// gate: a view-change message claiming a stable checkpoint must prove it
// with a valid π certificate.
func TestValidateViewChangeRejectsForgedStableProof(t *testing.T) {
	f := newVCFixture(t)
	r, err := NewReplica(1, f.cfg, f.suite, f.keys[0], &countingApp{}, &fakeEnv{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := &ViewChangeMsg{
		NewView: 1, Replica: 2, LastStable: 8,
		StableDigest: []byte("fake state"),
		StablePi:     threshsig.Signature{Data: []byte("forged")},
	}
	if r.validateViewChange(forged) {
		t.Fatal("forged stable-checkpoint proof accepted")
	}
	genesis := &ViewChangeMsg{NewView: 1, Replica: 2, LastStable: 0}
	if !r.validateViewChange(genesis) {
		t.Fatal("genesis view-change (no stable proof needed) rejected")
	}
}
