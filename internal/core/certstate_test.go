package core

import (
	"bytes"
	"testing"
)

func testCache() map[int]replyCacheEntry {
	return map[int]replyCacheEntry{
		ClientBase + 2: {timestamp: 5, seq: 9, l: 1, val: []byte("z")},
		ClientBase:     {timestamp: 3, seq: 7, l: 0, val: []byte("a")},
		ClientBase + 1: {timestamp: 9, seq: 8, l: 2, val: bytes.Repeat([]byte("b"), 100)},
	}
}

// TestCertifiedSnapshotRoundTrip covers build → prove → verify → assemble
// → decode for a multi-chunk snapshot.
func TestCertifiedSnapshotRoundTrip(t *testing.T) {
	app := bytes.Repeat([]byte{0xAB}, 3*SnapshotChunkSize+17) // 4 app chunks
	table := encodeReplyTable(testCache())
	cs := NewCertifiedSnapshot(8, []byte("app-digest"), app, table)

	if got, want := len(cs.Chunks), cs.Header.NumChunks(); got != want {
		t.Fatalf("chunks %d, header says %d", got, want)
	}
	hp, err := cs.ProveHeader()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotHeader(cs.Root(), cs.Header, hp); err != nil {
		t.Fatalf("header verify: %v", err)
	}
	for i := 1; i <= len(cs.Chunks); i++ {
		p, err := cs.ProveChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySnapshotChunk(cs.Root(), cs.Header, i, cs.Chunks[i-1], p); err != nil {
			t.Fatalf("chunk %d verify: %v", i, err)
		}
	}
	gotApp, gotTable, err := AssembleSnapshot(cs.Header, cs.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotApp, app) || !bytes.Equal(gotTable, table) {
		t.Fatal("assembled bytes differ from inputs")
	}

	dec, err := DecodeCertifiedSnapshot(cs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seq != 8 || !bytes.Equal(dec.Root(), cs.Root()) {
		t.Fatal("decoded snapshot root differs")
	}
}

// TestCertifiedSnapshotDetectsTampering is the heart of the certification
// boundary: any bit flipped in any chunk — including the reply-table
// chunks a Byzantine snapshot server would want to perturb — fails leaf
// verification against the certified root.
func TestCertifiedSnapshotDetectsTampering(t *testing.T) {
	app := bytes.Repeat([]byte{0xCD}, SnapshotChunkSize+100)
	table := encodeReplyTable(testCache())
	cs := NewCertifiedSnapshot(4, []byte("app-digest"), app, table)

	for i := 1; i <= len(cs.Chunks); i++ {
		p, err := cs.ProveChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		evil := append([]byte(nil), cs.Chunks[i-1]...)
		evil[len(evil)/2] ^= 0x01
		if err := VerifySnapshotChunk(cs.Root(), cs.Header, i, evil, p); err == nil {
			t.Fatalf("tampered chunk %d verified", i)
		}
	}

	// A chunk served at the wrong position must not verify either, even
	// with its own (correct) proof.
	p1, _ := cs.ProveChunk(1)
	if err := VerifySnapshotChunk(cs.Root(), cs.Header, 2, cs.Chunks[0][:cs.Header.chunkLen(2)], p1); err == nil {
		t.Fatal("chunk accepted at the wrong index")
	}

	// Tampered header: claim a different app digest.
	hp, _ := cs.ProveHeader()
	evilHdr := cs.Header
	evilHdr.AppDigest = []byte("forged")
	if err := VerifySnapshotHeader(cs.Root(), evilHdr, hp); err == nil {
		t.Fatal("tampered header verified")
	}
}

// TestCertifiedSnapshotDeterminism: the same (app bytes, reply table)
// yields the same root regardless of the map's construction order — the
// property that lets independent replicas reach the π quorum.
func TestCertifiedSnapshotDeterminism(t *testing.T) {
	app := bytes.Repeat([]byte{7}, 1000)
	a := NewCertifiedSnapshot(4, []byte("d"), app, encodeReplyTable(testCache()))
	other := map[int]replyCacheEntry{}
	for c, e := range testCache() { // re-insert in map order (arbitrary)
		other[c] = e
	}
	b := NewCertifiedSnapshot(4, []byte("d"), app, encodeReplyTable(other))
	if !bytes.Equal(a.Root(), b.Root()) {
		t.Fatal("roots differ for identical state")
	}
	c := NewCertifiedSnapshot(4, []byte("d"), app, encodeReplyTable(map[int]replyCacheEntry{}))
	if bytes.Equal(a.Root(), c.Root()) {
		t.Fatal("root ignores the reply table")
	}
}

// TestStoredSnapshotRejectsCorruption: the durable blob re-validates shape
// on load.
func TestStoredSnapshotRejectsCorruption(t *testing.T) {
	cs := NewCertifiedSnapshot(4, []byte("d"), bytes.Repeat([]byte{1}, 100), encodeReplyTable(testCache()))
	blob := cs.Encode()
	if _, err := DecodeCertifiedSnapshot(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob decoded")
	}
	if _, err := DecodeCertifiedSnapshot([]byte("garbage")); err == nil {
		t.Fatal("garbage blob decoded")
	}
}

// TestCheckpointDigestDomainSeparation: an execution certificate digest
// can never collide with a checkpoint certificate digest for the same
// (seq, digest) pair, so one certificate family cannot be replayed as the
// other.
func TestCheckpointDigestDomainSeparation(t *testing.T) {
	d := []byte("digest")
	if bytes.Equal(StateSigDigest(4, d), CheckpointSigDigest(4, d)) {
		t.Fatal("state and checkpoint signing digests collide")
	}
}
