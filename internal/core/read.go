package core

import (
	"fmt"
	"time"

	"sbft/internal/merkle"
	"sbft/internal/snapcodec"
)

// Consensus-free linearizable reads (ROADMAP item 2). §IV's authenticated
// service already leaves every replica holding a π-certified Merkle root
// over its execution state at each stable checkpoint; this file serves key
// reads from ANY single replica against that commitment, with the client
// verifying everything locally:
//
//	client                                 replica i
//	   │  ReadMsg{op, minSeq, nonce}          │
//	   ├─────────────────────────────────────▶│  (batched: proofs amortize)
//	   │                                      │  cs = latest certified snapshot
//	   │                                      │  cs.Seq < minSeq → ReadBehind
//	   │  ReadReplyMsg{root, π, header+proof, │
//	   │               bucket chunk + proof}  │
//	   │◀─────────────────────────────────────┤
//	   │  verify π(ckpt(seq,root)),           │
//	   │  header proof, chunk proof,          │
//	   │  key→bucket routing; extract value   │
//
// Verification failure, ReadBehind and ReadUnavailable all fail over to
// the next replica; after one full rotation the client falls back to the
// ordering path (Submit), which guarantees liveness and freshness
// unconditionally. Freshness on the fast path is read-your-writes: the
// client floors every read at the highest sequence it has observed
// completing (its own writes and prior reads), so a laggard replica
// cannot serve it pre-write state. Remaining work (ROADMAP): primary-
// granted leases for external-consistency reads without a floor.

// ---------------------------------------------------------------------------
// Server side.

// readRequest is one queued certified read.
type readRequest struct {
	from int
	m    ReadMsg
}

// onRead queues (or immediately serves) a certified read. Batching
// amortizes proof generation: all reads of one flush share the header
// proof and any repeated bucket-chunk proofs.
func (r *Replica) onRead(from int, m ReadMsg) {
	if m.Client != from || !IsClient(from) {
		return
	}
	if r.cfg.readBatchWait() < 0 || r.cfg.readBatch() <= 1 {
		r.readQueue = append(r.readQueue, readRequest{from: from, m: m})
		r.flushReads()
		return
	}
	r.readQueue = append(r.readQueue, readRequest{from: from, m: m})
	if len(r.readQueue) >= r.cfg.readBatch() {
		r.flushReads()
		return
	}
	if r.readTimer == nil {
		r.readTimer = r.env.After(r.cfg.readBatchWait(), func() {
			r.readTimer = nil
			r.flushReads()
		})
	}
}

// flushReads serves the queued batch against the newest certified
// snapshot, computing each distinct Merkle proof once.
func (r *Replica) flushReads() {
	if r.readTimer != nil {
		r.readTimer()
		r.readTimer = nil
	}
	queue := r.readQueue
	r.readQueue = nil
	if len(queue) == 0 {
		return
	}
	r.Metrics.ReadBatches++

	cs := r.curSnap()
	kr, _ := r.app.(KeyReader)
	var (
		headerProof     merkle.Proof
		headerProofDone bool
		chunkProofs     map[int]merkle.Proof
	)
	for _, req := range queue {
		m := req.m
		reply := ReadReplyMsg{Client: m.Client, Nonce: m.Nonce, Replica: r.id}
		var key string
		ok := false
		if kr != nil {
			if k, err := kr.ReadKey(m.Op); err == nil {
				key, ok = k, true
			}
		}
		switch {
		case !ok || cs == nil || cs.Header.AppChunks < 2:
			// No key mapping, no certified snapshot yet, or the app
			// snapshot is not bucketed — the client must use the
			// ordering path.
			reply.Status = ReadUnavailable
			r.Metrics.ReadsUnavailable++
		case cs.Seq < m.MinSeq:
			// Behind the client's freshness floor; report the frontier so
			// the client fails over.
			reply.Status = ReadBehind
			reply.Seq = cs.Seq
			r.Metrics.ReadsBehind++
		default:
			buckets := int(cs.Header.AppChunks) - 1
			leaf := 2 + snapcodec.BucketOf(key, buckets)
			if !headerProofDone {
				hp, err := cs.ProveHeader()
				if err != nil {
					reply.Status = ReadUnavailable
					r.Metrics.ReadsUnavailable++
					r.env.Send(m.Client, reply)
					continue
				}
				headerProof, headerProofDone = hp, true
			}
			if chunkProofs == nil {
				chunkProofs = make(map[int]merkle.Proof)
			}
			cp, cached := chunkProofs[leaf]
			if !cached {
				p, err := cs.ProveChunk(leaf)
				if err != nil {
					reply.Status = ReadUnavailable
					r.Metrics.ReadsUnavailable++
					r.env.Send(m.Client, reply)
					continue
				}
				cp = p
				chunkProofs[leaf] = cp
			}
			reply.Status = ReadOK
			reply.Seq = cs.Seq
			reply.Root = cs.Root()
			reply.Pi = cs.Pi
			reply.Header = cs.Header
			reply.HeaderProof = headerProof
			reply.ChunkIndex = leaf
			reply.Chunk = cs.Chunks[leaf-1]
			reply.ChunkProof = cp
			r.Metrics.ReadsServed++
		}
		r.env.Send(m.Client, reply)
	}
}

// ---------------------------------------------------------------------------
// Client-side verification (also the fuzz/corruption surface).

// VerifyReadReply checks a ReadOK reply end to end against the threshold-
// certified state and extracts the key's value from the verified bucket
// chunk. It returns (value, found) — a verified chunk authenticates
// absence as well as presence, so found=false is a certified negative.
// Every check binds to material the client already trusts (the π public
// key and its own key/minSeq); nothing in the reply is taken on faith:
//
//  1. π certificate over CheckpointSigDigest(Seq, Root) — the root really
//     was stable-checkpointed by an honest-quorum-backed f+1 set;
//  2. Seq ≥ minSeq — the certified frontier satisfies the freshness floor;
//  3. header inclusion proof (index-bound to leaf 0) — the chunk layout
//     is the one committed under Root;
//  4. key → bucket routing — ChunkIndex is the unique leaf the key may
//     live in, so a replica cannot serve a different (valid) chunk;
//  5. chunk inclusion proof (index-bound) — the chunk bytes are exactly
//     the committed ones;
//  6. canonical bucket decode — malformed framing rejects.
func VerifyReadReply(suite CryptoSuite, key string, minSeq uint64, m ReadReplyMsg) ([]byte, bool, error) {
	if m.Status != ReadOK {
		return nil, false, fmt.Errorf("core: read reply status %d", m.Status)
	}
	if m.Seq < minSeq {
		return nil, false, fmt.Errorf("core: read reply at seq %d below floor %d", m.Seq, minSeq)
	}
	if err := suite.Pi.Verify(CheckpointSigDigest(m.Seq, m.Root), m.Pi); err != nil {
		return nil, false, fmt.Errorf("core: read reply π certificate: %w", err)
	}
	if err := VerifySnapshotHeader(m.Root, m.Header, m.HeaderProof); err != nil {
		return nil, false, fmt.Errorf("core: read reply header: %w", err)
	}
	if m.Header.AppChunks < 2 {
		return nil, false, fmt.Errorf("core: read reply snapshot is not bucketed")
	}
	buckets := int(m.Header.AppChunks) - 1
	if want := 2 + snapcodec.BucketOf(key, buckets); m.ChunkIndex != want {
		return nil, false, fmt.Errorf("core: read reply chunk %d, key routes to %d", m.ChunkIndex, want)
	}
	if err := VerifySnapshotChunk(m.Root, m.Header, m.ChunkIndex, m.Chunk, m.ChunkProof); err != nil {
		return nil, false, fmt.Errorf("core: read reply chunk: %w", err)
	}
	val, found, err := snapcodec.BucketLookup(m.Chunk, key)
	if err != nil {
		return nil, false, fmt.Errorf("core: read reply bucket: %w", err)
	}
	return val, found, nil
}

// ---------------------------------------------------------------------------
// Client side.

// ReadResult is a completed certified read.
type ReadResult struct {
	Op  []byte
	Key string
	Val []byte
	// Found distinguishes a certified "key absent" from a present key:
	// both verify against the committed bucket chunk.
	Found bool
	// Seq and Root name the certified snapshot the read was served from
	// (zero for Ordered fallbacks, which carry no certificate).
	Seq     uint64
	Root    []byte
	Latency time.Duration
	// Replica is the replica that served the accepted reply (0 for
	// Ordered fallbacks).
	Replica int
	// Failovers counts replicas tried and rejected (behind, unavailable,
	// forged proof, timeout) before the read completed.
	Failovers int
	// Ordered reports that the read gave up on the certified path after a
	// full replica rotation and completed through consensus.
	Ordered bool
}

// pendingRead is the client's outstanding certified read.
type pendingRead struct {
	op        []byte
	key       string
	nonce     uint64
	started   time.Duration
	minSeq    uint64
	first     int // first replica targeted
	tried     int // replicas tried so far (index offset from first)
	target    int // replica currently awaited
	failovers int
	cancelTo  func()
}

// SetReadKey installs the client-side op→key mapping (the same mapping
// the replicas' application implements via KeyReader). It must be set
// before SubmitRead: the client needs the key to check bucket routing and
// to extract the value from the verified chunk.
func (c *Client) SetReadKey(fn func(op []byte) (string, error)) { c.readKey = fn }

// SetOnReadResult installs the read-completion callback.
func (c *Client) SetOnReadResult(fn func(ReadResult)) { c.onReadResult = fn }

// SeqFloor reports the client's freshness floor: the highest sequence it
// has observed completing (writes and certified reads).
func (c *Client) SeqFloor() uint64 { return c.seqFloor }

// SubmitRead starts a certified read of op against a replica chosen by
// nonce round-robin (spreading read load over all n replicas).
func (c *Client) SubmitRead(op []byte) error { return c.SubmitReadAt(op, 0) }

// SubmitReadAt starts a certified read targeting replica first (1-based;
// 0 picks round-robin). Tests use the explicit form to aim reads at a
// known-laggard replica.
func (c *Client) SubmitReadAt(op []byte, first int) error {
	if c.cur != nil || c.curRead != nil {
		return fmt.Errorf("core: client %d already has an outstanding request", c.id)
	}
	if c.readKey == nil {
		return fmt.Errorf("core: client %d has no read-key mapping (SetReadKey)", c.id)
	}
	key, err := c.readKey(op)
	if err != nil {
		return fmt.Errorf("core: op has no read key: %w", err)
	}
	c.readNonce++
	p := &pendingRead{
		op:      op,
		key:     key,
		nonce:   c.readNonce,
		started: c.env.Now(),
		minSeq:  c.seqFloor,
		first:   first,
	}
	if p.first < 1 || p.first > c.cfg.N() {
		p.first = 1 + int(p.nonce%uint64(c.cfg.N()))
	}
	c.curRead = p
	c.sendRead(p)
	return nil
}

// sendRead issues the read to the next replica in the rotation and arms
// the per-attempt timeout.
func (c *Client) sendRead(p *pendingRead) {
	n := c.cfg.N()
	p.target = (p.first-1+p.tried)%n + 1
	c.env.Send(p.target, ReadMsg{Client: c.id, Nonce: p.nonce, Op: p.op, MinSeq: p.minSeq})
	timeout := c.ReadTimeout
	if timeout <= 0 {
		timeout = c.RequestTimeout
	}
	if timeout <= 0 {
		return // deterministic tests drive failover via explicit replies
	}
	if p.cancelTo != nil {
		p.cancelTo()
	}
	attempt := p.tried
	p.cancelTo = c.env.After(timeout, func() {
		if c.curRead != p || p.tried != attempt {
			return
		}
		c.readFailover(p)
	})
}

// readFailover advances the read to the next replica, or — after a full
// rotation — falls back to the ordering path, which guarantees both
// liveness and freshness (the committed read executes at a sequence above
// every prior write by definition).
func (c *Client) readFailover(p *pendingRead) {
	p.tried++
	p.failovers++
	if p.tried >= c.cfg.N() {
		if p.cancelTo != nil {
			p.cancelTo()
		}
		c.curRead = nil
		c.ReadFallbacks++
		c.readFallback = p
		if err := c.Submit(p.op); err != nil {
			// Cannot happen: curRead and cur were both nil. Surface the
			// read as failed-over-to-nothing rather than hanging.
			c.readFallback = nil
			return
		}
		return
	}
	c.sendRead(p)
}

// onReadReply handles a ReadReplyMsg: verified acceptance, or failover on
// refusal and on any verification failure (the forged-proof case — caught
// HERE, client-side, which is the property the chaos sweep pins).
func (c *Client) onReadReply(from int, m ReadReplyMsg) {
	p := c.curRead
	if p == nil || m.Client != c.id || m.Nonce != p.nonce {
		return
	}
	if m.Status != ReadOK {
		// Refusals are unauthenticated; only the currently-awaited replica
		// may advance the rotation, so a stale or forged refusal cannot
		// double-step it.
		if from == p.target && m.Replica == from {
			c.readFailover(p)
		}
		return
	}
	val, found, err := VerifyReadReply(c.suite, p.key, p.minSeq, m)
	if err != nil {
		c.ReadProofFailures++
		if from == p.target {
			c.readFailover(p)
		}
		return
	}
	// Accepted. Any replica's verified reply is as good as the target's.
	if p.cancelTo != nil {
		p.cancelTo()
	}
	c.curRead = nil
	c.ReadsCompleted++
	if m.Seq > c.seqFloor {
		c.seqFloor = m.Seq // monotonic reads: later reads never go behind
	}
	if c.onReadResult != nil {
		c.onReadResult(ReadResult{
			Op:        p.op,
			Key:       p.key,
			Val:       val,
			Found:     found,
			Seq:       m.Seq,
			Root:      append([]byte(nil), m.Root...),
			Latency:   c.env.Now() - p.started,
			Replica:   m.Replica,
			Failovers: p.failovers,
		})
	}
}
