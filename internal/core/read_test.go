package core

import (
	"bytes"
	"fmt"
	"testing"

	"sbft/internal/crypto/threshsig"
	"sbft/internal/merkle"
	"sbft/internal/snapcodec"
)

// readFixture is a π-certified bucketed snapshot with known contents,
// the ground truth every VerifyReadReply test and the fuzz target mutate
// away from.
type readFixture struct {
	suite   CryptoSuite
	cs      *CertifiedSnapshot
	kv      map[string][]byte
	buckets int
}

// certify combines a real π certificate over (seq, root) from the first
// QuorumExec signers.
func certify(tb testing.TB, suite CryptoSuite, keys []ReplicaKeys, seq uint64, root []byte) threshsig.Signature {
	tb.Helper()
	d := CheckpointSigDigest(seq, root)
	var shares []threshsig.Share
	for i := 0; i < suite.Pi.Threshold(); i++ {
		sh, err := keys[i].Pi.Sign(d)
		if err != nil {
			tb.Fatalf("π share: %v", err)
		}
		shares = append(shares, sh)
	}
	cert, err := suite.Pi.Combine(d, shares)
	if err != nil {
		tb.Fatalf("π combine: %v", err)
	}
	return cert
}

func newReadFixture(tb testing.TB) *readFixture {
	tb.Helper()
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "read-verify")
	if err != nil {
		tb.Fatalf("InsecureSuite: %v", err)
	}
	const buckets = 8
	tr := snapcodec.NewTracker(buckets)
	kv := make(map[string][]byte)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key/%d", i)
		v := []byte(fmt.Sprintf("val-%d", i))
		tr.Set(k, v)
		kv[k] = v
	}
	chunks, _ := tr.EncodeChunks(42, []byte("app-digest"))
	cs := NewCertifiedSnapshotChunked(42, []byte("app-digest"), chunks, []byte("reply-table"), nil)
	cs.Pi = certify(tb, suite, keys, cs.Seq, cs.Root())
	return &readFixture{suite: suite, cs: cs, kv: kv, buckets: buckets}
}

// reply builds the honest ReadOK reply for key, exactly as flushReads
// would.
func (fx *readFixture) reply(tb testing.TB, key string) ReadReplyMsg {
	tb.Helper()
	leaf := 2 + snapcodec.BucketOf(key, fx.buckets)
	hp, err := fx.cs.ProveHeader()
	if err != nil {
		tb.Fatalf("ProveHeader: %v", err)
	}
	cp, err := fx.cs.ProveChunk(leaf)
	if err != nil {
		tb.Fatalf("ProveChunk(%d): %v", leaf, err)
	}
	return ReadReplyMsg{
		Client: ClientBase, Nonce: 1, Replica: 1,
		Status: ReadOK, Seq: fx.cs.Seq,
		Root: append([]byte(nil), fx.cs.Root()...),
		Pi:   fx.cs.Pi, Header: fx.cs.Header, HeaderProof: hp,
		ChunkIndex: leaf,
		Chunk:      append([]byte(nil), fx.cs.Chunks[leaf-1]...),
		ChunkProof: cp,
	}
}

// keyInBucket finds a fixture key routed to bucket b.
func (fx *readFixture) keyInBucket(tb testing.TB, b int) string {
	tb.Helper()
	for k := range fx.kv {
		if snapcodec.BucketOf(k, fx.buckets) == b {
			return k
		}
	}
	tb.Fatalf("no fixture key in bucket %d", b)
	return ""
}

func TestVerifyReadReply(t *testing.T) {
	fx := newReadFixture(t)
	firstKey := fx.keyInBucket(t, 0)           // leaf 2: the FIRST app data chunk
	lastKey := fx.keyInBucket(t, fx.buckets-1) // leaf 1+buckets: the LAST app chunk boundary
	midKey := "key/7"

	cases := []struct {
		name    string
		key     string
		minSeq  uint64
		mutate  func(*ReadReplyMsg)
		wantErr string // substring; "" means accept
		found   bool
	}{
		{name: "valid present key", key: midKey, found: true},
		{name: "valid at exact floor", key: midKey, minSeq: 42, found: true},
		{name: "certified absence", key: "never-written", found: false},
		{name: "first bucket boundary (leaf 2)", key: firstKey, found: true},
		{name: "last bucket boundary", key: lastKey, found: true},
		{
			name: "stale below freshness floor", key: midKey, minSeq: 43,
			wantErr: "below floor",
		},
		{
			name: "refusal status never verifies", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Status = ReadBehind },
			wantErr: "status",
		},
		{
			name: "inflated sequence breaks the certificate", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Seq += 3 },
			wantErr: "certificate",
		},
		{
			name: "truncated certificate", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Pi.Data = m.Pi.Data[:len(m.Pi.Data)/2] },
			wantErr: "certificate",
		},
		{
			name: "tampered root", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Root[0] ^= 0x01 },
			wantErr: "certificate",
		},
		{
			name: "tampered header", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Header.AppChunks++ },
			wantErr: "header",
		},
		{
			name: "header-leaf attack: chunk index 0", key: midKey,
			mutate: func(m *ReadReplyMsg) {
				m.ChunkIndex = 0
				m.Chunk = headerLeaf(m.Header)
				m.ChunkProof = m.HeaderProof
			},
			wantErr: "routes to",
		},
		{
			name: "prelude attack: chunk index 1", key: midKey,
			mutate: func(m *ReadReplyMsg) {
				m.ChunkIndex = 1
			},
			wantErr: "routes to",
		},
		{
			name: "tampered chunk bytes", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.Chunk[len(m.Chunk)/2] ^= 0x80 },
			wantErr: "chunk",
		},
		{
			name: "corrupted proof step", key: midKey,
			mutate:  func(m *ReadReplyMsg) { m.ChunkProof.Steps[0].Hash[0] ^= 0x40 },
			wantErr: "chunk",
		},
		{
			name: "flipped proof orientation", key: midKey,
			mutate: func(m *ReadReplyMsg) {
				m.ChunkProof.Steps[0].Right = !m.ChunkProof.Steps[0].Right
			},
			wantErr: "chunk",
		},
		{
			name: "dropped proof step", key: midKey,
			mutate: func(m *ReadReplyMsg) {
				m.ChunkProof.Steps = m.ChunkProof.Steps[:len(m.ChunkProof.Steps)-1]
			},
			wantErr: "chunk",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := fx.reply(t, tc.key)
			if tc.mutate != nil {
				tc.mutate(&m)
			}
			val, found, err := VerifyReadReply(fx.suite, tc.key, tc.minSeq, m)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("accepted, want error containing %q", tc.wantErr)
				}
				if !bytes.Contains([]byte(err.Error()), []byte(tc.wantErr)) {
					t.Fatalf("error %q, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if found != tc.found {
				t.Fatalf("found=%v, want %v", found, tc.found)
			}
			if tc.found && !bytes.Equal(val, fx.kv[tc.key]) {
				t.Fatalf("value %q, want %q", val, fx.kv[tc.key])
			}
		})
	}
}

// TestVerifyReadReplyWrongBucket pins the key→bucket routing check: a
// perfectly valid (certified, proven) chunk for a DIFFERENT bucket must
// be rejected — otherwise a replica could answer any read with whichever
// committed chunk omits the key and fake an absence.
func TestVerifyReadReplyWrongBucket(t *testing.T) {
	fx := newReadFixture(t)
	key := fx.keyInBucket(t, 3)
	m := fx.reply(t, fx.keyInBucket(t, 5)) // honest reply for another bucket
	m2 := m
	if _, _, err := VerifyReadReply(fx.suite, key, 0, m2); err == nil {
		t.Fatal("accepted a valid chunk for the wrong bucket")
	}
}

// TestVerifyReadReplyRelabeledProof pins index binding inside the proof
// itself: taking another leaf's proof and relabeling its Index to the
// routed leaf must fail even though every step hash is genuine.
func TestVerifyReadReplyRelabeledProof(t *testing.T) {
	fx := newReadFixture(t)
	key := fx.keyInBucket(t, 3)
	m := fx.reply(t, key)
	other, err := fx.cs.ProveChunk(2 + 5)
	if err != nil {
		t.Fatal(err)
	}
	other.Index = m.ChunkIndex // relabel
	m.ChunkProof = other
	if _, _, err := VerifyReadReply(fx.suite, key, 0, m); err == nil {
		t.Fatal("accepted a relabeled proof")
	}
}

// TestVerifyReadReplyNonBucketed pins the AppChunks ≥ 2 requirement: a
// genuinely certified legacy (fixed-split, non-bucketed) snapshot cannot
// serve key reads, however valid its certificate.
func TestVerifyReadReplyNonBucketed(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "read-verify")
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCertifiedSnapshot(9, []byte("d"), []byte("legacy-app-bytes"), []byte("table"))
	cs.Pi = certify(t, suite, keys, cs.Seq, cs.Root())
	hp, err := cs.ProveHeader()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cs.ProveChunk(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ReadReplyMsg{
		Status: ReadOK, Seq: cs.Seq, Root: cs.Root(), Pi: cs.Pi,
		Header: cs.Header, HeaderProof: hp, ChunkIndex: 1, Chunk: cs.Chunks[0], ChunkProof: cp,
	}
	if _, _, err := VerifyReadReply(suite, "any", 0, m); err == nil {
		t.Fatal("accepted a read against a non-bucketed snapshot")
	}
}

// cloneReply deep-copies a reply so fuzz mutations never alias the
// pristine fixture.
func cloneReply(m ReadReplyMsg) ReadReplyMsg {
	out := m
	out.Root = append([]byte(nil), m.Root...)
	out.Pi.Data = append([]byte(nil), m.Pi.Data...)
	out.Header.AppDigest = append([]byte(nil), m.Header.AppDigest...)
	out.HeaderProof.Steps = append([]merkle.ProofStep(nil), m.HeaderProof.Steps...)
	out.Chunk = append([]byte(nil), m.Chunk...)
	out.ChunkProof.Steps = append([]merkle.ProofStep(nil), m.ChunkProof.Steps...)
	return out
}

// FuzzReadProofVerify drives VerifyReadReply with directive-encoded
// mutations of a genuine certified reply. The invariant is exact: any
// accepted reply must be semantically identical to the honest one —
// same certified (seq, root), same value, same presence verdict. A
// mutation that changes any of those AND is accepted is a forged proof
// the client failed to catch.
func FuzzReadProofVerify(f *testing.F) {
	fx := newReadFixture(f)
	const key = "key/7"
	want := fx.kv[key]
	base := fx.reply(f, key)
	baseRoot := append([]byte(nil), base.Root...)

	f.Add([]byte{})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 0, 1, 4, 2, 9})
	f.Add([]byte{3, 1, 0, 5, 0, 7})
	f.Add([]byte{9, 0, 0, 2, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := cloneReply(base)
		for i := 0; i+2 < len(data); i += 3 {
			a, b := int(data[i+1]), data[i+2]
			switch data[i] % 10 {
			case 0:
				if len(m.Chunk) > 0 {
					m.Chunk[a%len(m.Chunk)] ^= b
				}
			case 1:
				if n := len(m.ChunkProof.Steps); n > 0 {
					m.ChunkProof.Steps[a%n].Hash[int(b)%merkle.DigestSize] ^= 1
				}
			case 2:
				if n := len(m.ChunkProof.Steps); n > 0 {
					s := &m.ChunkProof.Steps[a%n]
					s.Right = !s.Right
				}
			case 3:
				m.ChunkIndex += a - int(b)
			case 4:
				m.Seq += uint64(a)
			case 5:
				if len(m.Root) > 0 {
					m.Root[a%len(m.Root)] ^= b
				}
			case 6:
				if len(m.Pi.Data) > 0 {
					m.Pi.Data[a%len(m.Pi.Data)] ^= b
				}
			case 7:
				switch b % 4 {
				case 0:
					m.Header.AppChunks += uint32(a)
				case 1:
					m.Header.AppLen += uint64(a)
				case 2:
					m.Header.TableLen += uint64(a)
				default:
					if len(m.Header.AppDigest) > 0 {
						m.Header.AppDigest[a%len(m.Header.AppDigest)] ^= b
					}
				}
			case 8:
				if n := len(m.Chunk); n > 0 {
					m.Chunk = m.Chunk[:a%n]
				}
			case 9:
				if n := len(m.ChunkProof.Steps); n > 0 {
					j := a % n
					m.ChunkProof.Steps = append(m.ChunkProof.Steps[:j], m.ChunkProof.Steps[j+1:]...)
				}
			}
		}
		val, found, err := VerifyReadReply(fx.suite, key, 0, m)
		if err != nil {
			return // rejected — the desired outcome for any effective forgery
		}
		if m.Seq != base.Seq || !bytes.Equal(m.Root, baseRoot) {
			t.Fatalf("accepted forged certificate: seq=%d root=%x", m.Seq, m.Root)
		}
		if !found || !bytes.Equal(val, want) {
			t.Fatalf("accepted forged value: found=%v val=%q want=%q", found, val, want)
		}
	})
}
