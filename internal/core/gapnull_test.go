package core

import (
	"testing"
	"time"
)

// TestGapRepairFetchesMissedDecision: a replica that committed seq 2 but
// never saw seq 1's decision (lost pre-prepare and commit proof) arms the
// gap-repair timer, fetches the missing decision from a peer, and adopts
// the certified CommitInfo answer — counted as a GapRepair.
func TestGapRepairFetchesMissedDecision(t *testing.T) {
	rg := newSyncRig(t, 2) // replica 2; view-0 primary is replica 1
	rg.r.cfg.GapRepairTimeout = 50 * time.Millisecond

	reqs1 := syncReqs("missed")
	reqs2 := []Request{{Client: ClientBase + 1, Timestamp: 1, Op: []byte("seen")}}

	// Seq 2 arrives and commits; seq 1's traffic was lost entirely.
	rg.r.Deliver(1, PrePrepareMsg{Seq: 2, View: 0, Reqs: reqs2})
	rg.r.Deliver(3, rg.fastProof(t, 2, 0, reqs2))
	if rg.r.LastExecuted() != 0 {
		t.Fatalf("executed through a gap: le=%d", rg.r.LastExecuted())
	}

	// The repair timer fires and asks a peer for the missing decision.
	rg.env.advance(60 * time.Millisecond)
	fetches := rg.sentOfType(func(m Message) bool {
		fm, ok := m.(FetchCommitMsg)
		return ok && fm.Seq == 1
	})
	if fetches == 0 {
		t.Fatal("no FetchCommit for the missing decision")
	}

	// A peer answers with the certified decision; both blocks execute.
	fp := rg.fastProof(t, 1, 0, reqs1)
	rg.r.Deliver(3, CommitInfoMsg{Seq: 1, View: 0, Reqs: reqs1, HasFast: true, Sigma: fp.Sigma})
	if rg.r.LastExecuted() != 2 {
		t.Fatalf("gap not repaired: le=%d, want 2", rg.r.LastExecuted())
	}
	if rg.r.Metrics.GapRepairs != 1 {
		t.Fatalf("GapRepairs = %d, want 1", rg.r.Metrics.GapRepairs)
	}
	if rg.r.Metrics.Executions != 2 {
		t.Fatalf("Executions = %d, want 2", rg.r.Metrics.Executions)
	}
}

// TestNullBlockExecutionCounted: a committed block carrying no requests
// (a view change's no-evidence gap filler) executes as a null block and
// is counted as such.
func TestNullBlockExecutionCounted(t *testing.T) {
	rg := newSyncRig(t, 2)
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: nil})
	rg.r.Deliver(3, rg.fastProof(t, 1, 0, nil))
	if rg.r.LastExecuted() != 1 {
		t.Fatalf("null block did not execute: le=%d", rg.r.LastExecuted())
	}
	if rg.r.Metrics.NullBlocks != 1 {
		t.Fatalf("NullBlocks = %d, want 1", rg.r.Metrics.NullBlocks)
	}
	if rg.r.Metrics.Executions != 1 {
		t.Fatalf("Executions = %d, want 1", rg.r.Metrics.Executions)
	}
}
