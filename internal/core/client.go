package core

import (
	"bytes"
	"fmt"
	"time"
)

// ProofVerifier checks an application proof carried by an execute-ack:
// verify(d, o, val, s, l, P) from §IV. internal/apps provides
// implementations for the key-value store and the EVM ledger.
type ProofVerifier func(digest []byte, op, val []byte, seq uint64, l int, proof []byte) error

// Result is a completed client operation.
type Result struct {
	Op        []byte
	Val       []byte
	Seq       uint64
	Timestamp uint64
	Latency   time.Duration
	// FastAck reports whether the single-message execute-ack path
	// confirmed the operation (vs. f+1 direct replies).
	FastAck bool
	// Retried reports whether the client had to fall back to
	// broadcasting the request (§V-A timeout path).
	Retried bool
	// Cert is the π-certified execute certificate backing a FastAck
	// completion — the verified single-message acceptance evidence,
	// retained as a standalone artifact (cross-shard coordinators embed
	// it in commit/abort ops). Nil on the f+1 direct-reply path, which
	// carries no certificate.
	Cert *ExecuteCert
}

// Client is a sans-io SBFT client (§V-A): it sends each operation to the
// primary, accepts a single execute-ack by verifying the π threshold
// signature plus the Merkle proof, and on timeout rebroadcasts the request
// asking for PBFT-style f+1 acknowledgement.
type Client struct {
	id     int
	cfg    Config
	suite  CryptoSuite
	env    Env
	verify ProofVerifier

	// RequestTimeout is how long to wait before the §V-A retry. The zero
	// value disables retries (useful in deterministic tests).
	RequestTimeout time.Duration
	// ReadTimeout is the per-replica attempt timeout of the certified
	// read path (read.go); zero falls back to RequestTimeout.
	ReadTimeout time.Duration

	ts       uint64
	view     uint64 // best guess of the current view
	cur      *pendingOp
	onResult func(Result)

	// Certified-read state (read.go). seqFloor is the freshness floor:
	// the highest sequence observed completing (writes and reads), so
	// reads are read-your-writes and monotonic without consensus.
	readKey      func(op []byte) (string, error)
	curRead      *pendingRead
	readFallback *pendingRead // read being completed through the ordering path
	readNonce    uint64
	seqFloor     uint64
	onReadResult func(ReadResult)

	// Stats.
	Completed uint64
	Retries   uint64
	// Backpressure counts BusyMsg rejections received (§V-C admission
	// control): each one delayed a request by the primary's retry hint.
	Backpressure uint64
	// ReadsCompleted counts certified reads accepted after full local
	// verification (Ordered fallbacks count under Completed instead).
	ReadsCompleted uint64
	// ReadProofFailures counts read replies rejected by client-side
	// verification — the forged-proof detections.
	ReadProofFailures uint64
	// ReadFallbacks counts reads that exhausted the replica rotation and
	// completed through the ordering path.
	ReadFallbacks uint64
}

type pendingOp struct {
	op       []byte
	ts       uint64
	started  time.Duration
	direct   bool
	retried  bool
	replies  map[int]string // replica → reply fingerprint (f+1 matching)
	vals     map[string][]byte
	seqs     map[string]uint64
	views    map[int]uint64 // replica → claimed current view (routing hint)
	cancelTo func()
}

// NewClient builds a client. id must be ≥ ClientBase. verify may be nil
// when the application provides no proofs (then only the π signature over
// the digest is checked).
func NewClient(id int, cfg Config, suite CryptoSuite, env Env, verify ProofVerifier) (*Client, error) {
	if !IsClient(id) {
		return nil, fmt.Errorf("core: client id %d below ClientBase", id)
	}
	return &Client{id: id, cfg: cfg, suite: suite, env: env, verify: verify}, nil
}

// ID reports the client id.
func (c *Client) ID() int { return c.id }

// View reports the client's best guess of the cluster's current view,
// learned from reply and execute-ack view hints.
func (c *Client) View() uint64 { return c.view }

// SetOnResult installs the completion callback. It must be set before
// Submit.
func (c *Client) SetOnResult(fn func(Result)) { c.onResult = fn }

// Busy reports whether an operation (write or certified read) is
// outstanding.
func (c *Client) Busy() bool { return c.cur != nil || c.curRead != nil }

// Submit sends one operation. Clients are sequential (one outstanding
// operation), matching the paper's measurement clients (§IX).
func (c *Client) Submit(op []byte) error {
	if c.cur != nil {
		return fmt.Errorf("core: client %d already has an outstanding request", c.id)
	}
	c.ts++
	p := &pendingOp{
		op:      op,
		ts:      c.ts,
		started: c.env.Now(),
		replies: make(map[int]string),
		vals:    make(map[string][]byte),
		seqs:    make(map[string]uint64),
		views:   make(map[int]uint64),
	}
	c.cur = p
	req := RequestMsg{Req: Request{Client: c.id, Timestamp: p.ts, Op: op}}
	c.env.Send(c.cfg.Primary(c.view), req)
	c.armRetry(p)
	return nil
}

func (c *Client) armRetry(p *pendingOp) {
	if c.RequestTimeout <= 0 {
		return
	}
	p.cancelTo = c.env.After(c.RequestTimeout, func() {
		if c.cur != p {
			return
		}
		// §V-A: resend to all replicas and request the f+1 path.
		p.direct = true
		p.retried = true
		c.Retries++
		req := RequestMsg{Req: Request{Client: c.id, Timestamp: p.ts, Op: p.op, Direct: true}}
		for i := 1; i <= c.cfg.N(); i++ {
			c.env.Send(i, req)
		}
		c.armRetry(p)
	})
}

// Deliver feeds a message from the network.
func (c *Client) Deliver(from int, msg any) {
	switch m := msg.(type) {
	case ExecuteAckMsg:
		c.onExecuteAck(from, m)
	case ReplyMsg:
		c.onReply(from, m)
	case BusyMsg:
		c.onBusy(from, m)
	case ReadReplyMsg:
		c.onReadReply(from, m)
	}
}

// onBusy backs off after a §V-C admission reject: the request was
// dropped, not lost in transit, so re-broadcasting immediately would
// only add load. Resubmit to the primary alone once the advertised
// backlog has drained, then fall back to the normal retry ladder. The
// hint is clamped to the request timeout so a lying primary cannot
// stall the client beyond one ordinary retry period.
func (c *Client) onBusy(_ int, m BusyMsg) {
	p := c.cur
	if p == nil || m.Client != c.id || m.Timestamp != p.ts {
		return
	}
	c.Backpressure++
	wait := m.RetryAfter
	if c.RequestTimeout > 0 && (wait <= 0 || wait > c.RequestTimeout) {
		wait = c.RequestTimeout
	}
	if wait <= 0 {
		return // retries disabled; the op stays parked (test configs)
	}
	if p.cancelTo != nil {
		p.cancelTo()
	}
	p.cancelTo = c.env.After(wait, func() {
		if c.cur != p {
			return
		}
		req := RequestMsg{Req: Request{Client: c.id, Timestamp: p.ts, Op: p.op, Direct: p.direct}}
		c.env.Send(c.cfg.Primary(c.view), req)
		c.armRetry(p)
	})
}

func (c *Client) onExecuteAck(_ int, m ExecuteAckMsg) {
	p := c.cur
	if p == nil || m.Client != c.id || m.Timestamp != p.ts {
		return
	}
	// Single-message acceptance (§V-A): check π(d) then the proof.
	if c.suite.Pi.Verify(stateSigDigest(m.Seq, m.Digest), m.Pi) != nil {
		return
	}
	if c.verify != nil {
		if err := c.verify(m.Digest, p.op, m.Val, m.Seq, m.L, m.Proof); err != nil {
			return
		}
	}
	cert := &ExecuteCert{
		Seq:    m.Seq,
		L:      m.L,
		Op:     append([]byte(nil), p.op...),
		Val:    append([]byte(nil), m.Val...),
		Digest: append([]byte(nil), m.Digest...),
		Pi:     m.Pi,
		Proof:  append([]byte(nil), m.Proof...),
	}
	c.complete(p, m.Val, m.Seq, true, m.View, cert)
}

func (c *Client) onReply(from int, m ReplyMsg) {
	p := c.cur
	if p == nil || m.Client != c.id || m.Timestamp != p.ts {
		return
	}
	if from < 1 || from > c.cfg.N() {
		return
	}
	fp := fmt.Sprintf("%d/%x", m.Seq, m.Val)
	p.replies[from] = fp
	p.vals[fp] = m.Val
	p.seqs[fp] = m.Seq
	p.views[from] = m.View
	count := 0
	for _, f := range p.replies {
		if f == fp {
			count++
		}
	}
	if count >= c.cfg.QuorumExec() { // f+1 matching replies
		// View hint: the LOWEST view claimed by the f+1 matching
		// repliers. Any f+1 set contains an honest replica, so the
		// minimum is bounded above by a view some honest replica really
		// reached — a Byzantine member can drag the hint down (costing at
		// most a forwarding hop: backups forward client requests to their
		// primary) but cannot inflate it.
		viewHint := uint64(0)
		first := true
		for id, f := range p.replies {
			if f != fp {
				continue
			}
			if first || p.views[id] < viewHint {
				viewHint = p.views[id]
				first = false
			}
		}
		c.complete(p, p.vals[fp], p.seqs[fp], false, viewHint, nil)
	}
}

// complete finishes the outstanding operation and adopts the view hint so
// the next Submit addresses the current primary directly (cutting the
// post-view-change retry latency the ROADMAP flagged). Hints are
// unauthenticated routing advice, never safety-relevant, and are treated
// with suspicion: forward adoption is capped to one primary rotation per
// operation (an inflated hint from a lying replica cannot point the
// client at an arbitrary view), and an operation that needed the §V-A
// retry broadcast — evidence the stored view misroutes — may additionally
// move the stored view DOWN to the completing hint instead of keeping a
// poisoned maximum (upward adoption stays capped even then). Worst case,
// ≤ f lying replicas degrade one client's latency; the retry broadcast
// bounds the damage per operation.
func (c *Client) complete(p *pendingOp, val []byte, seq uint64, fast bool, viewHint uint64, cert *ExecuteCert) {
	if p.cancelTo != nil {
		p.cancelTo()
	}
	// Upward drift is ALWAYS capped to one primary rotation — including
	// after a retry, where the completing evidence may be a single
	// unauthenticated execute-ack; a retry additionally allows the view
	// to move down (the stored value demonstrably misroutes).
	if viewHint <= c.view+uint64(c.cfg.N()) && (p.retried || viewHint > c.view) {
		c.view = viewHint
	}
	c.cur = nil
	c.Completed++
	// Freshness floor (read.go): every completed operation raises the
	// floor certified reads must meet — read-your-writes without leases.
	if seq > c.seqFloor {
		c.seqFloor = seq
	}
	// A read that exhausted the certified rotation completes here through
	// the ordering path: surface it as a ReadResult, not a write result.
	if fb := c.readFallback; fb != nil {
		c.readFallback = nil
		if c.onReadResult != nil {
			c.onReadResult(ReadResult{
				Op:        fb.op,
				Key:       fb.key,
				Val:       append([]byte(nil), val...),
				Found:     len(val) > 0,
				Latency:   c.env.Now() - fb.started,
				Failovers: fb.failovers,
				Ordered:   true,
			})
		}
		return
	}
	if c.onResult != nil {
		c.onResult(Result{
			Op:        p.op,
			Val:       append([]byte(nil), val...),
			Seq:       seq,
			Timestamp: p.ts,
			Latency:   c.env.Now() - p.started,
			FastAck:   fast,
			Retried:   p.retried,
			Cert:      cert,
		})
	}
}

// equalBytes is used by tests.
func equalBytes(a, b []byte) bool { return bytes.Equal(a, b) }
