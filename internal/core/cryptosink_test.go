package core

import (
	"testing"

	"sbft/internal/crypto/threshbls"
	"sbft/internal/crypto/threshsig"
)

// deferredSink queues every sink call so tests control exactly when the
// off-loop work "completes", exercising the staging pipeline's guards.
type deferredSink struct {
	suite    CryptoSuite
	verifies []deferredVerify
	combines []deferredCombine
}

type deferredVerify struct {
	jobs []VerifyJob
	done func([][]threshsig.Share)
}

type deferredCombine struct {
	kind   ShareKind
	digest []byte
	shares []threshsig.Share
	done   func(threshsig.Signature, error)
}

func (d *deferredSink) VerifyShares(jobs []VerifyJob, done func([][]threshsig.Share)) {
	d.verifies = append(d.verifies, deferredVerify{jobs, done})
}

func (d *deferredSink) Combine(kind ShareKind, digest []byte, shares []threshsig.Share, done func(threshsig.Signature, error)) {
	d.combines = append(d.combines, deferredCombine{kind, digest, shares, done})
}

// releaseVerify completes the oldest queued verification.
func (d *deferredSink) releaseVerify() {
	v := d.verifies[0]
	d.verifies = d.verifies[1:]
	ok := make([][]threshsig.Share, len(v.jobs))
	for i, j := range v.jobs {
		ok[i] = VerifyJobShares(d.suite, j)
	}
	v.done(ok)
}

// releaseCombine completes the oldest queued combination.
func (d *deferredSink) releaseCombine() {
	c := d.combines[0]
	d.combines = d.combines[1:]
	sig, err := SchemeFor(d.suite, c.kind).CombineVerified(c.digest, c.shares)
	c.done(sig, err)
}

func TestCryptoSinkBatchesPerSlot(t *testing.T) {
	seq := collectorSeqFor(DefaultConfig(1, 0), 2, 0)
	rg := newRig(t, 2, nil)
	sink := &deferredSink{suite: rg.suite}
	rg.r.SetCryptoSink(sink)

	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	// The pre-prepare stages this collector's OWN σ+τ shares: one
	// in-flight batch.
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	if len(sink.verifies) != 1 {
		t.Fatalf("%d verify batches in flight, want 1", len(sink.verifies))
	}
	// While that batch is held, the peers' shares pile into the next
	// batch instead of going to the sink one by one.
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		if i == 2 {
			continue
		}
		rg.r.Deliver(i, rg.signShare(i, seq, 0, reqs, true))
	}
	if len(sink.verifies) != 1 {
		t.Fatalf("shares bypassed the per-slot queue: %d batches", len(sink.verifies))
	}
	sink.releaseVerify() // own shares apply; queued shares flush as batch #2
	if len(sink.verifies) != 1 {
		t.Fatalf("queued shares did not flush: %d batches", len(sink.verifies))
	}
	// Batch #2 must aggregate the three waiting messages into per-kind
	// jobs of three shares each — the RLC amortization unit.
	for _, job := range sink.verifies[0].jobs {
		if len(job.Shares) != 3 {
			t.Fatalf("job kind=%d has %d shares, want 3 (not batched)", job.Kind, len(job.Shares))
		}
	}
	sink.releaseVerify()
	// σ quorum reached → the combine is staged, not run inline.
	if len(sink.combines) != 1 || sink.combines[0].kind != ShareSigma {
		t.Fatalf("combines = %+v", sink.combines)
	}
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FullCommitProofMsg); return ok }) != 0 {
		t.Fatal("proof sent before the combine completed")
	}
	sink.releaseCombine()
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FullCommitProofMsg); return ok }) == 0 {
		t.Fatal("no full-commit-proof after the async combine")
	}
}

func TestCryptoSinkBlamesBadShare(t *testing.T) {
	seq := collectorSeqFor(DefaultConfig(1, 0), 2, 0)
	rg := newRig(t, 2, nil)
	sink := &deferredSink{suite: rg.suite}
	rg.r.SetCryptoSink(sink)

	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	sink.releaseVerify() // own shares

	// Replica 3 sends a valid τ share but a garbage σ share.
	m := rg.signShare(3, seq, 0, reqs, false)
	m.SigmaSig = threshsig.Share{Signer: 3, Data: []byte("garbage")}
	rg.r.Deliver(3, m)
	sink.releaseVerify()

	s := rg.r.slots[seq]
	if _, ok := s.tauShares[3]; !ok {
		t.Fatal("valid τ share not counted")
	}
	if _, ok := s.sigmaShares[3]; ok {
		t.Fatal("garbage σ share counted")
	}
	if rg.r.Metrics.BadShares != 1 {
		t.Fatalf("BadShares = %d, want 1", rg.r.Metrics.BadShares)
	}
}

func TestCryptoSinkEpochInvalidation(t *testing.T) {
	seq := collectorSeqFor(DefaultConfig(1, 0), 2, 0)
	rg := newRig(t, 2, nil)
	sink := &deferredSink{suite: rg.suite}
	rg.r.SetCryptoSink(sink)

	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	rg.r.Deliver(1, rg.signShare(1, seq, 0, reqs, true))

	// The collector state resets (as a new view would) while the batch is
	// in flight: the completion must be dropped, not applied to the fresh
	// maps.
	s := rg.r.slots[seq]
	s.resetCollector(0)
	for len(sink.verifies) > 0 {
		sink.releaseVerify()
	}
	if len(s.tauShares) != 0 || len(s.sigmaShares) != 0 {
		t.Fatalf("stale verification applied after reset: τ=%d σ=%d", len(s.tauShares), len(s.sigmaShares))
	}
	// The pipeline must not be wedged: fresh shares still verify.
	rg.r.Deliver(3, rg.signShare(3, seq, 0, reqs, true))
	if len(sink.verifies) != 1 {
		t.Fatal("verify pipeline wedged after epoch bump")
	}
	sink.releaseVerify()
	if _, ok := s.tauShares[3]; !ok {
		t.Fatal("fresh share not applied after reset")
	}
}

func TestVerifyJobSharesRLCBlame(t *testing.T) {
	// Against the real BLS scheme: a clean batch passes through the RLC
	// check whole; a poisoned batch falls back to per-share verification
	// and blames exactly the culprit.
	cfg := DefaultConfig(1, 0)
	suite, keys, err := DealSuite(cfg, threshbls.Dealer{})
	if err != nil {
		t.Fatal(err)
	}
	digest := []byte("batch-digest")
	var shares []threshsig.Share
	for i := 0; i < 3; i++ {
		sh, err := keys[i].Tau.Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	ok := VerifyJobShares(suite, VerifyJob{Kind: ShareTau, Digest: digest, Shares: shares})
	if len(ok) != 3 {
		t.Fatalf("clean batch verified %d/3", len(ok))
	}
	// Corrupt the middle share: the batch check fails, the fallback must
	// keep the two honest shares and drop the culprit.
	poisoned := append([]threshsig.Share(nil), shares...)
	bad, err := keys[1].Tau.Sign([]byte("some-other-digest"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Signer = shares[1].Signer
	poisoned[1] = bad
	ok = VerifyJobShares(suite, VerifyJob{Kind: ShareTau, Digest: digest, Shares: poisoned})
	if len(ok) != 2 {
		t.Fatalf("poisoned batch verified %d shares, want 2", len(ok))
	}
	for _, sh := range ok {
		if sh.Signer == shares[1].Signer {
			t.Fatal("culprit share survived the blame fallback")
		}
	}
}
