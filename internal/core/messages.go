package core

import (
	"crypto/sha256"
	"encoding/binary"
	"time"

	"sbft/internal/crypto/threshsig"
	"sbft/internal/merkle"
)

// Digest is a SHA-256 block or state digest.
type Digest [32]byte

// BlockHash computes h = H(s ‖ v ‖ r), the digest replicas threshold-sign
// (§V-C). Binding the view into the hash is what the view-change safety
// argument (§VI) relies on.
func BlockHash(seq uint64, view uint64, reqs []Request) Digest {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], view)
	h.Write(b[:])
	for _, r := range reqs {
		binary.BigEndian.PutUint64(b[:], uint64(r.Client))
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], r.Timestamp)
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], uint64(len(r.Op)))
		h.Write(b[:])
		h.Write(r.Op)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Request is a client operation (§V-A): ⟨"request", o, t, k⟩.
type Request struct {
	Client    int
	Timestamp uint64
	Op        []byte
	// Direct requests ask for the PBFT-style f+1 direct-reply path (§V-A
	// retry fallback) instead of the single execute-ack.
	Direct bool
}

// Message is implemented by all protocol messages. WireSize estimates the
// serialized size in bytes for the simulator's bandwidth model.
type Message interface {
	WireSize() int
}

const (
	msgHeader = 24 // type + seq + view framing estimate
	sigSize   = 33 // BLS signature size the paper reports (§III)
	shareSize = 33
	hashSize  = 32
)

func reqsSize(reqs []Request) int {
	n := 0
	for _, r := range reqs {
		n += 24 + len(r.Op)
	}
	return n
}

// RequestMsg carries a client request to the primary (or, on retry, to all
// replicas).
type RequestMsg struct {
	Req Request
}

// WireSize implements Message.
func (m RequestMsg) WireSize() int { return msgHeader + 24 + len(m.Req.Op) }

// PrePrepareMsg is ⟨"pre-prepare", s, v, r⟩ from the primary (§V-C).
type PrePrepareMsg struct {
	Seq  uint64
	View uint64
	Reqs []Request
}

// WireSize implements Message.
func (m PrePrepareMsg) WireSize() int { return msgHeader + reqsSize(m.Reqs) }

// SignShareMsg is ⟨"sign-share", s, v, σ_i(h), τ_i(h)⟩ sent by replicas to
// the C-collectors. Per §V-E it carries both the fast-path σ share and the
// slow-path τ share.
type SignShareMsg struct {
	Seq      uint64
	View     uint64
	Replica  int
	SigmaSig threshsig.Share
	TauSig   threshsig.Share
}

// WireSize implements Message.
func (m SignShareMsg) WireSize() int { return msgHeader + 2*shareSize }

// FullCommitProofMsg is ⟨"full-commit-proof", s, v, σ(h)⟩ from a
// C-collector: the fast-path commit certificate (§V-C).
type FullCommitProofMsg struct {
	Seq   uint64
	View  uint64
	Sigma threshsig.Signature
}

// WireSize implements Message.
func (m FullCommitProofMsg) WireSize() int { return msgHeader + sigSize }

// PrepareMsg is ⟨"prepare", s, v, τ(h)⟩: the linear-PBFT intermediate
// certificate broadcast when the fast path times out (§V-E).
type PrepareMsg struct {
	Seq  uint64
	View uint64
	Tau  threshsig.Signature
}

// WireSize implements Message.
func (m PrepareMsg) WireSize() int { return msgHeader + sigSize }

// CommitMsg is ⟨"commit", s, v, τ_i(τ(h))⟩ from a replica to the
// collectors in the slow path (§V-E).
type CommitMsg struct {
	Seq     uint64
	View    uint64
	Replica int
	TauTau  threshsig.Share
}

// WireSize implements Message.
func (m CommitMsg) WireSize() int { return msgHeader + shareSize }

// FullCommitProofSlowMsg is ⟨"full-commit-proof-slow", s, v, τ(τ(h))⟩: the
// slow-path commit certificate (§V-E). Tau is the inner prepare
// certificate so receivers that missed the PrepareMsg can still verify.
type FullCommitProofSlowMsg struct {
	Seq    uint64
	View   uint64
	Tau    threshsig.Signature
	TauTau threshsig.Signature
}

// WireSize implements Message.
func (m FullCommitProofSlowMsg) WireSize() int { return msgHeader + 2*sigSize }

// SignStateMsg is ⟨"sign-state", s, π_i(d)⟩ from a replica to the
// E-collectors after executing through s (§V-D).
type SignStateMsg struct {
	Seq     uint64
	Replica int
	Digest  []byte
	PiSig   threshsig.Share
}

// WireSize implements Message.
func (m SignStateMsg) WireSize() int { return msgHeader + hashSize + shareSize }

// FullExecuteProofMsg is ⟨"full-execute-proof", s, π(d)⟩ from an
// E-collector to all replicas (§V-D).
type FullExecuteProofMsg struct {
	Seq    uint64
	Digest []byte
	Pi     threshsig.Signature
}

// WireSize implements Message.
func (m FullExecuteProofMsg) WireSize() int { return msgHeader + hashSize + sigSize }

// ExecuteAckMsg is the single-message client acknowledgement
// ⟨"execute-ack", s, l, val, o, π(d), proof⟩ (§V-A, §V-D). View is the
// sender's current view — a routing hint that lets clients address the
// current primary directly after a view change instead of paying a retry
// broadcast. It is unauthenticated beside the ack itself; clients adopt
// it with bounded drift and reset it when routing demonstrably failed
// (see Client.complete), so a lying replica can only degrade latency,
// never safety.
type ExecuteAckMsg struct {
	Seq       uint64
	L         int
	Val       []byte
	Client    int
	Timestamp uint64
	View      uint64
	Digest    []byte
	Pi        threshsig.Signature
	Proof     []byte // application-encoded proof(o, l, s, D, val)
}

// WireSize implements Message.
func (m ExecuteAckMsg) WireSize() int {
	return msgHeader + len(m.Val) + hashSize + sigSize + len(m.Proof)
}

// ReplyMsg is the PBFT-style direct reply used when execution collectors
// are disabled or a client requested the f+1 fallback path. View carries
// the same routing hint as ExecuteAckMsg.View.
type ReplyMsg struct {
	Seq       uint64
	L         int
	Replica   int
	Client    int
	Timestamp uint64
	View      uint64
	Val       []byte
}

// WireSize implements Message.
func (m ReplyMsg) WireSize() int { return msgHeader + len(m.Val) + sigSize }

// BusyMsg is the §V-C backpressure reject: the primary's admission
// queue is full (len(pending) ≥ MaxPending), so the request was dropped
// instead of growing the queue without bound under open-loop overload.
// RetryAfter is a load-derived hint — roughly how long the queued
// backlog takes to drain — after which the client resubmits to the
// primary. The hint is unauthenticated advice: a lying primary can only
// delay one client's retry (bounded by its request timeout), never
// safety.
type BusyMsg struct {
	Client     int
	Timestamp  uint64
	RetryAfter time.Duration
}

// WireSize implements Message.
func (m BusyMsg) WireSize() int { return msgHeader + 16 }

// CheckpointShareMsg carries a replica's π share over the certified
// execution-state root at a checkpoint sequence (every win/2 executions,
// §V-F). Digest is the Merkle root committing to the application snapshot
// AND the last-reply table (see certstate.go); the share signs
// CheckpointSigDigest(Seq, Digest).
type CheckpointShareMsg struct {
	Seq     uint64
	Replica int
	Digest  []byte
	PiSig   threshsig.Share
}

// WireSize implements Message.
func (m CheckpointShareMsg) WireSize() int { return msgHeader + hashSize + shareSize }

// CheckpointCertMsg is the combined stable-checkpoint certificate
// broadcast by an E-collector.
type CheckpointCertMsg struct {
	Seq    uint64
	Digest []byte
	Pi     threshsig.Signature
}

// WireSize implements Message.
func (m CheckpointCertMsg) WireSize() int { return msgHeader + hashSize + sigSize }

// FetchCommitMsg asks a peer to retransmit the decision for a sequence
// number (the re-transmit layer assumed by the system model, §II: a
// replica with an execution gap repairs it without a view change).
type FetchCommitMsg struct {
	Replica int
	Seq     uint64
}

// WireSize implements Message.
func (m FetchCommitMsg) WireSize() int { return msgHeader }

// CommitInfoMsg retransmits a committed decision block with its commit
// certificate (fast σ(h) or slow τ(τ(h))), self-contained so the receiver
// can commit without having accepted the pre-prepare.
type CommitInfoMsg struct {
	Seq     uint64
	View    uint64 // view whose hash the certificate covers
	Reqs    []Request
	HasFast bool
	Sigma   threshsig.Signature
	Tau     threshsig.Signature
	TauTau  threshsig.Signature
}

// WireSize implements Message.
func (m CommitInfoMsg) WireSize() int { return msgHeader + reqsSize(m.Reqs) + 3*sigSize }

// FetchStateMsg asks a peer for the metadata of a certified checkpoint
// snapshot at or above Seq (state transfer, §VIII).
type FetchStateMsg struct {
	Replica int
	Seq     uint64
	// HaveSeq names the newest certified snapshot generation the fetcher
	// already fully holds (0 = none): a server retaining that generation
	// answers with a delta chunk list against it, so the fetcher transfers
	// only chunks that changed since.
	HaveSeq uint64
}

// WireSize implements Message.
func (m FetchStateMsg) WireSize() int { return msgHeader + 8 }

// SnapshotMetaMsg answers FetchStateMsg: the certified snapshot's root,
// its π stable-checkpoint certificate, and the header (leaf 0) with its
// membership proof. A receiver verifies π over
// CheckpointSigDigest(Seq, Root) and then the header proof before
// requesting chunks — everything after that is authenticated leaf by
// leaf. Fetchers poll every eligible server and briefly collect the
// competing (verified) metas, adopting the HIGHEST certified sequence:
// a Byzantine server racing a stale-but-valid meta cannot win the
// choice by answering first.
type SnapshotMetaMsg struct {
	Seq         uint64
	Root        []byte
	Pi          threshsig.Signature
	Header      SnapshotHeader
	HeaderProof merkle.Proof
	// DeltaBase (when non-zero) names a generation the fetcher claimed to
	// hold, and DeltaChunks lists the 1-based chunk indexes whose content
	// changed between that base and Seq — the fetcher may reuse its local
	// chunks for every other index. The delta fields are ADVISORY, not
	// certified: the fetcher re-derives the assembled root and falls back
	// to refetching reused chunks (blaming the meta sender) on mismatch,
	// so a lying delta list can waste bandwidth but never corrupt state.
	DeltaBase   uint64
	DeltaChunks []int
}

// WireSize implements Message.
func (m SnapshotMetaMsg) WireSize() int {
	return msgHeader + 2*hashSize + sigSize + len(m.HeaderProof.Steps)*hashSize +
		8 + 4*len(m.DeltaChunks)
}

// FetchSnapshotChunkMsg requests one chunk (1-based Merkle leaf index)
// of the certified snapshot at Seq. A recovering replica keeps a bounded
// window of these in flight (Config.FetchWindow), routes each through a
// per-server scheduler that prefers lightly-loaded, fast servers, and
// re-issues a request to a different server when it times out or its
// chunk fails verification.
type FetchSnapshotChunkMsg struct {
	Replica int
	Seq     uint64
	Index   int
}

// WireSize implements Message.
func (m FetchSnapshotChunkMsg) WireSize() int { return msgHeader }

// SnapshotChunkMsg carries one snapshot chunk with its membership proof
// against the certified root. Tampering with Data (or Proof) is detected
// by the receiver's leaf verification and blamed on the sender.
type SnapshotChunkMsg struct {
	Seq   uint64
	Index int
	Data  []byte
	Proof merkle.Proof
}

// WireSize implements Message.
func (m SnapshotChunkMsg) WireSize() int {
	return msgHeader + len(m.Data) + len(m.Proof.Steps)*hashSize
}

// SlotInfo is one sequence slot of a view-change message (§V-G): the pair
// x_j = (lm_j, fm_j). Each component carries the request block its
// certificate or share refers to, because the slow- and fast-path evidence
// of one replica may concern different blocks from different views; the
// new primary needs the block to re-propose it (§V-G1 describes the
// hash-chaining optimization that avoids shipping blocks).
type SlotInfo struct {
	Seq uint64

	// Slow-path component lm_j: a full commit certificate τ(τ(h)) with
	// its inner certificate, or else the highest accepted prepare.
	HasCommitProofSlow bool
	TauTau             threshsig.Signature
	Tau                threshsig.Signature
	SlowView           uint64
	SlowReqs           []Request

	HasPrepare  bool
	PrepareTau  threshsig.Signature
	PrepareView uint64
	PrepareReqs []Request

	// Fast-path component fm_j: a fast commit certificate σ(h), or else
	// this replica's own σ share over its highest accepted pre-prepare.
	HasCommitProof bool
	Sigma          threshsig.Signature
	FastView       uint64
	FastReqs       []Request

	HasPrePrepare  bool
	SigmaShare     threshsig.Share
	PrePrepareView uint64
	PrePrepareReqs []Request
}

// ViewChangeMsg is ⟨"view-change", v, ls, x_ls..x_ls+win⟩ (§V-G).
type ViewChangeMsg struct {
	NewView    uint64
	Replica    int
	LastStable uint64
	// StableDigest and StablePi prove LastStable is a valid checkpoint
	// (π(d_ls)); zero-valued for LastStable == 0 (genesis).
	StableDigest []byte
	StablePi     threshsig.Signature
	Slots        []SlotInfo
}

// WireSize implements Message.
func (m ViewChangeMsg) WireSize() int {
	n := msgHeader + hashSize + sigSize
	for _, s := range m.Slots {
		n += 16 + 4*sigSize + shareSize +
			reqsSize(s.SlowReqs) + reqsSize(s.PrepareReqs) +
			reqsSize(s.FastReqs) + reqsSize(s.PrePrepareReqs)
	}
	return n
}

// NewViewMsg carries the set of 2f+2c+1 view-change messages the new
// primary based its decisions on; replicas repeat the same deterministic
// computation (§VII "forwards both the decision and the signed messages").
type NewViewMsg struct {
	View        uint64
	ViewChanges []ViewChangeMsg
}

// WireSize implements Message.
func (m NewViewMsg) WireSize() int {
	n := msgHeader
	for _, vc := range m.ViewChanges {
		n += vc.WireSize()
	}
	return n
}

// ReadMsg asks one replica for a consensus-free certified read (ROADMAP
// item 2): the value of a key under the replica's latest π-certified
// snapshot root, proven by Merkle inclusion. Op is an application-encoded
// read operation (the replica maps it to a key via the KeyReader hook);
// MinSeq is the client's freshness floor — a replica whose certified
// frontier is below it answers ReadBehind instead of serving stale state
// (read-your-writes without consensus). Nonce matches replies to the
// in-flight read across failovers.
type ReadMsg struct {
	Client int
	Nonce  uint64
	Op     []byte
	MinSeq uint64
}

// WireSize implements Message.
func (m ReadMsg) WireSize() int { return msgHeader + 16 + len(m.Op) }

// Read reply statuses.
const (
	// ReadOK: the reply carries the certified snapshot evidence.
	ReadOK byte = iota + 1
	// ReadBehind: the replica's certified frontier is below the client's
	// MinSeq floor; Seq reports the frontier so the client can fail over.
	ReadBehind
	// ReadUnavailable: the replica cannot serve certified reads (no
	// certified snapshot yet, no bucketed layout, or the application has
	// no key mapping for the operation).
	ReadUnavailable
)

// ReadReplyMsg answers ReadMsg with everything the client needs to verify
// the read locally against the threshold-certified state:
//
//   - Root, Pi: the latest certified snapshot root and its π
//     stable-checkpoint certificate over CheckpointSigDigest(Seq, Root);
//   - Header, HeaderProof: the snapshot header (leaf 0) with its
//     inclusion proof, establishing the chunk layout under Root;
//   - ChunkIndex, Chunk, ChunkProof: the bucket chunk covering the key,
//     with its inclusion proof.
//
// The reply deliberately has NO separate value field: the client extracts
// the value from the verified bucket chunk itself, which authenticates
// both presence and absence of the key — a lying replica cannot drop a
// key from a chunk without breaking the inclusion proof.
type ReadReplyMsg struct {
	Client  int
	Nonce   uint64
	Replica int
	Status  byte
	Seq     uint64

	Root        []byte
	Pi          threshsig.Signature
	Header      SnapshotHeader
	HeaderProof merkle.Proof
	ChunkIndex  int
	Chunk       []byte
	ChunkProof  merkle.Proof
}

// WireSize implements Message.
func (m ReadReplyMsg) WireSize() int {
	return msgHeader + 16 + hashSize + sigSize + len(m.Chunk) +
		(len(m.HeaderProof.Steps)+len(m.ChunkProof.Steps))*hashSize
}

// TauTauDigest exposes the outer slow-path signing digest for a prepare
// certificate. Adversarial harnesses use it to let colluding replicas
// jointly sign commit shares over certificates they assembled from pooled
// key material (forging with owned keys is within a Byzantine set's power;
// only quorum intersection protects honest replicas).
func TauTauDigest(inner threshsig.Signature) []byte {
	return tauTauDigest(inner)
}

// tauTauDigest is the digest signed by the outer τ threshold in the slow
// path: the bytes of the inner certificate τ(h).
func tauTauDigest(inner threshsig.Signature) []byte {
	h := sha256.Sum256(append([]byte("sbft:tautau:"), inner.Data...))
	return h[:]
}

// StateSigDigest exposes the domain-separated π signing digest for a
// state at a sequence number. Adversarial harnesses use it to craft
// correctly-signed conflicting checkpoint shares (a Byzantine replica
// owns its key shares, so "signed garbage" is within its power).
func StateSigDigest(seq uint64, digest []byte) []byte {
	return stateSigDigest(seq, digest)
}

// stateSigDigest domain-separates π signatures over state digests at a
// sequence number.
func stateSigDigest(seq uint64, digest []byte) []byte {
	h := sha256.New()
	h.Write([]byte("sbft:state"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	h.Write(digest)
	return h.Sum(nil)
}
