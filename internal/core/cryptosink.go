package core

import (
	"fmt"

	"sbft/internal/crypto/threshsig"
)

// This file moves the threshold-crypto heavy lifting — share verification
// and signature combination — behind a sans-io sink, the same shape as
// SnapshotSink: the replica hands work over with a completion callback
// and the runtime decides where it runs. On one event loop, share
// verification dominates the collector cost (§V-E: a C-collector pays
// 3f+c+1 pairing checks per block) and caps throughput; a worker-pool
// sink parallelizes it without the replica itself growing threads.

// ShareKind names the threshold scheme a verification or combination
// belongs to: σ (3f+c+1), τ (2f+c+1) or π (f+1).
type ShareKind int

const (
	ShareSigma ShareKind = iota
	ShareTau
	SharePi
)

// VerifyJob is one batch of shares claimed to sign one digest under one
// scheme. Batching per (slot, kind, digest) is what lets the RLC
// BatchVerifyShares path amortize pairings: k shares cost ~2 pairings
// instead of 2k when the batch is clean.
type VerifyJob struct {
	Kind   ShareKind
	Digest []byte
	Shares []threshsig.Share
}

// CryptoSink runs threshold-crypto work off the replica event loop.
//
// Contract (mirrors SnapshotSink): calls must not block — hand the work
// to workers or run it inline. done MUST be invoked on the replica's
// event-loop thread (the transport shell routes it through Shell.Do; the
// simulated cluster schedules it on the deterministic event loop), and
// may be invoked synchronously from within the call — the inline
// fallback used when no sink is installed does exactly that. Inputs are
// immutable once handed over and safe to read off-loop.
//
// VerifyShares reports, per job, the subset of shares that verified
// (order-preserving). Combine combines already-verified shares.
type CryptoSink interface {
	VerifyShares(jobs []VerifyJob, done func(ok [][]threshsig.Share))
	Combine(kind ShareKind, digest []byte, shares []threshsig.Share, done func(sig threshsig.Signature, err error))
}

// SetCryptoSink installs the crypto sink; nil restores the inline
// synchronous path.
func (r *Replica) SetCryptoSink(cs CryptoSink) {
	if cs == nil {
		cs = syncSink{r.suite}
	}
	r.csink = cs
}

// SchemeFor selects the scheme a kind refers to.
func SchemeFor(suite CryptoSuite, kind ShareKind) threshsig.Scheme {
	switch kind {
	case ShareSigma:
		return suite.Sigma
	case SharePi:
		return suite.Pi
	default:
		return suite.Tau
	}
}

// VerifyJobShares runs one job synchronously and returns the verified
// subset. Shared by the inline fallback and the worker-pool sinks so the
// verification policy cannot diverge: multi-share jobs go through the
// scheme's randomized-linear-combination batch check when it offers one,
// falling back to per-share verification to blame the culprits only when
// the batch fails (§III robustness).
func VerifyJobShares(suite CryptoSuite, job VerifyJob) []threshsig.Share {
	scheme := SchemeFor(suite, job.Kind)
	if len(job.Shares) > 1 {
		type rlcBatcher interface {
			BatchVerifyShares(digest []byte, shares []threshsig.Share) error
		}
		if bv, ok := scheme.(rlcBatcher); ok && bv.BatchVerifyShares(job.Digest, job.Shares) == nil {
			return job.Shares
		}
	}
	ok := make([]threshsig.Share, 0, len(job.Shares))
	for _, sh := range job.Shares {
		if scheme.VerifyShare(job.Digest, sh) == nil {
			ok = append(ok, sh)
		}
	}
	return ok
}

// syncSink is the inline fallback installed when no CryptoSink is set:
// everything runs synchronously on the event loop, preserving the
// original single-threaded semantics exactly.
type syncSink struct{ suite CryptoSuite }

func (s syncSink) VerifyShares(jobs []VerifyJob, done func([][]threshsig.Share)) {
	ok := make([][]threshsig.Share, len(jobs))
	for i, j := range jobs {
		ok[i] = VerifyJobShares(s.suite, j)
	}
	done(ok)
}

func (s syncSink) Combine(kind ShareKind, digest []byte, shares []threshsig.Share, done func(threshsig.Signature, error)) {
	sig, err := SchemeFor(s.suite, kind).CombineVerified(digest, shares)
	done(sig, err)
}

// ---------------------------------------------------------------------------
// Per-slot share staging.

// pendingVerify is one share staged for off-loop verification, with the
// continuation to run on the event loop if it verifies.
type pendingVerify struct {
	kind   ShareKind
	digest []byte
	share  threshsig.Share
	apply  func()
}

// enqueueShare stages one share of a slot for verification WITHOUT
// flushing, so a handler can stage several shares of one message into
// the same batch. apply runs on the event loop after the share verifies;
// it must re-check its own preconditions (view, duplicates) because the
// replica may have moved on while the batch was in flight.
func (r *Replica) enqueueShare(s *slot, kind ShareKind, digest []byte, share threshsig.Share, apply func()) {
	s.verifyQ = append(s.verifyQ, pendingVerify{kind: kind, digest: digest, share: share, apply: apply})
}

// stageShare enqueues one share and flushes immediately.
func (r *Replica) stageShare(s *slot, kind ShareKind, digest []byte, share threshsig.Share, apply func()) {
	r.enqueueShare(s, kind, digest, share, apply)
	r.flushVerifyQ(s)
}

// flushVerifyQ hands the slot's staged shares to the sink as one batch.
// At most one batch per slot is in flight: while workers verify it,
// newly arriving shares pile into the next batch — under load this is
// what aggregates shares for the RLC path without adding any latency
// when the slot is idle. The continuation is guarded by slot identity
// and verifyEpoch (bumped by resetCollector), so work verified for a
// dead collector round is dropped, never applied.
func (r *Replica) flushVerifyQ(s *slot) {
	if s.verifying || len(s.verifyQ) == 0 {
		return
	}
	batch := s.verifyQ
	s.verifyQ = nil
	s.verifying = true
	epoch := s.verifyEpoch
	seq := s.seq

	// Group entries into (kind, digest) jobs, preserving arrival order.
	var jobs []VerifyJob
	var members [][]int // job index → batch entry indexes
	pos := make(map[string]int, 2)
	for i, pv := range batch {
		key := fmt.Sprintf("%d/%s", pv.kind, pv.digest)
		j, ok := pos[key]
		if !ok {
			j = len(jobs)
			pos[key] = j
			jobs = append(jobs, VerifyJob{Kind: pv.kind, Digest: pv.digest})
			members = append(members, nil)
		}
		jobs[j].Shares = append(jobs[j].Shares, pv.share)
		members[j] = append(members[j], i)
	}

	r.csink.VerifyShares(jobs, func(ok [][]threshsig.Share) {
		cur, live := r.slots[seq]
		if !live || cur != s || s.verifyEpoch != epoch {
			return // slot reset for a new view, or GC'd past a checkpoint
		}
		s.verifying = false
		for j := range jobs {
			passed := make(map[int]bool, len(ok[j]))
			for _, sh := range ok[j] {
				passed[sh.Signer] = true
			}
			for _, i := range members[j] {
				pv := batch[i]
				if passed[pv.share.Signer] {
					pv.apply()
				} else {
					r.Metrics.BadShares++
				}
			}
		}
		r.flushVerifyQ(s)
	})
}

// resetVerifyQ invalidates all staged and in-flight verification of a
// slot (called when the collector state resets for a new view).
func (s *slot) resetVerifyQ() {
	s.verifyEpoch++
	s.verifyQ = nil
	s.verifying = false
}
