package core

import (
	"errors"
	"testing"
	"time"

	"sbft/internal/crypto/threshsig"
)

type threshShare = threshsig.Share

// ErrInvalidProof is a sentinel for verifier-rejection tests.
var ErrInvalidProof = errors.New("test: invalid proof")

// fakeEnv drives sans-io nodes deterministically.
type fakeEnv struct {
	now    time.Duration
	sent   []fakeSent
	timers []*fakeTimer
}

type fakeSent struct {
	to  int
	msg Message
}

type fakeTimer struct {
	at        time.Duration
	fn        func()
	cancelled bool
}

func (e *fakeEnv) Send(to int, msg Message) { e.sent = append(e.sent, fakeSent{to, msg}) }
func (e *fakeEnv) Now() time.Duration       { return e.now }
func (e *fakeEnv) After(d time.Duration, fn func()) func() {
	t := &fakeTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return func() { t.cancelled = true }
}

func (e *fakeEnv) advance(d time.Duration) {
	e.now += d
	for _, t := range e.timers {
		if !t.cancelled && t.fn != nil && t.at <= e.now {
			fn := t.fn
			t.fn = nil
			fn()
		}
	}
}

func newTestClient(t *testing.T) (*Client, *fakeEnv, CryptoSuite, []ReplicaKeys) {
	t.Helper()
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "client-test")
	if err != nil {
		t.Fatal(err)
	}
	env := &fakeEnv{}
	c, err := NewClient(ClientBase, cfg, suite, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, env, suite, keys
}

func TestNewClientValidation(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	suite, _, _ := InsecureSuite(cfg, "x")
	if _, err := NewClient(5, cfg, suite, &fakeEnv{}, nil); err == nil {
		t.Fatal("replica-range id accepted as client")
	}
}

func TestClientSubmitSendsToPrimary(t *testing.T) {
	c, env, _, _ := newTestClient(t)
	if c.Busy() {
		t.Fatal("fresh client busy")
	}
	if err := c.Submit([]byte("op")); err != nil {
		t.Fatal(err)
	}
	if !c.Busy() {
		t.Fatal("client not busy after submit")
	}
	if err := c.Submit([]byte("op2")); err == nil {
		t.Fatal("second concurrent submit accepted")
	}
	if len(env.sent) != 1 || env.sent[0].to != 1 {
		t.Fatalf("request not sent to the view-0 primary: %+v", env.sent)
	}
	req := env.sent[0].msg.(RequestMsg)
	if req.Req.Timestamp != 1 || string(req.Req.Op) != "op" || req.Req.Direct {
		t.Fatalf("bad request %+v", req)
	}
}

// buildExecAck assembles a valid execute-ack for op with the suite's π
// scheme.
func buildExecAck(t *testing.T, suite CryptoSuite, keys []ReplicaKeys, client int, ts uint64, val []byte) ExecuteAckMsg {
	t.Helper()
	digest := []byte("state-digest")
	sd := stateSigDigest(7, digest)
	sh1, err := keys[0].Pi.Sign(sd)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := keys[1].Pi.Sign(sd)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := suite.Pi.Combine(sd, []threshsigShare{sh1, sh2})
	if err != nil {
		t.Fatal(err)
	}
	return ExecuteAckMsg{
		Seq: 7, L: 0, Val: val,
		Client: client, Timestamp: ts,
		Digest: digest, Pi: pi,
	}
}

func TestClientAcceptsSingleExecuteAck(t *testing.T) {
	c, env, suite, keys := newTestClient(t)
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	if err := c.Submit([]byte("op")); err != nil {
		t.Fatal(err)
	}
	env.advance(30 * time.Millisecond)
	c.Deliver(2, buildExecAck(t, suite, keys, c.ID(), 1, []byte("result")))
	if got == nil {
		t.Fatal("no result after valid execute-ack")
	}
	if string(got.Val) != "result" || !got.FastAck || got.Seq != 7 {
		t.Fatalf("result = %+v", got)
	}
	if got.Latency != 30*time.Millisecond {
		t.Fatalf("latency = %v", got.Latency)
	}
	if c.Busy() {
		t.Fatal("client still busy after completion")
	}
}

func TestClientRejectsForgedAck(t *testing.T) {
	c, env, suite, keys := newTestClient(t)
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	c.Submit([]byte("op"))
	_ = env

	t.Run("bad signature", func(t *testing.T) {
		m := buildExecAck(t, suite, keys, c.ID(), 1, []byte("v"))
		m.Pi.Data = []byte("forged")
		c.Deliver(2, m)
		if got != nil {
			t.Fatal("forged π accepted")
		}
	})
	t.Run("wrong timestamp", func(t *testing.T) {
		m := buildExecAck(t, suite, keys, c.ID(), 99, []byte("v"))
		c.Deliver(2, m)
		if got != nil {
			t.Fatal("mismatched timestamp accepted")
		}
	})
	t.Run("wrong client", func(t *testing.T) {
		m := buildExecAck(t, suite, keys, c.ID()+1, 1, []byte("v"))
		c.Deliver(2, m)
		if got != nil {
			t.Fatal("another client's ack accepted")
		}
	})
}

func TestClientVerifierRejection(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	suite, keys, _ := InsecureSuite(cfg, "client-test")
	env := &fakeEnv{}
	rejectAll := func([]byte, []byte, []byte, uint64, int, []byte) error {
		return ErrInvalidProof
	}
	c, err := NewClient(ClientBase, cfg, suite, env, rejectAll)
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	c.Submit([]byte("op"))
	c.Deliver(2, buildExecAck(t, suite, keys, c.ID(), 1, []byte("v")))
	if got != nil {
		t.Fatal("ack accepted despite proof verifier rejection")
	}
}

func TestClientFPlusOneReplyPath(t *testing.T) {
	c, _, _, _ := newTestClient(t)
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	c.Submit([]byte("op"))

	reply := func(from int, val string) {
		c.Deliver(from, ReplyMsg{
			Seq: 3, L: 0, Replica: from,
			Client: c.ID(), Timestamp: 1, Val: []byte(val),
		})
	}
	reply(1, "A")
	if got != nil {
		t.Fatal("single reply accepted (need f+1 = 2)")
	}
	reply(2, "B") // mismatched value: no quorum yet
	if got != nil {
		t.Fatal("mismatched replies accepted")
	}
	reply(3, "A") // second matching reply → f+1
	if got == nil {
		t.Fatal("f+1 matching replies not accepted")
	}
	if string(got.Val) != "A" || got.FastAck {
		t.Fatalf("result = %+v", got)
	}
}

func TestClientDuplicateReplySameReplica(t *testing.T) {
	c, _, _, _ := newTestClient(t)
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	c.Submit([]byte("op"))
	for i := 0; i < 3; i++ {
		c.Deliver(2, ReplyMsg{Seq: 3, Replica: 2, Client: c.ID(), Timestamp: 1, Val: []byte("A")})
	}
	if got != nil {
		t.Fatal("duplicate replies from one replica counted toward f+1")
	}
}

func TestClientRetryBroadcastsDirect(t *testing.T) {
	c, env, _, _ := newTestClient(t)
	c.RequestTimeout = 100 * time.Millisecond
	c.SetOnResult(func(Result) {})
	c.Submit([]byte("op"))
	env.advance(150 * time.Millisecond)

	// After the timeout the client rebroadcasts with Direct=true (§V-A).
	direct := 0
	for _, m := range env.sent[1:] {
		if r, ok := m.msg.(RequestMsg); ok && r.Req.Direct {
			direct++
		}
	}
	if direct != c.cfg.N() {
		t.Fatalf("retry broadcast reached %d replicas, want %d", direct, c.cfg.N())
	}
	if c.Retries != 1 {
		t.Fatalf("Retries = %d", c.Retries)
	}
}

func TestClientIgnoresRepliesFromNonReplicas(t *testing.T) {
	c, _, _, _ := newTestClient(t)
	var got *Result
	c.SetOnResult(func(r Result) { got = &r })
	c.Submit([]byte("op"))
	// Sender ids outside 1..n must not count.
	c.Deliver(99, ReplyMsg{Seq: 1, Replica: 99, Client: c.ID(), Timestamp: 1, Val: []byte("A")})
	c.Deliver(100, ReplyMsg{Seq: 1, Replica: 100, Client: c.ID(), Timestamp: 1, Val: []byte("A")})
	if got != nil {
		t.Fatal("replies from non-replica ids accepted")
	}
}

// threshsigShare aliases the share type for test brevity.
type threshsigShare = threshShare

// threshSig aliases the signature type for replica tests.
type threshSig = threshsig.Signature

// TestClientLearnsViewFromReplies pins the post-view-change routing
// optimization: the client adopts the view hint carried by the f+1
// matching repliers (or by a verified execute-ack) and addresses the new
// view's primary directly on the next operation.
func TestClientLearnsViewFromReplies(t *testing.T) {
	c, env, _, _ := newTestClient(t)
	c.SetOnResult(func(Result) {})
	c.Submit([]byte("op1"))
	if env.sent[0].to != c.cfg.Primary(0) {
		t.Fatalf("first request sent to %d, want view-0 primary %d", env.sent[0].to, c.cfg.Primary(0))
	}

	// Two matching replies claiming view 3 (one honest is among any f+1).
	for _, from := range []int{2, 3} {
		c.Deliver(from, ReplyMsg{
			Seq: 3, Replica: from, Client: c.ID(), Timestamp: 1, View: 3, Val: []byte("A"),
		})
	}
	if c.View() != 3 {
		t.Fatalf("client view = %d after f+1 replies claiming view 3", c.View())
	}

	before := len(env.sent)
	c.Submit([]byte("op2"))
	if to := env.sent[before].to; to != c.cfg.Primary(3) {
		t.Fatalf("post-view-change request sent to %d, want view-3 primary %d", to, c.cfg.Primary(3))
	}
}

// TestClientViewHintFromExecuteAck: the single-message path updates the
// view too, and stale hints never move the view backwards (absent retry
// evidence that the stored view misroutes).
func TestClientViewHintFromExecuteAck(t *testing.T) {
	c, _, suite, keys := newTestClient(t)
	c.SetOnResult(func(Result) {})
	c.Submit([]byte("op"))
	ack := buildExecAck(t, suite, keys, c.ID(), 1, []byte("r"))
	ack.View = 3
	c.Deliver(2, ack)
	if c.View() != 3 {
		t.Fatalf("client view = %d after execute-ack claiming view 3", c.View())
	}

	// A later completion with a stale view hint must not regress.
	c.Submit([]byte("op2"))
	ack2 := buildExecAck(t, suite, keys, c.ID(), 2, []byte("r2"))
	ack2.View = 1
	c.Deliver(3, ack2)
	if c.View() != 3 {
		t.Fatalf("client view regressed to %d on stale hint", c.View())
	}
}

// TestClientViewHintBoundedAndResetOnRetry pins the anti-poisoning rules:
// a wildly inflated hint (a lying replica steering the client at a view
// where it would be primary forever) is rejected by the one-rotation
// drift cap, and an operation that needed the retry broadcast — proof
// the stored view misroutes — replaces the stored view with the
// completing quorum's hint, even downward.
func TestClientViewHintBoundedAndResetOnRetry(t *testing.T) {
	c, env, suite, keys := newTestClient(t)
	c.SetOnResult(func(Result) {})
	c.RequestTimeout = time.Second

	// Inflated single-ack hint: rejected (drift cap is one rotation, n=4).
	c.Submit([]byte("op"))
	ack := buildExecAck(t, suite, keys, c.ID(), 1, []byte("r"))
	ack.View = 1000
	c.Deliver(2, ack)
	if c.View() != 0 {
		t.Fatalf("client adopted inflated view %d", c.View())
	}

	// Legitimately reach view 3, then a retried op completes with a
	// quorum claiming view 1: the reset rule adopts it (downward).
	c.Submit([]byte("op2"))
	ack2 := buildExecAck(t, suite, keys, c.ID(), 2, []byte("r2"))
	ack2.View = 3
	c.Deliver(2, ack2)
	if c.View() != 3 {
		t.Fatalf("client view = %d, want 3", c.View())
	}
	c.Submit([]byte("op3"))
	env.advance(2 * time.Second) // force the §V-A retry broadcast
	for _, from := range []int{1, 4} {
		c.Deliver(from, ReplyMsg{
			Seq: 9, Replica: from, Client: c.ID(), Timestamp: 3, View: 1, Val: []byte("v"),
		})
	}
	if c.View() != 1 {
		t.Fatalf("client view = %d after retried completion hinting view 1, want reset", c.View())
	}
}

// TestClientMismatchedRepliesDoNotMoveView: view hints from replies that
// never formed the f+1 quorum are not adopted.
func TestClientMismatchedRepliesDoNotMoveView(t *testing.T) {
	c, _, _, _ := newTestClient(t)
	c.SetOnResult(func(Result) {})
	c.Submit([]byte("op"))
	c.Deliver(2, ReplyMsg{Seq: 3, Replica: 2, Client: c.ID(), Timestamp: 1, View: 9, Val: []byte("X")})
	if c.View() != 0 {
		t.Fatalf("client adopted view %d from a single unconfirmed reply", c.View())
	}
}

// TestClientRetriedFastAckHintStillCapped: the downward-reset rule for
// retried operations must not open an unbounded upward channel — a single
// unauthenticated execute-ack after a retry cannot teleport the view.
func TestClientRetriedFastAckHintStillCapped(t *testing.T) {
	c, env, suite, keys := newTestClient(t)
	c.SetOnResult(func(Result) {})
	c.RequestTimeout = time.Second
	c.Submit([]byte("op"))
	env.advance(2 * time.Second) // retried
	ack := buildExecAck(t, suite, keys, c.ID(), 1, []byte("r"))
	ack.View = 1 << 40
	c.Deliver(2, ack)
	if c.View() != 0 {
		t.Fatalf("retried completion adopted inflated view %d", c.View())
	}
}
