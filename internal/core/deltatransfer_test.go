package core

import (
	"bytes"
	"testing"
	"time"

	"sbft/internal/storage"
)

// Tests for incremental checkpoints and delta-based state transfer: the
// bounded retention chain of snapshot generations, per-generation delta
// sets, delta-advertising metadata, prefill from locally held bases, and
// the satellite fixes that ride along (pendingSnap GC, laggard-server
// demotion, durable-point retention gating).

// chunkSnaps builds two same-shape app snapshots (3 full chunks) that
// differ only inside the second chunk, so the certified delta between
// them is exactly chunk index 2.
func chunkSnaps() (a, b []byte) {
	a = bytes.Repeat([]byte{0xA1}, 3*SnapshotChunkSize)
	b = append([]byte(nil), a...)
	b[SnapshotChunkSize+100] ^= 0xFF
	return a, b
}

// deltaMetaOf is metaOf plus the advisory delta fields.
func deltaMetaOf(t *testing.T, cs *CertifiedSnapshot, base uint64, delta []int) SnapshotMetaMsg {
	t.Helper()
	m := metaOf(t, cs)
	m.DeltaBase = base
	m.DeltaChunks = delta
	return m
}

func TestSnapshotDeltaLeafDiff(t *testing.T) {
	sa, sb := chunkSnaps()
	csA := NewCertifiedSnapshot(4, []byte{0}, sa, encodeReplyTable(nil))
	csB := NewCertifiedSnapshot(8, []byte{0}, sb, encodeReplyTable(nil))
	got := snapshotDelta(csA, csB)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("snapshotDelta = %v, want [2]", got)
	}
	// Growth: a successor with more chunks includes every new index.
	csC := NewCertifiedSnapshot(12, []byte{0}, bytes.Repeat([]byte{0xA1}, 5*SnapshotChunkSize), encodeReplyTable(nil))
	grown := snapshotDelta(csA, csC)
	want := map[int]bool{5: true, 6: true} // two new app chunks (table chunk shifts index)
	for _, idx := range grown {
		delete(want, idx)
	}
	if len(want) != 0 {
		t.Fatalf("snapshotDelta growth %v missed new indexes %v", grown, want)
	}
}

func TestRetentionChainBounded(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.SnapshotRetain = 3 })
	for seq := uint64(4); seq <= 24; seq += 4 {
		rg.r.adoptSnapshot(certifiedAt(t, rg, seq, nil))
	}
	got := rg.r.RetainedSnapshotSeqs()
	want := []uint64{16, 20, 24}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
	// Every retained generation past the first carries a known delta.
	for i, g := range rg.r.snapGens {
		if i > 0 && !g.deltaKnown {
			t.Fatalf("generation %d adopted in sequence lacks its delta", g.cs.Seq)
		}
	}
}

func TestDeltaSinceUnionAcrossGenerations(t *testing.T) {
	rg := newRig(t, 1, nil)
	sa, sb := chunkSnaps()
	sc := append([]byte(nil), sb...)
	sc[100] ^= 0xFF // third generation additionally dirties chunk 1
	rg.r.adoptSnapshot(certifiedSized(t, rg, 4, sa, nil))
	rg.r.adoptSnapshot(certifiedSized(t, rg, 8, sb, nil))
	rg.r.adoptSnapshot(certifiedSized(t, rg, 12, sc, nil))

	delta, ok := rg.r.deltaSince(4)
	if !ok {
		t.Fatal("deltaSince(4) not servable despite full retention")
	}
	if len(delta) != 2 || delta[0] != 1 || delta[1] != 2 {
		t.Fatalf("deltaSince(4) = %v, want [1 2]", delta)
	}
	delta, ok = rg.r.deltaSince(8)
	if !ok || len(delta) != 1 || delta[0] != 1 {
		t.Fatalf("deltaSince(8) = %v (ok=%v), want [1]", delta, ok)
	}
	if _, ok := rg.r.deltaSince(2); ok {
		t.Fatal("deltaSince served for a base never retained")
	}
}

// TestServerAdvertisesDelta: a FetchState carrying HaveSeq for a retained
// generation gets metadata with the delta fields populated; an unknown
// base gets plain full-transfer metadata.
func TestServerAdvertisesDelta(t *testing.T) {
	rg := newRig(t, 1, nil)
	sa, sb := chunkSnaps()
	rg.r.adoptSnapshot(certifiedSized(t, rg, 4, sa, nil))
	rg.r.adoptSnapshot(certifiedSized(t, rg, 8, sb, nil))

	before := len(rg.env.sent)
	rg.r.Deliver(2, FetchStateMsg{Replica: 2, Seq: 8, HaveSeq: 4})
	var meta *SnapshotMetaMsg
	for _, s := range rg.env.sent[before:] {
		if m, ok := s.msg.(SnapshotMetaMsg); ok && s.to == 2 {
			mm := m
			meta = &mm
		}
	}
	if meta == nil {
		t.Fatal("no metadata served")
	}
	if meta.DeltaBase != 4 || len(meta.DeltaChunks) != 1 || meta.DeltaChunks[0] != 2 {
		t.Fatalf("delta advertisement = base %d chunks %v, want base 4 chunks [2]", meta.DeltaBase, meta.DeltaChunks)
	}

	before = len(rg.env.sent)
	rg.r.Deliver(2, FetchStateMsg{Replica: 2, Seq: 8, HaveSeq: 3})
	for _, s := range rg.env.sent[before:] {
		if m, ok := s.msg.(SnapshotMetaMsg); ok {
			if m.DeltaBase != 0 || m.DeltaChunks != nil {
				t.Fatalf("unknown base got delta advertisement: base %d chunks %v", m.DeltaBase, m.DeltaChunks)
			}
		}
	}
}

// TestDeltaTransferPrefillsFromRetainedBase: the tentpole fetcher path. A
// laggard holding generation 4 asks for 8; the meta's delta names one
// changed chunk; every other chunk is seeded locally and only the delta
// crosses the wire.
func TestDeltaTransferPrefillsFromRetainedBase(t *testing.T) {
	rg := newRig(t, 1, nil)
	sa, sb := chunkSnaps()
	cs4 := certifiedSized(t, rg, 4, sa, nil)
	cs8 := certifiedSized(t, rg, 8, sb, nil)
	rg.r.adoptSnapshot(cs4)
	rg.r.lastExecuted = 4

	rg.r.maybeFetchState(8)
	// The metadata poll advertises the held base.
	advertised := false
	for _, s := range rg.env.sent {
		if m, ok := s.msg.(FetchStateMsg); ok && m.HaveSeq == 4 {
			advertised = true
		}
	}
	if !advertised {
		t.Fatal("FetchState did not advertise the held base generation")
	}
	rg.r.Deliver(2, deltaMetaOf(t, cs8, 4, snapshotDelta(cs4, cs8)))
	rg.env.advance(rg.cfg.snapshotMetaWait() + time.Millisecond)

	f := rg.r.fetch
	if f == nil || f.seq != 8 {
		t.Fatalf("transfer not adopted at 8")
	}
	if got := chunkReqCount(rg, 8); got != 1 {
		t.Fatalf("delta transfer requested %d chunks, want 1", got)
	}
	rg.r.Deliver(3, chunkOf(t, cs8, 2))
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("delta transfer did not complete (le=%d, want 8)", rg.r.LastExecuted())
	}
	m := rg.r.Metrics
	if m.SnapshotDeltaTransfers != 1 {
		t.Fatalf("SnapshotDeltaTransfers = %d, want 1", m.SnapshotDeltaTransfers)
	}
	if want := uint64(len(cs8.Chunks) - 1); m.SnapshotChunksReused != want {
		t.Fatalf("SnapshotChunksReused = %d, want %d", m.SnapshotChunksReused, want)
	}
	if m.SnapshotTransferRestarts != 0 {
		t.Fatalf("delta transfer counted %d restarts", m.SnapshotTransferRestarts)
	}
	if m.SnapshotBlames != 0 {
		t.Fatalf("honest delta transfer recorded %d blames", m.SnapshotBlames)
	}
	if rg.r.SnapshotSeq() != 8 {
		t.Fatalf("completed delta transfer not servable (SnapshotSeq=%d)", rg.r.SnapshotSeq())
	}
}

// TestMidTransferSupersessionKeepsProgressViaDelta: a checkpoint
// superseding the snapshot mid-transfer, with a delta against the
// in-flight base, carries every verified chunk forward — the transfer
// spans the interval boundary without restarting.
func TestMidTransferSupersessionKeepsProgressViaDelta(t *testing.T) {
	rg := newRig(t, 1, nil)
	sa, sb := chunkSnaps()
	cs4 := certifiedSized(t, rg, 4, sa, nil)
	cs8 := certifiedSized(t, rg, 8, sb, nil)

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs4, 2)
	rg.r.Deliver(3, chunkOf(t, cs4, 1)) // verified progress on the old base
	if rg.r.fetch.fetched != 1 {
		t.Fatalf("fetched = %d, want 1", rg.r.fetch.fetched)
	}
	// Supersession with a delta against the in-flight base: adopted
	// immediately — no stall needed — and the verified chunk carries over.
	rg.r.Deliver(3, deltaMetaOf(t, cs8, 4, snapshotDelta(cs4, cs8)))
	f := rg.r.fetch
	if f == nil || f.seq != 8 {
		t.Fatal("delta supersession not adopted")
	}
	if f.chunks[0] == nil {
		t.Fatal("verified chunk discarded across delta supersession")
	}
	if rg.r.Metrics.SnapshotTransferRestarts != 0 {
		t.Fatalf("delta supersession counted as restart")
	}
	// Remaining chunks (the changed one, and clean ones never fetched
	// against the old base) complete against the new snapshot.
	deliverAllChunks(t, rg, cs8, 4)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("superseded transfer did not complete at 8 (le=%d)", rg.r.LastExecuted())
	}
	if rg.r.Metrics.SnapshotTransferRestarts != 0 {
		t.Fatalf("restart counted on a progress-preserving supersession")
	}
}

// TestDiscardingSupersessionCountsRestart: a STALLED transfer superseded
// WITHOUT a usable delta throws its fetched chunks away — that, and only
// that, is a transfer restart.
func TestDiscardingSupersessionCountsRestart(t *testing.T) {
	rg := newRig(t, 1, nil)
	old := certifiedAt(t, rg, 4, nil)
	newer := certifiedAt(t, rg, 8, nil)

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, old, 2)
	rg.r.Deliver(3, chunkOf(t, old, 1)) // progress that will be lost
	rg.env.advance(2*rg.cfg.chunkRetryTimeout() + 100*time.Millisecond)
	rg.r.Deliver(3, metaOf(t, newer)) // no delta: full restart
	f := rg.r.fetch
	if f == nil || f.seq != newer.Seq {
		t.Fatal("stalled transfer did not restart at the newer snapshot")
	}
	if rg.r.Metrics.SnapshotTransferRestarts != 1 {
		t.Fatalf("SnapshotTransferRestarts = %d, want 1", rg.r.Metrics.SnapshotTransferRestarts)
	}
}

// TestLyingDeltaListBlamedAndRefetched: the delta fields ride outside the
// π-certified root, so a Byzantine server can claim changed chunks clean.
// The reassembled root exposes the lie; the fetcher blames the meta
// sender, drops only the seeded chunks, and refetches them — verified
// progress survives and the transfer still completes.
func TestLyingDeltaListBlamedAndRefetched(t *testing.T) {
	rg := newRig(t, 1, nil)
	sa, sb := chunkSnaps()
	cs4 := certifiedSized(t, rg, 4, sa, nil)
	cs8 := certifiedSized(t, rg, 8, sb, nil)
	rg.r.adoptSnapshot(cs4)
	rg.r.lastExecuted = 4

	rg.r.maybeFetchState(8)
	// Server 2 lies: "nothing changed since 4" — so every chunk seeds
	// from the base, including the one that actually differs.
	rg.r.Deliver(2, deltaMetaOf(t, cs8, 4, nil))
	rg.env.advance(rg.cfg.snapshotMetaWait() + time.Millisecond)

	if rg.r.Metrics.SnapshotBlames != 1 || rg.r.SnapshotBlameCounts()[2] != 1 {
		t.Fatalf("lying meta sender not blamed: %d blames, counts %v",
			rg.r.Metrics.SnapshotBlames, rg.r.SnapshotBlameCounts())
	}
	f := rg.r.fetch
	if f == nil {
		t.Fatal("transfer aborted instead of refetching the seeded chunks")
	}
	if f.missing != len(cs8.Chunks) {
		t.Fatalf("refetch covers %d chunks, want all %d (prefill untrusted wholesale)", f.missing, len(cs8.Chunks))
	}
	deliverAllChunks(t, rg, cs8, 3)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("transfer did not recover from a lying delta (le=%d)", rg.r.LastExecuted())
	}
	if rg.r.Metrics.SnapshotTransferRestarts != 0 {
		t.Fatalf("lying-delta recovery counted %d restarts", rg.r.Metrics.SnapshotTransferRestarts)
	}
}

// TestLaggardServerDemotedOnStaleMeta (fetcher side of the silent-drop
// fix): a server answering with metadata OLDER than the in-flight
// transfer has its outstanding requests expired immediately and takes
// timeout strikes toward soft exclusion — instead of each request routed
// to it burning a full retry timeout.
func TestLaggardServerDemotedOnStaleMeta(t *testing.T) {
	rg := newRig(t, 1, nil)
	old := certifiedAt(t, rg, 4, nil)
	cur := certifiedSized(t, rg, 8, bytes.Repeat([]byte("y"), 64*1024), nil)

	rg.r.maybeFetchState(8)
	deliverMeta(t, rg, cur, 3)
	f := rg.r.fetch
	outstanding := 0
	for _, req := range f.inflight {
		if req.server == 2 {
			outstanding++
		}
	}
	if outstanding == 0 {
		t.Fatal("no requests routed to server 2; rebalance the rig")
	}
	before := chunkReqCount(rg, 8)
	for i := 0; i < fetchTimeoutStrikes; i++ {
		rg.r.Deliver(2, metaOf(t, old))
	}
	for idx, req := range f.inflight {
		if req.server == 2 {
			t.Fatalf("chunk %d still in flight to the demoted laggard", idx)
		}
	}
	if f.stats(2).timeouts < fetchTimeoutStrikes || !f.blamed[2] {
		t.Fatalf("laggard not excluded after %d stale metas (timeouts=%d, excluded=%v)",
			fetchTimeoutStrikes, f.stats(2).timeouts, f.blamed[2])
	}
	if rg.r.Metrics.SnapshotBlames != 0 {
		t.Fatal("stale metadata blamed as tampering")
	}
	if rg.r.Metrics.SnapshotTimeoutExclusions != 1 {
		t.Fatalf("exclusion counter = %d, want 1", rg.r.Metrics.SnapshotTimeoutExclusions)
	}
	if after := chunkReqCount(rg, 8); after <= before {
		t.Fatal("expired requests not re-routed to other servers")
	}
	deliverAllChunks(t, rg, cur, 3)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("transfer did not complete after demotion (le=%d)", rg.r.LastExecuted())
	}
}

// TestServerAnswersRequestForNewerSnapshot (server side of the
// silent-drop fix): a chunk request for a sequence NEWER than anything
// this server retains is answered with current metadata, so the fetcher
// learns immediately that this server is a laggard.
func TestServerAnswersRequestForNewerSnapshot(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs4 := certifiedAt(t, rg, 4, nil)
	rg.r.adoptSnapshot(cs4)

	before := len(rg.env.sent)
	rg.r.Deliver(2, FetchSnapshotChunkMsg{Replica: 2, Seq: 8, Index: 1})
	answered := false
	for _, s := range rg.env.sent[before:] {
		if m, ok := s.msg.(SnapshotMetaMsg); ok && s.to == 2 && m.Seq == 4 {
			answered = true
		}
		if _, ok := s.msg.(SnapshotChunkMsg); ok {
			t.Fatal("server fabricated a chunk for a snapshot it does not hold")
		}
	}
	if !answered {
		t.Fatal("request for a newer snapshot dropped silently")
	}
}

// TestPendingSnapshotGCWhenCatchUpSkipsCheckpoint: a capture whose
// checkpoint sequence is skipped by state-transfer catch-up must still be
// collected — both when stability is first learned while behind, and on
// the early-return re-recording path (finishStateFetch re-enters
// recordStable for an already-stable sequence).
func TestPendingSnapshotGCWhenCatchUpSkipsCheckpoint(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs8 := certifiedAt(t, rg, 8, nil)
	rg.r.pendingSnap[4] = certifiedAt(t, rg, 4, nil)

	// Stability at 8 learned while behind (lastExecuted=0): the adoption
	// block is skipped, the dead capture at 4 must not be.
	rg.r.recordStable(8, cs8.Root(), cs8.Pi)
	if len(rg.r.pendingSnap) != 0 {
		t.Fatalf("pendingSnap leaked %d captures on behind-recording", len(rg.r.pendingSnap))
	}

	// Early-return re-recording of the already-stable checkpoint.
	rg.r.pendingSnap[6] = certifiedAt(t, rg, 6, nil)
	rg.r.recordStable(8, cs8.Root(), cs8.Pi)
	if len(rg.r.pendingSnap) != 0 {
		t.Fatalf("pendingSnap leaked %d captures on early-return re-recording", len(rg.r.pendingSnap))
	}
}

// TestDurableNotArmedForEvictedGeneration: an async persist completing
// after retention evicted its generation must not advance the durable
// serving point — the replica can no longer serve those chunks, and a
// later prune may have removed the file the point would promise.
func TestDurableNotArmedForEvictedGeneration(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.SnapshotRetain = 1 })
	sink := &recordingSink{}
	rg.r.SetSnapshotSink(sink)

	rg.r.adoptSnapshot(certifiedAt(t, rg, 4, nil))
	rg.r.adoptSnapshot(certifiedAt(t, rg, 8, nil)) // evicts 4
	if len(sink.seqs) != 2 {
		t.Fatalf("sink received %v, want [4 8]", sink.seqs)
	}
	sink.done[0](nil) // late completion for the evicted generation
	if rg.r.DurableSnapshotSeq() != 0 {
		t.Fatalf("durable point armed at %d for an evicted generation", rg.r.DurableSnapshotSeq())
	}
	if rg.r.Metrics.SnapshotPersists != 0 {
		t.Fatal("evicted-generation persist counted")
	}
	sink.done[1](nil)
	if rg.r.DurableSnapshotSeq() != 8 {
		t.Fatalf("durable point = %d, want 8", rg.r.DurableSnapshotSeq())
	}
}

// TestRestartRearmsRetainedSnapshot: the durable store holds the pruned
// retention window; a restarted replica re-arms serving from the newest
// durable snapshot as a single-generation chain (cross-restart delta
// continuity is not reconstructed) and re-offers current metadata for
// anything older.
func TestRestartRearmsRetainedSnapshot(t *testing.T) {
	rg := newRig(t, 1, nil)
	led, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	for seq := uint64(1); seq <= 12; seq++ {
		reqs := []Request{{Client: ClientBase, Timestamp: seq, Op: []byte("op")}}
		if err := led.Append(seq, EncodeBlockPayload(reqs, [][]byte{[]byte("ok")})); err != nil {
			t.Fatal(err)
		}
	}
	cs8 := certifiedAt(t, rg, 8, nil)
	cs12 := certifiedAt(t, rg, 12, nil)
	if err := PersistCertified(led, cs8, 8); err != nil {
		t.Fatal(err)
	}
	if err := PersistCertified(led, cs12, 8); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRecoveredReplica(1, rg.cfg, rg.suite, rg.keys[0], &fakeApp{}, &fakeEnv{}, led)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SnapshotSeq() != 12 || r2.DurableSnapshotSeq() != 12 {
		t.Fatalf("restart re-armed at %d/%d, want 12/12", r2.SnapshotSeq(), r2.DurableSnapshotSeq())
	}
	if got := r2.RetainedSnapshotSeqs(); len(got) != 1 || got[0] != 12 {
		t.Fatalf("restart chain %v, want [12]", got)
	}
}
