package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"sbft/internal/crypto/threshsig"
	"sbft/internal/merkle"
)

// This file defines the certified execution state: the canonical,
// Merkle-committed encoding of everything a recovering replica needs to
// resume deterministic execution — the application snapshot AND the
// last-reply/client-timestamp table of the exactly-once execution filter.
// The Merkle root over this encoding is the digest replicas threshold-sign
// at checkpoints (π, f+1), so a single honest snapshot server suffices for
// state transfer (§V-F, §VIII) and — unlike the earlier design, where the
// reply table rode alongside the snapshot uncertified — a Byzantine
// snapshot server cannot perturb dedup state: every transferred chunk is
// verified leaf-by-leaf against the threshold-signed root, and a server
// whose chunk fails verification is blamed and excluded.
//
// Layout of the commitment tree (internal/merkle, domain-separated leaves):
//
//	leaf 0               header: app digest, app/table byte lengths, chunk size
//	leaf 1 .. n_a        app snapshot bytes, split into ChunkSize pieces
//	leaf n_a+1 .. n_a+n_t   canonical reply-table bytes, split likewise
//
// Determinism contract: Application.Snapshot must produce identical bytes
// on replicas with identical state (the kvstore and evm apps encode
// key-sorted entries), and the reply table is serialized sorted by client
// id — so every honest replica computes the same root at the same
// checkpoint sequence and the π quorum forms.

// SnapshotChunkSize is the number of snapshot bytes committed per Merkle
// leaf (and transferred per SnapshotChunkMsg).
const SnapshotChunkSize = 8 * 1024

// maxSnapshotLen bounds a header's claimed byte lengths; a sanity guard
// against allocation bombs from malformed (never certified) metadata.
const maxSnapshotLen = 1 << 31

// SnapshotHeader is leaf 0 of the commitment tree: the shape of the
// certified state. AppDigest is the application's own state root at the
// checkpoint sequence (digest(D), §IV), retained for defense in depth —
// after chunk-verified restoration the application digest must match it.
type SnapshotHeader struct {
	AppDigest []byte
	AppLen    uint64
	TableLen  uint64
	ChunkSize uint32
	// AppChunks, when non-zero, declares the app snapshot as a list of
	// VARIABLE-length chunks (the incremental bucketed capture: one chunk
	// per bucket, sizes set by the application) instead of the legacy
	// fixed ChunkSize split. Table chunks always use the fixed split.
	AppChunks uint32
}

// maxAppChunks bounds a header's declared variable chunk count; a sanity
// guard against allocation bombs from malformed (never certified)
// metadata.
const maxAppChunks = 1 << 20

// chunkCount is ceil(n / size).
func chunkCount(n uint64, size uint32) int {
	if n == 0 {
		return 0
	}
	return int((n + uint64(size) - 1) / uint64(size))
}

// appChunkCount reports the number of app chunks: declared for the
// variable-length capture, derived from AppLen for the legacy fixed split.
func (h SnapshotHeader) appChunkCount() int {
	if h.AppChunks > 0 {
		return int(h.AppChunks)
	}
	return chunkCount(h.AppLen, h.ChunkSize)
}

// NumChunks reports the number of data chunks (Merkle leaves past the
// header) the certified snapshot carries.
func (h SnapshotHeader) NumChunks() int {
	return h.appChunkCount() + chunkCount(h.TableLen, h.ChunkSize)
}

// chunkLen reports the exact byte length of 1-based chunk index i, or -1
// for variable-length app chunks (whose exact content only the leaf hash
// authenticates).
func (h SnapshotHeader) chunkLen(i int) int {
	na := h.appChunkCount()
	if i <= na && h.AppChunks > 0 {
		return -1
	}
	lenOf := func(total uint64, pos int, count int) int {
		if pos < count-1 {
			return int(h.ChunkSize)
		}
		rem := total % uint64(h.ChunkSize)
		if rem == 0 {
			return int(h.ChunkSize)
		}
		return int(rem)
	}
	if i <= na {
		return lenOf(h.AppLen, i-1, na)
	}
	return lenOf(h.TableLen, i-na-1, h.NumChunks()-na)
}

// valid performs cheap structural sanity checks (the certified root is
// what actually authenticates a header; this only guards allocations).
func (h SnapshotHeader) valid() bool {
	return h.ChunkSize > 0 && h.ChunkSize <= 1<<20 &&
		h.AppLen <= maxSnapshotLen && h.TableLen <= maxSnapshotLen &&
		h.AppChunks <= maxAppChunks &&
		len(h.AppDigest) <= 64
}

// headerLeaf is the canonical leaf-0 encoding.
func headerLeaf(h SnapshotHeader) []byte {
	buf := make([]byte, 0, 40+len(h.AppDigest))
	buf = append(buf, []byte("sbft:snap-hdr")...)
	buf = binary.BigEndian.AppendUint64(buf, h.AppLen)
	buf = binary.BigEndian.AppendUint64(buf, h.TableLen)
	buf = binary.BigEndian.AppendUint32(buf, h.ChunkSize)
	buf = binary.BigEndian.AppendUint32(buf, h.AppChunks)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(h.AppDigest)))
	buf = append(buf, h.AppDigest...)
	return buf
}

// chunkLeaf binds a data chunk to its 1-based leaf index, so a correct
// proof for chunk i can never authenticate its bytes at position j.
func chunkLeaf(index int, data []byte) []byte {
	buf := make([]byte, 0, 24+len(data))
	buf = append(buf, []byte("sbft:snap-chunk")...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(index))
	buf = append(buf, data...)
	return buf
}

// splitChunks cuts data into ChunkSize pieces (no copy; callers treat the
// result as read-only).
func splitChunks(data []byte, size uint32) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := int(size)
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// CertifiedSnapshot is one checkpoint's certified execution state: the
// chunked snapshot, its commitment tree, and (once stable) the π
// certificate over the root.
type CertifiedSnapshot struct {
	Seq    uint64
	Header SnapshotHeader
	Chunks [][]byte
	// Pi is the threshold certificate over CheckpointSigDigest(Seq, Root());
	// zero until the checkpoint stabilizes.
	Pi threshsig.Signature

	root []byte
	tree *merkle.Tree
}

// NewCertifiedSnapshot commits (app snapshot bytes, canonical reply-table
// bytes) for a checkpoint sequence.
func NewCertifiedSnapshot(seq uint64, appDigest, appSnap, tableBytes []byte) *CertifiedSnapshot {
	cs := &CertifiedSnapshot{
		Seq: seq,
		Header: SnapshotHeader{
			AppDigest: append([]byte(nil), appDigest...),
			AppLen:    uint64(len(appSnap)),
			TableLen:  uint64(len(tableBytes)),
			ChunkSize: SnapshotChunkSize,
		},
	}
	cs.Chunks = append(splitChunks(appSnap, SnapshotChunkSize), splitChunks(tableBytes, SnapshotChunkSize)...)
	cs.build()
	return cs
}

// CaptureCache carries the app-chunk leaf hashes of one replica's latest
// capture across checkpoints. Clean chunks are recognized by slice
// identity (the incremental capture contract: an unchanged chunk is
// returned as the identical byte slice), so their leaf hashes are reused
// and the per-checkpoint hashing cost follows the write rate, not the
// state size.
type CaptureCache struct {
	chunks [][]byte
	leaves []merkle.Digest
	dirty  int
}

// DirtyChunks reports how many app chunks were re-hashed at the most
// recent capture through this cache.
func (c *CaptureCache) DirtyChunks() int { return c.dirty }

// sameSlice reports whether two slices are the identical memory region.
func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// NewCertifiedSnapshotChunked commits a pre-chunked app snapshot (the
// incremental capture path: variable-length chunks, one per bucket) plus
// the canonical reply-table bytes. With a cache from the previous capture,
// only chunks whose slices changed are re-hashed.
func NewCertifiedSnapshotChunked(seq uint64, appDigest []byte, appChunks [][]byte, tableBytes []byte, cache *CaptureCache) *CertifiedSnapshot {
	var appLen uint64
	for _, c := range appChunks {
		appLen += uint64(len(c))
	}
	cs := &CertifiedSnapshot{
		Seq: seq,
		Header: SnapshotHeader{
			AppDigest: append([]byte(nil), appDigest...),
			AppLen:    appLen,
			TableLen:  uint64(len(tableBytes)),
			ChunkSize: SnapshotChunkSize,
			AppChunks: uint32(len(appChunks)),
		},
	}
	tableChunks := splitChunks(tableBytes, SnapshotChunkSize)
	cs.Chunks = make([][]byte, 0, len(appChunks)+len(tableChunks))
	cs.Chunks = append(cs.Chunks, appChunks...)
	cs.Chunks = append(cs.Chunks, tableChunks...)

	leaves := make([]merkle.Digest, 1+len(cs.Chunks))
	leaves[0] = merkle.LeafHash(headerLeaf(cs.Header))
	appLeaves := make([]merkle.Digest, len(appChunks))
	dirty := 0
	for i, c := range appChunks {
		if cache != nil && i < len(cache.chunks) && sameSlice(cache.chunks[i], c) {
			appLeaves[i] = cache.leaves[i]
		} else {
			appLeaves[i] = merkle.LeafHash(chunkLeaf(i+1, c))
			dirty++
		}
		leaves[1+i] = appLeaves[i]
	}
	for j, c := range tableChunks {
		leaves[1+len(appChunks)+j] = merkle.LeafHash(chunkLeaf(len(appChunks)+j+1, c))
	}
	cs.tree = merkle.NewTreeFromHashes(leaves)
	root := cs.tree.Root()
	cs.root = root[:]
	if cache != nil {
		cache.chunks = append([][]byte(nil), appChunks...)
		cache.leaves = appLeaves
		cache.dirty = dirty
	}
	return cs
}

// build computes the commitment tree from Header and Chunks.
func (cs *CertifiedSnapshot) build() {
	leaves := make([][]byte, 1+len(cs.Chunks))
	leaves[0] = headerLeaf(cs.Header)
	for i, c := range cs.Chunks {
		leaves[i+1] = chunkLeaf(i+1, c)
	}
	cs.tree = merkle.NewTree(leaves)
	root := cs.tree.Root()
	cs.root = root[:]
}

// Root returns the Merkle root — the digest threshold-signed at this
// checkpoint.
func (cs *CertifiedSnapshot) Root() []byte { return cs.root }

// ProveHeader returns the membership proof of leaf 0.
func (cs *CertifiedSnapshot) ProveHeader() (merkle.Proof, error) { return cs.tree.Prove(0) }

// ProveChunk returns the membership proof of 1-based chunk index i.
func (cs *CertifiedSnapshot) ProveChunk(i int) (merkle.Proof, error) { return cs.tree.Prove(i) }

// LeafHashAt returns the commitment-tree leaf hash at position i (0 is
// the header; data chunks are 1-based). The checkpoint layer diffs two
// generations leaf-by-leaf with it to compute delta sets.
func (cs *CertifiedSnapshot) LeafHashAt(i int) (merkle.Digest, error) { return cs.tree.LeafHashAt(i) }

// VerifySnapshotHeader checks a header against a certified root.
func VerifySnapshotHeader(root []byte, h SnapshotHeader, p merkle.Proof) error {
	if !h.valid() {
		return fmt.Errorf("core: malformed snapshot header")
	}
	if p.Index != 0 {
		return fmt.Errorf("core: snapshot header proof at index %d", p.Index)
	}
	var rd merkle.Digest
	if len(root) != merkle.DigestSize {
		return fmt.Errorf("core: snapshot root length %d", len(root))
	}
	copy(rd[:], root)
	// Index-binding verification: the proof must have the exact shape of
	// leaf 0 in the 1+NumChunks()-leaf commitment tree, so a proof for a
	// different leaf cannot be replayed as the header's.
	return merkle.VerifyLeafAt(rd, headerLeaf(h), p, 1+h.NumChunks())
}

// VerifySnapshotChunk checks a data chunk at 1-based index i against a
// certified root and its header.
func VerifySnapshotChunk(root []byte, h SnapshotHeader, i int, data []byte, p merkle.Proof) error {
	if i < 1 || i > h.NumChunks() {
		return fmt.Errorf("core: snapshot chunk index %d of %d", i, h.NumChunks())
	}
	if want := h.chunkLen(i); want < 0 {
		// Variable-length app chunk: the leaf hash authenticates the exact
		// bytes; only bound the allocation.
		if uint64(len(data)) > h.AppLen {
			return fmt.Errorf("core: snapshot chunk %d has %d bytes, app total %d", i, len(data), h.AppLen)
		}
	} else if len(data) != want {
		return fmt.Errorf("core: snapshot chunk %d has %d bytes, want %d", i, len(data), want)
	}
	if p.Index != i {
		return fmt.Errorf("core: snapshot chunk proof at index %d, want %d", p.Index, i)
	}
	var rd merkle.Digest
	if len(root) != merkle.DigestSize {
		return fmt.Errorf("core: snapshot root length %d", len(root))
	}
	copy(rd[:], root)
	// Index-binding verification (see VerifySnapshotHeader).
	return merkle.VerifyLeafAt(rd, chunkLeaf(i, data), p, 1+h.NumChunks())
}

// AssembleSnapshot reassembles (app snapshot bytes, reply-table bytes)
// from a complete, individually verified chunk list.
func AssembleSnapshot(h SnapshotHeader, chunks [][]byte) (app, table []byte, err error) {
	if len(chunks) != h.NumChunks() {
		return nil, nil, fmt.Errorf("core: %d chunks, want %d", len(chunks), h.NumChunks())
	}
	var all []byte
	for _, c := range chunks {
		all = append(all, c...)
	}
	if uint64(len(all)) != h.AppLen+h.TableLen {
		return nil, nil, fmt.Errorf("core: assembled %d bytes, want %d", len(all), h.AppLen+h.TableLen)
	}
	return all[:h.AppLen], all[h.AppLen:], nil
}

// ---------------------------------------------------------------------------
// Canonical reply-table encoding.

// encodeReplyTable serializes the last-reply table sorted by client id:
// the canonical byte form committed inside the checkpoint digest.
func encodeReplyTable(cache map[int]replyCacheEntry) []byte {
	clients := make([]int, 0, len(cache))
	for c := range cache {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	buf := make([]byte, 0, 8+48*len(clients))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(clients)))
	for _, c := range clients {
		e := cache[c]
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
		buf = binary.BigEndian.AppendUint64(buf, e.timestamp)
		buf = binary.BigEndian.AppendUint64(buf, e.seq)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.l))
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(e.val)))
		buf = append(buf, e.val...)
	}
	return buf
}

// decodeReplyTable parses the canonical reply-table encoding.
func decodeReplyTable(data []byte) (map[int]replyCacheEntry, error) {
	readU64 := func() (uint64, error) {
		if len(data) < 8 {
			return 0, fmt.Errorf("core: truncated reply table")
		}
		v := binary.BigEndian.Uint64(data)
		data = data[8:]
		return v, nil
	}
	n, err := readU64()
	if err != nil {
		return nil, err
	}
	if n > maxSnapshotLen/8 {
		return nil, fmt.Errorf("core: reply table claims %d entries", n)
	}
	out := make(map[int]replyCacheEntry, n)
	for i := uint64(0); i < n; i++ {
		var vals [5]uint64
		for j := range vals {
			if vals[j], err = readU64(); err != nil {
				return nil, err
			}
		}
		vlen := vals[4]
		if uint64(len(data)) < vlen {
			return nil, fmt.Errorf("core: truncated reply table value")
		}
		out[int(vals[0])] = replyCacheEntry{
			timestamp: vals[1],
			seq:       vals[2],
			l:         int(vals[3]),
			val:       append([]byte(nil), data[:vlen]...),
		}
		data = data[vlen:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("core: %d trailing reply-table bytes", len(data))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Durable form (storage.Ledger snapshot files).

// storedSnapshot is the gob-encoded durable form of a certified snapshot,
// including the π certificate so a restarted replica can serve state
// transfer before reaching its next checkpoint.
type storedSnapshot struct {
	Seq    uint64
	Header SnapshotHeader
	Chunks [][]byte
	Pi     threshsig.Signature
}

// Encode serializes the snapshot (with certificate) for the SnapshotStore.
func (cs *CertifiedSnapshot) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(storedSnapshot{
		Seq: cs.Seq, Header: cs.Header, Chunks: cs.Chunks, Pi: cs.Pi,
	}); err != nil {
		panic(fmt.Sprintf("core: encoding stored snapshot: %v", err))
	}
	return buf.Bytes()
}

// DecodeCertifiedSnapshot parses a stored snapshot and rebuilds its
// commitment tree. Callers must still verify the π certificate over
// (Seq, Root()) before serving or trusting it.
func DecodeCertifiedSnapshot(data []byte) (*CertifiedSnapshot, error) {
	var st storedSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding stored snapshot: %w", err)
	}
	if !st.Header.valid() || len(st.Chunks) != st.Header.NumChunks() {
		return nil, fmt.Errorf("core: stored snapshot shape mismatch")
	}
	var appSum uint64
	for i, c := range st.Chunks {
		if want := st.Header.chunkLen(i + 1); want < 0 {
			appSum += uint64(len(c))
		} else if len(c) != want {
			return nil, fmt.Errorf("core: stored snapshot chunk %d length mismatch", i+1)
		}
	}
	if st.Header.AppChunks > 0 && appSum != st.Header.AppLen {
		return nil, fmt.Errorf("core: stored snapshot app chunks sum %d, want %d", appSum, st.Header.AppLen)
	}
	cs := &CertifiedSnapshot{Seq: st.Seq, Header: st.Header, Chunks: st.Chunks, Pi: st.Pi}
	cs.build()
	return cs, nil
}

// ---------------------------------------------------------------------------
// Signing digests.

// CheckpointSigDigest domain-separates π signatures over certified
// checkpoint roots. It is distinct from StateSigDigest (the per-sequence
// execution certificates of §V-D) so an execution certificate can never be
// replayed as a checkpoint certificate or vice versa.
func CheckpointSigDigest(seq uint64, root []byte) []byte {
	h := sha256.New()
	h.Write([]byte("sbft:ckpt"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	h.Write(root)
	return h.Sum(nil)
}

// ExecutionStateDigest is a cheap commitment to a replica's replayable
// execution state — H(app digest ‖ canonical reply table) — used by the
// chaos auditor to cross-check that replicas at the same frontier agree on
// dedup state, not just application state. (The full certified root also
// covers the serialized snapshot; this avoids the serialization cost.)
func (r *Replica) ExecutionStateDigest() []byte {
	h := sha256.New()
	h.Write([]byte("sbft:execstate"))
	h.Write(r.app.Digest())
	h.Write(encodeReplyTable(r.replyCache))
	return h.Sum(nil)
}
