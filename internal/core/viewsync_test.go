package core

import (
	"testing"

	"sbft/internal/crypto/threshsig"
)

// Deterministic tests for the view synchronizer (§VII liveness): a replica
// that escalated into a view change alone must rejoin the lower view when
// it sees certified commit traffic proving the cluster live there — and
// must NOT rejoin on uncertified or forged evidence.

// syncRig wraps the sans-io rig with certificate forges over all four
// replica keys (f=1, c=0, n=4: slow quorum 3, fast quorum 4).
type syncRig struct {
	*rig
}

func newSyncRig(t *testing.T, id int) *syncRig {
	return &syncRig{rig: newRig(t, id, nil)}
}

func (rg *syncRig) tauCert(t *testing.T, digest []byte) threshsig.Signature {
	t.Helper()
	var shares []threshsig.Share
	for i := 0; i < rg.cfg.QuorumSlow(); i++ {
		sh, err := rg.keys[i].Tau.Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := rg.suite.Tau.Combine(digest, shares)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func (rg *syncRig) slowProof(t *testing.T, seq, view uint64, reqs []Request) FullCommitProofSlowMsg {
	t.Helper()
	h := BlockHash(seq, view, reqs)
	inner := rg.tauCert(t, h[:])
	outer := rg.tauCert(t, tauTauDigest(inner))
	return FullCommitProofSlowMsg{Seq: seq, View: view, Tau: inner, TauTau: outer}
}

func (rg *syncRig) fastProof(t *testing.T, seq, view uint64, reqs []Request) FullCommitProofMsg {
	t.Helper()
	h := BlockHash(seq, view, reqs)
	var shares []threshsig.Share
	for i := 0; i < rg.cfg.QuorumFast(); i++ {
		sh, err := rg.keys[i].Sigma.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := rg.suite.Sigma.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	return FullCommitProofMsg{Seq: seq, View: view, Sigma: sig}
}

func syncReqs(tag string) []Request {
	return []Request{{Client: ClientBase, Timestamp: 1, Op: []byte(tag)}}
}

// TestViewSynchronizerRejoinsOnStashedSlowProof is the main rejoin path:
// the loner escalated BEFORE seeing the lower view's pre-prepare, so both
// the pre-prepare and the commit proof arrive while it sits in the view
// change. Buffered pre-prepare + verified stashed certificate must stand
// it back down and commit the slot.
func TestViewSynchronizerRejoinsOnStashedSlowProof(t *testing.T) {
	rg := newSyncRig(t, 2)
	reqs := syncReqs("A")

	rg.r.startViewChange(1)
	if !rg.r.inViewChange || rg.r.view != 1 {
		t.Fatalf("escalation failed: view=%d inVC=%v", rg.r.view, rg.r.inViewChange)
	}

	// The view-0 primary's pre-prepare arrives late: buffered, not dropped.
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})
	if !rg.r.inViewChange {
		t.Fatal("uncertified pre-prepare alone must not trigger a rejoin")
	}

	// Certified commit traffic for view 0 proves the cluster live there.
	rg.r.Deliver(3, rg.slowProof(t, 1, 0, reqs))

	if rg.r.inViewChange || rg.r.view != 0 {
		t.Fatalf("no rejoin: view=%d inVC=%v", rg.r.view, rg.r.inViewChange)
	}
	if rg.r.Metrics.ViewRejoins != 1 {
		t.Fatalf("ViewRejoins = %d, want 1", rg.r.Metrics.ViewRejoins)
	}
	if rg.r.LastExecuted() != 1 {
		t.Fatalf("rejoined slot not executed: lastExecuted=%d", rg.r.LastExecuted())
	}
}

// TestViewSynchronizerRejoinsOnVerifiedFastProof covers the loner that
// accepted the pre-prepare before escalating: the fast commit proof
// verifies directly against the slot and must both commit it and stand
// the replica down.
func TestViewSynchronizerRejoinsOnVerifiedFastProof(t *testing.T) {
	rg := newSyncRig(t, 2)
	reqs := syncReqs("B")

	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})
	rg.r.startViewChange(1)

	rg.r.Deliver(3, rg.fastProof(t, 1, 0, reqs))

	if rg.r.inViewChange || rg.r.view != 0 {
		t.Fatalf("no rejoin: view=%d inVC=%v", rg.r.view, rg.r.inViewChange)
	}
	if rg.r.Metrics.ViewRejoins != 1 {
		t.Fatalf("ViewRejoins = %d, want 1", rg.r.Metrics.ViewRejoins)
	}
	if rg.r.Metrics.FastCommits != 1 {
		t.Fatalf("FastCommits = %d, want 1", rg.r.Metrics.FastCommits)
	}
}

// TestViewSynchronizerIgnoresForgedProof: a Byzantine peer replaying
// garbage "certificates" for a lower view must not pull the replica down.
func TestViewSynchronizerIgnoresForgedProof(t *testing.T) {
	rg := newSyncRig(t, 2)
	reqs := syncReqs("C")

	rg.r.startViewChange(1)
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})

	forged := threshsig.Signature{Data: []byte("not a certificate")}
	rg.r.Deliver(3, FullCommitProofSlowMsg{Seq: 1, View: 0, Tau: forged, TauTau: forged})
	rg.r.Deliver(3, FullCommitProofMsg{Seq: 1, View: 0, Sigma: forged})

	if !rg.r.inViewChange || rg.r.view != 1 {
		t.Fatalf("forged certificate caused a rejoin: view=%d inVC=%v", rg.r.view, rg.r.inViewChange)
	}
	if rg.r.Metrics.ViewRejoins != 0 {
		t.Fatalf("ViewRejoins = %d, want 0", rg.r.Metrics.ViewRejoins)
	}
}

// TestViewSynchronizerCertForDealtViewOnly: a certificate that verifies
// for a DIFFERENT (higher) escalated view must not rejoin the replica into
// a lower one, and future-view traffic keeps the normal buffering path.
func TestViewSynchronizerLeavesGenuineViewChangeAlone(t *testing.T) {
	rg := newSyncRig(t, 2)
	reqs := syncReqs("D")

	rg.r.startViewChange(1)
	// Certified traffic for view 1 itself (the target) is not "a lower
	// view": the synchronizer must not touch the escalation.
	rg.r.Deliver(3, rg.slowProof(t, 1, 1, reqs))
	if !rg.r.inViewChange || rg.r.view != 1 {
		t.Fatalf("synchronizer fired on the escalation target: view=%d inVC=%v",
			rg.r.view, rg.r.inViewChange)
	}
}
