package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"sbft/internal/crypto/threshsig"
)

// Config describes one SBFT deployment of n = 3f + 2c + 1 replicas. The
// protocol-variant switches reproduce the paper's evaluation ladder
// (§IX): linear-PBFT (fast path off, exec collectors off) → +fast path →
// +execution collectors (SBFT c=0) → +redundant servers (SBFT c=8).
type Config struct {
	F int // tolerated Byzantine replicas
	C int // tolerated crashed/slow replicas on the fast path

	// Win bounds outstanding decision blocks (paper: 256).
	Win uint64
	// Batch is the minimum client operations per block before the batch
	// timer forces one out.
	Batch int
	// BatchTimeout bounds how long the primary waits to fill a batch.
	BatchTimeout time.Duration
	// MaxPending bounds the admission queue (§V-C backpressure): a request
	// arriving while len(pending) ≥ MaxPending is rejected with a BusyMsg
	// retry hint instead of growing the queue without bound under
	// open-loop overload. 0 derives 4 × Batch × activeWindow; negative
	// disables the bound entirely.
	MaxPending int
	// FastPath enables the σ fast path (ingredient 2).
	FastPath bool
	// FastPathTimeout is how long a collector waits for 3f+c+1 σ shares
	// before falling back to the prepare phase (§V-E trigger).
	FastPathTimeout time.Duration
	// ExecCollectors enables the single-message client acknowledgement
	// path through E-collectors (ingredient 3). When false, every replica
	// replies directly and clients wait for f+1 matching replies.
	ExecCollectors bool
	// ExecFallbackTimeout bounds how long a replica waits for the
	// E-collectors' full-execute-proof before sending clients direct
	// replies; it keeps clients served when all c+1 E-collectors of a
	// sequence are crashed (liveness needs one correct collector, §V).
	ExecFallbackTimeout time.Duration
	// GapRepairTimeout is how long a replica waits on an execution gap
	// (a committed block above an uncommitted one) before asking a peer
	// to retransmit the missing decision — the re-transmit layer the
	// system model assumes (§II).
	GapRepairTimeout time.Duration
	// ViewChangeTimeout is the base commit-progress timeout; it doubles
	// on every consecutive view change (exponential back-off, §VII).
	ViewChangeTimeout time.Duration
	// CollectorStagger is the delay between successive redundant
	// collectors activating (§V "we stagger the collectors").
	CollectorStagger time.Duration
	// CheckpointInterval is the stable-checkpoint period (paper: win/2).
	// Zero derives win/2.
	CheckpointInterval uint64
	// FetchWindow bounds in-flight snapshot chunk requests during state
	// transfer (flow control, §VIII): the window refills as verified
	// chunks land. Zero derives the default 32.
	FetchWindow int
	// ChunkRetryTimeout is how long one outstanding snapshot-chunk
	// request may stay unanswered before it is re-issued to another
	// server (and the unresponsive server loses scheduler share). Zero
	// derives 2×GapRepairTimeout; negative disables per-chunk retries,
	// leaving only the whole-transfer retry — the pre-windowed behavior,
	// kept configurable as the measurable benchmark baseline.
	ChunkRetryTimeout time.Duration
	// SnapshotMetaWait is how long a fetcher collects competing snapshot
	// metas before committing to the highest certified sequence among
	// them. Zero derives 40ms; negative adopts the first verified meta
	// immediately — the old racy behavior a Byzantine stale-meta server
	// could win, kept configurable so the regression test can demonstrate
	// the exploit against it.
	SnapshotMetaWait time.Duration
	// SnapshotRetain bounds the chain of certified snapshot generations a
	// replica keeps for serving state transfer (plus the delta sets
	// between consecutive generations). A deeper chain lets a transfer
	// spanning several checkpoint intervals finish against its original
	// generation instead of restarting, and lets laggards holding any
	// retained generation fetch deltas only. Zero derives 4; 1 reproduces
	// single-generation retention.
	SnapshotRetain int
	// ReadBatch bounds the certified-read queue (ROADMAP item 2): a
	// replica serves queued reads as one batch when the queue reaches
	// this size, amortizing Merkle proof generation (the header proof and
	// per-bucket chunk proofs are computed once per batch). Zero derives
	// 16; 1 serves every read immediately.
	ReadBatch int
	// ReadBatchWait bounds how long a queued read may wait for its batch
	// to fill. Zero derives 2ms; negative serves immediately (no
	// batching), the measurable baseline for the batching benchmark.
	ReadBatchWait time.Duration
}

// DefaultConfig returns the paper's defaults for a given f and c.
func DefaultConfig(f, c int) Config {
	return Config{
		F:                   f,
		C:                   c,
		Win:                 256,
		Batch:               64,
		BatchTimeout:        20 * time.Millisecond,
		FastPath:            true,
		FastPathTimeout:     150 * time.Millisecond,
		ExecCollectors:      true,
		ExecFallbackTimeout: 500 * time.Millisecond,
		GapRepairTimeout:    250 * time.Millisecond,
		ViewChangeTimeout:   2 * time.Second,
		CollectorStagger:    50 * time.Millisecond,
		FetchWindow:         32,
	}
}

// Validate checks invariants.
func (c Config) Validate() error {
	if c.F < 1 {
		return fmt.Errorf("core: F must be ≥ 1, got %d", c.F)
	}
	if c.C < 0 {
		return fmt.Errorf("core: C must be ≥ 0, got %d", c.C)
	}
	if c.Win < 4 {
		return fmt.Errorf("core: Win must be ≥ 4, got %d", c.Win)
	}
	if c.Batch < 1 {
		return fmt.Errorf("core: Batch must be ≥ 1, got %d", c.Batch)
	}
	return nil
}

// N is the replica count 3f + 2c + 1.
func (c Config) N() int { return 3*c.F + 2*c.C + 1 }

// QuorumFast is the σ threshold 3f + c + 1.
func (c Config) QuorumFast() int { return 3*c.F + c.C + 1 }

// QuorumSlow is the τ threshold 2f + c + 1.
func (c Config) QuorumSlow() int { return 2*c.F + c.C + 1 }

// QuorumExec is the π threshold f + 1.
func (c Config) QuorumExec() int { return c.F + 1 }

// QuorumViewChange is the view-change quorum 2f + 2c + 1 (§V-G).
func (c Config) QuorumViewChange() int { return 2*c.F + 2*c.C + 1 }

// checkpointEvery returns the effective checkpoint interval.
func (c Config) checkpointEvery() uint64 {
	if c.CheckpointInterval > 0 {
		return c.CheckpointInterval
	}
	return c.Win / 2
}

// fastGateWindow is the §V-F fast-path restriction: a replica only joins
// the fast path for s ∈ [le, le + win/4].
func (c Config) fastGateWindow() uint64 { return c.Win / 4 }

// fetchWindow is the effective in-flight chunk window for state transfer.
func (c Config) fetchWindow() int {
	if c.FetchWindow > 0 {
		return c.FetchWindow
	}
	return 32
}

// chunkRetryTimeout is the effective per-chunk retry interval; values
// ≤ 0 after derivation disable per-chunk retries.
func (c Config) chunkRetryTimeout() time.Duration {
	if c.ChunkRetryTimeout != 0 {
		return c.ChunkRetryTimeout
	}
	if c.GapRepairTimeout > 0 {
		return 2 * c.GapRepairTimeout
	}
	return 500 * time.Millisecond
}

// snapshotMetaWait is the effective meta-collection window; values < 0
// after derivation mean "adopt the first verified meta immediately".
func (c Config) snapshotMetaWait() time.Duration {
	if c.SnapshotMetaWait != 0 {
		return c.SnapshotMetaWait
	}
	return 40 * time.Millisecond
}

// snapshotRetain is the effective generation-retention depth (≥ 1).
func (c Config) snapshotRetain() int {
	if c.SnapshotRetain > 0 {
		return c.SnapshotRetain
	}
	return 4
}

// readBatch is the effective read-batch size (≥ 1).
func (c Config) readBatch() int {
	if c.ReadBatch > 0 {
		return c.ReadBatch
	}
	return 16
}

// readBatchWait is the effective read-batch wait; values < 0 after
// derivation mean "serve every read immediately".
func (c Config) readBatchWait() time.Duration {
	if c.ReadBatchWait != 0 {
		return c.ReadBatchWait
	}
	return 2 * time.Millisecond
}

// Primary returns the primary replica id (1-based) for a view, chosen
// round-robin (§V-B).
func (c Config) Primary(view uint64) int { return int(view%uint64(c.N())) + 1 }

// collectorSet deterministically selects count distinct non-primary
// replicas for (seq, view, kind) by hashing, the paper's pseudo-random
// collector groups (§V-B). The same function runs on every replica, so
// all agree on the groups.
func (c Config) collectorSet(seq, view uint64, kind string, count int) []int {
	n := c.N()
	primary := c.Primary(view)
	if count > n-1 {
		count = n - 1
	}
	out := make([]int, 0, count)
	taken := make(map[int]bool, count+1)
	taken[primary] = true
	var ctr uint64
	for len(out) < count {
		h := sha256.New()
		h.Write([]byte("sbft:collector:"))
		h.Write([]byte(kind))
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], seq)
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], view)
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], ctr)
		h.Write(b[:])
		ctr++
		id := int(binary.BigEndian.Uint64(h.Sum(nil)[:8])%uint64(n)) + 1
		if taken[id] {
			continue
		}
		taken[id] = true
		out = append(out, id)
	}
	return out
}

// CCollectors returns the c+1 commit collectors for (seq, view). The
// primary is appended as the final staggered fallback collector (§V-E:
// "the c+1st collector to activate is always the primary").
func (c Config) CCollectors(seq, view uint64) []int {
	set := c.collectorSet(seq, view, "commit", c.C+1)
	return append(set, c.Primary(view))
}

// ECollectors returns the c+1 execution collectors for (seq, view).
func (c Config) ECollectors(seq, view uint64) []int {
	return c.collectorSet(seq, view, "exec", c.C+1)
}

// CryptoSuite bundles the three threshold schemes of a deployment (§V):
// σ (3f+c+1), τ (2f+c+1) and π (f+1).
type CryptoSuite struct {
	Sigma threshsig.Scheme
	Tau   threshsig.Scheme
	Pi    threshsig.Scheme
}

// ReplicaKeys holds one replica's three signers.
type ReplicaKeys struct {
	Sigma threshsig.Signer
	Tau   threshsig.Signer
	Pi    threshsig.Signer
}

// DealSuite generates a crypto suite and per-replica keys from a dealer.
func DealSuite(cfg Config, dealer threshsig.Dealer) (CryptoSuite, []ReplicaKeys, error) {
	n := cfg.N()
	sigma, sigmaSigners, err := dealer.Deal(cfg.QuorumFast(), n)
	if err != nil {
		return CryptoSuite{}, nil, fmt.Errorf("core: dealing σ: %w", err)
	}
	tau, tauSigners, err := dealer.Deal(cfg.QuorumSlow(), n)
	if err != nil {
		return CryptoSuite{}, nil, fmt.Errorf("core: dealing τ: %w", err)
	}
	pi, piSigners, err := dealer.Deal(cfg.QuorumExec(), n)
	if err != nil {
		return CryptoSuite{}, nil, fmt.Errorf("core: dealing π: %w", err)
	}
	keys := make([]ReplicaKeys, n)
	for i := 0; i < n; i++ {
		keys[i] = ReplicaKeys{Sigma: sigmaSigners[i], Tau: tauSigners[i], Pi: piSigners[i]}
	}
	return CryptoSuite{Sigma: sigma, Tau: tau, Pi: pi}, keys, nil
}

// InsecureSuite deals a test/simulation suite seeded deterministically.
func InsecureSuite(cfg Config, seed string) (CryptoSuite, []ReplicaKeys, error) {
	return DealSuite(cfg, threshsig.InsecureDealer{Seed: []byte(seed)})
}

// Env is the world interface of a sans-io node: message output, virtual or
// real time, and timers. Implementations must invoke timer callbacks on
// the same logical thread as Deliver calls.
type Env interface {
	// Send transmits a message to a node (replica id 1..n or client id).
	Send(to int, msg Message)
	// Now reports the current time.
	Now() time.Duration
	// After schedules fn to run once after d; the returned function
	// cancels it (idempotent, safe after firing).
	After(d time.Duration, fn func()) (cancel func())
}

// Application is the deterministic replicated service SBFT drives (§IV).
// kvstore.Store and evm.Ledger satisfy it via the adapters in
// internal/apps.
type Application interface {
	// ExecuteBlock applies the decision block with sequence seq and
	// returns one result value per operation.
	ExecuteBlock(seq uint64, ops [][]byte) [][]byte
	// Digest returns d = digest(D) after the last executed block.
	Digest() []byte
	// ProveOperation returns the encoded proof(o, l, s, D, val).
	ProveOperation(seq uint64, l int) ([]byte, error)
	// Snapshot and Restore implement state transfer.
	Snapshot() ([]byte, error)
	Restore([]byte) error
	// GarbageCollect drops proof material below keepFrom.
	GarbageCollect(keepFrom uint64)
}

// ChunkedSnapshotter is the optional incremental-capture extension of
// Application. SnapshotChunks returns the snapshot as a chunk list whose
// concatenation Restore accepts, with ok=false meaning "not supported
// here" (wrappers forward the call statically and report their inner
// app's answer, so all replicas of a deployment take the same capture
// path — mixing paths would diverge the certified chunk layout).
//
// Incremental contract: a chunk whose content is unchanged since the
// previous SnapshotChunks call MUST be returned as the identical byte
// slice (same memory), and returned slices are never mutated afterwards.
// The capture layer detects clean chunks by slice identity and reuses
// their cached leaf hashes, making the per-checkpoint commitment cost
// O(writes-since-last-checkpoint + chunks) instead of O(state).
type ChunkedSnapshotter interface {
	SnapshotChunks() (chunks [][]byte, ok bool, err error)
}

// KeyReader is the optional read-path extension of Application (ROADMAP
// item 2). ReadKey maps an application-encoded read operation to the
// state key it would read, so a replica can serve it from its certified
// snapshot's bucketed chunk layout without ordering. Operations with side
// effects, or apps without a stable key mapping, return an error — the
// replica then answers ReadUnavailable and the client falls back to the
// ordering path. Wrappers forward the call statically, like
// ChunkedSnapshotter.
type KeyReader interface {
	ReadKey(op []byte) (string, error)
}

// TwoPhaser is the optional cross-shard extension of Application
// (ROADMAP item 5): applications that execute the two-phase
// (prepare-lock / commit-or-abort) op envelope report their cumulative
// 2PC counters so the replica surfaces them as Metrics. The counters
// are observability only — never protocol state — and reset with the
// process like every other metric. Wrappers forward the call
// statically, like ChunkedSnapshotter; a wrapper over an app without
// the envelope reports zeros.
type TwoPhaser interface {
	TxStats() (prepares, commits, aborts uint64)
}
