// Package core implements the SBFT replication protocol of the paper
// (§V–VIII): the sans-io Replica and Client event machines that every
// runtime in this repository drives — the deterministic simulator
// (internal/sim via internal/cluster), the chaos harness
// (internal/harness), and real TCP (internal/transport, cmd/sbft-node).
//
// # Protocol surface
//
//   - Fast path (§V-C): pre-prepare → sign-share (σᵢ, τᵢ) → C-collector
//     combines σ(h) at 3f+c+1 shares → full-commit-proof.
//   - Linear-PBFT fallback (§V-E): when the σ quorum stalls past the
//     adaptive fast-path timer, the same collectors fall back per slot to
//     prepare τ(h) → commit τᵢ(τ(h)) → full-commit-proof-slow, with no
//     view change.
//   - Execution (§V-D): committed blocks execute in sequence order
//     through the exactly-once filter (the classic last-reply-timestamp
//     rule); E-collectors combine π(d) over the state digest and clients
//     accept a single execute-ack carrying π(d) plus a Merkle proof.
//   - Checkpoints (§V-F): every win/2 executions, replicas π-sign the
//     CERTIFIED execution-state root (see certstate.go) — a Merkle
//     commitment to the application snapshot AND the last-reply table —
//     then garbage-collect below the stable point.
//   - State transfer (§VIII): a lagging replica fetches the certified
//     snapshot in chunks, verified leaf-by-leaf against the
//     threshold-signed root, blaming and excluding any server whose
//     material fails verification (one honest server suffices).
//   - Dual-mode view change (§V-G, §VII): per-slot fast/slow evidence is
//     arbitrated by a deterministic safe-value computation every replica
//     re-runs; liveness comes from progress timers, the f+1 join rule
//     and exponential back-off.
//
// # Structure
//
//	config.go     Config (n = 3f+2c+1, quorums, collector sets), Env,
//	              Application, CryptoSuite/ReplicaKeys dealing
//	messages.go   every wire message + WireSize estimates
//	replica.go    the Replica event machine (Deliver is the single entry)
//	certstate.go  certified execution state: canonical reply table,
//	              chunked Merkle-committed snapshots, signing digests
//	viewchange.go view-change timers, safe-value computation, new-view
//	client.go     the sans-io Client (single-ack accept, f+1 fallback,
//	              view tracking from reply hints)
//	recovery.go   restart-from-storage replay + durable snapshot re-arm
//
// Replicas and clients are NOT safe for concurrent use: the runtime must
// serialize Deliver and timer callbacks on one logical thread (the
// simulator and transport.Shell both do).
package core
