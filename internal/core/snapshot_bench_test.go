package core

import (
	"sync"
	"testing"

	"sbft/internal/benchjson"
	"sbft/internal/storage"
)

// BenchmarkCheckpointCapture measures the EVENT-LOOP STALL of one
// checkpoint's snapshot handling — capture (app snapshot + chunked Merkle
// commitment, inherently on-loop: the root is what π signs) plus
// persistence, comparing the synchronous SnapshotStore path (encode +
// disk write on the loop) against the asynchronous SnapshotSink hand-off
// (worker goroutine). At large application state the synchronous write
// dominates the win/2-interval checkpoint cost; the async sink removes it
// from the critical path. Set SBFT_BENCH_JSON to a directory to emit the
// BENCH_checkpoint_capture.json trajectory point.

// benchApp serves a fixed large snapshot.
type benchApp struct{ snap []byte }

func (a *benchApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte { return make([][]byte, len(ops)) }
func (a *benchApp) Digest() []byte                                 { return []byte{0xBE} }
func (a *benchApp) ProveOperation(uint64, int) ([]byte, error)     { return nil, nil }
func (a *benchApp) Snapshot() ([]byte, error)                      { return a.snap, nil }
func (a *benchApp) Restore([]byte) error                           { return nil }
func (a *benchApp) GarbageCollect(uint64)                          {}

// workerSink persists snapshots on a real worker goroutine; completions
// are collected and drained by the benchmark after timing stops (there is
// no event loop running here to route them through).
type workerSink struct {
	led  *storage.Ledger
	jobs chan *CertifiedSnapshot
	mu   sync.Mutex
	errs []error
	wg   sync.WaitGroup
}

func newWorkerSink(led *storage.Ledger) *workerSink {
	s := &workerSink{led: led, jobs: make(chan *CertifiedSnapshot, 64)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for cs := range s.jobs {
			if err := PersistCertified(s.led, cs); err != nil {
				s.mu.Lock()
				s.errs = append(s.errs, err)
				s.mu.Unlock()
			}
		}
	}()
	return s
}

// PersistSnapshot implements SnapshotSink. The done callback is invoked
// inline with a nil error (the bench asserts worker errors separately
// after draining; routing completions needs an event loop this bench
// does not run).
func (s *workerSink) PersistSnapshot(cs *CertifiedSnapshot, done func(error)) {
	s.jobs <- cs
	done(nil)
}

func (s *workerSink) drain(b *testing.B) {
	close(s.jobs)
	s.wg.Wait()
	if len(s.errs) > 0 {
		b.Fatalf("worker sink: %v", s.errs[0])
	}
}

func benchCapture(b *testing.B, size int, async bool) {
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "capture-bench")
	if err != nil {
		b.Fatal(err)
	}
	snap := make([]byte, size)
	for i := range snap {
		snap[i] = byte(i * 31)
	}
	app := &benchApp{snap: snap}
	led, err := storage.Open(b.TempDir(), storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer led.Close()
	r, err := NewReplica(1, cfg, suite, keys[0], app, &fakeEnv{}, led)
	if err != nil {
		b.Fatal(err)
	}
	var sink *workerSink
	if async {
		sink = newWorkerSink(led)
		r.SetSnapshotSink(sink)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		cs, err := r.buildSnapshot(seq, app.Digest())
		if err != nil {
			b.Fatal(err)
		}
		r.adoptSnapshot(cs)
	}
	b.StopTimer()
	if async {
		sink.drain(b)
	}
}

var capturePoints = benchjson.New("checkpoint_capture", "stall-ns/op")

func BenchmarkCheckpointCapture(b *testing.B) {
	cases := []struct {
		name  string
		size  int
		async bool
	}{
		{"small/sync", 64 * 1024, false},
		{"small/async", 64 * 1024, true},
		{"large/sync", 8 * 1024 * 1024, false},
		{"large/async", 8 * 1024 * 1024, true},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			benchCapture(b, tc.size, tc.async)
			stall := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(stall, "stall-ns/op")
			if err := capturePoints.Record(tc.name, stall); err != nil {
				b.Fatal(err)
			}
		})
	}
}
