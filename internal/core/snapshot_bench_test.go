package core

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"sbft/internal/benchjson"
	"sbft/internal/kvstore"
	"sbft/internal/storage"
)

// BenchmarkCheckpointCapture measures the EVENT-LOOP STALL of one
// checkpoint's snapshot handling — capture (app snapshot + chunked Merkle
// commitment, inherently on-loop: the root is what π signs) plus
// persistence, comparing the synchronous SnapshotStore path (encode +
// disk write on the loop) against the asynchronous SnapshotSink hand-off
// (worker goroutine). At large application state the synchronous write
// dominates the win/2-interval checkpoint cost; the async sink removes it
// from the critical path.
//
// The kv* points measure the incremental capture path against full
// re-capture on a real kvstore: a bucketed tracker state, a fixed
// fraction of keys rewritten between checkpoints (with the clock
// stopped), capture + adoption timed. The benchmark FAILS if the 1%
// dirty incremental stall is not at least 10× below the full re-capture
// stall at the same state size — the asymptotic claim of ROADMAP item 3,
// pinned. Set SBFT_BENCH_JSON to a directory to emit the
// BENCH_checkpoint_capture.json trajectory points; set SBFT_BENCH_XL to
// also run the multi-GiB state points (kept off the default CI path:
// the full-recapture baseline at that size needs ~8 GiB of headroom).

// benchApp serves a fixed large snapshot.
type benchApp struct{ snap []byte }

func (a *benchApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte { return make([][]byte, len(ops)) }
func (a *benchApp) Digest() []byte                                 { return []byte{0xBE} }
func (a *benchApp) ProveOperation(uint64, int) ([]byte, error)     { return nil, nil }
func (a *benchApp) Snapshot() ([]byte, error)                      { return a.snap, nil }
func (a *benchApp) Restore([]byte) error                           { return nil }
func (a *benchApp) GarbageCollect(uint64)                          {}

// workerSink persists snapshots on a real worker goroutine; completions
// are collected and drained by the benchmark after timing stops (there is
// no event loop running here to route them through).
type workerSink struct {
	led  *storage.Ledger
	jobs chan *CertifiedSnapshot
	mu   sync.Mutex
	errs []error
	wg   sync.WaitGroup
}

func newWorkerSink(led *storage.Ledger) *workerSink {
	s := &workerSink{led: led, jobs: make(chan *CertifiedSnapshot, 64)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for cs := range s.jobs {
			if err := PersistCertified(s.led, cs, cs.Seq); err != nil {
				s.mu.Lock()
				s.errs = append(s.errs, err)
				s.mu.Unlock()
			}
		}
	}()
	return s
}

// PersistSnapshot implements SnapshotSink. The done callback is invoked
// inline with a nil error (the bench asserts worker errors separately
// after draining; routing completions needs an event loop this bench
// does not run).
func (s *workerSink) PersistSnapshot(cs *CertifiedSnapshot, _ uint64, done func(error)) {
	s.jobs <- cs
	done(nil)
}

func (s *workerSink) drain(b *testing.B) {
	close(s.jobs)
	s.wg.Wait()
	if len(s.errs) > 0 {
		b.Fatalf("worker sink: %v", s.errs[0])
	}
}

func benchCapture(b *testing.B, size int, async bool) {
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "capture-bench")
	if err != nil {
		b.Fatal(err)
	}
	snap := make([]byte, size)
	for i := range snap {
		snap[i] = byte(i * 31)
	}
	app := &benchApp{snap: snap}
	led, err := storage.Open(b.TempDir(), storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer led.Close()
	r, err := NewReplica(1, cfg, suite, keys[0], app, &fakeEnv{}, led)
	if err != nil {
		b.Fatal(err)
	}
	var sink *workerSink
	if async {
		sink = newWorkerSink(led)
		r.SetSnapshotSink(sink)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		cs, err := r.buildSnapshot(seq, app.Digest())
		if err != nil {
			b.Fatal(err)
		}
		r.adoptSnapshot(cs)
	}
	b.StopTimer()
	if async {
		sink.drain(b)
	}
}

// kvApp adapts kvstore.Store to the core Application interface (the
// store's native proof type differs; proofs are irrelevant here).
type kvApp struct{ *kvstore.Store }

func (a kvApp) ProveOperation(uint64, int) ([]byte, error) { return nil, nil }

// kvFlatApp hides the incremental capture path (ok=false means "not
// supported" per the ChunkedSnapshotter contract), forcing buildSnapshot
// onto the legacy full-re-capture path — the baseline.
type kvFlatApp struct{ kvApp }

func (a kvFlatApp) SnapshotChunks() ([][]byte, bool, error) { return nil, false, nil }

// kvBenchState describes one incremental-capture scenario: total state of
// keys × valSize bytes across buckets, dirtyFrac of the keys rewritten
// between checkpoints.
type kvBenchState struct {
	keys, valSize, buckets int
	dirtyFrac              float64
	full                   bool // legacy full-re-capture baseline
}

func benchIncrementalCapture(b *testing.B, sc kvBenchState) {
	cfg := DefaultConfig(1, 0)
	// One retained generation: the capture stall under measurement does
	// not include holding multi-GiB predecessor snapshots alive.
	cfg.SnapshotRetain = 1
	suite, keys, err := InsecureSuite(cfg, "capture-bench")
	if err != nil {
		b.Fatal(err)
	}
	store := kvstore.NewWithBuckets(sc.buckets)
	val := make([]byte, sc.valSize)
	for i := range val {
		val[i] = byte(i * 131)
	}
	seq := uint64(0)
	mutate := func(indexes []int) {
		ops := make([][]byte, len(indexes))
		for i, k := range indexes {
			val[0]++ // new contents each round; the slice is copied by op decode
			ops[i] = kvstore.Put(fmt.Sprintf("key-%07d", k), val)
		}
		seq++
		store.ExecuteBlock(seq, ops)
	}
	all := make([]int, sc.keys)
	for i := range all {
		all[i] = i
	}
	mutate(all)

	var app Application = kvApp{store}
	if sc.full {
		app = kvFlatApp{kvApp{store}}
	}
	r, err := NewReplica(1, cfg, suite, keys[0], app, &fakeEnv{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Prime one capture so incremental points measure the steady state
	// (first capture is always a full encode).
	cs, err := r.buildSnapshot(1, store.Digest())
	if err != nil {
		b.Fatal(err)
	}
	r.adoptSnapshot(cs)

	dirtyN := int(float64(sc.keys) * sc.dirtyFrac)
	if dirtyN < 1 {
		dirtyN = 1
	}
	b.SetBytes(int64(sc.keys) * int64(sc.valSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirty := make([]int, dirtyN)
		for j := range dirty {
			// Stride walk: spreads writes across buckets, varies per round.
			dirty[j] = (i + j*97) % sc.keys
		}
		mutate(dirty)
		b.StartTimer()
		cs, err := r.buildSnapshot(uint64(i+2), store.Digest())
		if err != nil {
			b.Fatal(err)
		}
		r.adoptSnapshot(cs)
	}
}

var capturePoints = benchjson.New("checkpoint_capture", "stall-ns/op")

func BenchmarkCheckpointCapture(b *testing.B) {
	cases := []struct {
		name  string
		size  int
		async bool
	}{
		{"small/sync", 64 * 1024, false},
		{"small/async", 64 * 1024, true},
		{"large/sync", 8 * 1024 * 1024, false},
		{"large/async", 8 * 1024 * 1024, true},
	}
	stalls := make(map[string]float64)
	record := func(b *testing.B, name string) {
		stall := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(stall, "stall-ns/op")
		stalls[name] = stall
		if err := capturePoints.Record(name, stall); err != nil {
			b.Fatal(err)
		}
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			benchCapture(b, tc.size, tc.async)
			record(b, tc.name)
		})
	}

	// Incremental capture vs full re-capture at fixed state size, varying
	// dirty fraction. kv64MiB: 64Ki keys × 1KiB over 16Ki buckets.
	// kv2GiB (SBFT_BENCH_XL only): 256Ki keys × 8KiB.
	incCases := []struct {
		name string
		sc   kvBenchState
		xl   bool
	}{
		{"kv64MiB/full", kvBenchState{65536, 1024, 16384, 0.01, true}, false},
		{"kv64MiB/dirty1", kvBenchState{65536, 1024, 16384, 0.01, false}, false},
		{"kv64MiB/dirty10", kvBenchState{65536, 1024, 16384, 0.10, false}, false},
		{"kv64MiB/dirty100", kvBenchState{65536, 1024, 16384, 1.00, false}, false},
		{"kv2GiB/full", kvBenchState{262144, 8192, 16384, 0.01, true}, true},
		{"kv2GiB/dirty1", kvBenchState{262144, 8192, 16384, 0.01, false}, true},
	}
	for _, tc := range incCases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			if tc.xl && os.Getenv("SBFT_BENCH_XL") == "" {
				b.Skip("multi-GiB point: set SBFT_BENCH_XL=1 (needs ~8 GiB headroom)")
			}
			benchIncrementalCapture(b, tc.sc)
			record(b, tc.name)
		})
	}

	// The asymptotic gate (ROADMAP item 3): incremental capture at 1%
	// dirty must sit at least 10× below full re-capture of the same
	// state. Checked for every state size that ran.
	for _, size := range []string{"kv64MiB", "kv2GiB"} {
		full, okF := stalls[size+"/full"]
		inc, okI := stalls[size+"/dirty1"]
		if !okF || !okI {
			continue
		}
		if inc*10 > full {
			b.Fatalf("%s: incremental capture at 1%% dirty (%.0fns) is not ≥10× below full re-capture (%.0fns)",
				size, inc, full)
		}
	}
}
